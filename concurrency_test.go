package hummer

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentQueriesByteIdentical fires many goroutines at one DB
// with a mix of cache hits and misses — repeated FUSE BY statements,
// overlapping variants sharing the match/detect artifacts, and plain
// SELECTs — and requires every concurrent result to render exactly
// like its sequential reference. Run under -race (make check does)
// this doubles as the data-race proof for the shared repo, registry
// and artifact cache.
func TestConcurrentQueriesByteIdentical(t *testing.T) {
	queries := []string{
		"SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name) ORDER BY Name",
		"SELECT Name, RESOLVE(City, coalesce) FUSE FROM EE_Student, CS_Students FUSE BY (Name) ORDER BY Name",
		"SELECT Name, RESOLVE(Age, min) FUSE FROM EE_Student, CS_Students FUSE BY (Name) ORDER BY Name LIMIT 3",
		"SELECT Name, Age FROM EE_Student WHERE Age > 21 ORDER BY Name",
	}

	// Sequential reference on a fresh DB.
	seqDB := studentDB(t)
	want := make([]string, len(queries))
	for i, q := range queries {
		res, err := seqDB.Query(q)
		if err != nil {
			t.Fatalf("sequential %d: %v", i, err)
		}
		want[i] = res.Rel.String()
	}

	// Concurrent storm on another DB: every query runs many times in
	// parallel, so the first wave misses the cache (and singleflights)
	// while later waves hit it.
	db := studentDB(t)
	const goroutines = 32
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g % len(queries)
			res, err := db.Query(queries[i])
			if err != nil {
				errs <- fmt.Errorf("goroutine %d query %d: %v", g, i, err)
				return
			}
			if got := res.Rel.String(); got != want[i] {
				errs <- fmt.Errorf("goroutine %d query %d: concurrent result differs\nwant:\n%s\ngot:\n%s",
					g, i, want[i], got)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := db.Stats()
	if st.Queries != goroutines {
		t.Errorf("queries counted = %d, want %d", st.Queries, goroutines)
	}
	// Three of the four queries are fusion statements; each fusion call
	// first consults the fused-result tier, and only the three tier
	// leaders (one per distinct statement) descend into match/detect.
	fusionCalls := uint64(0)
	for g := 0; g < goroutines; g++ {
		if g%len(queries) != 3 {
			fusionCalls++
		}
	}
	fs := st.Cache.Kinds["fused"]
	if fs.Misses != 3 {
		t.Errorf("fused result computed %d times across the storm, want 3 (one per distinct statement): %+v", fs.Misses, fs)
	}
	if fs.Hits+fs.Shared != fusionCalls-3 {
		t.Errorf("fused tier served %d of %d repeat lookups: %+v", fs.Hits+fs.Shared, fusionCalls-3, fs)
	}
	ks := st.Cache.Kinds["match"]
	if ks.Misses != 1 {
		t.Errorf("match computed %d times across the storm, want 1 (singleflight): %+v", ks.Misses, ks)
	}
	// Only the three fused-tier leaders ever looked match up; two of
	// those were served from the cache.
	if ks.Hits+ks.Shared != 2 {
		t.Errorf("match served %d repeat lookups, want 2 (fused tier absorbed the rest): %+v", ks.Hits+ks.Shared, ks)
	}
	// The three fusion variants produce three distinct detect keys?
	// No — they share the merged table and the zero detect config, so
	// detection also computes exactly once.
	if ds := st.Cache.Kinds["detect"]; ds.Misses != 1 {
		t.Errorf("detect computed %d times, want 1: %+v", ds.Misses, ds)
	}
}

// TestCacheDisabledStillCorrect: WithoutCache must recompute per
// query yet return the same results.
func TestCacheDisabledStillCorrect(t *testing.T) {
	q := "SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name) ORDER BY Name"
	cached := studentDB(t)
	plain := studentDB(t, WithoutCache())
	want, err := cached.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := plain.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rel.String() != want.Rel.String() {
			t.Fatalf("uncached result differs:\n%s\nvs\n%s", got.Rel, want.Rel)
		}
	}
	st := plain.Stats()
	if st.Cache.Kinds != nil && len(st.Cache.Kinds) > 0 {
		t.Errorf("disabled cache reported traffic: %+v", st.Cache)
	}
}

// TestStatsAndReplaceFlow covers the new public surface: generations,
// fingerprints, replace, purge.
func TestStatsAndReplaceFlow(t *testing.T) {
	db := studentDB(t)
	if gen := db.SourceGeneration("EE_Student"); gen != 1 {
		t.Errorf("generation = %d, want 1", gen)
	}
	fp1, err := db.SourceFingerprint("EE_Student")
	if err != nil {
		t.Fatal(err)
	}

	q := "SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name) ORDER BY Name"
	cold, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Rel.Value(1, "Age").Int() != 22 {
		t.Errorf("Jonathan Smith's fused age = %v, want max 22", cold.Rel.Value(1, "Age"))
	}

	// Replace a source: generation bumps, fingerprint changes, and
	// the next query reflects the new data without a stale cache hit.
	ee2 := NewTable("EE_Student", "Name", "Age", "City").
		AddText("Jonathan Smith", "30", "Berlin").
		AddText("Maria Garcia", "24", "Hamburg").
		AddText("Wei Chen", "21", "Munich").
		AddText("Aisha Khan", "23", "Cologne").
		Build()
	if err := db.ReplaceTable("EE_Student", ee2); err != nil {
		t.Fatal(err)
	}
	if gen := db.SourceGeneration("EE_Student"); gen != 2 {
		t.Errorf("generation after replace = %d, want 2", gen)
	}
	fp2, err := db.SourceFingerprint("EE_Student")
	if err != nil {
		t.Fatal(err)
	}
	if fp1 == fp2 {
		t.Error("fingerprint unchanged after replace")
	}
	warm, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Rel.Value(1, "Age").Int() != 30 {
		t.Errorf("stale cache: fused age = %v after replace, want 30", warm.Rel.Value(1, "Age"))
	}

	if n := db.PurgeCache(); n == 0 {
		t.Error("purge found nothing despite prior queries")
	}
	st := db.Stats()
	if st.Cache.Entries != 0 {
		t.Errorf("entries after purge = %d", st.Cache.Entries)
	}
	if st.Queries != 2 || st.FuseQueries != 2 {
		t.Errorf("counters = %+v", st)
	}
}
