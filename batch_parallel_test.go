package hummer

import (
	"context"
	"fmt"
	"testing"
)

const joinQuery = `SELECT Name, Age, Town FROM EE_Student JOIN CS_Students ON Name = FullName WHERE Age > 20 ORDER BY Name`

// TestJoinQueryRowsByteIdentityAnyWorkers is the parallel-join
// determinism property test at the public API: with a join in the
// statement, the materialized Query and a drained QueryRows stream
// yield byte-identical tables at every worker count — and the same
// bytes across worker counts. Query goes through the CSE tier and the
// batched parallel probe; QueryRows streams the raw operator tree;
// neither may change a byte.
func TestJoinQueryRowsByteIdentityAnyWorkers(t *testing.T) {
	var baseline string
	for _, workers := range []int{1, 2, 7} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db := studentDB(t)
			db.SetParallelism(workers)
			want, err := db.Query(joinQuery)
			if err != nil {
				t.Fatal(err)
			}
			rows, err := db.QueryRows(context.Background(), joinQuery)
			if err != nil {
				t.Fatal(err)
			}
			got := drainToRelation(t, rows, want.Rel.Name())
			if got.String() != want.Rel.String() {
				t.Errorf("stream differs from query:\n%s\nvs\n%s", got, want.Rel)
			}
			if baseline == "" {
				baseline = want.Rel.String()
			} else if want.Rel.String() != baseline {
				t.Errorf("workers=%d changed the bytes:\n%s\nvs baseline\n%s", workers, want.Rel, baseline)
			}
		})
	}
}

// TestQueryBatchConcurrentMatchesSequential: a concurrent batch
// (parallelism 4) returns, per statement and in statement order,
// exactly what the strictly sequential batch returns — including the
// failing statement's position — and the shared source subtree of the
// overlapping plain statements materializes exactly once.
func TestQueryBatchConcurrentMatchesSequential(t *testing.T) {
	stmts := []string{
		`SELECT Name, Age, Town FROM EE_Student JOIN CS_Students ON Name = FullName WHERE Age > 20 ORDER BY Name`,
		`SELECT Town FROM EE_Student JOIN CS_Students ON Name = FullName WHERE Age > 20`,
		`SELECT no_such_column FROM EE_Student`,
		`SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name) ORDER BY Name`,
		`SELECT count(*) AS n FROM EE_Student JOIN CS_Students ON Name = FullName WHERE Age > 20`,
	}
	seqDB := studentDB(t)
	seqDB.SetParallelism(1)
	seq := seqDB.QueryBatch(context.Background(), stmts)

	conDB := studentDB(t)
	conDB.SetParallelism(4)
	con := conDB.QueryBatch(context.Background(), stmts)

	if len(seq) != len(stmts) || len(con) != len(stmts) {
		t.Fatalf("result counts: seq=%d con=%d", len(seq), len(con))
	}
	for i := range stmts {
		if seq[i].SQL != stmts[i] || con[i].SQL != stmts[i] {
			t.Errorf("statement %d out of order", i)
		}
		if (seq[i].Err == nil) != (con[i].Err == nil) {
			t.Errorf("statement %d: seq err %v, con err %v", i, seq[i].Err, con[i].Err)
			continue
		}
		if seq[i].Err != nil {
			continue
		}
		if seq[i].Result.Rel.String() != con[i].Result.Rel.String() {
			t.Errorf("statement %d differs between sequential and concurrent batch", i)
		}
	}
	// The three plain statements share one FROM/JOIN/WHERE subtree:
	// exactly one materialization pass, concurrent or not.
	for name, st := range map[string]Stats{"sequential": seqDB.Stats(), "concurrent": conDB.Stats()} {
		if st.CSEUnique != 1 {
			t.Errorf("%s batch: cse unique = %d, want 1", name, st.CSEUnique)
		}
		if st.CSEShared != 2 {
			t.Errorf("%s batch: cse shared = %d, want 2", name, st.CSEShared)
		}
		if st.Queries != uint64(len(stmts)) {
			t.Errorf("%s batch: queries = %d, want %d", name, st.Queries, len(stmts))
		}
		if st.QueryErrors != 1 {
			t.Errorf("%s batch: errors = %d, want 1", name, st.QueryErrors)
		}
	}
}
