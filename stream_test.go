package hummer

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"hummer/internal/qcache"
	"hummer/internal/relation"
	"hummer/internal/testutil"
)

const streamFuseQuery = `SELECT Name, RESOLVE(Age, max)
	FUSE FROM EE_Student, CS_Students
	FUSE BY (Name)
	ORDER BY Name`

// drainToRelation materializes a Rows cursor, failing the test on a
// stream error.
func drainToRelation(t *testing.T, rows *Rows, name string) *relation.Relation {
	t.Helper()
	defer rows.Close()
	sch, err := rows.Schema()
	if err != nil {
		t.Fatalf("stream schema: %v", err)
	}
	out := relation.New(name, sch)
	for rows.Next() {
		if err := out.Append(rows.Row().Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	return out
}

// TestQueryRowsMatchesQueryAnyWorkers is the streaming byte-identity
// acceptance test: at every worker count, a drained QueryRows yields
// exactly the table the materialized Query returns — fusion and plain
// SQL alike.
func TestQueryRowsMatchesQueryAnyWorkers(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db := studentDB(t)
			db.SetDetectConfig(DetectionConfig{Parallelism: workers})
			db.SetMatchConfig(MatchConfig{Parallelism: workers})
			for _, q := range []string{
				streamFuseQuery,
				`SELECT Name, Age FROM EE_Student ORDER BY Name`,
			} {
				want, err := db.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				rows, err := db.QueryRows(context.Background(), q)
				if err != nil {
					t.Fatal(err)
				}
				got := drainToRelation(t, rows, want.Rel.Name())
				if got.String() != want.Rel.String() {
					t.Errorf("stream differs from query for %q:\n%s\nvs\n%s", q, got, want.Rel)
				}
			}
		})
	}
}

// TestSlimFusedWarmHit pins the slim-entry semantics end to end: a
// cold zero-option query exposes the intermediates as it always has,
// the warm hit is slim (Pipeline nil, Summary and Lineage intact,
// table byte-identical), the cache gains exactly one fused entry, and
// WithTrace bypasses the tier — guaranteed intermediates, zero fused
// traffic, no new entries.
func TestSlimFusedWarmHit(t *testing.T) {
	db := studentDB(t)

	cold, err := db.Query(streamFuseQuery)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Pipeline == nil || cold.Summary == nil || cold.Lineage == nil {
		t.Fatalf("cold run must carry pipeline, summary and lineage")
	}

	warm, err := db.Query(streamFuseQuery)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Pipeline != nil {
		t.Error("warm fused hit retains pipeline intermediates — entry not slim")
	}
	if warm.Summary == nil || *warm.Summary != *cold.Summary {
		t.Errorf("warm summary %+v, want %+v", warm.Summary, cold.Summary)
	}
	if warm.Lineage == nil {
		t.Error("warm hit lost the lineage")
	}
	if warm.Rel.String() != cold.Rel.String() {
		t.Error("warm table differs from cold")
	}
	st := db.Stats()
	if fs := st.Cache.Kinds[qcache.KindFused]; fs.Misses != 1 || fs.Hits != 1 {
		t.Errorf("fused traffic = %+v, want 1 miss + 1 hit", fs)
	}
	if st.FuseQueries != 2 {
		t.Errorf("fuse queries = %d, want 2 (warm hits still count)", st.FuseQueries)
	}
	entries := st.Cache.Entries

	traced, err := db.Query(streamFuseQuery, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if traced.Pipeline == nil {
		t.Fatal("WithTrace did not produce intermediates")
	}
	if traced.Rel.String() != cold.Rel.String() {
		t.Error("traced table differs")
	}
	st = db.Stats()
	if fs := st.Cache.Kinds[qcache.KindFused]; fs.Misses != 1 || fs.Hits != 1 {
		t.Errorf("WithTrace touched the fused tier: %+v", fs)
	}
	if st.Cache.Entries != entries {
		t.Errorf("WithTrace changed cache entries: %d -> %d", entries, st.Cache.Entries)
	}
}

// TestWithLineageTrimDoesNotPoisonCache: dropping lineage is a
// per-query projection over the shared slim entry, never a mutation
// of it.
func TestWithLineageTrimDoesNotPoisonCache(t *testing.T) {
	db := studentDB(t)
	lean, err := db.Query(streamFuseQuery, WithLineage(false))
	if err != nil {
		t.Fatal(err)
	}
	if lean.Lineage != nil {
		t.Fatal("WithLineage(false) kept the lineage")
	}
	full, err := db.Query(streamFuseQuery)
	if err != nil {
		t.Fatal(err)
	}
	if full.Lineage == nil {
		t.Fatal("the trimmed first query poisoned the cached entry")
	}
	if fs := db.Stats().Cache.Kinds[qcache.KindFused]; fs.Hits != 1 {
		t.Fatalf("second query missed the fused tier: %+v", fs)
	}
}

// TestQueryOptionConfigsKeyTheFusedTier: per-query detect/match
// configuration participates in the fused key, so an override can
// never be served another configuration's result.
func TestQueryOptionConfigsKeyTheFusedTier(t *testing.T) {
	db := studentDB(t)
	if _, err := db.Query(streamFuseQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(streamFuseQuery, WithDetectConfig(DetectionConfig{Threshold: 0.95})); err != nil {
		t.Fatal(err)
	}
	if fs := db.Stats().Cache.Kinds[qcache.KindFused]; fs.Misses != 2 || fs.Hits != 0 {
		t.Fatalf("fused traffic = %+v, want 2 distinct misses", fs)
	}
	// The original configuration still hits its own entry.
	if _, err := db.Query(streamFuseQuery); err != nil {
		t.Fatal(err)
	}
	if fs := db.Stats().Cache.Kinds[qcache.KindFused]; fs.Hits != 1 {
		t.Fatalf("fused traffic = %+v, want a hit for the original config", fs)
	}
}

// TestQueryRowsCancelMidStreamJoins: cancelling a stream mid-flight
// surfaces ctx's error and joins every goroutine — the producer and
// all pipeline workers.
func TestQueryRowsCancelMidStreamJoins(t *testing.T) {
	db := studentDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	db.OnCorrespondences(func(alias string, proposed []Correspondence) []Correspondence {
		close(started)
		<-ctx.Done()
		return proposed
	})
	before := runtime.NumGoroutine()

	rows, err := db.QueryRows(ctx, streamFuseQuery)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	cancel()
	for rows.Next() { //nolint:revive // drain to the cancellation
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	testutil.WaitForGoroutines(t, before+2)

	// The DB remains fully usable.
	db.OnCorrespondences(nil)
	res, err := db.Query(streamFuseQuery)
	if err != nil || res.Rel.Len() == 0 {
		t.Fatalf("query after cancelled stream: %v", err)
	}
}

// TestQueryBatchPerStatementDeadline: WithTimeout budgets each batch
// statement separately — a statement that blows its deadline fails
// alone, and the statements after it still run with a fresh budget.
func TestQueryBatchPerStatementDeadline(t *testing.T) {
	db := studentDB(t)
	db.OnDuplicates(func(det *Detection, merged *Relation) []int {
		time.Sleep(150 * time.Millisecond) // outlive the per-statement deadline
		return nil
	})
	results := db.QueryBatch(context.Background(), []string{
		`SELECT Name FROM EE_Student`,
		streamFuseQuery, // slow: the hook blocks past the deadline
		`SELECT FullName FROM CS_Students`,
	}, WithTimeout(30*time.Millisecond))
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Err != nil || results[0].Result == nil {
		t.Errorf("statement 0 failed: %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, context.DeadlineExceeded) {
		t.Errorf("statement 1 err = %v, want DeadlineExceeded", results[1].Err)
	}
	if results[2].Err != nil || results[2].Result == nil {
		t.Errorf("statement 2 after the timed-out one failed: %v", results[2].Err)
	}
	for i, r := range results {
		if r.SQL == "" {
			t.Errorf("statement %d lost its SQL", i)
		}
	}
}

// TestQueryBatchCancelledContext: cancelling the batch's own context
// aborts the remaining statements with ctx's error.
func TestQueryBatchCancelledContext(t *testing.T) {
	db := studentDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := db.QueryBatch(ctx, []string{`SELECT Name FROM EE_Student`, streamFuseQuery})
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("statement %d err = %v, want context.Canceled", i, r.Err)
		}
	}
	// And the DB still serves.
	if _, err := db.Query(`SELECT Name FROM EE_Student`); err != nil {
		t.Fatal(err)
	}
}

// TestQueryRowsCountsFusionAndErrors: the streaming path keeps Stats
// honest — a drained fusion stream counts as a fuse query, a stream
// that dies counts as a query error, and a deliberate early Close
// counts as neither.
func TestQueryRowsCountsFusionAndErrors(t *testing.T) {
	db := studentDB(t)

	rows, err := db.QueryRows(context.Background(), streamFuseQuery)
	if err != nil {
		t.Fatal(err)
	}
	drainToRelation(t, rows, "x")
	st := db.Stats()
	if st.FuseQueries != 1 || st.QueryErrors != 0 {
		t.Errorf("after fusion drain: fuse=%d errors=%d, want 1/0", st.FuseQueries, st.QueryErrors)
	}

	rows, err = db.QueryRows(context.Background(), `SELECT x FROM ghost`)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() { //nolint:revive // drain to the failure
	}
	if rows.Err() == nil {
		t.Fatal("ghost stream did not fail")
	}
	rows.Close()
	if st = db.Stats(); st.QueryErrors != 1 {
		t.Errorf("failed stream not counted: errors=%d, want 1", st.QueryErrors)
	}

	rows, err = db.QueryRows(context.Background(), `SELECT Name FROM EE_Student`)
	if err != nil {
		t.Fatal(err)
	}
	rows.Close() // deliberate early close: not an error
	if st = db.Stats(); st.QueryErrors != 1 {
		t.Errorf("early Close counted as an error: errors=%d, want still 1", st.QueryErrors)
	}
}

// TestQueryRowsAllAdapter: the range-over-func form drains and closes.
func TestQueryRowsAllAdapter(t *testing.T) {
	db := studentDB(t)
	rows, err := db.QueryRows(context.Background(), `SELECT Name FROM EE_Student ORDER BY Name`)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for row, err := range rows.All() {
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, row[0].Text())
	}
	if len(names) != 4 || names[0] != "Aisha Khan" {
		t.Fatalf("names = %v", names)
	}
}
