package hummer

import (
	"fmt"
	"os"
	"testing"

	"hummer/internal/datagen"
	"hummer/internal/eval"
	"hummer/internal/metadata"
	"hummer/internal/thalia"
)

// TestTHALIAFusionThroughSQL integrates the canonical university
// catalog with its synonym variant through the public SQL interface:
// schema matching must bridge the labels and duplicate detection must
// pair up the course entries.
func TestTHALIAFusionThroughSQL(t *testing.T) {
	const courses = 30
	db := New()
	canon := thalia.Canonical(11, courses)
	variant, err := thalia.Generate(1, 11, courses) // synonyms class
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterTable("catalog_a", canon); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterTable("catalog_b", variant.Rel); err != nil {
		t.Fatal(err)
	}
	// Courses are identified by code AND title: consecutive codes
	// (CS101/CS102) are edit-similar, so the title disambiguates —
	// exactly the multi-attribute object identifier FUSE BY supports.
	res, err := db.Query(`
		SELECT Code, Title, Instructor, RESOLVE(Credits, max)
		FUSE FROM catalog_a, catalog_b
		FUSE BY (Code, Title)
		ORDER BY Code`)
	if err != nil {
		t.Fatal(err)
	}
	// Every course appears in both catalogs with identical values →
	// exactly `courses` fused rows.
	if res.Rel.Len() != courses {
		t.Fatalf("fused rows = %d, want %d:\n%s", res.Rel.Len(), courses, res.Rel)
	}
	// And every row's lineage must span both catalogs.
	codeCol := res.Rel.Schema().MustLookup("Code")
	mixed := 0
	for i := 0; i < res.Rel.Len(); i++ {
		if res.Lineage[i][codeCol].IsMixed() {
			mixed++
		}
	}
	if mixed != courses {
		t.Errorf("mixed-lineage codes = %d, want %d", mixed, courses)
	}
}

// TestFusionIdempotent: under the exact Fuse By grouping semantics of
// [2], fusing an already-clean relation (distinct object identifiers)
// is the identity, and re-fusing a fused result changes nothing — the
// algebraic fixpoint property of data fusion. (Fuzzy duplicate
// detection deliberately does NOT have this property: edit-similar
// identifiers like consecutive e-mail suffixes may merge.)
func TestFusionIdempotent(t *testing.T) {
	ents := datagen.Persons.Generate(3, 40)
	clean := datagen.Observe(datagen.Persons, ents, datagen.SourceSpec{Alias: "clean", Seed: 3})
	db := New()
	if err := db.RegisterTable("clean", clean.Rel); err != nil {
		t.Fatal(err)
	}
	opts := PipelineOptions{FuseBy: []string{"Email"}, ExactGrouping: true}
	res1, err := db.Fuse([]string{"clean"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Fused.Rel.Len() != clean.Rel.Len() {
		t.Fatalf("first fusion changed cardinality: %d → %d", clean.Rel.Len(), res1.Fused.Rel.Len())
	}
	db2 := New()
	if err := db2.RegisterTable("fused", res1.Fused.Rel); err != nil {
		t.Fatal(err)
	}
	res2, err := db2.Fuse([]string{"fused"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Fused.Rel.Len() != res1.Fused.Rel.Len() {
		t.Fatalf("second fusion changed cardinality: %d → %d", res1.Fused.Rel.Len(), res2.Fused.Rel.Len())
	}
	for i := 0; i < res1.Fused.Rel.Len(); i++ {
		if !res1.Fused.Rel.Row(i).Equal(res2.Fused.Rel.Row(i)) {
			t.Errorf("row %d changed on refusion:\n%v\n%v", i, res1.Fused.Rel.Row(i), res2.Fused.Rel.Row(i))
		}
	}
}

// TestPipelineDeterminism: the same query over the same sources yields
// byte-identical results across runs (no map-iteration leakage).
func TestPipelineDeterminism(t *testing.T) {
	run := func() string {
		db := New()
		ents := datagen.Persons.Generate(9, 60)
		left := datagen.ObserveShuffled(datagen.Persons, ents, datagen.SourceSpec{
			Alias: "l", TypoRate: 0.2, NullRate: 0.1, Seed: 10,
		})
		right := datagen.ObserveShuffled(datagen.Persons, ents, datagen.SourceSpec{
			Alias: "r", Renames: map[string]string{"Name": "FullName", "City": "Town"},
			TypoRate: 0.2, NullRate: 0.1, Seed: 11,
		})
		if err := db.RegisterTable("l", left.Rel); err != nil {
			t.Fatal(err)
		}
		if err := db.RegisterTable("r", right.Rel); err != nil {
			t.Fatal(err)
		}
		res, err := db.Query("SELECT * FUSE FROM l, r FUSE BY (Email) ORDER BY Email, Name")
		if err != nil {
			t.Fatal(err)
		}
		return res.Rel.String()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", i+2, got, first)
		}
	}
}

// TestGroupSizesPartitionInput: across any fusion run, the group sizes
// must sum to the merged input size (no tuple lost or duplicated).
func TestGroupSizesPartitionInput(t *testing.T) {
	db := New()
	ents := datagen.CDs.Generate(5, 30)
	for i := 0; i < 3; i++ {
		obs := datagen.ObserveShuffled(datagen.CDs, ents, datagen.SourceSpec{
			Alias: fmt.Sprintf("s%d", i), Coverage: 0.7, TypoRate: 0.1, Seed: int64(20 + i),
		})
		if err := db.RegisterTable(fmt.Sprintf("s%d", i), obs.Rel); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Fuse([]string{"s0", "s1", "s2"}, PipelineOptions{FuseBy: []string{"Title"}})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range res.Fused.Groups {
		if len(g) == 0 {
			t.Error("empty group")
		}
		total += len(g)
	}
	if total != res.Merged.Len() {
		t.Errorf("groups cover %d rows, merged has %d", total, res.Merged.Len())
	}
}

// TestDuplicateDetectionQualityFloor guards the E5 headline number:
// on the standard dirty-persons workload, peak F1 must stay above 0.85.
func TestDuplicateDetectionQualityFloor(t *testing.T) {
	ents := datagen.Persons.Generate(2005, 60)
	obs := datagen.DirtyTable(datagen.Persons, ents, 3, datagen.SourceSpec{
		Alias: "dirty", TypoRate: 0.15, NullRate: 0.1, NumericNoise: 0.1, Seed: 2008,
	})
	db := New()
	if err := db.RegisterTable("dirty", obs.Rel); err != nil {
		t.Fatal(err)
	}
	res, err := db.Fuse([]string{"dirty"}, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := eval.DuplicatePairs(res.Detection.ObjectIDs, obs.EntityIDs)
	if m.F1 < 0.8 {
		t.Errorf("automatic dedup F1 = %.3f, want ≥ 0.8 (P=%.3f R=%.3f)", m.F1, m.Precision, m.Recall)
	}
}

// TestMultiFormatFusion loads the same logical entity from CSV, JSON
// and XML and fuses all three formats in one query.
func TestMultiFormatFusion(t *testing.T) {
	// Uses the metadata repository directly to double-check the
	// public facade path tested in hummer_test.go.
	repo := metadata.NewRepository()
	dir := t.TempDir()
	writeTemp := func(name, content string) string {
		path := dir + "/" + name
		if err := writeFileHelper(path, content); err != nil {
			t.Fatal(err)
		}
		return path
	}
	csvPath := writeTemp("a.csv", "Name,Age\nGrace Hopper,79\nAlan Turing,41\n")
	jsonPath := writeTemp("b.json", `[{"Name": "Grace Hopper", "Age": 79, "Field": "compilers"}]`)
	xmlPath := writeTemp("c.xml", "<people><p><Name>Alan Turing</Name><Field>computability</Field></p></people>")
	if err := repo.RegisterCSV("a", csvPath); err != nil {
		t.Fatal(err)
	}
	if err := repo.RegisterJSON("b", jsonPath); err != nil {
		t.Fatal(err)
	}
	if err := repo.RegisterXML("c", xmlPath, "p"); err != nil {
		t.Fatal(err)
	}
	db := New()
	db.repo = repo
	res, err := db.Query("SELECT Name, RESOLVE(Age, max), RESOLVE(Field, coalesce) FUSE FROM a, b, c FUSE BY (Name) ORDER BY Name")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 2 {
		t.Fatalf("rows = %d, want 2:\n%s", res.Rel.Len(), res.Rel)
	}
	if got := res.Rel.Value(0, "Field").Text(); got != "computability" {
		t.Errorf("Turing's field = %q", got)
	}
	if got := res.Rel.Value(1, "Field").Text(); got != "compilers" {
		t.Errorf("Hopper's field = %q", got)
	}
}

// writeFileHelper writes a temp file for the multi-format test.
func writeFileHelper(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
