package fusion

import (
	"fmt"
	"strings"

	"hummer/internal/lineage"
	"hummer/internal/relation"
	"hummer/internal/schema"
	"hummer/internal/value"
)

// OutputItem is one column of the fused output: which input column to
// resolve, how, and under what output name. The same input column may
// appear in several items with different resolution functions (e.g.
// the minimum price and the annotated list of all prices).
type OutputItem struct {
	// Column is the input attribute.
	Column string
	// Spec is the resolution function; the zero Spec means the run's
	// Default.
	Spec Spec
	// As is the output column name; empty means Column.
	As string
}

// Options controls one fusion run.
type Options struct {
	// GroupBy are the object-identifier attributes (the FUSE BY
	// clause, or the objectID column after duplicate detection).
	// Required.
	GroupBy []string
	// Items explicitly lists the output columns. When set, Columns
	// and Rules are ignored for these items; IncludeRest optionally
	// appends the remaining data columns.
	Items []OutputItem
	// IncludeRest, with Items, appends every data column not already
	// named by an item (the * wildcard alongside RESOLVE items).
	IncludeRest bool
	// Rules maps column names (case-insensitive) to resolution
	// specs; columns without a rule use Default. Used when Items is
	// empty, and for columns appended by IncludeRest.
	Rules map[string]Spec
	// Default is the resolution spec for unruled columns; the zero
	// value means Coalesce, HumMer's documented default.
	Default Spec
	// Columns selects and orders the output columns when Items is
	// empty. Empty means: all input columns except bookkeeping
	// (sourceID, objectID).
	Columns []string
	// KeepBookkeeping retains sourceID/objectID columns in the
	// default column selection.
	KeepBookkeeping bool
}

// Result is the fused relation plus per-cell lineage: Lineage[i][j]
// names the sources and rows that contributed to cell (i,j) — the data
// behind the demo's color-coded display.
type Result struct {
	Rel     *relation.Relation
	Lineage [][]lineage.Set
	// Groups holds, for each output row, the input row indices fused
	// into it.
	Groups [][]int
}

// Fuse merges rel's duplicate groups into single tuples. Rows are
// grouped by equality on the GroupBy attributes; rows with NULL in any
// grouping attribute form singleton groups (an unknown object
// identifier never equals another unknown, unlike SQL GROUP BY — this
// follows the Fuse By semantics of grouping *objects*).
func Fuse(rel *relation.Relation, reg *Registry, opts Options) (*Result, error) {
	if len(opts.GroupBy) == 0 {
		return nil, fmt.Errorf("fusion: no FUSE BY attributes given")
	}
	s := rel.Schema()
	groupIdx := make([]int, len(opts.GroupBy))
	for i, g := range opts.GroupBy {
		j, ok := s.Lookup(g)
		if !ok {
			return nil, fmt.Errorf("fusion: no FUSE BY attribute %q in %s", g, s)
		}
		groupIdx[i] = j
	}

	items, err := resolveItems(s, opts)
	if err != nil {
		return nil, err
	}

	// Resolve the per-item specs to functions once.
	def := opts.Default
	if def.Name == "" {
		def = Coalesce
	}
	type colPlan struct {
		name string // input column
		out  string // output name
		idx  int
		fn   Func
		spec Spec
	}
	plans := make([]colPlan, len(items))
	outCols := make([]schema.Column, len(items))
	seenOut := map[string]bool{}
	for i, it := range items {
		j, ok := s.Lookup(it.Column)
		if !ok {
			return nil, fmt.Errorf("fusion: no output column %q in %s", it.Column, s)
		}
		spec := it.Spec
		if spec.Name == "" {
			spec = def
		}
		fn, ok := reg.Lookup(spec.Name)
		if !ok {
			return nil, fmt.Errorf("fusion: unknown resolution function %q for column %q", spec.Name, it.Column)
		}
		outName := it.As
		if outName == "" {
			outName = it.Column
		}
		if seenOut[strings.ToLower(outName)] {
			return nil, fmt.Errorf("fusion: duplicate output column %q; use AS to rename", outName)
		}
		seenOut[strings.ToLower(outName)] = true
		plans[i] = colPlan{name: it.Column, out: outName, idx: j, fn: fn, spec: spec}
		outCols[i] = schema.Column{Name: outName, Type: s.Col(j).Type, Source: s.Col(j).Source}
	}

	groups := groupRows(rel, groupIdx)
	srcIdx, hasSrc := s.Lookup(SourceIDColumn)

	out := relation.New(rel.Name(), schema.New(outCols...))
	res := &Result{Rel: out, Groups: groups}
	for _, members := range groups {
		rows := make([]relation.Row, len(members))
		sources := make([]string, len(members))
		for k, m := range members {
			rows[k] = rel.Row(m)
			if hasSrc && !rows[k][srcIdx].IsNull() {
				sources[k] = rows[k][srcIdx].Text()
			} else {
				sources[k] = rel.Name()
			}
		}
		fused := make(relation.Row, len(plans))
		lin := make([]lineage.Set, len(plans))
		for i, p := range plans {
			ctx := &Context{
				Column:   p.name,
				Relation: rel.Name(),
				Schema:   s,
				Rows:     rows,
				Values:   columnSlice(rows, p.idx),
				Sources:  sources,
			}
			v, err := p.fn(ctx, p.spec.Arg)
			if err != nil {
				return nil, fmt.Errorf("fusion: resolving %q: %w", p.name, err)
			}
			fused[i] = v
			lin[i] = cellLineage(ctx, v, members)
		}
		if err := out.Append(fused); err != nil {
			return nil, err
		}
		res.Lineage = append(res.Lineage, lin)
	}
	return res, nil
}

// SourceIDColumn mirrors dupdetect's constant to avoid the import; the
// transformation phase owns the name.
const SourceIDColumn = "sourceID"

// ObjectIDColumn mirrors dupdetect's constant.
const ObjectIDColumn = "objectID"

// resolveItems expands Options into the concrete output-item list.
func resolveItems(s *schema.Schema, opts Options) ([]OutputItem, error) {
	ruleFor := func(col string) Spec {
		for rn, rs := range opts.Rules {
			if strings.EqualFold(rn, col) {
				return rs
			}
		}
		return Spec{}
	}
	if len(opts.Items) > 0 {
		items := append([]OutputItem(nil), opts.Items...)
		if opts.IncludeRest {
			named := map[string]bool{}
			for _, it := range items {
				named[strings.ToLower(it.Column)] = true
			}
			for _, c := range s.Names() {
				if !opts.KeepBookkeeping &&
					(strings.EqualFold(c, SourceIDColumn) || strings.EqualFold(c, ObjectIDColumn)) {
					continue
				}
				if named[strings.ToLower(c)] {
					continue
				}
				items = append(items, OutputItem{Column: c, Spec: ruleFor(c)})
			}
		}
		return items, nil
	}
	cols, err := selectColumns(s, opts)
	if err != nil {
		return nil, err
	}
	items := make([]OutputItem, len(cols))
	for i, c := range cols {
		items[i] = OutputItem{Column: c, Spec: ruleFor(c)}
	}
	return items, nil
}

func selectColumns(s *schema.Schema, opts Options) ([]string, error) {
	if len(opts.Columns) > 0 {
		for _, c := range opts.Columns {
			if !s.Has(c) {
				return nil, fmt.Errorf("fusion: no output column %q in %s", c, s)
			}
		}
		return opts.Columns, nil
	}
	var out []string
	for _, c := range s.Names() {
		if !opts.KeepBookkeeping &&
			(strings.EqualFold(c, SourceIDColumn) || strings.EqualFold(c, ObjectIDColumn)) {
			continue
		}
		out = append(out, c)
	}
	return out, nil
}

// groupRows partitions row indices by equality on the group columns,
// preserving first-appearance order. NULL keys form singletons.
func groupRows(rel *relation.Relation, groupIdx []int) [][]int {
	var groups [][]int
	index := map[uint64][]int{} // hash → group ids
	for i := 0; i < rel.Len(); i++ {
		row := rel.Row(i)
		key := make(relation.Row, len(groupIdx))
		hasNull := false
		for k, j := range groupIdx {
			key[k] = row[j]
			if row[j].IsNull() {
				hasNull = true
			}
		}
		if hasNull {
			groups = append(groups, []int{i})
			continue
		}
		h := key.Hash()
		placed := false
		for _, gid := range index[h] {
			first := rel.Row(groups[gid][0])
			same := true
			for k, j := range groupIdx {
				if !first[j].Equal(key[k]) {
					same = false
					break
				}
			}
			if same {
				groups[gid] = append(groups[gid], i)
				placed = true
				break
			}
		}
		if !placed {
			index[h] = append(index[h], len(groups))
			groups = append(groups, []int{i})
		}
	}
	return groups
}

// columnSlice extracts one column from a list of rows.
func columnSlice(rows []relation.Row, idx int) []value.Value {
	out := make([]value.Value, len(rows))
	for i, r := range rows {
		out[i] = r[idx]
	}
	return out
}

// cellLineage records which input rows contributed to the resolved
// value: rows whose value equals the result (the value's provenance),
// or — when no row matches, e.g. for computed results like sum — all
// non-null contributors.
func cellLineage(ctx *Context, v value.Value, members []int) lineage.Set {
	if v.IsNull() {
		return lineage.Set{}
	}
	var sets []lineage.Set
	for i, cv := range ctx.Values {
		if !cv.IsNull() && cv.Equal(v) {
			sets = append(sets, lineage.From(ctx.Sources[i], members[i]))
		}
	}
	if len(sets) == 0 {
		for i, cv := range ctx.Values {
			if !cv.IsNull() {
				sets = append(sets, lineage.From(ctx.Sources[i], members[i]))
			}
		}
	}
	return lineage.Merge(sets...)
}
