// Package fusion implements HumMer's final phase: conflict resolution
// and data fusion. Tuples representing the same real-world object
// (identified by the FUSE BY attributes or by the objectID column that
// duplicate detection appends) are merged into one tuple; conflicting
// attribute values are resolved by conflict-resolution functions.
//
// Conflict resolution generalizes SQL aggregation: a resolution
// function sees the entire query context — the conflicting values, the
// full tuples they come from, the column and relation names, and the
// tuples' source aliases — not just the value list (paper §2.4).
package fusion

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"hummer/internal/relation"
	"hummer/internal/schema"
	"hummer/internal/value"
)

// Context is the query context a resolution function receives for one
// conflict: one output cell of one fused group.
type Context struct {
	// Column is the attribute being resolved.
	Column string
	// Relation is the (merged) table name.
	Relation string
	// Schema describes Rows.
	Schema *schema.Schema
	// Rows are the group's full tuples, in input order.
	Rows []relation.Row
	// Values are the conflicting values: the Column slice of Rows,
	// aligned with Rows (Values[i] belongs to Rows[i]).
	Values []value.Value
	// Sources holds each row's source alias (from the sourceID
	// column, or the relation name when absent), aligned with Rows.
	Sources []string
}

// NonNull returns the non-null values in order, with their row indices.
func (c *Context) NonNull() ([]value.Value, []int) {
	var vals []value.Value
	var idx []int
	for i, v := range c.Values {
		if !v.IsNull() {
			vals = append(vals, v)
			idx = append(idx, i)
		}
	}
	return vals, idx
}

// RowValue returns the value of another column in row i — resolution
// functions use this to consult the rest of the query context (e.g.
// MostRecent reads a timestamp attribute).
func (c *Context) RowValue(i int, column string) (value.Value, error) {
	j, ok := c.Schema.Lookup(column)
	if !ok {
		return value.Null, fmt.Errorf("fusion: no context column %q", column)
	}
	return c.Rows[i][j], nil
}

// Func is a conflict-resolution function. arg carries the optional
// function argument from the query (e.g. the source alias of
// Choose(source), or the recency attribute of MostRecent).
type Func func(ctx *Context, arg string) (value.Value, error)

// Spec names a resolution function plus its optional argument, as
// written in a RESOLVE clause.
type Spec struct {
	Name string
	Arg  string
}

// Coalesce is the default resolution spec (paper §2.1).
var Coalesce = Spec{Name: "coalesce"}

// Registry maps function names to implementations. It is extensible:
// HumMer explicitly allows registering new functions, and a registry
// backing a long-lived query service is read concurrently, so it is
// safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	funcs map[string]Func
	// version counts Register calls. The fused-result cache folds it
	// into its keys: re-registering a function may change what a query
	// produces, and a bumped version makes the stale fused entries stop
	// being addressed — the same structural versioning the source
	// fingerprints provide for data changes.
	version uint64
}

// NewRegistry returns a registry pre-loaded with all resolution
// functions from the paper plus the standard SQL aggregates.
func NewRegistry() *Registry {
	r := &Registry{funcs: make(map[string]Func)}
	for name, f := range builtins {
		r.funcs[name] = f
	}
	return r
}

// Register adds or replaces a function. Names are case-insensitive.
func (r *Registry) Register(name string, f Func) {
	r.mu.Lock()
	r.funcs[strings.ToLower(name)] = f
	r.version++
	r.mu.Unlock()
}

// Version returns the registration counter: 0 for a fresh registry
// (builtins only), bumped by every Register call. Cache keys that
// depend on resolution-function behaviour must include it.
func (r *Registry) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// Lookup resolves a function name.
func (r *Registry) Lookup(name string) (Func, bool) {
	r.mu.RLock()
	f, ok := r.funcs[strings.ToLower(name)]
	r.mu.RUnlock()
	return f, ok
}

// Names returns the registered function names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.funcs))
	for n := range r.funcs {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// builtins holds the paper's resolution functions (§2.4) and the SQL
// aggregates the Fuse By statement may also use.
var builtins = map[string]Func{
	"coalesce":     fnCoalesce,
	"first":        fnFirst,
	"last":         fnLast,
	"vote":         fnVote,
	"group":        fnGroup,
	"concat":       fnConcat,
	"annconcat":    fnAnnotatedConcat,
	"shortest":     fnShortest,
	"longest":      fnLongest,
	"choose":       fnChoose,
	"mostrecent":   fnMostRecent,
	"min":          fnMin,
	"max":          fnMax,
	"sum":          fnSum,
	"avg":          fnAvg,
	"count":        fnCount,
	"median":       fnMedian,
	"stddev":       fnStddev,
	"random":       fnFirstNonNullAlias, // deterministic stand-in, see doc
	"mostcomplete": fnMostComplete,
}

// fnCoalesce returns the first non-null value (the SQL Coalesce
// n-ary function, HumMer's default).
func fnCoalesce(ctx *Context, _ string) (value.Value, error) {
	for _, v := range ctx.Values {
		if !v.IsNull() {
			return v, nil
		}
	}
	return value.Null, nil
}

// fnFirst takes the first value, even if it is NULL (paper: "takes the
// first/last value of all values, even if it is a null value").
func fnFirst(ctx *Context, _ string) (value.Value, error) {
	if len(ctx.Values) == 0 {
		return value.Null, nil
	}
	return ctx.Values[0], nil
}

// fnLast takes the last value, even if NULL.
func fnLast(ctx *Context, _ string) (value.Value, error) {
	if len(ctx.Values) == 0 {
		return value.Null, nil
	}
	return ctx.Values[len(ctx.Values)-1], nil
}

// fnVote returns the most frequent non-null value. Ties break toward
// the value that appeared first (a deterministic choice among the
// paper's "variety of strategies").
func fnVote(ctx *Context, _ string) (value.Value, error) {
	vals, _ := ctx.NonNull()
	if len(vals) == 0 {
		return value.Null, nil
	}
	type bucket struct {
		v     value.Value
		count int
		first int
	}
	var buckets []*bucket
	for i, v := range vals {
		found := false
		for _, b := range buckets {
			if b.v.Equal(v) {
				b.count++
				found = true
				break
			}
		}
		if !found {
			buckets = append(buckets, &bucket{v: v, count: 1, first: i})
		}
	}
	best := buckets[0]
	for _, b := range buckets[1:] {
		if b.count > best.count {
			best = b
		}
	}
	return best.v, nil
}

// fnGroup returns the set of conflicting values rendered as
// "{v1, v2, ...}" (distinct, in first-appearance order), leaving the
// actual resolution to the user, as the paper specifies.
func fnGroup(ctx *Context, _ string) (value.Value, error) {
	vals, _ := ctx.NonNull()
	if len(vals) == 0 {
		return value.Null, nil
	}
	var parts []string
	for _, v := range vals {
		s := v.Text()
		dup := false
		for _, p := range parts {
			if p == s {
				dup = true
				break
			}
		}
		if !dup {
			parts = append(parts, s)
		}
	}
	if len(parts) == 1 {
		return vals[0], nil
	}
	return value.NewString("{" + strings.Join(parts, ", ") + "}"), nil
}

// fnConcat concatenates the distinct non-null values.
func fnConcat(ctx *Context, _ string) (value.Value, error) {
	vals, _ := ctx.NonNull()
	if len(vals) == 0 {
		return value.Null, nil
	}
	var parts []string
	for _, v := range vals {
		s := v.Text()
		dup := false
		for _, p := range parts {
			if p == s {
				dup = true
				break
			}
		}
		if !dup {
			parts = append(parts, s)
		}
	}
	return value.NewString(strings.Join(parts, ", ")), nil
}

// fnAnnotatedConcat concatenates values annotated with their source
// alias: "v1 [s1], v2 [s2]".
func fnAnnotatedConcat(ctx *Context, _ string) (value.Value, error) {
	vals, idx := ctx.NonNull()
	if len(vals) == 0 {
		return value.Null, nil
	}
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%s [%s]", v.Text(), ctx.Sources[idx[i]])
	}
	return value.NewString(strings.Join(parts, ", ")), nil
}

// fnShortest chooses the non-null value of minimum length (text
// length as the length measure); ties break toward the first.
func fnShortest(ctx *Context, _ string) (value.Value, error) {
	vals, _ := ctx.NonNull()
	if len(vals) == 0 {
		return value.Null, nil
	}
	best := vals[0]
	for _, v := range vals[1:] {
		if len(v.Text()) < len(best.Text()) {
			best = v
		}
	}
	return best, nil
}

// fnLongest chooses the non-null value of maximum length.
func fnLongest(ctx *Context, _ string) (value.Value, error) {
	vals, _ := ctx.NonNull()
	if len(vals) == 0 {
		return value.Null, nil
	}
	best := vals[0]
	for _, v := range vals[1:] {
		if len(v.Text()) > len(best.Text()) {
			best = v
		}
	}
	return best, nil
}

// fnChoose returns the value supplied by the named source
// (Choose(source) in the paper). A group may contain several rows of
// that source; the first non-null one wins. Without rows from that
// source the result is NULL.
func fnChoose(ctx *Context, arg string) (value.Value, error) {
	if arg == "" {
		return value.Null, fmt.Errorf("fusion: choose requires a source argument")
	}
	for i, v := range ctx.Values {
		if strings.EqualFold(ctx.Sources[i], arg) && !v.IsNull() {
			return v, nil
		}
	}
	return value.Null, nil
}

// fnMostRecent evaluates recency with the help of another attribute
// (the arg names a timestamp/date column of the context, paper §2.4):
// the non-null value whose row has the greatest recency wins. Rows
// with NULL recency lose against any dated row. Without an argument
// the last non-null value is taken (input order as recency proxy).
func fnMostRecent(ctx *Context, arg string) (value.Value, error) {
	vals, idx := ctx.NonNull()
	if len(vals) == 0 {
		return value.Null, nil
	}
	if arg == "" {
		return vals[len(vals)-1], nil
	}
	bestVal := value.Null
	bestTS := value.Null
	for k, v := range vals {
		ts, err := ctx.RowValue(idx[k], arg)
		if err != nil {
			return value.Null, err
		}
		if bestVal.IsNull() || (!ts.IsNull() && (bestTS.IsNull() || ts.Compare(bestTS) > 0)) {
			bestVal, bestTS = v, ts
		}
	}
	return bestVal, nil
}

// fnMostComplete demonstrates the query-context generality of conflict
// resolution (§2.4): it returns the value from the tuple with the
// fewest NULLs overall, on the theory that the most completely
// described observation is the most trustworthy. Ties break toward the
// earlier tuple.
func fnMostComplete(ctx *Context, _ string) (value.Value, error) {
	best := value.Null
	bestNulls := -1
	for i, v := range ctx.Values {
		if v.IsNull() {
			continue
		}
		nulls := 0
		for _, cell := range ctx.Rows[i] {
			if cell.IsNull() {
				nulls++
			}
		}
		if bestNulls < 0 || nulls < bestNulls {
			best, bestNulls = v, nulls
		}
	}
	return best, nil
}

// fnFirstNonNullAlias backs the "random" strategy mentioned for vote
// tie-breaking. True randomness would make fusion non-deterministic
// and untestable; HumMer instead picks the first non-null value and
// documents the substitution.
func fnFirstNonNullAlias(ctx *Context, _ string) (value.Value, error) {
	return fnCoalesce(ctx, "")
}

// --- Numeric aggregates ---------------------------------------------------

func numericValues(ctx *Context) []float64 {
	var out []float64
	for _, v := range ctx.Values {
		if f, ok := v.AsFloat(); ok {
			out = append(out, f)
		}
	}
	return out
}

// fnMin is the SQL min over non-null values (any comparable kind).
func fnMin(ctx *Context, _ string) (value.Value, error) {
	vals, _ := ctx.NonNull()
	if len(vals) == 0 {
		return value.Null, nil
	}
	best := vals[0]
	for _, v := range vals[1:] {
		if v.Compare(best) < 0 {
			best = v
		}
	}
	return best, nil
}

// fnMax is the SQL max over non-null values.
func fnMax(ctx *Context, _ string) (value.Value, error) {
	vals, _ := ctx.NonNull()
	if len(vals) == 0 {
		return value.Null, nil
	}
	best := vals[0]
	for _, v := range vals[1:] {
		if v.Compare(best) > 0 {
			best = v
		}
	}
	return best, nil
}

// fnSum sums numeric values; NULL when none.
func fnSum(ctx *Context, _ string) (value.Value, error) {
	nums := numericValues(ctx)
	if len(nums) == 0 {
		return value.Null, nil
	}
	allInt := true
	var intSum int64
	var sum float64
	for _, v := range ctx.Values {
		if v.Kind() == value.KindInt {
			intSum += v.Int()
		} else if !v.IsNull() {
			allInt = false
		}
	}
	for _, f := range nums {
		sum += f
	}
	if allInt {
		return value.NewInt(intSum), nil
	}
	return value.NewFloat(sum), nil
}

// fnAvg averages numeric values; NULL when none.
func fnAvg(ctx *Context, _ string) (value.Value, error) {
	nums := numericValues(ctx)
	if len(nums) == 0 {
		return value.Null, nil
	}
	var sum float64
	for _, f := range nums {
		sum += f
	}
	return value.NewFloat(sum / float64(len(nums))), nil
}

// fnCount counts non-null values.
func fnCount(ctx *Context, _ string) (value.Value, error) {
	vals, _ := ctx.NonNull()
	return value.NewInt(int64(len(vals))), nil
}

// fnMedian returns the median of the numeric values (lower of the two
// middles for even counts, keeping the result an observed value).
func fnMedian(ctx *Context, _ string) (value.Value, error) {
	nums := numericValues(ctx)
	if len(nums) == 0 {
		return value.Null, nil
	}
	sort.Float64s(nums)
	return value.NewFloat(nums[(len(nums)-1)/2]), nil
}

// fnStddev returns the population standard deviation of the numeric
// values; NULL for fewer than one value.
func fnStddev(ctx *Context, _ string) (value.Value, error) {
	nums := numericValues(ctx)
	if len(nums) == 0 {
		return value.Null, nil
	}
	var sum float64
	for _, f := range nums {
		sum += f
	}
	mean := sum / float64(len(nums))
	var ss float64
	for _, f := range nums {
		ss += (f - mean) * (f - mean)
	}
	return value.NewFloat(math.Sqrt(ss / float64(len(nums)))), nil
}
