package fusion

import (
	"math"
	"testing"

	"hummer/internal/relation"
	"hummer/internal/schema"
	"hummer/internal/value"
)

// ctxOf builds a resolution context from a value list with optional
// sources.
func ctxOf(vals []value.Value, sources ...string) *Context {
	if len(sources) == 0 {
		sources = make([]string, len(vals))
		for i := range sources {
			sources[i] = "src"
		}
	}
	rows := make([]relation.Row, len(vals))
	for i, v := range vals {
		rows[i] = relation.Row{v}
	}
	return &Context{
		Column:   "c",
		Relation: "t",
		Schema:   schema.FromNames("c"),
		Rows:     rows,
		Values:   vals,
		Sources:  sources,
	}
}

func vs(texts ...string) []value.Value {
	out := make([]value.Value, len(texts))
	for i, t := range texts {
		out[i] = value.Parse(t)
	}
	return out
}

func call(t *testing.T, name string, ctx *Context, arg string) value.Value {
	t.Helper()
	reg := NewRegistry()
	f, ok := reg.Lookup(name)
	if !ok {
		t.Fatalf("no function %q", name)
	}
	v, err := f(ctx, arg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

func TestCoalesce(t *testing.T) {
	if got := call(t, "coalesce", ctxOf(vs("", "x", "y")), ""); got.Text() != "x" {
		t.Errorf("coalesce = %v", got)
	}
	if got := call(t, "coalesce", ctxOf(vs("", "")), ""); !got.IsNull() {
		t.Errorf("coalesce over nulls = %v", got)
	}
}

func TestFirstLastIncludeNulls(t *testing.T) {
	ctx := ctxOf(vs("", "b", "c"))
	if got := call(t, "first", ctx, ""); !got.IsNull() {
		t.Errorf("first must return the leading NULL, got %v", got)
	}
	ctx2 := ctxOf(vs("a", "b", ""))
	if got := call(t, "last", ctx2, ""); !got.IsNull() {
		t.Errorf("last must return the trailing NULL, got %v", got)
	}
	if got := call(t, "first", ctxOf(nil), ""); !got.IsNull() {
		t.Errorf("first of empty = %v", got)
	}
}

func TestVote(t *testing.T) {
	if got := call(t, "vote", ctxOf(vs("a", "b", "b", "c")), ""); got.Text() != "b" {
		t.Errorf("vote = %v, want b", got)
	}
	// Tie: first-appearing value wins (deterministic tie-break).
	if got := call(t, "vote", ctxOf(vs("x", "y")), ""); got.Text() != "x" {
		t.Errorf("vote tie = %v, want x", got)
	}
	// NULLs don't vote.
	if got := call(t, "vote", ctxOf(vs("", "", "z")), ""); got.Text() != "z" {
		t.Errorf("vote with nulls = %v, want z", got)
	}
	if got := call(t, "vote", ctxOf(vs("", "")), ""); !got.IsNull() {
		t.Errorf("vote over nulls = %v", got)
	}
}

func TestGroup(t *testing.T) {
	if got := call(t, "group", ctxOf(vs("a", "b", "a")), ""); got.Text() != "{a, b}" {
		t.Errorf("group = %v, want {a, b}", got)
	}
	// Single distinct value: returned unwrapped.
	if got := call(t, "group", ctxOf(vs("a", "a")), ""); got.Text() != "a" {
		t.Errorf("group single = %v, want a", got)
	}
	if got := call(t, "group", ctxOf(vs("", "")), ""); !got.IsNull() {
		t.Errorf("group over nulls = %v", got)
	}
}

func TestConcat(t *testing.T) {
	if got := call(t, "concat", ctxOf(vs("a", "b", "a")), ""); got.Text() != "a, b" {
		t.Errorf("concat = %v", got)
	}
}

func TestAnnotatedConcat(t *testing.T) {
	ctx := ctxOf(vs("12.99", "11.49"), "shopA", "shopB")
	got := call(t, "annconcat", ctx, "")
	want := "12.99 [shopA], 11.49 [shopB]"
	if got.Text() != want {
		t.Errorf("annconcat = %q, want %q", got.Text(), want)
	}
}

func TestShortestLongest(t *testing.T) {
	ctx := ctxOf(vs("abc", "a", "ab"))
	if got := call(t, "shortest", ctx, ""); got.Text() != "a" {
		t.Errorf("shortest = %v", got)
	}
	if got := call(t, "longest", ctx, ""); got.Text() != "abc" {
		t.Errorf("longest = %v", got)
	}
	// Tie: first wins.
	tie := ctxOf(vs("xy", "ab"))
	if got := call(t, "shortest", tie, ""); got.Text() != "xy" {
		t.Errorf("shortest tie = %v", got)
	}
}

func TestChoose(t *testing.T) {
	ctx := ctxOf(vs("10", "20", "30"), "s1", "s2", "s3")
	if got := call(t, "choose", ctx, "s2"); !got.Equal(value.NewInt(20)) {
		t.Errorf("choose(s2) = %v", got)
	}
	if got := call(t, "choose", ctx, "S3"); !got.Equal(value.NewInt(30)) {
		t.Errorf("choose must be case-insensitive on source, got %v", got)
	}
	if got := call(t, "choose", ctx, "absent"); !got.IsNull() {
		t.Errorf("choose(absent) = %v", got)
	}
	// Missing argument is an error.
	reg := NewRegistry()
	f, _ := reg.Lookup("choose")
	if _, err := f(ctx, ""); err == nil {
		t.Error("choose without argument must error")
	}
	// First non-null of the chosen source wins.
	ctx2 := ctxOf(vs("", "7"), "s1", "s1")
	if got := call(t, "choose", ctx2, "s1"); !got.Equal(value.NewInt(7)) {
		t.Errorf("choose skips nulls of its source, got %v", got)
	}
}

func TestMostRecentWithTimestampColumn(t *testing.T) {
	s := schema.FromNames("price", "updated")
	rows := []relation.Row{
		{value.NewInt(10), value.Parse("2005-01-01")},
		{value.NewInt(20), value.Parse("2005-06-01")},
		{value.NewInt(15), value.Parse("2005-03-01")},
	}
	ctx := &Context{
		Column: "price", Relation: "t", Schema: s, Rows: rows,
		Values:  []value.Value{rows[0][0], rows[1][0], rows[2][0]},
		Sources: []string{"a", "b", "c"},
	}
	if got := call(t, "mostrecent", ctx, "updated"); !got.Equal(value.NewInt(20)) {
		t.Errorf("mostrecent = %v, want 20", got)
	}
}

func TestMostRecentNullTimestampLoses(t *testing.T) {
	s := schema.FromNames("price", "updated")
	rows := []relation.Row{
		{value.NewInt(10), value.Null},
		{value.NewInt(20), value.Parse("2005-06-01")},
	}
	ctx := &Context{
		Column: "price", Relation: "t", Schema: s, Rows: rows,
		Values:  []value.Value{rows[0][0], rows[1][0]},
		Sources: []string{"a", "b"},
	}
	if got := call(t, "mostrecent", ctx, "updated"); !got.Equal(value.NewInt(20)) {
		t.Errorf("mostrecent = %v, want dated row to win", got)
	}
}

func TestMostRecentWithoutArgTakesLastNonNull(t *testing.T) {
	ctx := ctxOf(vs("a", "b", ""))
	if got := call(t, "mostrecent", ctx, ""); got.Text() != "b" {
		t.Errorf("mostrecent no-arg = %v, want b", got)
	}
}

func TestMostRecentUnknownColumnErrors(t *testing.T) {
	reg := NewRegistry()
	f, _ := reg.Lookup("mostrecent")
	if _, err := f(ctxOf(vs("a")), "no_such_col"); err == nil {
		t.Error("unknown recency column must error")
	}
}

func TestNumericAggregates(t *testing.T) {
	ctx := ctxOf(vs("1", "3", "", "2"))
	if got := call(t, "min", ctx, ""); !got.Equal(value.NewInt(1)) {
		t.Errorf("min = %v", got)
	}
	if got := call(t, "max", ctx, ""); !got.Equal(value.NewInt(3)) {
		t.Errorf("max = %v", got)
	}
	if got := call(t, "sum", ctx, ""); !got.Equal(value.NewInt(6)) {
		t.Errorf("sum = %v", got)
	}
	if got := call(t, "avg", ctx, ""); !got.Equal(value.NewFloat(2)) {
		t.Errorf("avg = %v", got)
	}
	if got := call(t, "count", ctx, ""); !got.Equal(value.NewInt(3)) {
		t.Errorf("count = %v", got)
	}
	if got := call(t, "median", ctx, ""); !got.Equal(value.NewFloat(2)) {
		t.Errorf("median = %v", got)
	}
}

func TestSumMixedTypes(t *testing.T) {
	if got := call(t, "sum", ctxOf(vs("1", "2.5")), ""); !got.Equal(value.NewFloat(3.5)) {
		t.Errorf("sum mixed = %v", got)
	}
	if got := call(t, "sum", ctxOf(vs("", "")), ""); !got.IsNull() {
		t.Errorf("sum of nulls = %v", got)
	}
}

func TestMinMaxWorkOnStrings(t *testing.T) {
	ctx := ctxOf(vs("pear", "apple", "zebra"))
	if got := call(t, "min", ctx, ""); got.Text() != "apple" {
		t.Errorf("string min = %v", got)
	}
	if got := call(t, "max", ctx, ""); got.Text() != "zebra" {
		t.Errorf("string max = %v", got)
	}
}

func TestStddev(t *testing.T) {
	got := call(t, "stddev", ctxOf(vs("2", "4", "4", "4", "5", "5", "7", "9")), "")
	if math.Abs(got.Float()-2.0) > 1e-9 {
		t.Errorf("stddev = %v, want 2", got)
	}
	if got := call(t, "stddev", ctxOf(vs("")), ""); !got.IsNull() {
		t.Errorf("stddev of nothing = %v", got)
	}
}

func TestMedianEvenCountTakesLowerMiddle(t *testing.T) {
	got := call(t, "median", ctxOf(vs("1", "2", "3", "4")), "")
	if !got.Equal(value.NewFloat(2)) {
		t.Errorf("median even = %v, want 2 (observed value)", got)
	}
}

func TestRegistryExtensibility(t *testing.T) {
	reg := NewRegistry()
	reg.Register("CheapestShop", func(ctx *Context, _ string) (value.Value, error) {
		return value.NewString("custom"), nil
	})
	f, ok := reg.Lookup("cheapestshop")
	if !ok {
		t.Fatal("custom function not found (lookup must be case-insensitive)")
	}
	v, _ := f(nil, "")
	if v.Text() != "custom" {
		t.Errorf("custom fn = %v", v)
	}
}

func TestRegistryNamesContainPaperFunctions(t *testing.T) {
	reg := NewRegistry()
	for _, want := range []string{
		"choose", "coalesce", "first", "last", "vote", "group",
		"concat", "annconcat", "shortest", "longest", "mostrecent",
		"min", "max", "sum", "avg", "count",
	} {
		if _, ok := reg.Lookup(want); !ok {
			t.Errorf("paper function %q missing from registry", want)
		}
	}
}

func TestRandomIsDeterministicSubstitute(t *testing.T) {
	ctx := ctxOf(vs("", "a", "b"))
	for i := 0; i < 10; i++ {
		if got := call(t, "random", ctx, ""); got.Text() != "a" {
			t.Fatalf("random must be deterministic (first non-null), got %v", got)
		}
	}
}

func TestMostComplete(t *testing.T) {
	s := schema.FromNames("v", "a", "b")
	rows := []relation.Row{
		{value.NewString("sparse"), value.Null, value.Null},
		{value.NewString("full"), value.NewInt(1), value.NewInt(2)},
	}
	ctx := &Context{
		Column: "v", Relation: "t", Schema: s, Rows: rows,
		Values:  []value.Value{rows[0][0], rows[1][0]},
		Sources: []string{"s1", "s2"},
	}
	if got := call(t, "mostcomplete", ctx, ""); got.Text() != "full" {
		t.Errorf("mostcomplete = %v, want the value from the fullest row", got)
	}
	// All-null column → NULL.
	empty := ctxOf(vs("", ""))
	if got := call(t, "mostcomplete", empty, ""); !got.IsNull() {
		t.Errorf("mostcomplete over nulls = %v", got)
	}
	// Tie: earlier tuple wins.
	tie := ctxOf(vs("x", "y"))
	if got := call(t, "mostcomplete", tie, ""); got.Text() != "x" {
		t.Errorf("mostcomplete tie = %v, want x", got)
	}
}
