package fusion

import (
	"testing"

	"hummer/internal/relation"
	"hummer/internal/value"
)

// mergedStudents is the paper's running example after transformation
// and duplicate detection: EE and CS students outer-unioned, with
// sourceID and objectID columns.
func mergedStudents() *relation.Relation {
	return relation.NewBuilder("students", "sourceID", "Name", "Age", "Semester", "objectID").
		AddText("EE_Student", "Jonathan Smith", "21", "", "0").
		AddText("CS_Students", "Jonathan Smith", "22", "4", "0").
		AddText("EE_Student", "Maria Garcia", "24", "", "1").
		AddText("CS_Students", "Wei Chen", "21", "2", "2").
		Build()
}

func TestFuseByObjectID(t *testing.T) {
	res, err := Fuse(mergedStudents(), NewRegistry(), Options{
		GroupBy: []string{"objectID"},
		Rules:   map[string]Spec{"Age": {Name: "max"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Rel
	if out.Len() != 3 {
		t.Fatalf("fused rows = %d, want 3", out.Len())
	}
	// Bookkeeping columns dropped by default.
	if out.Schema().Has("sourceID") || out.Schema().Has("objectID") {
		t.Errorf("bookkeeping columns leaked: %v", out.Schema().Names())
	}
	// Jonathan: max age 22, semester coalesces to 4.
	if got := out.Value(0, "Age"); !got.Equal(value.NewInt(22)) {
		t.Errorf("fused Age = %v, want max 22 (paper example: students only get older)", got)
	}
	if got := out.Value(0, "Semester"); !got.Equal(value.NewInt(4)) {
		t.Errorf("fused Semester = %v, want 4 via coalesce", got)
	}
	if got := out.Value(1, "Name").Text(); got != "Maria Garcia" {
		t.Errorf("row 1 = %q", got)
	}
}

func TestFuseByNaturalKey(t *testing.T) {
	// FUSE BY (Name) — grouping on the stated attribute, as in the
	// paper's example statement.
	res, err := Fuse(mergedStudents(), NewRegistry(), Options{
		GroupBy: []string{"Name"},
		Rules:   map[string]Spec{"Age": {Name: "max"}},
		Columns: []string{"Name", "Age"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 3 {
		t.Fatalf("rows = %d, want 3", res.Rel.Len())
	}
	if got := res.Rel.Value(0, "Age"); !got.Equal(value.NewInt(22)) {
		t.Errorf("Age = %v, want 22", got)
	}
}

func TestNullGroupKeysFormSingletons(t *testing.T) {
	rel := relation.NewBuilder("t", "Name", "v").
		AddText("", "1").
		AddText("", "2").
		AddText("x", "3").
		AddText("x", "4").
		Build()
	res, err := Fuse(rel, NewRegistry(), Options{GroupBy: []string{"Name"}})
	if err != nil {
		t.Fatal(err)
	}
	// Two NULL-keyed singletons + one fused x group.
	if res.Rel.Len() != 3 {
		t.Fatalf("rows = %d, want 3 (NULL keys must not merge)", res.Rel.Len())
	}
}

func TestDefaultResolutionIsCoalesce(t *testing.T) {
	rel := relation.NewBuilder("t", "k", "v").
		AddText("a", "").
		AddText("a", "second").
		Build()
	res, err := Fuse(rel, NewRegistry(), Options{GroupBy: []string{"k"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rel.Value(0, "v").Text(); got != "second" {
		t.Errorf("default coalesce = %q", got)
	}
}

func TestCustomDefault(t *testing.T) {
	rel := relation.NewBuilder("t", "k", "v").
		AddText("a", "x").
		AddText("a", "y").
		Build()
	res, err := Fuse(rel, NewRegistry(), Options{
		GroupBy: []string{"k"},
		Default: Spec{Name: "concat"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rel.Value(0, "v").Text(); got != "x, y" {
		t.Errorf("custom default = %q", got)
	}
}

func TestFuseErrors(t *testing.T) {
	rel := mergedStudents()
	reg := NewRegistry()
	if _, err := Fuse(rel, reg, Options{}); err == nil {
		t.Error("missing GroupBy must error")
	}
	if _, err := Fuse(rel, reg, Options{GroupBy: []string{"nope"}}); err == nil {
		t.Error("unknown group attribute must error")
	}
	if _, err := Fuse(rel, reg, Options{
		GroupBy: []string{"objectID"},
		Rules:   map[string]Spec{"Age": {Name: "no_such_fn"}},
	}); err == nil {
		t.Error("unknown resolution function must error")
	}
	if _, err := Fuse(rel, reg, Options{
		GroupBy: []string{"objectID"},
		Columns: []string{"ghost"},
	}); err == nil {
		t.Error("unknown output column must error")
	}
}

func TestLineageTracksContributors(t *testing.T) {
	res, err := Fuse(mergedStudents(), NewRegistry(), Options{
		GroupBy: []string{"objectID"},
		Rules:   map[string]Spec{"Age": {Name: "max"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	nameCol := res.Rel.Schema().MustLookup("Name")
	ageCol := res.Rel.Schema().MustLookup("Age")
	// Jonathan's name came from both sources (both rows agree).
	nameLin := res.Lineage[0][nameCol]
	if !nameLin.IsMixed() {
		t.Errorf("agreeing name must have mixed lineage, got %v", nameLin.Sources())
	}
	// Jonathan's max age (22) came only from CS_Students.
	ageLin := res.Lineage[0][ageCol]
	if ageLin.IsMixed() {
		t.Errorf("max-age lineage must be single-source, got %v", ageLin.Sources())
	}
	if srcs := ageLin.Sources(); len(srcs) != 1 || srcs[0] != "CS_Students" {
		t.Errorf("age lineage = %v, want [CS_Students]", srcs)
	}
}

func TestLineageForComputedValues(t *testing.T) {
	// sum produces a value no input row holds: lineage must cover all
	// non-null contributors.
	rel := relation.NewBuilder("t", "sourceID", "k", "v").
		AddText("s1", "a", "1").
		AddText("s2", "a", "2").
		Build()
	res, err := Fuse(rel, NewRegistry(), Options{
		GroupBy: []string{"k"},
		Rules:   map[string]Spec{"v": {Name: "sum"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	vCol := res.Rel.Schema().MustLookup("v")
	lin := res.Lineage[0][vCol]
	if !lin.IsMixed() {
		t.Errorf("computed sum lineage = %v, want both sources", lin.Sources())
	}
}

func TestGroupsRecorded(t *testing.T) {
	res, err := Fuse(mergedStudents(), NewRegistry(), Options{GroupBy: []string{"objectID"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 3 {
		t.Fatalf("groups = %v", res.Groups)
	}
	if len(res.Groups[0]) != 2 || res.Groups[0][0] != 0 || res.Groups[0][1] != 1 {
		t.Errorf("group 0 = %v, want [0 1]", res.Groups[0])
	}
}

func TestKeepBookkeeping(t *testing.T) {
	res, err := Fuse(mergedStudents(), NewRegistry(), Options{
		GroupBy:         []string{"objectID"},
		KeepBookkeeping: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rel.Schema().Has("sourceID") || !res.Rel.Schema().Has("objectID") {
		t.Error("KeepBookkeeping must retain the columns")
	}
}

func TestChooseSourceInFusion(t *testing.T) {
	// The CD-shopping scenario: favor the data of the cheapest store.
	rel := relation.NewBuilder("cds", "sourceID", "Title", "Price", "objectID").
		AddText("shopA", "Abbey Road", "18.99", "0").
		AddText("shopB", "Abbey Road (Remaster)", "12.49", "0").
		Build()
	res, err := Fuse(rel, NewRegistry(), Options{
		GroupBy: []string{"objectID"},
		Rules: map[string]Spec{
			"Title": {Name: "choose", Arg: "shopB"},
			"Price": {Name: "min"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rel.Value(0, "Title").Text(); got != "Abbey Road (Remaster)" {
		t.Errorf("Title = %q, want shopB's", got)
	}
	if got := res.Rel.Value(0, "Price"); !got.Equal(value.NewFloat(12.49)) {
		t.Errorf("Price = %v, want 12.49", got)
	}
}

func TestMultiColumnGroupBy(t *testing.T) {
	rel := relation.NewBuilder("t", "a", "b", "v").
		AddText("1", "x", "p").
		AddText("1", "x", "q").
		AddText("1", "y", "r").
		Build()
	res, err := Fuse(rel, NewRegistry(), Options{GroupBy: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 2 {
		t.Fatalf("rows = %d, want 2", res.Rel.Len())
	}
}

func TestSingletonGroupsPassThrough(t *testing.T) {
	rel := relation.NewBuilder("t", "k", "v").
		AddText("a", "1").
		AddText("b", "2").
		Build()
	res, err := Fuse(rel, NewRegistry(), Options{GroupBy: []string{"k"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 2 {
		t.Fatalf("rows = %d", res.Rel.Len())
	}
	if got := res.Rel.Value(0, "v"); !got.Equal(value.NewInt(1)) {
		t.Errorf("singleton v = %v", got)
	}
}
