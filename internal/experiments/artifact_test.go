package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestArtifactMerge: same-day runs accumulate into one artifact —
// same-ID entries are replaced, new ones appended, the total cost
// adds up, and the metadata tracks the latest run.
func TestArtifactMerge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_2026-01-01.json")

	runA := &Artifact{
		Date: "2026-01-01", Seed: 1, GoMaxProcs: 1, GoVersion: "go1.24.0",
		TotalSeconds: 2,
		Experiments: []ArtifactEntry{
			{ID: "E3", Title: "first", Seconds: 1},
			{ID: "E14", Title: "serving", Seconds: 1},
		},
	}
	if n, err := WriteMerged(path, runA); err != nil || n != 2 {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}

	runB := &Artifact{
		Date: "2026-01-01", Seed: 9, GoMaxProcs: 4, GoVersion: "go1.24.0",
		TotalSeconds: 3,
		Experiments: []ArtifactEntry{
			{ID: "e14", Title: "serving, remeasured", Seconds: 2},
			{ID: "E16", Title: "loadgen", Seconds: 1},
		},
	}
	if n, err := WriteMerged(path, runB); err != nil || n != 3 {
		t.Fatalf("merge write: n=%d err=%v", n, err)
	}

	got, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 9 || got.GoMaxProcs != 4 {
		t.Errorf("metadata not from the latest run: %+v", got)
	}
	if got.TotalSeconds != 5 {
		t.Errorf("TotalSeconds = %v, want 5 (accumulated)", got.TotalSeconds)
	}
	var ids, titles []string
	for _, e := range got.Experiments {
		ids = append(ids, e.ID)
		titles = append(titles, e.Title)
	}
	if strings.Join(ids, ",") != "E3,e14,E16" {
		t.Errorf("merged ids = %v, want existing order with E16 appended", ids)
	}
	if titles[1] != "serving, remeasured" {
		t.Errorf("same-ID entry not replaced: %v", titles)
	}
}

// TestLoadArtifactMissingAndCorrupt: a missing file starts fresh; a
// non-artifact file refuses to be overwritten and points at -out.
func TestLoadArtifactMissingAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	if art, err := LoadArtifact(filepath.Join(dir, "nope.json")); art != nil || err != nil {
		t.Fatalf("missing file: art=%v err=%v, want nil/nil", art, err)
	}

	bad := filepath.Join(dir, "BENCH_x.json")
	if err := os.WriteFile(bad, []byte("definitely: not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArtifact(bad); err == nil || !strings.Contains(err.Error(), "-out") {
		t.Fatalf("corrupt file error = %v, want refusal mentioning -out", err)
	}
	if _, err := WriteMerged(bad, &Artifact{}); err == nil {
		t.Fatal("WriteMerged over a corrupt file unexpectedly succeeded")
	}
	if data, _ := os.ReadFile(bad); string(data) != "definitely: not json" {
		t.Fatalf("corrupt file was clobbered: %q", data)
	}
}

// TestE16Smoke: the traffic-mix experiment produces a row and a
// sample per workload class, all percentiles positive.
func TestE16Smoke(t *testing.T) {
	rep := E16(2005, 24, 4)
	if rep == nil || rep.ID != "E16" {
		t.Fatalf("rep = %+v", rep)
	}
	if strings.Contains(rep.Notes, "error") {
		t.Fatalf("E16 failed: %s", rep.Notes)
	}
	if len(rep.Rows) == 0 || len(rep.Samples) != len(rep.Rows) {
		t.Fatalf("rows=%d samples=%d", len(rep.Rows), len(rep.Samples))
	}
	for _, s := range rep.Samples {
		if s.Load == nil {
			t.Errorf("sample %s has no load measurement", s.Name)
			continue
		}
		if s.Load.Latency.Count > 0 && s.Load.Latency.P50Seconds <= 0 {
			t.Errorf("sample %s: p50 = %v", s.Name, s.Load.Latency.P50Seconds)
		}
	}
	if !strings.Contains(rep.Notes, "fingerprint") {
		t.Errorf("notes missing the schedule fingerprint: %s", rep.Notes)
	}
}
