package experiments

import (
	"strings"
	"testing"
)

// Small parameters keep the suite fast; the assertions are about the
// qualitative shapes EXPERIMENTS.md claims, not absolute numbers.

func TestE3ShapeKCurve(t *testing.T) {
	rep := E3(7, 120)
	if len(rep.Rows) != 7 { // 6 k-values + naive
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// F1 at k=20 (dirtiest column) must be ≥ F1 at k=1.
	first := rep.Rows[0][3]
	last := rep.Rows[5][3]
	if last < first {
		t.Errorf("very-dirty F1 must not degrade with more duplicates: k1=%s k20=%s", first, last)
	}
}

func TestE4AllOverlapsScored(t *testing.T) {
	rep := E4(7, 120)
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row[2] == "err" {
			t.Errorf("overlap %s errored", row[0])
		}
	}
}

func TestE5PrecisionRisesWithThreshold(t *testing.T) {
	rep := E5(7, 40, 3)
	if len(rep.Rows) < 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	lo := rep.Rows[0][1]               // precision at 0.5
	hi := rep.Rows[len(rep.Rows)-1][1] // precision at 0.95
	if hi < lo {
		t.Errorf("precision must rise with threshold: %s → %s", lo, hi)
	}
	// Recall must fall (or stay) with threshold.
	rLo := rep.Rows[0][2]
	rHi := rep.Rows[len(rep.Rows)-1][2]
	if rHi > rLo {
		t.Errorf("recall must fall with threshold: %s → %s", rLo, rHi)
	}
}

func TestE6FilterSoundness(t *testing.T) {
	rep := E6(7, []int{60, 120})
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row[4] != row[5] {
			t.Errorf("filter changed F1: on=%s off=%s", row[4], row[5])
		}
	}
}

func TestE7MatrixComplete(t *testing.T) {
	rep := E7()
	if len(rep.Rows) != 12 {
		t.Fatalf("functions = %d, want 12", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if len(row) != 5 {
			t.Fatalf("row %v: want function + 4 patterns", row)
		}
		for _, cell := range row {
			if cell == "err" {
				t.Errorf("function %s errored", row[0])
			}
		}
	}
	// Spot-check the semantics EXPERIMENTS.md documents.
	byName := map[string][]string{}
	for _, row := range rep.Rows {
		byName[row[0]] = row[1:]
	}
	if byName["first"][2] != "NULL" {
		t.Errorf("first on null-pad = %q, want NULL (paper: even if null)", byName["first"][2])
	}
	if byName["coalesce"][2] != "x" {
		t.Errorf("coalesce on null-pad = %q, want x", byName["coalesce"][2])
	}
	if byName["group"][1] != "{x, y}" {
		t.Errorf("group on conflict = %q", byName["group"][1])
	}
	if byName["count"][3] != "0" {
		t.Errorf("count on all-null = %q", byName["count"][3])
	}
}

func TestE8BaselineFaster(t *testing.T) {
	rep := E8(7, []int{100})
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	slow := rep.Rows[0][4]
	if slow == "-" || strings.HasPrefix(slow, "0") {
		t.Errorf("full pipeline should be slower than exact grouping, got %q", slow)
	}
}

func TestE9AllScenariosRun(t *testing.T) {
	rep := E9(7)
	if len(rep.Rows) != 3 {
		t.Fatalf("scenarios = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if strings.HasPrefix(row[2], "err") {
			t.Errorf("scenario %s failed: %v", row[0], row)
		}
		if row[0] == "cleansing" && row[5] != "0" {
			t.Errorf("single-source cleansing cannot have mixed lineage, got %s", row[5])
		}
	}
}

func TestE10CoversAllTwelveClasses(t *testing.T) {
	rep := E10(7, 40)
	if len(rep.Rows) != 12 {
		t.Fatalf("classes = %d, want 12", len(rep.Rows))
	}
	bridged := 0
	for _, row := range rep.Rows {
		if row[5] == "yes" {
			bridged++
		}
		if row[2] == "err" {
			t.Errorf("class %s errored", row[0])
		}
	}
	// The synonym and opaque-name classes must always be bridged —
	// that is DUMAS's raison d'être.
	if rep.Rows[0][5] != "yes" {
		t.Error("synonyms not bridged")
	}
	if rep.Rows[10][5] != "yes" {
		t.Error("opaque names not bridged")
	}
	if bridged < 8 {
		t.Errorf("only %d/12 classes bridged", bridged)
	}
}

func TestE12ParallelIdenticalAndMeasured(t *testing.T) {
	rep := E12(7, []int{200})
	if len(rep.Rows) != 3 { // exhaustive, SNM, blocking
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if strings.HasPrefix(row[2], "err") {
			t.Errorf("method %s errored: %v", row[1], row)
			continue
		}
		if row[7] != "yes" {
			t.Errorf("method %s: parallel result differed from sequential", row[1])
		}
	}
	if len(rep.Samples) != 6 { // 3 methods × {sequential, parallel}
		t.Fatalf("samples = %d, want 6", len(rep.Samples))
	}
	for _, s := range rep.Samples {
		if s.Seconds < 0 || s.Rows == 0 || s.Stats.CandidatePairs == 0 {
			t.Errorf("degenerate sample %+v", s)
		}
	}
}

func TestE13ParallelIdenticalAndMeasured(t *testing.T) {
	rep := E13(7, []int{150})
	if len(rep.Rows) != 3 { // token index, SNM, q-grams
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if strings.HasPrefix(row[2], "err") {
			t.Errorf("method %s errored: %v", row[1], row)
			continue
		}
		if row[7] != "yes" {
			t.Errorf("method %s: parallel result differed from sequential", row[1])
		}
	}
	if len(rep.Samples) != 6 { // 3 methods × {sequential, parallel}
		t.Fatalf("samples = %d, want 6", len(rep.Samples))
	}
	for _, s := range rep.Samples {
		if s.Seconds < 0 || s.Rows == 0 || s.Stats.CandidatePairs == 0 {
			t.Errorf("degenerate sample %+v", s)
		}
	}
}

func TestE14WarmServedFromCacheAndIdentical(t *testing.T) {
	rep := E14(7, 120, 16, 4)
	if len(rep.Rows) != 3 { // cold, warm sequential, warm concurrent
		t.Fatalf("rows = %d in %v (notes: %s)", len(rep.Rows), rep.Rows, rep.Notes)
	}
	if strings.Contains(rep.Notes, "error") {
		t.Fatalf("experiment errored: %s", rep.Notes)
	}
	for _, row := range rep.Rows[1:] {
		if row[7] != "yes" {
			t.Errorf("phase %s: warm response not byte-identical to cold", row[0])
		}
		// Warm phases must be overwhelmingly cache-served.
		if row[6] == "0%" || row[6] == "-" {
			t.Errorf("phase %s: no cache hits reported (%s)", row[0], row[6])
		}
	}
	if len(rep.Samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(rep.Samples))
	}
	for _, s := range rep.Samples {
		if s.Seconds < 0 || s.Rows == 0 {
			t.Errorf("degenerate sample %+v", s)
		}
	}
}

func TestByIDAndIDs(t *testing.T) {
	for _, id := range IDs() {
		if ByID(id, 7) == nil {
			t.Errorf("ByID(%q) = nil", id)
		}
		if ByID(strings.ToUpper(id), 7) == nil {
			t.Errorf("ByID must be case-insensitive for %q", id)
		}
	}
	if ByID("e99", 7) != nil {
		t.Error("unknown id must return nil")
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{
		ID: "EX", Title: "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  "a note",
	}
	s := rep.String()
	for _, want := range []string{"EX — demo", "a", "bb", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}
