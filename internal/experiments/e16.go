package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"

	"hummer"
	"hummer/internal/loadgen"
	"hummer/internal/server"
)

// e16 defaults: enough traffic that every class of the default mix
// appears with a handful of samples, small enough for `hummer-bench`
// to stay interactive.
const (
	e16Entities    = 60
	e16Requests    = 96
	e16Concurrency = 8
)

// E16 measures hummerd under a production-shaped traffic mix: the
// hummer-loadgen harness drives a seeded closed-loop schedule of warm
// and cold fusion queries, materialized and streamed scans, streamed
// fusions and batches against an in-process server, and reports
// per-class latency percentiles plus time-to-first-row for the
// streaming classes. The same schedule seed always produces the same
// request sequence (the fingerprint in the notes certifies it), so
// runs of this experiment are comparable across the perf trajectory.
// cmd/hummer-loadgen emits this same experiment against a live
// hummerd over the network. Experiments run on a background context:
// a bench run is never cancelled mid-measurement.
func E16(seed int64, requests, concurrency int) *Report {
	fail := func(msg string, err error) *Report {
		return &Report{ID: "E16", Title: "loadgen traffic mix against hummerd",
			Notes: msg + ": " + err.Error()}
	}

	db := hummer.New()
	ts := httptest.NewServer(server.New(db).Handler())
	defer ts.Close()
	ctx := context.Background()
	if err := loadgen.Setup(ctx, ts.Client(), ts.URL, seed, e16Entities); err != nil {
		return fail("setup error", err)
	}

	cfg := loadgen.Config{
		BaseURL:     ts.URL,
		Client:      ts.Client(),
		Seed:        seed,
		Mode:        loadgen.ModeClosed,
		Classes:     loadgen.DefaultClasses(),
		Concurrency: concurrency,
		Requests:    requests,
	}
	res, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return fail("run error", err)
	}
	return E16Report(res,
		fmt.Sprintf("in-process hummerd, %d person entities", e16Entities))
}

// E16Report renders a loadgen result as the E16 experiment table —
// shared by the in-process run above and by cmd/hummer-loadgen's
// live-server runs, so both land in BENCH_*.json under the same
// schema.
func E16Report(res *loadgen.Result, where string) *Report {
	rep := &Report{
		ID: "E16",
		Title: fmt.Sprintf("loadgen traffic mix (%s, %s-loop, %d requests)",
			where, res.Mode, res.ScheduleRequests),
		Header: []string{"class", "endpoint", "requests", "ok", "p50", "p95", "p99", "max", "ttfr p50"},
		Notes: fmt.Sprintf(
			"schedule seed %d fingerprint %s (same seed => identical request schedule); cold classes purge the artifact cache before each request (purge excluded from the latency); overall %.1f req/s, statuses %v",
			res.Seed, res.ScheduleFingerprint, res.ThroughputRPS, res.Statuses),
	}
	for i := range res.Classes {
		cr := res.Classes[i]
		ttfr := "-"
		if cr.TTFR != nil {
			ttfr = fmtSeconds(cr.TTFR.P50Seconds)
		}
		rep.Rows = append(rep.Rows, []string{
			cr.Class, cr.Endpoint,
			fmt.Sprint(cr.Requests), fmt.Sprint(cr.Latency.Count),
			fmtSeconds(cr.Latency.P50Seconds), fmtSeconds(cr.Latency.P95Seconds),
			fmtSeconds(cr.Latency.P99Seconds), fmtSeconds(cr.Latency.MaxSeconds),
			ttfr,
		})
		rep.Samples = append(rep.Samples, BenchSample{
			Name:    "e16/" + cr.Class,
			Rows:    int(cr.Rows),
			Workers: cr.Requests,
			Seconds: cr.Latency.MeanSeconds * float64(cr.Latency.Count),
			Load:    &res.Classes[i],
		})
	}
	return rep
}

// fmtSeconds renders a duration-in-seconds at microsecond-ish
// precision without trailing noise.
func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 0.001:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}
