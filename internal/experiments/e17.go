package experiments

import (
	"context"
	"fmt"
	"runtime"

	"hummer"
	"hummer/internal/datagen"
	"hummer/internal/engine"
	"hummer/internal/qcache"
	"hummer/internal/relation"
	"hummer/internal/value"
)

// E17 defaults: a batch big enough that sharing is observable, a join
// big enough that the probe timing is not noise.
const (
	e17Entities  = 200
	e17JoinLeft  = 40000
	e17JoinRight = 10000
	e17Workers   = 4
	e17Seeds     = 3
)

// E17 measures the planner layer across seeds: (a) cross-statement
// CSE — a concurrent batch over overlapping sources runs ONE
// schema-matching pass, ONE duplicate-detection pass and ONE
// materialization of the shared plain-SELECT source subtree, counted
// by the cache tiers; (b) the batched parallel hash-join probe —
// sequential vs parallel wall-clock on a synthetic many-row join.
// The "identical" column asserts byte-identity twice over: the
// parallel join output equals the sequential one, and the concurrent
// batch returns exactly what a strictly sequential batch returns.
// Speedups reflect the recording box (see gomaxprocs in the
// artifact); the identity and one-pass columns are the
// hardware-independent acceptance signal.
func E17(seed int64, seeds int) *Report {
	if seeds < 1 {
		seeds = 1
	}
	rep := &Report{
		ID:    "E17",
		Title: fmt.Sprintf("planner layer: batch CSE hit rate + parallel join speedup (%d seeds)", seeds),
		Header: []string{"seed", "batch stmts", "cse unique", "cse shared", "match passes",
			"detect passes", "join seq", fmt.Sprintf("join par(%d)", e17Workers), "speedup", "identical"},
		Notes: fmt.Sprintf(
			"batch: 2 fusion + 3 plain statements over overlapping sources at parallelism %d — one pass per shared artifact regardless of batch width; join: %d probe × %d build rows, min of 3 runs; GOMAXPROCS=%d on the recording box, identity asserted at every worker count",
			e17Workers, e17JoinLeft, e17JoinRight, runtime.GOMAXPROCS(0)),
	}
	for i := 0; i < seeds; i++ {
		s := seed + int64(i)
		row, samples := e17Run(s)
		rep.Rows = append(rep.Rows, row)
		rep.Samples = append(rep.Samples, samples...)
	}
	return rep
}

// e17Run measures one seed: the concurrent batch with its sharing
// counters, then the sequential-vs-parallel join timing. Experiments
// run on a background context: a bench run is never cancelled
// mid-measurement.
func e17Run(seed int64) ([]string, []BenchSample) {
	stmts := []string{
		`SELECT Name, RESOLVE(Age, max) FUSE FROM s1, s2 FUSE BY (Name) ORDER BY Name`,
		`SELECT Name, RESOLVE(Age, min) FUSE FROM s1, s2 FUSE BY (Name) ORDER BY Name`,
		`SELECT Name, Town FROM s1 JOIN s2 ON Name = FullName ORDER BY Name`,
		`SELECT Town FROM s1 JOIN s2 ON Name = FullName`,
		`SELECT count(*) AS n FROM s1 JOIN s2 ON Name = FullName`,
	}
	errRow := func(msg string, err error) []string {
		return []string{fmt.Sprint(seed), fmt.Sprint(len(stmts)), "err: " + msg + ": " + err.Error(),
			"", "", "", "", "", "", ""}
	}

	runBatch := func(parallelism int) (*hummer.DB, []hummer.BatchResult, error) {
		db, err := e17DB(seed)
		if err != nil {
			return nil, nil, err
		}
		db.SetParallelism(parallelism)
		return db, db.QueryBatch(context.Background(), stmts), nil
	}
	conDB, con, err := runBatch(e17Workers)
	if err != nil {
		return errRow("setup", err), nil
	}
	_, seq, err := runBatch(1)
	if err != nil {
		return errRow("setup", err), nil
	}
	identical := "yes"
	for i := range stmts {
		if con[i].Err != nil {
			return errRow("batch statement "+fmt.Sprint(i), con[i].Err), nil
		}
		if seq[i].Err != nil || con[i].Result.Rel.String() != seq[i].Result.Rel.String() {
			identical = "NO"
		}
	}
	st := conDB.Stats()
	matchPasses := st.Cache.Kinds[qcache.KindMatch].Misses
	detectPasses := st.Cache.Kinds[qcache.KindDetect].Misses

	seqDur, parDur, joinSame := e17Join(seed)
	if !joinSame {
		identical = "NO"
	}
	speedup := "-"
	if parDur > 0 {
		speedup = fmt.Sprintf("%.2fx", float64(seqDur)/float64(parDur))
	}
	row := []string{
		fmt.Sprint(seed), fmt.Sprint(len(stmts)),
		fmt.Sprint(st.CSEUnique), fmt.Sprint(st.CSEShared),
		fmt.Sprint(matchPasses), fmt.Sprint(detectPasses),
		fmtDuration(seqDur), fmtDuration(parDur), speedup, identical,
	}
	samples := []BenchSample{
		{Name: fmt.Sprintf("e17/seed%d/join/sequential", seed), Rows: e17JoinLeft,
			Workers: 1, Seconds: float64(seqDur) / 1e9},
		{Name: fmt.Sprintf("e17/seed%d/join/parallel", seed), Rows: e17JoinLeft,
			Workers: e17Workers, Seconds: float64(parDur) / 1e9},
	}
	return row, samples
}

// e17DB builds the overlapping-source DB for one seed: two person
// sources over the same entities, the second with renamed attributes.
func e17DB(seed int64) (*hummer.DB, error) {
	ents := datagen.Persons.Generate(seed, e17Entities)
	left := datagen.ObserveShuffled(datagen.Persons, ents, datagen.SourceSpec{
		Alias: "s1", TypoRate: 0.1, NullRate: 0.05, Seed: seed + 11,
	})
	right := datagen.ObserveShuffled(datagen.Persons, ents, datagen.SourceSpec{
		Alias: "s2", Renames: personRenames, TypoRate: 0.1, NullRate: 0.05, Seed: seed + 12,
	})
	db := hummer.New()
	if err := db.RegisterTable("s1", left.Rel); err != nil {
		return nil, err
	}
	if err := db.RegisterTable("s2", right.Rel); err != nil {
		return nil, err
	}
	return db, nil
}

// e17Join times the raw hash-join operator — sequential probe vs the
// batched parallel probe — on a seeded synthetic workload, min of 3
// runs each, and checks the outputs are byte-identical.
func e17Join(seed int64) (seqNs, parNs int64, identical bool) {
	// A small LCG keeps the key distribution seed-dependent without
	// reaching for the (intentionally unavailable) global RNG.
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func(n int) int {
		state = state*2862933555777941757 + 3037000493
		return int(state % uint64(n))
	}
	lb := relation.NewBuilder("l", "k", "i")
	for i := 0; i < e17JoinLeft; i++ {
		lb.Add(value.NewInt(int64(next(e17JoinRight))), value.NewInt(int64(i)))
	}
	left := lb.Build()
	rb := relation.NewBuilder("r", "k", "j")
	for i := 0; i < e17JoinRight; i++ {
		rb.Add(value.NewInt(int64(i)), value.NewInt(int64(i*7)))
	}
	right := rb.Build()

	run := func(workers int) (int64, *relation.Relation) {
		best := int64(0)
		var out *relation.Relation
		for i := 0; i < 3; i++ {
			j, err := engine.NewHashJoin(engine.NewScan(left), engine.NewScan(right), "k", "k")
			if err != nil {
				return 0, nil
			}
			j.SetParallelism(workers)
			t0 := nowMono()
			rel, err := engine.Materialize("out", j)
			d := nowMono() - t0
			if err != nil {
				return 0, nil
			}
			if best == 0 || d < best {
				best = d
			}
			out = rel
		}
		return best, out
	}
	seqNs, seqOut := run(1)
	parNs, parOut := run(e17Workers)
	if seqOut == nil || parOut == nil {
		return seqNs, parNs, false
	}
	return seqNs, parNs, seqOut.String() == parOut.String()
}
