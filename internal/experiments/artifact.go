package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Artifact is the schema of a BENCH_<date>.json perf-trajectory
// file: one run's (or one day's merged runs') experiment tables and
// machine-readable samples. cmd/hummer-bench and cmd/hummer-loadgen
// both write through this type so that a day's artifact accumulates
// experiments instead of each tool clobbering the other's results.
type Artifact struct {
	Date       string `json:"date"`
	Seed       int64  `json:"seed"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	// TotalSeconds accumulates the wall-clock cost of every run merged
	// into this file, not just the latest one.
	TotalSeconds float64         `json:"total_seconds"`
	Experiments  []ArtifactEntry `json:"experiments"`
}

// ArtifactEntry is one experiment in the artifact.
type ArtifactEntry struct {
	ID      string        `json:"id"`
	Title   string        `json:"title"`
	Seconds float64       `json:"seconds"`
	Header  []string      `json:"header"`
	Rows    [][]string    `json:"rows"`
	Samples []BenchSample `json:"samples,omitempty"`
}

// EntryFor converts a finished report (with its wall-clock cost) into
// an artifact entry.
func EntryFor(rep *Report, seconds float64) ArtifactEntry {
	return ArtifactEntry{
		ID: rep.ID, Title: rep.Title, Seconds: seconds,
		Header: rep.Header, Rows: rep.Rows, Samples: rep.Samples,
	}
}

// LoadArtifact reads an existing artifact. A missing file is not an
// error — it returns (nil, nil) and the caller starts fresh. A file
// that exists but does not parse as an artifact IS an error: writing
// over it would silently destroy someone's data, so the caller should
// surface the problem (and suggest -out to write elsewhere).
func LoadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("%s exists but is not a benchmark artifact (%v); refusing to overwrite it — pass -out to write elsewhere", path, err)
	}
	return &art, nil
}

// Merge folds a new run into an existing same-day artifact: entries
// with the same experiment ID are replaced in place (the newest
// measurement wins), new IDs are appended, the run metadata (seed,
// gomaxprocs, go version, date) reflects the latest run, and the
// total cost accumulates. A nil receiver merges into a copy of run —
// so `existing.Merge(run)` handles the missing-file case uniformly.
func (a *Artifact) Merge(run *Artifact) *Artifact {
	if a == nil {
		cp := *run
		return &cp
	}
	merged := *run
	merged.TotalSeconds = a.TotalSeconds + run.TotalSeconds
	merged.Experiments = append([]ArtifactEntry(nil), a.Experiments...)
	for _, e := range run.Experiments {
		replaced := false
		for i, old := range merged.Experiments {
			if strings.EqualFold(old.ID, e.ID) {
				merged.Experiments[i] = e
				replaced = true
				break
			}
		}
		if !replaced {
			merged.Experiments = append(merged.Experiments, e)
		}
	}
	return &merged
}

// Write stores the artifact as indented JSON.
func (a *Artifact) Write(path string) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteMerged is the one-call flow both binaries use: load whatever
// artifact already sits at path, fold the run in, and write the
// result back. Returns the number of experiments in the final file.
func WriteMerged(path string, run *Artifact) (int, error) {
	existing, err := LoadArtifact(path)
	if err != nil {
		return 0, err
	}
	merged := existing.Merge(run)
	if err := merged.Write(path); err != nil {
		return 0, err
	}
	return len(merged.Experiments), nil
}
