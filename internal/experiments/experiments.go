// Package experiments implements the reproduction experiments of
// DESIGN.md §3 (E3–E10): each experiment generates its workload,
// runs the component under test, and returns a formatted report table.
// The cmd/hummer-bench binary prints these tables; EXPERIMENTS.md
// records them.
package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"time"

	"hummer"
	"hummer/internal/core"
	"hummer/internal/datagen"
	"hummer/internal/dumas"
	"hummer/internal/dupdetect"
	"hummer/internal/eval"
	"hummer/internal/fault"
	"hummer/internal/fusion"
	"hummer/internal/loadgen"
	"hummer/internal/metadata"
	"hummer/internal/qcache"
	"hummer/internal/relation"
	"hummer/internal/schema"
	"hummer/internal/server"
	"hummer/internal/thalia"
	"hummer/internal/value"
)

// Report is one experiment's output table.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
	// Samples are machine-readable measurements backing the table,
	// written into the BENCH_<date>.json trajectory artifact by
	// cmd/hummer-bench -json. Not rendered by String.
	Samples []BenchSample
}

// BenchSample is one machine-readable measurement: a named run with
// its wall-clock cost and the detector's comparison counters.
type BenchSample struct {
	Name    string          `json:"name"`
	Rows    int             `json:"rows"`
	Workers int             `json:"workers"`
	Seconds float64         `json:"seconds"`
	Stats   dupdetect.Stats `json:"stats"`
	// Load carries a loadgen per-class measurement (statuses, latency
	// and time-to-first-row percentiles) for the traffic experiments.
	Load *loadgen.ClassResult `json:"load,omitempty"`
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	if r.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", r.Notes)
	}
	return b.String()
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// personRenames is the schematic heterogeneity used by the matching
// experiments: the second source labels every attribute differently.
var personRenames = map[string]string{
	"Name": "FullName", "Age": "Years", "City": "Town",
	"Email": "Mail", "Phone": "Telephone",
}

// matchingTruth converts canonical→variant renames into the
// left→right truth map for eval.Matching (left = preferred source,
// which keeps canonical names).
func matchingTruth(renames map[string]string, attrs []string) map[string]string {
	truth := map[string]string{}
	for _, a := range attrs {
		if r, ok := renames[a]; ok {
			truth[a] = r
		} else {
			truth[a] = a
		}
	}
	return truth
}

// E3 measures DUMAS matching quality against the number of duplicates
// used (k) at three dirtiness levels, reproducing the central claim of
// the DUMAS paper: a handful of duplicates suffices for reliable
// matching, and more duplicates stabilize matching on dirty data.
func E3(seed int64, entities int) *Report {
	ents := datagen.Persons.Generate(seed, entities)
	truth := matchingTruth(personRenames, datagen.Persons.Attributes)
	dirtLevels := []struct {
		label string
		typo  float64
		null  float64
	}{
		{"clean", 0.05, 0.05},
		{"dirty", 0.3, 0.2},
		{"very dirty", 0.5, 0.35},
	}
	rep := &Report{
		ID:     "E3",
		Title:  "DUMAS matching F1 vs. number of duplicates used (persons, 2 sources)",
		Header: []string{"k duplicates", "F1 clean", "F1 dirty", "F1 very dirty"},
		Notes:  "the DUMAS claim: a handful of duplicates suffices; averaging over more duplicates stabilizes dirty data; 'naive' is the duplicate-free column matcher (ablation D1)",
	}
	type pair struct{ left, right *datagen.Observation }
	pairs := make([]pair, len(dirtLevels))
	for d, lvl := range dirtLevels {
		pairs[d] = pair{
			left: datagen.ObserveShuffled(datagen.Persons, ents, datagen.SourceSpec{
				Alias: "s1", Coverage: 0.7, TypoRate: lvl.typo, NullRate: lvl.null,
				Seed: seed + int64(d)*100 + 1,
			}),
			right: datagen.ObserveShuffled(datagen.Persons, ents, datagen.SourceSpec{
				Alias: "s2", Renames: personRenames,
				Coverage: 0.7, TypoRate: lvl.typo, NullRate: lvl.null,
				Seed: seed + int64(d)*100 + 2,
			}),
		}
	}
	for _, k := range []int{1, 2, 3, 5, 10, 20} {
		row := []string{fmt.Sprint(k)}
		for d := range dirtLevels {
			res, err := dumas.Match(pairs[d].left.Rel, pairs[d].right.Rel,
				dumas.Config{MaxDuplicates: k})
			if err != nil {
				row = append(row, "err")
				continue
			}
			m := eval.Matching(res.Correspondences, truth)
			row = append(row, f2(m.F1))
		}
		rep.Rows = append(rep.Rows, row)
	}
	naiveRow := []string{"naive (D1)"}
	for d := range dirtLevels {
		naive := dumas.NaiveMatch(pairs[d].left.Rel, pairs[d].right.Rel, 0.35)
		m := eval.Matching(naive.Correspondences, truth)
		naiveRow = append(naiveRow, f2(m.F1))
	}
	rep.Rows = append(rep.Rows, naiveRow)
	return rep
}

// E4 measures matching quality against the duplicate-overlap rate
// between the two sources: with fewer shared entities, duplicate
// discovery has less to work with.
func E4(seed int64, entities int) *Report {
	rep := &Report{
		ID:     "E4",
		Title:  "DUMAS matching quality vs. source overlap (persons, k=10)",
		Header: []string{"overlap", "shared rows", "precision", "recall", "F1"},
	}
	ents := datagen.Persons.Generate(seed, entities)
	truth := matchingTruth(personRenames, datagen.Persons.Attributes)
	for _, overlap := range []float64{0.05, 0.1, 0.2, 0.4, 0.8} {
		// Left sees the first (overlap+0.1) fraction, right sees the
		// last, so that roughly `overlap` of entities are shared.
		split := int(float64(entities) * (1 - overlap))
		leftEnts := ents[:minInt(entities, split+int(float64(entities)*overlap))]
		rightEnts := ents[split:]
		left := datagen.ObserveShuffled(datagen.Persons, leftEnts, datagen.SourceSpec{
			Alias: "s1", TypoRate: 0.1, Seed: seed + 1,
		})
		right := datagen.ObserveShuffled(datagen.Persons, rightEnts, datagen.SourceSpec{
			Alias: "s2", Renames: personRenames, TypoRate: 0.1, Seed: seed + 2,
		})
		shared := len(leftEnts) + len(rightEnts) - entities
		res, err := dumas.Match(left.Rel, right.Rel, dumas.Config{MaxDuplicates: 10})
		if err != nil {
			rep.Rows = append(rep.Rows, []string{f2(overlap), fmt.Sprint(shared), "err", "", ""})
			continue
		}
		m := eval.Matching(res.Correspondences, truth)
		rep.Rows = append(rep.Rows, []string{
			f2(overlap), fmt.Sprint(shared), f2(m.Precision), f2(m.Recall), f2(m.F1),
		})
	}
	return rep
}

// E5 sweeps the duplicate-detection threshold, reporting pairwise
// precision / recall / F1 — the DogmatiX-style evaluation.
func E5(seed int64, entities, dupesPer int) *Report {
	ents := datagen.Persons.Generate(seed, entities)
	obs := datagen.DirtyTable(datagen.Persons, ents, dupesPer, datagen.SourceSpec{
		Alias: "dirty", TypoRate: 0.15, NullRate: 0.1, NumericNoise: 0.1, Seed: seed + 3,
	})
	rep := &Report{
		ID: "E5",
		Title: fmt.Sprintf("duplicate detection quality vs. threshold (%d entities × %d representations)",
			entities, dupesPer),
		Header: []string{"threshold", "precision", "recall", "F1", "clusters"},
		Notes:  "ground truth: each entity appears exactly " + fmt.Sprint(dupesPer) + " times",
	}
	for _, th := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95} {
		res, err := dupdetect.Detect(obs.Rel, dupdetect.Config{Threshold: th})
		if err != nil {
			rep.Rows = append(rep.Rows, []string{f2(th), "err", err.Error(), "", ""})
			continue
		}
		m := eval.DuplicatePairs(res.ObjectIDs, obs.EntityIDs)
		rep.Rows = append(rep.Rows, []string{
			f2(th), f3(m.Precision), f3(m.Recall), f3(m.F1),
			fmt.Sprint(eval.ClusterCount(res.ObjectIDs)),
		})
	}
	return rep
}

// E6 measures the filter's effect (ablation D4): comparisons saved by
// the upper bound versus any recall lost (none, since the bound is
// sound).
func E6(seed int64, sizes []int) *Report {
	rep := &Report{
		ID:     "E6",
		Title:  "effect of the upper-bound filter on comparisons (threshold 0.8)",
		Header: []string{"rows", "candidate pairs", "compared (filter on)", "saved", "F1 on", "F1 off"},
		Notes:  "the filter is a sound upper bound: F1 must be identical with and without",
	}
	for _, n := range sizes {
		ents := datagen.Persons.Generate(seed, n/2)
		obs := datagen.DirtyTable(datagen.Persons, ents, 2, datagen.SourceSpec{
			Alias: "dirty", TypoRate: 0.15, NullRate: 0.1, Seed: seed + 4,
		})
		on, err := dupdetect.Detect(obs.Rel, dupdetect.Config{Threshold: 0.8})
		if err != nil {
			continue
		}
		off, err := dupdetect.Detect(obs.Rel, dupdetect.Config{Threshold: 0.8, DisableFilter: true})
		if err != nil {
			continue
		}
		mOn := eval.DuplicatePairs(on.ObjectIDs, obs.EntityIDs)
		mOff := eval.DuplicatePairs(off.ObjectIDs, obs.EntityIDs)
		saved := 1 - float64(on.Stats.Compared)/float64(on.Stats.CandidatePairs)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(obs.Rel.Len()),
			fmt.Sprint(on.Stats.CandidatePairs),
			fmt.Sprint(on.Stats.Compared),
			fmt.Sprintf("%.0f%%", saved*100),
			f3(mOn.F1), f3(mOff.F1),
		})
	}
	return rep
}

// E7 builds the resolution-semantics matrix: every built-in resolution
// function applied to the four canonical conflict patterns of the Fuse
// By paper — agreeing values, conflicting values, value-vs-null
// (subsumption), and all-null.
func E7() *Report {
	reg := fusion.NewRegistry()
	patterns := []struct {
		name    string
		values  []value.Value
		sources []string
	}{
		{"agree", []value.Value{value.NewString("x"), value.NewString("x")}, []string{"s1", "s2"}},
		{"conflict", []value.Value{value.NewString("x"), value.NewString("y")}, []string{"s1", "s2"}},
		{"null-pad", []value.Value{value.Null, value.NewString("x")}, []string{"s1", "s2"}},
		{"all-null", []value.Value{value.Null, value.Null}, []string{"s1", "s2"}},
	}
	funcs := []string{
		"coalesce", "first", "last", "vote", "group", "concat",
		"annconcat", "shortest", "longest", "min", "max", "count",
	}
	rep := &Report{
		ID:     "E7",
		Title:  "conflict-resolution semantics matrix (value patterns × functions)",
		Header: append([]string{"function"}, patternNames(patterns)...),
	}
	s := schema.FromNames("c")
	for _, fn := range funcs {
		f, ok := reg.Lookup(fn)
		if !ok {
			continue
		}
		row := []string{fn}
		for _, pat := range patterns {
			rows := make([]relation.Row, len(pat.values))
			for i, v := range pat.values {
				rows[i] = relation.Row{v}
			}
			ctx := &fusion.Context{
				Column: "c", Relation: "t", Schema: s,
				Rows: rows, Values: pat.values, Sources: pat.sources,
			}
			v, err := f(ctx, "")
			if err != nil {
				row = append(row, "err")
				continue
			}
			row = append(row, v.String())
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

func patternNames(patterns []struct {
	name    string
	values  []value.Value
	sources []string
}) []string {
	out := make([]string, len(patterns))
	for i, p := range patterns {
		out[i] = p.name
	}
	return out
}

// E8 measures end-to-end Fuse By cost against input size and duplicate
// ratio, with the plain outer union (no matching, no detection, no
// fuzzy duplicate detection) as the baseline — the price of similarity-
// based deduplication over exact grouping.
func E8(seed int64, sizes []int) *Report {
	rep := &Report{
		ID:     "E8",
		Title:  "Fuse By pipeline cost vs. input size (persons, 2 sources, wall-clock)",
		Header: []string{"rows in", "rows out", "exact grouping", "full pipeline", "slowdown"},
		Notes:  "the pipeline's duplicate detection is quadratic in input size; the outer-union baseline is linear",
	}
	for _, n := range sizes {
		ents := datagen.Persons.Generate(seed, n/2)
		repo := metadata.NewRepository()
		specs := []datagen.SourceSpec{
			{Alias: "s1", TypoRate: 0.1, NullRate: 0.05, Seed: seed + 1},
			{Alias: "s2", Renames: personRenames, TypoRate: 0.1, NullRate: 0.05, Seed: seed + 2},
		}
		rows := 0
		var aliases []string
		for _, sp := range specs {
			obs := datagen.ObserveShuffled(datagen.Persons, ents, sp)
			if err := repo.RegisterRelation(sp.Alias, obs.Rel); err != nil {
				continue
			}
			aliases = append(aliases, sp.Alias)
			rows += obs.Rel.Len()
		}
		p := &core.Pipeline{Repo: repo}

		t0 := nowMono()
		base, err := p.Run(aliases, core.Options{ExactGrouping: true, FuseBy: []string{"Email"}})
		baseDur := nowMono() - t0
		if err != nil {
			continue
		}
		t1 := nowMono()
		full, err := p.Run(aliases, core.Options{})
		fullDur := nowMono() - t1
		if err != nil {
			continue
		}
		_ = base
		slow := "-"
		if baseDur > 0 {
			slow = fmt.Sprintf("%.0fx", float64(fullDur)/float64(baseDur))
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(rows), fmt.Sprint(full.Fused.Rel.Len()),
			fmtDuration(baseDur), fmtDuration(fullDur), slow,
		})
	}
	return rep
}

// E9 runs the three demo scenarios of §1 end-to-end and summarizes
// each phase's output.
func E9(seed int64) *Report {
	rep := &Report{
		ID:     "E9",
		Title:  "demo scenarios end-to-end (paper §1)",
		Header: []string{"scenario", "sources", "input rows", "clusters", "fused rows", "mixed-lineage cells"},
	}
	type scenario struct {
		name    string
		domain  *datagen.Domain
		renames []map[string]string
	}
	scenarios := []scenario{
		{"CD catalogs", datagen.CDs, []map[string]string{
			nil,
			{"Artist": "Performer", "Title": "Album", "Price": "Cost"},
			{"Title": "Name", "Year": "Released", "Label": "Publisher"},
		}},
		{"cleansing", datagen.Persons, []map[string]string{nil}},
		{"crisis data", datagen.Crisis, []map[string]string{
			nil,
			{"Name": "Person", "Location": "Area", "Reported": "Date"},
		}},
	}
	for si, sc := range scenarios {
		repo := metadata.NewRepository()
		ents := sc.domain.Generate(seed+int64(si), 60)
		var aliases []string
		inputRows := 0
		for i, ren := range sc.renames {
			alias := fmt.Sprintf("%s_src%d", sc.domain.Name, i+1)
			spec := datagen.SourceSpec{
				Alias: alias, Renames: ren, Coverage: 0.8,
				TypoRate: 0.1, NullRate: 0.05, NumericNoise: 0.1,
				Seed: seed + int64(si*10+i),
			}
			var obs *datagen.Observation
			if len(sc.renames) == 1 {
				// Single-source cleansing: duplicates inside one table.
				obs = datagen.DirtyTable(sc.domain, ents, 2, spec)
			} else {
				obs = datagen.ObserveShuffled(sc.domain, ents, spec)
			}
			if err := repo.RegisterRelation(alias, obs.Rel); err != nil {
				continue
			}
			aliases = append(aliases, alias)
			inputRows += obs.Rel.Len()
		}
		p := &core.Pipeline{Repo: repo}
		res, err := p.Run(aliases, core.Options{})
		if err != nil {
			rep.Rows = append(rep.Rows, []string{sc.name, fmt.Sprint(len(aliases)), "err: " + err.Error(), "", "", ""})
			continue
		}
		mixed := 0
		for i := range res.Fused.Lineage {
			for _, l := range res.Fused.Lineage[i] {
				if l.IsMixed() {
					mixed++
				}
			}
		}
		clusters := 0
		if res.Detection != nil {
			clusters = len(res.Detection.Clusters)
		}
		rep.Rows = append(rep.Rows, []string{
			sc.name, fmt.Sprint(len(aliases)), fmt.Sprint(inputRows),
			fmt.Sprint(clusters), fmt.Sprint(res.Fused.Rel.Len()), fmt.Sprint(mixed),
		})
	}
	return rep
}

// E10 runs DUMAS over every THALIA heterogeneity class and reports
// which classes instance-based matching bridges automatically.
func E10(seed int64, courses int) *Report {
	rep := &Report{
		ID:     "E10",
		Title:  fmt.Sprintf("THALIA heterogeneity classes bridged by DUMAS (%d courses)", courses),
		Header: []string{"class", "name", "precision", "recall", "F1", "bridged"},
		Notes:  "bridged = recall ≥ 0.8 of the representable correspondences",
	}
	canon := thalia.Canonical(seed, courses)
	for _, c := range thalia.Classes() {
		v, err := thalia.Generate(c.ID, seed, courses)
		if err != nil {
			continue
		}
		res, err := dumas.Match(canon, v.Rel, dumas.Config{})
		if err != nil {
			rep.Rows = append(rep.Rows, []string{fmt.Sprint(c.ID), c.Name, "err", "", "", ""})
			continue
		}
		m := eval.Matching(res.Correspondences, v.Truth)
		bridged := "no"
		if m.Recall >= 0.8 {
			bridged = "yes"
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(c.ID), c.Name, f2(m.Precision), f2(m.Recall), f2(m.F1), bridged,
		})
	}
	return rep
}

// E11 compares sorted-neighborhood candidate generation (the
// scalability extension) against the exhaustive pairing: comparisons
// performed and pairwise F1, per window size.
func E11(seed int64, entities, dupesPer int) *Report {
	ents := datagen.Persons.Generate(seed, entities)
	obs := datagen.DirtyTable(datagen.Persons, ents, dupesPer, datagen.SourceSpec{
		Alias: "dirty", TypoRate: 0.15, NullRate: 0.1, Seed: seed + 5,
	})
	rep := &Report{
		ID:     "E11",
		Title:  fmt.Sprintf("sorted-neighborhood blocking vs. exhaustive pairing (%d rows)", obs.Rel.Len()),
		Header: []string{"method", "candidates", "compared", "precision", "recall", "F1"},
		Notes:  "SNM trades recall on far-sorting duplicates for near-linear cost",
	}
	runOne := func(label string, cfg dupdetect.Config) {
		res, err := dupdetect.Detect(obs.Rel, cfg)
		if err != nil {
			return
		}
		m := eval.DuplicatePairs(res.ObjectIDs, obs.EntityIDs)
		rep.Rows = append(rep.Rows, []string{
			label, fmt.Sprint(res.Stats.CandidatePairs), fmt.Sprint(res.Stats.Compared),
			f3(m.Precision), f3(m.Recall), f3(m.F1),
		})
	}
	runOne("exhaustive", dupdetect.Config{Threshold: 0.85})
	for _, w := range []int{2, 5, 10, 20} {
		runOne(fmt.Sprintf("SNM w=%d", w), dupdetect.Config{Threshold: 0.85, Window: w})
	}
	return rep
}

// E12 is the scale-up experiment for the sharded parallel detector:
// every candidate-generation strategy (exhaustive, sorted-neighborhood
// window, prefix blocking), each run sequentially (Parallelism=1) and
// parallel (Parallelism=0 ⇒ GOMAXPROCS), at growing input sizes. The
// parallel run must return a byte-identical clustering — the "same"
// column asserts it — so the speedup column is pure wall-clock.
func E12(seed int64, sizes []int) *Report {
	rep := &Report{
		ID:     "E12",
		Title:  "parallel sharded detection scale-up (exhaustive / window / blocking)",
		Header: []string{"rows", "method", "candidates", "compared", "sequential", "parallel", "speedup", "same", "F1"},
		Notes: fmt.Sprintf("parallel = %d workers (GOMAXPROCS); full scale-up: hummer-bench -exp e12 -sizes 1000,5000,20000",
			runtime.GOMAXPROCS(0)),
	}
	methods := []struct {
		label string
		cfg   dupdetect.Config
	}{
		{"exhaustive", dupdetect.Config{Threshold: 0.8}},
		{"SNM w=10", dupdetect.Config{Threshold: 0.8, Window: 10}},
		{"blocking p=4", dupdetect.Config{Threshold: 0.8, Blocking: 4}},
	}
	for _, n := range sizes {
		ents := datagen.Persons.Generate(seed, n/2)
		obs := datagen.DirtyTable(datagen.Persons, ents, 2, datagen.SourceSpec{
			Alias: "dirty", TypoRate: 0.15, NullRate: 0.1, Seed: seed + 6,
		})
		for _, meth := range methods {
			seqCfg := meth.cfg
			seqCfg.Parallelism = 1
			t0 := nowMono()
			seq, err := dupdetect.Detect(obs.Rel, seqCfg)
			seqDur := nowMono() - t0
			if err != nil {
				rep.Rows = append(rep.Rows, []string{fmt.Sprint(obs.Rel.Len()), meth.label, "err: " + err.Error(), "", "", "", "", "", ""})
				continue
			}
			parCfg := meth.cfg
			parCfg.Parallelism = 0 // GOMAXPROCS
			t1 := nowMono()
			par, err := dupdetect.Detect(obs.Rel, parCfg)
			parDur := nowMono() - t1
			if err != nil {
				rep.Rows = append(rep.Rows, []string{fmt.Sprint(obs.Rel.Len()), meth.label, "err: " + err.Error(), "", "", "", "", "", ""})
				continue
			}
			same := "yes"
			if !reflect.DeepEqual(seq, par) {
				same = "NO"
			}
			speedup := "-"
			if parDur > 0 {
				speedup = fmt.Sprintf("%.2fx", float64(seqDur)/float64(parDur))
			}
			m := eval.DuplicatePairs(seq.ObjectIDs, obs.EntityIDs)
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprint(obs.Rel.Len()), meth.label,
				fmt.Sprint(seq.Stats.CandidatePairs), fmt.Sprint(seq.Stats.Compared),
				fmtDuration(seqDur), fmtDuration(parDur), speedup, same, f3(m.F1),
			})
			rep.Samples = append(rep.Samples,
				BenchSample{
					Name: "e12/" + meth.label + "/sequential", Rows: obs.Rel.Len(),
					Workers: 1, Seconds: float64(seqDur) / 1e9, Stats: seq.Stats,
				},
				BenchSample{
					Name: "e12/" + meth.label + "/parallel", Rows: obs.Rel.Len(),
					Workers: runtime.GOMAXPROCS(0), Seconds: float64(parDur) / 1e9, Stats: par.Stats,
				})
		}
	}
	return rep
}

// E13 is the scale-up experiment for the sharded parallel DUMAS
// matcher: every duplicate-discovery strategy (token index, sorted-
// neighborhood window, q-gram prefix blocking), each run sequentially
// (Parallelism=1) and parallel (Parallelism=0 ⇒ GOMAXPROCS), at
// growing input sizes (n rows per source ⇒ an n×n cross-relation
// sweep). The parallel run must return a byte-identical Result — the
// "same" column asserts it — so the speedup column is pure wall-clock.
func E13(seed int64, sizes []int) *Report {
	rep := &Report{
		ID:     "E13",
		Title:  "parallel sharded DUMAS matching scale-up (token index / window / q-grams)",
		Header: []string{"rows×rows", "method", "candidates", "scored", "sequential", "parallel", "speedup", "same", "F1"},
		Notes: fmt.Sprintf("parallel = %d workers (GOMAXPROCS); full scale-up: hummer-bench -exp e13 -sizes 300,900",
			runtime.GOMAXPROCS(0)),
	}
	truth := matchingTruth(personRenames, datagen.Persons.Attributes)
	methods := []struct {
		label string
		cfg   dumas.Config
	}{
		{"token index", dumas.Config{}},
		{"SNM w=20", dumas.Config{Window: 20}},
		{"q-grams q=3", dumas.Config{QGrams: 3}},
	}
	for _, n := range sizes {
		ents := datagen.Persons.Generate(seed, n)
		left := datagen.ObserveShuffled(datagen.Persons, ents, datagen.SourceSpec{
			Alias: "s1", TypoRate: 0.1, NullRate: 0.05, Seed: seed + 7,
		})
		right := datagen.ObserveShuffled(datagen.Persons, ents, datagen.SourceSpec{
			Alias: "s2", Renames: personRenames, TypoRate: 0.1, NullRate: 0.05, Seed: seed + 8,
		})
		dims := fmt.Sprintf("%d×%d", left.Rel.Len(), right.Rel.Len())
		for _, meth := range methods {
			seqCfg := meth.cfg
			seqCfg.Parallelism = 1
			t0 := nowMono()
			seq, err := dumas.Match(left.Rel, right.Rel, seqCfg)
			seqDur := nowMono() - t0
			if err != nil {
				rep.Rows = append(rep.Rows, []string{dims, meth.label, "err: " + err.Error(), "", "", "", "", "", ""})
				continue
			}
			parCfg := meth.cfg
			parCfg.Parallelism = 0 // GOMAXPROCS
			t1 := nowMono()
			par, err := dumas.Match(left.Rel, right.Rel, parCfg)
			parDur := nowMono() - t1
			if err != nil {
				rep.Rows = append(rep.Rows, []string{dims, meth.label, "err: " + err.Error(), "", "", "", "", "", ""})
				continue
			}
			same := "yes"
			if !reflect.DeepEqual(seq, par) {
				same = "NO"
			}
			speedup := "-"
			if parDur > 0 {
				speedup = fmt.Sprintf("%.2fx", float64(seqDur)/float64(parDur))
			}
			m := eval.Matching(seq.Correspondences, truth)
			rep.Rows = append(rep.Rows, []string{
				dims, meth.label,
				fmt.Sprint(seq.Stats.CandidatePairs), fmt.Sprint(seq.Stats.Scored),
				fmtDuration(seqDur), fmtDuration(parDur), speedup, same, f3(m.F1),
			})
			rep.Samples = append(rep.Samples,
				BenchSample{
					Name: "e13/" + meth.label + "/sequential", Rows: left.Rel.Len() + right.Rel.Len(),
					Workers: 1, Seconds: float64(seqDur) / 1e9,
					Stats: dupdetect.Stats{CandidatePairs: seq.Stats.CandidatePairs, Compared: seq.Stats.Scored},
				},
				BenchSample{
					Name: "e13/" + meth.label + "/parallel", Rows: left.Rel.Len() + right.Rel.Len(),
					Workers: runtime.GOMAXPROCS(0), Seconds: float64(parDur) / 1e9,
					Stats: dupdetect.Stats{CandidatePairs: par.Stats.CandidatePairs, Compared: par.Stats.Scored},
				})
		}
	}
	return rep
}

// E14 measures served-query performance through hummerd's HTTP API:
// a test server over one shared DB with the versioned artifact cache.
// One FUSE BY query is served cold (computing the DUMAS match and the
// duplicate detection), then the same query is served warm —
// sequentially and from concurrent clients — where every expensive
// artifact comes from the cache. The "identical" column asserts that
// each warm HTTP response is byte-identical to the cold one, and the
// hit-rate column is read back through the /v1/stats endpoint, so the
// numbers in BENCH_*.json certify the cache from the outside.
func E14(seed int64, entities, warmQueries, clients int) *Report {
	if clients < 1 {
		clients = 1
	}
	if clients > warmQueries {
		clients = warmQueries // at least one query per client, no 0-query rows
	}
	rep := &Report{
		ID:    "E14",
		Title: fmt.Sprintf("hummerd served-query throughput, cold vs warm (persons, %d entities, 2 sources)", entities),
		Header: []string{"phase", "queries", "clients", "total", "per query", "q/s",
			"cache hit rate", "identical"},
		Notes: "warm queries skip DUMAS + duplicate detection entirely (artifact cache); identical = every warm response byte-equals the cold one",
	}

	ents := datagen.Persons.Generate(seed, entities)
	left := datagen.ObserveShuffled(datagen.Persons, ents, datagen.SourceSpec{
		Alias: "s1", TypoRate: 0.1, NullRate: 0.05, Seed: seed + 9,
	})
	right := datagen.ObserveShuffled(datagen.Persons, ents, datagen.SourceSpec{
		Alias: "s2", Renames: personRenames, TypoRate: 0.1, NullRate: 0.05, Seed: seed + 10,
	})
	db := hummer.New()
	if err := db.RegisterTable("s1", left.Rel); err != nil {
		rep.Notes = "setup error: " + err.Error()
		return rep
	}
	if err := db.RegisterTable("s2", right.Rel); err != nil {
		rep.Notes = "setup error: " + err.Error()
		return rep
	}
	ts := httptest.NewServer(server.New(db).Handler())
	defer ts.Close()

	const query = `SELECT Name, RESOLVE(Age, max) FUSE FROM s1, s2 FUSE BY (Name) ORDER BY Name`
	body, err := json.Marshal(map[string]string{"sql": query})
	if err != nil {
		rep.Notes = "setup error: " + err.Error()
		return rep
	}
	post := func() ([]byte, error) {
		resp, err := ts.Client().Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != 200 {
			return nil, fmt.Errorf("status %d: %s", resp.StatusCode, data)
		}
		return data, nil
	}
	hitRate := func() float64 {
		resp, err := ts.Client().Get(ts.URL + "/v1/stats")
		if err != nil {
			return -1
		}
		defer resp.Body.Close()
		var st struct {
			DB struct {
				Cache qcache.Stats `json:"cache"`
			} `json:"db"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return -1
		}
		return st.DB.Cache.HitRate()
	}
	rows := left.Rel.Len() + right.Rel.Len()
	addRow := func(phase string, queries, clients int, dur int64, identical string) {
		perQuery := dur / int64(queries)
		qps := "-"
		if dur > 0 {
			qps = fmt.Sprintf("%.0f", float64(queries)/(float64(dur)/1e9))
		}
		rep.Rows = append(rep.Rows, []string{
			phase, fmt.Sprint(queries), fmt.Sprint(clients),
			fmtDuration(dur), fmtDuration(perQuery), qps,
			fmt.Sprintf("%.0f%%", hitRate()*100), identical,
		})
		rep.Samples = append(rep.Samples, BenchSample{
			Name: "e14/" + phase, Rows: rows, Workers: clients,
			Seconds: float64(dur) / 1e9,
		})
	}

	// Cold: the one query that computes the artifacts.
	t0 := nowMono()
	cold, err := post()
	coldDur := nowMono() - t0
	if err != nil {
		rep.Notes = "cold query error: " + err.Error()
		return rep
	}
	addRow("cold", 1, 1, coldDur, "-")

	// Warm, sequential: pure cache-served latency.
	identical := "yes"
	t1 := nowMono()
	for i := 0; i < warmQueries; i++ {
		warm, err := post()
		if err != nil {
			rep.Notes = "warm query error: " + err.Error()
			return rep
		}
		if !bytes.Equal(warm, cold) {
			identical = "NO"
		}
	}
	addRow("warm sequential", warmQueries, 1, nowMono()-t1, identical)

	// Warm, concurrent: clients hammering the same statement.
	identical = "yes"
	var mu sync.Mutex
	var firstErr error
	t2 := nowMono()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Containment: a panicking client goroutine becomes the
			// experiment's error row, not a dead bench run.
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fault.NewInternal("experiments.e14", r)
					}
					mu.Unlock()
				}
			}()
			for i := 0; i < warmQueries/clients; i++ {
				warm, err := post()
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				} else if err == nil && !bytes.Equal(warm, cold) {
					identical = "NO"
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		rep.Notes = "concurrent query error: " + firstErr.Error()
		return rep
	}
	addRow("warm concurrent", (warmQueries/clients)*clients, clients, nowMono()-t2, identical)
	return rep
}

// E15 compares the materialized query path (DB.Query: the complete
// result relation is built before the caller sees a row) against the
// streaming path (DB.QueryRows: rows leave the engine in chunks) on a
// large plain-SELECT result: wall-clock total, time to first row, and
// bytes allocated per drain. The streamed drain holds at most one
// chunk at a time, so its allocation volume stays flat where the
// materialized path grows with the result — the number that matters
// once results stop fitting comfortably in one response buffer.
// Experiments run on a background context: a bench run is never
// cancelled mid-measurement.
func E15(seed int64, sizes []int) *Report {
	rep := &Report{
		ID:     "E15",
		Title:  "streamed vs materialized large-result drain (plain SELECT)",
		Header: []string{"rows", "mode", "total", "first row", "alloc MB", "rows/s", "identical"},
		Notes:  "alloc MB = TotalAlloc delta over one drain after GC; streamed holds one 64-row chunk at a time",
	}
	for _, n := range sizes {
		ents := datagen.Persons.Generate(seed, n/2)
		obs := datagen.DirtyTable(datagen.Persons, ents, 2, datagen.SourceSpec{
			Alias: "big", TypoRate: 0.1, NullRate: 0.05, Seed: seed + 15,
		})
		db := hummer.New()
		if err := db.RegisterTable("big", obs.Rel); err != nil {
			rep.Notes = "setup error: " + err.Error()
			return rep
		}
		const query = `SELECT * FROM big`

		measure := func(run func() (rows int, firstRow int64, err error)) (rows int, total, firstRow int64, allocMB float64, err error) {
			var m0, m1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&m0)
			t0 := nowMono()
			rows, firstRow, err = run()
			total = nowMono() - t0
			runtime.ReadMemStats(&m1)
			allocMB = float64(m1.TotalAlloc-m0.TotalAlloc) / 1e6
			return
		}

		matRows, matTotal, matFirst, matAlloc, err := measure(func() (int, int64, error) {
			t0 := nowMono()
			res, err := db.Query(query)
			if err != nil {
				return 0, 0, err
			}
			return res.Rel.Len(), nowMono() - t0, nil
		})
		if err != nil {
			rep.Notes = "materialized error: " + err.Error()
			return rep
		}

		strRows, strTotal, strFirst, strAlloc, err := measure(func() (int, int64, error) {
			t0 := nowMono()
			rows, err := db.QueryRows(context.Background(), query)
			if err != nil {
				return 0, 0, err
			}
			defer rows.Close()
			count, first := 0, int64(0)
			for rows.Next() {
				if count == 0 {
					first = nowMono() - t0
				}
				count++
			}
			return count, first, rows.Err()
		})
		if err != nil {
			rep.Notes = "streamed error: " + err.Error()
			return rep
		}

		identical := "yes"
		if strRows != matRows {
			identical = "NO"
		}
		addRow := func(mode string, rows int, total, first int64, allocMB float64) {
			rps := "-"
			if total > 0 {
				rps = fmt.Sprintf("%.0f", float64(rows)/(float64(total)/1e9))
			}
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprint(rows), mode, fmtDuration(total), fmtDuration(first),
				f2(allocMB), rps, identical,
			})
			rep.Samples = append(rep.Samples, BenchSample{
				Name: "e15/" + mode, Rows: rows, Workers: 1, Seconds: float64(total) / 1e9,
			})
		}
		addRow("materialized", matRows, matTotal, matFirst, matAlloc)
		addRow("streamed", strRows, strTotal, strFirst, strAlloc)
	}
	return rep
}

// e15QuickSizes: big enough that the allocation gap is unambiguous,
// small enough for the default suite.
var e15QuickSizes = []int{10000, 40000}

// e12QuickSizes keeps the default suite (and its tests) fast; the full
// {1k, 5k, 20k} scale-up is an explicit hummer-bench -sizes run.
var e12QuickSizes = []int{400, 1200}

// e13QuickSizes: the 900×900 sweep is the acceptance size for the
// parallel matcher; 300 shows the trend.
var e13QuickSizes = []int{300, 900}

// E14 defaults: a workload big enough that the cold query visibly
// pays for matching + detection, and enough warm queries that the
// served throughput number is stable.
const (
	e14Entities    = 400
	e14WarmQueries = 64
	e14Clients     = 8
)

// All runs every experiment with default parameters, in order.
func All(seed int64) []*Report {
	return []*Report{
		E3(seed, 200),
		E4(seed, 200),
		E5(seed, 80, 3),
		E6(seed, []int{100, 200, 400}),
		E7(),
		E8(seed, []int{200, 400, 800}),
		E9(seed),
		E10(seed, 60),
		E11(seed, 80, 3),
		E12(seed, e12QuickSizes),
		E13(seed, e13QuickSizes),
		E14(seed, e14Entities, e14WarmQueries, e14Clients),
		E15(seed, e15QuickSizes),
		E16(seed, e16Requests, e16Concurrency),
		E17(seed, e17Seeds),
	}
}

// ByID returns the named experiment (case-insensitive), or nil.
func ByID(id string, seed int64) *Report {
	switch strings.ToLower(id) {
	case "e3":
		return E3(seed, 200)
	case "e4":
		return E4(seed, 200)
	case "e5":
		return E5(seed, 80, 3)
	case "e6":
		return E6(seed, []int{100, 200, 400})
	case "e7":
		return E7()
	case "e8":
		return E8(seed, []int{200, 400, 800})
	case "e9":
		return E9(seed)
	case "e10":
		return E10(seed, 60)
	case "e11":
		return E11(seed, 80, 3)
	case "e12":
		return E12(seed, e12QuickSizes)
	case "e13":
		return E13(seed, e13QuickSizes)
	case "e14":
		return E14(seed, e14Entities, e14WarmQueries, e14Clients)
	case "e15":
		return E15(seed, e15QuickSizes)
	case "e16":
		return E16(seed, e16Requests, e16Concurrency)
	case "e17":
		return E17(seed, e17Seeds)
	default:
		return nil
	}
}

// IDs lists the experiment ids ByID accepts, in canonical run order.
func IDs() []string {
	return []string{"e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17"}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// nowMono returns a monotonic nanosecond reading for coarse wall-clock
// measurements inside experiments.
func nowMono() int64 { return time.Now().UnixNano() }

func fmtDuration(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", float64(d)/float64(time.Second))
	}
}
