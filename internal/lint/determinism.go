package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// runDeterminism enforces the byte-identity contract in the
// deterministic packages (Config.DeterministicPkgs): fusion results
// must be identical at every worker count and run to run, so nothing
// in those packages may let map iteration order, the wall clock, or an
// unseeded RNG reach a result value.
//
// Three checks:
//
//   - a range over a map whose body appends to (or index-writes into) a
//     slice declared outside the loop, or sends on a channel, is
//     order-dependent — unless the written value is passed to a
//     sort.*/slices.Sort* call later in the same function. Writes into
//     other maps are order-insensitive and pass.
//   - time.Now and time.Since are banned: wall-clock values must never
//     feed deterministic computation. Metric-only timing needs a
//     reasoned //lint:ignore hummer/determinism directive.
//   - any use of math/rand (v1 or v2) is banned outside seeded
//     constructors — a function with a parameter whose name contains
//     "seed" is the one place randomness may be initialized.
func runDeterminism(p *prog) []Finding {
	var out []Finding
	for _, pkg := range p.pkgs {
		if !inList(p.cfg.DeterministicPkgs, pkg.ImportPath) {
			continue
		}
		for _, f := range pkg.Files {
			out = append(out, detMapRanges(p, pkg, f)...)
			out = append(out, detClockAndRand(p, pkg, f)...)
		}
	}
	return out
}

func detClockAndRand(p *prog, pkg *Pkg, f *ast.File) []Finding {
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "time":
			if obj.Name() == "Now" || obj.Name() == "Since" {
				if !inSeededCtor(f, sel.Pos()) {
					out = append(out, p.finding(sel.Pos(), "determinism",
						"time.%s in deterministic package %s: wall-clock values must not reach results (metric-only timing needs a reasoned suppression)",
						obj.Name(), pkg.ImportPath))
				}
			}
		case "math/rand", "math/rand/v2":
			if !inSeededCtor(f, sel.Pos()) {
				out = append(out, p.finding(sel.Pos(), "determinism",
					"%s.%s in deterministic package %s outside a seeded constructor",
					obj.Pkg().Path(), obj.Name(), pkg.ImportPath))
			}
		}
		return true
	})
	return out
}

// inSeededCtor reports whether pos sits inside a function whose
// signature receives a seed — the sanctioned place to initialize
// deterministic randomness.
func inSeededCtor(f *ast.File, pos token.Pos) bool {
	fd := enclosingDecl(f, pos)
	if fd == nil || fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if strings.Contains(strings.ToLower(name.Name), "seed") {
				return true
			}
		}
	}
	return false
}

func detMapRanges(p *prog, pkg *Pkg, f *ast.File) []Finding {
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pkg.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		scope := enclosingDecl(f, rs.Pos())
		for _, v := range mapOrderWrites(pkg, rs) {
			if v.obj != nil && scope != nil && sortedAfter(pkg, scope.Body, rs.End(), v.obj) {
				continue
			}
			out = append(out, p.finding(rs.Pos(), "determinism",
				"map iteration order reaches %s in deterministic package %s; sort the keys first or sort the result before it escapes",
				v.what, pkg.ImportPath))
		}
		return true
	})
	return out
}

// orderWrite is one order-sensitive write found in a map-range body.
type orderWrite struct {
	what string
	obj  types.Object // the written slice, when one can be named
}

// mapOrderWrites collects the order-sensitive writes in the body of a
// map range: appends to slices declared outside the loop, index-writes
// into outer slices, and channel sends.
func mapOrderWrites(pkg *Pkg, rs *ast.RangeStmt) []orderWrite {
	var writes []orderWrite
	outer := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < rs.Pos() || obj.Pos() > rs.End())
	}
	seen := map[types.Object]bool{}
	record := func(obj types.Object, what string) {
		if obj != nil {
			if seen[obj] {
				return
			}
			seen[obj] = true
		}
		writes = append(writes, orderWrite{what: what, obj: obj})
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			record(nil, "a channel send")
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(pkg.Info, call, "append") || i >= len(n.Lhs) {
					continue
				}
				obj := exprObj(pkg.Info, n.Lhs[i])
				if outer(obj) {
					record(obj, "appended slice "+obj.Name())
				}
			}
			for _, lhs := range n.Lhs {
				idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				t := pkg.Info.TypeOf(idx.X)
				if t == nil {
					continue
				}
				if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
					continue
				}
				obj := exprObj(pkg.Info, idx.X)
				if outer(obj) {
					record(obj, "indexed slice "+obj.Name())
				}
			}
		}
		return true
	})
	return writes
}

// sortCalls lists the order-restoring calls: a write is forgiven when
// its target later flows through one of these in the same function.
var sortCalls = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

func sortedAfter(pkg *Pkg, body *ast.BlockStmt, after token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= after {
			return !found
		}
		fn := calleeFunc(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil || !sortCalls[fn.Pkg().Path()][fn.Name()] {
			return !found
		}
		for _, a := range call.Args {
			if exprUsesObj(pkg.Info, a, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}
