package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// runCtx enforces the ctx-threading discipline that makes every query
// cancellable end to end:
//
//   - context.Background() and context.TODO() are banned outside
//     package main, tests (never loaded), documented shims and the
//     Config.CtxAllow list. A documented shim is a function whose doc
//     comment contains the phrase "background context" — the repo
//     idiom: "It is QueryContext with a background context: it cannot
//     be cancelled." The doc is the contract: a caller reading it
//     knows cancellation stops there.
//   - an exported function or method whose name ends in Context and
//     whose first parameter is a context.Context must actually use
//     that parameter. Accepting a ctx and dropping it advertises
//     cancellability the implementation does not deliver.
func runCtx(p *prog) []Finding {
	var out []Finding
	for _, pkg := range p.pkgs {
		if pkg.Name == "main" {
			continue
		}
		for _, f := range pkg.Files {
			out = append(out, ctxBackground(p, pkg, f)...)
			out = append(out, ctxUnthreaded(p, pkg, f)...)
		}
	}
	return out
}

func ctxBackground(p *prog, pkg *Pkg, f *ast.File) []Finding {
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch {
		case isFunc(pkg.Info, call, "context", "Background"):
			name = "context.Background"
		case isFunc(pkg.Info, call, "context", "TODO"):
			name = "context.TODO"
		default:
			return true
		}
		fd := enclosingDecl(f, call.Pos())
		if fd != nil {
			if inList(p.cfg.CtxAllow, funcKey(pkg.ImportPath, fd)) {
				return true
			}
			// Fold line wraps before matching: the shim phrase may
			// break across comment lines.
			if fd.Doc != nil {
				doc := strings.ToLower(strings.Join(strings.Fields(fd.Doc.Text()), " "))
				if strings.Contains(doc, "background context") {
					return true
				}
			}
		}
		out = append(out, p.finding(call.Pos(), "ctx",
			"%s() in library code severs the cancellation chain; thread the caller's ctx, or document the shim (doc comment containing \"background context\")",
			name))
		return true
	})
	return out
}

func ctxUnthreaded(p *prog, pkg *Pkg, f *ast.File) []Finding {
	var out []Finding
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !fd.Name.IsExported() || !strings.HasSuffix(fd.Name.Name, "Context") {
			continue
		}
		params := fd.Type.Params
		if params == nil || len(params.List) == 0 || len(params.List[0].Names) == 0 {
			continue
		}
		first := params.List[0].Names[0]
		if !isContextType(pkg.Info.TypeOf(params.List[0].Type)) {
			continue
		}
		if first.Name == "_" {
			out = append(out, p.finding(fd.Pos(), "ctx",
				"exported %s discards its ctx parameter; a ...Context function must thread it", fd.Name.Name))
			continue
		}
		obj := pkg.Info.Defs[first]
		if obj == nil {
			continue
		}
		if !exprUsesObj(pkg.Info, fd.Body, obj) {
			out = append(out, p.finding(fd.Pos(), "ctx",
				"exported %s never uses its ctx parameter; a ...Context function must thread it", fd.Name.Name))
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
