package lint

import (
	"strings"
	"testing"
	"time"
)

// TestRepoLintsClean runs the full analyzer suite over the whole
// module — the same invocation `make lint` performs — and requires
// zero findings. It doubles as the smoke bound from the roadmap: the
// sweep must finish well inside 10s on a 1-CPU box so it can sit in
// `make check` without being the slow step.
func TestRepoLintsClean(t *testing.T) {
	loader, err := moduleLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	start := time.Now()
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	var targets []*Pkg
	for _, p := range pkgs {
		// The fixtures under testdata/ are violations on purpose.
		if strings.Contains(p.ImportPath, "/testdata/") {
			continue
		}
		targets = append(targets, p)
	}
	if len(targets) < 10 {
		t.Fatalf("only %d non-fixture packages loaded; pattern ./... is not covering the module", len(targets))
	}
	findings := Run(loader.Fset(), targets, DefaultConfig())
	for _, f := range findings {
		t.Errorf("repo not lint-clean: %s", f)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("full-module lint took %v, want <10s", elapsed)
	}
}
