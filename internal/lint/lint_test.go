package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// moduleLoader is shared across tests: the expensive part of loading
// is `go list -deps -export`, and one loader reuses its export map.
var moduleLoader = sync.OnceValues(func() (*Loader, error) {
	root, err := filepath.Abs("../..")
	if err != nil {
		return nil, err
	}
	return NewLoader(root), nil
})

// runFixture loads one testdata package, runs the full suite with cfg,
// and checks the findings against the fixture's // want comments:
// every finding must match a want on its line, every want must be
// matched. Directive findings (rule "directive") are returned for the
// caller to assert explicitly — a want comment cannot share a line
// with the directive it describes without becoming its reason.
func runFixture(t *testing.T, pattern string, cfg Config) []Finding {
	t.Helper()
	loader, err := moduleLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.Load(pattern)
	if err != nil {
		t.Fatalf("load %s: %v", pattern, err)
	}
	findings := Run(loader.Fset(), pkgs, cfg)

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*want{} // "file:line" -> wants
	wantRE := regexp.MustCompile("// want (.+)$")
	segRE := regexp.MustCompile("`([^`]+)`")
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := loader.Fset().Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, seg := range segRE.FindAllStringSubmatch(m[1], -1) {
						re, err := regexp.Compile(seg[1])
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", key, seg[1], err)
						}
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}

	var directives []Finding
	for _, f := range findings {
		if f.Rule == "directive" {
			directives = append(directives, f)
			continue
		}
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.String()) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: want %q, no finding matched", key, w.re)
			}
		}
	}
	return directives
}

func TestContainmentFixture(t *testing.T) {
	directives := runFixture(t, "./internal/lint/testdata/src/containment", DefaultConfig())
	if len(directives) != 0 {
		t.Errorf("unexpected directive findings: %v", directives)
	}
}

func TestDeterminismFixture(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeterministicPkgs = []string{"hummer/internal/lint/testdata/src/determinism"}
	runFixture(t, "./internal/lint/testdata/src/determinism", cfg)
}

func TestCtxFixture(t *testing.T) {
	runFixture(t, "./internal/lint/testdata/src/ctx", DefaultConfig())
}

func TestAtomicMixFixture(t *testing.T) {
	runFixture(t, "./internal/lint/testdata/src/atomicmix", DefaultConfig())
}

func TestErrWrapFixture(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ErrWrapPkgs = []string{"hummer/internal/lint/testdata/src/errwrap"}
	runFixture(t, "./internal/lint/testdata/src/errwrap", cfg)
}

// TestSuppressFixture proves the directive contract: a reasoned
// directive suppresses its rule on the next line; a directive missing
// its reason, naming an unknown rule, or omitting the hummer/ prefix
// both fails to suppress (the underlying findings are asserted by the
// fixture's want comments) and is reported itself.
func TestSuppressFixture(t *testing.T) {
	directives := runFixture(t, "./internal/lint/testdata/src/suppress", DefaultConfig())
	if len(directives) != 3 {
		t.Fatalf("got %d directive findings, want 3: %v", len(directives), directives)
	}
	wantMsgs := []string{
		"missing its required reason",
		"unknown rule",
		"must be qualified as hummer/<rule>",
	}
	for _, msg := range wantMsgs {
		found := false
		for _, d := range directives {
			if strings.Contains(d.Msg, msg) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no directive finding contains %q in %v", msg, directives)
		}
	}
}

func TestConfigAllowlists(t *testing.T) {
	loader, err := moduleLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.Load("./internal/lint/testdata/src/containment", "./internal/lint/testdata/src/ctx")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	cfg := DefaultConfig()
	cfg.ContainmentAllow = []string{"hummer/internal/lint/testdata/src/containment.BadLiteral"}
	cfg.CtxAllow = []string{"hummer/internal/lint/testdata/src/ctx.Bad"}
	for _, f := range Run(loader.Fset(), pkgs, cfg) {
		if strings.Contains(f.Msg, "BadLiteral") {
			t.Errorf("ContainmentAllow did not exempt BadLiteral: %s", f)
		}
		if f.Rule == "ctx" && f.Pos.Line <= 8 && strings.HasSuffix(f.Pos.Filename, "ctx.go") {
			t.Errorf("CtxAllow did not exempt Bad: %s", f)
		}
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   []verbArg
	}{
		{"plain", nil},
		{"%v", []verbArg{{'v', 0}}},
		{"%d then %w", []verbArg{{'d', 0}, {'w', 1}}},
		{"100%% %s", []verbArg{{'s', 0}}},
		{"%*d %v", []verbArg{{'d', 1}, {'v', 2}}},
		{"%.2f %q", []verbArg{{'f', 0}, {'q', 1}}},
		{"%[2]d %[1]v", []verbArg{{'d', 1}, {'v', 0}}},
		{"%+v", []verbArg{{'v', 0}}},
	}
	for _, c := range cases {
		got := formatVerbs(c.format)
		if len(got) != len(c.want) {
			t.Errorf("formatVerbs(%q) = %v, want %v", c.format, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("formatVerbs(%q)[%d] = %v, want %v", c.format, i, got[i], c.want[i])
			}
		}
	}
}
