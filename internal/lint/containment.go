package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runContainment enforces the panic-containment contract: every go
// statement outside package main (tests are never loaded) must begin
// with a containment defer so a panic in the goroutine becomes a typed
// *fault.InternalError instead of killing the process.
//
// A containment defer is either
//
//	defer fault.Capture(site, &err)
//
// or a deferred function literal whose body calls recover() — the
// latter covers the repo's hand-rolled boundaries that route the
// recovered value into fault.NewInternal and, at re-panic boundaries
// like the HTTP middleware, rethrow sentinels such as
// http.ErrAbortHandler. Those re-panicking recovers are containment by
// construction, so they pass structurally; no inline suppression is
// needed for them.
//
// The defer must appear in the goroutine body's leading run of defer
// statements: containment registered after real work has begun leaves
// a window where a panic escapes.
//
// `go name(...)` with a callee defined in the same package is checked
// against the callee's body (the plan stream producer launches this
// way). A callee that cannot be resolved — a function value, a
// cross-package call — is reported: the analyzer cannot prove the
// contract, so the goroutine must either wrap the call in a contained
// literal or carry a reasoned suppression.
func runContainment(p *prog) []Finding {
	var out []Finding
	for _, pkg := range p.pkgs {
		if pkg.Name == "main" {
			continue
		}
		decls := map[types.Object]*ast.FuncDecl{}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					if obj := pkg.Info.Defs[fd.Name]; obj != nil {
						decls[obj] = fd
					}
				}
			}
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if inList(p.cfg.ContainmentAllow, funcKey(pkg.ImportPath, enclosingDecl(f, gs.Pos()))) {
					return true
				}
				if msg := goStmtUncontained(pkg, gs, decls); msg != "" {
					out = append(out, p.finding(gs.Pos(), "containment", "%s", msg))
				}
				return true
			})
		}
	}
	return out
}

// goStmtUncontained returns a non-empty message when the go statement
// violates the contract.
func goStmtUncontained(pkg *Pkg, gs *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) string {
	const remedy = "start the goroutine body with defer fault.Capture(...) or a deferred recover routed into fault.NewInternal"
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		if !bodyContained(pkg, lit.Body) {
			return "goroutine has no leading containment defer; " + remedy
		}
		return ""
	}
	fn := calleeFunc(pkg.Info, gs.Call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkg.ImportPath {
		if fd := decls[fn]; fd != nil && fd.Body != nil {
			if !bodyContained(pkg, fd.Body) {
				return "goroutine runs " + fn.Name() + ", which has no leading containment defer; " + remedy
			}
			return ""
		}
	}
	return "goroutine target cannot be verified for containment; wrap it in a contained function literal (" + remedy + ")"
}

// bodyContained scans the leading run of defer statements for a
// containment defer. Plain var declarations may precede the defers —
// `defer fault.Capture(site, &err)` needs its err declared first, and
// a zero-value declaration cannot panic — but any other statement ends
// the run: containment registered after real work has begun leaves a
// window where a panic escapes.
func bodyContained(pkg *Pkg, body *ast.BlockStmt) bool {
	for _, st := range body.List {
		if decl, ok := st.(*ast.DeclStmt); ok {
			if gd, ok := decl.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR && varDeclZero(gd) {
				continue
			}
			return false
		}
		ds, ok := st.(*ast.DeferStmt)
		if !ok {
			return false
		}
		if deferIsContainment(pkg, ds) {
			return true
		}
	}
	return false
}

// varDeclZero reports whether every spec in the var declaration is a
// pure zero-value declaration (no initializer expressions, which could
// themselves panic before containment is registered).
func varDeclZero(gd *ast.GenDecl) bool {
	for _, spec := range gd.Specs {
		if vs, ok := spec.(*ast.ValueSpec); !ok || len(vs.Values) != 0 {
			return false
		}
	}
	return true
}

func deferIsContainment(pkg *Pkg, ds *ast.DeferStmt) bool {
	if isFunc(pkg.Info, ds.Call, "hummer/internal/fault", "Capture") {
		return true
	}
	lit, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(pkg.Info, call, "recover") {
			found = true
		}
		return !found
	})
	return found
}
