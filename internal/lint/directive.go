package lint

import (
	"go/token"
	"strings"
)

// A directive is one parsed //lint:ignore comment. Suppression is
// deliberately narrow: one rule, an explicit reason, and it applies
// only to findings on its own line or the line directly below it.
type directive struct {
	pos    token.Position
	rule   string // bare rule name after the hummer/ prefix
	reason string
	bad    string // non-empty: the directive itself is a finding
}

const directivePrefix = "lint:ignore"

// parseDirective interprets one comment's text (without the // or /*
// markers), returning nil when it is not a lint directive at all.
func parseDirective(text string, pos token.Position, known map[string]bool) *directive {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, directivePrefix) {
		return nil
	}
	d := &directive{pos: pos}
	fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
	if len(fields) == 0 {
		d.bad = "suppression directive needs a rule: //lint:ignore hummer/<rule> <reason>"
		return d
	}
	ref := fields[0]
	rule, ok := strings.CutPrefix(ref, "hummer/")
	if !ok {
		d.bad = "suppression directive rule must be qualified as hummer/<rule>, got " + quote(ref)
		return d
	}
	if !known[rule] {
		d.bad = "suppression directive names unknown rule " + quote(ref)
		return d
	}
	d.rule = rule
	d.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
	if d.reason == "" {
		d.bad = "suppression directive for hummer/" + rule + " is missing its required reason"
	}
	return d
}

func quote(s string) string { return "\"" + s + "\"" }

// collectDirectives scans every comment in every file.
func collectDirectives(fset *token.FileSet, pkgs []*Pkg) map[string]map[int]*directive {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	byFile := map[string]map[int]*directive{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimPrefix(text, "/*")
					text = strings.TrimSuffix(text, "*/")
					pos := fset.Position(c.Pos())
					d := parseDirective(text, pos, known)
					if d == nil {
						continue
					}
					m := byFile[pos.Filename]
					if m == nil {
						m = map[int]*directive{}
						byFile[pos.Filename] = m
					}
					m[pos.Line] = d
				}
			}
		}
	}
	return byFile
}

// applyDirectives drops findings covered by a well-formed directive on
// the same or preceding line, and turns every malformed directive into
// a finding of its own (rule "directive" — not itself suppressible).
func applyDirectives(fset *token.FileSet, pkgs []*Pkg, findings []Finding) []Finding {
	byFile := collectDirectives(fset, pkgs)
	var kept []Finding
	for _, f := range findings {
		if d := lookupDirective(byFile, f.Pos); d != nil && d.bad == "" && d.rule == f.Rule {
			continue
		}
		kept = append(kept, f)
	}
	for _, lines := range byFile {
		for _, d := range lines {
			if d.bad != "" {
				kept = append(kept, Finding{Pos: d.pos, Rule: "directive", Msg: d.bad})
			}
		}
	}
	return kept
}

func lookupDirective(byFile map[string]map[int]*directive, pos token.Position) *directive {
	lines := byFile[pos.Filename]
	if lines == nil {
		return nil
	}
	if d := lines[pos.Line]; d != nil {
		return d
	}
	return lines[pos.Line-1]
}
