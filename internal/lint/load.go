package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Pkg is one type-checked package under analysis: its syntax trees
// (comments included — the suppression directives live there) plus the
// go/types objects the analyzers resolve identifiers against.
type Pkg struct {
	ImportPath string
	Name       string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader loads packages for analysis. It is driven entirely off the
// standard toolchain: `go list -deps -export -json` names every
// package's files and compiled export data, the target packages are
// parsed from source with go/parser, and their imports resolve through
// go/importer's gc reader pointed at the export files — no external
// dependencies, exactly like the module it checks.
type Loader struct {
	// Dir is the directory go list runs in (the module root, or any
	// directory inside the module for relative patterns).
	Dir string

	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// NewLoader returns a Loader rooted at dir.
func NewLoader(dir string) *Loader {
	l := &Loader{Dir: dir, fset: token.NewFileSet(), exports: map[string]string{}}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookup)
	return l
}

// Fset returns the file set shared by everything this Loader loads.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

func (l *Loader) goList(args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go %s: %s", strings.Join(args[:2], " "), msg)
	}
	return out, nil
}

// lookup feeds the gc importer: export data recorded by Load, with an
// on-demand `go list` fallback for paths first seen transitively (a
// fixture package importing a stdlib package nothing else uses).
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		out, err := l.goList("list", "-export", "-f", "{{.Export}}", path)
		if err != nil {
			return nil, fmt.Errorf("resolving %q: %v", path, err)
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		l.exports[path] = file
	}
	return os.Open(file)
}

// Load resolves the patterns with the go tool and returns the matched
// packages parsed and type-checked. Test files are not loaded: the
// contracts the analyzers enforce exempt tests by design.
func (l *Loader) Load(patterns ...string) ([]*Pkg, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly",
	}, patterns...)
	out, err := l.goList(args...)
	if err != nil {
		return nil, err
	}

	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	var pkgs []*Pkg
	for _, tgt := range targets {
		pkg, err := l.check(tgt)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func (l *Loader) check(tgt listPkg) (*Pkg, error) {
	var files []*ast.File
	for _, name := range tgt.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(tgt.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l.importerFor()}
	tpkg, err := conf.Check(tgt.ImportPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", tgt.ImportPath, err)
	}
	return &Pkg{
		ImportPath: tgt.ImportPath,
		Name:       tgt.Name,
		Dir:        tgt.Dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// importerFor wraps the gc importer so the pseudo-package unsafe
// resolves (it has no export data).
func (l *Loader) importerFor() types.Importer {
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return l.imp.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
