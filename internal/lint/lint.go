// Package lint is HumMer's contracts-as-code analyzer suite: a custom
// static-analysis pass, built only on the standard library (go/ast,
// go/parser, go/types, go/importer over `go list -json`), that turns
// the repo's load-bearing conventions into machine-checked rules.
//
// The contracts it enforces grew out of PRs 1–9 and live nowhere else
// but tests and reviewer memory:
//
//   - containment: every goroutine recovers panics into
//     *fault.InternalError (the process never dies for a query's sins);
//   - determinism: fusion output is byte-identical at every worker
//     count, so the deterministic packages must not leak map iteration
//     order into results nor consult wall clocks or unseeded RNGs;
//   - ctx-discipline: cancellation threads end to end — no
//     context.Background() smuggled into library code, and exported
//     ...Context functions really use their ctx;
//   - atomic-mix: a field accessed via sync/atomic anywhere is never
//     touched non-atomically elsewhere;
//   - error-wrapping: cross-package error returns wrap with %w (or a
//     typed error), never flatten with %v.
//
// A finding is suppressible only by an explicit, reasoned directive on
// the same or the preceding line:
//
//	//lint:ignore hummer/<rule> <reason>
//
// A directive without a reason (or naming an unknown rule) is itself a
// finding — the suite never goes quiet without an audit trail.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos  token.Position
	Rule string // bare rule name, e.g. "containment"
	Msg  string
}

// String renders the CI-friendly single-line form:
// file:line: [hummer/rule] message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [hummer/%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Config scopes the analyzers to the packages whose contracts they
// encode and carries the allowlists.
type Config struct {
	// DeterministicPkgs are the import paths under the byte-identity
	// contract: no map-order leaks, no wall clock, no unseeded RNG.
	DeterministicPkgs []string
	// ErrWrapPkgs are the import paths whose cross-package error
	// returns must wrap (%w or typed), never flatten (%v).
	ErrWrapPkgs []string
	// ContainmentAllow lists functions ("import/path.FuncName") whose
	// go statements are exempt from the containment rule.
	ContainmentAllow []string
	// CtxAllow lists functions ("import/path.FuncName") allowed to
	// mint context.Background()/TODO() without a shim doc comment.
	CtxAllow []string
}

// DefaultConfig returns the repo's real contract scopes.
func DefaultConfig() Config {
	return Config{
		DeterministicPkgs: []string{
			"hummer/internal/parshard",
			"hummer/internal/strsim",
			"hummer/internal/dumas",
			"hummer/internal/dupdetect",
			"hummer/internal/engine",
			"hummer/internal/plan",
			"hummer/internal/core",
			"hummer/internal/fusion",
		},
		ErrWrapPkgs: []string{
			"hummer/internal/server",
			"hummer/internal/plan",
			"hummer/internal/core",
		},
	}
}

// Analyzer is one named rule.
type Analyzer struct {
	Name string // bare name; directives refer to it as hummer/<Name>
	Doc  string // one-line contract statement
	run  func(p *prog) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		{
			Name: "containment",
			Doc:  "every go statement outside main/tests starts with a containment defer (fault.Capture or a recover routed into fault.NewInternal) so a panicking goroutine becomes a typed error, never a dead process",
			run:  runContainment,
		},
		{
			Name: "determinism",
			Doc:  "deterministic packages never leak map iteration order into results (sort the keys, or sort the output) and never call time.Now/time.Since or math/rand outside seeded constructors",
			run:  runDeterminism,
		},
		{
			Name: "ctx",
			Doc:  "no context.Background()/TODO() outside main, tests and documented shims (the doc comment must say \"background context\"), and exported ...Context functions must actually use their ctx",
			run:  runCtx,
		},
		{
			Name: "atomicmix",
			Doc:  "a variable or struct field accessed through sync/atomic anywhere is never read, written or address-taken non-atomically elsewhere",
			run:  runAtomicMix,
		},
		{
			Name: "errwrap",
			Doc:  "error operands in fmt.Errorf use %w (or a typed error), never %v/%s/%q — flattening severs errors.Is/As chains across package boundaries",
			run:  runErrWrap,
		},
	}
}

// prog is the unit the analyzers run over: every loaded package plus
// the shared file set and configuration.
type prog struct {
	fset *token.FileSet
	pkgs []*Pkg
	cfg  Config
}

// Run executes the full analyzer suite over pkgs, applies suppression
// directives, and returns the surviving findings sorted by position.
func Run(fset *token.FileSet, pkgs []*Pkg, cfg Config) []Finding {
	return RunAnalyzers(fset, pkgs, cfg, Analyzers())
}

// RunAnalyzers is Run restricted to a subset of the suite (the
// per-rule fixture tests use it). Suppression directives still apply.
func RunAnalyzers(fset *token.FileSet, pkgs []*Pkg, cfg Config, as []*Analyzer) []Finding {
	p := &prog{fset: fset, pkgs: pkgs, cfg: cfg}
	var all []Finding
	for _, a := range as {
		all = append(all, a.run(p)...)
	}
	all = applyDirectives(fset, pkgs, all)
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	// Dedupe: two passes over the same file must not double-report.
	out := all[:0]
	for i, f := range all {
		if i > 0 && f == all[i-1] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// --- shared resolution helpers ---

// calleeFunc resolves a call expression's callee to its types.Func,
// or nil when the callee is not a named function or method.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isFunc reports whether call invokes the package-level function
// pkgPath.name.
func isFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isBuiltin reports whether call invokes the named builtin (recover,
// append, ...).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// exprObj resolves a bare identifier or selector to its object.
func exprObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// exprUsesObj reports whether any identifier inside e resolves to obj.
func exprUsesObj(info *types.Info, e ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// enclosingDecl returns the top-level function declaration containing
// pos in file, or nil.
func enclosingDecl(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// funcKey renders the allowlist key for a declaration:
// "import/path.FuncName".
func funcKey(pkgPath string, fd *ast.FuncDecl) string {
	if fd == nil {
		return ""
	}
	return pkgPath + "." + fd.Name.Name
}

func inList(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func (p *prog) finding(pos token.Pos, rule, format string, args ...any) Finding {
	return Finding{Pos: p.fset.Position(pos), Rule: rule, Msg: fmt.Sprintf(format, args...)}
}

// RelPaths rewrites finding filenames relative to dir when possible —
// CI logs and editors both prefer repo-relative paths.
func RelPaths(findings []Finding, dir string) {
	for i := range findings {
		if rel, err := filepath.Rel(dir, findings[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].Pos.Filename = rel
		}
	}
}
