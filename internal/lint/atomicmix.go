package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runAtomicMix enforces the sync/atomic mixing rule: once any code
// accesses a variable or struct field through the sync/atomic
// functions (atomic.AddInt64(&x.n, 1), ...), every other access to it
// must be atomic too — a single plain load or store next to atomic
// ones is a data race the race detector only catches when the
// interleaving happens to bite. The typed atomics (atomic.Int64 et
// al.) are immune by construction and are the preferred fix.
//
// The analysis is whole-program across the loaded packages: pass one
// records every &operand of a sync/atomic call (struct fields keyed by
// their named owner type, package-level variables by path), pass two
// flags any other read, write, or address-take of the same variable —
// including composite-literal keys: construction should rely on the
// zero value or an atomic store, because "not shared yet" is exactly
// the assumption that rots when code moves.
func runAtomicMix(p *prog) []Finding {
	touched := map[string]token.Position{} // key -> first atomic site
	sanctioned := map[token.Pos]bool{}     // operand positions inside atomic calls

	for _, pkg := range p.pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || len(call.Args) == 0 {
					return true
				}
				un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					return true
				}
				target := ast.Unparen(un.X)
				if key, pos, ok := p.atomicTargetKey(pkg, target); ok {
					if _, dup := touched[key]; !dup {
						touched[key] = p.fset.Position(call.Pos())
					}
					sanctioned[pos] = true
				}
				return true
			})
		}
	}
	if len(touched) == 0 {
		return nil
	}

	var out []Finding
	for _, pkg := range p.pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					key, pos, ok := p.atomicTargetKey(pkg, n)
					if !ok || sanctioned[pos] {
						return true
					}
					if first, hit := touched[key]; hit {
						out = append(out, p.finding(n.Pos(), "atomicmix",
							"non-atomic access to %s, which is accessed via sync/atomic (first at %s:%d); use the atomic API everywhere or migrate to a typed atomic",
							key, first.Filename, first.Line))
					}
				case *ast.Ident:
					key, pos, ok := p.atomicTargetKey(pkg, n)
					if !ok || sanctioned[pos] {
						return true
					}
					if first, hit := touched[key]; hit {
						out = append(out, p.finding(n.Pos(), "atomicmix",
							"non-atomic access to %s, which is accessed via sync/atomic (first at %s:%d); use the atomic API everywhere or migrate to a typed atomic",
							key, first.Filename, first.Line))
					}
				case *ast.CompositeLit:
					out = append(out, p.atomicCompositeKeys(pkg, n, touched)...)
				}
				return true
			})
		}
	}
	return out
}

// atomicTargetKey renders a stable cross-package key for an atomic
// operand: "pkg/path.Type.field" for fields of named structs reached
// through a selector, "pkg/path.name" for package-level variables
// reached through a bare identifier. Local variables and fields of
// unnamed types return ok=false — a local can only race with itself
// within one function, where the pattern is visible in review.
func (p *prog) atomicTargetKey(pkg *Pkg, e ast.Expr) (key string, pos token.Pos, ok bool) {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		selInfo := pkg.Info.Selections[e]
		if selInfo == nil || selInfo.Kind() != types.FieldVal {
			return "", 0, false
		}
		v, okVar := selInfo.Obj().(*types.Var)
		if !okVar || v.Pkg() == nil {
			return "", 0, false
		}
		owner := namedOf(selInfo.Recv())
		if owner == nil {
			return "", 0, false
		}
		return v.Pkg().Path() + "." + owner.Obj().Name() + "." + v.Name(), e.Sel.Pos(), true
	case *ast.Ident:
		v, okVar := pkg.Info.Uses[e].(*types.Var)
		if !okVar || v.Pkg() == nil || v.IsField() {
			return "", 0, false
		}
		// Package-level variables only: Parent of a package var is the
		// package scope.
		if v.Parent() != v.Pkg().Scope() {
			return "", 0, false
		}
		return v.Pkg().Path() + "." + v.Name(), e.Pos(), true
	}
	return "", 0, false
}

// atomicCompositeKeys flags initialization of an atomic field through
// a composite literal key.
func (p *prog) atomicCompositeKeys(pkg *Pkg, cl *ast.CompositeLit, touched map[string]token.Position) []Finding {
	t := pkg.Info.TypeOf(cl)
	if t == nil {
		return nil
	}
	owner := namedOf(t)
	if owner == nil {
		return nil
	}
	var out []Finding
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		id, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || !v.IsField() || v.Pkg() == nil {
			continue
		}
		key := v.Pkg().Path() + "." + owner.Obj().Name() + "." + v.Name()
		if first, hit := touched[key]; hit {
			out = append(out, p.finding(kv.Pos(), "atomicmix",
				"composite-literal write to %s, which is accessed via sync/atomic (first at %s:%d); rely on the zero value or store atomically after construction",
				key, first.Filename, first.Line))
		}
	}
	return out
}

// namedOf unwraps pointers to the named type underneath, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return nil
		}
	}
}
