// Package suppress is a lint fixture for the suppression directive:
// a reasoned directive silences its rule on the next line, a reasonless
// or unknown-rule directive is itself a finding and silences nothing.
package suppress

func work() {}

func Suppressed() {
	//lint:ignore hummer/containment fixture: body is panic-free by construction
	go func() {
		work()
	}()
}

func MissingReason() {
	//lint:ignore hummer/containment
	go func() { // want `\[hummer/containment\] goroutine has no leading containment defer`
		work()
	}()
}

func UnknownRule() {
	//lint:ignore hummer/nosuchrule the rule name is wrong
	go func() { // want `\[hummer/containment\] goroutine has no leading containment defer`
		work()
	}()
}

func UnqualifiedRule() {
	//lint:ignore containment missing the hummer/ prefix
	go func() { // want `\[hummer/containment\] goroutine has no leading containment defer`
		work()
	}()
}

func WrongRule() {
	//lint:ignore hummer/determinism right prefix, wrong rule for this finding
	go func() { // want `\[hummer/containment\] goroutine has no leading containment defer`
		work()
	}()
}
