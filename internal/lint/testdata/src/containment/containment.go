// Package containment is a lint fixture: each site annotated with a
// want comment must produce exactly that finding.
package containment

import (
	"net/http"
	"sync"

	"hummer/internal/fault"
)

func work() {}

func BadLiteral() {
	go func() { // want `\[hummer/containment\] goroutine has no leading containment defer`
		work()
	}()
}

func BadNamed() {
	go helper() // want `\[hummer/containment\] goroutine runs helper`
}

func helper() { work() }

func BadDynamic(f func()) {
	go f() // want `\[hummer/containment\] goroutine target cannot be verified`
}

func BadLateContainment() {
	go func() { // want `\[hummer/containment\] goroutine has no leading containment defer`
		work()
		defer func() {
			_ = recover()
		}()
	}()
}

func GoodCapture() {
	var err error
	go func() {
		defer fault.Capture("containment.good", &err)
		work()
	}()
}

func GoodRecover() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				_ = fault.NewInternal("containment.worker", r)
			}
		}()
		work()
	}()
	wg.Wait()
}

// GoodRepanic mirrors the HTTP middleware: a recover that rethrows a
// sentinel is still a containment boundary and passes structurally.
func GoodRepanic() {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if r == http.ErrAbortHandler {
					panic(r)
				}
				_ = fault.NewInternal("containment.repanic", r)
			}
		}()
		work()
	}()
}

func GoodNamed() {
	go contained()
}

func contained() {
	var err error
	defer fault.Capture("containment.contained", &err)
	work()
}
