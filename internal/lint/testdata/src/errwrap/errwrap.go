// Package errwrap is a lint fixture for the error-wrapping rule; the
// test configures this package into the errwrap scope.
package errwrap

import "fmt"

func Bad(err error) error {
	return fmt.Errorf("query failed: %v", err) // want `\[hummer/errwrap\] %v flattens an error operand`
}

func BadS(err error) error {
	return fmt.Errorf("worker %d: %s", 3, err) // want `\[hummer/errwrap\] %s flattens an error operand`
}

func BadStarWidth(err error) error {
	return fmt.Errorf("%*d %v", 8, 42, err) // want `\[hummer/errwrap\] %v flattens an error operand`
}

func BadIndexed(err error) error {
	return fmt.Errorf("%[2]d %[1]v", err, 7) // want `\[hummer/errwrap\] %v flattens an error operand`
}

func Good(err error) error {
	return fmt.Errorf("query failed: %w", err)
}

func GoodNonError(n int) error {
	return fmt.Errorf("bad count: %v", n)
}

func GoodPercentLiteral(n int) error {
	return fmt.Errorf("%d%% failed", n)
}

type QueryError struct{ Err error }

func (e *QueryError) Error() string { return "query: " + e.Err.Error() }

func GoodTyped(err error) error {
	return &QueryError{Err: err}
}
