// Package ctx is a lint fixture for the ctx-discipline rule.
package ctx

import "context"

func Bad() context.Context {
	return context.Background() // want `\[hummer/ctx\] context.Background\(\) in library code`
}

func BadTODO() context.Context {
	return context.TODO() // want `\[hummer/ctx\] context.TODO\(\) in library code`
}

// Documented is Bad with a background context: it cannot be
// cancelled, and the doc comment says so — which is the contract.
func Documented() context.Context {
	return context.Background()
}

func RunContext(ctx context.Context, n int) int { // want `\[hummer/ctx\] exported RunContext never uses its ctx parameter`
	return n + 1
}

func DropContext(_ context.Context) int { // want `\[hummer/ctx\] exported DropContext discards its ctx parameter`
	return 1
}

func GoodContext(ctx context.Context) error {
	return ctx.Err()
}

// FromContext-style helpers take a ctx but do not thread it onward;
// using it at all satisfies the rule.
func ValueContext(ctx context.Context) any {
	return ctx.Value("k")
}
