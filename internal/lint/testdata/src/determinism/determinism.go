// Package determinism is a lint fixture for the byte-identity rule;
// the test configures this package as deterministic.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

func BadAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `\[hummer/determinism\] map iteration order reaches appended slice keys`
		keys = append(keys, k)
	}
	return keys
}

func GoodSortedAfter(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func GoodMapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func BadSend(m map[string]int, ch chan string) {
	for k := range m { // want `\[hummer/determinism\] map iteration order reaches a channel send`
		ch <- k
	}
}

func BadIndexWrite(m map[string]int, out []int) {
	i := 0
	for _, v := range m { // want `\[hummer/determinism\] map iteration order reaches indexed slice out`
		out[i] = v
		i++
	}
}

func GoodIndexWriteSorted(m map[string]int, out []int) {
	i := 0
	for _, v := range m {
		out[i] = v
		i++
	}
	sort.Ints(out)
}

func BadNow() time.Time {
	return time.Now() // want `\[hummer/determinism\] time.Now in deterministic package`
}

func BadSince(t time.Time) time.Duration {
	return time.Since(t) // want `\[hummer/determinism\] time.Since in deterministic package`
}

func BadRand() int {
	return rand.Int() // want `\[hummer/determinism\] math/rand.Int in deterministic package`
}

func GoodSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
