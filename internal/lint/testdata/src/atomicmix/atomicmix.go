// Package atomicmix is a lint fixture for the sync/atomic mixing rule.
package atomicmix

import "sync/atomic"

type Counter struct {
	n    int64
	safe atomic.Int64
	cold int64
}

func (c *Counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *Counter) BadRead() int64 {
	return c.n // want `\[hummer/atomicmix\] non-atomic access to hummer/internal/lint/testdata/src/atomicmix.Counter.n`
}

func (c *Counter) BadWrite() {
	c.n = 0 // want `\[hummer/atomicmix\] non-atomic access to hummer/internal/lint/testdata/src/atomicmix.Counter.n`
}

func (c *Counter) GoodRead() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *Counter) GoodTyped() int64 {
	return c.safe.Load()
}

func (c *Counter) GoodCold() int64 {
	c.cold++
	return c.cold
}

func BadLiteral() *Counter {
	return &Counter{n: 1} // want `\[hummer/atomicmix\] composite-literal write to hummer/internal/lint/testdata/src/atomicmix.Counter.n`
}

func GoodZeroLiteral() *Counter {
	return &Counter{cold: 1}
}

var global int64

func IncGlobal() {
	atomic.AddInt64(&global, 1)
}

func BadGlobal() int64 {
	return global // want `\[hummer/atomicmix\] non-atomic access to hummer/internal/lint/testdata/src/atomicmix.global`
}
