package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// runErrWrap enforces error wrapping in the packages whose errors
// cross package boundaries (Config.ErrWrapPkgs): an error operand
// formatted into fmt.Errorf must use %w — or the call replaced with a
// typed error — never %v/%s/%q, which flatten the chain and sever
// errors.Is/errors.As for every caller downstream.
func runErrWrap(p *prog) []Finding {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	var out []Finding
	for _, pkg := range p.pkgs {
		if !inList(p.cfg.ErrWrapPkgs, pkg.ImportPath) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isFunc(pkg.Info, call, "fmt", "Errorf") || len(call.Args) < 2 {
					return true
				}
				lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
				if !ok {
					return true
				}
				format, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				for _, va := range formatVerbs(format) {
					if strings.ContainsRune("vsq", va.verb) && va.arg < len(call.Args)-1 {
						arg := call.Args[1+va.arg]
						t := pkg.Info.TypeOf(arg)
						if t != nil && types.Implements(t, errType) {
							out = append(out, p.finding(arg.Pos(), "errwrap",
								"%%%c flattens an error operand; wrap with %%w (or return a typed error) so errors.Is/As keep working across packages",
								va.verb))
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// verbArg pairs a format verb with the zero-based operand index it
// consumes.
type verbArg struct {
	verb rune
	arg  int
}

// formatVerbs maps each verb in a fmt format string to its operand.
// It understands %%, flags, *-widths/precisions (which consume an
// operand of their own) and explicit argument indexes like %[1]v.
func formatVerbs(format string) []verbArg {
	var out []verbArg
	arg := 0
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		// flags
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		// explicit argument index
		if i < len(format) && format[i] == '[' {
			j := i + 1
			num := 0
			for j < len(format) && format[j] >= '0' && format[j] <= '9' {
				num = num*10 + int(format[j]-'0')
				j++
			}
			if j < len(format) && format[j] == ']' && num > 0 {
				arg = num - 1
				i = j + 1
			}
		}
		// width
		if i < len(format) && format[i] == '*' {
			arg++
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		// precision
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				arg++
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		if i < len(format) {
			out = append(out, verbArg{verb: rune(format[i]), arg: arg})
			arg++
			i++
		}
	}
	return out
}
