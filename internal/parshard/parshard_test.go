package parshard

import (
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
)

// intStream yields 0..n-1 in order.
func intStream(n int) Gen[int] {
	return func(yield func(int) bool) {
		for i := 0; i < n; i++ {
			if !yield(i) {
				return
			}
		}
	}
}

// collect is the canonical Run harness used by the tests: each item is
// transformed and appended; the fold must restore stream order.
func collect(workers, chunkSize, n int) []int {
	type res struct{ items []int }
	out := Run(workers, chunkSize, intStream(n),
		func() func(int, *res) {
			return func(i int, r *res) { r.items = append(r.items, i*i) }
		},
		func(into *res, chunk res) { into.items = append(into.items, chunk.items...) })
	return out.items
}

// TestRunDeterministicAcrossWorkerCounts: the folded result must be
// byte-identical to the sequential result at every worker count and
// chunk size, including streams that do not fill a whole chunk.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(5000)
		chunk := 1 + rng.Intn(300)
		want := collect(1, chunk, n)
		for _, w := range []int{2, 3, 7, 16} {
			got := collect(w, chunk, n)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("n=%d chunk=%d workers=%d: order not restored", n, chunk, w)
			}
		}
	}
}

// TestRunEmptyStream: an empty stream folds to the zero result.
func TestRunEmptyStream(t *testing.T) {
	for _, w := range []int{1, 4} {
		if got := collect(w, 8, 0); len(got) != 0 {
			t.Errorf("workers=%d: empty stream gave %v", w, got)
		}
	}
}

// TestRunPerWorkerState: newWorker must be called once per busy worker
// so scratch state is never shared.
func TestRunPerWorkerState(t *testing.T) {
	var created atomic.Int32
	type res struct{ n int }
	out := Run(4, 16, intStream(1000),
		func() func(int, *res) {
			created.Add(1)
			buf := make([]int, 0, 16) // worker-private scratch
			return func(i int, r *res) {
				buf = append(buf[:0], i)
				r.n += buf[0]*0 + 1
			}
		},
		func(into *res, chunk res) { into.n += chunk.n })
	if out.n != 1000 {
		t.Fatalf("processed %d items, want 1000", out.n)
	}
	if c := created.Load(); c < 1 || c > 4 {
		t.Fatalf("newWorker called %d times, want 1..4", c)
	}
}

// TestRunDefaultChunk: chunkSize <= 0 must fall back to DefaultChunk
// rather than looping forever or panicking.
func TestRunDefaultChunk(t *testing.T) {
	want := collect(1, DefaultChunk, 3000)
	if got := collect(3, 0, 3000); !reflect.DeepEqual(want, got) {
		t.Fatal("chunkSize=0 differs from DefaultChunk result")
	}
}

// TestWorkers: 0 and negative resolve to GOMAXPROCS, positive passes
// through.
func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("Workers(3) != 3")
	}
	if Workers(0) < 1 || Workers(-2) < 1 {
		t.Error("Workers(<=0) must resolve to at least 1")
	}
}

// TestRangesCoverage: the shards must partition [0, n) exactly, with
// no overlap and no gap, at every worker count.
func TestRangesCoverage(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1001} {
		for _, w := range []int{1, 2, 3, 8, 200} {
			seen := make([]int32, n)
			Ranges(w, n, func(shard, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d w=%d: index %d covered %d times", n, w, i, c)
				}
			}
		}
	}
}

// TestRangesShardIndexes: shard ids are dense and aligned with range
// order, so callers can fold shard-local reductions deterministically.
func TestRangesShardIndexes(t *testing.T) {
	n, w := 100, 4
	los := make([]int, w)
	his := make([]int, w)
	Ranges(w, n, func(shard, lo, hi int) {
		los[shard] = lo
		his[shard] = hi
	})
	prev := 0
	for s := 0; s < w; s++ {
		if los[s] != prev {
			t.Fatalf("shard %d starts at %d, want %d", s, los[s], prev)
		}
		if his[s] <= los[s] {
			t.Fatalf("shard %d is empty: [%d,%d)", s, los[s], his[s])
		}
		prev = his[s]
	}
	if prev != n {
		t.Fatalf("shards end at %d, want %d", prev, n)
	}
}
