package parshard

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestRunContextCompletesIdentical: an uncancelled RunContext must
// fold exactly like Run at every worker count.
func TestRunContextCompletesIdentical(t *testing.T) {
	sum := func(workers int) (int, error) {
		return RunContext(context.Background(), workers, 16, intStream(1000),
			func() func(int, *int) { return func(x int, out *int) { *out += x } },
			func(into *int, chunk int) { *into += chunk })
	}
	want := 1000 * 999 / 2
	for _, w := range []int{1, 2, 3, 8} {
		got, err := sum(w)
		if err != nil || got != want {
			t.Fatalf("workers=%d: got (%d, %v), want (%d, nil)", w, got, err, want)
		}
	}
}

// TestRunContextCancelJoinsAll: cancelling a run mid-stream — over an
// unbounded generator that only cancellation can end — returns the
// context error promptly, with the generator, every worker and the
// collector joined: no goroutine outlives the call.
func TestRunContextCancelJoinsAll(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(10*time.Millisecond, cancel)
	start := time.Now()
	_, err := RunContext(ctx, 4, 8,
		func(yield func(int) bool) {
			for i := 0; ; i++ { // unbounded: only cancellation ends it
				if !yield(i) {
					return
				}
			}
		},
		func() func(int, *int) {
			return func(x int, out *int) { time.Sleep(50 * time.Microsecond) }
		},
		func(into *int, chunk int) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled run took %v to return", elapsed)
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d running, started with %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunContextSequentialCancel: the single-worker path also honors
// cancellation at chunk boundaries.
func TestRunContextSequentialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	_, err := RunContext(ctx, 1, 4,
		func(yield func(int) bool) {
			for i := 0; i < 1000; i++ {
				if !yield(i) {
					return
				}
			}
		},
		func() func(int, *int) {
			return func(x int, out *int) {
				n++
				if n == 10 {
					cancel()
				}
			}
		},
		func(into *int, chunk int) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n >= 1000 {
		t.Fatal("sequential run consumed the whole stream despite cancellation")
	}
}

// TestRangesContextCancel: a cancelled context aborts before dispatch
// and reports the error after the shards drain.
func TestRangesContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := RangesContext(ctx, 4, 100, func(shard, lo, hi int) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("shards ran despite a pre-cancelled context")
	}
}
