package parshard

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"hummer/internal/fault"
	"hummer/internal/faultinject"
)

// sumRun folds 0..n-1 through RunContext at the given worker count —
// the reference workload for fault tests.
func sumRun(ctx context.Context, workers, n int, proc func(item int, out *int)) (int, error) {
	gen := func(yield func(int) bool) {
		for i := 0; i < n; i++ {
			if !yield(i) {
				return
			}
		}
	}
	return RunContext(ctx, workers, 8, gen,
		func() func(item int, out *int) { return proc },
		func(into *int, chunk int) { *into += chunk })
}

func wantSum(n int) int { return n * (n - 1) / 2 }

// TestWorkerPanicContained: a panic in the caller's processing
// function fails the run with an *InternalError at every worker
// count; a rerun without the fault is byte-identical to baseline.
func TestWorkerPanicContained(t *testing.T) {
	const n = 1000
	for _, workers := range []int{1, 2, 8} {
		boom := true
		proc := func(item int, out *int) {
			if boom && item == 500 {
				panic("worker boom")
			}
			*out += item
		}
		_, err := sumRun(context.Background(), workers, n, proc)
		var ie *fault.InternalError
		if !errors.As(err, &ie) {
			t.Fatalf("workers=%d: err = %v (%T), want *InternalError", workers, err, err)
		}
		if ie.Site != faultinject.SiteParshardWorker {
			t.Errorf("workers=%d: Site = %q, want %q", workers, ie.Site, faultinject.SiteParshardWorker)
		}
		// The same machinery still produces the canonical result.
		boom = false
		got, err := sumRun(context.Background(), workers, n, proc)
		if err != nil || got != wantSum(n) {
			t.Errorf("workers=%d rerun: got %d, %v; want %d, nil", workers, got, err, wantSum(n))
		}
	}
}

// TestGeneratorPanicContained: a panic inside the generator stream is
// recovered at the generator boundary; workers and collector join.
func TestGeneratorPanicContained(t *testing.T) {
	gen := func(yield func(int) bool) {
		for i := 0; i < 100; i++ {
			if i == 50 {
				panic("generator boom")
			}
			if !yield(i) {
				return
			}
		}
	}
	_, err := RunContext(context.Background(), 4, 8, gen,
		func() func(item int, out *int) { return func(item int, out *int) { *out += item } },
		func(into *int, chunk int) { *into += chunk })
	var ie *fault.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InternalError", err, err)
	}
	if ie.Site != faultinject.SiteParshardGenerator {
		t.Errorf("Site = %q, want %q", ie.Site, faultinject.SiteParshardGenerator)
	}
}

// TestNewWorkerPanicContained: worker-state construction is inside
// the containment boundary too.
func TestNewWorkerPanicContained(t *testing.T) {
	gen := func(yield func(int) bool) {
		for i := 0; i < 100; i++ {
			if !yield(i) {
				return
			}
		}
	}
	_, err := RunContext(context.Background(), 4, 8, gen,
		func() func(item int, out *int) { panic("newWorker boom") },
		func(into *int, chunk int) { *into += chunk })
	var ie *fault.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InternalError", err, err)
	}
}

// TestRunRePanicsContainedFault: Run has no error return, so the
// contained *InternalError is re-thrown — and a recovery boundary one
// level up sees the identical error, not a re-wrap.
func TestRunRePanicsContainedFault(t *testing.T) {
	before := fault.Recovered()
	err := func() (err error) {
		defer fault.Capture("test.outer", &err)
		Run(4, 8,
			func(yield func(int) bool) {
				for i := 0; i < 100; i++ {
					if !yield(i) {
						return
					}
				}
			},
			func() func(item int, out *int) {
				return func(item int, out *int) {
					if item == 42 {
						panic("run boom")
					}
				}
			},
			func(into *int, chunk int) {})
		return nil
	}()
	var ie *fault.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InternalError", err, err)
	}
	if ie.Site != faultinject.SiteParshardWorker {
		t.Errorf("Site = %q, want the original worker site", ie.Site)
	}
	if got := fault.Recovered() - before; got != 1 {
		t.Errorf("panic counted %d times crossing two boundaries, want 1", got)
	}
}

// TestRangesPanicContained: shard panics become errors from
// RangesContext and re-panics from Ranges.
func TestRangesPanicContained(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := RangesContext(context.Background(), workers, 100, func(shard, lo, hi int) {
			if lo <= 50 && 50 < hi {
				panic("shard boom")
			}
		})
		var ie *fault.InternalError
		if !errors.As(err, &ie) {
			t.Fatalf("workers=%d: err = %v (%T), want *InternalError", workers, err, err)
		}
		if ie.Site != faultinject.SiteParshardRange {
			t.Errorf("workers=%d: Site = %q, want %q", workers, ie.Site, faultinject.SiteParshardRange)
		}
	}

	err := func() (err error) {
		defer fault.Capture("test.outer", &err)
		Ranges(4, 100, func(shard, lo, hi int) {
			if lo <= 50 && 50 < hi {
				panic("shard boom")
			}
		})
		return nil
	}()
	var ie *fault.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("Ranges: err = %v (%T), want re-panicked *InternalError", err, err)
	}
}

// TestInjectedFaultsAtParshardSites: armed injection at the worker and
// generator sites aborts runs with the injected error; disarmed reruns
// restore the canonical result.
func TestInjectedFaultsAtParshardSites(t *testing.T) {
	const n = 1000
	proc := func(item int, out *int) { *out += item }
	for _, tc := range []struct {
		site    string
		workers int
	}{
		{faultinject.SiteParshardWorker, 1},
		{faultinject.SiteParshardWorker, 4},
		{faultinject.SiteParshardGenerator, 4},
	} {
		faultinject.Arm(&faultinject.Plan{Rules: []faultinject.Rule{
			{Site: tc.site, Kind: faultinject.Error, After: 2},
		}})
		_, err := sumRun(context.Background(), tc.workers, n, proc)
		faultinject.Disarm()
		var inj *faultinject.InjectedError
		if !errors.As(err, &inj) {
			t.Fatalf("site=%s workers=%d: err = %v (%T), want *InjectedError", tc.site, tc.workers, err, err)
		}
		if inj.Site != tc.site {
			t.Errorf("injected at %q, want %q", inj.Site, tc.site)
		}
		got, err := sumRun(context.Background(), tc.workers, n, proc)
		if err != nil || got != wantSum(n) {
			t.Errorf("site=%s workers=%d rerun: got %d, %v; want %d, nil", tc.site, tc.workers, got, err, wantSum(n))
		}
	}
}

// TestInjectedPanicAtWorkerSite: an injected panic is contained like a
// genuine one and unwraps to the *PanicValue.
func TestInjectedPanicAtWorkerSite(t *testing.T) {
	faultinject.Arm(&faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteParshardWorker, Kind: faultinject.Panic},
	}})
	defer faultinject.Disarm()
	_, err := sumRun(context.Background(), 4, 1000, func(item int, out *int) { *out += item })
	var ie *fault.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InternalError", err, err)
	}
	if _, ok := ie.Recovered.(*faultinject.PanicValue); !ok {
		t.Errorf("Recovered = %v (%T), want *faultinject.PanicValue", ie.Recovered, ie.Recovered)
	}
}

// TestDeterminismSurvivesDelayInjection: delays reorder goroutines
// but never results — the canonical fold is byte-identical.
func TestDeterminismSurvivesDelayInjection(t *testing.T) {
	gen := func(yield func(int) bool) {
		for i := 0; i < 500; i++ {
			if !yield(i) {
				return
			}
		}
	}
	collect := func() []int {
		out, err := RunContext(context.Background(), 4, 16, gen,
			func() func(item int, out *[]int) {
				return func(item int, out *[]int) { *out = append(*out, item*item) }
			},
			func(into *[]int, chunk []int) { *into = append(*into, chunk...) })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	baseline := collect()
	faultinject.Arm(&faultinject.Plan{Rules: []faultinject.Rule{
		{Site: "parshard.*", Kind: faultinject.Delay, Every: 7, Delay: 100000},
	}})
	defer faultinject.Disarm()
	if got := collect(); !reflect.DeepEqual(got, baseline) {
		t.Fatal("delay injection changed the canonical result")
	}
}
