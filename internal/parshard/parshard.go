// Package parshard provides the shared deterministic work-sharding
// machinery behind HumMer's parallel phases (duplicate detection's
// pair scoring, DUMAS's tuple-pair scoring and per-cell field-matrix
// averaging).
//
// # The canonical-order determinism contract
//
// Every parallel phase in this codebase obeys one rule: parallelism is
// a wall-clock knob, never a semantics knob. The result of a run must
// be byte-identical at every worker count. parshard encodes the two
// patterns that make this cheap to guarantee:
//
//   - Run consumes a generator that streams work items in a canonical
//     order fixed by the caller (row-major pairs, sorted block keys,
//     …). The stream is cut into fixed-size chunks; chunk boundaries
//     and within-chunk order are functions of the canonical order
//     alone, so after workers process chunks concurrently the chunk
//     results can be folded back in chunk-index order, restoring
//     exactly the sequential output — including the order of any
//     slices the chunks append to and the floating-point accumulation
//     order of any sums.
//
//   - Ranges splits a [0, n) index space into contiguous shards, one
//     per worker. Callers must write only shard-local or per-index
//     state inside the callback; cross-shard reductions are returned
//     per shard and folded by the caller in shard order (or must be
//     order-insensitive, like integer counts, set unions, min/max).
//
// Anything order-sensitive (float accumulation, slice append) must
// happen either per item/cell or in the deterministic fold — never
// across items inside a shared accumulator.
//
// # Cancellation
//
// RunContext and RangesContext accept a context and check it
// cooperatively at chunk (respectively shard) boundaries: a run either
// completes — producing the byte-identical canonical result — or
// aborts with the context's error and no result at all. There is no
// partial output, so cancellation can never bend determinism. On
// abort every worker goroutine, the generator goroutine and the
// collector are joined before the call returns: a cancelled run leaks
// nothing.
//
// # Fault containment
//
// Every goroutine parshard starts — workers, the generator, the
// shards of RangesContext — recovers panics at its boundary and
// converts them into a *fault.InternalError returned from the call;
// the run aborts exactly like a cancellation (drain, join, no partial
// result) and the process survives. Run and Ranges, which have no
// error return, re-panic the already-contained error so the next
// boundary up re-recovers the same value without double-counting.
package parshard

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"hummer/internal/fault"
	"hummer/internal/faultinject"
)

// DefaultChunk is the default number of items per work unit: large
// enough to amortize channel traffic, small enough to keep all workers
// busy on mid-sized inputs.
const DefaultChunk = 1024

// Workers resolves a Parallelism configuration value: zero or negative
// means GOMAXPROCS.
func Workers(parallelism int) int {
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// Gen streams work items in the caller's canonical order. It stops
// early when yield returns false.
type Gen[T any] func(yield func(T) bool)

// Run consumes gen with the given number of worker goroutines and
// returns the folded result. It is RunContext with a background
// context: it cannot be cancelled. A fault contained inside the run is
// re-panicked (it is already a *fault.InternalError, so the next
// recovery boundary passes it through unchanged).
func Run[T, R any](workers, chunkSize int, gen Gen[T], newWorker func() func(item T, out *R), merge func(into *R, chunk R)) R {
	out, err := RunContext(context.Background(), workers, chunkSize, gen, newWorker, merge)
	if err != nil {
		// The background context never cancels, so any error here is a
		// contained fault; rethrow it across this error-less API.
		panic(fault.NewInternal(faultinject.SiteParshardWorker, err))
	}
	return out
}

// RunContext consumes gen with the given number of worker goroutines
// and returns the folded result.
//
// newWorker is called once per worker and returns the worker's
// processing function, giving each worker a place to hold private
// scratch state (reusable buffers, similarity scratch, …). The
// processing function consumes one item, accumulating into the current
// chunk's result.
//
// merge folds one chunk result into the running total; it is called in
// chunk-index order, i.e. in the canonical stream order. A
// single-worker run may skip merge entirely and return the lone
// accumulated result directly, so merge must be a pure fold with no
// side effects beyond *into.
//
// ctx is checked at chunk boundaries. When it is cancelled the run
// stops streaming, drains and joins every goroutine it started, and
// returns the zero R with ctx's error; the caller must discard any
// state the generator or workers touched. A nil error means the run
// completed and the result is the canonical (sequential-identical)
// fold.
//
// chunkSize <= 0 selects DefaultChunk.
func RunContext[T, R any](ctx context.Context, workers, chunkSize int, gen Gen[T], newWorker func() func(item T, out *R), merge func(into *R, chunk R)) (R, error) {
	var zero R
	if chunkSize <= 0 {
		chunkSize = DefaultChunk
	}
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	if workers <= 1 {
		var out R
		var ctxErr, injErr error
		err := func() (err error) {
			defer fault.Capture(faultinject.SiteParshardWorker, &err)
			proc := newWorker()
			n := 0
			gen(func(item T) bool {
				// Cooperative check once per chunk-sized run of items,
				// mirroring the parallel path's abort granularity.
				if n%chunkSize == 0 {
					if ctxErr = ctx.Err(); ctxErr != nil {
						return false
					}
					if injErr = faultinject.Hit(faultinject.SiteParshardWorker); injErr != nil {
						return false
					}
				}
				n++
				proc(item, &out)
				return true
			})
			return nil
		}()
		switch {
		case err != nil:
			return zero, err
		case injErr != nil:
			return zero, injErr
		case ctxErr != nil:
			return zero, ctxErr
		}
		return out, nil
	}

	type chunk struct {
		idx   int
		items []T
	}
	type indexed struct {
		idx int
		res R
	}
	jobs := make(chan chunk, workers)
	results := make(chan indexed, workers)
	bufPool := sync.Pool{New: func() any {
		buf := make([]T, 0, chunkSize)
		return &buf
	}}

	// failErr records the first contained fault (a recovered panic or
	// an injected error) from any goroutine of the run. Once set, the
	// run aborts like a cancellation: the generator stops streaming and
	// the workers stop scoring but keep draining, so every send
	// completes and every goroutine joins.
	var failMu sync.Mutex
	var failErr error
	setFail := func(err error) {
		failMu.Lock()
		if failErr == nil {
			failErr = err
		}
		failMu.Unlock()
	}
	getFail := func() error {
		failMu.Lock()
		defer failMu.Unlock()
		return failErr
	}

	// Generator: stream the canonical order into chunks. The send
	// selects on ctx so a cancelled run never wedges the generator;
	// genDone lets the caller join it before returning (the generator
	// may still be inside gen — sorting, building block maps — when the
	// workers have already drained everything). Deferred LIFO: a panic
	// inside gen is recovered first, then jobs closes (releasing the
	// workers), then genDone.
	genDone := make(chan struct{})
	go func() {
		defer close(genDone)
		defer close(jobs)
		defer func() {
			if r := recover(); r != nil {
				setFail(fault.NewInternal(faultinject.SiteParshardGenerator, r))
			}
		}()
		idx := 0
		buf := bufPool.Get().(*[]T)
		aborted := false
		gen(func(item T) bool {
			*buf = append(*buf, item)
			if len(*buf) == chunkSize {
				if getFail() != nil {
					aborted = true
					return false
				}
				if err := faultinject.Hit(faultinject.SiteParshardGenerator); err != nil {
					setFail(err)
					aborted = true
					return false
				}
				select {
				case jobs <- chunk{idx: idx, items: *buf}:
				case <-ctx.Done():
					aborted = true
					return false
				}
				idx++
				buf = bufPool.Get().(*[]T)
				*buf = (*buf)[:0]
			}
			return true
		})
		if len(*buf) > 0 && !aborted && ctx.Err() == nil && getFail() == nil {
			select {
			case jobs <- chunk{idx: idx, items: *buf}:
			case <-ctx.Done():
			}
		}
	}()

	// runChunk scores one chunk behind a recovery boundary, so a panic
	// in the caller's processing function fails the run instead of the
	// process.
	runChunk := func(proc func(item T, out *R), items []T) (out R, err error) {
		defer fault.Capture(faultinject.SiteParshardWorker, &err)
		if err := faultinject.Hit(faultinject.SiteParshardWorker); err != nil {
			return out, err
		}
		for _, item := range items {
			proc(item, &out)
		}
		return out, nil
	}
	// makeWorker guards newWorker (caller code) the same way.
	makeWorker := func() (proc func(item T, out *R), err error) {
		defer fault.Capture(faultinject.SiteParshardWorker, &err)
		return newWorker(), nil
	}

	// Workers: process chunks with per-worker state; once the context
	// is cancelled or a fault is recorded they stop scoring but keep
	// draining jobs so the generator's sends always complete.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Containment backstop for the drain loop itself: scoring
			// panics are already captured per-chunk in runChunk, but a
			// panic in the surrounding channel/pool plumbing must also
			// become a fault — and this worker must keep draining jobs
			// afterwards, or the generator's sends could block forever.
			defer func() {
				if r := recover(); r != nil {
					setFail(fault.NewInternal(faultinject.SiteParshardWorker, r))
					for ch := range jobs {
						buf := ch.items[:0]
						bufPool.Put(&buf)
					}
				}
			}()
			proc, perr := makeWorker()
			if perr != nil {
				setFail(perr)
			}
			for ch := range jobs {
				if perr != nil || ctx.Err() != nil || getFail() != nil {
					buf := ch.items[:0]
					bufPool.Put(&buf)
					continue
				}
				out, err := runChunk(proc, ch.items)
				buf := ch.items[:0]
				bufPool.Put(&buf)
				if err != nil {
					setFail(err)
					continue
				}
				results <- indexed{idx: ch.idx, res: out}
			}
		}()
	}
	// Join-only goroutine: wg.Wait and close cannot panic, and a
	// containment defer here would convert any latent bug into a
	// silent collector hang instead of a loud crash.
	//lint:ignore hummer/containment join-only body (wg.Wait + close); capturing would trade a loud panic for a wedged collector
	go func() {
		wg.Wait()
		close(results)
	}()

	// Fold deterministically: chunk order restores the canonical
	// stream order. The collector always drains to close so the worker
	// sends (buffered at cap workers) can never block forever.
	var chunks []indexed
	for r := range results {
		chunks = append(chunks, r)
	}
	<-genDone
	if err := getFail(); err != nil {
		return zero, err
	}
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	sort.Slice(chunks, func(i, j int) bool { return chunks[i].idx < chunks[j].idx })
	var merged R
	for _, c := range chunks {
		merge(&merged, c.res)
	}
	return merged, nil
}

// Ranges splits [0, n) into at most `workers` contiguous, near-equal
// shards and runs fn concurrently, once per shard, waiting for all to
// finish. fn receives the shard index (0-based, in range order) and
// the half-open [lo, hi) bounds. With workers <= 1 (or n too small to
// split) fn runs inline exactly once with the full range.
//
// Determinism contract: fn must only write per-index state (slots
// [lo, hi) of shared slices) or shard-local state keyed by the shard
// index; the caller folds any shard-local reductions afterwards, in
// shard order.
// A fault contained inside a shard is re-panicked across this
// error-less API (already a *fault.InternalError, so the next recovery
// boundary passes it through unchanged). It is RangesContext with a
// background context: it cannot be cancelled.
func Ranges(workers, n int, fn func(shard, lo, hi int)) {
	if err := RangesContext(context.Background(), workers, n, fn); err != nil {
		panic(fault.NewInternal(faultinject.SiteParshardRange, err))
	}
}

// RangesContext is Ranges with cooperative cancellation: the context
// is checked before dispatch, and fn should additionally poll
// Canceled(ctx) inside long per-row loops and bail early. Every shard
// goroutine is joined before the call returns; when it returns a
// non-nil error the caller must discard whatever the shards wrote.
func RangesContext(ctx context.Context, workers, n int, fn func(shard, lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers > n {
		workers = n
	}
	// runShard is the per-shard recovery boundary: a panic in fn fails
	// the run, never the process.
	runShard := func(shard, lo, hi int) (err error) {
		defer fault.Capture(faultinject.SiteParshardRange, &err)
		if err := faultinject.Hit(faultinject.SiteParshardRange); err != nil {
			return err
		}
		fn(shard, lo, hi)
		return nil
	}
	if workers <= 1 {
		if err := runShard(0, 0, n); err != nil {
			return err
		}
		return ctx.Err()
	}
	var failMu sync.Mutex
	var failErr error
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		lo := s * n / workers
		hi := (s + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			// Containment backstop: runShard captures fn's panics, so
			// this only fires for plumbing bugs around it — which must
			// still fail the run, not the process.
			defer func() {
				if r := recover(); r != nil {
					failMu.Lock()
					if failErr == nil {
						failErr = fault.NewInternal(faultinject.SiteParshardRange, r)
					}
					failMu.Unlock()
				}
			}()
			if err := runShard(s, lo, hi); err != nil {
				failMu.Lock()
				if failErr == nil {
					failErr = err
				}
				failMu.Unlock()
			}
		}(s, lo, hi)
	}
	wg.Wait()
	if failErr != nil {
		return failErr
	}
	return ctx.Err()
}

// CancelStride is the shared poll interval for long shard loops: a
// shard should check Canceled every CancelStride rows (or cells).
// Small enough for prompt aborts, large enough that the poll is
// invisible next to per-row work — one constant so every phase
// retunes together.
const CancelStride = 128

// Canceled reports whether ctx is done — the poll long shard loops use
// to bail out early between rows (every CancelStride iterations).
func Canceled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}
