// Package parshard provides the shared deterministic work-sharding
// machinery behind HumMer's parallel phases (duplicate detection's
// pair scoring, DUMAS's tuple-pair scoring and per-cell field-matrix
// averaging).
//
// # The canonical-order determinism contract
//
// Every parallel phase in this codebase obeys one rule: parallelism is
// a wall-clock knob, never a semantics knob. The result of a run must
// be byte-identical at every worker count. parshard encodes the two
// patterns that make this cheap to guarantee:
//
//   - Run consumes a generator that streams work items in a canonical
//     order fixed by the caller (row-major pairs, sorted block keys,
//     …). The stream is cut into fixed-size chunks; chunk boundaries
//     and within-chunk order are functions of the canonical order
//     alone, so after workers process chunks concurrently the chunk
//     results can be folded back in chunk-index order, restoring
//     exactly the sequential output — including the order of any
//     slices the chunks append to and the floating-point accumulation
//     order of any sums.
//
//   - Ranges splits a [0, n) index space into contiguous shards, one
//     per worker. Callers must write only shard-local or per-index
//     state inside the callback; cross-shard reductions are returned
//     per shard and folded by the caller in shard order (or must be
//     order-insensitive, like integer counts, set unions, min/max).
//
// Anything order-sensitive (float accumulation, slice append) must
// happen either per item/cell or in the deterministic fold — never
// across items inside a shared accumulator.
//
// # Cancellation
//
// RunContext and RangesContext accept a context and check it
// cooperatively at chunk (respectively shard) boundaries: a run either
// completes — producing the byte-identical canonical result — or
// aborts with the context's error and no result at all. There is no
// partial output, so cancellation can never bend determinism. On
// abort every worker goroutine, the generator goroutine and the
// collector are joined before the call returns: a cancelled run leaks
// nothing.
package parshard

import (
	"context"
	"runtime"
	"sort"
	"sync"
)

// DefaultChunk is the default number of items per work unit: large
// enough to amortize channel traffic, small enough to keep all workers
// busy on mid-sized inputs.
const DefaultChunk = 1024

// Workers resolves a Parallelism configuration value: zero or negative
// means GOMAXPROCS.
func Workers(parallelism int) int {
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// Gen streams work items in the caller's canonical order. It stops
// early when yield returns false.
type Gen[T any] func(yield func(T) bool)

// Run consumes gen with the given number of worker goroutines and
// returns the folded result. It is RunContext with a background
// context: it cannot be cancelled.
func Run[T, R any](workers, chunkSize int, gen Gen[T], newWorker func() func(item T, out *R), merge func(into *R, chunk R)) R {
	out, _ := RunContext(context.Background(), workers, chunkSize, gen, newWorker, merge)
	return out
}

// RunContext consumes gen with the given number of worker goroutines
// and returns the folded result.
//
// newWorker is called once per worker and returns the worker's
// processing function, giving each worker a place to hold private
// scratch state (reusable buffers, similarity scratch, …). The
// processing function consumes one item, accumulating into the current
// chunk's result.
//
// merge folds one chunk result into the running total; it is called in
// chunk-index order, i.e. in the canonical stream order. A
// single-worker run may skip merge entirely and return the lone
// accumulated result directly, so merge must be a pure fold with no
// side effects beyond *into.
//
// ctx is checked at chunk boundaries. When it is cancelled the run
// stops streaming, drains and joins every goroutine it started, and
// returns the zero R with ctx's error; the caller must discard any
// state the generator or workers touched. A nil error means the run
// completed and the result is the canonical (sequential-identical)
// fold.
//
// chunkSize <= 0 selects DefaultChunk.
func RunContext[T, R any](ctx context.Context, workers, chunkSize int, gen Gen[T], newWorker func() func(item T, out *R), merge func(into *R, chunk R)) (R, error) {
	var zero R
	if chunkSize <= 0 {
		chunkSize = DefaultChunk
	}
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	if workers <= 1 {
		proc := newWorker()
		var out R
		n := 0
		var ctxErr error
		gen(func(item T) bool {
			// Cooperative check once per chunk-sized run of items,
			// mirroring the parallel path's abort granularity.
			if n%chunkSize == 0 {
				if ctxErr = ctx.Err(); ctxErr != nil {
					return false
				}
			}
			n++
			proc(item, &out)
			return true
		})
		if ctxErr != nil {
			return zero, ctxErr
		}
		return out, nil
	}

	type chunk struct {
		idx   int
		items []T
	}
	type indexed struct {
		idx int
		res R
	}
	jobs := make(chan chunk, workers)
	results := make(chan indexed, workers)
	bufPool := sync.Pool{New: func() any {
		buf := make([]T, 0, chunkSize)
		return &buf
	}}

	// Generator: stream the canonical order into chunks. The send
	// selects on ctx so a cancelled run never wedges the generator;
	// genDone lets the caller join it before returning (the generator
	// may still be inside gen — sorting, building block maps — when the
	// workers have already drained everything).
	genDone := make(chan struct{})
	go func() {
		defer close(genDone)
		defer close(jobs)
		idx := 0
		buf := bufPool.Get().(*[]T)
		gen(func(item T) bool {
			*buf = append(*buf, item)
			if len(*buf) == chunkSize {
				select {
				case jobs <- chunk{idx: idx, items: *buf}:
				case <-ctx.Done():
					return false
				}
				idx++
				buf = bufPool.Get().(*[]T)
				*buf = (*buf)[:0]
			}
			return true
		})
		if len(*buf) > 0 && ctx.Err() == nil {
			select {
			case jobs <- chunk{idx: idx, items: *buf}:
			case <-ctx.Done():
			}
		}
	}()

	// Workers: process chunks with per-worker state; once the context
	// is cancelled they stop scoring but keep draining jobs so the
	// generator's sends always complete.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			proc := newWorker()
			for ch := range jobs {
				if ctx.Err() != nil {
					buf := ch.items[:0]
					bufPool.Put(&buf)
					continue
				}
				var out R
				for _, item := range ch.items {
					proc(item, &out)
				}
				buf := ch.items[:0]
				bufPool.Put(&buf)
				results <- indexed{idx: ch.idx, res: out}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Fold deterministically: chunk order restores the canonical
	// stream order. The collector always drains to close so the worker
	// sends (buffered at cap workers) can never block forever.
	var chunks []indexed
	for r := range results {
		chunks = append(chunks, r)
	}
	<-genDone
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	sort.Slice(chunks, func(i, j int) bool { return chunks[i].idx < chunks[j].idx })
	var merged R
	for _, c := range chunks {
		merge(&merged, c.res)
	}
	return merged, nil
}

// Ranges splits [0, n) into at most `workers` contiguous, near-equal
// shards and runs fn concurrently, once per shard, waiting for all to
// finish. fn receives the shard index (0-based, in range order) and
// the half-open [lo, hi) bounds. With workers <= 1 (or n too small to
// split) fn runs inline exactly once with the full range.
//
// Determinism contract: fn must only write per-index state (slots
// [lo, hi) of shared slices) or shard-local state keyed by the shard
// index; the caller folds any shard-local reductions afterwards, in
// shard order.
func Ranges(workers, n int, fn func(shard, lo, hi int)) {
	_ = RangesContext(context.Background(), workers, n, fn)
}

// RangesContext is Ranges with cooperative cancellation: the context
// is checked before dispatch, and fn should additionally poll
// Canceled(ctx) inside long per-row loops and bail early. Every shard
// goroutine is joined before the call returns; when it returns a
// non-nil error the caller must discard whatever the shards wrote.
func RangesContext(ctx context.Context, workers, n int, fn func(shard, lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return ctx.Err()
	}
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		lo := s * n / workers
		hi := (s + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			fn(s, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
	return ctx.Err()
}

// CancelStride is the shared poll interval for long shard loops: a
// shard should check Canceled every CancelStride rows (or cells).
// Small enough for prompt aborts, large enough that the poll is
// invisible next to per-row work — one constant so every phase
// retunes together.
const CancelStride = 128

// Canceled reports whether ctx is done — the poll long shard loops use
// to bail out early between rows (every CancelStride iterations).
func Canceled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}
