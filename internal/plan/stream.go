package plan

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync/atomic"
	"time"

	"hummer/internal/core"
	"hummer/internal/fault"
	"hummer/internal/faultinject"
	"hummer/internal/lineage"
	"hummer/internal/obs"
	"hummer/internal/relation"
	"hummer/internal/schema"
	"hummer/internal/sql"
	"hummer/internal/value"
)

// streamChunkRows is how many rows a stream producer batches per
// channel send: large enough that channel synchronization vanishes
// next to per-row work, small enough that the consumer's working set
// stays a few KB and time-to-first-row stays low.
const streamChunkRows = 64

// streamEvent is one message from a stream's producer goroutine. The
// first event is always the schema (or nothing, when the statement
// fails before producing one — the failure then travels out-of-band,
// published before the channel closes). Later events carry row chunks.
type streamEvent struct {
	schema *schema.Schema
	rows   []relation.Row
	lins   [][]lineage.Set // aligned with rows; nil when absent
}

// Rows is a streaming cursor over one statement's result, the
// incremental alternative to QueryResult's all-at-once table:
//
//	rows, err := e.StreamContext(ctx, q, plan.ExecOptions{})
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	    row := rows.Row()
//	    ...
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Plain SELECT statements stream genuinely: rows leave the Volcano
// operator tree in chunks as the scan advances, and a cancelled
// context stops the scan mid-flight. Fusion statements must compute
// the complete fused table before the first row exists (fusion groups
// globally), but the result is then emitted in chunks without the
// caller ever holding a second materialized copy — and a warm
// fused-cache hit streams straight from the slim cached entry. A
// drained stream yields exactly the rows, in exactly the order, of the
// equivalent QueryContext call.
//
// A Rows is not safe for concurrent use. Close must be called (All
// does it automatically); abandoning a Rows without Close leaks its
// producer goroutine until the parent context ends.
type Rows struct {
	cancel context.CancelFunc
	events chan streamEvent
	// earlyClose is set by Close before it cancels the producer, so
	// the producer can tell a deliberate Close (not an error) from an
	// external cancellation (one). Atomic: Close's store and the
	// producer's load race only across the ctx-done synchronization.
	earlyClose atomic.Bool

	// Producer-owned until events is closed (the close is the
	// happens-before edge): the terminal error and the fusion summary.
	prodErr     error
	prodSummary *core.Summary

	schema  *schema.Schema
	cur     []relation.Row
	curLins [][]lineage.Set
	pos     int
	row     relation.Row
	rowLin  []lineage.Set
	err     error
	drained bool
	closed  bool

	// emitted counts rows this stream's producer has handed to the
	// event channel. Producer-owned while the stream is live; the
	// channel close publishes it, so Emitted is valid after the end.
	emitted int
}

// Emitted reports how many rows this stream's producer emitted into
// the producer→consumer buffer. Valid once the stream has ended (Next
// returned false, or after Close); a live stream's count is racy and
// deliberately not exposed.
func (r *Rows) Emitted() int {
	if r.drained || r.closed {
		return r.emitted
	}
	return 0
}

// StreamContext parses the statement and starts executing it in a
// producer goroutine, returning a cursor over the result rows. Parse
// errors are reported synchronously; execution errors surface through
// Columns, Next and Err. opt applies as in QueryWith — NoLineage stops
// per-row lineage from being attached, Timeout bounds the whole
// stream's lifetime, and Trace is accepted but useless here (a stream
// exposes no Pipeline; it only forces the fused-tier bypass).
func (e *Executor) StreamContext(ctx context.Context, q string, opt ExecOptions) (*Rows, error) {
	if e.Repo == nil {
		return nil, fmt.Errorf("plan: executor has no repository")
	}
	pctx, psp := obs.StartSpan(ctx, "plan")
	stmt, err := e.parse(pctx, q)
	psp.End()
	if err != nil {
		return nil, err
	}
	var cancel context.CancelFunc
	if opt.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	r := &Rows{cancel: cancel, events: make(chan streamEvent, 1)}
	go r.produce(ctx, e, stmt, q, opt)
	return r, nil
}

// produce executes the statement and feeds the event channel. Every
// send gives up when ctx is cancelled (Close cancels it), so the
// producer can never outlive an abandoned-then-closed stream; its
// final act is always to publish the terminal state and close the
// channel — the consumer's join point. The producer goroutine is a
// containment boundary: a panic anywhere in execution becomes the
// stream's terminal *fault.InternalError, published before the close,
// never a process crash.
func (r *Rows) produce(ctx context.Context, e *Executor, stmt *sql.Stmt, q string, opt ExecOptions) {
	defer close(r.events)
	// Backstop for the span/option bookkeeping around the captured
	// execution below: a panic there must still become the stream's
	// terminal error (published via prodErr before the deferred close
	// releases the consumer), never a process crash.
	defer func() {
		if rec := recover(); rec != nil {
			r.prodErr = fault.NewInternal(faultinject.SitePlanStream, rec)
		}
	}()
	// The stream span covers execution plus the full drain: its
	// duration is the stream's wall time as the consumer experienced
	// it, with the execution sub-spans (cache.fused, pipeline, ...)
	// nested under it. The handler publishes the trace only after
	// joining this goroutine, so the span tree is quiescent by then.
	sctx, sp := obs.StartSpan(ctx, "stream")
	err := func() (err error) {
		defer fault.Capture(faultinject.SitePlanStream, &err)
		if err := faultinject.Hit(faultinject.SitePlanStream); err != nil {
			return err
		}
		return r.run(sctx, e, stmt, q, opt)
	}()
	sp.SetInt("rows", r.emitted)
	sp.End()
	if err != nil && r.earlyClose.Load() && errors.Is(err, context.Canceled) {
		// The consumer closed the stream on purpose; the resulting
		// cancellation is a clean shutdown, not a failure.
		err = nil
	}
	r.prodErr = err
	if opt.OnFinish != nil {
		opt.OnFinish(r.prodSummary, err)
	}
}

// run does the actual execution; its error return becomes the
// stream's terminal error.
func (r *Rows) run(ctx context.Context, e *Executor, stmt *sql.Stmt, q string, opt ExecOptions) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if stmt.IsFusion() {
		res, err := e.executeFusion(ctx, stmt, q, opt)
		if err != nil {
			return err
		}
		r.prodSummary = res.Summary
		if !r.send(ctx, streamEvent{schema: res.Rel.Schema()}) {
			return ctx.Err()
		}
		// executeFusion already projected the options: under NoLineage
		// this is nil (trimResult).
		lin := res.Lineage
		for i := 0; i < res.Rel.Len(); i += streamChunkRows {
			if err := ctx.Err(); err != nil {
				return err
			}
			end := i + streamChunkRows
			if end > res.Rel.Len() {
				end = res.Rel.Len()
			}
			ev := streamEvent{rows: res.Rel.Rows()[i:end]}
			if lin != nil {
				ev.lins = lin[i:end]
			}
			if !r.send(ctx, ev) {
				return ctx.Err()
			}
			// Chunk-boundary fault point: lets the harness fail a stream
			// mid-flight, after rows have already reached the consumer.
			if err := faultinject.Hit(faultinject.SitePlanStream); err != nil {
				return err
			}
		}
		return nil
	}

	// share=false: the streaming path trades subtree sharing for
	// genuine row-at-a-time streaming — materializing a CSE
	// intermediate here would move time-to-first-row back to
	// time-to-last-row. Joins still probe in parallel.
	op, err := e.buildPlain(ctx, stmt, false)
	if err != nil {
		return err
	}
	if err := op.Open(); err != nil {
		return err
	}
	if !r.send(ctx, streamEvent{schema: op.Schema()}) {
		return ctx.Err()
	}
	chunk := make([]relation.Row, 0, streamChunkRows)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		row, ok := op.Next()
		if ok {
			chunk = append(chunk, row)
		}
		if (!ok && len(chunk) > 0) || len(chunk) == streamChunkRows {
			if !r.send(ctx, streamEvent{rows: chunk}) {
				return ctx.Err()
			}
			chunk = make([]relation.Row, 0, streamChunkRows)
			if err := faultinject.Hit(faultinject.SitePlanStream); err != nil {
				return err
			}
		}
		if !ok {
			return nil
		}
	}
}

// queuedEvents counts stream events sitting in producer→consumer
// buffers across all live Rows: the backpressure gauge hummerd
// exports as hummer_stream_chunk_queue_depth. A persistently high
// depth means producers outrun consumers (slow clients holding
// materialized chunks); zero at rest proves streams drain fully.
var queuedEvents atomic.Int64

// producedRows counts rows emitted by stream producers into the
// producer→consumer buffers, across all streams over the process
// lifetime — the throughput companion to the queue-depth gauge,
// exported as hummer_stream_produced_rows_total.
var producedRows atomic.Uint64

// stallHist records how long producers spent blocked on a full event
// buffer waiting for the consumer — the direct measure of consumer
// backpressure (a slow client stalls its producer here). Only actual
// blocking is observed; an immediate send costs nothing.
var stallHist = obs.NewDurationHist(obs.StallBounds)

// StreamQueueDepth reports how many stream events are currently
// buffered between producers and consumers, summed over all live
// streams.
func StreamQueueDepth() int64 { return queuedEvents.Load() }

// StreamProducedRows reports the total rows emitted by stream
// producers process-wide.
func StreamProducedRows() uint64 { return producedRows.Load() }

// StreamStallSnapshot returns the consumer-stall-time histogram:
// every observation is one producer send that had to block on a full
// buffer, bucketed by how long it waited.
func StreamStallSnapshot() obs.HistSnapshot { return stallHist.Snapshot() }

// send delivers one event unless the stream's context ends first.
// A send that cannot complete immediately is a consumer stall; the
// time spent blocked is recorded whether or not the send eventually
// succeeds (a cancelled wait was still time lost to backpressure).
func (r *Rows) send(ctx context.Context, ev streamEvent) bool {
	select {
	case r.events <- ev:
	case <-ctx.Done():
		return false
	default:
		// Wall-clock reads here time consumer stalls for the
		// backpressure histogram only; they never touch row data, so
		// the byte-identity contract is unaffected.
		//lint:ignore hummer/determinism stall-metric timing only; never reaches result bytes
		t0 := time.Now()
		select {
		case r.events <- ev:
			//lint:ignore hummer/determinism stall-metric timing only; never reaches result bytes
			stallHist.Observe(time.Since(t0))
		case <-ctx.Done():
			//lint:ignore hummer/determinism stall-metric timing only; never reaches result bytes
			stallHist.Observe(time.Since(t0))
			return false
		}
	}
	queuedEvents.Add(1)
	if n := len(ev.rows); n > 0 {
		r.emitted += n
		producedRows.Add(uint64(n))
	}
	return true
}

// next receives one event, folding terminal state in when the channel
// closes. Returns false at end of stream (or after an error).
func (r *Rows) next() (streamEvent, bool) {
	ev, ok := <-r.events
	if ok {
		queuedEvents.Add(-1)
	}
	if !ok {
		if !r.drained {
			r.drained = true
			// The channel close ordered these producer writes before us.
			r.err = r.prodErr
		}
		return streamEvent{}, false
	}
	return ev, true
}

// Columns returns the result's column names, blocking until the
// statement has executed far enough to know them (for fusion
// statements: until the pipeline has run). It fails with the
// statement's error when execution dies before producing a schema —
// callers can therefore use it to distinguish "bad statement" from
// "streamable result" before consuming any rows.
func (r *Rows) Columns() ([]string, error) {
	if err := r.waitSchema(); err != nil {
		return nil, err
	}
	return r.schema.Names(), nil
}

// Schema is Columns with types: the full result schema.
func (r *Rows) Schema() (*schema.Schema, error) {
	if err := r.waitSchema(); err != nil {
		return nil, err
	}
	return r.schema, nil
}

func (r *Rows) waitSchema() error {
	for r.schema == nil {
		if r.closed {
			return fmt.Errorf("plan: stream is closed")
		}
		if r.err != nil {
			return r.err
		}
		ev, ok := r.next()
		if !ok {
			if r.err != nil {
				return r.err
			}
			return fmt.Errorf("plan: stream ended before a schema")
		}
		if ev.schema != nil {
			r.schema = ev.schema
		}
	}
	return nil
}

// Next advances to the next row, returning false at the end of the
// stream or on error (consult Err to tell the two apart).
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	for {
		if r.pos < len(r.cur) {
			r.row = r.cur[r.pos]
			if r.curLins != nil {
				r.rowLin = r.curLins[r.pos]
			} else {
				r.rowLin = nil
			}
			r.pos++
			return true
		}
		ev, ok := r.next()
		if !ok {
			return false
		}
		switch {
		case ev.schema != nil:
			r.schema = ev.schema
		default:
			r.cur, r.curLins, r.pos = ev.rows, ev.lins, 0
		}
	}
}

// Row returns the current row (valid until the next call to Next).
// Rows served from the fused cache tier are shared across queries:
// treat the row as read-only, or Clone it.
func (r *Rows) Row() relation.Row { return r.row }

// RowLineage returns the current row's per-cell lineage — fusion
// statements only, and only when the stream was not opened with
// NoLineage; nil otherwise.
func (r *Rows) RowLineage() []lineage.Set { return r.rowLin }

// Scan copies the current row into dest: one destination per column,
// each a *Value (the raw cell), *string (the cell's text), *int64,
// *float64, *bool, *time.Time (converted; NULL leaves the zero value)
// or *any (the cell's native Go form). nil destinations skip their
// column.
func (r *Rows) Scan(dest ...any) error {
	if r.row == nil {
		return fmt.Errorf("plan: Scan called without a current row")
	}
	if len(dest) != len(r.row) {
		return fmt.Errorf("plan: Scan got %d destinations for %d columns", len(dest), len(r.row))
	}
	for i, d := range dest {
		if d == nil {
			continue
		}
		v := r.row[i]
		switch p := d.(type) {
		case *value.Value:
			*p = v
		case *string:
			*p = v.Text()
		case *int64:
			if v.IsNull() {
				*p = 0
			} else if v.Kind() != value.KindInt {
				return fmt.Errorf("plan: Scan column %d is %v, not int", i, v.Kind())
			} else {
				*p = v.Int()
			}
		case *float64:
			if v.IsNull() {
				*p = 0
			} else if f, ok := v.AsFloat(); ok {
				*p = f
			} else {
				return fmt.Errorf("plan: Scan column %d is %v, not numeric", i, v.Kind())
			}
		case *bool:
			if v.IsNull() {
				*p = false
			} else if v.Kind() != value.KindBool {
				return fmt.Errorf("plan: Scan column %d is %v, not bool", i, v.Kind())
			} else {
				*p = v.Bool()
			}
		case *time.Time:
			if v.IsNull() {
				*p = time.Time{}
			} else if v.Kind() != value.KindTime {
				return fmt.Errorf("plan: Scan column %d is %v, not time", i, v.Kind())
			} else {
				*p = v.Time()
			}
		case *any:
			*p = nativeCell(v)
		default:
			return fmt.Errorf("plan: Scan destination %d has unsupported type %T", i, d)
		}
	}
	return nil
}

// nativeCell maps a Value to its native Go form: nil for NULL, int64,
// float64, bool, time.Time, else the string text.
func nativeCell(v value.Value) any {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindInt:
		return v.Int()
	case value.KindFloat:
		return v.Float()
	case value.KindBool:
		return v.Bool()
	case value.KindTime:
		return v.Time()
	default:
		return v.Str()
	}
}

// Err returns the error that terminated the stream, if any. It is nil
// after a complete drain and nil after a deliberate early Close; a
// cancelled context or a failed pipeline surfaces here.
func (r *Rows) Err() error { return r.err }

// Summary returns the fusion summary once the stream has ended (after
// Next returned false or Close was called); nil for plain SQL and for
// streams that failed before the pipeline finished.
func (r *Rows) Summary() *core.Summary {
	if r.drained || r.closed {
		return r.prodSummary
	}
	return nil
}

// Close cancels the producer and releases the stream. It is
// idempotent, joins the producer goroutine, and never overwrites an
// error already reported by Next/Err.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.earlyClose.Store(true)
	r.cancel()
	// Drain to the producer's close — the join. Terminal state is
	// deliberately NOT folded in: an early Close is not an error.
	for range r.events {
		queuedEvents.Add(-1)
	}
	if !r.drained {
		r.drained = true
	}
	return nil
}

// All adapts the stream to a Go 1.23 range-over-func iterator,
// closing it when the loop ends:
//
//	for row, err := range rows.All() {
//	    if err != nil { ... }
//	    ...
//	}
//
// A terminal error is yielded as the final (nil, err) pair.
func (r *Rows) All() iter.Seq2[relation.Row, error] {
	return func(yield func(relation.Row, error) bool) {
		defer r.Close()
		for r.Next() {
			if !yield(r.row, nil) {
				return
			}
		}
		if err := r.Err(); err != nil {
			yield(nil, err)
		}
	}
}
