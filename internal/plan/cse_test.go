package plan

import (
	"fmt"
	"sync"
	"testing"

	"hummer/internal/qcache"
)

func cseStats(e *Executor) qcache.KindStats {
	return e.Cache.Stats().Kinds[qcache.KindCSE]
}

// TestCSESharesSourceSubtree is the cross-statement CSE contract:
// statements that differ only above the source subtree (projection,
// ordering, aggregation) share one materialized FROM/JOIN/WHERE
// intermediate — one scan/join/filter pass for the lot.
func TestCSESharesSourceSubtree(t *testing.T) {
	e := testExecutor(t)
	e.Cache = qcache.New(0)
	queries := []string{
		"SELECT oid, city FROM orders JOIN custs ON cust = cname WHERE qty > 1 ORDER BY oid",
		"SELECT city FROM orders JOIN custs ON cust = cname WHERE qty > 1",
		"SELECT cust, count(*) AS n FROM orders JOIN custs ON cust = cname WHERE qty > 1 GROUP BY cust",
	}
	for _, q := range queries {
		if _, err := e.Query(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	ks := cseStats(e)
	if ks.Misses != 1 {
		t.Errorf("cse misses = %d, want 1 (one materialization pass)", ks.Misses)
	}
	if ks.Hits != uint64(len(queries)-1) {
		t.Errorf("cse hits = %d, want %d", ks.Hits, len(queries)-1)
	}
}

// TestCSEKeySeparatesSubtrees pins the keying rules: a different
// predicate, a different join column or different source *content*
// each address a different subtree.
func TestCSEKeySeparatesSubtrees(t *testing.T) {
	e := testExecutor(t)
	e.Cache = qcache.New(0)
	for _, q := range []string{
		"SELECT oid FROM orders WHERE qty > 1",
		"SELECT oid FROM orders WHERE qty > 2",
		"SELECT oid FROM orders JOIN custs ON cust = cname WHERE qty > 1",
	} {
		if _, err := e.Query(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	ks := cseStats(e)
	if ks.Misses != 3 || ks.Hits != 0 {
		t.Errorf("misses/hits = %d/%d, want 3/0 (distinct subtrees must not share)", ks.Misses, ks.Hits)
	}
}

// TestCSEIneligibleBareScan: a single-table scan without WHERE does no
// subtree work worth caching — the registered relation already is the
// shared intermediate — so it must not touch the tier.
func TestCSEIneligibleBareScan(t *testing.T) {
	e := testExecutor(t)
	e.Cache = qcache.New(0)
	if _, err := e.Query("SELECT oid FROM orders ORDER BY oid"); err != nil {
		t.Fatal(err)
	}
	ks := cseStats(e)
	if ks.Misses != 0 && ks.Hits != 0 {
		t.Errorf("bare scan touched the CSE tier: %+v", ks)
	}
}

// TestCSESameStatementReuse is the double-materialization fix: one
// statement whose scan feeds both the WHERE filter and the projection
// resolves the subtree once, and an identical statement later reuses
// the very same intermediate (hit, not a second pass).
func TestCSESameStatementReuse(t *testing.T) {
	e := testExecutor(t)
	e.Cache = qcache.New(0)
	const q = "SELECT oid, qty FROM orders WHERE qty > 1"
	a, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rel.String() != b.Rel.String() {
		t.Error("shared subtree changed the result")
	}
	ks := cseStats(e)
	if ks.Misses != 1 || ks.Hits != 1 {
		t.Errorf("misses/hits = %d/%d, want 1/1", ks.Misses, ks.Hits)
	}
}

// TestCSEPurgeDropsSharing: Purge drops completed CSE entries like
// any other artifact kind — the next statement re-materializes.
func TestCSEPurgeDropsSharing(t *testing.T) {
	e := testExecutor(t)
	e.Cache = qcache.New(0)
	const q = "SELECT oid FROM orders WHERE qty > 1"
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	e.Cache.Purge()
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	if ks := cseStats(e); ks.Misses != 2 {
		t.Errorf("misses = %d, want 2 after purge", ks.Misses)
	}
}

// TestCSEConcurrentSingleflight: concurrent identical statements share
// one materialization through the singleflight — exactly one miss,
// the rest hits or in-flight shares — and all results byte-identical.
func TestCSEConcurrentSingleflight(t *testing.T) {
	e := testExecutor(t)
	e.Cache = qcache.New(0)
	const q = "SELECT oid, city FROM orders JOIN custs ON cust = cname WHERE qty > 0 ORDER BY oid"
	want, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	e.Cache.Purge()
	const n = 8
	results := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := e.Query(q)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = res.Rel.String()
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if results[i] != want.Rel.String() {
			t.Errorf("query %d result differs", i)
		}
	}
	ks := cseStats(e)
	if ks.Misses != 2 { // the warm-up miss + exactly one for the concurrent wave
		t.Errorf("misses = %d, want 2 (singleflight must collapse the wave)", ks.Misses)
	}
	if got := ks.Hits + ks.Shared; got != n-1 {
		t.Errorf("hits+shared = %d, want %d (everyone but the wave's leader)", got, n-1)
	}
}

// TestCSEParallelJoinByteIdentity: the executor-level knob — the same
// join statement at worker counts 1, 2 and 7 yields byte-identical
// tables, through both the CSE tier and fresh materializations.
func TestCSEParallelJoinByteIdentity(t *testing.T) {
	const q = "SELECT oid, city FROM orders JOIN custs ON cust = cname ORDER BY oid"
	var want string
	for _, workers := range []int{1, 2, 7} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			e := testExecutor(t)
			e.Cache = qcache.New(0)
			e.Parallel = workers
			res, err := e.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if want == "" {
				want = res.Rel.String()
			} else if res.Rel.String() != want {
				t.Errorf("workers=%d output differs:\n%s\nvs\n%s", workers, res.Rel, want)
			}
		})
	}
}
