package plan

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"hummer/internal/core"
	"hummer/internal/qcache"
	"hummer/internal/relation"
	"hummer/internal/testutil"
)

// drainRows materializes a stream into a relation, failing on any
// stream error.
func drainRows(t *testing.T, rows *Rows, name string) *relation.Relation {
	t.Helper()
	defer rows.Close()
	sch, err := rows.Schema()
	if err != nil {
		t.Fatalf("stream schema: %v", err)
	}
	out := relation.New(name, sch)
	for rows.Next() {
		if err := out.Append(rows.Row().Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	return out
}

// TestStreamMatchesQuery: a drained stream is byte-identical to the
// materialized result of the same statement — plain SQL (including
// post-processing clauses) and fusion alike, cold and warm.
func TestStreamMatchesQuery(t *testing.T) {
	queries := []string{
		`SELECT Name, Age FROM EE_Student ORDER BY Age DESC LIMIT 3`,
		`SELECT cust, SUM(qty) AS total FROM orders GROUP BY cust ORDER BY cust`,
		`SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name) ORDER BY Name`,
	}
	for _, withCache := range []bool{false, true} {
		e := testExecutor(t)
		if withCache {
			e.Cache = qcache.New(16)
		}
		for _, q := range queries {
			want, err := e.Query(q)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			for round := 0; round < 2; round++ { // cold-ish and warm
				rows, err := e.StreamContext(context.Background(), q, ExecOptions{})
				if err != nil {
					t.Fatalf("%s: stream: %v", q, err)
				}
				got := drainRows(t, rows, want.Rel.Name())
				if got.String() != want.Rel.String() {
					t.Errorf("cache=%v round %d %s:\nstream:\n%s\nquery:\n%s",
						withCache, round, q, got, want.Rel)
				}
				if (rows.Summary() != nil) != (want.Summary != nil) {
					t.Errorf("%s: stream summary presence %v, query %v",
						q, rows.Summary() != nil, want.Summary != nil)
				}
			}
		}
	}
}

// TestStreamLineage: fusion streams attach per-row lineage unless the
// query opted out.
func TestStreamLineage(t *testing.T) {
	e := testExecutor(t)
	q := `SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name) ORDER BY Name`
	rows, err := e.StreamContext(context.Background(), q, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	sawLineage := false
	for rows.Next() {
		if lin := rows.RowLineage(); lin != nil {
			sawLineage = true
			if len(lin) != len(rows.Row()) {
				t.Fatalf("lineage cells = %d for %d columns", len(lin), len(rows.Row()))
			}
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawLineage {
		t.Error("no row carried lineage")
	}

	rows, err = e.StreamContext(context.Background(), q, ExecOptions{NoLineage: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
		if rows.RowLineage() != nil {
			t.Fatal("NoLineage stream still carries lineage")
		}
	}
}

// TestStreamScan: typed destinations, *any and skipped columns.
func TestStreamScan(t *testing.T) {
	e := testExecutor(t)
	rows, err := e.StreamContext(context.Background(),
		`SELECT Name, Age FROM EE_Student ORDER BY Age LIMIT 1`, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	var name string
	var age int64
	if err := rows.Scan(&name, &age); err != nil {
		t.Fatal(err)
	}
	if name == "" || age != 21 {
		t.Errorf("scanned (%q, %d), want the youngest student at 21", name, age)
	}
	var anyAge any
	if err := rows.Scan(nil, &anyAge); err != nil {
		t.Fatal(err)
	}
	if anyAge != int64(21) {
		t.Errorf("any destination = %v (%T)", anyAge, anyAge)
	}
	if err := rows.Scan(&name); err == nil {
		t.Error("arity mismatch must fail")
	}
	var wrong bool
	if err := rows.Scan(&name, &wrong); err == nil {
		t.Error("kind mismatch must fail")
	}
}

// TestStreamStatementError: a bad statement surfaces through Columns
// (and Err), not as a silent empty stream.
func TestStreamStatementError(t *testing.T) {
	e := testExecutor(t)
	rows, err := e.StreamContext(context.Background(), `SELECT Name FROM ghost`, ExecOptions{})
	if err != nil {
		t.Fatalf("execution errors must arrive via the stream, got sync %v", err)
	}
	defer rows.Close()
	if _, err := rows.Columns(); err == nil {
		t.Fatal("Columns on a failed statement must error")
	}
	if rows.Next() {
		t.Fatal("failed stream yielded a row")
	}
	if rows.Err() == nil {
		t.Fatal("Err is nil after a failed statement")
	}
	// Parse errors ARE synchronous.
	if _, err := e.StreamContext(context.Background(), `SELEKT`, ExecOptions{}); err == nil {
		t.Fatal("parse error must be synchronous")
	}
}

// TestStreamEarlyClose: closing a partially drained stream joins the
// producer, reports no error, and All() auto-closes.
func TestStreamEarlyClose(t *testing.T) {
	e := testExecutor(t)
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		rows, err := e.StreamContext(context.Background(),
			`SELECT Name FROM EE_Student, CS_Students`, ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("no first row: %v", rows.Err())
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		if rows.Err() != nil {
			t.Fatalf("deliberate Close reported %v", rows.Err())
		}
		if rows.Next() {
			t.Fatal("Next after Close")
		}
	}
	// All(): breaking the loop closes the stream.
	rows, err := e.StreamContext(context.Background(), `SELECT Name FROM EE_Student`, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, err := range rows.All() {
		if err != nil {
			t.Fatal(err)
		}
		if n++; n == 2 {
			break
		}
	}
	testutil.WaitForGoroutines(t, before+2)
}

// TestStreamCancelMidFlight: cancelling the stream's context ends it
// with ctx's error and joins the producer. The self-cross-joined
// relation yields far more rows than the producer may buffer ahead
// (one chunk in the channel, one blocked send), so the cancellation
// verifiably lands mid-production.
func TestStreamCancelMidFlight(t *testing.T) {
	big := relation.NewBuilder("big", "N")
	for i := 0; i < 600; i++ {
		big.AddText(string(rune('a' + i%26)))
	}
	e := testExecutor(t)
	if err := e.Repo.RegisterRelation("big", big.Build()); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := e.StreamContext(ctx, `SELECT N FROM big, big`, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	cancel()
	for rows.Next() { //nolint:revive // drain to the cancellation
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", rows.Err())
	}
	rows.Close()
	testutil.WaitForGoroutines(t, before+2)
}

// TestStreamTimeout: ExecOptions.Timeout bounds the stream's whole
// lifetime.
func TestStreamTimeout(t *testing.T) {
	e := testExecutor(t)
	rows, err := e.StreamContext(context.Background(),
		`SELECT Name FROM EE_Student, CS_Students, orders, custs`,
		ExecOptions{Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() { //nolint:revive // drain to the deadline
	}
	if !errors.Is(rows.Err(), context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want context.DeadlineExceeded", rows.Err())
	}
}

// TestSlimFusedCacheEntry is the entry-shape regression test: the
// fused tier must retain only the slim head — final table, lineage,
// summary — never the pipeline intermediates (merged table, detection,
// per-source matches), which dominated entry weight before trace went
// opt-in.
func TestSlimFusedCacheEntry(t *testing.T) {
	e := testExecutor(t)
	e.Cache = qcache.New(8)
	q := `SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)`

	cold, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Pipeline == nil {
		t.Fatal("cold miss must still expose the intermediates (legacy zero-option behaviour)")
	}
	if cold.Summary == nil || cold.Summary.Sources != 2 {
		t.Fatalf("cold summary = %+v", cold.Summary)
	}

	// Inspect the cached entry directly.
	key, _, err := e.fusedKey(q, []string{"EE_Student", "CS_Students"}, &core.Pipeline{Repo: e.Repo})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := e.Cache.Get(key)
	if !ok {
		t.Fatal("no fused entry after a cold miss")
	}
	entry := v.(*QueryResult)
	if entry.Pipeline != nil {
		t.Fatal("fused cache entry retains pipeline intermediates — not slim")
	}
	if entry.Summary == nil || entry.Rel == nil || entry.Lineage == nil {
		t.Fatalf("slim entry incomplete: %+v", entry)
	}

	// Warm hit serves the slim entry...
	warm, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Pipeline != nil {
		t.Fatal("warm hit exposes intermediates without WithTrace")
	}
	if warm.Rel.String() != cold.Rel.String() {
		t.Fatal("warm result differs from cold")
	}
	if warm.Summary == nil || *warm.Summary != *cold.Summary {
		t.Fatalf("warm summary %+v differs from cold %+v", warm.Summary, cold.Summary)
	}

	// ...and a tracing query bypasses the tier entirely: guaranteed
	// intermediates, no fused traffic, no new fused entry.
	fusedBefore := e.Cache.Stats().Kinds[qcache.KindFused]
	entriesBefore := e.Cache.Stats().Entries
	traced, err := e.QueryWith(context.Background(), q, ExecOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if traced.Pipeline == nil {
		t.Fatal("Trace query has no intermediates")
	}
	if traced.Rel.String() != cold.Rel.String() {
		t.Fatal("traced result differs")
	}
	st := e.Cache.Stats()
	if got := st.Kinds[qcache.KindFused]; got != fusedBefore {
		t.Errorf("trace query touched the fused tier: %+v -> %+v", fusedBefore, got)
	}
	if st.Entries != entriesBefore {
		t.Errorf("trace query changed entry count: %d -> %d", entriesBefore, st.Entries)
	}
	// It reused the per-phase artifacts instead.
	if got := st.Kinds[qcache.KindMatch]; got.Hits == 0 {
		t.Errorf("trace recompute did not reuse the match artifact: %+v", got)
	}
}
