// Cross-statement common-subexpression elimination (CSE): the light
// planner tier between plan and engine.
//
// A plain statement's operator tree has two parts: the source subtree
// (scans, crosses, joins and the WHERE filter) and the presentation
// above it (projection, grouping, distinct, order, limit). The source
// subtree is where the row volume and the scan/join/filter work live,
// and it recurs: the statements of a batch — and concurrent in-flight
// queries — routinely share a FROM/JOIN/WHERE prefix while differing
// only above it. This tier fingerprints the subtree bottom-up,
// materializes it once through the artifact cache's cancellation-safe
// singleflight, and lets every statement containing the same subtree
// scan the shared intermediate. It is also what keeps a single
// statement from doing the same work twice: any two identical
// subtrees — across statements or within one — resolve to the same
// materialized relation.

package plan

import (
	"context"
	"errors"
	"fmt"

	"hummer/internal/engine"
	"hummer/internal/obs"
	"hummer/internal/qcache"
	"hummer/internal/relation"
	"hummer/internal/sql"
)

// errCSEStale marks a subtree materialization whose sources were
// replaced mid-run: correct to serve, wrong to cache under the
// pre-run key (mirrors errFusedStale).
var errCSEStale = errors.New("plan: sources replaced during subtree materialization; intermediate not cacheable")

// cseEligible reports whether stmt's source subtree does enough work
// to be worth sharing. A bare single-table scan is excluded: the
// registered relation itself already is the shared intermediate, and
// caching a copy would only duplicate it (and tax the genuinely
// streaming paths).
func cseEligible(stmt *sql.Stmt) bool {
	return len(stmt.Joins) > 0 || len(stmt.Tables) > 1 || stmt.Where != nil
}

// sourceAliases lists the aliases the source subtree reads, in plan
// order: FROM tables first, then join build sides.
func sourceAliases(stmt *sql.Stmt) []string {
	out := make([]string, 0, len(stmt.Tables)+len(stmt.Joins))
	for _, t := range stmt.Tables {
		out = append(out, t.Name)
	}
	for _, j := range stmt.Joins {
		out = append(out, j.Table.Name)
	}
	return out
}

// cseKey fingerprints stmt's source subtree bottom-up: each scan
// contributes its source's content fingerprint, each join its
// build-side fingerprint plus the join column pair (the operator
// shape), and the WHERE filter its predicate rendering. The rendering
// is parser-produced SQL (string literals quoted and escaped), so two
// parseable predicates render identically only when they are the same
// predicate. The SELECT list, grouping, ordering and limits sit above
// the subtree and deliberately do not participate — that is what lets
// statements that differ only in presentation share the subtree.
// Configuration enters the key only where it can change bytes, which
// for this subtree is nowhere: join parallelism is excluded by the
// parshard canonical-order contract (identical output at every worker
// count). Like fusedKey, the sources' generations are captured before
// their fingerprints so a replace racing the fingerprint read is
// always detected by the caller's re-check.
func (e *Executor) cseKey(stmt *sql.Stmt) (qcache.Key, []uint64, error) {
	aliases := sourceAliases(stmt)
	parts := make([]string, 0, len(aliases)+2)
	parts = append(parts, "cse:v1")
	gens := make([]uint64, len(aliases))
	fps := make([]string, len(aliases))
	for i, a := range aliases {
		gens[i] = e.Repo.Generation(a)
		fp, err := e.Repo.Fingerprint(a)
		if err != nil {
			return qcache.Key{}, nil, err
		}
		fps[i] = fp
	}
	for i := range stmt.Tables {
		parts = append(parts, "scan:"+fps[i])
	}
	for i, j := range stmt.Joins {
		parts = append(parts, fmt.Sprintf("join:%s:%s=%s", fps[len(stmt.Tables)+i], j.LeftCol, j.RightCol))
	}
	if stmt.Where != nil {
		parts = append(parts, "where:"+stmt.Where.String())
	}
	return qcache.CSEKey(parts...), gens, nil
}

// buildSource builds the statement's source subtree. With share set
// (the materializing query path), an eligible subtree resolves
// through the CSE cache tier: repeated and concurrent statements
// containing the same subtree share one materialized intermediate —
// one scan/join/filter pass — via the singleflight, and the rest of
// the plan scans the shared relation (callers must treat it as
// read-only, exactly like a fused-tier hit). The streaming path
// passes share=false: it keeps genuine row-at-a-time streaming off
// the operator tree rather than materializing an intermediate.
//
// The plan.cse span covers the tier interaction; its outcome
// attribute is miss (this statement materialized), hit/shared (served
// from another statement's pass) or stale (computed correctly but not
// cached — a source was replaced mid-run).
func (e *Executor) buildSource(ctx context.Context, stmt *sql.Stmt, share bool) (engine.Operator, error) {
	if !share || e.Cache == nil || !cseEligible(stmt) {
		return e.buildSourceTree(ctx, stmt)
	}
	key, gens, err := e.cseKey(stmt)
	if err != nil {
		// Fingerprinting fails on an unknown alias: fall through so
		// the tree build reports the real error.
		return e.buildSourceTree(ctx, stmt)
	}
	cctx, sp := obs.StartSpan(ctx, "plan.cse")
	var computed, stale *relation.Relation
	v, _, err := e.Cache.DoContext(cctx, key, func(ctx context.Context) (any, error) {
		tree, err := e.buildSourceTree(ctx, stmt)
		if err != nil {
			return nil, err
		}
		rel, err := engine.MaterializeContext(ctx, "cse", tree)
		if err != nil {
			return nil, err
		}
		computed = rel
		// The key was fingerprinted before the subtree read its
		// sources: if a concurrent Replace landed in between, the
		// intermediate holds newer data than the key names. Serve it
		// (it is correct for the data the scan saw) but return the
		// sentinel so it never enters the cache — errors are never
		// cached and waiters re-elect.
		aliases := sourceAliases(stmt)
		for i, a := range aliases {
			if e.Repo.Generation(a) != gens[i] {
				stale = rel
				return rel, errCSEStale
			}
		}
		return rel, nil
	})
	switch {
	case stale != nil:
		sp.SetStr("outcome", "stale")
	case computed != nil:
		sp.SetStr("outcome", "miss")
	case err == nil:
		sp.SetStr("outcome", "hit")
	}
	sp.End()
	if err != nil && !errors.Is(err, errCSEStale) {
		return nil, err
	}
	if rel, ok := v.(*relation.Relation); ok && rel != nil {
		return engine.NewScan(rel), nil
	}
	if stale != nil {
		return engine.NewScan(stale), nil
	}
	// Defensive: a stale sentinel without a value (not produced
	// today) falls back to an unshared build.
	return e.buildSourceTree(ctx, stmt)
}

// buildSourceTree builds the raw (unshared) source subtree: scans and
// crosses over the FROM tables, hash joins, then the WHERE filter.
// Hash joins take the executor's unified parallelism and the query
// context for their build/probe spans.
func (e *Executor) buildSourceTree(ctx context.Context, stmt *sql.Stmt) (engine.Operator, error) {
	var op engine.Operator
	for i, t := range stmt.Tables {
		rel, err := e.Repo.Get(t.Name)
		if err != nil {
			return nil, err
		}
		scan := engine.Operator(engine.NewScan(rel))
		if i == 0 {
			op = scan
			continue
		}
		cross, err := engine.NewCross(op, scan)
		if err != nil {
			return nil, err
		}
		op = cross
	}
	if op == nil {
		return nil, fmt.Errorf("plan: no tables")
	}
	for _, j := range stmt.Joins {
		rel, err := e.Repo.Get(j.Table.Name)
		if err != nil {
			return nil, err
		}
		join, err := engine.NewHashJoin(op, engine.NewScan(rel), j.LeftCol, j.RightCol)
		if err != nil {
			return nil, err
		}
		join.SetParallelism(e.Parallel)
		join.SetSpanContext(ctx)
		op = join
	}
	if stmt.Where != nil {
		op = engine.NewFilter(op, stmt.Where)
	}
	return op, nil
}
