// Package plan turns parsed statements into executions. Fuse By
// statements run through the core pipeline (schema matching →
// duplicate detection → conflict resolution); plain SELECT statements
// run directly on the relational engine.
//
// With a Cache installed the executor maintains two tiers: parsed
// plans keyed by statement text, and — the warmest tier — complete
// fused query results keyed by (plan fingerprint, source fingerprints,
// configuration fingerprint). A fused-tier hit skips schema matching,
// duplicate detection, merging and fusion entirely; only the parse
// (itself cached) runs. QueryContext/ExecuteContext propagate a
// context through every phase so a hung client or an elapsed timeout
// cancels the pipeline mid-flight.
package plan

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"hummer/internal/core"
	"hummer/internal/dumas"
	"hummer/internal/dupdetect"
	"hummer/internal/engine"
	"hummer/internal/expr"
	"hummer/internal/faultinject"
	"hummer/internal/fusion"
	"hummer/internal/lineage"
	"hummer/internal/metadata"
	"hummer/internal/obs"
	"hummer/internal/qcache"
	"hummer/internal/relation"
	"hummer/internal/sql"
)

// QueryResult is the outcome of executing one statement.
type QueryResult struct {
	// Rel is the result table.
	Rel *relation.Relation
	// Lineage carries per-cell provenance for fusion queries (aligned
	// with Rel before post-processing may reorder rows); nil for
	// plain SQL. Lineage follows Rel's row order. Omitted when the
	// query opted out (ExecOptions.NoLineage).
	Lineage [][]lineage.Set
	// Pipeline exposes the intermediate phases for fusion queries.
	// Guaranteed non-nil (for fusion statements) only when the query
	// opted in with ExecOptions.Trace: results served from the fused
	// cache tier are slim — they carry no intermediates — and NoTrace
	// drops the intermediates even from a computed run. A zero-option
	// cold run still populates it, as it always has.
	Pipeline *core.Result
	// Summary condenses what the pipeline did for fusion queries —
	// always present for them, even on slim cache hits; nil for plain
	// SQL. It is the cheap substitute for Pipeline when only the
	// numbers are needed.
	Summary *core.Summary
}

// ExecOptions are the per-query execution options — the plan-layer
// form of the public API's QueryOption list. The zero value preserves
// the historical behaviour exactly.
type ExecOptions struct {
	// Trace requests the pipeline intermediates: the result's Pipeline
	// is guaranteed for fusion statements. A tracing query bypasses
	// the fused cache tier (slim entries cannot satisfy it) — it
	// neither reads nor writes that tier, though the per-phase
	// match/detect tiers still apply.
	Trace bool
	// NoTrace drops the pipeline intermediates from the result even
	// when a cache-missing run computed them, so large intermediates
	// are never retained for callers that only need the table.
	// Ignored when Trace is set.
	NoTrace bool
	// NoLineage drops the per-cell lineage from the result.
	NoLineage bool
	// Timeout, when positive, bounds the query's execution with its
	// own deadline layered over the caller's context — the per-
	// statement deadline of batch execution.
	Timeout time.Duration
	// OnFinish, when set on a streaming execution (StreamContext), is
	// invoked exactly once from the producer goroutine when the
	// stream's outcome is final: the fusion summary (nil for plain
	// SQL or failed pipelines) and the terminal error (nil for a
	// complete drain and for a deliberate early Close). The DB layer
	// hooks its query/error counters here, since a stream's errors
	// surface long after the QueryRows call returned. Ignored by the
	// materialized paths.
	OnFinish func(summary *core.Summary, err error)
}

// Executor runs statements against a metadata repository.
type Executor struct {
	// Repo resolves table aliases. Required.
	Repo *metadata.Repository
	// Registry resolves conflict-resolution functions; nil means
	// built-ins.
	Registry *fusion.Registry
	// Pipeline, when set, is used for fusion queries (lets callers
	// install wizard hooks); nil builds a fresh pipeline from Repo
	// and Registry.
	Pipeline *core.Pipeline
	// Detect is the default duplicate-detection configuration applied
	// to fusion queries (threshold, candidate strategy, parallelism).
	// The zero value means paper-faithful defaults.
	Detect dupdetect.Config
	// Match is the default DUMAS schema-matching configuration applied
	// to fusion queries (duplicates used, candidate strategy,
	// parallelism). The zero value means paper-faithful defaults.
	Match dumas.Config
	// Cache, when set, caches parsed statements by query text and is
	// handed to pipelines built here so the match/detect phases reuse
	// artifacts across queries.
	Cache *qcache.Cache
	// Parallel is the unified parallelism knob (the public API's
	// Config.Parallelism): the hash-join probe worker count and the
	// default for the match/detect phases when their configs leave
	// Parallelism unset. 0 means GOMAXPROCS; 1 forces sequential.
	// Results are byte-identical at every setting — parallelism is a
	// wall-clock knob only.
	Parallel int
}

// maxCachedPlanBytes bounds the statement text retained as a plan
// cache key: parsing is linear and cheap, so giant statements gain
// nothing from caching, and caching them would let clients pin
// megabytes of query text per cache slot.
const maxCachedPlanBytes = 8 << 10

// Query parses and executes one statement. It is QueryContext with a
// background context: it cannot be cancelled.
func (e *Executor) Query(q string) (*QueryResult, error) {
	return e.QueryContext(context.Background(), q)
}

// QueryContext parses and executes one statement, honoring ctx through
// every pipeline phase. With a Cache installed the parse result is
// cached by query text (statements small enough to be worth
// retaining); each execution receives its own clone, since binding
// mutates the expression trees. It is QueryWith with zero options.
func (e *Executor) QueryContext(ctx context.Context, q string) (*QueryResult, error) {
	return e.QueryWith(ctx, q, ExecOptions{})
}

// QueryWith is QueryContext with per-query execution options: trace
// and lineage projection, and an optional per-statement deadline.
func (e *Executor) QueryWith(ctx context.Context, q string, opt ExecOptions) (*QueryResult, error) {
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	pctx, psp := obs.StartSpan(ctx, "plan")
	stmt, err := e.parse(pctx, q)
	psp.End()
	if err != nil {
		return nil, err
	}
	return e.executeStmt(ctx, stmt, q, opt)
}

// parse returns the parsed statement, consulting the plan cache when
// one is installed (statements small enough to be worth retaining);
// each execution receives its own clone, since binding mutates the
// expression trees.
func (e *Executor) parse(ctx context.Context, q string) (*sql.Stmt, error) {
	if e.Cache != nil && len(q) <= maxCachedPlanBytes {
		// Parsing is fast and never blocks, so the compute ignores ctx;
		// DoContext still lets a cancelled caller stop waiting on a
		// contended key.
		v, _, err := e.Cache.DoContext(ctx, qcache.PlanKey(q), func(context.Context) (any, error) { return sql.Parse(q) })
		if err != nil {
			return nil, err
		}
		return v.(*sql.Stmt).Clone(), nil
	}
	return sql.Parse(q)
}

// Execute runs a parsed statement. It is ExecuteContext with a
// background context: it cannot be cancelled.
func (e *Executor) Execute(stmt *sql.Stmt) (*QueryResult, error) {
	return e.ExecuteContext(context.Background(), stmt)
}

// ExecuteContext runs a parsed statement, honoring ctx: fusion
// statements propagate it through matching, detection and the cache
// singleflight; plain statements check it before the (fast,
// in-memory) engine run. Statements executed directly (without their
// source text) bypass the fused-result cache tier, whose keys are
// raw statement text.
func (e *Executor) ExecuteContext(ctx context.Context, stmt *sql.Stmt) (*QueryResult, error) {
	return e.executeStmt(ctx, stmt, "", ExecOptions{})
}

// executeStmt dispatches a parsed statement; raw is the statement's
// source text when known ("" otherwise), the fused tier's key
// component.
func (e *Executor) executeStmt(ctx context.Context, stmt *sql.Stmt, raw string, opt ExecOptions) (*QueryResult, error) {
	if e.Repo == nil {
		return nil, fmt.Errorf("plan: executor has no repository")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := faultinject.Hit(faultinject.SitePlanQuery); err != nil {
		return nil, err
	}
	if stmt.IsFusion() {
		return e.executeFusion(ctx, stmt, raw, opt)
	}
	return e.executePlain(ctx, stmt)
}

// --- Fusion statements ------------------------------------------------------

func (e *Executor) executeFusion(ctx context.Context, stmt *sql.Stmt, raw string, opt ExecOptions) (*QueryResult, error) {
	if len(stmt.Joins) > 0 {
		return nil, fmt.Errorf("plan: JOIN is not supported in FUSE statements; use FUSE FROM")
	}
	p := e.Pipeline
	if p == nil {
		p = &core.Pipeline{Repo: e.Repo, Registry: e.Registry, Cache: e.Cache}
	}
	aliases := make([]string, len(stmt.Tables))
	for i, t := range stmt.Tables {
		aliases[i] = t.Name
	}

	opts := core.Options{
		FuseBy:      stmt.FuseBy,
		Where:       stmt.Where,
		Detect:      e.Detect,
		Match:       e.Match,
		Parallelism: e.Parallel,
	}
	// SELECT list → fusion output items. The * wildcard appends "all
	// attributes present in the sources" (§2.1) not already selected.
	star := false
	var items []fusion.OutputItem
	for _, it := range stmt.Items {
		if it.Star {
			star = true
			continue
		}
		if it.Agg != "" {
			return nil, fmt.Errorf("plan: aggregate %s(%s) in a FUSE statement; use RESOLVE(%s, %s)",
				it.Agg, it.Col, it.Col, it.Agg)
		}
		if it.Expr != nil {
			return nil, fmt.Errorf("plan: computed expression %s is not supported in a FUSE statement", it.Expr)
		}
		item := fusion.OutputItem{Column: it.Col, As: it.Alias}
		if it.Resolve != nil && it.Resolve.Func != "" {
			item.Spec = fusion.Spec{Name: it.Resolve.Func, Arg: it.Resolve.Arg}
		}
		items = append(items, item)
	}
	if len(items) > 0 {
		opts.Items = items
		opts.IncludeRest = star
	}
	// With only the * wildcard, Items stays empty: all data columns
	// with the default resolution.

	// The fused-result cache tier: the post-processed result, keyed by
	// the raw statement text, the source fingerprints in query order
	// and the configuration fingerprint. A warm query skips matching,
	// detection, merging and fusion entirely. The raw text is the key
	// — not Stmt.String(), whose rendering is not injective (a quoted
	// alias containing ", " renders exactly like two bare items), and
	// two different statements must never share a fused entry. Entries
	// are SLIM: final table, lineage and the precomputed summary, no
	// pipeline intermediates — trace is opt-in per query, and a
	// tracing query (ExecOptions.Trace) bypasses the tier entirely so
	// a slim entry is never asked to satisfy it. Statements without
	// source text (direct Execute) and oversized texts also bypass the
	// tier, as do wizard hooks, which can rewrite any intermediate
	// non-deterministically (the per-artifact tiers below still
	// apply). Fingerprinting can fail on an unknown alias — fall
	// through then, so the pipeline reports the real error.
	if e.Cache != nil && raw != "" && len(raw) <= maxCachedPlanBytes && !opt.Trace && !pipelineHooked(p) {
		if key, gens, err := e.fusedKey(raw, aliases, p); err == nil {
			// full is set only when this caller led the computation: the
			// compute closure runs in the leader's own goroutine, so the
			// capture is race-free. The leader keeps the intermediates —
			// a zero-option cold run exposes Pipeline as it always has —
			// while only the slim entry is published to the cache and to
			// piggybacking waiters.
			//
			// The cache.fused span covers the whole tier interaction:
			// on a miss the pipeline spans nest under it (the compute
			// runs in this goroutine); on a hit or shared wait only the
			// lookup/wait time shows, with the outcome attribute naming
			// which it was.
			cctx, csp := obs.StartSpan(ctx, "cache.fused")
			var full *QueryResult
			v, _, err := e.Cache.DoContext(cctx, key, func(ctx context.Context) (any, error) {
				res, err := e.runFusion(ctx, p, stmt, aliases, opts)
				if err != nil {
					return nil, err
				}
				full = res
				slim := &QueryResult{Rel: res.Rel, Lineage: res.Lineage, Summary: res.Summary}
				// The key was fingerprinted before the pipeline loaded
				// the sources. If a concurrent Replace landed in
				// between, the pipeline computed over newer data than
				// the key names — caching that would serve new-data
				// rows under old fingerprints after a rollback. Return
				// the result *with* the sentinel: the entry is dropped
				// (errors are never cached) while the computation
				// still reaches the leader and every waiter.
				for i, a := range aliases {
					if e.Repo.Generation(a) != gens[i] {
						return slim, errFusedStale
					}
				}
				return slim, nil
			})
			switch {
			case full != nil && errors.Is(err, errFusedStale):
				csp.SetStr("outcome", "stale")
			case full != nil:
				csp.SetStr("outcome", "miss")
			case err == nil:
				csp.SetStr("outcome", "hit")
			}
			csp.End()
			if err == nil || errors.Is(err, errFusedStale) {
				// Cached results are shared across queries: callers
				// must treat Rel and Lineage as read-only. On the
				// stale-race sentinel the result is correct for the
				// data the pipeline saw — serve it; it just never
				// entered the cache.
				if full != nil {
					return trimResult(full, opt), nil
				}
				if qr, ok := v.(*QueryResult); ok && qr != nil {
					return trimResult(qr, opt), nil
				}
			}
			if err != nil && !errors.Is(err, errFusedStale) {
				return nil, err
			}
			// Defensive: a stale sentinel without a result (not
			// produced today) falls through to an uncached run.
		}
	}
	res, err := e.runFusion(ctx, p, stmt, aliases, opts)
	if err != nil {
		return nil, err
	}
	return trimResult(res, opt), nil
}

// trimResult applies the per-query projection options to a computed or
// cached result. Shared cache entries are never mutated: trimming
// copies the head.
func trimResult(res *QueryResult, opt ExecOptions) *QueryResult {
	dropTrace := opt.NoTrace && !opt.Trace && res.Pipeline != nil
	dropLin := opt.NoLineage && res.Lineage != nil
	if !dropTrace && !dropLin {
		return res
	}
	out := *res
	if dropTrace {
		out.Pipeline = nil
	}
	if dropLin {
		out.Lineage = nil
	}
	return &out
}

// errFusedStale marks a fused computation whose sources were replaced
// mid-run: correct to serve, wrong to cache under the pre-run key.
var errFusedStale = errors.New("plan: sources replaced during fusion; result not cacheable")

// runFusion executes the pipeline and post-processing for one fusion
// statement — the compute function of the fused cache tier.
func (e *Executor) runFusion(ctx context.Context, p *core.Pipeline, stmt *sql.Stmt, aliases []string, opts core.Options) (*QueryResult, error) {
	res, err := p.RunContext(ctx, aliases, opts)
	if err != nil {
		return nil, err
	}
	out := res.Fused.Rel
	lin := res.Fused.Lineage

	_, psp := obs.StartSpan(ctx, "post")
	out, lin, err = postProcess(out, lin, stmt)
	psp.End()
	if err != nil {
		return nil, err
	}
	return &QueryResult{Rel: out, Lineage: lin, Pipeline: res, Summary: res.Summary()}, nil
}

// fusedKey builds the fused-tier cache key for one fusion statement:
// the raw statement text (collision-free, like the plan tier), the
// content fingerprints of the participating sources in query order,
// and the configuration fingerprint — every match/detect knob plus
// the resolution-registry version, so re-registering a function stops
// addressing stale results just like replacing a source does. It also
// returns each source's generation, captured *before* its
// fingerprint: the caller re-checks generations after the pipeline
// ran, and capturing first makes the check conservative (a replace
// racing the fingerprint read is always detected).
func (e *Executor) fusedKey(raw string, aliases []string, p *core.Pipeline) (qcache.Key, []uint64, error) {
	srcFPs := make([]string, len(aliases))
	gens := make([]uint64, len(aliases))
	for i, a := range aliases {
		gens[i] = e.Repo.Generation(a)
		fp, err := e.Repo.Fingerprint(a)
		if err != nil {
			return qcache.Key{}, nil, err
		}
		srcFPs[i] = fp
	}
	var regVersion uint64
	if p.Registry != nil {
		regVersion = p.Registry.Version()
	}
	cfgFP := fmt.Sprintf("%s|%s|reg:%d",
		qcache.FingerprintConfig(e.Match), qcache.FingerprintConfig(e.Detect), regVersion)
	return qcache.FusedKey(raw, srcFPs, cfgFP), gens, nil
}

// pipelineHooked reports whether any wizard hook is installed — hooks
// may adjust intermediates per call, so their results must not be
// shared through the fused cache tier.
func pipelineHooked(p *core.Pipeline) bool {
	return p.OnCorrespondences != nil || p.OnAttributes != nil || p.OnDuplicates != nil
}

// postProcess applies HAVING, ORDER BY and LIMIT to a fused result,
// keeping the lineage aligned with the surviving rows.
func postProcess(rel *relation.Relation, lin [][]lineage.Set, stmt *sql.Stmt) (*relation.Relation, [][]lineage.Set, error) {
	type taggedRow struct {
		row relation.Row
		lin []lineage.Set
	}
	rows := make([]taggedRow, rel.Len())
	for i := 0; i < rel.Len(); i++ {
		rows[i] = taggedRow{row: rel.Row(i)}
		if lin != nil {
			rows[i].lin = lin[i]
		}
	}
	if stmt.Having != nil {
		if err := stmt.Having.Bind(rel.Schema()); err != nil {
			return nil, nil, fmt.Errorf("plan: HAVING: %w", err)
		}
		var kept []taggedRow
		for _, tr := range rows {
			if expr.Truthy(stmt.Having.Eval(tr.row)) {
				kept = append(kept, tr)
			}
		}
		rows = kept
	}
	if len(stmt.OrderBy) > 0 {
		idx := make([]int, len(stmt.OrderBy))
		for i, k := range stmt.OrderBy {
			j, ok := rel.Schema().Lookup(k.Col)
			if !ok {
				return nil, nil, fmt.Errorf("plan: ORDER BY: no column %q", k.Col)
			}
			idx[i] = j
		}
		stableSortTagged(rows, func(a, b taggedRow) int {
			for i, j := range idx {
				c := a.row[j].Compare(b.row[j])
				if stmt.OrderBy[i].Desc {
					c = -c
				}
				if c != 0 {
					return c
				}
			}
			return 0
		})
	}
	if stmt.Limit >= 0 && len(rows) > stmt.Limit {
		rows = rows[:stmt.Limit]
	}
	out := relation.New(rel.Name(), rel.Schema())
	var outLin [][]lineage.Set
	for _, tr := range rows {
		if err := out.Append(tr.row); err != nil {
			return nil, nil, err
		}
		if lin != nil {
			outLin = append(outLin, tr.lin)
		}
	}
	return out, outLin, nil
}

func stableSortTagged[T any](rows []T, cmp func(a, b T) int) {
	// Insertion sort: result sets after fusion are small, and
	// stability matters for deterministic output.
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && cmp(rows[j-1], rows[j]) > 0; j-- {
			rows[j-1], rows[j] = rows[j], rows[j-1]
		}
	}
}

// --- Plain SQL ---------------------------------------------------------------

// executePlain materializes a plain statement's operator tree,
// checking ctx at row strides so a cancelled statement stops
// mid-scan, not only at entry. The materializing path shares eligible
// source subtrees through the CSE tier (share=true): the result was
// going to be materialized anyway, so sharing the subtree is free.
func (e *Executor) executePlain(ctx context.Context, stmt *sql.Stmt) (*QueryResult, error) {
	op, err := e.buildPlain(ctx, stmt, true)
	if err != nil {
		return nil, err
	}
	rel, err := engine.MaterializeContext(ctx, "result", op)
	if err != nil {
		return nil, err
	}
	return &QueryResult{Rel: rel}, nil
}

// buildPlain turns a plain SELECT statement into its (unopened)
// operator tree — shared by the materializing and streaming paths.
// share enables the cross-statement CSE tier for the source subtree
// (see buildSource); the streaming path keeps it off to preserve
// genuine row-at-a-time streaming.
func (e *Executor) buildPlain(ctx context.Context, stmt *sql.Stmt, share bool) (engine.Operator, error) {
	op, err := e.buildSource(ctx, stmt, share)
	if err != nil {
		return nil, err
	}

	hasAgg := false
	for _, it := range stmt.Items {
		if it.Agg != "" {
			hasAgg = true
		}
	}
	switch {
	case hasAgg || len(stmt.GroupBy) > 0:
		var err error
		op, err = buildGroup(op, stmt)
		if err != nil {
			return nil, err
		}
	default:
		var err error
		op, err = buildProject(op, stmt)
		if err != nil {
			return nil, err
		}
	}

	if stmt.Having != nil {
		op = engine.NewFilter(op, stmt.Having)
	}
	if stmt.Distinct {
		op = engine.NewDistinct(op)
	}
	if len(stmt.OrderBy) > 0 {
		keys := make([]engine.SortKey, len(stmt.OrderBy))
		for i, k := range stmt.OrderBy {
			keys[i] = engine.SortKey{Col: k.Col, Desc: k.Desc}
		}
		op = engine.NewSort(op, keys)
	}
	if stmt.Limit >= 0 {
		op = engine.NewLimit(op, stmt.Limit)
	}
	return op, nil
}

func buildProject(op engine.Operator, stmt *sql.Stmt) (engine.Operator, error) {
	var items []engine.ProjectItem
	for _, it := range stmt.Items {
		switch {
		case it.Star:
			for _, n := range op.Schema().Names() {
				items = append(items, engine.ProjectItem{Expr: expr.NewCol(n), As: n})
			}
		case it.Resolve != nil:
			return nil, fmt.Errorf("plan: RESOLVE(%s) requires FUSE BY", it.Col)
		case it.Expr != nil:
			items = append(items, engine.ProjectItem{Expr: it.Expr, As: it.OutName()})
		default:
			items = append(items, engine.ProjectItem{Expr: expr.NewCol(it.Col), As: it.OutName()})
		}
	}
	return engine.NewProject(op, items), nil
}

func buildGroup(op engine.Operator, stmt *sql.Stmt) (engine.Operator, error) {
	var specs []engine.AggSpec
	var outCols []string // post-group projection order
	for _, it := range stmt.Items {
		switch {
		case it.Star:
			return nil, fmt.Errorf("plan: * cannot be combined with GROUP BY")
		case it.Resolve != nil:
			return nil, fmt.Errorf("plan: RESOLVE(%s) requires FUSE BY", it.Col)
		case it.Expr != nil:
			return nil, fmt.Errorf("plan: computed expression %s cannot be combined with GROUP BY", it.Expr)
		case it.Agg != "":
			f, ok := engine.LookupAgg(it.Agg)
			if !ok {
				return nil, fmt.Errorf("plan: unknown aggregate %q", it.Agg)
			}
			specs = append(specs, engine.AggSpec{Factory: f, Col: it.Col, As: it.OutName()})
			outCols = append(outCols, it.OutName())
		default:
			if !contains(stmt.GroupBy, it.Col) {
				return nil, fmt.Errorf("plan: column %q must appear in GROUP BY or an aggregate", it.Col)
			}
			outCols = append(outCols, it.Col)
		}
	}
	g, err := engine.NewGroup(op, stmt.GroupBy, specs)
	if err != nil {
		return nil, err
	}
	// Reorder to the select-list order.
	return engine.NewProjectCols(g, outCols...), nil
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}

// ObjectIDColumn re-exports the detector's column name for callers
// composing custom plans.
const ObjectIDColumn = dupdetect.ObjectIDColumn
