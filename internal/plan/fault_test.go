package plan

import (
	"context"
	"errors"
	"testing"

	"hummer/internal/fault"
	"hummer/internal/faultinject"
)

const faultFuseQuery = `SELECT Name FUSE FROM EE_Student, CS_Students FUSE BY (Name)`

// TestStreamProducerPanicContained: an injected panic in the producer
// goroutine becomes the stream's terminal *InternalError — the
// consumer's Next/Err see it, nothing crashes, and the executor keeps
// serving afterwards.
func TestStreamProducerPanicContained(t *testing.T) {
	e := testExecutor(t)
	faultinject.Arm(&faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SitePlanStream, Kind: faultinject.Panic},
	}})
	rows, err := e.StreamContext(context.Background(), faultFuseQuery, ExecOptions{})
	if err != nil {
		faultinject.Disarm()
		t.Fatal(err)
	}
	for rows.Next() {
	}
	streamErr := rows.Err()
	rows.Close()
	faultinject.Disarm()

	var ie *fault.InternalError
	if !errors.As(streamErr, &ie) {
		t.Fatalf("stream err = %v (%T), want *InternalError", streamErr, streamErr)
	}
	if ie.Site != faultinject.SitePlanStream {
		t.Errorf("Site = %q, want %q", ie.Site, faultinject.SitePlanStream)
	}

	// The executor still streams the canonical result.
	rows, err = e.StreamContext(context.Background(), faultFuseQuery, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("post-fault stream: %v", err)
	}
	rows.Close()
	if n == 0 {
		t.Fatal("post-fault stream yielded no rows")
	}
	if d := StreamQueueDepth(); d != 0 {
		t.Errorf("StreamQueueDepth = %d at rest, want 0", d)
	}
}

// TestStreamProducerContainsDeepPanic: a panic fired deep inside the
// pipeline (the detection phase) surfaces as the stream's terminal
// error, contained at the producer boundary, and the queue gauge
// drains to zero.
func TestStreamProducerContainsDeepPanic(t *testing.T) {
	e := testExecutor(t)
	faultinject.Arm(&faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteCoreDetect, Kind: faultinject.Panic},
	}})
	defer faultinject.Disarm()
	rows, err := e.StreamContext(context.Background(), faultFuseQuery, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	streamErr := rows.Err()
	rows.Close()
	var ie *fault.InternalError
	if !errors.As(streamErr, &ie) {
		t.Fatalf("stream err = %v (%T), want *InternalError", streamErr, streamErr)
	}
	// The panic fired below the producer (inside the pipeline) and was
	// contained at the producer boundary.
	if ie.Site != faultinject.SitePlanStream {
		t.Errorf("Site = %q, want the producer boundary %q", ie.Site, faultinject.SitePlanStream)
	}
	if d := StreamQueueDepth(); d != 0 {
		t.Errorf("StreamQueueDepth = %d at rest, want 0", d)
	}
}

// TestInjectedQueryErrors: error-kind injections at the plan.query,
// core.match and core.detect sites fail one query with the injected
// error; the next run is clean and byte-identical to baseline.
func TestInjectedQueryErrors(t *testing.T) {
	for _, site := range []string{
		faultinject.SitePlanQuery,
		faultinject.SiteCoreMatch,
		faultinject.SiteCoreDetect,
		faultinject.SiteEngineMaterialize,
	} {
		e := testExecutor(t)
		baseline, err := e.QueryContext(context.Background(), faultFuseQuery)
		if err != nil {
			t.Fatal(err)
		}
		faultinject.Arm(&faultinject.Plan{Rules: []faultinject.Rule{
			{Site: site, Kind: faultinject.Error},
		}})
		_, err = e.QueryContext(context.Background(), faultFuseQuery)
		faultinject.Disarm()
		var inj *faultinject.InjectedError
		if !errors.As(err, &inj) {
			t.Fatalf("site %s: err = %v (%T), want *InjectedError", site, err, err)
		}
		res, err := e.QueryContext(context.Background(), faultFuseQuery)
		if err != nil {
			t.Fatalf("site %s rerun: %v", site, err)
		}
		if res.Rel.Len() != baseline.Rel.Len() {
			t.Errorf("site %s rerun: %d rows, want %d", site, res.Rel.Len(), baseline.Rel.Len())
		}
	}
}
