package plan

import (
	"strings"
	"testing"

	"hummer/internal/metadata"
	"hummer/internal/relation"
	"hummer/internal/value"
)

func testExecutor(t *testing.T) *Executor {
	t.Helper()
	repo := metadata.NewRepository()
	ee := relation.NewBuilder("EE_Student", "Name", "Age", "City").
		AddText("Jonathan Smith", "21", "Berlin").
		AddText("Maria Garcia", "24", "Hamburg").
		AddText("Wei Chen", "21", "Munich").
		AddText("Aisha Khan", "23", "Cologne").
		Build()
	cs := relation.NewBuilder("CS_Students", "FullName", "Semester", "Years", "Town").
		AddText("Jonathan Smith", "4", "22", "Berlin").
		AddText("Wei Chen", "2", "21", "Munich").
		AddText("Lena Fischer", "1", "20", "Stuttgart").
		Build()
	orders := relation.NewBuilder("orders", "oid", "cust", "qty").
		AddText("1", "alice", "2").
		AddText("2", "bob", "1").
		AddText("3", "alice", "5").
		Build()
	custs := relation.NewBuilder("custs", "cname", "city").
		AddText("alice", "Berlin").
		AddText("bob", "Tokyo").
		Build()
	for alias, rel := range map[string]*relation.Relation{
		"EE_Student": ee, "CS_Students": cs, "orders": orders, "custs": custs,
	} {
		if err := repo.RegisterRelation(alias, rel); err != nil {
			t.Fatal(err)
		}
	}
	return &Executor{Repo: repo}
}

func TestPaperQueryEndToEnd(t *testing.T) {
	e := testExecutor(t)
	res, err := e.Query(`
		SELECT Name, RESOLVE(Age, max)
		FUSE FROM EE_Student, CS_Students
		FUSE BY (Name)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 5 {
		t.Fatalf("rows = %d, want 5 students:\n%s", res.Rel.Len(), res.Rel)
	}
	if got := res.Rel.Schema().Names(); len(got) != 2 || got[0] != "Name" || got[1] != "Age" {
		t.Fatalf("schema = %v", got)
	}
	for i := 0; i < res.Rel.Len(); i++ {
		if res.Rel.Value(i, "Name").Text() == "Jonathan Smith" {
			if got := res.Rel.Value(i, "Age"); !got.Equal(value.NewInt(22)) {
				t.Errorf("Jonathan's age = %v, want max(21,22)=22", got)
			}
		}
	}
	if res.Pipeline == nil || res.Lineage == nil {
		t.Error("fusion query must expose pipeline and lineage")
	}
}

func TestFuseStarSelectsAllSourceAttributes(t *testing.T) {
	e := testExecutor(t)
	res, err := e.Query("SELECT * FUSE FROM EE_Student, CS_Students FUSE BY (Name)")
	if err != nil {
		t.Fatal(err)
	}
	s := res.Rel.Schema()
	for _, col := range []string{"Name", "Age", "City", "Semester"} {
		if !s.Has(col) {
			t.Errorf("star output lacks %q: %v", col, s.Names())
		}
	}
	if s.Has("sourceID") || s.Has("objectID") {
		t.Errorf("bookkeeping columns leaked into star output: %v", s.Names())
	}
}

func TestFuseWhereFiltersBeforeGrouping(t *testing.T) {
	e := testExecutor(t)
	res, err := e.Query(`
		SELECT Name, RESOLVE(Age, max)
		FUSE FROM EE_Student, CS_Students
		WHERE Age >= 22
		FUSE BY (Name)`)
	if err != nil {
		t.Fatal(err)
	}
	// Age>=22 drops Wei Chen (21/21) and Lena (20); Jonathan keeps only
	// his CS row (22), Maria (24) and Aisha (23) stay.
	if res.Rel.Len() != 3 {
		t.Fatalf("rows = %d, want 3:\n%s", res.Rel.Len(), res.Rel)
	}
}

func TestFuseHavingOrderLimit(t *testing.T) {
	e := testExecutor(t)
	res, err := e.Query(`
		SELECT Name, RESOLVE(Age, max)
		FUSE FROM EE_Student, CS_Students
		FUSE BY (Name)
		HAVING Age > 20
		ORDER BY Age DESC, Name
		LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 2 {
		t.Fatalf("rows = %d, want 2", res.Rel.Len())
	}
	if got := res.Rel.Value(0, "Name").Text(); got != "Maria Garcia" {
		t.Errorf("first row = %q, want Maria Garcia (24)", got)
	}
	if len(res.Lineage) != res.Rel.Len() {
		t.Errorf("lineage rows = %d, want %d", len(res.Lineage), res.Rel.Len())
	}
}

func TestFuseAliasRenamesOutput(t *testing.T) {
	e := testExecutor(t)
	res, err := e.Query(`SELECT Name AS Student, RESOLVE(Age, max) AS MaxAge
		FUSE FROM EE_Student, CS_Students FUSE BY (Name)`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rel.Schema().Has("Student") || !res.Rel.Schema().Has("MaxAge") {
		t.Errorf("schema = %v", res.Rel.Schema().Names())
	}
}

func TestResolveChooseSource(t *testing.T) {
	e := testExecutor(t)
	res, err := e.Query(`SELECT Name, RESOLVE(Age, choose('CS_Students'))
		FUSE FROM EE_Student, CS_Students FUSE BY (Name)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.Rel.Len(); i++ {
		switch res.Rel.Value(i, "Name").Text() {
		case "Jonathan Smith":
			if got := res.Rel.Value(i, "Age"); !got.Equal(value.NewInt(22)) {
				t.Errorf("choose(CS) Jonathan = %v, want 22", got)
			}
		case "Maria Garcia":
			// Only EE has Maria → choose(CS) yields NULL.
			if got := res.Rel.Value(i, "Age"); !got.IsNull() {
				t.Errorf("choose(CS) Maria = %v, want NULL", got)
			}
		}
	}
}

func TestPlainSelectWhereOrder(t *testing.T) {
	e := testExecutor(t)
	res, err := e.Query("SELECT Name, Age FROM EE_Student WHERE Age > 21 ORDER BY Age DESC")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 2 {
		t.Fatalf("rows = %d, want 2", res.Rel.Len())
	}
	if got := res.Rel.Value(0, "Name").Text(); got != "Maria Garcia" {
		t.Errorf("first = %q", got)
	}
	if res.Lineage != nil || res.Pipeline != nil {
		t.Error("plain SQL must not produce lineage/pipeline")
	}
}

func TestPlainGroupBy(t *testing.T) {
	e := testExecutor(t)
	res, err := e.Query("SELECT cust, count(*) AS n, sum(qty) AS total FROM orders GROUP BY cust ORDER BY cust")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 2 {
		t.Fatalf("groups = %d", res.Rel.Len())
	}
	if got := res.Rel.Value(0, "total"); !got.Equal(value.NewInt(7)) {
		t.Errorf("alice total = %v, want 7", got)
	}
}

func TestPlainJoin(t *testing.T) {
	e := testExecutor(t)
	res, err := e.Query("SELECT oid, city FROM orders JOIN custs ON cust = cname ORDER BY oid")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 3 {
		t.Fatalf("rows = %d, want 3", res.Rel.Len())
	}
	if got := res.Rel.Value(0, "city").Text(); got != "Berlin" {
		t.Errorf("city = %q", got)
	}
}

func TestPlainDistinctAndLimit(t *testing.T) {
	e := testExecutor(t)
	res, err := e.Query("SELECT DISTINCT cust FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 2 {
		t.Fatalf("distinct rows = %d", res.Rel.Len())
	}
	res, err = e.Query("SELECT oid FROM orders LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 1 {
		t.Fatalf("limited rows = %d", res.Rel.Len())
	}
}

func TestPlainStar(t *testing.T) {
	e := testExecutor(t)
	res, err := e.Query("SELECT * FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Schema().Len() != 3 || res.Rel.Len() != 3 {
		t.Errorf("star = %v × %d", res.Rel.Schema().Names(), res.Rel.Len())
	}
}

func TestErrorCases(t *testing.T) {
	e := testExecutor(t)
	cases := map[string]string{
		"unknown table":            "SELECT a FROM ghost",
		"resolve without fuse":     "SELECT RESOLVE(Age, max) FROM EE_Student",
		"agg inside fuse":          "SELECT count(*) FUSE FROM EE_Student FUSE BY (Name)",
		"non-grouped column":       "SELECT Name, count(*) FROM EE_Student GROUP BY City",
		"star with group by":       "SELECT * FROM EE_Student GROUP BY City",
		"join in fuse":             "SELECT Name FUSE FROM EE_Student JOIN custs ON a = b FUSE BY (Name)",
		"order by unknown col":     "SELECT Name FUSE FROM EE_Student FUSE BY (Name) ORDER BY ghost",
		"unknown fuse by col":      "SELECT Name FUSE FROM EE_Student FUSE BY (ghost)",
		"having on unknown column": "SELECT Name FUSE FROM EE_Student FUSE BY (Name) HAVING ghost > 1",
	}
	for label, q := range cases {
		if _, err := e.Query(q); err == nil {
			t.Errorf("%s: query %q succeeded, want error", label, q)
		}
	}
}

func TestSyntaxErrorSurfaces(t *testing.T) {
	e := testExecutor(t)
	_, err := e.Query("SELEC nonsense")
	if err == nil || !strings.Contains(err.Error(), "sql") {
		t.Errorf("err = %v", err)
	}
}

func TestCrossProductPlainFrom(t *testing.T) {
	e := testExecutor(t)
	res, err := e.Query("SELECT oid, cname FROM orders, custs")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 6 {
		t.Errorf("cross rows = %d, want 6", res.Rel.Len())
	}
}

func TestFuseSingleSourceDeduplication(t *testing.T) {
	// FUSE FROM with one dirty source: the cleansing service usage.
	repo := metadata.NewRepository()
	dirty := relation.NewBuilder("upload", "Name", "Phone").
		AddText("Anna Schmidt", "030-1234").
		AddText("Anna Schmidt", "").
		AddText("Bernd Maier", "089-5678").
		Build()
	if err := repo.RegisterRelation("upload", dirty); err != nil {
		t.Fatal(err)
	}
	e := &Executor{Repo: repo}
	res, err := e.Query("SELECT * FUSE FROM upload FUSE BY (Name)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 2 {
		t.Fatalf("rows = %d, want 2:\n%s", res.Rel.Len(), res.Rel)
	}
}

func TestPlainComputedColumns(t *testing.T) {
	e := testExecutor(t)
	res, err := e.Query("SELECT oid, qty * 2 AS double_qty, qty + 1 FROM orders ORDER BY oid")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rel.Value(0, "double_qty"); !got.Equal(value.NewInt(4)) {
		t.Errorf("double_qty = %v, want 4", got)
	}
	if got := res.Rel.Value(0, "(qty + 1)"); !got.Equal(value.NewInt(3)) {
		t.Errorf("computed col = %v, want 3", got)
	}
}

func TestComputedColumnRejectedInFuse(t *testing.T) {
	e := testExecutor(t)
	if _, err := e.Query("SELECT Age + 1 FUSE FROM EE_Student FUSE BY (Name)"); err == nil {
		t.Error("computed expression in FUSE statement must error")
	}
	if _, err := e.Query("SELECT qty * 2 FROM orders GROUP BY cust"); err == nil {
		t.Error("computed expression with GROUP BY must error")
	}
}
