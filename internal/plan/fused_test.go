package plan

import (
	"testing"

	"hummer/internal/metadata"
	"hummer/internal/qcache"
	"hummer/internal/relation"
)

// trojanSource is a metadata.Source whose first Load performs a
// concurrent-looking Replace of its own alias — the deterministic
// reproduction of a source replace racing a query between the fused
// key's fingerprinting and the pipeline's load.
type trojanSource struct {
	alias   string
	repo    *metadata.Repository
	serve   *relation.Relation // what this Load returns (the "old" data)
	replace *relation.Relation // what the race installs
	fired   bool
}

func (s *trojanSource) Alias() string { return s.alias }

func (s *trojanSource) Load() (*relation.Relation, error) {
	if !s.fired {
		s.fired = true
		if err := s.repo.Replace(metadata.NewRelationSource(s.alias, s.replace)); err != nil {
			return nil, err
		}
	}
	return s.serve, nil
}

// TestFusedTierKeyedByRawText: the fused key is the raw statement
// text, never Stmt.String() — that rendering is not injective (an
// alias quoted as "Age, City" renders exactly like the two bare items
// `Age, City`), and two different statements must never serve each
// other's cached results.
func TestFusedTierKeyedByRawText(t *testing.T) {
	e := testExecutor(t)
	e.Cache = qcache.New(8)
	// One select item whose quoted alias contains ", "...
	q1 := `SELECT Name AS "Age, City" FUSE FROM EE_Student, CS_Students FUSE BY (Name)`
	// ...vs two select items — Stmt.String() renders both identically.
	q2 := `SELECT Name AS Age, City FUSE FROM EE_Student, CS_Students FUSE BY (Name)`

	r1, err := e.Query(q1)
	if err != nil {
		t.Fatal(err)
	}
	if got := r1.Rel.Schema().Names(); len(got) != 1 {
		t.Fatalf("q1 columns = %v, want the single quoted-alias column", got)
	}
	r2, err := e.Query(q2)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Rel.Schema().Names(); len(got) != 2 {
		t.Fatalf("q2 columns = %v, want two columns — served q1's cached result?", got)
	}
	fs := e.Cache.Stats().Kinds[qcache.KindFused]
	if fs.Misses != 2 || fs.Hits != 0 {
		t.Errorf("fused traffic = %+v, want two distinct misses", fs)
	}
}

// TestFusedTierRefusesStaleGenerations: when a source is replaced
// between the fused key's fingerprinting and the pipeline's load, the
// computed result must be served but NOT cached — otherwise a later
// rollback to the old data would hit the poisoned entry and silently
// serve rows derived from the newer data.
func TestFusedTierRefusesStaleGenerations(t *testing.T) {
	q := `SELECT Name, RESOLVE(Age, max) FUSE FROM L, R FUSE BY (Name)`
	mk := func(name, age string) *relation.Relation {
		return relation.NewBuilder("R", "Name", "Age").AddText(name, age).Build()
	}
	left := relation.NewBuilder("L", "Name", "Age").
		AddText("Jonathan Smith", "21").
		AddText("Maria Garcia", "24").
		Build()
	v1 := mk("Jonathan Smith", "22") // fused max(Age) for Jonathan = 22
	v2 := mk("Jonathan Smith", "99") // the racing replacement: max = 99

	repo := metadata.NewRepository()
	if err := repo.RegisterRelation("L", left); err != nil {
		t.Fatal(err)
	}
	trojan := &trojanSource{alias: "R", repo: repo, serve: v1, replace: v2}
	if err := repo.Register(trojan); err != nil {
		t.Fatal(err)
	}
	e := &Executor{Repo: repo, Cache: qcache.New(8)}

	// The racy query: fusedKey fingerprints R via the trojan (which
	// installs v2 mid-flight), then the pipeline loads and fuses v2.
	// The result reflects v2 — correct to serve — but must not be
	// cached under v1's fingerprint.
	res, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rel.Value(0, "Age").Int(); got != 99 {
		t.Fatalf("racy query fused Age = %d, want 99 (the replaced data)", got)
	}

	// Roll R back to data fingerprint-identical to v1 — the key the
	// bug would have poisoned — and re-issue the identical statement.
	if err := repo.Replace(metadata.NewRelationSource("R", mk("Jonathan Smith", "22"))); err != nil {
		t.Fatal(err)
	}
	res, err = e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rel.Value(0, "Age").Int(); got != 22 {
		t.Fatalf("post-rollback fused Age = %d, want 22 — the fused tier served a stale-keyed entry", got)
	}

	// The racy computation must show up as a refused miss, never a
	// cached entry: only the post-rollback query may populate the tier.
	fs := e.Cache.Stats().Kinds[qcache.KindFused]
	if fs.Hits != 0 {
		t.Errorf("fused hits = %d, want 0 (nothing cacheable existed to hit)", fs.Hits)
	}

	// And from here on the tier behaves normally: identical query hits.
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	fs = e.Cache.Stats().Kinds[qcache.KindFused]
	if fs.Hits != 1 {
		t.Errorf("fused hits after steady-state repeat = %d, want 1: %+v", fs.Hits, fs)
	}
}
