package metadata

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hummer/internal/relation"
	"hummer/internal/value"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRegisterAndGetRelation(t *testing.T) {
	repo := NewRepository()
	rel := relation.NewBuilder("x", "a").AddText("1").Build()
	if err := repo.RegisterRelation("MySource", rel); err != nil {
		t.Fatal(err)
	}
	got, err := repo.Get("mysource") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("rows = %d", got.Len())
	}
	if got.Name() != "MySource" {
		t.Errorf("loaded relation name = %q, want alias", got.Name())
	}
}

func TestDuplicateAliasRejected(t *testing.T) {
	repo := NewRepository()
	rel := relation.NewBuilder("x", "a").Build()
	if err := repo.RegisterRelation("s", rel); err != nil {
		t.Fatal(err)
	}
	if err := repo.RegisterRelation("S", rel); err == nil {
		t.Error("case-colliding alias must be rejected")
	}
	if err := repo.RegisterRelation("", rel); err == nil {
		t.Error("empty alias must be rejected")
	}
}

func TestGetUnknownAlias(t *testing.T) {
	repo := NewRepository()
	if _, err := repo.Get("ghost"); err == nil {
		t.Error("unknown alias must error")
	}
}

func TestAliasesSorted(t *testing.T) {
	repo := NewRepository()
	rel := relation.NewBuilder("x", "a").Build()
	for _, a := range []string{"zeta", "alpha", "mid"} {
		if err := repo.RegisterRelation(a, rel); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"alpha", "mid", "zeta"}
	if got := repo.Aliases(); !reflect.DeepEqual(got, want) {
		t.Errorf("Aliases = %v, want %v", got, want)
	}
	if !repo.Has("ALPHA") || repo.Has("nope") {
		t.Error("Has misbehaves")
	}
}

func TestCSVSource(t *testing.T) {
	path := writeFile(t, "people.csv", "Name,Age,City\nAlice,30,Berlin\nBob,,Tokyo\n")
	repo := NewRepository()
	if err := repo.RegisterCSV("people", path); err != nil {
		t.Fatal(err)
	}
	rel, err := repo.Get("people")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("rows = %d", rel.Len())
	}
	if got := rel.Value(0, "Age"); !got.Equal(value.NewInt(30)) {
		t.Errorf("typed cell = %v (%v)", got, got.Kind())
	}
	if !rel.Value(1, "Age").IsNull() {
		t.Error("empty cell must be NULL")
	}
}

func TestCSVRaggedRowsPadded(t *testing.T) {
	path := writeFile(t, "r.csv", "a,b,c\n1,2\n")
	repo := NewRepository()
	if err := repo.RegisterCSV("r", path); err != nil {
		t.Fatal(err)
	}
	rel, err := repo.Get("r")
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Value(0, "c").IsNull() {
		t.Error("short row must be NULL-padded")
	}
}

func TestCSVDuplicateAndEmptyHeaders(t *testing.T) {
	path := writeFile(t, "d.csv", "x,x,\n1,2,3\n")
	repo := NewRepository()
	if err := repo.RegisterCSV("d", path); err != nil {
		t.Fatal(err)
	}
	rel, err := repo.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	names := rel.Schema().Names()
	if names[0] != "x" || names[1] != "x_2" || names[2] != "col3" {
		t.Errorf("deduped headers = %v", names)
	}
}

func TestCSVEmptyFileErrors(t *testing.T) {
	path := writeFile(t, "e.csv", "")
	src := &CSVSource{AliasName: "e", Path: path}
	if _, err := src.Load(); err == nil {
		t.Error("empty CSV must error")
	}
}

func TestCSVMissingFileErrors(t *testing.T) {
	src := &CSVSource{AliasName: "m", Path: "/no/such/file.csv"}
	if _, err := src.Load(); err == nil {
		t.Error("missing file must error")
	}
}

func TestCSVCustomSeparator(t *testing.T) {
	path := writeFile(t, "semi.csv", "a;b\n1;2\n")
	src := &CSVSource{AliasName: "semi", Path: path, Comma: ';'}
	rel, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.Value(0, "b"); !got.Equal(value.NewInt(2)) {
		t.Errorf("cell = %v", got)
	}
}

func TestJSONSource(t *testing.T) {
	path := writeFile(t, "cds.json", `[
		{"title": "Abbey Road", "price": 12.99, "in_stock": true},
		{"title": "Let It Be", "price": 10, "label": "Apple"}
	]`)
	repo := NewRepository()
	if err := repo.RegisterJSON("cds", path); err != nil {
		t.Fatal(err)
	}
	rel, err := repo.Get("cds")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("rows = %d", rel.Len())
	}
	if got := rel.Value(0, "price"); !got.Equal(value.NewFloat(12.99)) {
		t.Errorf("price = %v", got)
	}
	if got := rel.Value(1, "price"); !got.Equal(value.NewInt(10)) {
		t.Errorf("integral JSON number must become INT, got %v (%v)", got, got.Kind())
	}
	if got := rel.Value(0, "in_stock"); !got.Equal(value.NewBool(true)) {
		t.Errorf("bool = %v", got)
	}
	if !rel.Value(0, "label").IsNull() {
		t.Error("missing key must be NULL")
	}
}

func TestJSONNestedValuesFlattened(t *testing.T) {
	path := writeFile(t, "n.json", `[{"name": "x", "tags": ["a", "b"]}]`)
	src := &JSONSource{AliasName: "n", Path: path}
	rel, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.Value(0, "tags").Text(); got != `["a","b"]` {
		t.Errorf("nested = %q", got)
	}
}

func TestJSONInvalidErrors(t *testing.T) {
	path := writeFile(t, "bad.json", `{"not": "an array"}`)
	src := &JSONSource{AliasName: "bad", Path: path}
	if _, err := src.Load(); err == nil {
		t.Error("non-array JSON must error")
	}
}

func TestXMLSource(t *testing.T) {
	path := writeFile(t, "victims.xml", `<?xml version="1.0"?>
<report>
  <person id="p1">
    <name>Anan Chaiyasit</name>
    <status>missing</status>
    <location>Phuket</location>
  </person>
  <person id="p2">
    <name>Somchai Woranut</name>
    <status>hospital</status>
  </person>
</report>`)
	repo := NewRepository()
	if err := repo.RegisterXML("victims", path, "person"); err != nil {
		t.Fatal(err)
	}
	rel, err := repo.Get("victims")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("rows = %d", rel.Len())
	}
	if got := rel.Value(0, "id").Text(); got != "p1" {
		t.Errorf("attribute column = %q", got)
	}
	if got := rel.Value(0, "name").Text(); got != "Anan Chaiyasit" {
		t.Errorf("name = %q", got)
	}
	if !rel.Value(1, "location").IsNull() {
		t.Error("absent element must be NULL")
	}
}

func TestXMLNoRecordsErrors(t *testing.T) {
	path := writeFile(t, "x.xml", `<root><other/></root>`)
	src := &XMLSource{AliasName: "x", Path: path, RecordTag: "person"}
	if _, err := src.Load(); err == nil {
		t.Error("no matching records must error")
	}
}

func TestCacheAndInvalidate(t *testing.T) {
	path := writeFile(t, "c.csv", "a\n1\n")
	repo := NewRepository()
	if err := repo.RegisterCSV("c", path); err != nil {
		t.Fatal(err)
	}
	r1, err := repo.Get("c")
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := repo.Get("c")
	if r1 != r2 {
		t.Error("second Get must hit the cache")
	}
	// Rewrite the file; without invalidation the cache serves stale data.
	if err := os.WriteFile(path, []byte("a\n1\n2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r3, _ := repo.Get("c")
	if r3.Len() != 1 {
		t.Error("cache should still serve the old version")
	}
	repo.Invalidate("c")
	r4, err := repo.Get("c")
	if err != nil {
		t.Fatal(err)
	}
	if r4.Len() != 2 {
		t.Error("Invalidate must force a reload")
	}
}
