package metadata

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hummer/internal/relation"
	"hummer/internal/value"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRegisterAndGetRelation(t *testing.T) {
	repo := NewRepository()
	rel := relation.NewBuilder("x", "a").AddText("1").Build()
	if err := repo.RegisterRelation("MySource", rel); err != nil {
		t.Fatal(err)
	}
	got, err := repo.Get("mysource") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("rows = %d", got.Len())
	}
	if got.Name() != "MySource" {
		t.Errorf("loaded relation name = %q, want alias", got.Name())
	}
}

func TestDuplicateAliasSemantics(t *testing.T) {
	repo := NewRepository()
	rel := relation.NewBuilder("x", "a").AddText("1").Build()
	if err := repo.RegisterRelation("s", rel); err != nil {
		t.Fatal(err)
	}
	// Same alias (case-insensitively), same data: idempotent no-op.
	if err := repo.RegisterRelation("S", rel); err != nil {
		t.Errorf("idempotent re-registration must succeed, got %v", err)
	}
	same := relation.NewBuilder("other-name", "a").AddText("1").Build()
	if err := repo.RegisterRelation("s", same); err != nil {
		t.Errorf("re-registration with equal data must succeed, got %v", err)
	}
	if got := repo.Generation("s"); got != 1 {
		t.Errorf("idempotent re-registration must not bump the generation: %d", got)
	}
	// Same alias, different data: a clear error, never a silent
	// overwrite.
	diff := relation.NewBuilder("x", "a").AddText("2").Build()
	err := repo.RegisterRelation("s", diff)
	if err == nil {
		t.Fatal("re-registering an alias with different data must error")
	}
	if !strings.Contains(err.Error(), "different data") {
		t.Errorf("error must say the data differs: %v", err)
	}
	// The original data must still be served.
	got, err := repo.Get("s")
	if err != nil {
		t.Fatal(err)
	}
	if got.Row(0)[0].Text() != "1" {
		t.Errorf("alias data silently overwritten: %v", got.Row(0)[0])
	}
	if err := repo.RegisterRelation("", rel); err == nil {
		t.Error("empty alias must be rejected")
	}
}

func TestReplaceBumpsGeneration(t *testing.T) {
	repo := NewRepository()
	v1 := relation.NewBuilder("t", "a").AddText("1").Build()
	if err := repo.RegisterRelation("s", v1); err != nil {
		t.Fatal(err)
	}
	fp1, err := repo.Fingerprint("s")
	if err != nil {
		t.Fatal(err)
	}
	v2 := relation.NewBuilder("t", "a").AddText("2").Build()
	if err := repo.Replace(NewRelationSource("s", v2)); err != nil {
		t.Fatal(err)
	}
	if got := repo.Generation("s"); got != 2 {
		t.Errorf("generation after Replace = %d, want 2", got)
	}
	fp2, err := repo.Fingerprint("s")
	if err != nil {
		t.Fatal(err)
	}
	if fp1 == fp2 {
		t.Error("fingerprint must change when the data changes")
	}
	got, err := repo.Get("s")
	if err != nil {
		t.Fatal(err)
	}
	if got.Row(0)[0].Text() != "2" {
		t.Errorf("Replace must serve the new data, got %v", got.Row(0)[0])
	}
}

// gatedSource lets a test hold a Load in flight while the repository
// is mutated underneath it.
type gatedSource struct {
	alias   string
	started chan struct{}
	release chan struct{}
	rel     *relation.Relation
}

func (s *gatedSource) Alias() string { return s.alias }

func (s *gatedSource) Load() (*relation.Relation, error) {
	close(s.started)
	<-s.release
	return s.rel, nil
}

// TestGetDoesNotCacheStaleLoadAcrossReplace: a load that was in
// flight when the alias was replaced must not install its stale rows
// under the new generation — later Gets must serve the replacement.
func TestGetDoesNotCacheStaleLoadAcrossReplace(t *testing.T) {
	repo := NewRepository()
	old := relation.NewBuilder("t", "a").AddText("old").Build()
	src := &gatedSource{
		alias: "s", started: make(chan struct{}), release: make(chan struct{}), rel: old,
	}
	if err := repo.Register(src); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		repo.Get("s") // starts loading the old source
	}()
	<-src.started
	replacement := relation.NewBuilder("t", "a").AddText("new").Build()
	if err := repo.Replace(NewRelationSource("s", replacement)); err != nil {
		t.Fatal(err)
	}
	close(src.release)
	<-done

	got, err := repo.Get("s")
	if err != nil {
		t.Fatal(err)
	}
	if txt := got.Row(0)[0].Text(); txt != "new" {
		t.Fatalf("stale in-flight load was cached across Replace: serving %q, want %q", txt, "new")
	}
}

func TestInvalidateBumpsGeneration(t *testing.T) {
	repo := NewRepository()
	rel := relation.NewBuilder("t", "a").AddText("1").Build()
	if err := repo.RegisterRelation("s", rel); err != nil {
		t.Fatal(err)
	}
	if got := repo.Generation("s"); got != 1 {
		t.Fatalf("generation = %d, want 1", got)
	}
	repo.Invalidate("s")
	if got := repo.Generation("s"); got != 2 {
		t.Errorf("generation after Invalidate = %d, want 2", got)
	}
	// Invalidating an unknown alias must not create a generation.
	repo.Invalidate("ghost")
	if got := repo.Generation("ghost"); got != 0 {
		t.Errorf("unknown alias generation = %d, want 0", got)
	}
}

func TestGetUnknownAlias(t *testing.T) {
	repo := NewRepository()
	if _, err := repo.Get("ghost"); err == nil {
		t.Error("unknown alias must error")
	}
}

func TestAliasesSorted(t *testing.T) {
	repo := NewRepository()
	rel := relation.NewBuilder("x", "a").Build()
	for _, a := range []string{"zeta", "alpha", "mid"} {
		if err := repo.RegisterRelation(a, rel); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"alpha", "mid", "zeta"}
	if got := repo.Aliases(); !reflect.DeepEqual(got, want) {
		t.Errorf("Aliases = %v, want %v", got, want)
	}
	if !repo.Has("ALPHA") || repo.Has("nope") {
		t.Error("Has misbehaves")
	}
}

func TestCSVSource(t *testing.T) {
	path := writeFile(t, "people.csv", "Name,Age,City\nAlice,30,Berlin\nBob,,Tokyo\n")
	repo := NewRepository()
	if err := repo.RegisterCSV("people", path); err != nil {
		t.Fatal(err)
	}
	rel, err := repo.Get("people")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("rows = %d", rel.Len())
	}
	if got := rel.Value(0, "Age"); !got.Equal(value.NewInt(30)) {
		t.Errorf("typed cell = %v (%v)", got, got.Kind())
	}
	if !rel.Value(1, "Age").IsNull() {
		t.Error("empty cell must be NULL")
	}
}

func TestCSVRaggedRowsPadded(t *testing.T) {
	path := writeFile(t, "r.csv", "a,b,c\n1,2\n")
	repo := NewRepository()
	if err := repo.RegisterCSV("r", path); err != nil {
		t.Fatal(err)
	}
	rel, err := repo.Get("r")
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Value(0, "c").IsNull() {
		t.Error("short row must be NULL-padded")
	}
}

func TestCSVDuplicateAndEmptyHeaders(t *testing.T) {
	path := writeFile(t, "d.csv", "x,x,\n1,2,3\n")
	repo := NewRepository()
	if err := repo.RegisterCSV("d", path); err != nil {
		t.Fatal(err)
	}
	rel, err := repo.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	names := rel.Schema().Names()
	if names[0] != "x" || names[1] != "x_2" || names[2] != "col3" {
		t.Errorf("deduped headers = %v", names)
	}
}

func TestCSVEmptyFileErrors(t *testing.T) {
	path := writeFile(t, "e.csv", "")
	src := &CSVSource{AliasName: "e", Path: path}
	if _, err := src.Load(); err == nil {
		t.Error("empty CSV must error")
	}
}

func TestCSVMissingFileErrors(t *testing.T) {
	src := &CSVSource{AliasName: "m", Path: "/no/such/file.csv"}
	if _, err := src.Load(); err == nil {
		t.Error("missing file must error")
	}
}

func TestCSVCustomSeparator(t *testing.T) {
	path := writeFile(t, "semi.csv", "a;b\n1;2\n")
	src := &CSVSource{AliasName: "semi", Path: path, Comma: ';'}
	rel, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.Value(0, "b"); !got.Equal(value.NewInt(2)) {
		t.Errorf("cell = %v", got)
	}
}

func TestJSONSource(t *testing.T) {
	path := writeFile(t, "cds.json", `[
		{"title": "Abbey Road", "price": 12.99, "in_stock": true},
		{"title": "Let It Be", "price": 10, "label": "Apple"}
	]`)
	repo := NewRepository()
	if err := repo.RegisterJSON("cds", path); err != nil {
		t.Fatal(err)
	}
	rel, err := repo.Get("cds")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("rows = %d", rel.Len())
	}
	if got := rel.Value(0, "price"); !got.Equal(value.NewFloat(12.99)) {
		t.Errorf("price = %v", got)
	}
	if got := rel.Value(1, "price"); !got.Equal(value.NewInt(10)) {
		t.Errorf("integral JSON number must become INT, got %v (%v)", got, got.Kind())
	}
	if got := rel.Value(0, "in_stock"); !got.Equal(value.NewBool(true)) {
		t.Errorf("bool = %v", got)
	}
	if !rel.Value(0, "label").IsNull() {
		t.Error("missing key must be NULL")
	}
}

func TestJSONNestedValuesFlattened(t *testing.T) {
	path := writeFile(t, "n.json", `[{"name": "x", "tags": ["a", "b"]}]`)
	src := &JSONSource{AliasName: "n", Path: path}
	rel, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.Value(0, "tags").Text(); got != `["a","b"]` {
		t.Errorf("nested = %q", got)
	}
}

func TestJSONInvalidErrors(t *testing.T) {
	path := writeFile(t, "bad.json", `{"not": "an array"}`)
	src := &JSONSource{AliasName: "bad", Path: path}
	if _, err := src.Load(); err == nil {
		t.Error("non-array JSON must error")
	}
}

func TestXMLSource(t *testing.T) {
	path := writeFile(t, "victims.xml", `<?xml version="1.0"?>
<report>
  <person id="p1">
    <name>Anan Chaiyasit</name>
    <status>missing</status>
    <location>Phuket</location>
  </person>
  <person id="p2">
    <name>Somchai Woranut</name>
    <status>hospital</status>
  </person>
</report>`)
	repo := NewRepository()
	if err := repo.RegisterXML("victims", path, "person"); err != nil {
		t.Fatal(err)
	}
	rel, err := repo.Get("victims")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("rows = %d", rel.Len())
	}
	if got := rel.Value(0, "id").Text(); got != "p1" {
		t.Errorf("attribute column = %q", got)
	}
	if got := rel.Value(0, "name").Text(); got != "Anan Chaiyasit" {
		t.Errorf("name = %q", got)
	}
	if !rel.Value(1, "location").IsNull() {
		t.Error("absent element must be NULL")
	}
}

func TestXMLNoRecordsErrors(t *testing.T) {
	path := writeFile(t, "x.xml", `<root><other/></root>`)
	src := &XMLSource{AliasName: "x", Path: path, RecordTag: "person"}
	if _, err := src.Load(); err == nil {
		t.Error("no matching records must error")
	}
}

func TestCacheAndInvalidate(t *testing.T) {
	path := writeFile(t, "c.csv", "a\n1\n")
	repo := NewRepository()
	if err := repo.RegisterCSV("c", path); err != nil {
		t.Fatal(err)
	}
	r1, err := repo.Get("c")
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := repo.Get("c")
	if r1 != r2 {
		t.Error("second Get must hit the cache")
	}
	// Rewrite the file; without invalidation the cache serves stale data.
	if err := os.WriteFile(path, []byte("a\n1\n2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r3, _ := repo.Get("c")
	if r3.Len() != 1 {
		t.Error("cache should still serve the old version")
	}
	repo.Invalidate("c")
	r4, err := repo.Get("c")
	if err != nil {
		t.Fatal(err)
	}
	if r4.Len() != 2 {
		t.Error("Invalidate must force a reload")
	}
}
