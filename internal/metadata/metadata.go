// Package metadata implements HumMer's metadata repository: it stores
// all registered data sources under an alias together with the
// instructions needed to transform each source into its relational
// form (paper §3). Sources can be in-memory relations, CSV files,
// JSON files, or XML files.
package metadata

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"hummer/internal/qcache"
	"hummer/internal/relation"
)

// ErrAliasConflict is wrapped by Register when an alias is
// re-registered with different data; match it with errors.Is.
var ErrAliasConflict = errors.New("already registered with different data")

// Source is one registered data source: an alias plus a loader that
// produces the relational form.
type Source interface {
	// Alias is the repository key the source is registered under.
	Alias() string
	// Load transforms the source into a relation. Loaders are called
	// lazily and may be called more than once.
	Load() (*relation.Relation, error)
}

// Repository maps aliases to sources and caches loaded relations. It
// is safe for concurrent use.
//
// Every alias carries a generation counter: it starts at 1 on first
// registration and is bumped whenever the alias's data may have
// changed (Replace, Invalidate). Artifact caches key their entries by
// content fingerprints, so the generation is the cheap signal that a
// fingerprint must be recomputed.
type Repository struct {
	mu      sync.Mutex
	sources map[string]Source
	cache   map[string]*relation.Relation
	// generations[key] counts data versions of the alias.
	generations map[string]uint64
	// fingerprints caches the content fingerprint per alias; cleared
	// with the relation cache.
	fingerprints map[string]string
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{
		sources:      make(map[string]Source),
		cache:        make(map[string]*relation.Relation),
		generations:  make(map[string]uint64),
		fingerprints: make(map[string]string),
	}
}

// Register adds a source. Aliases are case-insensitive and must be
// unique. Re-registering an alias with a source describing the same
// data (same file, or an equal in-memory relation) is an idempotent
// no-op; re-registering it with *different* data is an error — a
// silent overwrite would invisibly change the results of every query
// touching the alias. Use Replace to overwrite deliberately.
func (r *Repository) Register(s Source) error {
	key := strings.ToLower(s.Alias())
	if key == "" {
		return fmt.Errorf("metadata: empty alias")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, dup := r.sources[key]; dup {
		if sameSource(old, s) {
			return nil // idempotent: identical data
		}
		return fmt.Errorf("metadata: alias %q: %w; use Replace to overwrite",
			s.Alias(), ErrAliasConflict)
	}
	r.sources[key] = s
	r.generations[key] = 1
	return nil
}

// Replace registers s under its alias, overwriting any existing
// source, dropping the cached relation and bumping the alias's
// generation.
func (r *Repository) Replace(s Source) error {
	key := strings.ToLower(s.Alias())
	if key == "" {
		return fmt.Errorf("metadata: empty alias")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources[key] = s
	delete(r.cache, key)
	delete(r.fingerprints, key)
	r.generations[key]++
	return nil
}

// sameSource reports whether two sources describe the same data: file
// sources by their load instructions, in-memory relations by content.
func sameSource(a, b Source) bool {
	switch x := a.(type) {
	case *CSVSource:
		y, ok := b.(*CSVSource)
		return ok && x.Path == y.Path && x.Comma == y.Comma
	case *JSONSource:
		y, ok := b.(*JSONSource)
		return ok && x.Path == y.Path
	case *XMLSource:
		y, ok := b.(*XMLSource)
		return ok && x.Path == y.Path && x.RecordTag == y.RecordTag
	case *relationSource:
		y, ok := b.(*relationSource)
		return ok && sameRelation(x.rel, y.rel)
	default:
		return false
	}
}

// sameRelation compares two in-memory relations by content.
func sameRelation(a, b *relation.Relation) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Len() != b.Len() || !a.Schema().Equal(b.Schema()) {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if !a.Row(i).Equal(b.Row(i)) {
			return false
		}
	}
	return true
}

// RegisterRelation registers an in-memory relation under alias.
func (r *Repository) RegisterRelation(alias string, rel *relation.Relation) error {
	return r.Register(&relationSource{alias: alias, rel: rel})
}

// RegisterCSV registers a CSV file (first row = header).
func (r *Repository) RegisterCSV(alias, path string) error {
	return r.Register(&CSVSource{AliasName: alias, Path: path})
}

// RegisterJSON registers a JSON file holding an array of flat objects.
func (r *Repository) RegisterJSON(alias, path string) error {
	return r.Register(&JSONSource{AliasName: alias, Path: path})
}

// RegisterXML registers an XML file whose repeated recordTag elements
// are the tuples.
func (r *Repository) RegisterXML(alias, path, recordTag string) error {
	return r.Register(&XMLSource{AliasName: alias, Path: path, RecordTag: recordTag})
}

// Get loads (and caches) the relational form of the aliased source.
// The returned relation is named after the alias as registered.
func (r *Repository) Get(alias string) (*relation.Relation, error) {
	key := strings.ToLower(alias)
	r.mu.Lock()
	src, ok := r.sources[key]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("metadata: unknown source alias %q (registered: %s)",
			alias, strings.Join(r.aliasesLocked(), ", "))
	}
	if rel, hit := r.cache[key]; hit {
		r.mu.Unlock()
		return rel, nil
	}
	gen := r.generations[key]
	r.mu.Unlock()

	rel, err := src.Load()
	if err != nil {
		return nil, fmt.Errorf("metadata: loading %q: %w", alias, err)
	}
	rel.SetName(src.Alias())

	r.mu.Lock()
	// Install only if the alias was not replaced or invalidated while
	// we loaded: a concurrent Replace bumped the generation, and
	// caching our now-stale rows under the new generation would serve
	// old data forever.
	if r.generations[key] == gen {
		r.cache[key] = rel
	}
	r.mu.Unlock()
	return rel, nil
}

// Invalidate drops the cached relation for alias (e.g. after the
// underlying file changed) and bumps its generation: the next Get
// re-loads, and fingerprint-keyed artifact caches stop matching if
// the data actually changed.
func (r *Repository) Invalidate(alias string) {
	key := strings.ToLower(alias)
	r.mu.Lock()
	delete(r.cache, key)
	delete(r.fingerprints, key)
	if _, ok := r.sources[key]; ok {
		r.generations[key]++
	}
	r.mu.Unlock()
}

// Generation returns the data-version counter of alias (0 when the
// alias is unknown).
func (r *Repository) Generation(alias string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.generations[strings.ToLower(alias)]
}

// Fingerprint returns the content fingerprint of the aliased source's
// relational form, loading it if necessary. The fingerprint is cached
// until the alias is invalidated or replaced.
func (r *Repository) Fingerprint(alias string) (string, error) {
	key := strings.ToLower(alias)
	r.mu.Lock()
	if fp, ok := r.fingerprints[key]; ok {
		r.mu.Unlock()
		return fp, nil
	}
	gen := r.generations[key]
	r.mu.Unlock()
	rel, err := r.Get(alias)
	if err != nil {
		return "", err
	}
	fp := qcache.FingerprintRelation(rel)
	r.mu.Lock()
	// Same staleness guard as Get: never cache a fingerprint computed
	// from data that a concurrent Replace already superseded.
	if r.generations[key] == gen {
		r.fingerprints[key] = fp
	}
	r.mu.Unlock()
	return fp, nil
}

// Aliases lists the registered aliases, sorted.
func (r *Repository) Aliases() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.aliasesLocked()
}

func (r *Repository) aliasesLocked() []string {
	out := make([]string, 0, len(r.sources))
	for _, s := range r.sources {
		out = append(out, s.Alias())
	}
	sort.Strings(out)
	return out
}

// Has reports whether alias is registered.
func (r *Repository) Has(alias string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.sources[strings.ToLower(alias)]
	return ok
}

// NewRelationSource wraps an in-memory relation as a Source, for use
// with Register or Replace.
func NewRelationSource(alias string, rel *relation.Relation) Source {
	return &relationSource{alias: alias, rel: rel}
}

type relationSource struct {
	alias string
	rel   *relation.Relation
}

func (s *relationSource) Alias() string { return s.alias }

func (s *relationSource) Load() (*relation.Relation, error) {
	if s.rel == nil {
		return nil, fmt.Errorf("nil relation")
	}
	return s.rel, nil
}
