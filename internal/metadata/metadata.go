// Package metadata implements HumMer's metadata repository: it stores
// all registered data sources under an alias together with the
// instructions needed to transform each source into its relational
// form (paper §3). Sources can be in-memory relations, CSV files,
// JSON files, or XML files.
package metadata

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hummer/internal/relation"
)

// Source is one registered data source: an alias plus a loader that
// produces the relational form.
type Source interface {
	// Alias is the repository key the source is registered under.
	Alias() string
	// Load transforms the source into a relation. Loaders are called
	// lazily and may be called more than once.
	Load() (*relation.Relation, error)
}

// Repository maps aliases to sources and caches loaded relations. It
// is safe for concurrent use.
type Repository struct {
	mu      sync.Mutex
	sources map[string]Source
	cache   map[string]*relation.Relation
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{
		sources: make(map[string]Source),
		cache:   make(map[string]*relation.Relation),
	}
}

// Register adds a source. Aliases are case-insensitive and must be
// unique.
func (r *Repository) Register(s Source) error {
	key := strings.ToLower(s.Alias())
	if key == "" {
		return fmt.Errorf("metadata: empty alias")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.sources[key]; dup {
		return fmt.Errorf("metadata: alias %q already registered", s.Alias())
	}
	r.sources[key] = s
	return nil
}

// RegisterRelation registers an in-memory relation under alias.
func (r *Repository) RegisterRelation(alias string, rel *relation.Relation) error {
	return r.Register(&relationSource{alias: alias, rel: rel})
}

// RegisterCSV registers a CSV file (first row = header).
func (r *Repository) RegisterCSV(alias, path string) error {
	return r.Register(&CSVSource{AliasName: alias, Path: path})
}

// RegisterJSON registers a JSON file holding an array of flat objects.
func (r *Repository) RegisterJSON(alias, path string) error {
	return r.Register(&JSONSource{AliasName: alias, Path: path})
}

// RegisterXML registers an XML file whose repeated recordTag elements
// are the tuples.
func (r *Repository) RegisterXML(alias, path, recordTag string) error {
	return r.Register(&XMLSource{AliasName: alias, Path: path, RecordTag: recordTag})
}

// Get loads (and caches) the relational form of the aliased source.
// The returned relation is named after the alias as registered.
func (r *Repository) Get(alias string) (*relation.Relation, error) {
	key := strings.ToLower(alias)
	r.mu.Lock()
	src, ok := r.sources[key]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("metadata: unknown source alias %q (registered: %s)",
			alias, strings.Join(r.aliasesLocked(), ", "))
	}
	if rel, hit := r.cache[key]; hit {
		r.mu.Unlock()
		return rel, nil
	}
	r.mu.Unlock()

	rel, err := src.Load()
	if err != nil {
		return nil, fmt.Errorf("metadata: loading %q: %w", alias, err)
	}
	rel.SetName(src.Alias())

	r.mu.Lock()
	r.cache[key] = rel
	r.mu.Unlock()
	return rel, nil
}

// Invalidate drops the cached relation for alias (e.g. after the
// underlying file changed).
func (r *Repository) Invalidate(alias string) {
	r.mu.Lock()
	delete(r.cache, strings.ToLower(alias))
	r.mu.Unlock()
}

// Aliases lists the registered aliases, sorted.
func (r *Repository) Aliases() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.aliasesLocked()
}

func (r *Repository) aliasesLocked() []string {
	out := make([]string, 0, len(r.sources))
	for _, s := range r.sources {
		out = append(out, s.Alias())
	}
	sort.Strings(out)
	return out
}

// Has reports whether alias is registered.
func (r *Repository) Has(alias string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.sources[strings.ToLower(alias)]
	return ok
}

type relationSource struct {
	alias string
	rel   *relation.Relation
}

func (s *relationSource) Alias() string { return s.alias }

func (s *relationSource) Load() (*relation.Relation, error) {
	if s.rel == nil {
		return nil, fmt.Errorf("nil relation")
	}
	return s.rel, nil
}
