package metadata

import (
	"encoding/csv"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"hummer/internal/relation"
	"hummer/internal/schema"
	"hummer/internal/value"
)

// CSVSource loads a comma-separated file whose first row names the
// columns. Cells are typed with value.Parse.
type CSVSource struct {
	AliasName string
	Path      string
	// Comma overrides the separator; zero means ','.
	Comma rune
}

// Alias implements Source.
func (s *CSVSource) Alias() string { return s.AliasName }

// Load implements Source.
func (s *CSVSource) Load() (*relation.Relation, error) {
	f, err := os.Open(s.Path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	if s.Comma != 0 {
		r.Comma = s.Comma
	}
	r.FieldsPerRecord = -1 // tolerate ragged rows; pad below
	header, err := r.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("csv %s: empty file", s.Path)
	}
	if err != nil {
		return nil, err
	}
	cols := dedupeNames(header)
	rel := relation.New(s.AliasName, schema.FromNames(cols...))
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		row := make(relation.Row, len(cols))
		for i := range cols {
			if i < len(rec) {
				row[i] = value.Parse(rec[i])
			} else {
				row[i] = value.Null
			}
		}
		if err := rel.Append(row); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// dedupeNames suffixes duplicate or empty header names so the schema
// stays valid.
func dedupeNames(header []string) []string {
	out := make([]string, len(header))
	seen := map[string]bool{}
	for i, h := range header {
		name := h
		if name == "" {
			name = "col" + strconv.Itoa(i+1)
		}
		base := name
		for n := 2; seen[lower(name)]; n++ {
			name = base + "_" + strconv.Itoa(n)
		}
		seen[lower(name)] = true
		out[i] = name
	}
	return out
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// JSONSource loads a JSON array of flat objects. The relational form
// has one column per key appearing in any object, in first-appearance
// order (objects missing a key yield NULL). Nested values are
// flattened to their JSON text.
type JSONSource struct {
	AliasName string
	Path      string
}

// Alias implements Source.
func (s *JSONSource) Alias() string { return s.AliasName }

// Load implements Source.
func (s *JSONSource) Load() (*relation.Relation, error) {
	data, err := os.ReadFile(s.Path)
	if err != nil {
		return nil, err
	}
	var records []map[string]any
	if err := json.Unmarshal(data, &records); err != nil {
		return nil, fmt.Errorf("json %s: %w (expected an array of objects)", s.Path, err)
	}
	// Column order: first appearance across records, keys of one
	// record sorted for determinism (Go maps are unordered).
	var cols []string
	seen := map[string]bool{}
	for _, rec := range records {
		keys := make([]string, 0, len(rec))
		for k := range rec {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !seen[k] {
				seen[k] = true
				cols = append(cols, k)
			}
		}
	}
	rel := relation.New(s.AliasName, schema.FromNames(cols...))
	for _, rec := range records {
		row := make(relation.Row, len(cols))
		for i, k := range cols {
			raw, ok := rec[k]
			if !ok || raw == nil {
				row[i] = value.Null
				continue
			}
			row[i] = jsonValue(raw)
		}
		if err := rel.Append(row); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

func jsonValue(raw any) value.Value {
	switch v := raw.(type) {
	case string:
		return value.Parse(v)
	case float64:
		if v == float64(int64(v)) {
			return value.NewInt(int64(v))
		}
		return value.NewFloat(v)
	case bool:
		return value.NewBool(v)
	default:
		b, err := json.Marshal(v)
		if err != nil {
			return value.Null
		}
		return value.NewString(string(b))
	}
}

// XMLSource loads an XML file: every element named RecordTag becomes a
// tuple; its child elements (and attributes) become columns.
type XMLSource struct {
	AliasName string
	Path      string
	RecordTag string
}

// Alias implements Source.
func (s *XMLSource) Alias() string { return s.AliasName }

// Load implements Source.
func (s *XMLSource) Load() (*relation.Relation, error) {
	f, err := os.Open(s.Path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := xml.NewDecoder(f)

	type record struct {
		fields map[string]string
		order  []string
	}
	var records []record
	var cols []string
	seenCol := map[string]bool{}
	addCol := func(name string) {
		if !seenCol[name] {
			seenCol[name] = true
			cols = append(cols, name)
		}
	}

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xml %s: %w", s.Path, err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok || start.Name.Local != s.RecordTag {
			continue
		}
		rec := record{fields: map[string]string{}}
		for _, a := range start.Attr {
			rec.fields[a.Name.Local] = a.Value
			rec.order = append(rec.order, a.Name.Local)
			addCol(a.Name.Local)
		}
		// Walk the record subtree: direct children become fields.
		depth := 1
		var curField string
		var text []byte
		for depth > 0 {
			t, err := dec.Token()
			if err != nil {
				return nil, fmt.Errorf("xml %s: %w", s.Path, err)
			}
			switch e := t.(type) {
			case xml.StartElement:
				depth++
				if depth == 2 {
					curField = e.Name.Local
					text = text[:0]
				}
			case xml.CharData:
				if depth == 2 && curField != "" {
					text = append(text, e...)
				}
			case xml.EndElement:
				depth--
				if depth == 1 && curField != "" {
					rec.fields[curField] = string(text)
					rec.order = append(rec.order, curField)
					addCol(curField)
					curField = ""
				}
			}
		}
		records = append(records, rec)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("xml %s: no <%s> records found", s.Path, s.RecordTag)
	}
	rel := relation.New(s.AliasName, schema.FromNames(cols...))
	for _, rec := range records {
		row := make(relation.Row, len(cols))
		for i, c := range cols {
			if raw, ok := rec.fields[c]; ok {
				row[i] = value.Parse(raw)
			} else {
				row[i] = value.Null
			}
		}
		if err := rel.Append(row); err != nil {
			return nil, err
		}
	}
	return rel, nil
}
