// Package testutil holds helpers shared by the repo's test suites.
//
// The goroutine-leak checker lives here so every package that spawns
// workers (parshard, plan streams, the HTTP server, qcache leaders)
// asserts the same contract the same way: after a test's pipelines
// finish — successfully, cancelled, or panicked-and-contained — the
// goroutine count settles back to where it started.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// settleDeadline bounds how long WaitForGoroutines polls before
// declaring a leak. Generous because CI boxes stall; leaks fail fast
// in practice since a leaked goroutine never exits.
const settleDeadline = 3 * time.Second

// WaitForGoroutines polls until the process goroutine count settles
// at or below limit, failing the test if it does not within the
// deadline. Call with a count captured before the work under test
// plus a small slack (the runtime keeps a few service goroutines).
func WaitForGoroutines(t testing.TB, limit int) {
	t.Helper()
	deadline := time.Now().Add(settleDeadline)
	for {
		if n := runtime.NumGoroutine(); n <= limit {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle: %d running, want <= %d\n%s",
				runtime.NumGoroutine(), limit, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// CheckGoroutineLeaks snapshots the goroutine count now and registers
// a cleanup that fails the test if the count has not settled back to
// the snapshot (plus slack for runtime service goroutines) by the end
// of the test. Call it first thing in a test that spawns workers.
func CheckGoroutineLeaks(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		WaitForGoroutines(t, before+2)
	})
}
