package assign

import (
	"math"
	"testing"
	"time"
)

// checkOneToOne asserts the matching is 1:1 and within the matrix
// bounds.
func checkOneToOne(t *testing.T, w [][]float64, pairs []Pair) {
	t.Helper()
	seenR, seenC := map[int]bool{}, map[int]bool{}
	for _, p := range pairs {
		if p.Row < 0 || p.Row >= len(w) {
			t.Fatalf("pair %+v: row out of bounds", p)
		}
		if p.Col < 0 || p.Col >= len(w[p.Row]) {
			t.Fatalf("pair %+v: col out of bounds for its row", p)
		}
		if seenR[p.Row] || seenC[p.Col] {
			t.Fatalf("matching is not 1:1: %v", pairs)
		}
		seenR[p.Row] = true
		seenC[p.Col] = true
	}
}

// TestMaxWeightNoColumns: rows with no columns yield an empty matching
// rather than panicking (the nil / single-empty-row cases live in
// TestMaxWeightEmpty).
func TestMaxWeightNoColumns(t *testing.T) {
	if got := MaxWeight([][]float64{}); got != nil {
		t.Errorf("MaxWeight(empty) = %v", got)
	}
	if got := MaxWeight([][]float64{{}, {}}); got != nil {
		t.Errorf("MaxWeight(rows with no cols) = %v", got)
	}
}

// TestMaxWeightWideAndTall: wide and tall matrices match min(rows,
// cols) pairs at best, picking the heavy cells.
func TestMaxWeightWideAndTall(t *testing.T) {
	wide := [][]float64{
		{0.1, 0.9, 0.2, 0.8},
		{0.7, 0.1, 0.1, 0.2},
	}
	pairs := MaxWeight(wide)
	checkOneToOne(t, wide, pairs)
	if len(pairs) != 2 {
		t.Fatalf("wide: got %d pairs, want 2: %v", len(pairs), pairs)
	}
	if TotalWeight(pairs) < 0.9+0.7-1e-9 {
		t.Errorf("wide: weight %v below optimum 1.6", TotalWeight(pairs))
	}
	tall := [][]float64{
		{0.1, 0.9},
		{0.7, 0.1},
		{0.8, 0.85},
	}
	pairs = MaxWeight(tall)
	checkOneToOne(t, tall, pairs)
	if len(pairs) != 2 {
		t.Fatalf("tall: got %d pairs, want 2: %v", len(pairs), pairs)
	}
	if TotalWeight(pairs) < 0.9+0.8-1e-9 {
		t.Errorf("tall: weight %v below optimum 1.7", TotalWeight(pairs))
	}
}

// TestMaxWeightRagged: rows of different lengths are treated as
// zero-padded, not a panic.
func TestMaxWeightRagged(t *testing.T) {
	w := [][]float64{
		{0.9},
		{0.2, 0.8, 0.3},
		{},
	}
	pairs := MaxWeight(w)
	checkOneToOne(t, w, pairs)
	if TotalWeight(pairs) < 0.9+0.8-1e-9 {
		t.Errorf("ragged: weight %v below optimum 1.7 (%v)", TotalWeight(pairs), pairs)
	}
	pairs = Greedy(w)
	checkOneToOne(t, w, pairs)
	if TotalWeight(pairs) < 0.9+0.8-1e-9 {
		t.Errorf("greedy ragged: weight %v below optimum 1.7 (%v)", TotalWeight(pairs), pairs)
	}
}

// TestMaxWeightNaN: NaN weights mean "no information" — they must
// neither be matched nor (the old failure mode) stall the Hungarian
// augmenting-path search forever.
func TestMaxWeightNaN(t *testing.T) {
	nan := math.NaN()
	w := [][]float64{
		{nan, 0.9, nan},
		{0.8, nan, nan},
		{nan, nan, nan},
	}
	done := make(chan []Pair, 1)
	go func() { done <- MaxWeight(w) }()
	var pairs []Pair
	select {
	case pairs = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("MaxWeight hung on NaN input")
	}
	checkOneToOne(t, w, pairs)
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs, want 2: %v", len(pairs), pairs)
	}
	for _, p := range pairs {
		if math.IsNaN(w[p.Row][p.Col]) {
			t.Errorf("matched a NaN cell: %+v", p)
		}
	}
}

// TestMaxWeightNonFinite: ±Inf is sanitized to 0 like NaN.
func TestMaxWeightNonFinite(t *testing.T) {
	w := [][]float64{
		{math.Inf(1), 0.5},
		{0.4, math.Inf(-1)},
	}
	for name, solve := range map[string]func([][]float64) []Pair{"hungarian": MaxWeight, "greedy": Greedy} {
		pairs := solve(w)
		checkOneToOne(t, w, pairs)
		for _, p := range pairs {
			if math.IsInf(w[p.Row][p.Col], 0) {
				t.Errorf("%s matched an infinite cell: %+v", name, p)
			}
		}
		if TotalWeight(pairs) < 0.5+0.4-1e-9 {
			t.Errorf("%s weight %v below optimum 0.9 (%v)", name, TotalWeight(pairs), pairs)
		}
	}
}

// TestMaxWeightNegative: negative weights are worse than staying
// unmatched and must never appear in the result.
func TestMaxWeightNegative(t *testing.T) {
	w := [][]float64{
		{-0.5, 0.9},
		{-0.2, -0.8},
	}
	pairs := MaxWeight(w)
	checkOneToOne(t, w, pairs)
	if len(pairs) != 1 || pairs[0].Weight != 0.9 {
		t.Fatalf("want only the 0.9 cell matched, got %v", pairs)
	}
	all := [][]float64{{-1, -2}, {-3, -4}}
	if pairs := MaxWeight(all); len(pairs) != 0 {
		t.Errorf("all-negative matrix matched %v", pairs)
	}
}
