// Package assign solves the maximum-weight bipartite matching
// (assignment) problem DUMAS uses to turn an attribute-similarity
// matrix into a set of 1:1 correspondences.
//
// MaxWeight implements the O(n³) Hungarian algorithm (Jonker-style
// potentials) on a rectangular weight matrix; Greedy is the simpler
// baseline kept for the D5 ablation.
package assign

import "math"

// Pair is one matched (row, col) pair of the assignment.
type Pair struct {
	Row, Col int
	Weight   float64
}

// MaxWeight computes a maximum-weight matching of the rectangular
// matrix w (rows × cols). Pairs with non-positive weight are excluded
// from the result: matching nothing is always allowed and weights are
// similarities, so a zero-weight pairing carries no information.
//
// The input is taken as-is from similarity computations, so MaxWeight
// is defensive about it: ragged rows are treated as padded with zeros
// to the widest row, and non-finite weights (NaN, ±Inf) are treated as
// 0 — no information. NaN in particular must never reach the Hungarian
// solver: its comparisons are all false, which would stall the
// augmenting-path search forever.
func MaxWeight(w [][]float64) []Pair {
	n := len(w)
	if n == 0 {
		return nil
	}
	m := 0
	for i := range w {
		if len(w[i]) > m {
			m = len(w[i])
		}
	}
	if m == 0 {
		return nil
	}
	weight := func(i, j int) float64 {
		if j >= len(w[i]) {
			return 0
		}
		x := w[i][j]
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return x
	}
	// Pad to a square cost matrix for the Hungarian solver; padding
	// cells have weight 0, i.e. "unmatched".
	dim := n
	if m > dim {
		dim = m
	}
	// Hungarian minimizes cost; convert similarity to cost by
	// subtracting from the maximum weight.
	maxW := 0.0
	for i := range w {
		for j := range w[i] {
			if x := weight(i, j); x > maxW {
				maxW = x
			}
		}
	}
	cost := make([][]float64, dim)
	for i := range cost {
		cost[i] = make([]float64, dim)
		for j := range cost[i] {
			if i < n && j < m {
				cost[i][j] = maxW - weight(i, j)
			} else {
				cost[i][j] = maxW
			}
		}
	}
	rowOf := hungarian(cost)
	var pairs []Pair
	for j, i := range rowOf {
		if i < n && j < m && weight(i, j) > 0 {
			pairs = append(pairs, Pair{Row: i, Col: j, Weight: weight(i, j)})
		}
	}
	return pairs
}

// hungarian solves the square min-cost assignment; it returns, for each
// column, the assigned row. Implementation follows the standard
// potential-based shortest augmenting path formulation (e-maxx),
// using 1-based internal arrays.
func hungarian(cost [][]float64) []int {
	n := len(cost)
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row assigned to column j
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	rowOf := make([]int, n)
	for j := 1; j <= n; j++ {
		rowOf[j-1] = p[j] - 1
	}
	return rowOf
}

// Greedy computes a matching by repeatedly taking the highest-weight
// remaining cell. It is the ablation baseline for DESIGN.md D5: fast,
// but not optimal.
func Greedy(w [][]float64) []Pair {
	n := len(w)
	if n == 0 {
		return nil
	}
	m := 0
	for i := range w {
		if len(w[i]) > m {
			m = len(w[i])
		}
	}
	usedRow := make([]bool, n)
	usedCol := make([]bool, m)
	var pairs []Pair
	for {
		bi, bj, bw := -1, -1, 0.0
		for i := 0; i < n; i++ {
			if usedRow[i] {
				continue
			}
			for j := 0; j < len(w[i]); j++ {
				if usedCol[j] {
					continue
				}
				// NaN compares false and is skipped naturally; ±Inf
				// is "no information", matching MaxWeight's rule.
				if x := w[i][j]; x > bw && !math.IsInf(x, 0) {
					bi, bj, bw = i, j, x
				}
			}
		}
		if bi < 0 {
			return pairs
		}
		usedRow[bi] = true
		usedCol[bj] = true
		pairs = append(pairs, Pair{Row: bi, Col: bj, Weight: bw})
	}
}

// TotalWeight sums the weights of a matching.
func TotalWeight(pairs []Pair) float64 {
	var t float64
	for _, p := range pairs {
		t += p.Weight
	}
	return t
}
