package assign

import (
	"math"
	"math/rand"
	"testing"
)

func TestMaxWeightSimple(t *testing.T) {
	// Optimal is anti-diagonal: 3 + 3 = 6; greedy diagonal would be 4+1=5.
	w := [][]float64{
		{4, 3},
		{3, 1},
	}
	pairs := MaxWeight(w)
	if got := TotalWeight(pairs); got != 6 {
		t.Errorf("total = %g, want 6 (anti-diagonal)", got)
	}
}

func TestMaxWeightRectangular(t *testing.T) {
	// 2 rows × 3 cols: each row matched at most once, each col at most once.
	w := [][]float64{
		{0.1, 0.9, 0.2},
		{0.8, 0.95, 0.1},
	}
	pairs := MaxWeight(w)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d, want 2", len(pairs))
	}
	// Optimal: row0→col1 (0.9) + row1→col0 (0.8) = 1.7
	// beats row1→col1 (0.95) + row0→col0 (0.1) = 1.05.
	if got := TotalWeight(pairs); math.Abs(got-1.7) > 1e-9 {
		t.Errorf("total = %g, want 1.7", got)
	}
	seenRow := map[int]bool{}
	seenCol := map[int]bool{}
	for _, p := range pairs {
		if seenRow[p.Row] || seenCol[p.Col] {
			t.Error("matching is not 1:1")
		}
		seenRow[p.Row] = true
		seenCol[p.Col] = true
	}
}

func TestMaxWeightExcludesZeroWeight(t *testing.T) {
	w := [][]float64{
		{0.9, 0},
		{0, 0},
	}
	pairs := MaxWeight(w)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %v, want only the 0.9 cell", pairs)
	}
	if pairs[0].Row != 0 || pairs[0].Col != 0 {
		t.Errorf("matched %v, want (0,0)", pairs[0])
	}
}

func TestMaxWeightEmpty(t *testing.T) {
	if got := MaxWeight(nil); got != nil {
		t.Errorf("MaxWeight(nil) = %v", got)
	}
	if got := MaxWeight([][]float64{{}}); len(got) != 0 {
		t.Errorf("MaxWeight(0 cols) = %v", got)
	}
}

func TestMaxWeightTallMatrix(t *testing.T) {
	// More rows than columns.
	w := [][]float64{
		{0.5},
		{0.9},
		{0.7},
	}
	pairs := MaxWeight(w)
	if len(pairs) != 1 || pairs[0].Row != 1 {
		t.Errorf("pairs = %v, want single (1,0)", pairs)
	}
}

func TestGreedySuboptimal(t *testing.T) {
	// The classic trap: greedy takes 4 first then only 1, total 5;
	// optimal is 6.
	w := [][]float64{
		{4, 3},
		{3, 1},
	}
	g := TotalWeight(Greedy(w))
	h := TotalWeight(MaxWeight(w))
	if g != 5 {
		t.Errorf("greedy total = %g, want 5", g)
	}
	if h <= g {
		t.Errorf("hungarian (%g) must beat greedy (%g) here", h, g)
	}
}

func TestHungarianAtLeastGreedyRandom(t *testing.T) {
	// Property: the Hungarian result is never worse than greedy.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(8)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, m)
			for j := range w[i] {
				w[i][j] = rng.Float64()
			}
		}
		g := TotalWeight(Greedy(w))
		h := TotalWeight(MaxWeight(w))
		if h < g-1e-9 {
			t.Fatalf("trial %d: hungarian %g < greedy %g for %v", trial, h, g, w)
		}
	}
}

func TestMaxWeightMatchesBruteForce(t *testing.T) {
	// Exhaustive check on small random square matrices.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4) // 2..5
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				w[i][j] = rng.Float64()
			}
		}
		want := bruteForceBest(w)
		got := TotalWeight(MaxWeight(w))
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: hungarian %g != brute force %g", trial, got, want)
		}
	}
}

// bruteForceBest tries all permutations of a square matrix.
func bruteForceBest(w [][]float64) float64 {
	n := len(w)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := 0.0
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			var total float64
			for i, j := range perm {
				total += w[i][j]
			}
			if total > best {
				best = total
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func BenchmarkHungarian10x10(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := make([][]float64, 10)
	for i := range w {
		w[i] = make([]float64, 10)
		for j := range w[i] {
			w[i][j] = rng.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxWeight(w)
	}
}

func BenchmarkGreedy10x10(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := make([][]float64, 10)
	for i := range w {
		w[i] = make([]float64, 10)
		for j := range w[i] {
			w[i][j] = rng.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(w)
	}
}
