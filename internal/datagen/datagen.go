// Package datagen synthesizes the dirty, heterogeneous, duplicate-
// ridden data HumMer's scenarios describe (§1 of the paper: catalog
// integration, online data cleansing, tsunami/crisis records), with
// ground truth attached so that experiments can score precision and
// recall — something the original live demo could not do.
//
// The generators are deterministic for a given seed.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"hummer/internal/relation"
	"hummer/internal/schema"
	"hummer/internal/value"
)

// Entity is one clean real-world object with canonical field values.
type Entity struct {
	// ID is the ground-truth identity.
	ID int
	// Fields maps canonical attribute names to clean values.
	Fields map[string]value.Value
}

// Domain generates clean entities of one kind.
type Domain struct {
	// Name labels the domain ("person", "cd", "crisis").
	Name string
	// Attributes are the canonical attribute names in order.
	Attributes []string
	// generate fills the fields of entity i.
	generate func(rng *rand.Rand, i int) map[string]value.Value
}

// Generate produces n clean entities.
func (d *Domain) Generate(seed int64, n int) []Entity {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Entity, n)
	for i := range out {
		out[i] = Entity{ID: i, Fields: d.generate(rng, i)}
	}
	return out
}

var (
	firstNames = []string{
		"Jonathan", "Maria", "Wei", "Aisha", "Peter", "Lena", "Anan",
		"Somchai", "Fatima", "Carlos", "Yuki", "Olga", "Samuel", "Ingrid",
		"Rajesh", "Chloe", "Mehmet", "Astrid", "Kofi", "Elena", "Hiroshi",
		"Amara", "Viktor", "Sofia", "Tariq", "Greta", "Nikolai", "Priya",
	}
	lastNames = []string{
		"Smith", "Garcia", "Chen", "Khan", "Schulz", "Fischer", "Chaiyasit",
		"Woranut", "Hassan", "Mendoza", "Tanaka", "Petrova", "Okafor",
		"Larsen", "Patel", "Dubois", "Yilmaz", "Berg", "Mensah", "Rossi",
		"Yamamoto", "Diallo", "Ivanov", "Almeida", "Aziz", "Lindgren",
	}
	cities = []string{
		"Berlin", "Hamburg", "Munich", "Cologne", "Dresden", "Stuttgart",
		"Phuket", "Banda Aceh", "Colombo", "Chennai", "Oslo", "Trondheim",
	}
	artists = []string{
		"The Beatles", "Miles Davis", "Glenn Gould", "Nina Simone",
		"Johnny Cash", "Ella Fitzgerald", "Bob Dylan", "Aretha Franklin",
		"John Coltrane", "Joni Mitchell", "Herbert von Karajan", "Billie Holiday",
	}
	albumWords = []string{
		"Blue", "Road", "Live", "Sessions", "Gold", "Night", "Dawn",
		"Variations", "Concert", "Songs", "Portrait", "Legacy", "Echoes",
	}
	labels   = []string{"EMI", "Columbia", "Decca", "Verve", "Blue Note", "Deutsche Grammophon"}
	statuses = []string{"missing", "hospital", "safe", "deceased", "evacuated"}
	camps    = []string{"Camp North", "Camp South", "Relief Station 3", "Field Hospital A", "School Shelter"}
)

// Persons is the person-records domain (cleansing scenario).
var Persons = &Domain{
	Name:       "person",
	Attributes: []string{"Name", "Age", "City", "Email", "Phone"},
	generate: func(rng *rand.Rand, i int) map[string]value.Value {
		first := firstNames[rng.Intn(len(firstNames))]
		last := lastNames[rng.Intn(len(lastNames))]
		name := first + " " + last
		email := strings.ToLower(first) + "." + strings.ToLower(last) +
			fmt.Sprintf("%d@example.com", i)
		return map[string]value.Value{
			"Name":  value.NewString(name),
			"Age":   value.NewInt(int64(18 + rng.Intn(60))),
			"City":  value.NewString(cities[rng.Intn(len(cities))]),
			"Email": value.NewString(email),
			"Phone": value.NewString(fmt.Sprintf("0%d-%06d", 30+rng.Intn(60), rng.Intn(1000000))),
		}
	},
}

// CDs is the CD-catalog domain (shopping-agent scenario).
var CDs = &Domain{
	Name:       "cd",
	Attributes: []string{"Artist", "Title", "Year", "Price", "Label", "Tracks"},
	generate: func(rng *rand.Rand, i int) map[string]value.Value {
		title := albumWords[rng.Intn(len(albumWords))] + " " +
			albumWords[rng.Intn(len(albumWords))] + fmt.Sprintf(" %d", i)
		return map[string]value.Value{
			"Artist": value.NewString(artists[rng.Intn(len(artists))]),
			"Title":  value.NewString(title),
			"Year":   value.NewInt(int64(1955 + rng.Intn(50))),
			"Price":  value.NewFloat(float64(499+rng.Intn(2000)) / 100),
			"Label":  value.NewString(labels[rng.Intn(len(labels))]),
			"Tracks": value.NewInt(int64(8 + rng.Intn(16))),
		}
	},
}

// Crisis is the disaster-records domain (tsunami scenario).
var Crisis = &Domain{
	Name:       "crisis",
	Attributes: []string{"Name", "Status", "Location", "Reported", "Shelter"},
	generate: func(rng *rand.Rand, i int) map[string]value.Value {
		first := firstNames[rng.Intn(len(firstNames))]
		last := lastNames[rng.Intn(len(lastNames))]
		day := 1 + rng.Intn(28)
		return map[string]value.Value{
			"Name":     value.NewString(first + " " + last),
			"Status":   value.NewString(statuses[rng.Intn(len(statuses))]),
			"Location": value.NewString(cities[rng.Intn(len(cities))]),
			"Reported": value.NewString(fmt.Sprintf("2005-01-%02d", day)),
			"Shelter":  value.NewString(camps[rng.Intn(len(camps))]),
		}
	},
}

// SourceSpec describes one dirty observation of a set of entities: a
// data source with its own schema labels, coverage and error profile.
type SourceSpec struct {
	// Alias names the source.
	Alias string
	// Renames maps canonical attribute names to this source's labels
	// (schematic heterogeneity). Unmapped attributes keep their name.
	Renames map[string]string
	// DropAttrs lists canonical attributes this source does not store
	// (different levels of detail).
	DropAttrs []string
	// Coverage is the fraction of entities this source observes.
	// Zero means 1.0.
	Coverage float64
	// TypoRate is the per-string-cell probability of a typo.
	TypoRate float64
	// NullRate is the per-cell probability of a missing value.
	NullRate float64
	// NumericNoise perturbs numeric cells by ±(noise·value) with the
	// given probability... interpreted as probability; the magnitude
	// is a few percent (conflicting values at different accuracy).
	NumericNoise float64
	// Seed makes the source's dirt deterministic.
	Seed int64
}

// Observation is a generated relation plus its ground truth.
type Observation struct {
	// Rel is the dirty relation.
	Rel *relation.Relation
	// EntityIDs gives the true entity of each row.
	EntityIDs []int
}

// Observe produces a dirty view of the entities according to spec.
// Attribute order follows the domain, with renames applied.
func Observe(d *Domain, entities []Entity, spec SourceSpec) *Observation {
	rng := rand.New(rand.NewSource(spec.Seed))
	coverage := spec.Coverage
	if coverage <= 0 {
		coverage = 1
	}
	dropped := map[string]bool{}
	for _, a := range spec.DropAttrs {
		dropped[a] = true
	}
	var cols []string
	var canonical []string
	for _, a := range d.Attributes {
		if dropped[a] {
			continue
		}
		canonical = append(canonical, a)
		if r, ok := spec.Renames[a]; ok {
			cols = append(cols, r)
		} else {
			cols = append(cols, a)
		}
	}
	rel := relation.New(spec.Alias, mustSchema(cols))
	obs := &Observation{Rel: rel}
	for _, e := range entities {
		if rng.Float64() >= coverage {
			continue
		}
		row := make(relation.Row, len(canonical))
		for i, a := range canonical {
			row[i] = dirty(rng, e.Fields[a], spec)
		}
		rel.MustAppend(row)
		obs.EntityIDs = append(obs.EntityIDs, e.ID)
	}
	return obs
}

// ObserveShuffled is Observe with the rows in random order (sources
// rarely agree on order; duplicate discovery must not rely on it).
func ObserveShuffled(d *Domain, entities []Entity, spec SourceSpec) *Observation {
	obs := Observe(d, entities, spec)
	rng := rand.New(rand.NewSource(spec.Seed + 7919))
	n := obs.Rel.Len()
	perm := rng.Perm(n)
	shuffled := relation.New(obs.Rel.Name(), obs.Rel.Schema())
	ids := make([]int, n)
	for to, from := range perm {
		shuffled.MustAppend(obs.Rel.Row(from))
		ids[to] = obs.EntityIDs[from]
	}
	return &Observation{Rel: shuffled, EntityIDs: ids}
}

// DirtyTable generates a single relation where each entity appears
// dupesPer times with independent dirt — the duplicate-detection
// workload (experiments E5/E6). Ground truth clusters are returned as
// per-row entity ids.
func DirtyTable(d *Domain, entities []Entity, dupesPer int, spec SourceSpec) *Observation {
	rel := relation.New(spec.Alias, mustSchema(visibleCols(d, spec)))
	obs := &Observation{Rel: rel}
	for rep := 0; rep < dupesPer; rep++ {
		repSpec := spec
		repSpec.Seed = spec.Seed + int64(rep)*104729
		o := Observe(d, entities, repSpec)
		for i := 0; i < o.Rel.Len(); i++ {
			rel.MustAppend(o.Rel.Row(i))
			obs.EntityIDs = append(obs.EntityIDs, o.EntityIDs[i])
		}
	}
	return obs
}

func visibleCols(d *Domain, spec SourceSpec) []string {
	dropped := map[string]bool{}
	for _, a := range spec.DropAttrs {
		dropped[a] = true
	}
	var cols []string
	for _, a := range d.Attributes {
		if dropped[a] {
			continue
		}
		if r, ok := spec.Renames[a]; ok {
			cols = append(cols, r)
		} else {
			cols = append(cols, a)
		}
	}
	return cols
}

func mustSchema(cols []string) *schema.Schema {
	return schema.FromNames(cols...)
}

// dirty applies the spec's error profile to one clean value.
func dirty(rng *rand.Rand, v value.Value, spec SourceSpec) value.Value {
	if v.IsNull() {
		return v
	}
	if rng.Float64() < spec.NullRate {
		return value.Null
	}
	switch v.Kind() {
	case value.KindString:
		if rng.Float64() < spec.TypoRate {
			return value.NewString(Typo(rng, v.Str()))
		}
	case value.KindInt:
		if rng.Float64() < spec.NumericNoise {
			delta := int64(1 + rng.Intn(2))
			if rng.Intn(2) == 0 {
				delta = -delta
			}
			return value.NewInt(v.Int() + delta)
		}
	case value.KindFloat:
		if rng.Float64() < spec.NumericNoise {
			factor := 1 + (rng.Float64()-0.5)*0.06 // ±3%
			return value.NewFloat(float64(int(v.Float()*factor*100)) / 100)
		}
	}
	return v
}

// Typo injects one random character-level error: transposition,
// deletion, substitution or duplication.
func Typo(rng *rand.Rand, s string) string {
	runes := []rune(s)
	if len(runes) < 2 {
		return s + "x"
	}
	i := rng.Intn(len(runes) - 1)
	switch rng.Intn(4) {
	case 0: // transpose
		runes[i], runes[i+1] = runes[i+1], runes[i]
		return string(runes)
	case 1: // delete
		return string(append(runes[:i], runes[i+1:]...))
	case 2: // substitute
		runes[i] = rune('a' + rng.Intn(26))
		return string(runes)
	default: // duplicate
		out := make([]rune, 0, len(runes)+1)
		out = append(out, runes[:i+1]...)
		out = append(out, runes[i])
		out = append(out, runes[i+1:]...)
		return string(out)
	}
}
