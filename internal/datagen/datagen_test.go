package datagen

import (
	"math/rand"
	"testing"

	"hummer/internal/value"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Persons.Generate(42, 10)
	b := Persons.Generate(42, 10)
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("entity counts %d/%d", len(a), len(b))
	}
	for i := range a {
		for _, attr := range Persons.Attributes {
			if !a[i].Fields[attr].Equal(b[i].Fields[attr]) {
				t.Fatalf("entity %d attr %s differs across same-seed runs", i, attr)
			}
		}
	}
	c := Persons.Generate(43, 10)
	same := true
	for i := range a {
		if !a[i].Fields["Name"].Equal(c[i].Fields["Name"]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical names")
	}
}

func TestDomainsProduceAllAttributes(t *testing.T) {
	for _, d := range []*Domain{Persons, CDs, Crisis} {
		ents := d.Generate(1, 5)
		for _, e := range ents {
			for _, a := range d.Attributes {
				if _, ok := e.Fields[a]; !ok {
					t.Errorf("%s: entity missing attribute %q", d.Name, a)
				}
			}
		}
	}
}

func TestObserveCleanSpec(t *testing.T) {
	ents := Persons.Generate(1, 20)
	obs := Observe(Persons, ents, SourceSpec{Alias: "s", Seed: 1})
	if obs.Rel.Len() != 20 {
		t.Fatalf("rows = %d, want all 20 at full coverage", obs.Rel.Len())
	}
	if len(obs.EntityIDs) != obs.Rel.Len() {
		t.Fatal("entity ids not aligned")
	}
	// Clean spec: values match the canonical entity fields.
	for i := 0; i < obs.Rel.Len(); i++ {
		e := ents[obs.EntityIDs[i]]
		if got := obs.Rel.Value(i, "Name"); !got.Equal(e.Fields["Name"]) {
			t.Errorf("row %d name = %v, want %v", i, got, e.Fields["Name"])
		}
	}
}

func TestObserveRenamesAndDrops(t *testing.T) {
	ents := Persons.Generate(1, 5)
	obs := Observe(Persons, ents, SourceSpec{
		Alias:     "s",
		Renames:   map[string]string{"Name": "FullName", "City": "Town"},
		DropAttrs: []string{"Phone"},
		Seed:      1,
	})
	s := obs.Rel.Schema()
	if !s.Has("FullName") || !s.Has("Town") {
		t.Errorf("renames not applied: %v", s.Names())
	}
	if s.Has("Name") || s.Has("City") || s.Has("Phone") {
		t.Errorf("old/dropped columns present: %v", s.Names())
	}
}

func TestObserveCoverage(t *testing.T) {
	ents := Persons.Generate(1, 200)
	obs := Observe(Persons, ents, SourceSpec{Alias: "s", Coverage: 0.5, Seed: 1})
	if obs.Rel.Len() < 60 || obs.Rel.Len() > 140 {
		t.Errorf("coverage 0.5 over 200 gave %d rows", obs.Rel.Len())
	}
}

func TestObserveNullRate(t *testing.T) {
	ents := Persons.Generate(1, 100)
	obs := Observe(Persons, ents, SourceSpec{Alias: "s", NullRate: 0.3, Seed: 1})
	nulls := 0
	total := 0
	for i := 0; i < obs.Rel.Len(); i++ {
		for _, v := range obs.Rel.Row(i) {
			total++
			if v.IsNull() {
				nulls++
			}
		}
	}
	frac := float64(nulls) / float64(total)
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("null fraction = %g, want ≈0.3", frac)
	}
}

func TestObserveTypoRateChangesStrings(t *testing.T) {
	ents := Persons.Generate(1, 100)
	obs := Observe(Persons, ents, SourceSpec{Alias: "s", TypoRate: 1.0, Seed: 1})
	changed := 0
	for i := 0; i < obs.Rel.Len(); i++ {
		e := ents[obs.EntityIDs[i]]
		if obs.Rel.Value(i, "Name").Text() != e.Fields["Name"].Text() {
			changed++
		}
	}
	if changed < 90 {
		t.Errorf("typo rate 1.0 changed only %d/100 names", changed)
	}
}

func TestObserveShuffledPreservesAlignment(t *testing.T) {
	ents := Persons.Generate(1, 50)
	obs := ObserveShuffled(Persons, ents, SourceSpec{Alias: "s", Seed: 3})
	if obs.Rel.Len() != 50 {
		t.Fatalf("rows = %d", obs.Rel.Len())
	}
	for i := 0; i < obs.Rel.Len(); i++ {
		e := ents[obs.EntityIDs[i]]
		if got := obs.Rel.Value(i, "Email"); !got.Equal(e.Fields["Email"]) {
			t.Fatalf("row %d misaligned after shuffle", i)
		}
	}
}

func TestDirtyTableGroundTruth(t *testing.T) {
	ents := Persons.Generate(1, 30)
	obs := DirtyTable(Persons, ents, 3, SourceSpec{Alias: "t", TypoRate: 0.2, Seed: 5})
	if obs.Rel.Len() != 90 {
		t.Fatalf("rows = %d, want 30×3", obs.Rel.Len())
	}
	counts := map[int]int{}
	for _, id := range obs.EntityIDs {
		counts[id]++
	}
	for id, c := range counts {
		if c != 3 {
			t.Errorf("entity %d appears %d times, want 3", id, c)
		}
	}
}

func TestTypoAlwaysChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		s := "Jonathan Smith"
		mutated := Typo(rng, s)
		if mutated == s {
			// A substitution can pick the same rune; run a few more
			// trials before calling it broken.
			continue
		}
		return
	}
	t.Error("200 typo attempts never changed the string")
}

func TestTypoShortStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := Typo(rng, "a"); got == "a" {
		t.Errorf("single-char typo = %q", got)
	}
	if got := Typo(rng, ""); got == "" {
		t.Errorf("empty typo = %q", got)
	}
}

func TestNumericNoise(t *testing.T) {
	ents := CDs.Generate(1, 100)
	obs := Observe(CDs, ents, SourceSpec{Alias: "s", NumericNoise: 1.0, Seed: 2})
	changedYears := 0
	for i := 0; i < obs.Rel.Len(); i++ {
		e := ents[obs.EntityIDs[i]]
		y := obs.Rel.Value(i, "Year")
		if !y.IsNull() && !y.Equal(e.Fields["Year"]) {
			changedYears++
			diff := y.Int() - e.Fields["Year"].Int()
			if diff < -2 || diff > 2 || diff == 0 {
				t.Errorf("year noise %d out of ±2", diff)
			}
		}
	}
	if changedYears < 80 {
		t.Errorf("noise 1.0 changed only %d/100 years", changedYears)
	}
}

func TestDirtyNullStaysNull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := dirty(rng, value.Null, SourceSpec{TypoRate: 1}); !got.IsNull() {
		t.Error("NULL must stay NULL")
	}
}
