package value

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
	if v.Kind() != KindNull {
		t.Fatalf("zero Value kind = %v, want KindNull", v.Kind())
	}
	if !v.Equal(Null) {
		t.Fatal("zero Value must equal Null")
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if got := NewString("abc").Str(); got != "abc" {
		t.Errorf("Str() = %q", got)
	}
	if got := NewInt(-42).Int(); got != -42 {
		t.Errorf("Int() = %d", got)
	}
	if got := NewFloat(2.5).Float(); got != 2.5 {
		t.Errorf("Float() = %g", got)
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool() round trip failed")
	}
	now := time.Date(2005, 8, 30, 12, 0, 0, 0, time.UTC)
	if got := NewTime(now).Time(); !got.Equal(now) {
		t.Errorf("Time() = %v, want %v", got, now)
	}
}

func TestAccessorPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic accessing Int as Str")
		}
	}()
	_ = NewInt(1).Str()
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindString: "STRING", KindInt: "INT",
		KindFloat: "FLOAT", KindBool: "BOOL", KindTime: "TIME",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestCrossNumericEquality(t *testing.T) {
	if !NewInt(3).Equal(NewFloat(3.0)) {
		t.Error("3 must equal 3.0")
	}
	if NewInt(3).Equal(NewFloat(3.5)) {
		t.Error("3 must not equal 3.5")
	}
	if NewInt(3).Equal(NewString("3")) {
		t.Error("3 must not equal \"3\"")
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null, Null, 0},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewFloat(1.5), NewInt(2), -1},
		{NewInt(2), NewFloat(1.5), 1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{NewTime(time.Unix(1, 0)), NewTime(time.Unix(2, 0)), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareIsAntisymmetric(t *testing.T) {
	err := quick.Check(func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		return va.Compare(vb) == -vb.Compare(va)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(7), NewFloat(7.0)},
		{NewString("x"), NewString("x")},
		{Null, Null},
		{NewBool(true), NewBool(true)},
	}
	for _, p := range pairs {
		if !p[0].Equal(p[1]) {
			t.Fatalf("precondition: %v != %v", p[0], p[1])
		}
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("Hash(%v) != Hash(%v) for equal values", p[0], p[1])
		}
	}
}

func TestHashDistinguishesKinds(t *testing.T) {
	// "3" (string) and 3 (int) are not equal, so ideally hash apart.
	if NewString("3").Hash() == NewInt(3).Hash() {
		t.Error("string \"3\" and int 3 hash identically (weak but suspicious)")
	}
}

func TestHashQuickStrings(t *testing.T) {
	err := quick.Check(func(s string) bool {
		return NewString(s).Hash() == NewString(s).Hash()
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"", Null},
		{"  ", Null},
		{"null", Null},
		{"N/A", Null},
		{"-", Null},
		{"42", NewInt(42)},
		{"-7", NewInt(-7)},
		{"3.14", NewFloat(3.14)},
		{"true", NewBool(true)},
		{"False", NewBool(false)},
		{"hello world", NewString("hello world")},
		{"2005-08-30", NewTime(time.Date(2005, 8, 30, 0, 0, 0, 0, time.UTC))},
		{"2005-08-30 13:45:00", NewTime(time.Date(2005, 8, 30, 13, 45, 0, 0, time.UTC))},
	}
	for _, c := range cases {
		if got := Parse(c.in); !got.Equal(c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("Parse(%q) = %v (%v), want %v (%v)", c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestParseDoesNotAcceptInfNaN(t *testing.T) {
	for _, s := range []string{"inf", "Inf", "NaN", "nan"} {
		if got := Parse(s); got.Kind() == KindFloat {
			t.Errorf("Parse(%q) produced a float; want string or null", s)
		}
	}
}

func TestTextRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, ""},
		{NewString("s"), "s"},
		{NewInt(10), "10"},
		{NewFloat(0.5), "0.5"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.Text(); got != c.want {
			t.Errorf("Text(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	if Null.String() != "NULL" {
		t.Errorf("Null.String() = %q, want NULL", Null.String())
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	err := quick.Check(func(i int64) bool {
		v := NewInt(i)
		return Parse(v.Text()).Equal(v)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestCoerce(t *testing.T) {
	if v, ok := Coerce(NewInt(3), KindFloat); !ok || v.Float() != 3.0 {
		t.Error("int→float coercion failed")
	}
	if v, ok := Coerce(NewFloat(3.0), KindInt); !ok || v.Int() != 3 {
		t.Error("integral float→int coercion failed")
	}
	if _, ok := Coerce(NewFloat(3.5), KindInt); ok {
		t.Error("3.5→int must fail")
	}
	if v, ok := Coerce(NewInt(9), KindString); !ok || v.Str() != "9" {
		t.Error("int→string coercion failed")
	}
	if v, ok := Coerce(Null, KindInt); !ok || !v.IsNull() {
		t.Error("NULL must coerce to anything, staying NULL")
	}
	if v, ok := Coerce(NewString("2005-08-30"), KindTime); !ok || v.Kind() != KindTime {
		t.Error("string→time coercion failed")
	}
	if _, ok := Coerce(NewBool(true), KindTime); ok {
		t.Error("bool→time must fail")
	}
}

func TestAsFloat(t *testing.T) {
	if f, ok := NewInt(4).AsFloat(); !ok || f != 4 {
		t.Error("AsFloat(int) failed")
	}
	if f, ok := NewFloat(2.5).AsFloat(); !ok || f != 2.5 {
		t.Error("AsFloat(float) failed")
	}
	if _, ok := NewString("x").AsFloat(); ok {
		t.Error("AsFloat(string) must fail")
	}
	if _, ok := Null.AsFloat(); ok {
		t.Error("AsFloat(NULL) must fail")
	}
}

func TestCompareTransitivityQuick(t *testing.T) {
	// For a random triple of floats, Compare must be transitive.
	err := quick.Check(func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		va, vb, vc := NewFloat(a), NewFloat(b), NewFloat(c)
		if va.Compare(vb) <= 0 && vb.Compare(vc) <= 0 {
			return va.Compare(vc) <= 0
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
