// Package value defines the typed value model used throughout HumMer.
//
// A Value is a dynamically typed scalar: NULL, string, int64, float64,
// bool, or time.Time. Relations store Values; expressions, similarity
// measures, and conflict-resolution functions operate on them.
//
// The zero Value is NULL. Values are immutable once constructed.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// The supported kinds. KindNull is the zero Kind so that the zero Value
// is NULL, matching SQL semantics for missing data.
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
	KindTime
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindString:
		return "STRING"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindBool:
		return "BOOL"
	case KindTime:
		return "TIME"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// TimeLayout is the canonical textual layout for KindTime values.
// It matches ISO-8601 dates with optional time component on parse.
const TimeLayout = "2006-01-02 15:04:05"

// Value is a dynamically typed scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	s    string
	i    int64 // also stores bool (0/1) and time (UnixNano)
	f    float64
}

// Null is the NULL value.
var Null = Value{}

// NewString returns a string Value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewInt returns an integer Value.
func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

// NewFloat returns a float Value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, f: f} }

// NewBool returns a boolean Value.
func NewBool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewTime returns a time Value, truncated to nanosecond UTC.
func NewTime(t time.Time) Value {
	return Value{kind: KindTime, i: t.UTC().UnixNano()}
}

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload. It panics if v is not a string;
// callers must check Kind first.
func (v Value) Str() string {
	v.mustBe(KindString)
	return v.s
}

// Int returns the integer payload.
func (v Value) Int() int64 {
	v.mustBe(KindInt)
	return v.i
}

// Float returns the float payload.
func (v Value) Float() float64 {
	v.mustBe(KindFloat)
	return v.f
}

// Bool returns the boolean payload.
func (v Value) Bool() bool {
	v.mustBe(KindBool)
	return v.i != 0
}

// Time returns the time payload in UTC.
func (v Value) Time() time.Time {
	v.mustBe(KindTime)
	return time.Unix(0, v.i).UTC()
}

func (v Value) mustBe(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("value: %s accessed as %s", v.kind, k))
	}
}

// IsNumeric reports whether v is an INT or FLOAT.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// AsFloat returns a float64 view of a numeric Value and true, or 0 and
// false when v is not numeric.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// String renders the value for display. NULL renders as the empty
// string's SQL spelling "NULL"; use Text for data-oriented rendering.
func (v Value) String() string {
	if v.kind == KindNull {
		return "NULL"
	}
	return v.Text()
}

// Text renders the value's data content. NULL renders as "".
func (v Value) Text() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindTime:
		return v.Time().Format(TimeLayout)
	default:
		return ""
	}
}

// Equal reports deep equality. NULL equals only NULL (this is identity
// equality used for grouping, not SQL three-valued logic; expression
// evaluation handles SQL NULL semantics separately).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		// Allow cross-numeric equality: 3 == 3.0.
		if v.IsNumeric() && o.IsNumeric() {
			a, _ := v.AsFloat()
			b, _ := o.AsFloat()
			return a == b
		}
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return v.s == o.s
	case KindFloat:
		return v.f == o.f
	default:
		return v.i == o.i
	}
}

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o.
// NULL sorts before everything. Values of different non-numeric kinds
// order by kind to give a stable total order.
func (v Value) Compare(o Value) int {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == o.kind:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, o.s)
	case KindBool, KindTime:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// Hash returns a 64-bit hash of the value, consistent with Equal:
// cross-numeric equal values hash identically (via the float64 image).
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	mix8 := func(x uint64) {
		for s := 0; s < 64; s += 8 {
			mix(byte(x >> s))
		}
	}
	switch v.kind {
	case KindNull:
		mix(0)
	case KindString:
		mix(1)
		for i := 0; i < len(v.s); i++ {
			mix(v.s[i])
		}
	case KindInt, KindFloat:
		mix(2)
		f, _ := v.AsFloat()
		mix8(math.Float64bits(f))
	case KindBool:
		mix(3)
		mix8(uint64(v.i))
	case KindTime:
		mix(4)
		mix8(uint64(v.i))
	}
	return h
}

// Parse converts a raw text field (e.g. from a CSV cell) into the most
// specific Value it represents: empty string → NULL, then int, float,
// bool, time, otherwise string. This is the loader-side type inference
// HumMer's "transform to relational form" step performs.
func Parse(raw string) Value {
	s := strings.TrimSpace(raw)
	if s == "" {
		return Null
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return NewInt(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil && !math.IsInf(f, 0) && !math.IsNaN(f) {
		return NewFloat(f)
	}
	switch strings.ToLower(s) {
	case "true":
		return NewBool(true)
	case "false":
		return NewBool(false)
	case "null", "nil", "n/a", "na", "-":
		return Null
	}
	if t, ok := ParseTime(s); ok {
		return NewTime(t)
	}
	return NewString(s)
}

// timeLayouts are the textual formats accepted by ParseTime, most
// specific first.
var timeLayouts = []string{
	TimeLayout,
	time.RFC3339,
	"2006-01-02T15:04:05",
	"2006-01-02",
	"02.01.2006",
	"01/02/2006",
}

// ParseTime parses s against the accepted time layouts.
func ParseTime(s string) (time.Time, bool) {
	for _, layout := range timeLayouts {
		if t, err := time.Parse(layout, s); err == nil {
			return t, true
		}
	}
	return time.Time{}, false
}

// Coerce converts v to kind k if a lossless or conventional conversion
// exists. It returns v unchanged when v already has kind k or is NULL,
// and ok=false when no conversion applies.
func Coerce(v Value, k Kind) (Value, bool) {
	if v.kind == k || v.kind == KindNull {
		return v, true
	}
	switch k {
	case KindString:
		return NewString(v.Text()), true
	case KindFloat:
		if f, ok := v.AsFloat(); ok {
			return NewFloat(f), true
		}
	case KindInt:
		if v.kind == KindFloat && v.f == math.Trunc(v.f) {
			return NewInt(int64(v.f)), true
		}
	case KindTime:
		if v.kind == KindString {
			if t, ok := ParseTime(v.s); ok {
				return NewTime(t), true
			}
		}
	}
	return v, false
}
