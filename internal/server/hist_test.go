package server

import (
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestLatencyHistObserveAndQuantile: observations land in the right
// buckets and the interpolated percentiles bracket the true values at
// bucket resolution.
func TestLatencyHistObserveAndQuantile(t *testing.T) {
	var h latencyHist
	// 100 observations at ~2ms: all in the (0.001, 0.0025] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(2 * time.Millisecond)
	}
	s := h.snapshot()
	if s.count != 100 {
		t.Fatalf("count = %d, want 100", s.count)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := s.quantile(q)
		if got <= 0.001 || got > 0.0025 {
			t.Errorf("quantile(%v) = %v, want in (0.001, 0.0025]", q, got)
		}
	}

	// A bimodal distribution: p50 in the low mode, p99 in the high one.
	var h2 latencyHist
	for i := 0; i < 90; i++ {
		h2.Observe(2 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(700 * time.Millisecond)
	}
	s2 := h2.snapshot()
	if p50 := s2.quantile(0.50); p50 > 0.0025 {
		t.Errorf("p50 = %v, want <= 0.0025", p50)
	}
	if p99 := s2.quantile(0.99); p99 <= 0.5 || p99 > 1 {
		t.Errorf("p99 = %v, want in (0.5, 1]", p99)
	}

	// Beyond the last bound: quantile floors at the largest finite
	// bound rather than inventing a value.
	var h3 latencyHist
	h3.Observe(5 * time.Minute)
	if got := h3.snapshot().quantile(0.5); got != latencyBucketBounds[len(latencyBucketBounds)-1] {
		t.Errorf("overflow quantile = %v, want %v", got, latencyBucketBounds[len(latencyBucketBounds)-1])
	}

	// Empty histogram.
	var h4 latencyHist
	if got := h4.snapshot().quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

// TestLatencyHistConcurrent: Observe races cleanly and the snapshot's
// +Inf total always equals the bucket sum (the invariant Prometheus
// scrapers rely on).
func TestLatencyHistConcurrent(t *testing.T) {
	var h latencyHist
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w+1) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.snapshot()
	if s.count != workers*per {
		t.Fatalf("count = %d, want %d", s.count, workers*per)
	}
	var sum uint64
	for _, n := range s.buckets {
		sum += n
	}
	if sum != s.count {
		t.Fatalf("bucket sum %d != count %d", sum, s.count)
	}
}

// TestStatsLatencyPercentiles: /v1/stats carries per-class percentile
// summaries that reconcile with the query traffic.
func TestStatsLatencyPercentiles(t *testing.T) {
	ts := newTestServer(t)
	registerStudents(t, ts)

	for i := 0; i < 3; i++ {
		if status, body := doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery}); status != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, status, body)
		}
	}
	if status, body := doJSON(t, ts, http.MethodPost, "/v1/query/stream",
		streamRequest{queryRequest: queryRequest{SQL: "SELECT Name FROM EE_Student"}}); status != http.StatusOK {
		t.Fatalf("stream: %d %s", status, body)
	}
	if status, body := doJSON(t, ts, http.MethodPost, "/v1/batch",
		batchRequest{Statements: []string{"SELECT Name FROM EE_Student", "SELECT FullName FROM CS_Students"}}); status != http.StatusOK {
		t.Fatalf("batch: %d %s", status, body)
	}

	status, body := doJSON(t, ts, http.MethodGet, "/v1/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	var st struct {
		Latency map[string]LatencySummary `json:"latency"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{"query": 3, "stream": 1, "batch": 2}
	for class, n := range want {
		sum, ok := st.Latency[class]
		if !ok {
			t.Fatalf("stats latency missing class %q: %s", class, body)
		}
		if sum.Count != n {
			t.Errorf("latency[%q].count = %d, want %d", class, sum.Count, n)
		}
		if sum.Count > 0 {
			if sum.P50Seconds <= 0 || sum.P99Seconds < sum.P95Seconds || sum.P95Seconds < sum.P50Seconds ||
				math.IsNaN(sum.P50Seconds) {
				t.Errorf("latency[%q] percentiles not monotone/positive: %+v", class, sum)
			}
		}
	}
}
