package server

import (
	"net/http"
	"strconv"
	"time"

	"hummer/internal/obs"
)

// tracedPath reports whether requests to path get a per-query span
// trace. Only query-shaped work is traced: admin and metrics endpoints
// have no pipeline phases worth a span tree, and tracing them would
// churn the ring.
func tracedPath(path string) bool {
	switch path {
	case "/v1/query", "/v1/query/stream", "/v1/batch":
		return true
	}
	return false
}

// maxTraceLimit caps how many traces one GET /v1/trace returns; the
// ring itself is the real bound, this just rejects absurd asks.
const maxTraceLimit = 1024

// traceListResponse is the GET /v1/trace body.
type traceListResponse struct {
	Traces []*obs.TraceView `json:"traces"`
}

// handleTrace serves the most recent query traces, newest first.
// ?limit=N trims the list; ?id=<request id> returns just that trace
// (404 when it has already been evicted from the ring).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 || n > maxTraceLimit {
			writeError(w, http.StatusBadRequest, "limit must be an integer in [0,%d]: %q", maxTraceLimit, raw)
			return
		}
		limit = n
	}
	views := s.ring.Snapshot(limit)
	if views == nil {
		views = []*obs.TraceView{}
	}
	if id := r.URL.Query().Get("id"); id != "" {
		for _, v := range views {
			if v.TraceID == id {
				writeJSON(w, http.StatusOK, traceListResponse{Traces: []*obs.TraceView{v}})
				return
			}
		}
		writeError(w, http.StatusNotFound, "no trace %q in the ring (kept: last %d)", id, s.ringSize)
		return
	}
	writeJSON(w, http.StatusOK, traceListResponse{Traces: views})
}

// recordTrace runs after a traced request finishes: feeds the phase
// histograms and, when the query was slow enough, logs the full span
// tree. Called from the handler's deferred function, so the span tree
// is quiescent.
func (s *Server) recordTrace(r *http.Request, tr *obs.Trace) {
	v := tr.View()
	s.observePhases(v.Root)
	s.logSlowQuery(r, v)
}

// observePhases walks the span tree and records every span's duration
// into its phase histogram. The root span is skipped: its name is the
// request path (unbounded-ish label cardinality) and its duration is
// already covered by hummer_query_duration_seconds.
func (s *Server) observePhases(root *obs.SpanView) {
	var walk func(sv *obs.SpanView)
	walk = func(sv *obs.SpanView) {
		s.phaseHist(sv.Name).Observe(time.Duration(sv.DurationSeconds * float64(time.Second)))
		for _, child := range sv.Children {
			walk(child)
		}
	}
	for _, child := range root.Children {
		walk(child)
	}
}

// phaseHist returns the histogram for one phase name, creating it on
// first use. Phase names come from the fixed vocabulary compiled into
// the pipeline, so the map stays small.
func (s *Server) phaseHist(name string) *latencyHist {
	s.phaseMu.Lock()
	defer s.phaseMu.Unlock()
	h := s.phases[name]
	if h == nil {
		h = &latencyHist{}
		s.phases[name] = h
	}
	return h
}

// phaseSnapshots copies the phase-histogram map under the lock so the
// (slower) snapshotting and rendering run outside it.
func (s *Server) phaseSnapshots() map[string]*latencyHist {
	s.phaseMu.Lock()
	defer s.phaseMu.Unlock()
	out := make(map[string]*latencyHist, len(s.phases))
	for name, h := range s.phases {
		out[name] = h
	}
	return out
}

// logSlowQuery logs the full span tree of a query that crossed the
// slow-query threshold — the one-stop answer to "where did that
// request spend its time" without a second round-trip to /v1/trace.
func (s *Server) logSlowQuery(r *http.Request, v *obs.TraceView) {
	if s.slowQuery <= 0 {
		return
	}
	d := time.Duration(v.DurationSeconds * float64(time.Second))
	if d < s.slowQuery {
		return
	}
	s.logger.Warn("slow query",
		"request_id", v.TraceID,
		"method", r.Method,
		"path", r.URL.Path,
		"duration_seconds", v.DurationSeconds,
		"threshold_seconds", s.slowQuery.Seconds(),
		"trace", v)
}
