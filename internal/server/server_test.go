package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"hummer"
)

// fuseQuery is the paper's running example, §2.1.
const fuseQuery = `SELECT Name, RESOLVE(Age, max)
	FUSE FROM EE_Student, CS_Students
	FUSE BY (Name)
	ORDER BY Name`

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(hummer.New()).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, ts *httptest.Server, method, path string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func registerStudents(t *testing.T, ts *httptest.Server) {
	t.Helper()
	for _, src := range []registerRequest{
		{Alias: "EE_Student", Kind: "inline",
			Columns: []string{"Name", "Age", "City"},
			Rows: [][]string{
				{"Jonathan Smith", "21", "Berlin"},
				{"Maria Garcia", "24", "Hamburg"},
				{"Wei Chen", "21", "Munich"},
				{"Aisha Khan", "23", "Cologne"},
			}},
		{Alias: "CS_Students", Kind: "inline",
			Columns: []string{"FullName", "Semester", "Years", "Town"},
			Rows: [][]string{
				{"Jonathan Smith", "4", "22", "Berlin"},
				{"Wei Chen", "2", "21", "Munich"},
				{"Lena Fischer", "1", "20", "Stuttgart"},
			}},
	} {
		status, body := doJSON(t, ts, http.MethodPost, "/v1/sources", src)
		if status != http.StatusCreated {
			t.Fatalf("register %s: status %d: %s", src.Alias, status, body)
		}
	}
}

// cacheKinds decodes the per-kind cache counters out of /v1/stats.
func cacheKinds(t *testing.T, ts *httptest.Server) map[string]struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Shared uint64 `json:"shared"`
} {
	t.Helper()
	status, body := doJSON(t, ts, http.MethodGet, "/v1/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats: status %d: %s", status, body)
	}
	var stats struct {
		DB struct {
			Cache struct {
				Kinds map[string]struct {
					Hits   uint64 `json:"hits"`
					Misses uint64 `json:"misses"`
					Shared uint64 `json:"shared"`
				} `json:"kinds"`
			} `json:"cache"`
		} `json:"db"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("stats: %v in %s", err, body)
	}
	return stats.DB.Cache.Kinds
}

// TestWarmQuerySkipsRecomputation is the acceptance test of the
// hummerd subsystem: a repeated FUSE BY query must be served from the
// fused-result cache tier — matching, detection, merging and fusion
// all skipped (observable through the stats endpoint: the match and
// detect tiers are never consulted again) — and the warm response
// must be byte-identical to the cold one.
func TestWarmQuerySkipsRecomputation(t *testing.T) {
	ts := newTestServer(t)
	registerStudents(t, ts)

	status, cold := doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery})
	if status != http.StatusOK {
		t.Fatalf("cold query: status %d: %s", status, cold)
	}
	kinds := cacheKinds(t, ts)
	for _, kind := range []string{"plan", "fused", "match", "detect"} {
		ks := kinds[kind]
		if ks.Misses != 1 || ks.Hits != 0 {
			t.Fatalf("cold %s counters = %+v, want exactly 1 miss, 0 hits", kind, ks)
		}
	}

	status, warm := doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery})
	if status != http.StatusOK {
		t.Fatalf("warm query: status %d: %s", status, warm)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm result differs from cold result:\ncold: %s\nwarm: %s", cold, warm)
	}
	kinds = cacheKinds(t, ts)
	for _, kind := range []string{"plan", "fused"} {
		ks := kinds[kind]
		if ks.Misses != 1 {
			t.Errorf("warm %s recomputed: %+v", kind, ks)
		}
		if ks.Hits != 1 {
			t.Errorf("warm %s not served from cache: %+v", kind, ks)
		}
	}
	// The fused tier absorbed the warm query before the per-phase
	// tiers were consulted: match and detect saw exactly the cold run.
	for _, kind := range []string{"match", "detect"} {
		if ks := kinds[kind]; ks.Misses != 1 || ks.Hits != 0 {
			t.Errorf("warm query leaked past the fused tier into %s: %+v", kind, ks)
		}
	}

	// An overlapping query — same sources, different SELECT list —
	// misses the fused tier but must reuse the match and detect
	// artifacts (only the plan and fused result are new).
	overlapping := `SELECT Name, RESOLVE(City, coalesce)
		FUSE FROM EE_Student, CS_Students
		FUSE BY (Name)
		ORDER BY Name`
	status, body := doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: overlapping})
	if status != http.StatusOK {
		t.Fatalf("overlapping query: status %d: %s", status, body)
	}
	kinds = cacheKinds(t, ts)
	if ks := kinds["fused"]; ks.Misses != 2 || ks.Hits != 1 {
		t.Errorf("overlapping query must miss the fused tier: %+v", ks)
	}
	if ks := kinds["match"]; ks.Misses != 1 || ks.Hits != 1 {
		t.Errorf("overlapping query must reuse the match artifact: %+v", ks)
	}
	if ks := kinds["detect"]; ks.Misses != 1 || ks.Hits != 1 {
		t.Errorf("overlapping query must reuse the detect artifact: %+v", ks)
	}
	if ks := kinds["plan"]; ks.Misses != 2 {
		t.Errorf("new statement must parse once: %+v", ks)
	}
}

// TestConcurrentQueriesIdentical fires a burst of identical and mixed
// queries at one server and requires every response to match its
// sequential reference exactly.
func TestConcurrentQueriesIdentical(t *testing.T) {
	ts := newTestServer(t)
	registerStudents(t, ts)

	queries := []string{
		fuseQuery,
		"SELECT Name, RESOLVE(City, coalesce) FUSE FROM EE_Student, CS_Students FUSE BY (Name) ORDER BY Name",
		"SELECT Name FROM EE_Student ORDER BY Name",
	}
	want := make([][]byte, len(queries))
	for i, q := range queries {
		status, body := doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: q})
		if status != http.StatusOK {
			t.Fatalf("reference query %d: status %d: %s", i, status, body)
		}
		want[i] = body
	}

	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(queries))
	for r := 0; r < rounds; r++ {
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q string) {
				defer wg.Done()
				status, body := doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: q})
				if status != http.StatusOK {
					errs <- fmt.Errorf("query %d: status %d: %s", i, status, body)
					return
				}
				if !bytes.Equal(body, want[i]) {
					errs <- fmt.Errorf("query %d: concurrent response differs:\nwant %s\ngot  %s", i, want[i], body)
				}
			}(i, q)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestRegisterConflictAndReplace(t *testing.T) {
	ts := newTestServer(t)
	src := registerRequest{Alias: "t", Kind: "inline", Columns: []string{"A"}, Rows: [][]string{{"1"}}}
	if status, body := doJSON(t, ts, http.MethodPost, "/v1/sources", src); status != http.StatusCreated {
		t.Fatalf("register: status %d: %s", status, body)
	}
	// Idempotent re-registration of equal data.
	if status, body := doJSON(t, ts, http.MethodPost, "/v1/sources", src); status != http.StatusCreated {
		t.Fatalf("idempotent re-register: status %d: %s", status, body)
	}
	// Different data without replace: conflict.
	diff := src
	diff.Rows = [][]string{{"2"}}
	status, body := doJSON(t, ts, http.MethodPost, "/v1/sources", diff)
	if status != http.StatusConflict {
		t.Fatalf("conflicting re-register: status %d, want 409: %s", status, body)
	}
	// With replace: accepted, generation bumped.
	diff.Replace = true
	status, body = doJSON(t, ts, http.MethodPost, "/v1/sources", diff)
	if status != http.StatusCreated {
		t.Fatalf("replace: status %d: %s", status, body)
	}
	var sum hummer.SourceStatus
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Generation != 2 {
		t.Errorf("generation after replace = %d, want 2", sum.Generation)
	}
}

// TestPathSourcesForbiddenByDefault: registering server-local files
// through the API is a file-disclosure vector and must be opt-in.
func TestPathSourcesForbiddenByDefault(t *testing.T) {
	ts := newTestServer(t)
	status, body := doJSON(t, ts, http.MethodPost, "/v1/sources",
		registerRequest{Alias: "leak", Kind: "csv", Path: "/etc/passwd"})
	if status != http.StatusForbidden {
		t.Fatalf("path registration: status %d, want 403: %s", status, body)
	}

	// With the opt-in, path kinds work (a real file this time).
	allowed := httptest.NewServer(New(hummer.New(), AllowPathSources()).Handler())
	t.Cleanup(allowed.Close)
	status, body = doJSON(t, allowed, http.MethodPost, "/v1/sources",
		registerRequest{Alias: "ee", Kind: "csv", Path: "../../examples/serve/ee_students.csv"})
	if status != http.StatusCreated {
		t.Fatalf("opted-in path registration: status %d: %s", status, body)
	}
}

func TestHealthSourcesFunctionsLineage(t *testing.T) {
	ts := newTestServer(t)
	registerStudents(t, ts)

	status, body := doJSON(t, ts, http.MethodGet, "/healthz", nil)
	if status != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Errorf("healthz: %d %s", status, body)
	}

	status, body = doJSON(t, ts, http.MethodGet, "/v1/sources", nil)
	if status != http.StatusOK || !bytes.Contains(body, []byte("CS_Students")) {
		t.Errorf("sources: %d %s", status, body)
	}

	status, body = doJSON(t, ts, http.MethodGet, "/v1/sources/EE_Student?limit=2", nil)
	if status != http.StatusOK {
		t.Fatalf("get source: %d %s", status, body)
	}
	var src sourceResponse
	if err := json.Unmarshal(body, &src); err != nil {
		t.Fatal(err)
	}
	if src.RowCount != 4 || len(src.Rows) != 2 || src.Fingerprint == "" {
		t.Errorf("get source = %+v", src)
	}

	status, body = doJSON(t, ts, http.MethodGet, "/v1/sources/ghost", nil)
	if status != http.StatusNotFound {
		t.Errorf("unknown source: %d %s", status, body)
	}

	status, body = doJSON(t, ts, http.MethodGet, "/v1/functions", nil)
	if status != http.StatusOK || !bytes.Contains(body, []byte("coalesce")) {
		t.Errorf("functions: %d %s", status, body)
	}

	status, body = doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery, Lineage: true})
	if status != http.StatusOK {
		t.Fatalf("lineage query: %d %s", status, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Fusion == nil || qr.Fusion.Correspondences == 0 {
		t.Errorf("fusion summary missing: %s", body)
	}
	if len(qr.Lineage) != qr.RowCount {
		t.Errorf("lineage rows = %d, want %d", len(qr.Lineage), qr.RowCount)
	}
	// Jonathan Smith appears in both sources: his fused Age cell must
	// carry an origin from each.
	foundMixed := false
	for _, row := range qr.Lineage {
		for _, cell := range row {
			if len(cell.Origins) >= 2 {
				foundMixed = true
			}
		}
	}
	if !foundMixed {
		t.Errorf("no fused cell with multi-source lineage: %s", body)
	}
}

func TestQueryErrorsAndPurge(t *testing.T) {
	ts := newTestServer(t)
	registerStudents(t, ts)

	status, body := doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: "SELEKT"})
	if status != http.StatusBadRequest {
		t.Errorf("bad sql: %d %s", status, body)
	}
	status, body = doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{})
	if status != http.StatusBadRequest {
		t.Errorf("empty sql: %d %s", status, body)
	}

	if status, body = doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery}); status != http.StatusOK {
		t.Fatalf("query: %d %s", status, body)
	}
	status, body = doJSON(t, ts, http.MethodDelete, "/v1/cache", nil)
	if status != http.StatusOK {
		t.Fatalf("purge: %d %s", status, body)
	}
	var purged map[string]int
	if err := json.Unmarshal(body, &purged); err != nil {
		t.Fatal(err)
	}
	if purged["purged"] == 0 {
		t.Errorf("expected purged artifacts, got %v", purged)
	}
}
