package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sync"
	"testing"
	"time"

	"hummer/internal/faultinject"
	"hummer/internal/testutil"
)

// chaosSeed fixes the fault schedule: every run of the chaos test
// injects the same faults at the same (site, hit) coordinates. Bump it
// only deliberately — a new seed is a new schedule.
const chaosSeed = 0xC0FFEE

// chaosRequest is one shape of client traffic in the storm.
type chaosRequest struct {
	name string
	do   func(t *testing.T, ts *httptest.Server) (int, []byte)
}

func chaosTraffic() []chaosRequest {
	return []chaosRequest{
		{"fuse", func(t *testing.T, ts *httptest.Server) (int, []byte) {
			return doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery})
		}},
		{"plain", func(t *testing.T, ts *httptest.Server) (int, []byte) {
			return doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: `SELECT Name FROM EE_Student ORDER BY Name`})
		}},
		{"stream", func(t *testing.T, ts *httptest.Server) (int, []byte) {
			return doJSON(t, ts, http.MethodPost, "/v1/query/stream", queryRequest{SQL: fuseQuery})
		}},
		{"batch", func(t *testing.T, ts *httptest.Server) (int, []byte) {
			return doJSON(t, ts, http.MethodPost, "/v1/batch", batchRequest{Statements: []string{
				`SELECT FullName FROM CS_Students ORDER BY FullName`,
				fuseQuery,
			}})
		}},
	}
}

// timingField scrubs the per-statement wall-clock field from batch
// responses: it is the one legitimately non-deterministic byte range.
var timingField = regexp.MustCompile(`"seconds":[0-9.e+-]+`)

func normalizeBody(b []byte) []byte {
	return timingField.ReplaceAll(b, []byte(`"seconds":0`))
}

// monotoneCounters flattens the counter-valued stats a chaos sampler
// must observe as non-decreasing. Gauges (inflight, waiters, queue
// depth) are deliberately absent.
func monotoneCounters(st statsResponse) map[string]uint64 {
	out := map[string]uint64{
		"requests":                st.Requests,
		"rejected_queries":        st.RejectedQueries,
		"streamed_queries":        st.StreamedQueries,
		"batch_requests":          st.BatchRequests,
		"batch_statements":        st.BatchStatements,
		"admission_waits":         st.AdmissionWaits,
		"admission_wait_timeouts": st.AdmissionWaitTimeouts,
		"query_timeouts":          st.QueryTimeouts,
		"panics_recovered":        st.PanicsRecovered,
		"internal_errors":         st.InternalErrors,
		"db.queries":              st.DB.Queries,
		"db.fuse_queries":         st.DB.FuseQueries,
		"db.query_errors":         st.DB.QueryErrors,
	}
	for kind, ks := range st.DB.Cache.Kinds {
		out["cache."+string(kind)+".hits"] = ks.Hits
		out["cache."+string(kind)+".misses"] = ks.Misses
		out["cache."+string(kind)+".shared"] = ks.Shared
	}
	return out
}

// TestChaosFaultStorm is the fault-containment acceptance test: a
// server is hammered with concurrent mixed traffic while the
// deterministic fault harness fires panics, errors and delays across
// every layer. The process survives, every response is a well-formed
// success or failure, counters stay monotone, goroutines settle, and
// once the faults stop the server returns byte-identical results to
// the unfaulted baseline.
func TestChaosFaultStorm(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	db := studentFixture(t)
	ts := newLifecycleServer(t, db,
		WithQueryTimeout(5*time.Second),
		WithMaxInflight(8),
		WithAdmissionWait(16, 2*time.Second),
	)
	traffic := chaosTraffic()

	// Unfaulted baselines, cold and warm: the post-chaos identity target.
	db.PurgeCache()
	baseline := make(map[string][]byte, len(traffic))
	for _, req := range traffic {
		status, body := req.do(t, ts)
		if status != http.StatusOK {
			t.Fatalf("baseline %s: status %d: %s", req.name, status, body)
		}
		baseline[req.name] = normalizeBody(body)
	}
	for _, req := range traffic { // warm pass must already be identical
		if _, body := req.do(t, ts); !bytes.Equal(normalizeBody(body), baseline[req.name]) {
			t.Fatalf("warm baseline %s differs from cold:\ncold: %s\nwarm: %s",
				req.name, baseline[req.name], normalizeBody(body))
		}
	}
	db.PurgeCache()

	faultinject.Arm(&faultinject.Plan{
		Seed:  chaosSeed,
		Rate:  0.04,
		Kinds: []faultinject.Kind{faultinject.Error, faultinject.Panic, faultinject.Delay},
		Delay: 200 * time.Microsecond,
	})

	const (
		workers = 8
		iters   = 25
	)
	var wg sync.WaitGroup
	errs := make(chan string, workers*iters)
	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusBadRequest:          true, // injected errors classify as statement failures
		http.StatusTooManyRequests:     true,
		http.StatusInternalServerError: true,
		http.StatusServiceUnavailable:  true,
		http.StatusGatewayTimeout:      true,
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Purge periodically so the deep pipeline sites (matching,
				// detection, cache leaders) keep executing instead of the
				// storm degenerating into fused-cache hits.
				if w == 0 && i%5 == 0 {
					db.PurgeCache()
				}
				req := traffic[(w+i)%len(traffic)]
				status, body := req.do(t, ts)
				if !allowed[status] {
					errs <- fmt.Sprintf("worker %d iter %d %s: unexpected status %d: %.200s", w, i, req.name, status, body)
				}
			}
		}(w)
	}

	// Sample the stats surface while the storm runs: the server must
	// answer /v1/stats throughout, and every counter must be monotone.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	prev := monotoneCounters(serverStats(t, ts))
sampling:
	for {
		select {
		case <-done:
			break sampling
		case <-time.After(10 * time.Millisecond):
			cur := monotoneCounters(serverStats(t, ts))
			for name, v := range cur {
				if p, ok := prev[name]; ok && v < p {
					errs <- fmt.Sprintf("counter %s went backwards: %d -> %d", name, p, v)
				}
			}
			prev = cur
		}
	}
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}

	// Coverage: the storm must actually have exercised the harness —
	// every layer's fault points hit, and injections fired.
	hits, fired := faultinject.Hits(), faultinject.Fired()
	faultinject.Disarm()
	for _, site := range []string{
		faultinject.SiteServerQuery, faultinject.SiteServerStream, faultinject.SiteServerBatch,
		faultinject.SitePlanQuery, faultinject.SitePlanStream,
		faultinject.SiteQCacheLeader, faultinject.SiteCoreMatch, faultinject.SiteCoreDetect,
		faultinject.SiteEngineMaterialize, faultinject.SiteParshardWorker,
	} {
		if hits[site] == 0 {
			t.Errorf("site %s was never hit during the storm", site)
		}
	}
	var totalFired uint64
	for _, n := range fired {
		totalFired += n
	}
	if totalFired == 0 {
		t.Error("no fault ever fired — the storm tested nothing")
	}
	t.Logf("chaos storm: %d sites hit, %d injections fired across %d sites", len(hits), totalFired, len(fired))

	// Post-chaos: stats consistent at rest, results byte-identical to
	// the unfaulted baseline, cold and warm.
	st := serverStats(t, ts)
	if st.InflightQueries != 0 || st.AdmissionWaiters != 0 {
		t.Errorf("at rest: inflight = %d, waiters = %d, want 0/0", st.InflightQueries, st.AdmissionWaiters)
	}
	if st.StreamChunkQueueDepth != 0 {
		t.Errorf("at rest: stream chunk queue depth = %d, want 0", st.StreamChunkQueueDepth)
	}
	if st.DB.Cache.Waiters != 0 {
		t.Errorf("at rest: cache waiters = %d, want 0", st.DB.Cache.Waiters)
	}
	db.PurgeCache()
	for pass := 0; pass < 2; pass++ { // 0 = cold, 1 = warm
		for _, req := range traffic {
			status, body := req.do(t, ts)
			if status != http.StatusOK {
				t.Fatalf("post-chaos %s (pass %d): status %d: %s", req.name, pass, status, body)
			}
			if !bytes.Equal(normalizeBody(body), baseline[req.name]) {
				t.Errorf("post-chaos %s (pass %d) differs from baseline:\nwant: %s\ngot:  %s",
					req.name, pass, baseline[req.name], normalizeBody(body))
			}
		}
	}
}
