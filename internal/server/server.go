// Package server implements hummerd's HTTP/JSON API: a long-lived
// query service over a shared hummer.DB, the interactive-system face
// of the HumMer demo scaled to many concurrent clients. Clients
// register data sources, issue FUSE BY (and plain SELECT) queries,
// inspect lineage and resolution functions, and observe the versioned
// artifact cache through the stats endpoint.
//
// Endpoints (all JSON):
//
//	GET    /healthz              liveness + uptime
//	GET    /v1/stats             server counters, DB stats, cache traffic
//	GET    /v1/sources           registered sources with generations
//	POST   /v1/sources           register (or replace) a source
//	GET    /v1/sources/{alias}   schema + rows of one source
//	POST   /v1/query             execute a statement
//	GET    /v1/functions         resolution-function names
//	DELETE /v1/cache             purge the artifact cache
//
// Queries run concurrently: the underlying DB serializes nothing but
// the metadata maps, and the artifact cache's singleflight ensures a
// thundering herd of identical queries computes each expensive
// artifact (DUMAS match, duplicate detection, parsed plan) once.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hummer"
	"hummer/internal/value"
)

// maxBodyBytes caps request bodies: inline sources are meant for
// quickstarts and tests, not bulk loading.
const maxBodyBytes = 16 << 20

// Server is the hummerd HTTP API over one shared DB.
type Server struct {
	db       *hummer.DB
	mux      *http.ServeMux
	start    time.Time
	requests atomic.Uint64
	// allowPathSources permits POST /v1/sources to register
	// server-local files by path. Off by default: an unauthenticated
	// client that can name arbitrary paths and then read the rows
	// back through GET /v1/sources/{alias} is a file-disclosure
	// vector. Startup flags register files regardless — the operator
	// launching the process already has the files.
	allowPathSources bool
}

// Option configures a Server.
type Option func(*Server)

// AllowPathSources lets API clients register csv/json/xml sources by
// server-local path. Enable only when every client is trusted with
// read access to the server's filesystem.
func AllowPathSources() Option {
	return func(s *Server) { s.allowPathSources = true }
}

// New builds a Server over db.
func New(db *hummer.DB, opts ...Option) *Server {
	s := &Server{db: db, mux: http.NewServeMux(), start: time.Now()}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/sources", s.handleListSources)
	s.mux.HandleFunc("POST /v1/sources", s.handleRegisterSource)
	s.mux.HandleFunc("GET /v1/sources/{alias}", s.handleGetSource)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/functions", s.handleFunctions)
	s.mux.HandleFunc("DELETE /v1/cache", s.handlePurgeCache)
	return s
}

// Handler returns the routable handler (request counting included).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		s.mux.ServeHTTP(w, r)
	})
}

// --- Responses --------------------------------------------------------------

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxErr.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// --- Health and stats -------------------------------------------------------

type healthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

type statsResponse struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Requests      uint64       `json:"requests"`
	DB            hummer.Stats `json:"db"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		DB:            s.db.Stats(),
	})
}

// --- Sources ----------------------------------------------------------------

func (s *Server) handleListSources(w http.ResponseWriter, r *http.Request) {
	out := s.db.Stats().Sources
	if out == nil {
		out = []hummer.SourceStatus{}
	}
	writeJSON(w, http.StatusOK, out)
}

// registerRequest registers one source. Kind selects the loader:
// "csv", "json" and "xml" reference server-local files by path;
// "inline" carries the data in the request (columns + rows of raw
// text cells, typed like CSV cells).
type registerRequest struct {
	Alias     string     `json:"alias"`
	Kind      string     `json:"kind"`
	Path      string     `json:"path,omitempty"`
	RecordTag string     `json:"record_tag,omitempty"`
	Columns   []string   `json:"columns,omitempty"`
	Rows      [][]string `json:"rows,omitempty"`
	// Replace overwrites an existing alias (bumping its generation)
	// instead of failing on conflicting data.
	Replace bool `json:"replace,omitempty"`
}

func (s *Server) handleRegisterSource(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Alias == "" {
		writeError(w, http.StatusBadRequest, "alias is required")
		return
	}
	kind := strings.ToLower(req.Kind)
	if !s.allowPathSources && kind != "inline" && kind != "" {
		writeError(w, http.StatusForbidden,
			"path-based source registration is disabled on this server (use kind \"inline\", or start hummerd with -allow-path-sources)")
		return
	}
	var err error
	switch kind {
	case "csv":
		if req.Replace {
			err = s.db.ReplaceCSV(req.Alias, req.Path)
		} else {
			err = s.db.RegisterCSV(req.Alias, req.Path)
		}
	case "json":
		if req.Replace {
			err = s.db.ReplaceJSON(req.Alias, req.Path)
		} else {
			err = s.db.RegisterJSON(req.Alias, req.Path)
		}
	case "xml":
		if req.Replace {
			err = s.db.ReplaceXML(req.Alias, req.Path, req.RecordTag)
		} else {
			err = s.db.RegisterXML(req.Alias, req.Path, req.RecordTag)
		}
	case "inline":
		var rel *hummer.Relation
		rel, err = buildInline(req)
		if err == nil {
			if req.Replace {
				err = s.db.ReplaceTable(req.Alias, rel)
			} else {
				err = s.db.RegisterTable(req.Alias, rel)
			}
		}
	default:
		writeError(w, http.StatusBadRequest, "unknown source kind %q (want csv, json, xml or inline)", req.Kind)
		return
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, hummer.ErrAliasConflict) {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, hummer.SourceStatus{
		Alias:      req.Alias,
		Generation: s.db.SourceGeneration(req.Alias),
	})
}

func buildInline(req registerRequest) (*hummer.Relation, error) {
	if len(req.Columns) == 0 {
		return nil, fmt.Errorf("inline source %q needs columns", req.Alias)
	}
	b := hummer.NewTable(req.Alias, req.Columns...)
	for i, row := range req.Rows {
		if len(row) != len(req.Columns) {
			return nil, fmt.Errorf("inline source %q: row %d has %d cells, want %d",
				req.Alias, i, len(row), len(req.Columns))
		}
		b.AddText(row...)
	}
	return b.Build(), nil
}

type sourceResponse struct {
	Alias       string   `json:"alias"`
	Generation  uint64   `json:"generation"`
	Fingerprint string   `json:"fingerprint"`
	Columns     []string `json:"columns"`
	RowCount    int      `json:"row_count"`
	Rows        [][]any  `json:"rows"`
}

func (s *Server) handleGetSource(w http.ResponseWriter, r *http.Request) {
	alias := r.PathValue("alias")
	rel, err := s.db.Table(alias)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	limit := rel.Len()
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", q)
			return
		}
		if n < limit {
			limit = n
		}
	}
	fp, err := s.db.SourceFingerprint(alias)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := sourceResponse{
		Alias:       alias,
		Generation:  s.db.SourceGeneration(alias),
		Fingerprint: fp,
		Columns:     rel.Schema().Names(),
		RowCount:    rel.Len(),
		Rows:        make([][]any, 0, limit),
	}
	for i := 0; i < limit; i++ {
		resp.Rows = append(resp.Rows, rowJSON(rel.Row(i)))
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- Query ------------------------------------------------------------------

type queryRequest struct {
	SQL string `json:"sql"`
	// Lineage adds per-cell provenance to the response (fusion
	// queries only).
	Lineage bool `json:"lineage,omitempty"`
}

// fusionSummary surfaces what the pipeline did — the wizard
// visualization's numbers, without the tables.
type fusionSummary struct {
	Sources         int `json:"sources"`
	MergedRows      int `json:"merged_rows"`
	Correspondences int `json:"correspondences"`
	Clusters        int `json:"clusters"`
	DuplicatePairs  int `json:"duplicate_pairs"`
	BorderlinePairs int `json:"borderline_pairs"`
}

// cellLineage is one cell's provenance: the contributing source rows.
type cellLineage struct {
	Column  string   `json:"column"`
	Origins []string `json:"origins"`
}

type queryResponse struct {
	Columns  []string        `json:"columns"`
	Rows     [][]any         `json:"rows"`
	RowCount int             `json:"row_count"`
	Fusion   *fusionSummary  `json:"fusion,omitempty"`
	Lineage  [][]cellLineage `json:"lineage,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, http.StatusBadRequest, "sql is required")
		return
	}
	res, err := s.db.Query(req.SQL)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := queryResponse{
		Columns:  res.Rel.Schema().Names(),
		Rows:     make([][]any, 0, res.Rel.Len()),
		RowCount: res.Rel.Len(),
	}
	for i := 0; i < res.Rel.Len(); i++ {
		resp.Rows = append(resp.Rows, rowJSON(res.Rel.Row(i)))
	}
	if p := res.Pipeline; p != nil {
		sum := &fusionSummary{Sources: len(p.Sources)}
		if p.Merged != nil {
			sum.MergedRows = p.Merged.Len()
		}
		for _, m := range p.Matches {
			sum.Correspondences += len(m.Correspondences)
		}
		if p.Detection != nil {
			sum.Clusters = len(p.Detection.Clusters)
			sum.DuplicatePairs = len(p.Detection.Duplicates)
			sum.BorderlinePairs = len(p.Detection.Borderline)
		}
		resp.Fusion = sum
	}
	if req.Lineage && res.Lineage != nil {
		cols := res.Rel.Schema().Names()
		resp.Lineage = make([][]cellLineage, len(res.Lineage))
		for i, rowLin := range res.Lineage {
			cells := make([]cellLineage, 0, len(rowLin))
			for j, set := range rowLin {
				cl := cellLineage{Column: cols[j], Origins: []string{}}
				for _, o := range set.Origins() {
					cl.Origins = append(cl.Origins, fmt.Sprintf("%s:%d", o.Source, o.Row))
				}
				cells = append(cells, cl)
			}
			resp.Lineage[i] = cells
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- Functions and cache ----------------------------------------------------

func (s *Server) handleFunctions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"functions": s.db.ResolutionFunctions()})
}

func (s *Server) handlePurgeCache(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]int{"purged": s.db.PurgeCache()})
}

// rowJSON renders one row with JSON-native cells: NULL → null,
// numerics and booleans natively, times as RFC 3339, strings as-is.
func rowJSON(row hummer.Row) []any {
	out := make([]any, len(row))
	for i, v := range row {
		out[i] = cellJSON(v)
	}
	return out
}

func cellJSON(v hummer.Value) any {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindInt:
		return v.Int()
	case value.KindFloat:
		return v.Float()
	case value.KindBool:
		return v.Bool()
	case value.KindTime:
		return v.Time().Format(time.RFC3339)
	default:
		return v.Str()
	}
}
