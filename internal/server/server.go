// Package server implements hummerd's HTTP/JSON API: a long-lived
// query service over a shared hummer.DB, the interactive-system face
// of the HumMer demo scaled to many concurrent clients. Clients
// register data sources, issue FUSE BY (and plain SELECT) queries,
// inspect lineage and resolution functions, and observe the versioned
// artifact cache through the stats endpoint.
//
// Endpoints (all JSON unless noted):
//
//	GET    /healthz              liveness + uptime
//	GET    /metrics              Prometheus text exposition
//	GET    /v1/stats             server counters, DB stats, cache traffic
//	GET    /v1/sources           registered sources with generations
//	POST   /v1/sources           register (or replace) a source
//	GET    /v1/sources/{alias}   schema + rows of one source
//	POST   /v1/query             execute a statement
//	POST   /v1/query/stream      execute a statement, stream NDJSON rows
//	POST   /v1/batch             execute several statements, one result each
//	GET    /v1/functions         resolution-function names
//	DELETE /v1/cache             purge the artifact cache
//
// Queries run concurrently: the underlying DB serializes nothing but
// the metadata maps, and the artifact cache's singleflight ensures a
// thundering herd of identical queries computes each expensive
// artifact (fused results, DUMAS matches, duplicate detections,
// parsed plans) once.
//
// # Query lifecycle
//
// Every query runs under the request's context, bounded by the
// configured query timeout: a client that hangs up cancels its
// pipeline mid-flight (reported with the Nginx-style 499 status), an
// elapsed timeout aborts it with 504, and WithMaxInflight bounds
// concurrent query admission. Over-cap requests are rejected with 429
// by default; WithAdmissionWait adds a small bounded wait queue in
// front of the reject, so short bursts absorb instead of failing —
// a queued request waits at most the configured bound (tightened by
// its own deadline), then gets 503. Every overload rejection carries a
// Retry-After header.
//
// # Fault containment
//
// Handlers are a containment boundary: a panic anywhere below (and
// not already contained by a deeper boundary — parshard workers, the
// stream producer, qcache leaders) is recovered in the Handler
// middleware, converted to a *fault.InternalError, counted, and
// answered with 500 when the response is still unwritten. The process
// survives, the DB stays usable, and subsequent queries return
// byte-identical results to an unfaulted run. Mid-stream panics
// surface as a truncated NDJSON response (no trailer), which the
// stream protocol already defines as a failed stream.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hummer"
	"hummer/internal/fault"
	"hummer/internal/faultinject"
	"hummer/internal/obs"
	"hummer/internal/plan"
	"hummer/internal/qcache"
	"hummer/internal/value"
)

// maxBodyBytes caps request bodies: inline sources are meant for
// quickstarts and tests, not bulk loading.
const maxBodyBytes = 16 << 20

// StatusClientClosedRequest is the Nginx-convention status for "the
// client closed the connection before the response was ready"; the
// Go standard library has no name for it.
const StatusClientClosedRequest = 499

// Server is the hummerd HTTP API over one shared DB.
type Server struct {
	db       *hummer.DB
	mux      *http.ServeMux
	start    time.Time
	requests atomic.Uint64
	// allowPathSources permits POST /v1/sources to register
	// server-local files by path. Off by default: an unauthenticated
	// client that can name arbitrary paths and then read the rows
	// back through GET /v1/sources/{alias} is a file-disclosure
	// vector. Startup flags register files regardless — the operator
	// launching the process already has the files.
	allowPathSources bool

	// queryTimeout bounds each query's execution; 0 means unbounded.
	queryTimeout time.Duration
	// maxInflight caps concurrently executing queries; 0 means
	// unbounded. slots is the admission semaphore (nil when unbounded):
	// one token per executing query.
	maxInflight int64
	slots       chan struct{}
	// admissionQueue/admissionWait configure the bounded wait queue in
	// front of the cap: up to admissionQueue over-cap requests may wait
	// up to admissionWait (tightened by their own deadline) for a slot
	// before the 503. Zero values keep pure immediate-reject.
	admissionQueue int
	admissionWait  time.Duration

	// Query lifecycle counters (exposed by /v1/stats and /metrics).
	inflight     atomic.Int64
	rejected     atomic.Uint64
	clientGone   atomic.Uint64
	timeouts     atomic.Uint64
	bodyTimeouts atomic.Uint64
	queryCount   atomic.Uint64
	queryErrors  atomic.Uint64
	queryNanos   atomic.Uint64

	// Admission wait-queue traffic and fault containment (exposed
	// alongside the above).
	queuedNow      atomic.Int64
	queuedTotal    atomic.Uint64
	queueTimeouts  atomic.Uint64
	internalErrors atomic.Uint64

	// Streaming and batch traffic (exposed alongside the above).
	streamedQueries atomic.Uint64
	streamedRows    atomic.Uint64
	batchRequests   atomic.Uint64
	batchStatements atomic.Uint64
	batchErrors     atomic.Uint64

	// Per-class latency histograms (fixed buckets, see hist.go):
	// materialized /v1/query statements, /v1/query/stream statements
	// (whole-stream wall clock) and individual /v1/batch statements.
	// Exposed as hummer_query_duration_seconds{class=...} on /metrics
	// and as percentile summaries in /v1/stats, so client-side load
	// measurements have server-side numbers to cross-check against.
	latQuery  latencyHist
	latStream latencyHist
	latBatch  latencyHist

	// logger is the structured request/containment logger; defaults to
	// slog.Default() so a bare New keeps logging where log.Printf did.
	logger *slog.Logger
	// ring holds the last ringSize query traces for GET /v1/trace; nil
	// disables per-query tracing entirely (the span no-op path).
	ring     *obs.Ring
	ringSize int
	// slowQuery, when positive, logs the full span tree of any query
	// request whose wall time meets the threshold.
	slowQuery time.Duration
	// phases accumulates per-phase duration histograms from finished
	// traces — the hummer_phase_duration_seconds series. Keyed by span
	// name; the key set is the fixed instrumentation vocabulary, so
	// cardinality is bounded.
	phaseMu sync.Mutex
	phases  map[string]*latencyHist
}

// Option configures a Server.
type Option func(*Server)

// AllowPathSources lets API clients register csv/json/xml sources by
// server-local path. Enable only when every client is trusted with
// read access to the server's filesystem.
func AllowPathSources() Option {
	return func(s *Server) { s.allowPathSources = true }
}

// WithQueryTimeout bounds every query's execution: when d elapses the
// pipeline is cancelled mid-flight (cooperatively, with all worker
// goroutines joined) and the client receives a 504. d <= 0 means no
// timeout.
func WithQueryTimeout(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.queryTimeout = d
		}
	}
}

// WithMaxInflight caps the number of concurrently executing queries.
// Requests over the cap are rejected immediately with 429 — bounded
// admission instead of unbounded queueing — so a burst degrades
// loudly and recoverably rather than piling up work for clients that
// may already be gone. n <= 0 means unbounded. Combine with
// WithAdmissionWait to absorb short bursts in a bounded queue before
// the reject.
func WithMaxInflight(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxInflight = int64(n)
		}
	}
}

// WithAdmissionWait puts a small bounded wait queue in front of the
// inflight cap: up to queue over-cap requests wait up to maxWait for
// a slot instead of bouncing straight to 429. The wait is
// deadline-aware — a request never queues longer than its own
// context's deadline permits — and a wait that expires answers 503
// with a Retry-After. queue <= 0 or maxWait <= 0 keeps pure
// immediate-reject. No effect without WithMaxInflight.
func WithAdmissionWait(queue int, maxWait time.Duration) Option {
	return func(s *Server) {
		if queue > 0 && maxWait > 0 {
			s.admissionQueue = queue
			s.admissionWait = maxWait
		}
	}
}

// DefaultTraceRing is how many finished query traces GET /v1/trace
// retains when WithTraceRing is not given.
const DefaultTraceRing = 128

// WithLogger installs the structured logger for request, containment
// and slow-query logging. nil keeps slog.Default().
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.logger = l
		}
	}
}

// WithTraceRing sets how many finished query span traces are retained
// for GET /v1/trace. n <= 0 disables per-query tracing entirely: no
// trace rides the request context and the pipeline's span calls take
// their zero-allocation no-op path.
func WithTraceRing(n int) Option {
	return func(s *Server) { s.ringSize = n }
}

// WithSlowQueryLog logs the full span tree of any query request whose
// wall time meets d. d <= 0 disables the slow-query log. Requires
// tracing (a disabled ring leaves nothing to dump).
func WithSlowQueryLog(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.slowQuery = d
		}
	}
}

// New builds a Server over db.
func New(db *hummer.DB, opts ...Option) *Server {
	s := &Server{
		db:       db,
		mux:      http.NewServeMux(),
		start:    time.Now(),
		logger:   slog.Default(),
		ringSize: DefaultTraceRing,
		phases:   make(map[string]*latencyHist),
	}
	for _, o := range opts {
		o(s)
	}
	if s.maxInflight > 0 {
		s.slots = make(chan struct{}, s.maxInflight)
	}
	s.ring = obs.NewRing(s.ringSize)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/sources", s.handleListSources)
	s.mux.HandleFunc("POST /v1/sources", s.handleRegisterSource)
	s.mux.HandleFunc("GET /v1/sources/{alias}", s.handleGetSource)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/query/stream", s.handleQueryStream)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/functions", s.handleFunctions)
	s.mux.HandleFunc("GET /v1/trace", s.handleTrace)
	s.mux.HandleFunc("DELETE /v1/cache", s.handlePurgeCache)
	return s
}

// Handler returns the routable handler: request counting, request-ID
// minting, per-query trace lifecycle, body capping, and the
// handler-level fault containment boundary.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		reqID := obs.NewRequestID()
		w.Header().Set("X-Hummer-Request-Id", reqID)
		r = r.WithContext(obs.WithRequestID(r.Context(), reqID))
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		var tr *obs.Trace
		if s.ring != nil && tracedPath(r.URL.Path) {
			tr = obs.NewTrace(reqID, r.Method+" "+r.URL.Path)
			r = r.WithContext(obs.ContextWithTrace(r.Context(), tr))
		}
		rw := &recoverWriter{ResponseWriter: w}
		defer func() {
			rec := recover()
			// Publish the trace even for requests that died on a panic
			// or disconnect: partial trees are exactly what a postmortem
			// wants. Safe here — the handler (and thus any stream drain
			// that joins the producer goroutine) has returned, so the
			// span tree is quiescent.
			if tr != nil {
				tr.Finish()
				s.ring.Add(tr)
				s.recordTrace(r, tr)
			}
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				// net/http's own deliberate abort token — not a fault.
				panic(rec)
			}
			ie := fault.NewInternal("server.handler", rec)
			s.internalErrors.Add(1)
			s.logger.Error("contained panic in handler",
				"request_id", reqID,
				"method", r.Method,
				"path", r.URL.Path,
				"panic", fmt.Sprint(ie.Recovered),
				"stack", string(ie.Stack))
			if !rw.wrote {
				writeError(rw, http.StatusInternalServerError, "%v", ie)
			}
			// Response already committed (e.g. mid-NDJSON-stream): the
			// truncated body — no trailer record — already signals a
			// failed stream to the client; nothing more can be sent.
		}()
		s.mux.ServeHTTP(rw, r)
	})
}

// recoverWriter tracks whether a response has been committed, so the
// containment boundary knows if a 500 can still be written. Unwrap
// keeps http.ResponseController features (read deadlines) working
// through the wrap, and Flush passes streaming flushes along.
type recoverWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *recoverWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *recoverWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

func (w *recoverWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *recoverWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// --- Responses --------------------------------------------------------------

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxErr.Limit)
			return false
		}
		if errors.Is(err, os.ErrDeadlineExceeded) {
			// The per-slot read deadline fired while the client was
			// still sending: a server-side timeout, not a syntax
			// error — classify and count it as such.
			s.bodyTimeouts.Add(1)
			writeError(w, http.StatusRequestTimeout, "timed out reading the request body")
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// --- Health and stats -------------------------------------------------------

type healthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

type statsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      uint64  `json:"requests"`
	// InflightQueries is the number of queries executing right now;
	// RejectedQueries counts 429s from the inflight cap.
	InflightQueries int64  `json:"inflight_queries"`
	RejectedQueries uint64 `json:"rejected_queries"`
	// StreamedQueries counts /v1/query/stream statements that began
	// streaming; StreamedRows the NDJSON row records they emitted.
	StreamedQueries uint64 `json:"streamed_queries"`
	StreamedRows    uint64 `json:"streamed_rows"`
	// BatchRequests counts /v1/batch calls; BatchStatements the
	// statements they carried; BatchStatementErrors the statements
	// that failed (each statement fails independently).
	BatchRequests        uint64 `json:"batch_requests"`
	BatchStatements      uint64 `json:"batch_statements"`
	BatchStatementErrors uint64 `json:"batch_statement_errors"`
	// AdmissionWaiters is the number of requests queued for a slot
	// right now (WithAdmissionWait); AdmissionWaits counts requests
	// that entered the queue; AdmissionWaitTimeouts counts waits that
	// expired into a 503.
	AdmissionWaiters      int64  `json:"admission_waiters"`
	AdmissionWaits        uint64 `json:"admission_waits"`
	AdmissionWaitTimeouts uint64 `json:"admission_wait_timeouts"`
	// ClientDisconnects counts queries cancelled because the client
	// hung up (499); QueryTimeouts counts queries aborted by the
	// query timeout (504); BodyReadTimeouts counts requests whose
	// body read outlived the per-slot deadline (408).
	ClientDisconnects uint64 `json:"client_disconnects"`
	QueryTimeouts     uint64 `json:"query_timeouts"`
	BodyReadTimeouts  uint64 `json:"body_read_timeouts"`
	// PanicsRecovered counts panics converted to internal errors
	// anywhere in the process (the containment layer's proof of work);
	// InternalErrors counts requests that failed on one.
	PanicsRecovered uint64 `json:"panics_recovered"`
	InternalErrors  uint64 `json:"internal_errors"`
	// StreamChunkQueueDepth is the number of stream row chunks
	// currently buffered between producers and consumers — the
	// streaming backpressure gauge.
	StreamChunkQueueDepth int64 `json:"stream_chunk_queue_depth"`
	// QuerySeconds is the total wall-clock time spent executing
	// statements (sum over /v1/query, /v1/query/stream and /v1/batch
	// statements, including failed ones).
	QuerySeconds float64 `json:"query_seconds"`
	// StreamProducedRows counts rows pushed by stream producers (as
	// opposed to StreamedRows, which counts NDJSON records the HTTP
	// layer emitted); StreamStalls / StreamStallSeconds summarize the
	// times a producer found the chunk channel full and had to wait —
	// the consumer-side backpressure signal.
	StreamProducedRows uint64  `json:"stream_produced_rows"`
	StreamStalls       uint64  `json:"stream_stalls"`
	StreamStallSeconds float64 `json:"stream_stall_seconds"`
	// Latency summarizes the per-class latency histograms: keys are
	// "query" (materialized statements), "stream" (whole-stream wall
	// clock) and "batch" (individual batch statements); percentiles
	// are interpolated from the fixed /metrics buckets.
	Latency map[string]LatencySummary `json:"latency"`
	// Phases summarizes the per-phase span-duration histograms fed by
	// query tracing, keyed by phase name ("plan", "match.score", …).
	// Empty until the first traced query completes.
	Phases map[string]LatencySummary `json:"phases"`
	// CSESharedTotal / CSEUniqueTotal mirror the /metrics counters of
	// the planner's cross-statement CSE tier: source subtrees served
	// from (or piggybacked on) another statement's materialization vs
	// subtrees that had to materialize. Their ratio is the batch
	// sharing rate E17 verifies.
	CSESharedTotal uint64       `json:"cse_shared_total"`
	CSEUniqueTotal uint64       `json:"cse_unique_total"`
	DB             hummer.Stats `json:"db"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	stall := plan.StreamStallSnapshot()
	phases := make(map[string]LatencySummary)
	for name, h := range s.phaseSnapshots() {
		phases[name] = h.summary()
	}
	dbStats := s.db.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds:         time.Since(s.start).Seconds(),
		Requests:              s.requests.Load(),
		InflightQueries:       s.inflight.Load(),
		RejectedQueries:       s.rejected.Load(),
		StreamedQueries:       s.streamedQueries.Load(),
		StreamedRows:          s.streamedRows.Load(),
		BatchRequests:         s.batchRequests.Load(),
		BatchStatements:       s.batchStatements.Load(),
		BatchStatementErrors:  s.batchErrors.Load(),
		AdmissionWaiters:      s.queuedNow.Load(),
		AdmissionWaits:        s.queuedTotal.Load(),
		AdmissionWaitTimeouts: s.queueTimeouts.Load(),
		ClientDisconnects:     s.clientGone.Load(),
		QueryTimeouts:         s.timeouts.Load(),
		BodyReadTimeouts:      s.bodyTimeouts.Load(),
		PanicsRecovered:       fault.Recovered(),
		InternalErrors:        s.internalErrors.Load(),
		StreamChunkQueueDepth: plan.StreamQueueDepth(),
		QuerySeconds:          float64(s.queryNanos.Load()) / float64(time.Second),
		StreamProducedRows:    plan.StreamProducedRows(),
		StreamStalls:          stall.Count,
		StreamStallSeconds:    stall.Seconds,
		Latency: map[string]LatencySummary{
			"query":  s.latQuery.summary(),
			"stream": s.latStream.summary(),
			"batch":  s.latBatch.summary(),
		},
		Phases:         phases,
		CSESharedTotal: dbStats.CSEShared,
		CSEUniqueTotal: dbStats.CSEUnique,
		DB:             dbStats,
	})
}

// --- Sources ----------------------------------------------------------------

func (s *Server) handleListSources(w http.ResponseWriter, r *http.Request) {
	out := s.db.Stats().Sources
	if out == nil {
		out = []hummer.SourceStatus{}
	}
	writeJSON(w, http.StatusOK, out)
}

// registerRequest registers one source. Kind selects the loader:
// "csv", "json" and "xml" reference server-local files by path;
// "inline" carries the data in the request (columns + rows of raw
// text cells, typed like CSV cells).
type registerRequest struct {
	Alias     string     `json:"alias"`
	Kind      string     `json:"kind"`
	Path      string     `json:"path,omitempty"`
	RecordTag string     `json:"record_tag,omitempty"`
	Columns   []string   `json:"columns,omitempty"`
	Rows      [][]string `json:"rows,omitempty"`
	// Replace overwrites an existing alias (bumping its generation)
	// instead of failing on conflicting data.
	Replace bool `json:"replace,omitempty"`
}

func (s *Server) handleRegisterSource(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Alias == "" {
		writeError(w, http.StatusBadRequest, "alias is required")
		return
	}
	kind := strings.ToLower(req.Kind)
	if !s.allowPathSources && kind != "inline" && kind != "" {
		writeError(w, http.StatusForbidden,
			"path-based source registration is disabled on this server (use kind \"inline\", or start hummerd with -allow-path-sources)")
		return
	}
	var err error
	switch kind {
	case "csv":
		if req.Replace {
			err = s.db.ReplaceCSV(req.Alias, req.Path)
		} else {
			err = s.db.RegisterCSV(req.Alias, req.Path)
		}
	case "json":
		if req.Replace {
			err = s.db.ReplaceJSON(req.Alias, req.Path)
		} else {
			err = s.db.RegisterJSON(req.Alias, req.Path)
		}
	case "xml":
		if req.Replace {
			err = s.db.ReplaceXML(req.Alias, req.Path, req.RecordTag)
		} else {
			err = s.db.RegisterXML(req.Alias, req.Path, req.RecordTag)
		}
	case "inline":
		var rel *hummer.Relation
		rel, err = buildInline(req)
		if err == nil {
			if req.Replace {
				err = s.db.ReplaceTable(req.Alias, rel)
			} else {
				err = s.db.RegisterTable(req.Alias, rel)
			}
		}
	default:
		writeError(w, http.StatusBadRequest, "unknown source kind %q (want csv, json, xml or inline)", req.Kind)
		return
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, hummer.ErrAliasConflict) {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, hummer.SourceStatus{
		Alias:      req.Alias,
		Generation: s.db.SourceGeneration(req.Alias),
	})
}

func buildInline(req registerRequest) (*hummer.Relation, error) {
	if len(req.Columns) == 0 {
		return nil, fmt.Errorf("inline source %q needs columns", req.Alias)
	}
	b := hummer.NewTable(req.Alias, req.Columns...)
	for i, row := range req.Rows {
		if len(row) != len(req.Columns) {
			return nil, fmt.Errorf("inline source %q: row %d has %d cells, want %d",
				req.Alias, i, len(row), len(req.Columns))
		}
		b.AddText(row...)
	}
	return b.Build(), nil
}

type sourceResponse struct {
	Alias       string   `json:"alias"`
	Generation  uint64   `json:"generation"`
	Fingerprint string   `json:"fingerprint"`
	Columns     []string `json:"columns"`
	RowCount    int      `json:"row_count"`
	Rows        [][]any  `json:"rows"`
}

func (s *Server) handleGetSource(w http.ResponseWriter, r *http.Request) {
	alias := r.PathValue("alias")
	rel, err := s.db.Table(alias)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	limit := rel.Len()
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", q)
			return
		}
		if n < limit {
			limit = n
		}
	}
	fp, err := s.db.SourceFingerprint(alias)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := sourceResponse{
		Alias:       alias,
		Generation:  s.db.SourceGeneration(alias),
		Fingerprint: fp,
		Columns:     rel.Schema().Names(),
		RowCount:    rel.Len(),
		Rows:        make([][]any, 0, limit),
	}
	for i := 0; i < limit; i++ {
		resp.Rows = append(resp.Rows, rowJSON(rel.Row(i)))
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- Query ------------------------------------------------------------------

type queryRequest struct {
	SQL string `json:"sql"`
	// Lineage adds per-cell provenance to the response (fusion
	// queries only).
	Lineage bool `json:"lineage,omitempty"`
	// Trace echoes the request ID as trace_id in the response body so
	// the caller can fetch the span tree from GET /v1/trace. Off by
	// default: the response stays byte-identical to an untraced run.
	Trace bool `json:"trace,omitempty"`
}

// cellLineage is one cell's provenance: the contributing source rows.
type cellLineage struct {
	Column  string   `json:"column"`
	Origins []string `json:"origins"`
}

type queryResponse struct {
	Columns  []string `json:"columns"`
	Rows     [][]any  `json:"rows"`
	RowCount int      `json:"row_count"`
	// Fusion carries the pipeline summary for fusion statements —
	// warm cache hits included (slim entries precompute it). Omitted
	// for plain SELECTs: the wire format matches the opt-in
	// semantics, annotation-style metadata never pads a plain read.
	Fusion *hummer.FusionSummary `json:"fusion,omitempty"`
	// Lineage is present only when requested AND the statement
	// produced lineage (fusion statements with at least one row).
	Lineage [][]cellLineage `json:"lineage,omitempty"`
	// TraceID is present only when the request set trace:true — it is
	// the request ID, usable to fetch the span tree from GET /v1/trace.
	TraceID string `json:"trace_id,omitempty"`
}

// errHandled marks a request whose response was already written by a
// helper (decode failure, validation error) — the caller just returns.
var errHandled = errors.New("server: response already written")

// retryAfterSeconds is the Retry-After hint on overload responses
// (429 queue-full, 503 wait-expired, 504 timeout): how long a
// well-behaved client should back off before retrying. One slot
// turnover is the honest estimate — the configured query timeout when
// there is one, else a nominal second.
func (s *Server) retryAfterSeconds() int {
	if s.queryTimeout > 0 {
		if secs := int(math.Ceil(s.queryTimeout.Seconds())); secs > 0 {
			return secs
		}
	}
	return 1
}

// writeOverload answers an overload rejection: Retry-After plus the
// JSON error body.
func (s *Server) writeOverload(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	writeError(w, status, format, args...)
}

// admit takes an inflight-admission slot, returning its release (to
// be called exactly once) — or ok=false with the rejection already
// written. Admission runs before the (up to maxBodyBytes) body is
// even read: the cap exists to shed work under overload, so an
// over-limit request must not cost a 16MB decode on its way to the
// 429.
//
// At the cap the request bounces straight to 429 unless
// WithAdmissionWait configured a queue; then up to admissionQueue
// requests wait — bounded by admissionWait and by the request's own
// deadline — for a slot to free. A wait that expires answers 503, a
// client that hangs up while queued 499, and an over-full queue 429;
// all overload statuses carry Retry-After.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.slots == nil {
		s.inflight.Add(1)
		return func() { s.inflight.Add(-1) }, true
	}
	granted := func() func() {
		s.inflight.Add(1)
		return func() {
			s.inflight.Add(-1)
			<-s.slots
		}
	}
	select {
	case s.slots <- struct{}{}:
		return granted(), true
	default:
	}

	wait := s.admissionWait
	if dl, hasDL := r.Context().Deadline(); hasDL {
		// Deadline-aware: never hold a request in the queue past the
		// point where its caller has already given up.
		if remaining := time.Until(dl); remaining < wait {
			wait = remaining
		}
	}
	if s.admissionQueue <= 0 || wait <= 0 {
		s.rejected.Add(1)
		s.writeOverload(w, http.StatusTooManyRequests,
			"server is at its inflight query limit (%d); retry later", s.maxInflight)
		return nil, false
	}
	if n := s.queuedNow.Add(1); n > int64(s.admissionQueue) {
		s.queuedNow.Add(-1)
		s.rejected.Add(1)
		s.writeOverload(w, http.StatusTooManyRequests,
			"server is at its inflight query limit (%d) and the admission queue is full; retry later", s.maxInflight)
		return nil, false
	}
	s.queuedTotal.Add(1)
	defer s.queuedNow.Add(-1)
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case s.slots <- struct{}{}:
		return granted(), true
	case <-timer.C:
		s.rejected.Add(1)
		s.queueTimeouts.Add(1)
		s.writeOverload(w, http.StatusServiceUnavailable,
			"no query slot freed within %s; retry later", wait.Round(time.Millisecond))
		return nil, false
	case <-r.Context().Done():
		s.clientGone.Add(1)
		writeError(w, StatusClientClosedRequest, "client closed request while queued for admission")
		return nil, false
	}
}

// slotContext budgets one admission slot: it bounds the request's
// body read and returns a ctx carrying the same deadline for the
// execution, so a slot is never held longer than the query timeout.
// The returned release must be called exactly once; it clears the
// read deadline and cancels the ctx.
func (s *Server) slotContext(w http.ResponseWriter, r *http.Request) (context.Context, func()) {
	ctx := r.Context()
	if s.queryTimeout <= 0 {
		return ctx, func() {}
	}
	deadline := time.Now().Add(s.queryTimeout)
	rc := http.NewResponseController(w)
	_ = rc.SetReadDeadline(deadline)
	ctx, cancel := context.WithDeadline(ctx, deadline)
	return ctx, func() {
		_ = rc.SetReadDeadline(time.Time{})
		cancel()
	}
}

// classifyQueryError writes the error response for a failed query:
// 499 when the client hung up, 504 on the query timeout (with a
// Retry-After hint), 500 for a contained panic, 400 otherwise. Counts
// accordingly.
func (s *Server) classifyQueryError(w http.ResponseWriter, r *http.Request, err error) {
	s.queryErrors.Add(1)
	var internal *fault.InternalError
	canceled := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	switch {
	case canceled && r.Context().Err() != nil:
		// The query actually died of cancellation AND the client
		// hung up; it will likely never read this, but the status
		// documents the outcome in logs and proxies. A genuine
		// query error that merely races a disconnect keeps its own
		// classification below.
		s.clientGone.Add(1)
		writeError(w, StatusClientClosedRequest, "client closed request: %v", err)
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		s.writeOverload(w, http.StatusGatewayTimeout, "query exceeded the %s timeout", s.queryTimeout)
	case errors.As(err, &internal):
		// A panic contained at a deeper boundary (parshard, qcache
		// leader, stream producer): one failed query, process intact.
		s.internalErrors.Add(1)
		s.logger.Error("query failed on contained panic",
			"request_id", obs.RequestID(r.Context()),
			"error", internal.Error(),
			"stack", string(internal.Stack))
		writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	releaseSlot, ok := s.admit(w, r)
	if !ok {
		return
	}

	// The slot covers the body read and the query execution — the
	// phases overload protection must bound — and is released before
	// the response is encoded, so a slow-reading client cannot pin
	// admission capacity while the DB sits idle.
	var req queryRequest
	res, err := func() (*hummer.Result, error) {
		defer releaseSlot()
		ctx, release := s.slotContext(w, r)
		defer release()
		if !s.decodeBody(w, r, &req) {
			return nil, errHandled
		}
		if strings.TrimSpace(req.SQL) == "" {
			writeError(w, http.StatusBadRequest, "sql is required")
			return nil, errHandled
		}
		if err := faultinject.Hit(faultinject.SiteServerQuery); err != nil {
			return nil, err
		}

		// The query runs under the request context — a hung-up client
		// cancels the pipeline mid-flight — bounded by the shared
		// deadline above. The server never needs the pipeline
		// intermediates (the slim Summary feeds the fusion block) and
		// skips the lineage copy when the client didn't ask.
		start := time.Now()
		res, err := s.db.QueryContext(ctx, req.SQL,
			hummer.WithoutTrace(), hummer.WithLineage(req.Lineage))
		elapsed := time.Since(start)
		s.queryCount.Add(1)
		s.queryNanos.Add(uint64(elapsed))
		s.latQuery.Observe(elapsed)
		return res, err
	}()
	if errors.Is(err, errHandled) {
		return
	}
	if err != nil {
		s.classifyQueryError(w, r, err)
		return
	}
	resp := queryResponse{
		Columns:  res.Rel.Schema().Names(),
		Rows:     make([][]any, 0, res.Rel.Len()),
		RowCount: res.Rel.Len(),
		Fusion:   res.Summary,
	}
	if req.Trace {
		resp.TraceID = obs.RequestID(r.Context())
	}
	for i := 0; i < res.Rel.Len(); i++ {
		resp.Rows = append(resp.Rows, rowJSON(res.Rel.Row(i)))
	}
	if req.Lineage && len(res.Lineage) > 0 {
		cols := res.Rel.Schema().Names()
		resp.Lineage = make([][]cellLineage, len(res.Lineage))
		for i, rowLin := range res.Lineage {
			resp.Lineage[i] = lineageRowJSON(cols, rowLin)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// lineageRowJSON renders one row's per-cell lineage.
func lineageRowJSON(cols []string, rowLin []hummer.LineageSet) []cellLineage {
	cells := make([]cellLineage, 0, len(rowLin))
	for j, set := range rowLin {
		cl := cellLineage{Column: cols[j], Origins: []string{}}
		for _, o := range set.Origins() {
			cl.Origins = append(cl.Origins, fmt.Sprintf("%s:%d", o.Source, o.Row))
		}
		cells = append(cells, cl)
	}
	return cells
}

// --- Streaming ---------------------------------------------------------------

// streamFlushRows is how many NDJSON row records are written between
// explicit flushes: one flush per record would defeat the chunked
// producer; one per response would defeat streaming.
const streamFlushRows = 64

// streamRequest is the /v1/query/stream body: a statement plus the
// resume window. Offset skips the first Offset result rows before any
// row record is emitted; Limit (when present) caps how many row
// records are emitted. A client whose stream died after reading k row
// records resumes with offset=k and receives exactly the records the
// full stream would have carried from position k on (the results are
// deterministic, so the resumed bytes are the missing suffix); the
// summary's row_count reflects the records actually emitted by this
// response, not the full result.
type streamRequest struct {
	queryRequest
	Limit  *int `json:"limit,omitempty"`
	Offset int  `json:"offset,omitempty"`
}

// streamRecord is one NDJSON line of a /v1/query/stream response. The
// first record is the schema ("type":"schema"), then one record per
// row, then exactly one trailer: a summary on success, an error if
// the stream died mid-flight (after the 200 status was already
// committed — clients must treat an error trailer, or a missing
// trailer, as a failed stream).
type streamRecord struct {
	Type     string                `json:"type"`
	Columns  []string              `json:"columns,omitempty"`
	Row      []any                 `json:"row,omitempty"`
	Lineage  []cellLineage         `json:"lineage,omitempty"`
	RowCount *int                  `json:"row_count,omitempty"`
	Fusion   *hummer.FusionSummary `json:"fusion,omitempty"`
	Error    string                `json:"error,omitempty"`
}

// handleQueryStream executes one statement and streams the result as
// NDJSON (application/x-ndjson): rows leave the server in chunks as
// the engine produces them, so a large result never needs a second
// materialized copy in the response path. Errors before the first
// byte are ordinary JSON error responses (same classification as
// /v1/query); later failures arrive in-band as the trailer record.
// The admission slot is held for the whole stream — the query
// executes as the response is written.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	releaseSlot, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer releaseSlot()
	ctx, release := s.slotContext(w, r)
	defer release()

	var req streamRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, http.StatusBadRequest, "sql is required")
		return
	}
	if req.Offset < 0 {
		writeError(w, http.StatusBadRequest, "offset must be >= 0, got %d", req.Offset)
		return
	}
	if req.Limit != nil && *req.Limit < 0 {
		writeError(w, http.StatusBadRequest, "limit must be >= 0, got %d", *req.Limit)
		return
	}
	if err := faultinject.Hit(faultinject.SiteServerStream); err != nil {
		s.classifyQueryError(w, r, err)
		return
	}

	start := time.Now()
	rows, err := s.db.QueryRows(ctx, req.SQL,
		hummer.WithoutTrace(), hummer.WithLineage(req.Lineage))
	var cols []string
	if err == nil {
		defer rows.Close()
		// Columns blocks until the statement has executed far enough
		// to stream (for fusion: until the pipeline ran), so statement
		// errors are still classifiable as a clean non-200 here.
		cols, err = rows.Columns()
	}
	if err != nil {
		elapsed := time.Since(start)
		s.queryCount.Add(1)
		s.queryNanos.Add(uint64(elapsed))
		s.latStream.Observe(elapsed)
		s.classifyQueryError(w, r, err)
		return
	}
	s.queryCount.Add(1)
	s.streamedQueries.Add(1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	writeErr := enc.Encode(streamRecord{Type: "schema", Columns: cols})
	flush()
	skip := req.Offset
	n := 0
	for writeErr == nil && (req.Limit == nil || n < *req.Limit) && rows.Next() {
		if skip > 0 {
			// The resume window: skipped rows are pulled (and, for plain
			// SELECTs, computed) but never serialized — the wire carries
			// exactly the suffix the client asked for.
			skip--
			continue
		}
		rec := streamRecord{Type: "row", Row: rowJSON(rows.Row())}
		if lin := rows.RowLineage(); req.Lineage && lin != nil {
			rec.Lineage = lineageRowJSON(cols, lin)
		}
		if writeErr = enc.Encode(rec); writeErr != nil {
			break // client gone: stop pulling, Close joins the producer
		}
		if n++; n%streamFlushRows == 0 {
			flush()
		}
	}
	s.streamedRows.Add(uint64(n))
	elapsed := time.Since(start)
	s.queryNanos.Add(uint64(elapsed))
	s.latStream.Observe(elapsed)
	switch {
	case writeErr != nil:
		// The transport died mid-stream; nothing more can reach the
		// client. Count it like a disconnect of a materialized query.
		s.queryErrors.Add(1)
		s.clientGone.Add(1)
	case rows.Err() != nil:
		err := rows.Err()
		s.queryErrors.Add(1)
		var internal *fault.InternalError
		if errors.Is(err, context.DeadlineExceeded) {
			s.timeouts.Add(1)
		} else if errors.Is(err, context.Canceled) && r.Context().Err() != nil {
			s.clientGone.Add(1)
		} else if errors.As(err, &internal) {
			// The producer contained a panic mid-stream; the status is
			// committed, so the containment surfaces as the in-band
			// error trailer.
			s.internalErrors.Add(1)
		}
		_ = enc.Encode(streamRecord{Type: "error", Error: err.Error()})
	default:
		// Close before the trailer: when Limit cut the drain short the
		// cursor is not drained, and Summary only becomes available
		// once the stream is drained or closed. Close is idempotent —
		// the deferred one becomes a no-op.
		_ = rows.Close()
		count := n
		_ = enc.Encode(streamRecord{Type: "summary", RowCount: &count, Fusion: rows.Summary()})
	}
	flush()
}

// --- Batch -------------------------------------------------------------------

// maxBatchStatements bounds one /v1/batch request: each statement can
// cost a full query timeout, and the admission slot is held for the
// whole batch.
const maxBatchStatements = 64

type batchRequest struct {
	Statements []string `json:"statements"`
	// Lineage adds per-cell provenance to fusion statements' results.
	Lineage bool `json:"lineage,omitempty"`
	// TimeoutMillis bounds each statement individually; it can only
	// tighten the server's query timeout, never extend it.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// batchStatementResponse is one statement's outcome. Error and the
// result fields are mutually exclusive.
type batchStatementResponse struct {
	Columns  []string              `json:"columns,omitempty"`
	Rows     [][]any               `json:"rows,omitempty"`
	RowCount int                   `json:"row_count"`
	Fusion   *hummer.FusionSummary `json:"fusion,omitempty"`
	Lineage  [][]cellLineage       `json:"lineage,omitempty"`
	Error    string                `json:"error,omitempty"`
	Seconds  float64               `json:"seconds"`
}

type batchResponse struct {
	Results []batchStatementResponse `json:"results"`
}

// handleBatch executes several statements in order, each under its
// own deadline (the server query timeout, optionally tightened by the
// request's timeout_ms), and returns one result or error per
// statement — a slow or failing statement never takes down its
// neighbours, only cancelling the whole request does. The response is
// always 200 when the batch itself was well-formed; per-statement
// failures live in the results.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	releaseSlot, ok := s.admit(w, r)
	if !ok {
		return
	}

	var resp batchResponse
	err := func() error {
		defer releaseSlot()
		if err := faultinject.Hit(faultinject.SiteServerBatch); err != nil {
			s.queryErrors.Add(1)
			writeError(w, http.StatusInternalServerError, "%v", err)
			return errHandled
		}
		// Unlike /v1/query, the slot deadline bounds only the body
		// read here; each statement then runs under its own deadline
		// over the request's context. The deadline (and the
		// connection read deadline it arms) is released immediately
		// after the decode: net/http keeps a background read open
		// during the handler, and an armed read deadline outliving
		// one queryTimeout would fail that read and cancel the
		// request context mid-batch — aborting statements that were
		// well inside their own budgets.
		ctx, release := s.slotContext(w, r)
		_ = ctx
		var req batchRequest
		ok := s.decodeBody(w, r, &req)
		release()
		if !ok {
			return errHandled
		}
		if len(req.Statements) == 0 {
			writeError(w, http.StatusBadRequest, "statements are required")
			return errHandled
		}
		if len(req.Statements) > maxBatchStatements {
			writeError(w, http.StatusBadRequest,
				"batch carries %d statements, limit %d", len(req.Statements), maxBatchStatements)
			return errHandled
		}
		for i, q := range req.Statements {
			if strings.TrimSpace(q) == "" {
				writeError(w, http.StatusBadRequest, "statement %d is empty", i)
				return errHandled
			}
		}

		perStmt := s.queryTimeout
		if d := time.Duration(req.TimeoutMillis) * time.Millisecond; d > 0 && (perStmt <= 0 || d < perStmt) {
			perStmt = d
		}
		opts := []hummer.QueryOption{hummer.WithoutTrace(), hummer.WithLineage(req.Lineage)}
		if perStmt > 0 {
			opts = append(opts, hummer.WithTimeout(perStmt))
		}

		s.batchRequests.Add(1)
		results := s.db.QueryBatch(r.Context(), req.Statements, opts...)
		resp.Results = make([]batchStatementResponse, len(results))
		for i, br := range results {
			s.batchStatements.Add(1)
			s.queryCount.Add(1)
			s.queryNanos.Add(uint64(br.Elapsed))
			s.latBatch.Observe(br.Elapsed)
			item := &resp.Results[i]
			item.Seconds = br.Elapsed.Seconds()
			if br.Err != nil {
				s.batchErrors.Add(1)
				item.Error = br.Err.Error()
				continue
			}
			res := br.Result
			item.Columns = res.Rel.Schema().Names()
			item.Rows = make([][]any, 0, res.Rel.Len())
			item.RowCount = res.Rel.Len()
			item.Fusion = res.Summary
			for j := 0; j < res.Rel.Len(); j++ {
				item.Rows = append(item.Rows, rowJSON(res.Rel.Row(j)))
			}
			if req.Lineage && len(res.Lineage) > 0 {
				item.Lineage = make([][]cellLineage, len(res.Lineage))
				for j, rowLin := range res.Lineage {
					item.Lineage[j] = lineageRowJSON(item.Columns, rowLin)
				}
			}
		}
		return nil
	}()
	if errors.Is(err, errHandled) {
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- Functions and cache ----------------------------------------------------

func (s *Server) handleFunctions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"functions": s.db.ResolutionFunctions()})
}

func (s *Server) handlePurgeCache(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]int{"purged": s.db.PurgeCache()})
}

// --- Metrics ----------------------------------------------------------------

// handleMetrics serves the Prometheus text exposition format
// (version 0.0.4): query counts and latency, the inflight gauge,
// admission rejections, cancellation/timeout counts, streaming/batch
// traffic and the per-kind artifact-cache traffic, including the
// fused-result tier.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.db.Stats()
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatFloat(v))
	}

	counter("hummer_requests_total", "HTTP requests received.", s.requests.Load())
	counter("hummer_queries_total", "Statements executed via /v1/query, /v1/query/stream and /v1/batch.", s.queryCount.Load())
	counter("hummer_query_errors_total", "Queries that returned an error (including cancellations and timeouts).", s.queryErrors.Load())
	counter("hummer_queries_rejected_total", "Queries rejected by the inflight admission cap (HTTP 429).", s.rejected.Load())
	counter("hummer_query_client_disconnects_total", "Queries cancelled because the client closed the connection (HTTP 499).", s.clientGone.Load())
	counter("hummer_query_timeouts_total", "Queries aborted by the query timeout (HTTP 504).", s.timeouts.Load())
	counter("hummer_body_read_timeouts_total", "Requests whose body read outlived the per-slot deadline (HTTP 408).", s.bodyTimeouts.Load())
	counter("hummer_streamed_queries_total", "Statements that began streaming via /v1/query/stream.", s.streamedQueries.Load())
	counter("hummer_streamed_rows_total", "NDJSON row records emitted by /v1/query/stream.", s.streamedRows.Load())
	counter("hummer_batch_requests_total", "Batch requests executed via /v1/batch.", s.batchRequests.Load())
	counter("hummer_batch_statements_total", "Statements executed inside /v1/batch requests.", s.batchStatements.Load())
	counter("hummer_batch_statement_errors_total", "Batch statements that failed (each statement fails independently).", s.batchErrors.Load())
	counter("hummer_panics_recovered_total", "Panics contained anywhere in the process and converted to internal errors.", fault.Recovered())
	counter("hummer_internal_errors_total", "Requests that failed on a contained panic (HTTP 500 or an error trailer).", s.internalErrors.Load())
	counter("hummer_admission_waits_total", "Requests that queued for an admission slot.", s.queuedTotal.Load())
	counter("hummer_admission_wait_timeouts_total", "Admission waits that expired into a 503.", s.queueTimeouts.Load())
	gauge("hummer_admission_waiters", "Requests queued for an admission slot right now.", float64(s.queuedNow.Load()))
	gauge("hummer_stream_chunk_queue_depth", "Stream row chunks buffered between producers and consumers right now.", float64(plan.StreamQueueDepth()))
	gauge("hummer_inflight_queries", "Queries executing right now.", float64(s.inflight.Load()))
	gauge("hummer_uptime_seconds", "Seconds since the server started.", time.Since(s.start).Seconds())

	// Query latency as fixed-bucket histograms, one series set per
	// query class: histogram_quantile() works on these, _sum over
	// _count still gives the mean, and the buckets are what client-side
	// load-test percentiles are cross-checked against.
	fmt.Fprintf(&b, "# HELP hummer_query_duration_seconds Wall-clock statement execution time by query class (query = /v1/query, stream = whole /v1/query/stream, batch = individual /v1/batch statements).\n")
	fmt.Fprintf(&b, "# TYPE hummer_query_duration_seconds histogram\n")
	for _, c := range []struct {
		name string
		h    *latencyHist
	}{{"query", &s.latQuery}, {"stream", &s.latStream}, {"batch", &s.latBatch}} {
		snap := c.h.snapshot()
		var cum uint64
		for i, bound := range latencyBucketBounds {
			cum += snap.buckets[i]
			fmt.Fprintf(&b, "hummer_query_duration_seconds_bucket{class=%q,le=%q} %d\n", c.name, formatBound(bound), cum)
		}
		fmt.Fprintf(&b, "hummer_query_duration_seconds_bucket{class=%q,le=\"+Inf\"} %d\n", c.name, snap.count)
		fmt.Fprintf(&b, "hummer_query_duration_seconds_sum{class=%q} %s\n", c.name, formatFloat(snap.seconds))
		fmt.Fprintf(&b, "hummer_query_duration_seconds_count{class=%q} %d\n", c.name, snap.count)
	}

	// Per-phase span durations from query tracing: one label value per
	// pipeline phase ("plan", "match.score", …). Empty until the first
	// traced query completes; disabled entirely with -trace-ring 0.
	phases := s.phaseSnapshots()
	if len(phases) > 0 {
		names := make([]string, 0, len(phases))
		for name := range phases {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "# HELP hummer_phase_duration_seconds Pipeline phase durations from per-query span tracing.\n")
		fmt.Fprintf(&b, "# TYPE hummer_phase_duration_seconds histogram\n")
		for _, name := range names {
			snap := phases[name].snapshot()
			var cum uint64
			for i, bound := range latencyBucketBounds {
				cum += snap.buckets[i]
				fmt.Fprintf(&b, "hummer_phase_duration_seconds_bucket{phase=%q,le=%q} %d\n", name, formatBound(bound), cum)
			}
			fmt.Fprintf(&b, "hummer_phase_duration_seconds_bucket{phase=%q,le=\"+Inf\"} %d\n", name, snap.count)
			fmt.Fprintf(&b, "hummer_phase_duration_seconds_sum{phase=%q} %s\n", name, formatFloat(snap.seconds))
			fmt.Fprintf(&b, "hummer_phase_duration_seconds_count{phase=%q} %d\n", name, snap.count)
		}
	}

	// Stream backpressure: rows pushed by producers plus a histogram of
	// producer stalls (chunk channel full — the consumer is the
	// bottleneck). Compare stall _sum to stream query _sum to see how
	// much of stream latency is consumer-side.
	counter("hummer_stream_produced_rows_total", "Rows pushed into stream chunk channels by producers.", plan.StreamProducedRows())
	stall := plan.StreamStallSnapshot()
	fmt.Fprintf(&b, "# HELP hummer_stream_consumer_stall_seconds Time stream producers spent blocked on a full chunk channel.\n")
	fmt.Fprintf(&b, "# TYPE hummer_stream_consumer_stall_seconds histogram\n")
	{
		var cum uint64
		for i, bound := range stall.Bounds {
			cum += stall.Buckets[i]
			fmt.Fprintf(&b, "hummer_stream_consumer_stall_seconds_bucket{le=%q} %d\n", formatBound(bound), cum)
		}
		fmt.Fprintf(&b, "hummer_stream_consumer_stall_seconds_bucket{le=\"+Inf\"} %d\n", stall.Count)
		fmt.Fprintf(&b, "hummer_stream_consumer_stall_seconds_sum %s\n", formatFloat(stall.Seconds))
		fmt.Fprintf(&b, "hummer_stream_consumer_stall_seconds_count %d\n", stall.Count)
	}

	// Go runtime health: cheap reads, scraped alongside everything else
	// so a latency regression can be correlated with GC or goroutine
	// leaks without attaching pprof.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge("hummer_goroutines", "Goroutines currently live.", float64(runtime.NumGoroutine()))
	gauge("hummer_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	counter("hummer_gc_cycles_total", "Completed GC cycles.", uint64(ms.NumGC))
	fmt.Fprintf(&b, "# HELP hummer_gc_pause_seconds_total Cumulative GC stop-the-world pause time.\n# TYPE hummer_gc_pause_seconds_total counter\n%s %s\n",
		"hummer_gc_pause_seconds_total", formatFloat(float64(ms.PauseTotalNs)/float64(time.Second)))

	counter("hummer_db_queries_total", "Statements executed by the DB (all entry points).", st.Queries)
	counter("hummer_db_fuse_queries_total", "Statements that ran the fusion pipeline.", st.FuseQueries)
	counter("hummer_db_query_errors_total", "Statements that failed.", st.QueryErrors)
	gauge("hummer_sources", "Registered data sources.", float64(len(st.Sources)))

	gauge("hummer_cache_entries", "Resident artifact-cache entries.", float64(st.Cache.Entries))
	gauge("hummer_cache_waiters", "Callers currently blocked on in-flight cache computations.", float64(st.Cache.Waiters))
	kinds := make([]string, 0, len(st.Cache.Kinds))
	for k := range st.Cache.Kinds {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	cacheCounter := func(name, help string, get func(qcache.KindStats) uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, k := range kinds {
			fmt.Fprintf(&b, "%s{kind=%q} %d\n", name, k, get(st.Cache.Kinds[qcache.Kind(k)]))
		}
	}
	if len(kinds) > 0 {
		cacheCounter("hummer_cache_hits_total", "Artifact-cache lookups served from a completed entry.",
			func(ks qcache.KindStats) uint64 { return ks.Hits })
		cacheCounter("hummer_cache_misses_total", "Artifact-cache lookups that computed the artifact.",
			func(ks qcache.KindStats) uint64 { return ks.Misses })
		cacheCounter("hummer_cache_shared_total", "Artifact-cache lookups that piggybacked on an in-flight computation.",
			func(ks qcache.KindStats) uint64 { return ks.Shared })
		cacheCounter("hummer_cache_evictions_total", "Artifact-cache entries evicted to respect the capacity.",
			func(ks qcache.KindStats) uint64 { return ks.Evictions })
	}

	counter("hummer_cse_shared_total",
		"Plain-SQL source subtrees served from (or piggybacked on) another statement's materialization.",
		st.CSEShared)
	counter("hummer_cse_unique_total",
		"Plain-SQL source subtrees that had to materialize (one scan/join/filter pass each).",
		st.CSEUnique)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}

// formatFloat renders a float the way Prometheus expects: plain
// decimal, no exponent for the magnitudes we emit.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// rowJSON renders one row with JSON-native cells: NULL → null,
// numerics and booleans natively, times as RFC 3339, strings as-is.
func rowJSON(row hummer.Row) []any {
	out := make([]any, len(row))
	for i, v := range row {
		out[i] = cellJSON(v)
	}
	return out
}

func cellJSON(v hummer.Value) any {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindInt:
		return v.Int()
	case value.KindFloat:
		return v.Float()
	case value.KindBool:
		return v.Bool()
	case value.KindTime:
		return v.Time().Format(time.RFC3339)
	default:
		return v.Str()
	}
}
