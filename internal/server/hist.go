package server

import (
	"strconv"
	"sync/atomic"
	"time"
)

// latencyBucketBounds are the fixed upper bounds (seconds, inclusive)
// of the query-latency histogram buckets, shared by every query class.
// The range spans sub-millisecond warm cache hits up to the 60s
// default query timeout; one extra implicit +Inf bucket catches
// everything beyond. Fixed buckets — not a sliding-window quantile
// sketch — keep Observe to one atomic add, make exposition mergeable
// across scrapes and processes, and are what lets a load generator
// cross-check its client-side percentiles against the server's.
var latencyBucketBounds = [...]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// latencyHist is a fixed-bucket latency histogram safe for concurrent
// Observe. Buckets hold per-bucket (non-cumulative) counts; exposition
// cumulates them into the Prometheus le-convention.
type latencyHist struct {
	buckets [len(latencyBucketBounds) + 1]atomic.Uint64
	count   atomic.Uint64
	nanos   atomic.Uint64
}

// Observe records one duration.
func (h *latencyHist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	secs := d.Seconds()
	idx := len(latencyBucketBounds) // +Inf
	for i, bound := range latencyBucketBounds {
		if secs <= bound {
			idx = i
			break
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.nanos.Add(uint64(d))
}

// histSnapshot is a point-in-time copy of a histogram. The per-bucket
// loads are not atomic as a group — counters race ahead under load —
// but each bucket is monotone, so a snapshot is always a valid (if
// slightly torn) histogram.
type histSnapshot struct {
	buckets [len(latencyBucketBounds) + 1]uint64
	count   uint64
	seconds float64
}

func (h *latencyHist) snapshot() histSnapshot {
	var s histSnapshot
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
	}
	// Derive the total from the bucket loads, not h.count: a concurrent
	// Observe between the two would make count exceed the bucket sum
	// and break the le="+Inf" == _count invariant scrapers check.
	for _, n := range s.buckets {
		s.count += n
	}
	s.seconds = float64(h.nanos.Load()) / float64(time.Second)
	return s
}

// quantile estimates the q-quantile (0 < q < 1) from the bucket
// counts, interpolating linearly within the bucket that holds the
// target rank. Values in the +Inf bucket report the largest finite
// bound — a floor, honest about the histogram's resolution. Returns 0
// for an empty histogram.
func (s histSnapshot) quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	rank := q * float64(s.count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, n := range s.buckets {
		if n == 0 {
			continue
		}
		prev := cum
		cum += float64(n)
		if cum < rank {
			continue
		}
		if i == len(latencyBucketBounds) {
			return latencyBucketBounds[len(latencyBucketBounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = latencyBucketBounds[i-1]
		}
		upper := latencyBucketBounds[i]
		return lower + (upper-lower)*(rank-prev)/float64(n)
	}
	return latencyBucketBounds[len(latencyBucketBounds)-1]
}

// LatencySummary is the /v1/stats rendering of one class's latency
// histogram: count, total and estimated percentiles (interpolated
// from the fixed buckets, so they carry bucket-resolution error — the
// exact distribution is on /metrics for anyone who wants to do
// better).
type LatencySummary struct {
	Count      uint64  `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

func (h *latencyHist) summary() LatencySummary {
	s := h.snapshot()
	return LatencySummary{
		Count:      s.count,
		SumSeconds: s.seconds,
		P50Seconds: s.quantile(0.50),
		P95Seconds: s.quantile(0.95),
		P99Seconds: s.quantile(0.99),
	}
}

// formatBound renders a bucket bound the way Prometheus le labels are
// conventionally written: shortest exact decimal.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
