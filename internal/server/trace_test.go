package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hummer"
	"hummer/internal/obs"
)

// traceFor fetches one trace by request ID from GET /v1/trace.
func traceFor(t *testing.T, ts *httptest.Server, id string) *obs.TraceView {
	t.Helper()
	status, body := doJSON(t, ts, http.MethodGet, "/v1/trace?id="+id, nil)
	if status != http.StatusOK {
		t.Fatalf("GET /v1/trace?id=%s: status %d: %s", id, status, body)
	}
	var resp struct {
		Traces []*obs.TraceView `json:"traces"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Traces) != 1 {
		t.Fatalf("want exactly 1 trace for id %s, got %d", id, len(resp.Traces))
	}
	return resp.Traces[0]
}

// phaseCounts flattens a span tree into name → occurrence count and
// asserts every span in it has a positive duration.
func phaseCounts(t *testing.T, root *obs.SpanView) map[string]int {
	t.Helper()
	counts := make(map[string]int)
	var walk func(sv *obs.SpanView)
	walk = func(sv *obs.SpanView) {
		counts[sv.Name]++
		if sv.DurationSeconds <= 0 {
			t.Errorf("span %q has non-positive duration %v", sv.Name, sv.DurationSeconds)
		}
		for _, c := range sv.Children {
			walk(c)
		}
	}
	for _, c := range root.Children {
		walk(c)
	}
	return counts
}

// tracedQuery runs sql with trace:true and returns the trace_id.
func tracedQuery(t *testing.T, ts *httptest.Server, sql string) string {
	t.Helper()
	status, body := doJSON(t, ts, http.MethodPost, "/v1/query",
		queryRequest{SQL: sql, Trace: true})
	if status != http.StatusOK {
		t.Fatalf("query: status %d: %s", status, body)
	}
	var resp queryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID == "" {
		t.Fatal("trace:true but no trace_id in response")
	}
	return resp.TraceID
}

// TestTraceSpanCompleteness is the acceptance check for the span
// vocabulary: a cold FUSE BY query's trace has every pipeline phase
// exactly once with non-zero durations that sum to no more than the
// root's wall time; a warm repeat shows the skipped phases absent, not
// zero-duration.
func TestTraceSpanCompleteness(t *testing.T) {
	ts := newTestServer(t)
	registerStudents(t, ts)

	coldID := tracedQuery(t, ts, fuseQuery)
	cold := traceFor(t, ts, coldID)
	counts := phaseCounts(t, cold.Root)
	wantOnce := []string{
		"plan", "cache.fused", "pipeline", "load",
		"match", "match.corpus", "match.score", "match.matrix",
		"merge",
		"detect", "detect.corpus", "detect.score", "detect.cluster",
		"fuse", "post",
	}
	for _, name := range wantOnce {
		if counts[name] != 1 {
			t.Errorf("cold query: phase %q appears %d times, want 1 (all: %v)", name, counts[name], counts)
		}
	}
	// Sibling top-level phases are sequential, so their durations must
	// fit inside the root's wall time (floating-point rendering earns a
	// small tolerance).
	var sum float64
	for _, c := range cold.Root.Children {
		sum += c.DurationSeconds
	}
	if sum > cold.Root.DurationSeconds*1.01+1e-6 {
		t.Errorf("top-level phase durations sum to %v > root %v", sum, cold.Root.DurationSeconds)
	}

	warmID := tracedQuery(t, ts, fuseQuery)
	warm := traceFor(t, ts, warmID)
	wcounts := phaseCounts(t, warm.Root)
	if wcounts["plan"] != 1 || wcounts["cache.fused"] != 1 {
		t.Errorf("warm query: want plan and cache.fused once each, got %v", wcounts)
	}
	for _, absent := range []string{"pipeline", "load", "match", "detect", "fuse", "post"} {
		if wcounts[absent] != 0 {
			t.Errorf("warm query: phase %q should be absent on a cache hit, got %d (all: %v)",
				absent, wcounts[absent], wcounts)
		}
	}
	var fusedSpan *obs.SpanView
	for _, c := range warm.Root.Children {
		if c.Name == "cache.fused" {
			fusedSpan = c
		}
	}
	if fusedSpan == nil {
		t.Fatal("warm query: no cache.fused span")
	}
	if got := fusedSpan.Attrs["outcome"]; got != "hit" {
		t.Errorf("warm cache.fused outcome = %v, want \"hit\"", got)
	}
}

// TestTraceByteIdentity is the out-of-band property: the same queries
// against a tracing server and a tracing-disabled server produce
// byte-identical response bodies.
func TestTraceByteIdentity(t *testing.T) {
	traced := newTestServer(t)
	untraced := httptest.NewServer(New(hummer.New(), WithTraceRing(0)).Handler())
	t.Cleanup(untraced.Close)
	registerStudents(t, traced)
	registerStudents(t, untraced)

	queries := []string{
		fuseQuery,
		`SELECT Name, Age FROM EE_Student ORDER BY Name`,
		fuseQuery, // warm repeat: cache path must match too
	}
	for i, sql := range queries {
		req := queryRequest{SQL: sql, Lineage: i == 0}
		s1, b1 := doJSON(t, traced, http.MethodPost, "/v1/query", req)
		s2, b2 := doJSON(t, untraced, http.MethodPost, "/v1/query", req)
		if s1 != s2 || !bytes.Equal(b1, b2) {
			t.Errorf("query %d: traced (%d) %s\nuntraced (%d) %s", i, s1, b1, s2, b2)
		}
	}
	// Streaming path too.
	s1, b1 := doJSON(t, traced, http.MethodPost, "/v1/query/stream", queryRequest{SQL: fuseQuery})
	s2, b2 := doJSON(t, untraced, http.MethodPost, "/v1/query/stream", queryRequest{SQL: fuseQuery})
	if s1 != s2 || !bytes.Equal(b1, b2) {
		t.Errorf("stream: traced (%d) %s\nuntraced (%d) %s", s1, b1, s2, b2)
	}
}

// TestTraceEndpointConcurrent hammers queries and /v1/trace reads
// concurrently; run under -race it is the ring's data-race check
// against live handler publication.
func TestTraceEndpointConcurrent(t *testing.T) {
	ts := newTestServer(t)
	registerStudents(t, ts)

	const (
		writers = 4
		readers = 4
		rounds  = 25
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Distinct SQL per round defeats the fused cache so
				// traces keep carrying full span trees.
				sql := fmt.Sprintf(`SELECT Name FROM EE_Student WHERE Age > %d ORDER BY Name`, (w*rounds+i)%40)
				status, body := doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: sql})
				if status != http.StatusOK {
					t.Errorf("query: status %d: %s", status, body)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				status, body := doJSON(t, ts, http.MethodGet, "/v1/trace?limit=16", nil)
				if status != http.StatusOK {
					t.Errorf("trace: status %d: %s", status, body)
					return
				}
			}
		}()
	}
	wg.Wait()

	status, body := doJSON(t, ts, http.MethodGet, "/v1/trace", nil)
	if status != http.StatusOK {
		t.Fatalf("final trace fetch: %d: %s", status, body)
	}
	var resp struct {
		Traces []*obs.TraceView `json:"traces"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Traces) == 0 {
		t.Fatal("no traces in ring after concurrent load")
	}
}

// TestRequestIDHeader: every response — traced or not — carries the
// request ID header, and trace_id only appears when asked for.
func TestRequestIDHeader(t *testing.T) {
	ts := newTestServer(t)
	registerStudents(t, ts)

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Hummer-Request-Id") == "" {
		t.Error("/v1/stats response missing X-Hummer-Request-Id")
	}

	status, body := doJSON(t, ts, http.MethodPost, "/v1/query",
		queryRequest{SQL: `SELECT Name FROM EE_Student ORDER BY Name`})
	if status != http.StatusOK {
		t.Fatalf("query: %d: %s", status, body)
	}
	if bytes.Contains(body, []byte("trace_id")) {
		t.Errorf("trace_id present without trace:true: %s", body)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowQueryLog: with a nanosecond threshold every query is slow;
// the log line carries the request ID and the span tree.
func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	ts := httptest.NewServer(New(hummer.New(),
		WithLogger(logger),
		WithSlowQueryLog(time.Nanosecond)).Handler())
	t.Cleanup(ts.Close)
	registerStudents(t, ts)

	id := tracedQuery(t, ts, fuseQuery)
	out := buf.String()
	if !strings.Contains(out, "slow query") {
		t.Fatalf("no slow-query log line; log: %s", out)
	}
	if !strings.Contains(out, id) {
		t.Errorf("slow-query log does not mention request id %s; log: %s", id, out)
	}
	if !strings.Contains(out, `"pipeline"`) {
		t.Errorf("slow-query log does not carry the span tree; log: %s", out)
	}
}

// TestStreamBackpressureMetrics: streaming a result advances the
// produced-rows counter exposed on /metrics and /v1/stats.
func TestStreamBackpressureMetrics(t *testing.T) {
	ts := newTestServer(t)
	registerStudents(t, ts)

	before := streamProducedFromStats(t, ts)
	status, body := doJSON(t, ts, http.MethodPost, "/v1/query/stream", queryRequest{SQL: fuseQuery})
	if status != http.StatusOK {
		t.Fatalf("stream: %d: %s", status, body)
	}
	after := streamProducedFromStats(t, ts)
	if after <= before {
		t.Errorf("stream_produced_rows did not advance: before %d, after %d", before, after)
	}

	status, metrics := doJSON(t, ts, http.MethodGet, "/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("/metrics: %d", status)
	}
	for _, want := range []string{
		"hummer_stream_produced_rows_total",
		"hummer_stream_consumer_stall_seconds_bucket",
		"hummer_phase_duration_seconds_bucket{phase=\"pipeline\"",
		"hummer_goroutines",
		"hummer_heap_alloc_bytes",
		"hummer_gc_pause_seconds_total",
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func streamProducedFromStats(t *testing.T, ts *httptest.Server) uint64 {
	t.Helper()
	status, body := doJSON(t, ts, http.MethodGet, "/v1/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("/v1/stats: %d: %s", status, body)
	}
	var resp struct {
		StreamProducedRows uint64 `json:"stream_produced_rows"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.StreamProducedRows
}
