package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hummer"
)

// TestBatchOverlappingSourcesOnePass is the planner-layer acceptance
// test end to end: a concurrent /v1/batch over overlapping sources
// runs ONE schema-matching pass, ONE duplicate-detection pass and ONE
// materialization of the shared plain-SELECT source subtree — not one
// per statement — observable through the cache and CSE counters on
// /v1/stats, and the CSE counters are exported on /metrics.
func TestBatchOverlappingSourcesOnePass(t *testing.T) {
	db := hummer.New()
	db.SetParallelism(4)
	ts := httptest.NewServer(New(db).Handler())
	t.Cleanup(ts.Close)
	registerStudents(t, ts)

	batch := batchRequest{Statements: []string{
		// Two fusion statements over the same source pair: matching and
		// detection artifacts are shared, whatever the resolution.
		`SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name) ORDER BY Name`,
		`SELECT Name, RESOLVE(Age, min) FUSE FROM EE_Student, CS_Students FUSE BY (Name) ORDER BY Name`,
		// Three plain statements over one FROM/JOIN/WHERE subtree: the
		// CSE tier materializes it once and shares the intermediate.
		`SELECT Name, Town FROM EE_Student JOIN CS_Students ON Name = FullName WHERE Age > 20 ORDER BY Name`,
		`SELECT Town FROM EE_Student JOIN CS_Students ON Name = FullName WHERE Age > 20`,
		`SELECT count(*) AS n FROM EE_Student JOIN CS_Students ON Name = FullName WHERE Age > 20`,
	}}
	status, body := doJSON(t, ts, http.MethodPost, "/v1/batch", batch)
	if status != http.StatusOK {
		t.Fatalf("batch: status %d: %s", status, body)
	}
	var resp batchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("batch response: %v in %s", err, body)
	}
	if len(resp.Results) != len(batch.Statements) {
		t.Fatalf("results = %d, want %d", len(resp.Results), len(batch.Statements))
	}
	for i, r := range resp.Results {
		if r.Error != "" {
			t.Fatalf("statement %d failed: %s", i, r.Error)
		}
	}

	kinds := cacheKinds(t, ts)
	for _, kind := range []string{"match", "detect"} {
		if ks := kinds[kind]; ks.Misses != 1 {
			t.Errorf("%s misses = %d, want 1 (one pass for the whole batch); counters %+v",
				kind, ks.Misses, ks)
		}
	}

	status, body = doJSON(t, ts, http.MethodGet, "/v1/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats: status %d: %s", status, body)
	}
	var stats struct {
		CSEShared uint64 `json:"cse_shared_total"`
		CSEUnique uint64 `json:"cse_unique_total"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("stats: %v in %s", err, body)
	}
	if stats.CSEUnique != 1 {
		t.Errorf("cse_unique_total = %d, want 1 (one materialization of the shared subtree)", stats.CSEUnique)
	}
	if stats.CSEShared != 2 {
		t.Errorf("cse_shared_total = %d, want 2 (two statements reused it)", stats.CSEShared)
	}

	status, metrics := doJSON(t, ts, http.MethodGet, "/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	for _, want := range []string{"hummer_cse_shared_total 2", "hummer_cse_unique_total 1"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
