package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hummer"
)

// TestQueryStreamNDJSONGolden pins the wire format of
// /v1/query/stream: a schema record, one record per row in result
// order, and a summary trailer carrying the fusion numbers — each on
// its own NDJSON line.
func TestQueryStreamNDJSONGolden(t *testing.T) {
	ts := newTestServer(t)
	registerStudents(t, ts)

	status, body := doJSON(t, ts, http.MethodPost, "/v1/query/stream", queryRequest{SQL: fuseQuery})
	if status != http.StatusOK {
		t.Fatalf("stream: status %d: %s", status, body)
	}
	want := strings.Join([]string{
		`{"type":"schema","columns":["Name","Age"]}`,
		`{"type":"row","row":["Aisha Khan",23]}`,
		`{"type":"row","row":["Jonathan Smith",22]}`,
		`{"type":"row","row":["Lena Fischer",20]}`,
		`{"type":"row","row":["Maria Garcia",24]}`,
		`{"type":"row","row":["Wei Chen",21]}`,
		`{"type":"summary","row_count":5,"fusion":{"sources":2,"merged_rows":7,"correspondences":3,"clusters":5,"duplicate_pairs":2,"borderline_pairs":0}}`,
	}, "\n") + "\n"
	if string(body) != want {
		t.Errorf("stream body:\n%s\nwant:\n%s", body, want)
	}

	// Byte-identical when served warm from the slim fused entry.
	status, warm := doJSON(t, ts, http.MethodPost, "/v1/query/stream", queryRequest{SQL: fuseQuery})
	if status != http.StatusOK || !bytes.Equal(warm, body) {
		t.Errorf("warm stream differs (status %d):\n%s", status, warm)
	}

	// Stats surfaced the streaming traffic.
	status, stats := doJSON(t, ts, http.MethodGet, "/v1/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	var st struct {
		StreamedQueries uint64 `json:"streamed_queries"`
		StreamedRows    uint64 `json:"streamed_rows"`
	}
	if err := json.Unmarshal(stats, &st); err != nil {
		t.Fatal(err)
	}
	if st.StreamedQueries != 2 || st.StreamedRows != 10 {
		t.Errorf("streamed = %d queries / %d rows, want 2 / 10", st.StreamedQueries, st.StreamedRows)
	}
}

// TestQueryStreamPlainAndLineage: plain SELECTs stream with a plain
// summary (no fusion block), and lineage:true attaches per-row
// lineage records to fusion streams.
func TestQueryStreamPlainAndLineage(t *testing.T) {
	ts := newTestServer(t)
	registerStudents(t, ts)

	status, body := doJSON(t, ts, http.MethodPost, "/v1/query/stream",
		queryRequest{SQL: "SELECT Name FROM EE_Student ORDER BY Name LIMIT 2"})
	if status != http.StatusOK {
		t.Fatalf("plain stream: %d %s", status, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 4 { // schema + 2 rows + summary
		t.Fatalf("plain stream lines = %d: %s", len(lines), body)
	}
	if strings.Contains(lines[len(lines)-1], "fusion") {
		t.Errorf("plain summary carries a fusion block: %s", lines[len(lines)-1])
	}
	if strings.Contains(string(body), `"lineage"`) {
		t.Errorf("plain stream carries lineage: %s", body)
	}

	status, body = doJSON(t, ts, http.MethodPost, "/v1/query/stream",
		queryRequest{SQL: fuseQuery, Lineage: true})
	if status != http.StatusOK {
		t.Fatalf("lineage stream: %d %s", status, body)
	}
	rowLines := 0
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		var rec struct {
			Type    string `json:"type"`
			Lineage []struct {
				Column  string   `json:"column"`
				Origins []string `json:"origins"`
			} `json:"lineage"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if rec.Type == "row" {
			rowLines++
			if len(rec.Lineage) == 0 {
				t.Errorf("row record without lineage: %s", line)
			}
		}
	}
	if rowLines != 5 {
		t.Errorf("row records = %d, want 5", rowLines)
	}

	// Errors before the first byte stay ordinary JSON responses.
	status, body = doJSON(t, ts, http.MethodPost, "/v1/query/stream", queryRequest{SQL: "SELECT x FROM ghost"})
	if status != http.StatusBadRequest || !bytes.Contains(body, []byte("error")) {
		t.Errorf("bad stream statement: %d %s", status, body)
	}
}

// streamLines splits an NDJSON body into its raw lines.
func streamLines(t *testing.T, body []byte) []string {
	t.Helper()
	return strings.Split(strings.TrimSpace(string(body)), "\n")
}

// rowRecords extracts the raw `"type":"row"` lines of a stream body,
// byte-for-byte.
func rowRecords(t *testing.T, body []byte) []string {
	t.Helper()
	var rows []string
	for _, line := range streamLines(t, body) {
		if strings.HasPrefix(line, `{"type":"row"`) {
			rows = append(rows, line)
		}
	}
	return rows
}

// TestQueryStreamResumeOffsetPrefixProperty pins the resume contract:
// for every offset k, the row records of a stream requested with
// offset=k are byte-identical to the full stream's row records from
// position k on, and the summary's row_count reflects the emitted
// records. A client whose connection died after reading k rows
// re-requests with offset=k and splices the bytes together.
func TestQueryStreamResumeOffsetPrefixProperty(t *testing.T) {
	ts := newTestServer(t)
	registerStudents(t, ts)

	for _, sql := range []string{
		fuseQuery, // fusion: 5 deterministic rows
		"SELECT Name FROM EE_Student ORDER BY Name", // plain: 4 rows
	} {
		status, full := doJSON(t, ts, http.MethodPost, "/v1/query/stream",
			streamRequest{queryRequest: queryRequest{SQL: sql}})
		if status != http.StatusOK {
			t.Fatalf("full stream: %d %s", status, full)
		}
		fullRows := rowRecords(t, full)
		for k := 0; k <= len(fullRows); k++ {
			status, resumed := doJSON(t, ts, http.MethodPost, "/v1/query/stream",
				streamRequest{queryRequest: queryRequest{SQL: sql}, Offset: k})
			if status != http.StatusOK {
				t.Fatalf("offset %d: %d %s", k, status, resumed)
			}
			got := rowRecords(t, resumed)
			want := fullRows[k:]
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Fatalf("offset %d rows:\n%s\nwant:\n%s", k, strings.Join(got, "\n"), strings.Join(want, "\n"))
			}
			last := streamLines(t, resumed)
			if !strings.Contains(last[len(last)-1], fmt.Sprintf(`"row_count":%d`, len(want))) {
				t.Errorf("offset %d summary = %s, want row_count %d", k, last[len(last)-1], len(want))
			}
		}
	}
}

// TestQueryStreamLimitWindow: limit caps the emitted row records,
// limit+offset slice an arbitrary window, a limit-cut fusion stream
// still carries its fusion summary block, and limit=0 is a valid
// probe (schema + summary only).
func TestQueryStreamLimitWindow(t *testing.T) {
	ts := newTestServer(t)
	registerStudents(t, ts)

	status, full := doJSON(t, ts, http.MethodPost, "/v1/query/stream",
		streamRequest{queryRequest: queryRequest{SQL: fuseQuery}})
	if status != http.StatusOK {
		t.Fatalf("full stream: %d %s", status, full)
	}
	fullRows := rowRecords(t, full)

	two := 2
	status, windowed := doJSON(t, ts, http.MethodPost, "/v1/query/stream",
		streamRequest{queryRequest: queryRequest{SQL: fuseQuery}, Offset: 1, Limit: &two})
	if status != http.StatusOK {
		t.Fatalf("window stream: %d %s", status, windowed)
	}
	got := rowRecords(t, windowed)
	want := fullRows[1:3]
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("window rows:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	trailer := streamLines(t, windowed)
	last := trailer[len(trailer)-1]
	if !strings.Contains(last, `"row_count":2`) || !strings.Contains(last, `"fusion"`) {
		t.Errorf("limit-cut fusion summary = %s, want row_count 2 with a fusion block", last)
	}

	zero := 0
	status, probe := doJSON(t, ts, http.MethodPost, "/v1/query/stream",
		streamRequest{queryRequest: queryRequest{SQL: fuseQuery}, Limit: &zero})
	if status != http.StatusOK {
		t.Fatalf("probe stream: %d %s", status, probe)
	}
	lines := streamLines(t, probe)
	if len(lines) != 2 || !strings.Contains(lines[1], `"row_count":0`) {
		t.Errorf("limit=0 probe = %s, want schema + row_count 0 summary", probe)
	}
}

// TestQueryStreamWindowValidation: negative limit/offset are 400s
// before any execution.
func TestQueryStreamWindowValidation(t *testing.T) {
	ts := newTestServer(t)
	registerStudents(t, ts)

	neg := -1
	for name, req := range map[string]streamRequest{
		"negative offset": {queryRequest: queryRequest{SQL: fuseQuery}, Offset: -3},
		"negative limit":  {queryRequest: queryRequest{SQL: fuseQuery}, Limit: &neg},
	} {
		status, body := doJSON(t, ts, http.MethodPost, "/v1/query/stream", req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: %d %s", name, status, body)
		}
	}
}

// TestBatchExecutesStatementsIndependently: one POST /v1/batch runs
// several statements; a failing statement reports its error in place
// without harming its neighbours.
func TestBatchExecutesStatementsIndependently(t *testing.T) {
	ts := newTestServer(t)
	registerStudents(t, ts)

	status, body := doJSON(t, ts, http.MethodPost, "/v1/batch", batchRequest{Statements: []string{
		"SELECT Name FROM EE_Student ORDER BY Name LIMIT 1",
		"SELECT broken FROM ghost",
		fuseQuery,
	}})
	if status != http.StatusOK {
		t.Fatalf("batch: %d %s", status, body)
	}
	var resp batchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	if resp.Results[0].Error != "" || resp.Results[0].RowCount != 1 {
		t.Errorf("statement 0 = %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" {
		t.Errorf("statement 1 must fail: %+v", resp.Results[1])
	}
	if resp.Results[2].Error != "" || resp.Results[2].RowCount != 5 || resp.Results[2].Fusion == nil {
		t.Errorf("statement 2 = %+v", resp.Results[2])
	}

	status, stats := doJSON(t, ts, http.MethodGet, "/v1/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	var st struct {
		BatchRequests        uint64 `json:"batch_requests"`
		BatchStatements      uint64 `json:"batch_statements"`
		BatchStatementErrors uint64 `json:"batch_statement_errors"`
	}
	if err := json.Unmarshal(stats, &st); err != nil {
		t.Fatal(err)
	}
	if st.BatchRequests != 1 || st.BatchStatements != 3 || st.BatchStatementErrors != 1 {
		t.Errorf("batch stats = %+v", st)
	}
}

// TestBatchPerStatementDeadline: the request's timeout_ms bounds each
// statement individually — the slow statement dies of its own
// deadline while the statements around it succeed with fresh budgets.
func TestBatchPerStatementDeadline(t *testing.T) {
	db := hummer.New()
	registerStudentTables(t, db)
	db.OnDuplicates(func(det *hummer.Detection, merged *hummer.Relation) []int {
		time.Sleep(150 * time.Millisecond)
		return nil
	})
	ts := httptest.NewServer(New(db).Handler())
	t.Cleanup(ts.Close)

	status, body := doJSON(t, ts, http.MethodPost, "/v1/batch", batchRequest{
		Statements: []string{
			"SELECT Name FROM EE_Student",
			fuseQuery, // slow: the wizard hook outlives the deadline
			"SELECT FullName FROM CS_Students",
		},
		TimeoutMillis: 40,
	})
	if status != http.StatusOK {
		t.Fatalf("batch: %d %s", status, body)
	}
	var resp batchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Error != "" {
		t.Errorf("statement 0 failed: %s", resp.Results[0].Error)
	}
	if !strings.Contains(resp.Results[1].Error, "deadline") {
		t.Errorf("statement 1 error = %q, want a deadline error", resp.Results[1].Error)
	}
	if resp.Results[2].Error != "" {
		t.Errorf("statement 2 failed after the timed-out one: %s", resp.Results[2].Error)
	}
}

// registerStudentTables registers the test sources directly on a DB
// (for servers built around a pre-configured DB).
func registerStudentTables(t *testing.T, db *hummer.DB) {
	t.Helper()
	ee := hummer.NewTable("EE_Student", "Name", "Age", "City").
		AddText("Jonathan Smith", "21", "Berlin").
		AddText("Maria Garcia", "24", "Hamburg").
		AddText("Wei Chen", "21", "Munich").
		AddText("Aisha Khan", "23", "Cologne").
		Build()
	cs := hummer.NewTable("CS_Students", "FullName", "Semester", "Years", "Town").
		AddText("Jonathan Smith", "4", "22", "Berlin").
		AddText("Wei Chen", "2", "21", "Munich").
		AddText("Lena Fischer", "1", "20", "Stuttgart").
		Build()
	if err := db.RegisterTable("EE_Student", ee); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterTable("CS_Students", cs); err != nil {
		t.Fatal(err)
	}
}

// TestBatchSlotDeadlineDoesNotCancelMidBatch: the admission-slot
// deadline (one query timeout) bounds only the body read of a batch.
// A batch whose total wall-clock exceeds one query timeout must NOT
// be cancelled mid-flight as long as each statement stays inside its
// own budget — the armed connection read deadline is released before
// execution starts, so net/http's background read can't fail and
// cancel the request context.
func TestBatchSlotDeadlineDoesNotCancelMidBatch(t *testing.T) {
	db := hummer.New()
	registerStudentTables(t, db)
	db.OnDuplicates(func(det *hummer.Detection, merged *hummer.Relation) []int {
		time.Sleep(60 * time.Millisecond)
		return nil
	})
	// Slot/query timeout 150ms; three ~60ms fusion statements total
	// ~180ms — beyond one slot budget, well inside three per-statement
	// ones.
	ts := httptest.NewServer(New(db, WithQueryTimeout(150*time.Millisecond)).Handler())
	t.Cleanup(ts.Close)

	status, body := doJSON(t, ts, http.MethodPost, "/v1/batch", batchRequest{
		Statements: []string{fuseQuery, fuseQuery, fuseQuery},
	})
	if status != http.StatusOK {
		t.Fatalf("batch: %d %s", status, body)
	}
	var resp batchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		if r.Error != "" {
			t.Errorf("statement %d cancelled mid-batch: %s", i, r.Error)
		}
	}
}

// TestBatchValidation: malformed batches are rejected before any
// statement runs.
func TestBatchValidation(t *testing.T) {
	ts := newTestServer(t)
	registerStudents(t, ts)

	status, body := doJSON(t, ts, http.MethodPost, "/v1/batch", batchRequest{})
	if status != http.StatusBadRequest {
		t.Errorf("empty batch: %d %s", status, body)
	}
	status, body = doJSON(t, ts, http.MethodPost, "/v1/batch",
		batchRequest{Statements: []string{"SELECT Name FROM EE_Student", "  "}})
	if status != http.StatusBadRequest {
		t.Errorf("blank statement: %d %s", status, body)
	}
	many := make([]string, maxBatchStatements+1)
	for i := range many {
		many[i] = "SELECT Name FROM EE_Student"
	}
	status, body = doJSON(t, ts, http.MethodPost, "/v1/batch", batchRequest{Statements: many})
	if status != http.StatusBadRequest {
		t.Errorf("oversized batch: %d %s", status, body)
	}
}

// TestPlainSelectOmitsAnnotationFields: the satellite wire-format fix
// — a plain SELECT's /v1/query response must not serialize empty
// lineage/fusion fields, even when lineage was requested; the
// annotation payloads are opt-in projections, not a tax on every
// read.
func TestPlainSelectOmitsAnnotationFields(t *testing.T) {
	ts := newTestServer(t)
	registerStudents(t, ts)

	status, body := doJSON(t, ts, http.MethodPost, "/v1/query",
		queryRequest{SQL: "SELECT Name FROM EE_Student", Lineage: true})
	if status != http.StatusOK {
		t.Fatalf("query: %d %s", status, body)
	}
	for _, key := range []string{`"lineage"`, `"fusion"`, `"pipeline"`} {
		if bytes.Contains(body, []byte(key)) {
			t.Errorf("plain SELECT response serializes %s: %s", key, body)
		}
	}
	// A zero-row fusion result must not serialize an empty lineage
	// array either.
	status, body = doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{
		SQL:     `SELECT Name FUSE FROM EE_Student, CS_Students FUSE BY (Name) HAVING Name = 'Nobody'`,
		Lineage: true,
	})
	if status != http.StatusOK {
		t.Fatalf("zero-row fusion: %d %s", status, body)
	}
	if bytes.Contains(body, []byte(`"lineage"`)) {
		t.Errorf("zero-row fusion response serializes lineage: %s", body)
	}
}
