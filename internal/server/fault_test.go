package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hummer"
	"hummer/internal/faultinject"
	"hummer/internal/testutil"
)

// doJSONResp is doJSON when the test also needs response headers.
func doJSONResp(t *testing.T, ts *httptest.Server, method, path string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// wantRetryAfter asserts the overload response carries a sane
// Retry-After: present, an integer, at least one second.
func wantRetryAfter(t *testing.T, resp *http.Response) {
	t.Helper()
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatalf("%d response has no Retry-After header", resp.StatusCode)
	}
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After = %q, want an integer: %v", ra, err)
	}
	if secs < 1 {
		t.Fatalf("Retry-After = %d, want >= 1", secs)
	}
}

// TestRetryAfterOnOverload: 429 (admission rejection) and 504 (query
// timeout) responses tell the client when to come back.
func TestRetryAfterOnOverload(t *testing.T) {
	t.Run("429", func(t *testing.T) {
		db := studentFixture(t)
		entered := make(chan struct{})
		release := make(chan struct{})
		var once sync.Once
		db.OnCorrespondences(func(alias string, proposed []hummer.Correspondence) []hummer.Correspondence {
			once.Do(func() {
				close(entered)
				<-release
			})
			return proposed
		})
		ts := newLifecycleServer(t, db, WithMaxInflight(1))
		defer close(release)

		go func() { doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery}) }()
		<-entered

		resp, body := doJSONResp(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery})
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status = %d (%s), want 429", resp.StatusCode, body)
		}
		wantRetryAfter(t, resp)
	})

	t.Run("504", func(t *testing.T) {
		db := studentFixture(t)
		db.OnCorrespondences(func(alias string, proposed []hummer.Correspondence) []hummer.Correspondence {
			time.Sleep(100 * time.Millisecond)
			return proposed
		})
		ts := newLifecycleServer(t, db, WithQueryTimeout(15*time.Millisecond))

		resp, body := doJSONResp(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery})
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status = %d (%s), want 504", resp.StatusCode, body)
		}
		wantRetryAfter(t, resp)
	})
}

// blockingFixture arms the wizard hook so the first query parks on
// release while holding its admission slot; later queries run through.
func blockingFixture(t *testing.T) (db *hummer.DB, entered, release chan struct{}) {
	t.Helper()
	db = studentFixture(t)
	entered = make(chan struct{})
	release = make(chan struct{})
	var once sync.Once
	db.OnCorrespondences(func(alias string, proposed []hummer.Correspondence) []hummer.Correspondence {
		once.Do(func() {
			close(entered)
			<-release
		})
		return proposed
	})
	return db, entered, release
}

// TestAdmissionWaitQueueAbsorbsBurst: with a wait queue configured, an
// over-limit request parks instead of 429ing and is admitted when the
// slot frees up.
func TestAdmissionWaitQueueAbsorbsBurst(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	db, entered, release := blockingFixture(t)
	ts := newLifecycleServer(t, db, WithMaxInflight(1), WithAdmissionWait(2, 2*time.Second))

	firstDone := make(chan int, 1)
	go func() {
		status, _ := doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery})
		firstDone <- status
	}()
	<-entered // the first query holds the only slot

	secondDone := make(chan int, 1)
	go func() {
		status, _ := doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery})
		secondDone <- status
	}()
	// The second query must be queued, not rejected.
	waitForStat(t, ts, "a queued waiter", func(st statsResponse) bool {
		return st.AdmissionWaiters == 1
	})

	close(release)
	if status := <-firstDone; status != http.StatusOK {
		t.Fatalf("first query: status %d, want 200", status)
	}
	if status := <-secondDone; status != http.StatusOK {
		t.Fatalf("queued query: status %d, want 200 after the slot freed", status)
	}
	st := serverStats(t, ts)
	if st.AdmissionWaits != 1 {
		t.Errorf("AdmissionWaits = %d, want 1", st.AdmissionWaits)
	}
	if st.AdmissionWaiters != 0 {
		t.Errorf("AdmissionWaiters = %d at rest, want 0", st.AdmissionWaiters)
	}
	if st.RejectedQueries != 0 {
		t.Errorf("RejectedQueries = %d, want 0 — the queue should have absorbed the burst", st.RejectedQueries)
	}
}

// TestAdmissionWaitTimeout503: a queued request whose wait allowance
// elapses is rejected 503 with Retry-After, and counted.
func TestAdmissionWaitTimeout503(t *testing.T) {
	db, entered, release := blockingFixture(t)
	ts := newLifecycleServer(t, db, WithMaxInflight(1), WithAdmissionWait(2, 20*time.Millisecond))
	defer close(release)

	go func() { doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery}) }()
	<-entered

	resp, body := doJSONResp(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503 after the wait expired", resp.StatusCode, body)
	}
	wantRetryAfter(t, resp)
	st := serverStats(t, ts)
	if st.AdmissionWaitTimeouts != 1 {
		t.Errorf("AdmissionWaitTimeouts = %d, want 1", st.AdmissionWaitTimeouts)
	}
	if st.RejectedQueries != 1 {
		t.Errorf("RejectedQueries = %d, want 1", st.RejectedQueries)
	}
}

// TestAdmissionQueueFull429: the wait queue is bounded — once it is
// occupied, further over-limit requests get an immediate 429.
func TestAdmissionQueueFull429(t *testing.T) {
	db, entered, release := blockingFixture(t)
	ts := newLifecycleServer(t, db, WithMaxInflight(1), WithAdmissionWait(1, 2*time.Second))

	firstDone := make(chan int, 1)
	go func() {
		status, _ := doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery})
		firstDone <- status
	}()
	<-entered
	queuedDone := make(chan int, 1)
	go func() {
		status, _ := doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery})
		queuedDone <- status
	}()
	waitForStat(t, ts, "the single queue seat taken", func(st statsResponse) bool {
		return st.AdmissionWaiters == 1
	})

	resp, body := doJSONResp(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429 with the queue full", resp.StatusCode, body)
	}
	wantRetryAfter(t, resp)

	close(release)
	if status := <-firstDone; status != http.StatusOK {
		t.Fatalf("first query: status %d", status)
	}
	if status := <-queuedDone; status != http.StatusOK {
		t.Fatalf("queued query: status %d", status)
	}
}

// waitForStat polls /v1/stats until cond holds, with a deadline.
func waitForStat(t *testing.T, ts *httptest.Server, what string, cond func(statsResponse) bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond(serverStats(t, ts)) {
		if time.Now().After(deadline) {
			t.Fatalf("never observed %s: %+v", what, serverStats(t, ts))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHandlerPanicContained is the end-to-end containment acceptance
// test: an injected panic inside a request handler becomes a 500, the
// process survives, the counters advance, and the identical query
// afterwards returns byte-identical to the unfaulted baseline.
func TestHandlerPanicContained(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	db := studentFixture(t)
	ts := newLifecycleServer(t, db)

	status, baseline := doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery})
	if status != http.StatusOK {
		t.Fatalf("baseline: status %d: %s", status, baseline)
	}
	before := serverStats(t, ts)

	faultinject.Arm(&faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteServerQuery, Kind: faultinject.Panic, Times: 1},
	}})
	status, body := doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery})
	faultinject.Disarm()
	if status != http.StatusInternalServerError {
		t.Fatalf("faulted query: status %d (%s), want 500", status, body)
	}
	if !strings.Contains(string(body), "internal error") {
		t.Fatalf("500 body: %s", body)
	}

	st := serverStats(t, ts)
	if st.PanicsRecovered <= before.PanicsRecovered {
		t.Errorf("PanicsRecovered did not advance: %d -> %d", before.PanicsRecovered, st.PanicsRecovered)
	}
	if st.InternalErrors != before.InternalErrors+1 {
		t.Errorf("InternalErrors = %d, want %d", st.InternalErrors, before.InternalErrors+1)
	}

	// The process survived and the same query is byte-identical.
	status, again := doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery})
	if status != http.StatusOK {
		t.Fatalf("post-panic query: status %d: %s", status, again)
	}
	if !bytes.Equal(again, baseline) {
		t.Errorf("post-panic result differs from baseline:\nwant: %s\ngot:  %s", baseline, again)
	}
}

// TestStreamPanicContained: a panic injected into the stream handler
// before any bytes are written maps to a clean 500; one injected deep
// in the producer (after headers) surfaces as the in-band error
// record. Either way the server keeps serving.
func TestStreamPanicContained(t *testing.T) {
	db := studentFixture(t)
	ts := newLifecycleServer(t, db)

	faultinject.Arm(&faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteServerStream, Kind: faultinject.Panic, Times: 1},
	}})
	resp, body := doJSONResp(t, ts, http.MethodPost, "/v1/query/stream", queryRequest{SQL: fuseQuery})
	faultinject.Disarm()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted stream: status %d (%s), want 500", resp.StatusCode, body)
	}

	// Deep fault: After skips the producer-start hit so the panic fires
	// at the first chunk boundary — inside the producer goroutine, after
	// the NDJSON stream has started — and is reported as the terminal
	// error record.
	faultinject.Arm(&faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SitePlanStream, Kind: faultinject.Panic, After: 1, Times: 1},
	}})
	resp, body = doJSONResp(t, ts, http.MethodPost, "/v1/query/stream", queryRequest{SQL: fuseQuery})
	faultinject.Disarm()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deep-faulted stream: status %d (%s), want 200 + error record", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"error"`) || !strings.Contains(string(body), "internal error") {
		t.Fatalf("deep-faulted stream body has no internal-error record:\n%s", body)
	}

	// Still serving, cleanly.
	status, out := doJSON(t, ts, http.MethodPost, "/v1/query/stream", queryRequest{SQL: fuseQuery})
	if status != http.StatusOK || strings.Contains(string(out), `"error"`) {
		t.Fatalf("post-fault stream: status %d:\n%s", status, out)
	}
}

// TestStatsAndMetricsExposeFaultCounters: the new observability
// surface — panic/internal-error counters, admission-wait series and
// the stream chunk-queue depth gauge — is present on both endpoints.
func TestStatsAndMetricsExposeFaultCounters(t *testing.T) {
	db := studentFixture(t)
	ts := newLifecycleServer(t, db)

	status, raw := doJSON(t, ts, http.MethodGet, "/v1/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	for _, field := range []string{
		`"panics_recovered"`, `"internal_errors"`,
		`"admission_waiters"`, `"admission_waits"`, `"admission_wait_timeouts"`,
		`"stream_chunk_queue_depth"`,
	} {
		if !strings.Contains(string(raw), field) {
			t.Errorf("stats JSON missing %s: %s", field, raw)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE hummer_panics_recovered_total counter",
		"# TYPE hummer_internal_errors_total counter",
		"# TYPE hummer_admission_waits_total counter",
		"# TYPE hummer_admission_wait_timeouts_total counter",
		"# TYPE hummer_admission_waiters gauge",
		"# TYPE hummer_stream_chunk_queue_depth gauge",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
