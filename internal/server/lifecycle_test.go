package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hummer"
)

// newLifecycleServer builds a test server over a caller-provided DB
// with server options — the harness for timeout/admission tests.
func newLifecycleServer(t *testing.T, db *hummer.DB, opts ...Option) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(db, opts...).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// studentFixture registers the running example directly on a DB.
func studentFixture(t *testing.T) *hummer.DB {
	t.Helper()
	db := hummer.New()
	ee := hummer.NewTable("EE_Student", "Name", "Age", "City").
		AddText("Jonathan Smith", "21", "Berlin").
		AddText("Maria Garcia", "24", "Hamburg").
		Build()
	cs := hummer.NewTable("CS_Students", "FullName", "Years", "Town").
		AddText("Jonathan Smith", "22", "Berlin").
		AddText("Lena Fischer", "20", "Stuttgart").
		Build()
	if err := db.RegisterTable("EE_Student", ee); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterTable("CS_Students", cs); err != nil {
		t.Fatal(err)
	}
	return db
}

func serverStats(t *testing.T, ts *httptest.Server) statsResponse {
	t.Helper()
	status, body := doJSON(t, ts, http.MethodGet, "/v1/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats: status %d: %s", status, body)
	}
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("stats: %v in %s", err, body)
	}
	return st
}

// TestQueryTimeoutReturns504: a query that outlives the configured
// timeout is cancelled mid-flight and reported as a gateway timeout,
// and the timeout counter increments.
func TestQueryTimeoutReturns504(t *testing.T) {
	db := studentFixture(t)
	// The wizard hook outlives the timeout, so the pipeline's next
	// cooperative check observes the elapsed deadline.
	db.OnCorrespondences(func(alias string, proposed []hummer.Correspondence) []hummer.Correspondence {
		time.Sleep(100 * time.Millisecond)
		return proposed
	})
	ts := newLifecycleServer(t, db, WithQueryTimeout(15*time.Millisecond))

	status, body := doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", status, body)
	}
	if !strings.Contains(string(body), "timeout") {
		t.Fatalf("timeout error body: %s", body)
	}
	st := serverStats(t, ts)
	if st.QueryTimeouts != 1 {
		t.Errorf("QueryTimeouts = %d, want 1", st.QueryTimeouts)
	}
	if st.InflightQueries != 0 {
		t.Errorf("InflightQueries = %d after the query returned, want 0", st.InflightQueries)
	}

	// The DB remains usable with a roomier deadline.
	db.OnCorrespondences(nil)
	status, body = doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery})
	if status != http.StatusOK {
		t.Fatalf("query after timeout: status %d: %s", status, body)
	}
}

// TestMaxInflightRejectsWith429: with an inflight cap of 1, a second
// concurrent query is rejected immediately instead of queueing, and
// the first completes untouched.
func TestMaxInflightRejectsWith429(t *testing.T) {
	db := studentFixture(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	db.OnCorrespondences(func(alias string, proposed []hummer.Correspondence) []hummer.Correspondence {
		once.Do(func() {
			close(entered)
			<-release
		})
		return proposed
	})
	ts := newLifecycleServer(t, db, WithMaxInflight(1))

	firstDone := make(chan int, 1)
	go func() {
		status, _ := doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery})
		firstDone <- status
	}()
	<-entered // the first query now holds the only slot

	status, body := doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery})
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-limit query: status %d (%s), want 429", status, body)
	}
	if !strings.Contains(string(body), "inflight") {
		t.Fatalf("429 body: %s", body)
	}

	close(release)
	if status := <-firstDone; status != http.StatusOK {
		t.Fatalf("first query: status %d, want 200", status)
	}
	st := serverStats(t, ts)
	if st.RejectedQueries != 1 {
		t.Errorf("RejectedQueries = %d, want 1", st.RejectedQueries)
	}
	if st.InflightQueries != 0 {
		t.Errorf("InflightQueries = %d at rest, want 0", st.InflightQueries)
	}

	// The slot is free again: the next query is admitted.
	status, body = doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery})
	if status != http.StatusOK {
		t.Fatalf("query after release: status %d: %s", status, body)
	}
}

// TestClientDisconnectCancelsQuery: a client that hangs up cancels its
// pipeline mid-flight; the server counts the 499 and stays healthy.
func TestClientDisconnectCancelsQuery(t *testing.T) {
	db := studentFixture(t)
	entered := make(chan struct{})
	var once sync.Once
	db.OnCorrespondences(func(alias string, proposed []hummer.Correspondence) []hummer.Correspondence {
		once.Do(func() { close(entered) })
		time.Sleep(300 * time.Millisecond) // outlive the client below
		return proposed
	})
	ts := newLifecycleServer(t, db)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/query",
		strings.NewReader(`{"sql": "SELECT Name FUSE FROM EE_Student, CS_Students FUSE BY (Name)"}`))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	<-entered
	cancel() // the client walks away mid-query
	if err := <-errCh; err == nil {
		t.Fatal("client request unexpectedly succeeded after cancel")
	}

	// The server observes the disconnect asynchronously; poll briefly.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if st := serverStats(t, ts); st.ClientDisconnects == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ClientDisconnects never incremented: %+v", serverStats(t, ts))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And keeps serving.
	status, body := doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery})
	if status != http.StatusOK {
		t.Fatalf("query after client disconnect: status %d: %s", status, body)
	}
}

// TestMetricsEndpoint: /metrics serves the Prometheus text format
// with the query counters and the per-kind cache traffic, including
// the fused tier.
func TestMetricsEndpoint(t *testing.T) {
	db := studentFixture(t)
	ts := newLifecycleServer(t, db)

	// Cold + warm query so every cache kind has traffic.
	for i := 0; i < 2; i++ {
		if status, body := doJSON(t, ts, http.MethodPost, "/v1/query", queryRequest{SQL: fuseQuery}); status != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, status, body)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE hummer_queries_total counter",
		"hummer_queries_total 2",
		"# TYPE hummer_inflight_queries gauge",
		"hummer_inflight_queries 0",
		"# TYPE hummer_query_duration_seconds histogram",
		`hummer_query_duration_seconds_bucket{class="query",le="0.0005"}`,
		`hummer_query_duration_seconds_bucket{class="query",le="+Inf"} 2`,
		`hummer_query_duration_seconds_sum{class="query"}`,
		`hummer_query_duration_seconds_count{class="query"} 2`,
		`hummer_query_duration_seconds_bucket{class="stream",le="+Inf"} 0`,
		`hummer_query_duration_seconds_count{class="batch"} 0`,
		`hummer_cache_hits_total{kind="fused"} 1`,
		`hummer_cache_misses_total{kind="fused"} 1`,
		`hummer_cache_misses_total{kind="match"} 1`,
		`hummer_cache_misses_total{kind="detect"} 1`,
		"hummer_queries_rejected_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full metrics output:\n%s", text)
	}
}
