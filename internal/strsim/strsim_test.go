package strsim

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
		{"über", "uber", 1}, // rune-wise, not byte-wise
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetric(t *testing.T) {
	err := quick.Check(func(a, b string) bool {
		return Levenshtein(a, b) == Levenshtein(b, a)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangleInequality(t *testing.T) {
	err := quick.Check(func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestLevenshteinSim(t *testing.T) {
	if !approx(LevenshteinSim("", ""), 1) {
		t.Error("two empties must be identical")
	}
	if !approx(LevenshteinSim("abc", "abc"), 1) {
		t.Error("identical strings must score 1")
	}
	if !approx(LevenshteinSim("abcd", "abcx"), 0.75) {
		t.Errorf("sim = %g, want 0.75", LevenshteinSim("abcd", "abcx"))
	}
	if LevenshteinSim("abc", "xyz") != 0 {
		t.Error("disjoint equal-length strings must score 0")
	}
}

func TestJaroKnownValues(t *testing.T) {
	// Classic reference pairs.
	cases := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.944444444},
		{"DIXON", "DICKSONX", 0.766666667},
		{"JELLYFISH", "SMELLYFISH", 0.896296296},
		{"abc", "abc", 1},
		{"", "", 1},
		{"a", "", 0},
		{"abc", "xyz", 0},
	}
	for _, c := range cases {
		if got := Jaro(c.a, c.b); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("Jaro(%q,%q) = %.9f, want %.9f", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.961111111},
		{"DWAYNE", "DUANE", 0.84},
		{"abc", "abc", 1},
	}
	for _, c := range cases {
		if got := JaroWinkler(c.a, c.b); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("JaroWinkler(%q,%q) = %.9f, want %.9f", c.a, c.b, got, c.want)
		}
	}
}

func TestSimilaritiesBounded(t *testing.T) {
	err := quick.Check(func(a, b string) bool {
		for _, s := range []float64{
			LevenshteinSim(a, b), Jaro(a, b), JaroWinkler(a, b), QGramSim(a, b, 3),
		} {
			if s < 0 || s > 1 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! 42 foo_bar")
	want := []string{"hello", "world", "42", "foo", "bar"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if len(Tokenize("")) != 0 || len(Tokenize("...")) != 0 {
		t.Error("empty/punct-only input must yield no tokens")
	}
}

func TestQGrams(t *testing.T) {
	got := QGrams("ab", 2)
	want := []string{"#a", "ab", "b#"}
	if len(got) != len(want) {
		t.Fatalf("QGrams = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("gram[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if QGrams("", 2) != nil {
		// padded "" with q=2 → "#" + "" + "#" = "##", one gram.
		t.Log("empty string grams:", QGrams("", 2))
	}
}

func TestQGramSim(t *testing.T) {
	if !approx(QGramSim("abc", "abc", 2), 1) {
		t.Error("identical strings must score 1")
	}
	if QGramSim("abc", "xyz", 2) != 0 {
		t.Error("disjoint strings must score 0")
	}
	if s := QGramSim("nicholas", "nicolas", 2); s < 0.7 {
		t.Errorf("near-duplicate q-gram sim = %g, want > 0.7", s)
	}
}

func TestNumericSim(t *testing.T) {
	if !approx(NumericSim(5, 5), 1) || !approx(NumericSim(0, 0), 1) {
		t.Error("equal numbers must score 1")
	}
	if !approx(NumericSim(10, 5), 0.5) {
		t.Errorf("NumericSim(10,5) = %g, want 0.5", NumericSim(10, 5))
	}
	if NumericSim(1, -1) != 0 {
		t.Errorf("NumericSim(1,-1) = %g, want 0", NumericSim(1, -1))
	}
	if s := NumericSim(100, 99); s < 0.98 {
		t.Errorf("NumericSim(100,99) = %g, want ~0.99", s)
	}
}

func TestCorpusIDF(t *testing.T) {
	c := NewCorpus()
	c.AddText("john smith")
	c.AddText("john doe")
	c.AddText("jane roe")
	if c.Docs() != 3 {
		t.Fatalf("Docs = %d", c.Docs())
	}
	if c.IDF("john") >= c.IDF("smith") {
		t.Error("frequent token must have lower IDF than rare token")
	}
	if c.IDF("unseen") != c.IDF("smith") {
		t.Error("unseen token must weigh like df=1")
	}
}

func TestSoftIDFBounds(t *testing.T) {
	c := NewCorpus()
	for i := 0; i < 10; i++ {
		c.AddText("common token")
	}
	c.AddText("rare")
	if s := c.SoftIDF("common"); s <= 0 || s > 1 {
		t.Errorf("SoftIDF(common) = %g, out of (0,1]", s)
	}
	if s := c.SoftIDF("rare"); s <= c.SoftIDF("common") {
		t.Error("rare token must have higher soft IDF")
	}
	empty := NewCorpus()
	if empty.SoftIDF("x") != 1 {
		t.Error("empty corpus must default soft IDF to 1")
	}
}

func TestTFIDFIdenticalAndDisjoint(t *testing.T) {
	c := NewCorpus()
	c.AddText("alice berlin 30")
	c.AddText("bob tokyo 25")
	if s := c.TFIDF("alice berlin", "alice berlin"); !approx(s, 1) {
		t.Errorf("identical TFIDF = %g, want 1", s)
	}
	if s := c.TFIDF("alice berlin", "bob tokyo"); s != 0 {
		t.Errorf("disjoint TFIDF = %g, want 0", s)
	}
}

func TestTFIDFWeighsRareTokensHigher(t *testing.T) {
	c := NewCorpus()
	// "smith" appears everywhere; "xylophone" once.
	for i := 0; i < 20; i++ {
		c.AddText("smith common words")
	}
	c.AddText("xylophone smith")
	shared := c.TFIDF("xylophone foo", "xylophone bar")
	common := c.TFIDF("smith foo", "smith bar")
	if shared <= common {
		t.Errorf("rare shared token (%g) must outweigh common shared token (%g)", shared, common)
	}
}

func TestSoftTFIDFMatchesTypos(t *testing.T) {
	c := NewCorpus()
	c.AddText("jonathan smith berlin")
	c.AddText("nathalie meyer tokyo")
	hard := c.TFIDF("jonathan smith", "jonathon smith")
	soft := c.SoftTFIDF("jonathan smith", "jonathon smith")
	if soft <= hard {
		t.Errorf("SoftTFIDF (%g) must beat TFIDF (%g) on typo'd token", soft, hard)
	}
	if soft < 0.9 {
		t.Errorf("SoftTFIDF on near-identical strings = %g, want ≥ 0.9", soft)
	}
}

func TestSoftTFIDFEdgeCases(t *testing.T) {
	c := NewCorpus()
	c.AddText("a b")
	if s := c.SoftTFIDF("", ""); s != 1 {
		t.Errorf("both empty = %g, want 1", s)
	}
	if s := c.SoftTFIDF("a", ""); s != 0 {
		t.Errorf("one empty = %g, want 0", s)
	}
}

func TestSoftTFIDFBounded(t *testing.T) {
	c := NewCorpus()
	texts := []string{"alpha beta", "beta gamma", "gamma delta alpha"}
	for _, s := range texts {
		c.AddText(s)
	}
	for _, a := range texts {
		for _, b := range texts {
			s := c.SoftTFIDF(a, b)
			if s < 0 || s > 1 || math.IsNaN(s) {
				t.Errorf("SoftTFIDF(%q,%q) = %g out of bounds", a, b, s)
			}
			if a == b && !approx(s, 1) {
				t.Errorf("SoftTFIDF(%q,%q) = %g, want 1", a, b, s)
			}
		}
	}
}

func TestCosine(t *testing.T) {
	a := Vector{"x": 1}
	b := Vector{"x": 0.6, "y": 0.8}
	if got := Cosine(a, b); !approx(got, 0.6) {
		t.Errorf("Cosine = %g, want 0.6", got)
	}
	if got := Cosine(a, Vector{}); got != 0 {
		t.Errorf("Cosine with empty = %g", got)
	}
}
