// Package strsim implements the string similarity measures HumMer's
// matching components rely on: Levenshtein edit distance, Jaro and
// Jaro-Winkler, token-based TFIDF cosine similarity with corpus
// statistics, and the hybrid SoftTFIDF measure of Cohen, Ravikumar and
// Fienberg (IIWeb 2003) used by DUMAS for field-wise comparison.
//
// All similarities are normalized to [0,1], 1 meaning identical.
package strsim

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// Levenshtein returns the edit distance between a and b (unit costs,
// runes as symbols).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LevenshteinSim is the normalized edit similarity:
// 1 - dist/max(len(a), len(b)); two empty strings are identical.
func LevenshteinSim(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	m := la
	if lb > m {
		m = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

// Jaro returns the Jaro similarity of a and b.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	window := len(ra)
	if len(rb) > window {
		window = len(rb)
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, len(ra))
	matchB := make([]bool, len(rb))
	matches := 0
	for i, c := range ra {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > len(rb) {
			hi = len(rb)
		}
		for j := lo; j < hi; j++ {
			if !matchB[j] && rb[j] == c {
				matchA[i] = true
				matchB[j] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := range ra {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-t)/m) / 3
}

// JaroWinkler boosts Jaro similarity for strings sharing a prefix, with
// the standard scaling factor p=0.1 and max prefix 4.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// Tokenize splits s into lower-cased tokens at any non-alphanumeric
// boundary. It is the shared tokenizer for all token-based measures.
func Tokenize(s string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return tokens
}

// QGrams returns the padded q-grams of s (lower-cased), q >= 1.
// Padding with q-1 '#' characters on both ends weights affixes, the
// standard construction for q-gram distance.
func QGrams(s string, q int) []string {
	if q < 1 {
		q = 1
	}
	pad := strings.Repeat("#", q-1)
	padded := []rune(pad + strings.ToLower(s) + pad)
	if len(padded) < q {
		return nil
	}
	grams := make([]string, 0, len(padded)-q+1)
	for i := 0; i+q <= len(padded); i++ {
		grams = append(grams, string(padded[i:i+q]))
	}
	return grams
}

// QGramSim is the Dice coefficient over q-gram multisets.
func QGramSim(a, b string, q int) float64 {
	ga, gb := QGrams(a, q), QGrams(b, q)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	count := map[string]int{}
	for _, g := range ga {
		count[g]++
	}
	common := 0
	for _, g := range gb {
		if count[g] > 0 {
			count[g]--
			common++
		}
	}
	return 2 * float64(common) / float64(len(ga)+len(gb))
}

// NumericSim compares two numbers: 1 when equal, decaying with the
// relative difference |a-b| / max(|a|,|b|). Two zeros are identical.
func NumericSim(a, b float64) float64 {
	if a == b {
		return 1
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 1
	}
	d := math.Abs(a-b) / m
	if d > 1 {
		return 0
	}
	return 1 - d
}

// --- Corpus / TFIDF ----------------------------------------------------

// Corpus accumulates document frequencies over a collection of token
// documents, providing IDF weights for TFIDF and SoftTFIDF. A
// "document" is whatever unit the caller chooses: a whole tuple for
// DUMAS duplicate search, a column's values for identifying-power
// estimation.
type Corpus struct {
	docs int
	df   map[string]int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{df: make(map[string]int)}
}

// AddDoc records one document's tokens (document frequency counts each
// token once per document).
func (c *Corpus) AddDoc(tokens []string) {
	c.docs++
	seen := map[string]bool{}
	for _, t := range tokens {
		if !seen[t] {
			seen[t] = true
			c.df[t]++
		}
	}
}

// AddText tokenizes s and records it as one document.
func (c *Corpus) AddText(s string) { c.AddDoc(Tokenize(s)) }

// Merge folds another corpus's document-frequency statistics into c.
// Counts are added, so merging per-shard corpora built over disjoint
// row ranges yields exactly the corpus a sequential pass would have
// built — the merge order cannot matter. This is what lets the
// measure-precomputation phases shard corpus building across workers
// while keeping results byte-identical.
func (c *Corpus) Merge(o *Corpus) {
	c.docs += o.docs
	for t, n := range o.df {
		c.df[t] += n
	}
}

// Docs returns the number of documents added.
func (c *Corpus) Docs() int { return c.docs }

// IDF returns the smoothed inverse document frequency of token t:
// log(1 + N/df). Unknown tokens receive the maximum weight
// log(1 + N), i.e. df treated as 1.
func (c *Corpus) IDF(t string) float64 {
	df := c.df[t]
	if df < 1 {
		df = 1
	}
	return math.Log(1 + float64(c.docs)/float64(df))
}

// SoftIDF is a dampened identifying-power weight in [0,1]:
// IDF normalized by the maximum possible IDF of the corpus. Used by
// duplicate detection to weight attribute values ("soft version of
// IDF" in the paper, §2.3).
func (c *Corpus) SoftIDF(t string) float64 {
	if c.docs == 0 {
		return 1
	}
	maxIDF := math.Log(1 + float64(c.docs))
	if maxIDF == 0 {
		return 1
	}
	return c.IDF(t) / maxIDF
}

// Vector is a sparse TFIDF-weighted token vector, L2-normalized.
type Vector map[string]float64

// TFIDFVector builds the normalized TFIDF vector of tokens under
// corpus c. Term frequency is log-scaled (1 + log tf).
func (c *Corpus) TFIDFVector(tokens []string) Vector {
	tf := map[string]int{}
	for _, t := range tokens {
		tf[t]++
	}
	v := make(Vector, len(tf))
	var norm float64
	for t, n := range tf {
		w := (1 + math.Log(float64(n))) * c.IDF(t)
		v[t] = w
		norm += w * w
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for t := range v {
			v[t] /= norm
		}
	}
	return v
}

// Cosine returns the cosine similarity of two normalized vectors.
func Cosine(a, b Vector) float64 {
	if len(b) < len(a) {
		a, b = b, a
	}
	var dot float64
	for t, w := range a {
		dot += w * b[t]
	}
	if dot > 1 { // guard against rounding
		dot = 1
	}
	return dot
}

// TFIDF computes the TFIDF cosine similarity of two texts under
// corpus c.
func (c *Corpus) TFIDF(a, b string) float64 {
	return Cosine(c.TFIDFVector(Tokenize(a)), c.TFIDFVector(Tokenize(b)))
}

// --- SoftTFIDF ----------------------------------------------------------

// SoftTFIDFThreshold is the inner-similarity threshold θ of Cohen et
// al.: tokens with JaroWinkler ≥ θ are considered soft matches.
const SoftTFIDFThreshold = 0.9

// SoftTFIDF computes the hybrid SoftTFIDF similarity of a and b:
// TFIDF cosine where tokens of a may match CLOSE(θ) tokens of b under
// Jaro-Winkler, each contribution scaled by the inner similarity.
func (c *Corpus) SoftTFIDF(a, b string) float64 {
	return c.SoftTFIDFTokens(Tokenize(a), Tokenize(b))
}

// SoftTFIDFTokens is SoftTFIDF over pre-tokenized inputs.
func (c *Corpus) SoftTFIDFTokens(ta, tb []string) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	va := c.TFIDFVector(ta)
	vb := c.TFIDFVector(tb)
	var sim float64
	for t, wa := range va {
		// Find the closest token in b.
		best, bestSim := "", 0.0
		for u := range vb {
			s := innerSim(t, u)
			if s > bestSim {
				best, bestSim = u, s
			}
		}
		if bestSim >= SoftTFIDFThreshold {
			sim += wa * vb[best] * bestSim
		}
	}
	if sim > 1 {
		sim = 1
	}
	return sim
}

// innerSim is the secondary measure of SoftTFIDF: exact matches score
// 1 directly (fast path), otherwise Jaro-Winkler.
func innerSim(a, b string) float64 {
	if a == b {
		return 1
	}
	return JaroWinkler(a, b)
}

// --- Deterministic sparse term vectors ----------------------------------

// TermVec is a TFIDF-weighted, L2-normalized sparse vector whose terms
// are sorted lexicographically. It carries the same weights as the
// map-based Vector, but every operation iterates terms in sorted
// order, so float accumulation order — and with it the low-order bits
// of every similarity — is deterministic run-to-run, which map
// iteration cannot provide. The parallel matching paths depend on
// this: a byte-identical-results guarantee needs deterministic floats.
// Dot products over two TermVecs are also allocation-free (a sorted
// two-pointer merge instead of per-term map lookups).
type TermVec struct {
	Terms []string
	Ws    []float64
}

// Len returns the number of distinct terms.
func (v TermVec) Len() int { return len(v.Terms) }

// TermVec builds the normalized TFIDF term vector of tokens under
// corpus c, with terms sorted. Term frequency is log-scaled
// (1 + log tf), exactly as TFIDFVector.
func (c *Corpus) TermVec(tokens []string) TermVec {
	if len(tokens) == 0 {
		return TermVec{}
	}
	sorted := append([]string(nil), tokens...)
	sort.Strings(sorted)
	v := TermVec{
		Terms: make([]string, 0, len(sorted)),
		Ws:    make([]float64, 0, len(sorted)),
	}
	var norm float64
	flush := func(t string, tf int) {
		w := (1 + math.Log(float64(tf))) * c.IDF(t)
		v.Terms = append(v.Terms, t)
		v.Ws = append(v.Ws, w)
		norm += w * w
	}
	run := 1
	for i := 1; i <= len(sorted); i++ {
		if i < len(sorted) && sorted[i] == sorted[i-1] {
			run++
			continue
		}
		flush(sorted[i-1], run)
		run = 1
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range v.Ws {
			v.Ws[i] /= norm
		}
	}
	return v
}

// DotTermVecs returns the cosine similarity of two normalized term
// vectors: a sorted two-pointer merge, allocation-free and with a
// deterministic accumulation order.
func DotTermVecs(a, b TermVec) float64 {
	var dot float64
	i, j := 0, 0
	for i < len(a.Terms) && j < len(b.Terms) {
		switch {
		case a.Terms[i] < b.Terms[j]:
			i++
		case a.Terms[i] > b.Terms[j]:
			j++
		default:
			dot += a.Ws[i] * b.Ws[j]
			i++
			j++
		}
	}
	if dot > 1 { // guard against rounding
		dot = 1
	}
	return dot
}

// SoftTFIDFTermVecs computes the SoftTFIDF similarity over prebuilt
// term vectors: for each term of va (in sorted order) the closest term
// of vb under the inner measure contributes wa·wb·sim when the inner
// similarity reaches SoftTFIDFThreshold. sc provides the reusable
// buffers for the inner Jaro-Winkler comparisons, so the inner loop
// performs no allocation. Semantics match SoftTFIDFTokens; among
// equally-close tokens the lexicographically first wins, making the
// result deterministic.
func (c *Corpus) SoftTFIDFTermVecs(sc *Scratch, va, vb TermVec) float64 {
	if va.Len() == 0 && vb.Len() == 0 {
		return 1
	}
	if va.Len() == 0 || vb.Len() == 0 {
		return 0
	}
	var sim float64
	for i, t := range va.Terms {
		bestW, bestSim := 0.0, 0.0
		for j, u := range vb.Terms {
			var s float64
			if t == u {
				s = 1
			} else {
				s = sc.JaroWinkler(t, u)
			}
			if s > bestSim {
				bestW, bestSim = vb.Ws[j], s
				// Nothing can beat an exact match (comparison is
				// strict), and duplicate fields usually are exact —
				// skip the remaining Jaro-Winkler calls.
				if bestSim == 1 {
					break
				}
			}
		}
		if bestSim >= SoftTFIDFThreshold {
			sim += va.Ws[i] * bestW * bestSim
		}
	}
	if sim > 1 {
		sim = 1
	}
	return sim
}
