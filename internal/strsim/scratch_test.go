package strsim

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestScratchLevenshteinSimMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var s Scratch
	for trial := 0; trial < 2000; trial++ {
		a := randomWord(rng, rng.Intn(20))
		b := randomWord(rng, rng.Intn(20))
		want := LevenshteinSim(a, b)
		if got := s.LevenshteinSim(a, b); got != want {
			t.Fatalf("LevenshteinSim(%q,%q) = %g, exact %g", a, b, got, want)
		}
	}
}

func TestBoundedExactAboveCutoff(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var s Scratch
	for _, cutoff := range []float64{0.5, 0.75, 0.9} {
		for trial := 0; trial < 2000; trial++ {
			a := randomWord(rng, 1+rng.Intn(16))
			// Mutate a few characters so many pairs land near the cutoff.
			rb := []byte(a)
			for k := 0; k < rng.Intn(4); k++ {
				rb[rng.Intn(len(rb))] = byte('a' + rng.Intn(26))
			}
			b := string(rb)
			exact := LevenshteinSim(a, b)
			got := s.LevenshteinSimBounded(a, b, cutoff)
			if exact >= cutoff && got != exact {
				t.Fatalf("cutoff %g: bounded(%q,%q) = %g, want exact %g",
					cutoff, a, b, got, exact)
			}
			if exact < cutoff && got >= cutoff {
				t.Fatalf("cutoff %g: bounded(%q,%q) = %g crossed cutoff (exact %g)",
					cutoff, a, b, got, exact)
			}
			// The canonical below-cutoff value is the best similarity
			// the abandoned computation could still have reached, so it
			// must never undershoot the exact similarity.
			if got < exact-1e-12 {
				t.Fatalf("cutoff %g: bounded(%q,%q) = %g below exact %g",
					cutoff, a, b, got, exact)
			}
		}
	}
}

func TestBoundedSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var s Scratch
	for trial := 0; trial < 2000; trial++ {
		a := randomWord(rng, rng.Intn(14))
		b := randomWord(rng, rng.Intn(14))
		ab := s.LevenshteinSimBounded(a, b, 0.75)
		ba := s.LevenshteinSimBounded(b, a, 0.75)
		if ab != ba {
			t.Fatalf("bounded sim asymmetric: (%q,%q)=%g vs %g", a, b, ab, ba)
		}
	}
}

func TestBoundedUnicode(t *testing.T) {
	var s Scratch
	if got := s.LevenshteinSim("héllo", "hello"); got != LevenshteinSim("héllo", "hello") {
		t.Fatalf("unicode mismatch: %g", got)
	}
	if got := s.LevenshteinSim("", ""); got != 1 {
		t.Fatalf("empty strings: %g", got)
	}
}

// BenchmarkPairComparison is the duplicate-detection hot path in
// isolation: one edit-similarity call per candidate pair. "alloc" is
// the original package-level function (rune slices + DP rows allocated
// per call); "scratch" is the reusable-buffer bounded variant the
// detector now uses. The perf acceptance for the allocation work is
// measured here: scratch must cut allocs/op by ≥ 50% (it reaches 0).
func BenchmarkPairComparison(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	words := make([]string, 64)
	for i := range words {
		words[i] = randomText(rng, 2, 6)
	}
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			LevenshteinSim(words[i%len(words)], words[(i+1)%len(words)])
		}
	})
	b.Run("scratch", func(b *testing.B) {
		var s Scratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.LevenshteinSimBounded(words[i%len(words)], words[(i+1)%len(words)], 0.75)
		}
	})
	for _, n := range []int{16, 64} {
		x, y := randomWord(rng, n), randomWord(rng, n)
		b.Run(fmt.Sprintf("scratch/len=%d", n), func(b *testing.B) {
			var s Scratch
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.LevenshteinSimBounded(x, y, 0.75)
			}
		})
	}
}
