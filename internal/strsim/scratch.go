package strsim

// Scratch holds reusable rune and DP-row buffers for the
// allocation-free similarity entry points. The package-level
// Levenshtein functions allocate two rune slices and two DP rows per
// call; in duplicate detection's O(n²) pair loop those allocations
// dominate the profile. A Scratch amortizes them across calls.
//
// A Scratch is not safe for concurrent use: give each worker goroutine
// its own (the zero value is ready to use).
type Scratch struct {
	ra, rb    []rune
	prev, cur []int
	ma, mb    []bool
}

// AppendRunes appends the runes of s to dst, reusing dst's capacity.
func AppendRunes(dst []rune, s string) []rune {
	for _, r := range s {
		dst = append(dst, r)
	}
	return dst
}

// LevenshteinSim is the allocation-free equivalent of the package-level
// LevenshteinSim.
func (s *Scratch) LevenshteinSim(a, b string) float64 {
	return s.LevenshteinSimBounded(a, b, 0)
}

// LevenshteinSimBounded returns LevenshteinSim(a, b) exactly whenever
// it is at least cutoff; when the true similarity is below cutoff it
// returns a canonical value that is still below cutoff (the best
// similarity the abandoned computation could have reached), without
// finishing the full dynamic program. The result is deterministic and
// symmetric in a and b, so callers that only branch on "≥ cutoff"
// observe semantics identical to the exact function.
func (s *Scratch) LevenshteinSimBounded(a, b string, cutoff float64) float64 {
	s.ra = AppendRunes(s.ra[:0], a)
	s.rb = AppendRunes(s.rb[:0], b)
	return s.LevenshteinSimBoundedRunes(s.ra, s.rb, cutoff)
}

// LevenshteinSimBoundedRunes is LevenshteinSimBounded over
// pre-converted rune slices (callers that cache rune forms skip the
// UTF-8 decode entirely).
func (s *Scratch) LevenshteinSimBoundedRunes(ra, rb []rune, cutoff float64) float64 {
	la, lb := len(ra), len(rb)
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	if maxLen == 0 {
		return 1
	}
	// sim ≥ cutoff ⟺ dist ≤ (1-cutoff)·maxLen ⟺ dist ≤ maxDist.
	maxDist := maxLen
	if cutoff > 0 {
		maxDist = int((1-cutoff)*float64(maxLen) + 1e-9)
	}
	d := s.boundedLevenshtein(ra, rb, maxDist)
	return 1 - float64(d)/float64(maxLen)
}

// boundedLevenshtein computes the exact edit distance when it is at
// most maxDist, and returns maxDist+1 otherwise. It runs the standard
// two-row dynamic program restricted to the diagonal band of width
// 2·maxDist+1 (cells outside the band cannot lie on a path of cost
// ≤ maxDist) and abandons as soon as a full row exceeds maxDist.
func (s *Scratch) boundedLevenshtein(ra, rb []rune, maxDist int) int {
	la, lb := len(ra), len(rb)
	if la > lb {
		ra, rb = rb, ra
		la, lb = lb, la
	}
	if lb-la > maxDist {
		return maxDist + 1
	}
	if la == 0 {
		return lb
	}
	const inf = 1 << 29
	prev := growInts(&s.prev, lb+1)
	cur := growInts(&s.cur, lb+1)
	for j := 0; j <= lb; j++ {
		if j <= maxDist {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= la; i++ {
		lo := i - maxDist
		if lo < 1 {
			lo = 1
		}
		hi := i + maxDist
		if hi > lb {
			hi = lb
		}
		if lo == 1 {
			if i <= maxDist {
				cur[0] = i
			} else {
				cur[0] = inf
			}
		} else {
			// The cell left of the band is unreachable.
			cur[lo-1] = inf
		}
		best := inf
		for j := lo; j <= hi; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d := prev[j-1] + cost
			if x := prev[j] + 1; x < d {
				d = x
			}
			if x := cur[j-1] + 1; x < d {
				d = x
			}
			cur[j] = d
			if d < best {
				best = d
			}
		}
		if hi < lb {
			// The next row reads prev[hi+1], which this row never
			// wrote: mark it unreachable rather than leaving stale data.
			cur[hi+1] = inf
		}
		if best > maxDist {
			return maxDist + 1
		}
		prev, cur = cur, prev
	}
	if prev[lb] > maxDist {
		return maxDist + 1
	}
	return prev[lb]
}

// growInts resizes *buf to n ints, reallocating only on growth.
func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growBools resizes *buf to n cleared bools, reallocating only on
// growth.
func growBools(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
		return *buf
	}
	*buf = (*buf)[:n]
	for i := range *buf {
		(*buf)[i] = false
	}
	return *buf
}

// Jaro is the allocation-free equivalent of the package-level Jaro:
// the same algorithm over reused rune and match buffers, producing
// bit-identical results.
func (s *Scratch) Jaro(a, b string) float64 {
	ra := AppendRunes(s.ra[:0], a)
	rb := AppendRunes(s.rb[:0], b)
	s.ra, s.rb = ra, rb
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	window := len(ra)
	if len(rb) > window {
		window = len(rb)
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := growBools(&s.ma, len(ra))
	matchB := growBools(&s.mb, len(rb))
	matches := 0
	for i, c := range ra {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > len(rb) {
			hi = len(rb)
		}
		for j := lo; j < hi; j++ {
			if !matchB[j] && rb[j] == c {
				matchA[i] = true
				matchB[j] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := range ra {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-t)/m) / 3
}

// JaroWinkler is the allocation-free equivalent of the package-level
// JaroWinkler, bit-identical to it.
func (s *Scratch) JaroWinkler(a, b string) float64 {
	j := s.Jaro(a, b)
	prefix := 0
	ra, rb := s.ra, s.rb
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}
