package strsim

import (
	"math"
	"testing"
)

// naiveLevenshteinSim is the reference oracle: the O(n·m) full dynamic
// program with no banding, no early abandon, no buffer reuse.
func naiveLevenshteinSim(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	d := make([][]int, la+1)
	for i := range d {
		d[i] = make([]int, lb+1)
		d[i][0] = i
	}
	for j := 0; j <= lb; j++ {
		d[0][j] = j
	}
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			m := d[i-1][j] + 1
			if x := d[i][j-1] + 1; x < m {
				m = x
			}
			if x := d[i-1][j-1] + cost; x < m {
				m = x
			}
			d[i][j] = m
		}
	}
	max := la
	if lb > max {
		max = lb
	}
	return 1 - float64(d[la][lb])/float64(max)
}

// FuzzLevenshteinSimBounded checks the banded, early-abandoning edit
// similarity against the naive full dynamic program: whenever the true
// similarity reaches the cutoff the bounded kernel must return it
// exactly, and whenever it abandons, both the returned canonical value
// and the true similarity must be below the cutoff. Symmetry must hold
// in all cases. Runs as a plain regression test over the seed corpus
// in CI; `go test -fuzz=FuzzLevenshteinSimBounded ./internal/strsim`
// explores further.
func FuzzLevenshteinSimBounded(f *testing.F) {
	f.Add("", "", 0.5)
	f.Add("kitten", "sitting", 0.5)
	f.Add("kitten", "sitting", 0.9)
	f.Add("jonathan smith", "jonathon smith", 0.75)
	f.Add("abcdefghij", "abcdefghij", 0.99)
	f.Add("abc", "xyz", 0.0)
	f.Add("für", "fuer", 0.6)
	f.Add("aaaaaaaaaaaaaaaa", "a", 0.3)
	f.Add("ab", "ba", 0.75)
	f.Add("日本語テキスト", "日本語てきすと", 0.5)
	f.Fuzz(func(t *testing.T, a, b string, cutoff float64) {
		// The kernel's contract is defined for cutoff ∈ [0, 1); fold
		// arbitrary fuzz floats into it.
		if math.IsNaN(cutoff) || cutoff < 0 {
			cutoff = 0
		}
		if cutoff >= 1 {
			cutoff = math.Mod(cutoff, 1)
		}
		want := naiveLevenshteinSim(a, b)
		var sc Scratch
		got := sc.LevenshteinSimBounded(a, b, cutoff)
		sym := sc.LevenshteinSimBounded(b, a, cutoff)
		if got != sym {
			t.Fatalf("not symmetric: sim(%q,%q)=%v, sim(%q,%q)=%v (cutoff %v)",
				a, b, got, b, a, sym, cutoff)
		}
		const eps = 1e-12
		if math.Abs(got-want) <= eps {
			return // exact: always acceptable
		}
		// The kernel abandoned: both the true similarity and the
		// canonical replacement must be below the cutoff, so callers
		// branching on "≥ cutoff" see exact semantics.
		if want >= cutoff {
			t.Fatalf("sim(%q,%q) = %v ≥ cutoff %v but bounded returned %v",
				a, b, want, cutoff, got)
		}
		if got >= cutoff {
			t.Fatalf("bounded sim(%q,%q) = %v claims ≥ cutoff %v but true sim is %v",
				a, b, got, cutoff, want)
		}
	})
}

// FuzzScratchJaroWinkler checks the allocation-free scratch kernel
// against the allocating reference implementation bit for bit.
func FuzzScratchJaroWinkler(f *testing.F) {
	f.Add("", "")
	f.Add("martha", "marhta")
	f.Add("dixon", "dicksonx")
	f.Add("jonathan", "jonathon")
	f.Add("a", "")
	f.Add("日本", "日本語")
	var sc Scratch
	f.Fuzz(func(t *testing.T, a, b string) {
		if want, got := Jaro(a, b), sc.Jaro(a, b); want != got {
			t.Fatalf("Jaro(%q,%q): scratch %v, reference %v", a, b, got, want)
		}
		if want, got := JaroWinkler(a, b), sc.JaroWinkler(a, b); want != got {
			t.Fatalf("JaroWinkler(%q,%q): scratch %v, reference %v", a, b, got, want)
		}
	})
}
