package strsim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func randomWord(rng *rand.Rand, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(byte('a' + rng.Intn(26)))
	}
	return b.String()
}

func randomText(rng *rand.Rand, words, wordLen int) string {
	parts := make([]string, words)
	for i := range parts {
		parts[i] = randomWord(rng, wordLen)
	}
	return strings.Join(parts, " ")
}

func BenchmarkLevenshtein(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{8, 32, 128} {
		x, y := randomWord(rng, n), randomWord(rng, n)
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Levenshtein(x, y)
			}
		})
	}
}

func BenchmarkJaroWinkler(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x, y := randomWord(rng, 12), randomWord(rng, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		JaroWinkler(x, y)
	}
}

func BenchmarkTFIDF(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	c := NewCorpus()
	texts := make([]string, 200)
	for i := range texts {
		texts[i] = randomText(rng, 6, 7)
		c.AddText(texts[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.TFIDF(texts[i%len(texts)], texts[(i+1)%len(texts)])
	}
}

func BenchmarkSoftTFIDF(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	c := NewCorpus()
	texts := make([]string, 200)
	for i := range texts {
		texts[i] = randomText(rng, 6, 7)
		c.AddText(texts[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SoftTFIDF(texts[i%len(texts)], texts[(i+1)%len(texts)])
	}
}

func BenchmarkTokenize(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	text := randomText(rng, 20, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(text)
	}
}
