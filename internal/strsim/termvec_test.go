package strsim

import (
	"math"
	"math/rand"
	"testing"
)

func randToken(rng *rand.Rand) string {
	const letters = "abcdefgh"
	n := 1 + rng.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

func randTokens(rng *rand.Rand) []string {
	n := rng.Intn(8)
	out := make([]string, n)
	for i := range out {
		out[i] = randToken(rng)
	}
	return out
}

// TestCorpusMergeEquivalence: merging shard corpora must reproduce the
// sequential corpus exactly — same doc count, same IDF for every term.
func TestCorpusMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	docs := make([][]string, 50)
	for i := range docs {
		docs[i] = randTokens(rng)
	}
	seq := NewCorpus()
	for _, d := range docs {
		seq.AddDoc(d)
	}
	merged := NewCorpus()
	for lo := 0; lo < len(docs); lo += 7 {
		hi := lo + 7
		if hi > len(docs) {
			hi = len(docs)
		}
		shard := NewCorpus()
		for _, d := range docs[lo:hi] {
			shard.AddDoc(d)
		}
		merged.Merge(shard)
	}
	if seq.Docs() != merged.Docs() {
		t.Fatalf("docs: %d vs %d", seq.Docs(), merged.Docs())
	}
	for _, d := range docs {
		for _, tok := range d {
			if seq.IDF(tok) != merged.IDF(tok) {
				t.Fatalf("IDF(%q) differs: %v vs %v", tok, seq.IDF(tok), merged.IDF(tok))
			}
		}
	}
}

// TestTermVecMatchesVector: TermVec must carry exactly the weights of
// the map-based TFIDFVector (same tf scaling, same IDF, same norm up
// to accumulation-order rounding).
func TestTermVecMatchesVector(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewCorpus()
	var all [][]string
	for i := 0; i < 40; i++ {
		toks := randTokens(rng)
		all = append(all, toks)
		c.AddDoc(toks)
	}
	for _, toks := range all {
		v := c.TFIDFVector(toks)
		tv := c.TermVec(toks)
		if len(v) != tv.Len() {
			t.Fatalf("term count differs: %d vs %d for %v", len(v), tv.Len(), toks)
		}
		for i, term := range tv.Terms {
			if i > 0 && tv.Terms[i-1] >= term {
				t.Fatalf("terms not strictly sorted: %v", tv.Terms)
			}
			if math.Abs(v[term]-tv.Ws[i]) > 1e-12 {
				t.Fatalf("weight of %q differs: %v vs %v", term, v[term], tv.Ws[i])
			}
		}
	}
}

// TestDotTermVecsMatchesCosine: the sorted-merge dot product must agree
// with the map-based cosine.
func TestDotTermVecsMatchesCosine(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	c := NewCorpus()
	var all [][]string
	for i := 0; i < 30; i++ {
		toks := randTokens(rng)
		all = append(all, toks)
		c.AddDoc(toks)
	}
	for i := 0; i < len(all); i++ {
		for j := i; j < len(all); j++ {
			want := Cosine(c.TFIDFVector(all[i]), c.TFIDFVector(all[j]))
			got := DotTermVecs(c.TermVec(all[i]), c.TermVec(all[j]))
			if math.Abs(want-got) > 1e-9 {
				t.Fatalf("dot(%v, %v) = %v, cosine = %v", all[i], all[j], got, want)
			}
		}
	}
	if got := DotTermVecs(TermVec{}, TermVec{}); got != 0 {
		t.Errorf("dot of empty vectors = %v, want 0", got)
	}
}

// TestSoftTFIDFTermVecsMatchesTokens: the deterministic term-vector
// SoftTFIDF must agree with the map-based version (up to
// accumulation-order rounding and tie choice among equal weights).
func TestSoftTFIDFTermVecsMatchesTokens(t *testing.T) {
	c := NewCorpus()
	pairs := [][2]string{
		{"jonathan smith", "jonathon smith"},
		{"maria garcia", "maria garcia"},
		{"wei chen", "lena fischer"},
		{"beethoven symphony no 9", "symphony 9 beethoven"},
		{"", ""},
		{"x", ""},
	}
	for _, p := range pairs {
		c.AddText(p[0])
		c.AddText(p[1])
	}
	var sc Scratch
	for _, p := range pairs {
		ta, tb := Tokenize(p[0]), Tokenize(p[1])
		want := c.SoftTFIDFTokens(ta, tb)
		got := c.SoftTFIDFTermVecs(&sc, c.TermVec(ta), c.TermVec(tb))
		if math.Abs(want-got) > 1e-9 {
			t.Errorf("SoftTFIDF(%q, %q) = %v via term vecs, %v via tokens", p[0], p[1], got, want)
		}
	}
}

// TestScratchJaroWinklerIdentical: the scratch-based Jaro-Winkler must
// be bit-identical to the allocating version, including the early-exit
// cases (empty strings, zero matches) and repeated reuse of the same
// Scratch.
func TestScratchJaroWinklerIdentical(t *testing.T) {
	cases := [][2]string{
		{"", ""}, {"a", ""}, {"", "b"}, {"abc", "abc"},
		{"martha", "marhta"}, {"dixon", "dicksonx"}, {"xy", "qq"},
		{"jonathan", "jonathon"}, {"für", "fuer"},
	}
	var sc Scratch
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		cases = append(cases, [2]string{randToken(rng), randToken(rng)})
	}
	for _, cse := range cases {
		if want, got := Jaro(cse[0], cse[1]), sc.Jaro(cse[0], cse[1]); want != got {
			t.Fatalf("Jaro(%q, %q): scratch %v, plain %v", cse[0], cse[1], got, want)
		}
		if want, got := JaroWinkler(cse[0], cse[1]), sc.JaroWinkler(cse[0], cse[1]); want != got {
			t.Fatalf("JaroWinkler(%q, %q): scratch %v, plain %v", cse[0], cse[1], got, want)
		}
	}
}
