package lineage

import (
	"reflect"
	"testing"
)

func TestZeroSetEmpty(t *testing.T) {
	var s Set
	if !s.IsEmpty() || s.IsMixed() {
		t.Error("zero Set must be empty and unmixed")
	}
	if s.String() != "" {
		t.Errorf("String = %q", s.String())
	}
}

func TestFrom(t *testing.T) {
	s := From("cd_a", 3)
	if s.IsEmpty() || s.IsMixed() {
		t.Error("singleton must be non-empty and unmixed")
	}
	if got := s.Origins(); len(got) != 1 || got[0] != (Origin{Source: "cd_a", Row: 3}) {
		t.Errorf("Origins = %v", got)
	}
}

func TestMergeDeduplicates(t *testing.T) {
	a := From("s1", 0)
	b := From("s1", 0)
	c := From("s2", 5)
	m := Merge(a, b, c)
	if len(m.Origins()) != 2 {
		t.Fatalf("Origins = %v, want 2 after dedup", m.Origins())
	}
	if !m.IsMixed() {
		t.Error("two sources must be mixed")
	}
	if got := m.Sources(); !reflect.DeepEqual(got, []string{"s1", "s2"}) {
		t.Errorf("Sources = %v", got)
	}
	if m.String() != "s1,s2" {
		t.Errorf("String = %q", m.String())
	}
}

func TestMergeDeterministicOrder(t *testing.T) {
	m1 := Merge(From("b", 1), From("a", 2))
	m2 := Merge(From("a", 2), From("b", 1))
	if !reflect.DeepEqual(m1.Origins(), m2.Origins()) {
		t.Error("merge order must not affect result ordering")
	}
}

func TestSameSourceMultipleRowsNotMixed(t *testing.T) {
	m := Merge(From("s", 0), From("s", 1))
	if m.IsMixed() {
		t.Error("multiple rows of one source are not 'mixed'")
	}
	if len(m.Origins()) != 2 {
		t.Error("distinct rows must both survive")
	}
}

func TestOriginsReturnsCopy(t *testing.T) {
	m := From("s", 0)
	m.Origins()[0] = Origin{Source: "hacked", Row: 9}
	if m.Origins()[0].Source != "s" {
		t.Error("Origins must return a defensive copy")
	}
}
