// Package lineage tracks the provenance of values through fusion. The
// HumMer demo color-codes each result value by its source relation
// (mixed colors for merged values); this package is the data model
// behind that display: every fused cell carries the set of sources that
// contributed to it.
package lineage

import (
	"sort"
	"strings"
)

// Origin identifies one contributing cell: the source alias and the
// row index within that source.
type Origin struct {
	Source string
	Row    int
}

// Set is an immutable collection of origins. The zero Set is empty
// (meaning "no recorded lineage", e.g. a constant).
type Set struct {
	origins []Origin
}

// From creates a singleton lineage set.
func From(source string, row int) Set {
	return Set{origins: []Origin{{Source: source, Row: row}}}
}

// Merge unions several lineage sets, deduplicating origins.
func Merge(sets ...Set) Set {
	seen := map[Origin]bool{}
	var all []Origin
	for _, s := range sets {
		for _, o := range s.origins {
			if !seen[o] {
				seen[o] = true
				all = append(all, o)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Source != all[j].Source {
			return all[i].Source < all[j].Source
		}
		return all[i].Row < all[j].Row
	})
	return Set{origins: all}
}

// Origins returns the origins in deterministic order.
func (s Set) Origins() []Origin { return append([]Origin(nil), s.origins...) }

// Sources returns the distinct source aliases, sorted.
func (s Set) Sources() []string {
	seen := map[string]bool{}
	var out []string
	for _, o := range s.origins {
		if !seen[o.Source] {
			seen[o.Source] = true
			out = append(out, o.Source)
		}
	}
	sort.Strings(out)
	return out
}

// IsEmpty reports whether no lineage was recorded.
func (s Set) IsEmpty() bool { return len(s.origins) == 0 }

// IsMixed reports whether more than one source contributed — the demo
// renders such values in mixed colors.
func (s Set) IsMixed() bool { return len(s.Sources()) > 1 }

// String renders the lineage as "src1,src2" for annotation purposes.
func (s Set) String() string { return strings.Join(s.Sources(), ",") }
