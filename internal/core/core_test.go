package core

import (
	"testing"

	"hummer/internal/dumas"
	"hummer/internal/dupdetect"
	"hummer/internal/fusion"
	"hummer/internal/metadata"
	"hummer/internal/relation"
	"hummer/internal/value"
)

// repoWithStudents registers the paper's running example: EE and CS
// student tables with heterogeneous schemas, shared entities and
// conflicting ages.
func repoWithStudents(t *testing.T) *metadata.Repository {
	t.Helper()
	repo := metadata.NewRepository()
	ee := relation.NewBuilder("EE_Student", "Name", "Age", "City").
		AddText("Jonathan Smith", "21", "Berlin").
		AddText("Maria Garcia", "24", "Hamburg").
		AddText("Wei Chen", "21", "Munich").
		AddText("Aisha Khan", "23", "Cologne").
		Build()
	cs := relation.NewBuilder("CS_Students", "FullName", "Semester", "Years", "Town").
		AddText("Jonathan Smith", "4", "22", "Berlin").
		AddText("Wei Chen", "2", "21", "Munich").
		AddText("Lena Fischer", "1", "20", "Stuttgart").
		Build()
	if err := repo.RegisterRelation("EE_Student", ee); err != nil {
		t.Fatal(err)
	}
	if err := repo.RegisterRelation("CS_Students", cs); err != nil {
		t.Fatal(err)
	}
	return repo
}

func TestFig2PipelineDataflow(t *testing.T) {
	p := &Pipeline{Repo: repoWithStudents(t)}
	res, err := p.Run([]string{"EE_Student", "CS_Students"}, Options{
		FuseBy: []string{"Name"},
		Rules:  map[string]fusion.Spec{"Age": {Name: "max"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Phase outputs all present.
	if len(res.Sources) != 2 || len(res.Matches) != 1 {
		t.Fatalf("sources/matches = %d/%d", len(res.Sources), len(res.Matches))
	}
	// Transformation: merged table uses the preferred (first) schema's
	// names and has sourceID.
	if !res.Merged.Schema().Has("Name") || !res.Merged.Schema().Has("Age") {
		t.Errorf("merged schema = %v, want preferred names", res.Merged.Schema().Names())
	}
	if res.Merged.Schema().Has("FullName") || res.Merged.Schema().Has("Years") {
		t.Errorf("non-preferred names survived: %v", res.Merged.Schema().Names())
	}
	if !res.Merged.Schema().Has(SourceIDColumn) {
		t.Error("sourceID column missing")
	}
	if res.Merged.Len() != 7 {
		t.Errorf("merged rows = %d, want 7", res.Merged.Len())
	}
	// Duplicate detection ran and found the two shared students.
	if res.Detection == nil || res.WithObjectID == nil {
		t.Fatal("detection phase skipped")
	}
	// Fusion: 5 distinct students.
	if res.Fused.Rel.Len() != 5 {
		t.Fatalf("fused rows = %d, want 5:\n%s", res.Fused.Rel.Len(), res.Fused.Rel)
	}
	// Jonathan Smith: conflicting ages 21 vs 22 resolve to max = 22.
	found := false
	for i := 0; i < res.Fused.Rel.Len(); i++ {
		if res.Fused.Rel.Value(i, "Name").Text() == "Jonathan Smith" {
			found = true
			if got := res.Fused.Rel.Value(i, "Age"); !got.Equal(value.NewInt(22)) {
				t.Errorf("Jonathan's age = %v, want 22 (max)", got)
			}
			if got := res.Fused.Rel.Value(i, "Semester"); !got.Equal(value.NewInt(4)) {
				t.Errorf("Jonathan's semester = %v, want 4 (coalesce)", got)
			}
		}
	}
	if !found {
		t.Error("Jonathan Smith missing from fused result")
	}
}

func TestSingleSourceCleansing(t *testing.T) {
	// The "online data cleansing service" scenario: one dirty table.
	repo := metadata.NewRepository()
	dirty := relation.NewBuilder("upload", "Name", "Phone").
		AddText("Anna Schmidt", "030-1234").
		AddText("Anna Schmidt", "").
		AddText("Bernd Maier", "089-5678").
		Build()
	if err := repo.RegisterRelation("upload", dirty); err != nil {
		t.Fatal(err)
	}
	p := &Pipeline{Repo: repo}
	res, err := p.Run([]string{"upload"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Error("single source must skip matching")
	}
	if res.Fused.Rel.Len() != 2 {
		t.Fatalf("cleansed rows = %d, want 2:\n%s", res.Fused.Rel.Len(), res.Fused.Rel)
	}
	// The phone survives the fusion via coalesce.
	for i := 0; i < res.Fused.Rel.Len(); i++ {
		if res.Fused.Rel.Value(i, "Name").Text() == "Anna Schmidt" {
			if got := res.Fused.Rel.Value(i, "Phone").Text(); got != "030-1234" {
				t.Errorf("phone = %q", got)
			}
		}
	}
}

func TestExactGroupingSkipsDetection(t *testing.T) {
	p := &Pipeline{Repo: repoWithStudents(t)}
	res, err := p.Run([]string{"EE_Student", "CS_Students"}, Options{
		FuseBy:        []string{"Name"},
		ExactGrouping: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detection != nil || res.WithObjectID != nil {
		t.Error("exact grouping must skip duplicate detection")
	}
	if res.Fused.Rel.Len() != 5 {
		t.Errorf("fused rows = %d, want 5", res.Fused.Rel.Len())
	}
}

func TestExactGroupingRequiresFuseBy(t *testing.T) {
	p := &Pipeline{Repo: repoWithStudents(t)}
	if _, err := p.Run([]string{"EE_Student"}, Options{ExactGrouping: true}); err == nil {
		t.Error("ExactGrouping without FuseBy must error")
	}
}

func TestRunErrors(t *testing.T) {
	p := &Pipeline{Repo: metadata.NewRepository()}
	if _, err := p.Run(nil, Options{}); err == nil {
		t.Error("no sources must error")
	}
	if _, err := p.Run([]string{"ghost"}, Options{}); err == nil {
		t.Error("unknown alias must error")
	}
	noRepo := &Pipeline{}
	if _, err := noRepo.Run([]string{"x"}, Options{}); err == nil {
		t.Error("missing repository must error")
	}
}

func TestOnCorrespondencesHook(t *testing.T) {
	// The hook drops every proposed correspondence — no renaming
	// happens, so the merged schema keeps both column sets.
	p := &Pipeline{Repo: repoWithStudents(t)}
	var sawAlias string
	p.OnCorrespondences = func(alias string, proposed []dumas.Correspondence) []dumas.Correspondence {
		sawAlias = alias
		return nil
	}
	res, err := p.Run([]string{"EE_Student", "CS_Students"}, Options{FuseBy: []string{"Name"}})
	if err != nil {
		t.Fatal(err)
	}
	if sawAlias != "CS_Students" {
		t.Errorf("hook saw alias %q", sawAlias)
	}
	if !res.Merged.Schema().Has("FullName") {
		t.Error("dropping correspondences must keep the unaligned column")
	}
}

func TestOnAttributesHook(t *testing.T) {
	p := &Pipeline{Repo: repoWithStudents(t)}
	var proposed []string
	p.OnAttributes = func(attrs []string) []string {
		proposed = attrs
		return []string{"Name"}
	}
	res, err := p.Run([]string{"EE_Student", "CS_Students"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(proposed) == 0 {
		t.Error("hook must see the heuristic proposal")
	}
	if len(res.Detection.SelectedAttributes) != 1 || res.Detection.SelectedAttributes[0] != "Name" {
		t.Errorf("selected = %v, want [Name]", res.Detection.SelectedAttributes)
	}
}

func TestOnDuplicatesHookOverridesClustering(t *testing.T) {
	p := &Pipeline{Repo: repoWithStudents(t)}
	p.OnDuplicates = func(det *dupdetect.Result, merged *relation.Relation) []int {
		// Force every row to be its own object (reject all duplicates).
		ids := make([]int, merged.Len())
		for i := range ids {
			ids[i] = i
		}
		return ids
	}
	res, err := p.Run([]string{"EE_Student", "CS_Students"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fused.Rel.Len() != res.Merged.Len() {
		t.Errorf("rejecting all duplicates must keep all %d rows, got %d",
			res.Merged.Len(), res.Fused.Rel.Len())
	}
}

func TestOnDuplicatesHookBadLength(t *testing.T) {
	p := &Pipeline{Repo: repoWithStudents(t)}
	p.OnDuplicates = func(det *dupdetect.Result, merged *relation.Relation) []int {
		return []int{0}
	}
	if _, err := p.Run([]string{"EE_Student", "CS_Students"}, Options{}); err == nil {
		t.Error("wrong-length override must error")
	}
}

func TestFuseByAttributesIncludedInDetection(t *testing.T) {
	p := &Pipeline{Repo: repoWithStudents(t)}
	res, err := p.Run([]string{"EE_Student", "CS_Students"}, Options{FuseBy: []string{"Name"}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range res.Detection.SelectedAttributes {
		if a == "Name" {
			found = true
		}
	}
	if !found {
		t.Errorf("FUSE BY attr missing from detection attrs: %v", res.Detection.SelectedAttributes)
	}
}

func TestLineagePropagatesThroughPipeline(t *testing.T) {
	p := &Pipeline{Repo: repoWithStudents(t)}
	res, err := p.Run([]string{"EE_Student", "CS_Students"}, Options{
		FuseBy: []string{"Name"},
		Rules:  map[string]fusion.Spec{"Age": {Name: "max"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Find Jonathan's fused row; his name lineage must span both sources.
	nameCol := res.Fused.Rel.Schema().MustLookup("Name")
	for i := 0; i < res.Fused.Rel.Len(); i++ {
		if res.Fused.Rel.Value(i, "Name").Text() == "Jonathan Smith" {
			lin := res.Fused.Lineage[i][nameCol]
			if !lin.IsMixed() {
				t.Errorf("Jonathan's name lineage = %v, want both sources", lin.Sources())
			}
		}
	}
}

func TestSourceIDValuesAreAliases(t *testing.T) {
	p := &Pipeline{Repo: repoWithStudents(t)}
	res, err := p.Run([]string{"EE_Student", "CS_Students"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < res.Merged.Len(); i++ {
		seen[res.Merged.Value(i, SourceIDColumn).Text()] = true
	}
	if !seen["EE_Student"] || !seen["CS_Students"] {
		t.Errorf("sourceID values = %v", seen)
	}
}
