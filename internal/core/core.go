// Package core implements the HumMer pipeline of Fig. 2: given a list
// of source aliases, it (1) loads each source's relational form from
// the metadata repository, (2) bridges schematic heterogeneity with
// DUMAS instance-based schema matching, (3) transforms the sources
// (rename to the preferred schema, add sourceID, full outer union),
// (4) detects duplicates and appends an objectID column, and
// (5) fuses duplicates with conflict resolution.
//
// The demo's wizard steps ("adjust matching", "adjust duplicate
// definition", "confirm duplicates", "specify resolution functions")
// are exposed as optional hook functions on the Pipeline; when a hook
// is nil the fully automatic behaviour of the paper applies.
package core

import (
	"context"
	"fmt"
	"strings"

	"hummer/internal/dumas"
	"hummer/internal/dupdetect"
	"hummer/internal/engine"
	"hummer/internal/expr"
	"hummer/internal/faultinject"
	"hummer/internal/fusion"
	"hummer/internal/metadata"
	"hummer/internal/obs"
	"hummer/internal/qcache"
	"hummer/internal/relation"
	"hummer/internal/schema"
	"hummer/internal/value"
)

// SourceIDColumn is the provenance column the transformation phase
// adds to every source (paper §2.2).
const SourceIDColumn = dupdetect.SourceIDColumn

// Options configures one pipeline run.
type Options struct {
	// FuseBy lists the object-identifier attributes (in the preferred
	// schema's names). Empty with ExactGrouping=false means: rely
	// entirely on duplicate detection.
	FuseBy []string
	// ExactGrouping skips duplicate detection and groups exactly on
	// the FuseBy attributes — the pure Fuse By semantics of [2].
	// Requires FuseBy.
	ExactGrouping bool
	// Where filters the merged table before duplicate detection (the
	// query's WHERE clause, standard SQL ordering: predicates before
	// grouping). Nil means no filter.
	Where expr.Expr
	// Rules maps columns to resolution specs (wizard step 5); unruled
	// columns resolve with Default (Coalesce when zero).
	Rules map[string]fusion.Spec
	// Default is the resolution spec for unruled columns.
	Default fusion.Spec
	// Columns selects and orders output columns; empty means all data
	// columns.
	Columns []string
	// Items explicitly lists the output columns with per-item
	// resolution and output names (supports selecting one column
	// several times); see fusion.Options.
	Items []fusion.OutputItem
	// IncludeRest, with Items, appends the remaining data columns.
	IncludeRest bool
	// KeepBookkeeping retains sourceID/objectID in the output.
	KeepBookkeeping bool
	// Match tunes DUMAS.
	Match dumas.Config
	// Detect tunes duplicate detection.
	Detect dupdetect.Config
	// Parallelism is the unified query-level parallelism knob: the
	// default worker count for the match and detect phases when their
	// configs leave Parallelism at 0. A phase config's own setting
	// always wins. 0 defers to each phase's default (GOMAXPROCS).
	// Results are byte-identical at every setting.
	Parallelism int
}

// Result carries every intermediate of the run, mirroring the demo's
// step-by-step visualization.
type Result struct {
	// Sources are the loaded relational forms, in query order.
	Sources []*relation.Relation
	// Matches holds the DUMAS result for each source after the first
	// (aligned with Sources[1:]).
	Matches []*dumas.Result
	// Renamings records the applied column renamings per source after
	// the first (old name → preferred name).
	Renamings []map[string]string
	// Merged is the full outer union of the transformed sources,
	// including the sourceID column.
	Merged *relation.Relation
	// Detection is the duplicate-detection output; nil under
	// ExactGrouping.
	Detection *dupdetect.Result
	// WithObjectID is Merged plus the objectID column; nil under
	// ExactGrouping.
	WithObjectID *relation.Relation
	// Fused is the final clean, consistent result with lineage.
	Fused *fusion.Result
}

// Summary condenses what a pipeline run did — the numbers of the
// demo's step-by-step visualization — without referencing any of the
// intermediate tables, so it can outlive the run (in a slim cache
// entry, a streamed trailer, an API response) at a few dozen bytes.
type Summary struct {
	// Sources is the number of participating sources.
	Sources int `json:"sources"`
	// MergedRows counts the rows of the full outer union the fusion
	// ran over (after the WHERE filter).
	MergedRows int `json:"merged_rows"`
	// Correspondences counts the attribute correspondences DUMAS
	// applied across all sources.
	Correspondences int `json:"correspondences"`
	// Clusters, DuplicatePairs and BorderlinePairs summarize the
	// duplicate detection (zero under ExactGrouping).
	Clusters        int `json:"clusters"`
	DuplicatePairs  int `json:"duplicate_pairs"`
	BorderlinePairs int `json:"borderline_pairs"`
}

// Summary computes the run's summary numbers from the intermediates.
func (r *Result) Summary() *Summary {
	s := &Summary{Sources: len(r.Sources)}
	if r.Merged != nil {
		s.MergedRows = r.Merged.Len()
	}
	for _, m := range r.Matches {
		if m != nil {
			s.Correspondences += len(m.Correspondences)
		}
	}
	if d := r.Detection; d != nil {
		s.Clusters = len(d.Clusters)
		s.DuplicatePairs = len(d.Duplicates)
		s.BorderlinePairs = len(d.Borderline)
	}
	return s
}

// Pipeline wires the components together. Zero-value hooks mean fully
// automatic operation.
type Pipeline struct {
	// Repo resolves source aliases; required.
	Repo *metadata.Repository
	// Registry resolves conflict-resolution functions; nil means the
	// built-in registry.
	Registry *fusion.Registry
	// Cache, when set, is consulted before the expensive phases:
	// DUMAS match results and duplicate-detection results are keyed by
	// the content fingerprints of their input relations plus the phase
	// configuration, so repeated and overlapping queries skip the
	// recomputation entirely. Cached artifacts are shared across
	// queries and must not be mutated.
	Cache *qcache.Cache

	// OnCorrespondences (wizard step 2) may add, drop or rescore the
	// correspondences DUMAS proposed for one source before they are
	// applied.
	OnCorrespondences func(sourceAlias string, proposed []dumas.Correspondence) []dumas.Correspondence
	// OnAttributes (wizard step 3) may adjust the attributes
	// duplicate detection will compare.
	OnAttributes func(proposed []string) []string
	// OnDuplicates (wizard step 4) may adjust the detected clustering
	// by returning replacement object ids (same length as rows);
	// returning nil keeps the detection result. det may be a cached
	// artifact shared across queries and must be treated as
	// read-only — adjust by returning ids, never by mutating det.
	OnDuplicates func(det *dupdetect.Result, merged *relation.Relation) []int
}

// Run executes the full pipeline over the aliased sources. It is
// RunContext with a background context: it cannot be cancelled.
func (p *Pipeline) Run(aliases []string, opts Options) (*Result, error) {
	return p.RunContext(context.Background(), aliases, opts)
}

// RunContext executes the full pipeline over the aliased sources,
// honoring ctx through every phase: source loading checks it between
// sources, schema matching and duplicate detection propagate it into
// their sharded inner loops (including through the artifact cache's
// singleflight), and the phase boundaries re-check it, so a cancelled
// query aborts promptly with ctx's error, no goroutines left behind
// and no partial result. A run that completes is byte-identical to an
// uncancellable one.
func (p *Pipeline) RunContext(ctx context.Context, aliases []string, opts Options) (*Result, error) {
	if p.Repo == nil {
		return nil, fmt.Errorf("core: pipeline has no metadata repository")
	}
	if len(aliases) == 0 {
		return nil, fmt.Errorf("core: no sources given")
	}
	if opts.ExactGrouping && len(opts.FuseBy) == 0 {
		return nil, fmt.Errorf("core: ExactGrouping requires FuseBy attributes")
	}
	reg := p.Registry
	if reg == nil {
		reg = fusion.NewRegistry()
	}
	// Unified parallelism: a phase config's own Parallelism wins;
	// zero inherits the query-level knob. Applying the default here —
	// before the phases fingerprint their configs for the cache —
	// keeps the effective worker count and the cache key consistent.
	if opts.Parallelism != 0 {
		if opts.Match.Parallelism == 0 {
			opts.Match.Parallelism = opts.Parallelism
		}
		if opts.Detect.Parallelism == 0 {
			opts.Detect.Parallelism = opts.Parallelism
		}
	}
	ctx, psp := obs.StartSpan(ctx, "pipeline")
	defer psp.End()
	psp.SetInt("sources", len(aliases))

	res := &Result{}
	// Step 1: load the relational form of every source.
	_, lsp := obs.StartSpan(ctx, "load")
	defer lsp.End()
	rows := 0
	for _, a := range aliases {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rel, err := p.Repo.Get(a)
		if err != nil {
			return nil, err
		}
		rows += rel.Len()
		res.Sources = append(res.Sources, rel)
	}
	lsp.SetInt("rows", rows)
	lsp.End()

	// Steps 2+3: schema matching and transformation.
	if err := p.matchAndTransform(ctx, res, opts); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Apply the WHERE predicate to the merged table (before grouping,
	// standard SQL ordering).
	if opts.Where != nil {
		filtered, err := engine.MaterializeContext(ctx, "merged",
			engine.NewFilter(engine.NewScan(res.Merged), opts.Where))
		if err != nil {
			return nil, fmt.Errorf("core: WHERE: %w", err)
		}
		res.Merged = filtered
	}

	// Step 4: duplicate detection (skipped under exact grouping).
	groupBy := opts.FuseBy
	fuseInput := res.Merged
	if !opts.ExactGrouping {
		detectCfg := opts.Detect
		if len(detectCfg.Attributes) == 0 {
			// The FUSE BY attributes *define* the object identifier
			// (paper §2.1), so they alone form the duplicate
			// definition; without FUSE BY the heuristics choose.
			var attrs []string
			if len(opts.FuseBy) > 0 {
				attrs = mergeAttrs(opts.FuseBy, nil)
			} else {
				attrs = dupdetect.SelectAttributes(res.Merged)
			}
			if p.OnAttributes != nil {
				attrs = p.OnAttributes(attrs)
			}
			detectCfg.Attributes = attrs
		}
		det, err := p.detect(ctx, res.Merged, detectCfg)
		if err != nil {
			return nil, err
		}
		if p.OnDuplicates != nil {
			if ids := p.OnDuplicates(det, res.Merged); ids != nil {
				if len(ids) != res.Merged.Len() {
					return nil, fmt.Errorf("core: OnDuplicates returned %d ids for %d rows",
						len(ids), res.Merged.Len())
				}
				det = &dupdetect.Result{ObjectIDs: ids, SelectedAttributes: det.SelectedAttributes}
			}
		}
		res.Detection = det
		withID, err := dupdetect.AppendObjectID(res.Merged, det)
		if err != nil {
			return nil, err
		}
		res.WithObjectID = withID
		fuseInput = withID
		groupBy = []string{dupdetect.ObjectIDColumn}
	}

	// Step 5: conflict resolution / fusion.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, fsp := obs.StartSpan(ctx, "fuse")
	defer fsp.End()
	fsp.SetInt("input_rows", fuseInput.Len())
	fused, err := fusion.Fuse(fuseInput, reg, fusion.Options{
		GroupBy:         groupBy,
		Items:           opts.Items,
		IncludeRest:     opts.IncludeRest,
		Rules:           opts.Rules,
		Default:         opts.Default,
		Columns:         opts.Columns,
		KeepBookkeeping: opts.KeepBookkeeping,
	})
	if err != nil {
		return nil, err
	}
	fsp.SetInt("rows", fused.Rel.Len())
	fsp.End()
	res.Fused = fused
	return res, nil
}

// match runs DUMAS schema matching, consulting the artifact cache
// when one is installed: the key is the content fingerprint of both
// relations plus the match configuration, so any data or config
// change misses while a repeated or overlapping query hits. The
// singleflight inside the cache makes a thundering herd of identical
// queries compute the artifact once; a cancelled caller stops waiting
// without disturbing the computation, and a cancelled leader's
// abandoned entry is re-elected by the remaining waiters.
func (p *Pipeline) match(ctx context.Context, left, right *relation.Relation, cfg dumas.Config) (*dumas.Result, error) {
	ctx, sp := obs.StartSpan(ctx, "match")
	defer sp.End()
	sp.SetStr("source", right.Name())
	if err := faultinject.Hit(faultinject.SiteCoreMatch); err != nil {
		return nil, err
	}
	if p.Cache == nil {
		return dumas.MatchContext(ctx, left, right, cfg)
	}
	key := qcache.MatchKey(qcache.FingerprintRelation(left), qcache.FingerprintRelation(right), cfg)
	computed := false
	v, _, err := p.Cache.DoContext(ctx, key, func(ctx context.Context) (any, error) {
		computed = true
		return dumas.MatchContext(ctx, left, right, cfg)
	})
	if err != nil {
		return nil, err
	}
	// The compute closure runs in the leader's goroutine with the
	// leader's ctx, so the dumas sub-spans attach here exactly when
	// this query did the work; a served query shows only the wait.
	if computed {
		sp.SetStr("cache", "miss")
	} else {
		sp.SetStr("cache", "hit")
	}
	return v.(*dumas.Result), nil
}

// detect runs duplicate detection, consulting the artifact cache when
// one is installed; the key covers the merged relation's content (so
// WHERE-filtered variants key separately) and the full detection
// configuration including the resolved attribute selection.
func (p *Pipeline) detect(ctx context.Context, rel *relation.Relation, cfg dupdetect.Config) (*dupdetect.Result, error) {
	ctx, sp := obs.StartSpan(ctx, "detect")
	defer sp.End()
	sp.SetInt("rows", rel.Len())
	if err := faultinject.Hit(faultinject.SiteCoreDetect); err != nil {
		return nil, err
	}
	if p.Cache == nil {
		return dupdetect.DetectContext(ctx, rel, cfg)
	}
	key := qcache.DetectKey(qcache.FingerprintRelation(rel), cfg)
	computed := false
	v, _, err := p.Cache.DoContext(ctx, key, func(ctx context.Context) (any, error) {
		computed = true
		return dupdetect.DetectContext(ctx, rel, cfg)
	})
	if err != nil {
		return nil, err
	}
	if computed {
		sp.SetStr("cache", "miss")
	} else {
		sp.SetStr("cache", "hit")
	}
	return v.(*dupdetect.Result), nil
}

// matchAndTransform aligns every source after the first with the
// preferred schema (the first source, per the paper: "favoring the
// first source mentioned in the query"), renames matched attributes,
// adds the sourceID column and computes the full outer union.
func (p *Pipeline) matchAndTransform(ctx context.Context, res *Result, opts Options) error {
	first := res.Sources[0]
	transformed := []*relation.Relation{first}
	// The reference grows as sources are aligned, so later sources can
	// also match attributes the preferred schema lacks.
	reference := first

	for _, src := range res.Sources[1:] {
		if err := ctx.Err(); err != nil {
			return err
		}
		var corrs []dumas.Correspondence
		var mres *dumas.Result
		if reference.Len() > 0 && src.Len() > 0 {
			var err error
			mres, err = p.match(ctx, reference, src, opts.Match)
			if err != nil {
				return fmt.Errorf("core: matching %q against %q: %w", src.Name(), reference.Name(), err)
			}
			corrs = mres.Correspondences
		} else {
			mres = &dumas.Result{}
		}
		if p.OnCorrespondences != nil {
			// The hook's contract invites in-place adjustment, but a
			// cached mres is shared across queries: hand the hook its
			// own copy so it can never poison the cached artifact.
			corrs = p.OnCorrespondences(src.Name(), append([]dumas.Correspondence(nil), corrs...))
		}
		res.Matches = append(res.Matches, mres)

		renaming := buildRenaming(src, corrs)
		res.Renamings = append(res.Renamings, renaming)
		aligned, err := applyRenaming(src, renaming)
		if err != nil {
			return err
		}
		transformed = append(transformed, aligned)

		ref, err := outerUnion(ctx, "reference", transformed)
		if err != nil {
			return err
		}
		reference = ref
	}

	// Add sourceID to each transformed source, then outer union.
	mctx, msp := obs.StartSpan(ctx, "merge")
	defer msp.End()
	withSrc := make([]*relation.Relation, len(transformed))
	for i, rel := range transformed {
		w, err := addSourceID(rel)
		if err != nil {
			return err
		}
		withSrc[i] = w
	}
	merged, err := outerUnion(mctx, "merged", withSrc)
	if err != nil {
		return err
	}
	msp.SetInt("rows", merged.Len())
	msp.End()
	res.Merged = merged
	return nil
}

// buildRenaming converts correspondences into an old→new column map
// for the non-preferred source. Renames that would collide with
// another column of the same source are skipped — the demo would show
// them for manual resolution.
func buildRenaming(src *relation.Relation, corrs []dumas.Correspondence) map[string]string {
	renaming := map[string]string{}
	taken := map[string]bool{}
	for _, n := range src.Schema().Names() {
		taken[strings.ToLower(n)] = true
	}
	for _, c := range corrs {
		if strings.EqualFold(c.RightCol, c.LeftCol) {
			continue // already aligned
		}
		if taken[strings.ToLower(c.LeftCol)] {
			continue // would collide inside this source
		}
		renaming[c.RightCol] = c.LeftCol
		taken[strings.ToLower(c.LeftCol)] = true
	}
	return renaming
}

func applyRenaming(src *relation.Relation, renaming map[string]string) (*relation.Relation, error) {
	s := src.Schema()
	for old, new := range renaming {
		var err error
		s, err = s.Rename(old, new)
		if err != nil {
			return nil, fmt.Errorf("core: renaming %q→%q in %q: %w", old, new, src.Name(), err)
		}
	}
	return src.WithSchema(s)
}

// addSourceID prepends nothing and appends a sourceID column holding
// the relation's alias, unless the column already exists.
func addSourceID(rel *relation.Relation) (*relation.Relation, error) {
	if rel.Schema().Has(SourceIDColumn) {
		return rel, nil
	}
	s, err := rel.Schema().Append(schema.Column{Name: SourceIDColumn, Type: value.KindString, Source: rel.Name()})
	if err != nil {
		return nil, err
	}
	out := relation.New(rel.Name(), s)
	alias := value.NewString(rel.Name())
	for i := 0; i < rel.Len(); i++ {
		row := append(rel.Row(i).Clone(), alias)
		if err := out.Append(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func outerUnion(ctx context.Context, name string, rels []*relation.Relation) (*relation.Relation, error) {
	ops := make([]engine.Operator, len(rels))
	for i, r := range rels {
		ops[i] = engine.NewScan(r)
	}
	u, err := engine.NewOuterUnion(ops...)
	if err != nil {
		return nil, err
	}
	return engine.MaterializeContext(ctx, name, u)
}

// mergeAttrs unions two attribute lists preserving order.
func mergeAttrs(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range append(append([]string{}, a...), b...) {
		key := strings.ToLower(x)
		if !seen[key] {
			seen[key] = true
			out = append(out, x)
		}
	}
	return out
}
