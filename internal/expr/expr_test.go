package expr

import (
	"testing"

	"hummer/internal/relation"
	"hummer/internal/schema"
	"hummer/internal/value"
)

var testSchema = schema.FromNames("name", "age", "city")

func row(name string, age value.Value, city string) relation.Row {
	var c value.Value
	if city != "" {
		c = value.NewString(city)
	}
	return relation.Row{value.NewString(name), age, c}
}

func mustBind(t *testing.T, e Expr) Expr {
	t.Helper()
	if err := e.Bind(testSchema); err != nil {
		t.Fatalf("Bind(%s): %v", e, err)
	}
	return e
}

func TestColEval(t *testing.T) {
	e := mustBind(t, NewCol("age"))
	got := e.Eval(row("A", value.NewInt(30), "Berlin"))
	if !got.Equal(value.NewInt(30)) {
		t.Errorf("Eval = %v", got)
	}
}

func TestColBindUnknown(t *testing.T) {
	if err := NewCol("nope").Bind(testSchema); err == nil {
		t.Error("binding unknown column must fail")
	}
}

func TestColEvalBeforeBindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCol("age").Eval(row("A", value.Null, ""))
}

func TestCmpOperators(t *testing.T) {
	r := row("A", value.NewInt(30), "Berlin")
	cases := []struct {
		op   CmpOp
		rhs  int64
		want bool
	}{
		{EQ, 30, true}, {EQ, 31, false},
		{NE, 30, false}, {NE, 31, true},
		{LT, 31, true}, {LT, 30, false},
		{LE, 30, true}, {LE, 29, false},
		{GT, 29, true}, {GT, 30, false},
		{GE, 30, true}, {GE, 31, false},
	}
	for _, c := range cases {
		e := mustBind(t, NewCmp(c.op, NewCol("age"), NewLit(value.NewInt(c.rhs))))
		if got := e.Eval(r); !got.Equal(value.NewBool(c.want)) {
			t.Errorf("age %s %d = %v, want %v", c.op, c.rhs, got, c.want)
		}
	}
}

func TestCmpNullPropagates(t *testing.T) {
	e := mustBind(t, NewCmp(EQ, NewCol("age"), NewLit(value.NewInt(1))))
	if got := e.Eval(row("A", value.Null, "")); !got.IsNull() {
		t.Errorf("NULL = 1 gave %v, want NULL", got)
	}
}

func TestThreeValuedLogic(t *testing.T) {
	tr := NewLit(value.NewBool(true))
	fa := NewLit(value.NewBool(false))
	nu := NewLit(value.Null)
	cases := []struct {
		e    Expr
		want value.Value
	}{
		{NewAnd(tr, tr), value.NewBool(true)},
		{NewAnd(tr, fa), value.NewBool(false)},
		{NewAnd(fa, nu), value.NewBool(false)}, // FALSE AND UNKNOWN = FALSE
		{NewAnd(tr, nu), value.Null},
		{NewOr(fa, fa), value.NewBool(false)},
		{NewOr(fa, tr), value.NewBool(true)},
		{NewOr(tr, nu), value.NewBool(true)}, // TRUE OR UNKNOWN = TRUE
		{NewOr(fa, nu), value.Null},
		{NewNot(tr), value.NewBool(false)},
		{NewNot(fa), value.NewBool(true)},
		{NewNot(nu), value.Null},
	}
	for _, c := range cases {
		mustBind(t, c.e)
		got := c.e.Eval(nil)
		if got.IsNull() != c.want.IsNull() || (!got.IsNull() && !got.Equal(c.want)) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestIsNull(t *testing.T) {
	e := mustBind(t, NewIsNull(NewCol("city"), false))
	if got := e.Eval(row("A", value.Null, "")); !got.Equal(value.NewBool(true)) {
		t.Errorf("IS NULL on NULL = %v", got)
	}
	if got := e.Eval(row("A", value.Null, "Berlin")); !got.Equal(value.NewBool(false)) {
		t.Errorf("IS NULL on value = %v", got)
	}
	n := mustBind(t, NewIsNull(NewCol("city"), true))
	if got := n.Eval(row("A", value.Null, "Berlin")); !got.Equal(value.NewBool(true)) {
		t.Errorf("IS NOT NULL on value = %v", got)
	}
}

func TestArith(t *testing.T) {
	r := row("A", value.NewInt(10), "")
	cases := []struct {
		op   ArithOp
		rhs  value.Value
		want value.Value
	}{
		{Add, value.NewInt(5), value.NewInt(15)},
		{Sub, value.NewInt(3), value.NewInt(7)},
		{Mul, value.NewInt(2), value.NewInt(20)},
		{Div, value.NewInt(2), value.NewInt(5)},
		{Div, value.NewInt(4), value.NewFloat(2.5)},
		{Div, value.NewInt(0), value.Null},
		{Add, value.NewFloat(0.5), value.NewFloat(10.5)},
		{Add, value.Null, value.Null},
	}
	for _, c := range cases {
		e := mustBind(t, NewArith(c.op, NewCol("age"), NewLit(c.rhs)))
		got := e.Eval(r)
		if got.IsNull() != c.want.IsNull() || (!got.IsNull() && !got.Equal(c.want)) {
			t.Errorf("10 %s %v = %v, want %v", c.op, c.rhs, got, c.want)
		}
	}
}

func TestStringConcatViaPlus(t *testing.T) {
	e := mustBind(t, NewArith(Add, NewCol("name"), NewLit(value.NewString("!"))))
	if got := e.Eval(row("Hi", value.Null, "")); got.Text() != "Hi!" {
		t.Errorf("concat = %v", got)
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"%", "", true},
		{"%", "anything", true},
		{"a%", "abc", true},
		{"a%", "bac", false},
		{"%c", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"%b%", "abc", true},
		{"abc", "ABC", true}, // case-insensitive
		{"a%z", "az", true},
		{"a%%z", "aXYz", true},
		{"", "", true},
		{"", "x", false},
	}
	for _, c := range cases {
		e := mustBind(t, NewLike(NewCol("name"), c.pattern, false))
		got := e.Eval(row(c.s, value.Null, ""))
		if !got.Equal(value.NewBool(c.want)) {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.pattern, got, c.want)
		}
	}
}

func TestLikeNullAndNegate(t *testing.T) {
	e := mustBind(t, NewLike(NewCol("city"), "%", false))
	if got := e.Eval(row("A", value.Null, "")); !got.IsNull() {
		t.Error("NULL LIKE must be NULL")
	}
	n := mustBind(t, NewLike(NewCol("name"), "a%", true))
	if got := n.Eval(row("abc", value.Null, "")); !got.Equal(value.NewBool(false)) {
		t.Errorf("NOT LIKE = %v", got)
	}
}

func TestIn(t *testing.T) {
	list := []value.Value{value.NewString("Berlin"), value.NewString("Tokyo")}
	e := mustBind(t, NewIn(NewCol("city"), list, false))
	if got := e.Eval(row("A", value.Null, "Berlin")); !got.Equal(value.NewBool(true)) {
		t.Errorf("IN = %v", got)
	}
	if got := e.Eval(row("A", value.Null, "Oslo")); !got.Equal(value.NewBool(false)) {
		t.Errorf("IN = %v", got)
	}
	if got := e.Eval(row("A", value.Null, "")); !got.IsNull() {
		t.Error("NULL IN must be NULL")
	}
	n := mustBind(t, NewIn(NewCol("city"), list, true))
	if got := n.Eval(row("A", value.Null, "Oslo")); !got.Equal(value.NewBool(true)) {
		t.Errorf("NOT IN = %v", got)
	}
}

func TestTruthy(t *testing.T) {
	if !Truthy(value.NewBool(true)) {
		t.Error("true must be truthy")
	}
	if Truthy(value.NewBool(false)) || Truthy(value.Null) || Truthy(value.NewInt(1)) {
		t.Error("false/NULL/non-bool must not be truthy")
	}
}

func TestStringRendering(t *testing.T) {
	e := NewAnd(
		NewCmp(GT, NewCol("age"), NewLit(value.NewInt(18))),
		NewLike(NewCol("name"), "A%", false),
	)
	got := e.String()
	want := "(age > 18 AND name LIKE 'A%')"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	lit := NewLit(value.NewString("it's"))
	if lit.String() != "'it''s'" {
		t.Errorf("string literal escaping = %q", lit.String())
	}
}

func TestBindErrorsPropagate(t *testing.T) {
	bad := NewCol("missing")
	exprs := []Expr{
		NewCmp(EQ, bad, NewLit(value.Null)),
		NewCmp(EQ, NewLit(value.Null), bad),
		NewAnd(bad, bad),
		NewNot(bad),
		NewIsNull(bad, false),
		NewArith(Add, bad, bad),
		NewLike(bad, "%", false),
		NewIn(bad, nil, false),
	}
	for _, e := range exprs {
		if err := e.Bind(testSchema); err == nil {
			t.Errorf("%T: expected bind error", e)
		}
	}
}
