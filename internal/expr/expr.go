// Package expr implements scalar expressions over relation rows:
// column references, literals, comparison and boolean predicates,
// arithmetic, and a handful of scalar functions. Evaluation follows
// SQL three-valued logic (NULL propagation, IS NULL, AND/OR
// short-circuit with UNKNOWN).
package expr

import (
	"fmt"
	"strings"

	"hummer/internal/relation"
	"hummer/internal/schema"
	"hummer/internal/value"
)

// Expr is a scalar expression. Bind resolves column references against
// a schema; Eval computes the value for one row. Eval must only be
// called after a successful Bind against the row's schema.
type Expr interface {
	// Bind resolves names against s, returning an error for unknown
	// columns or type errors detectable statically.
	Bind(s *schema.Schema) error
	// Eval computes the expression over row.
	Eval(row relation.Row) value.Value
	// String renders the expression in SQL-like syntax.
	String() string
	// Clone deep-copies the expression tree. Bind mutates binding
	// state in place, so an expression shared between executions
	// (e.g. a cached query plan) must be cloned before each Bind.
	Clone() Expr
}

// CloneExpr clones e, passing nil through (absent WHERE/HAVING).
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	return e.Clone()
}

// --- Column reference -------------------------------------------------

// Col references a column by name.
type Col struct {
	Name string
	pos  int
}

// NewCol returns a column reference expression.
func NewCol(name string) *Col { return &Col{Name: name, pos: -1} }

// Bind resolves the column position.
func (c *Col) Bind(s *schema.Schema) error {
	i, ok := s.Lookup(c.Name)
	if !ok {
		return fmt.Errorf("expr: unknown column %q in %s", c.Name, s)
	}
	c.pos = i
	return nil
}

// Eval returns the referenced cell.
func (c *Col) Eval(row relation.Row) value.Value {
	if c.pos < 0 {
		panic(fmt.Sprintf("expr: column %q evaluated before Bind", c.Name))
	}
	return row[c.pos]
}

func (c *Col) String() string { return c.Name }

// Clone copies the reference (binding state included).
func (c *Col) Clone() Expr { cp := *c; return &cp }

// --- Literal ----------------------------------------------------------

// Lit is a constant value.
type Lit struct{ Val value.Value }

// NewLit returns a literal expression.
func NewLit(v value.Value) *Lit { return &Lit{Val: v} }

// Bind is a no-op for literals.
func (l *Lit) Bind(*schema.Schema) error { return nil }

// Eval returns the constant.
func (l *Lit) Eval(relation.Row) value.Value { return l.Val }

func (l *Lit) String() string {
	if l.Val.Kind() == value.KindString {
		return "'" + strings.ReplaceAll(l.Val.Str(), "'", "''") + "'"
	}
	return l.Val.String()
}

// Clone copies the literal (values are immutable).
func (l *Lit) Clone() Expr { cp := *l; return &cp }

// --- Comparison -------------------------------------------------------

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (o CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[o]
}

// Cmp compares two sub-expressions. A NULL operand yields NULL
// (UNKNOWN), per SQL.
type Cmp struct {
	Op          CmpOp
	Left, Right Expr
}

// NewCmp builds a comparison expression.
func NewCmp(op CmpOp, l, r Expr) *Cmp { return &Cmp{Op: op, Left: l, Right: r} }

// Bind binds both operands.
func (c *Cmp) Bind(s *schema.Schema) error {
	if err := c.Left.Bind(s); err != nil {
		return err
	}
	return c.Right.Bind(s)
}

// Eval applies the comparison with NULL propagation.
func (c *Cmp) Eval(row relation.Row) value.Value {
	l, r := c.Left.Eval(row), c.Right.Eval(row)
	if l.IsNull() || r.IsNull() {
		return value.Null
	}
	cmp := l.Compare(r)
	var res bool
	switch c.Op {
	case EQ:
		res = l.Equal(r)
	case NE:
		res = !l.Equal(r)
	case LT:
		res = cmp < 0
	case LE:
		res = cmp <= 0
	case GT:
		res = cmp > 0
	case GE:
		res = cmp >= 0
	}
	return value.NewBool(res)
}

func (c *Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// Clone deep-copies both operands.
func (c *Cmp) Clone() Expr { return &Cmp{Op: c.Op, Left: c.Left.Clone(), Right: c.Right.Clone()} }

// --- Boolean connectives ----------------------------------------------

// BoolOp enumerates boolean connectives.
type BoolOp uint8

// Boolean connectives.
const (
	And BoolOp = iota
	Or
)

func (o BoolOp) String() string {
	if o == And {
		return "AND"
	}
	return "OR"
}

// Logic combines two boolean sub-expressions with three-valued logic.
type Logic struct {
	Op          BoolOp
	Left, Right Expr
}

// NewAnd conjoins two expressions.
func NewAnd(l, r Expr) *Logic { return &Logic{Op: And, Left: l, Right: r} }

// NewOr disjoins two expressions.
func NewOr(l, r Expr) *Logic { return &Logic{Op: Or, Left: l, Right: r} }

// Bind binds both operands.
func (g *Logic) Bind(s *schema.Schema) error {
	if err := g.Left.Bind(s); err != nil {
		return err
	}
	return g.Right.Bind(s)
}

// Eval implements Kleene three-valued AND/OR.
func (g *Logic) Eval(row relation.Row) value.Value {
	l := truth(g.Left.Eval(row))
	r := truth(g.Right.Eval(row))
	if g.Op == And {
		switch {
		case l == tFalse || r == tFalse:
			return value.NewBool(false)
		case l == tTrue && r == tTrue:
			return value.NewBool(true)
		default:
			return value.Null
		}
	}
	switch {
	case l == tTrue || r == tTrue:
		return value.NewBool(true)
	case l == tFalse && r == tFalse:
		return value.NewBool(false)
	default:
		return value.Null
	}
}

func (g *Logic) String() string {
	return fmt.Sprintf("(%s %s %s)", g.Left, g.Op, g.Right)
}

// Clone deep-copies both operands.
func (g *Logic) Clone() Expr {
	return &Logic{Op: g.Op, Left: g.Left.Clone(), Right: g.Right.Clone()}
}

// Not negates a boolean expression; NOT NULL is NULL.
type Not struct{ Inner Expr }

// NewNot negates e.
func NewNot(e Expr) *Not { return &Not{Inner: e} }

// Bind binds the operand.
func (n *Not) Bind(s *schema.Schema) error { return n.Inner.Bind(s) }

// Eval negates with NULL propagation.
func (n *Not) Eval(row relation.Row) value.Value {
	switch truth(n.Inner.Eval(row)) {
	case tTrue:
		return value.NewBool(false)
	case tFalse:
		return value.NewBool(true)
	default:
		return value.Null
	}
}

func (n *Not) String() string { return fmt.Sprintf("NOT (%s)", n.Inner) }

// Clone deep-copies the operand.
func (n *Not) Clone() Expr { return &Not{Inner: n.Inner.Clone()} }

type tri uint8

const (
	tUnknown tri = iota
	tTrue
	tFalse
)

func truth(v value.Value) tri {
	if v.Kind() != value.KindBool {
		return tUnknown
	}
	if v.Bool() {
		return tTrue
	}
	return tFalse
}

// Truthy reports whether v is definitely true (SQL WHERE semantics:
// UNKNOWN filters out).
func Truthy(v value.Value) bool { return truth(v) == tTrue }

// --- IS NULL ----------------------------------------------------------

// IsNull tests for NULL; Negate turns it into IS NOT NULL.
type IsNull struct {
	Inner  Expr
	Negate bool
}

// NewIsNull builds an IS [NOT] NULL test.
func NewIsNull(e Expr, negate bool) *IsNull { return &IsNull{Inner: e, Negate: negate} }

// Bind binds the operand.
func (p *IsNull) Bind(s *schema.Schema) error { return p.Inner.Bind(s) }

// Eval never returns NULL: IS NULL is two-valued.
func (p *IsNull) Eval(row relation.Row) value.Value {
	isNull := p.Inner.Eval(row).IsNull()
	return value.NewBool(isNull != p.Negate)
}

func (p *IsNull) String() string {
	if p.Negate {
		return fmt.Sprintf("%s IS NOT NULL", p.Inner)
	}
	return fmt.Sprintf("%s IS NULL", p.Inner)
}

// Clone deep-copies the operand.
func (p *IsNull) Clone() Expr { return &IsNull{Inner: p.Inner.Clone(), Negate: p.Negate} }

// --- Arithmetic -------------------------------------------------------

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

func (o ArithOp) String() string { return [...]string{"+", "-", "*", "/"}[o] }

// Arith applies +,-,*,/ to numeric operands; + concatenates strings.
// NULL operands propagate; division by zero yields NULL.
type Arith struct {
	Op          ArithOp
	Left, Right Expr
}

// NewArith builds an arithmetic expression.
func NewArith(op ArithOp, l, r Expr) *Arith { return &Arith{Op: op, Left: l, Right: r} }

// Bind binds both operands.
func (a *Arith) Bind(s *schema.Schema) error {
	if err := a.Left.Bind(s); err != nil {
		return err
	}
	return a.Right.Bind(s)
}

// Eval computes the arithmetic result.
func (a *Arith) Eval(row relation.Row) value.Value {
	l, r := a.Left.Eval(row), a.Right.Eval(row)
	if l.IsNull() || r.IsNull() {
		return value.Null
	}
	if a.Op == Add && l.Kind() == value.KindString && r.Kind() == value.KindString {
		return value.NewString(l.Str() + r.Str())
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return value.Null
	}
	bothInt := l.Kind() == value.KindInt && r.Kind() == value.KindInt
	switch a.Op {
	case Add:
		if bothInt {
			return value.NewInt(l.Int() + r.Int())
		}
		return value.NewFloat(lf + rf)
	case Sub:
		if bothInt {
			return value.NewInt(l.Int() - r.Int())
		}
		return value.NewFloat(lf - rf)
	case Mul:
		if bothInt {
			return value.NewInt(l.Int() * r.Int())
		}
		return value.NewFloat(lf * rf)
	case Div:
		if rf == 0 {
			return value.Null
		}
		if bothInt && l.Int()%r.Int() == 0 {
			return value.NewInt(l.Int() / r.Int())
		}
		return value.NewFloat(lf / rf)
	}
	return value.Null
}

func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.Left, a.Op, a.Right)
}

// Clone deep-copies both operands.
func (a *Arith) Clone() Expr {
	return &Arith{Op: a.Op, Left: a.Left.Clone(), Right: a.Right.Clone()}
}

// --- LIKE -------------------------------------------------------------

// Like implements SQL LIKE with % and _ wildcards.
type Like struct {
	Inner   Expr
	Pattern string
	Negate  bool
}

// NewLike builds a LIKE predicate.
func NewLike(e Expr, pattern string, negate bool) *Like {
	return &Like{Inner: e, Pattern: pattern, Negate: negate}
}

// Bind binds the operand.
func (l *Like) Bind(s *schema.Schema) error { return l.Inner.Bind(s) }

// Eval matches the pattern; NULL input yields NULL.
func (l *Like) Eval(row relation.Row) value.Value {
	v := l.Inner.Eval(row)
	if v.IsNull() {
		return value.Null
	}
	m := likeMatch(l.Pattern, v.Text())
	return value.NewBool(m != l.Negate)
}

func (l *Like) String() string {
	op := "LIKE"
	if l.Negate {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("%s %s '%s'", l.Inner, op, l.Pattern)
}

// Clone deep-copies the operand.
func (l *Like) Clone() Expr {
	return &Like{Inner: l.Inner.Clone(), Pattern: l.Pattern, Negate: l.Negate}
}

// likeMatch matches SQL LIKE patterns (case-insensitive, the common
// collation choice for dirty-data work) using iterative backtracking
// over the single %-wildcard structure.
func likeMatch(pattern, s string) bool {
	p := strings.ToLower(pattern)
	t := strings.ToLower(s)
	pi, ti := 0, 0
	star, mark := -1, 0
	for ti < len(t) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == t[ti]):
			pi++
			ti++
		case pi < len(p) && p[pi] == '%':
			star, mark = pi, ti
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			ti = mark
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// --- IN ---------------------------------------------------------------

// In tests membership in a literal list.
type In struct {
	Inner  Expr
	List   []value.Value
	Negate bool
}

// NewIn builds an IN predicate.
func NewIn(e Expr, list []value.Value, negate bool) *In {
	return &In{Inner: e, List: list, Negate: negate}
}

// Bind binds the operand.
func (in *In) Bind(s *schema.Schema) error { return in.Inner.Bind(s) }

// Eval tests membership; NULL input yields NULL.
func (in *In) Eval(row relation.Row) value.Value {
	v := in.Inner.Eval(row)
	if v.IsNull() {
		return value.Null
	}
	found := false
	for _, c := range in.List {
		if v.Equal(c) {
			found = true
			break
		}
	}
	return value.NewBool(found != in.Negate)
}

func (in *In) String() string {
	parts := make([]string, len(in.List))
	for i, v := range in.List {
		parts[i] = (&Lit{Val: v}).String()
	}
	op := "IN"
	if in.Negate {
		op = "NOT IN"
	}
	return fmt.Sprintf("%s %s (%s)", in.Inner, op, strings.Join(parts, ", "))
}

// Clone deep-copies the operand and the literal list.
func (in *In) Clone() Expr {
	return &In{Inner: in.Inner.Clone(), List: append([]value.Value(nil), in.List...), Negate: in.Negate}
}
