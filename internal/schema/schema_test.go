package schema

import (
	"testing"

	"hummer/internal/value"
)

func TestNewAndLookup(t *testing.T) {
	s := New(
		Column{Name: "Name", Type: value.KindString},
		Column{Name: "Age", Type: value.KindInt},
	)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if i, ok := s.Lookup("age"); !ok || i != 1 {
		t.Errorf("Lookup(age) = %d,%v; want 1,true", i, ok)
	}
	if _, ok := s.Lookup("missing"); ok {
		t.Error("Lookup(missing) should fail")
	}
	if !s.Has("NAME") {
		t.Error("Has must be case-insensitive")
	}
}

func TestNewPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate column")
		}
	}()
	New(Column{Name: "a"}, Column{Name: "A"})
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing column")
		}
	}()
	FromNames("a").MustLookup("b")
}

func TestFromNames(t *testing.T) {
	s := FromNames("x", "y", "z")
	want := []string{"x", "y", "z"}
	got := s.Names()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRename(t *testing.T) {
	s := FromNames("a", "b")
	r, err := s.Rename("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Has("c") || r.Has("a") {
		t.Error("rename did not take effect")
	}
	if s.Has("c") {
		t.Error("rename mutated the original schema")
	}
	if _, err := s.Rename("z", "w"); err == nil {
		t.Error("renaming missing column must fail")
	}
	if _, err := s.Rename("a", "b"); err == nil {
		t.Error("renaming onto existing column must fail")
	}
	// Case-only rename of the same column is allowed.
	if _, err := s.Rename("a", "A"); err != nil {
		t.Errorf("case-only rename failed: %v", err)
	}
}

func TestProject(t *testing.T) {
	s := FromNames("a", "b", "c")
	p, err := s.Project("c", "a")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Col(0).Name != "c" || p.Col(1).Name != "a" {
		t.Errorf("Project gave %v", p.Names())
	}
	if _, err := s.Project("nope"); err == nil {
		t.Error("projecting missing column must fail")
	}
}

func TestAppend(t *testing.T) {
	s := FromNames("a")
	a, err := s.Append(Column{Name: "b", Type: value.KindInt})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2 || a.Col(1).Name != "b" {
		t.Error("append failed")
	}
	if _, err := s.Append(Column{Name: "A"}); err == nil {
		t.Error("appending duplicate must fail")
	}
}

func TestEqual(t *testing.T) {
	a := New(Column{Name: "x", Type: value.KindInt})
	b := New(Column{Name: "X", Type: value.KindInt})
	c := New(Column{Name: "x", Type: value.KindFloat})
	if !a.Equal(b) {
		t.Error("case-insensitive equal failed")
	}
	if a.Equal(c) {
		t.Error("different types must not be equal")
	}
	if a.Equal(FromNames("x", "y")) {
		t.Error("different lengths must not be equal")
	}
}

func TestOuterUnionOrderFavorsPreferredSchema(t *testing.T) {
	s1 := FromNames("Name", "Age")
	s2 := FromNames("Phone", "Name", "City")
	u := OuterUnion(s1, s2)
	want := []string{"Name", "Age", "Phone", "City"}
	got := u.Names()
	if len(got) != len(want) {
		t.Fatalf("union = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("union[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestOuterUnionTypeUnification(t *testing.T) {
	s1 := New(Column{Name: "v", Type: value.KindInt})
	s2 := New(Column{Name: "v", Type: value.KindFloat})
	s3 := New(Column{Name: "v", Type: value.KindString})
	if got := OuterUnion(s1, s2).Col(0).Type; got != value.KindFloat {
		t.Errorf("int∪float = %v, want FLOAT", got)
	}
	if got := OuterUnion(s1, s3).Col(0).Type; got != value.KindNull {
		t.Errorf("int∪string = %v, want NULL (dynamic)", got)
	}
	if got := OuterUnion(s1, s1).Col(0).Type; got != value.KindInt {
		t.Errorf("int∪int = %v, want INT", got)
	}
}

func TestAlignmentOf(t *testing.T) {
	super := FromNames("a", "b", "c")
	sub := FromNames("c", "a")
	align := AlignmentOf(super, sub)
	want := []int{1, -1, 0}
	for i := range want {
		if align[i] != want[i] {
			t.Errorf("align[%d] = %d, want %d", i, align[i], want[i])
		}
	}
}

func TestStringRendering(t *testing.T) {
	s := New(Column{Name: "a", Type: value.KindInt}, Column{Name: "b"})
	if got := s.String(); got != "(a INT, b)" {
		t.Errorf("String() = %q", got)
	}
}
