// Package schema models relation schemas: ordered lists of typed,
// named columns, plus the schema algebra HumMer's transformation phase
// needs (rename, projection, outer-union alignment).
package schema

import (
	"fmt"
	"strings"

	"hummer/internal/value"
)

// Column describes one attribute of a relation.
type Column struct {
	// Name is the attribute name, unique within a schema
	// (case-insensitively).
	Name string
	// Type is the declared kind. KindNull means "unknown / any",
	// used before type inference has run.
	Type value.Kind
	// Source is the alias of the data source the column originated
	// from; empty for derived columns.
	Source string
}

// Schema is an ordered list of columns.
type Schema struct {
	cols  []Column
	index map[string]int // lower-case name → position
}

// New builds a schema from cols. It panics on duplicate column names
// (case-insensitive); schemas are constructed from trusted code paths
// and a duplicate is always a programming error.
func New(cols ...Column) *Schema {
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := s.index[key]; dup {
			panic(fmt.Sprintf("schema: duplicate column %q", c.Name))
		}
		s.index[key] = i
	}
	return s
}

// FromNames builds an untyped schema from bare column names.
func FromNames(names ...string) *Schema {
	cols := make([]Column, len(names))
	for i, n := range names {
		cols[i] = Column{Name: n}
	}
	return New(cols...)
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Names returns the column names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.cols))
	for i, c := range s.cols {
		names[i] = c.Name
	}
	return names
}

// Lookup returns the position of the named column (case-insensitive).
func (s *Schema) Lookup(name string) (int, bool) {
	i, ok := s.index[strings.ToLower(name)]
	return i, ok
}

// MustLookup is Lookup that panics on a missing column.
func (s *Schema) MustLookup(name string) int {
	i, ok := s.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("schema: no column %q in (%s)", name, strings.Join(s.Names(), ", ")))
	}
	return i
}

// Has reports whether the named column exists.
func (s *Schema) Has(name string) bool {
	_, ok := s.Lookup(name)
	return ok
}

// Equal reports whether two schemas have identical names (case-
// insensitive) and types in the same order.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.cols {
		if !strings.EqualFold(s.cols[i].Name, o.cols[i].Name) || s.cols[i].Type != o.cols[i].Type {
			return false
		}
	}
	return true
}

// String renders the schema as "(name TYPE, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		if c.Type != value.KindNull {
			b.WriteByte(' ')
			b.WriteString(c.Type.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Rename returns a copy of s with column old renamed to new. It returns
// an error when old does not exist or new would collide.
func (s *Schema) Rename(old, new string) (*Schema, error) {
	i, ok := s.Lookup(old)
	if !ok {
		return nil, fmt.Errorf("schema: rename: no column %q", old)
	}
	if !strings.EqualFold(old, new) && s.Has(new) {
		return nil, fmt.Errorf("schema: rename: column %q already exists", new)
	}
	cols := s.Columns()
	cols[i].Name = new
	return New(cols...), nil
}

// Project returns a schema with only the named columns, in the given
// order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		i, ok := s.Lookup(n)
		if !ok {
			return nil, fmt.Errorf("schema: project: no column %q", n)
		}
		cols = append(cols, s.cols[i])
	}
	return New(cols...), nil
}

// Append returns a schema with col added at the end.
func (s *Schema) Append(col Column) (*Schema, error) {
	if s.Has(col.Name) {
		return nil, fmt.Errorf("schema: append: column %q already exists", col.Name)
	}
	return New(append(s.Columns(), col)...), nil
}

// OuterUnion aligns a list of schemas the way HumMer's transformation
// phase does before the full outer union: the result contains every
// column name appearing in any input, in first-appearance order
// (favouring earlier schemas, i.e. the "preferred" source). Types are
// unified: identical kinds are kept, mixed INT/FLOAT widens to FLOAT,
// anything else degrades to KindNull (dynamic).
func OuterUnion(schemas ...*Schema) *Schema {
	var cols []Column
	pos := map[string]int{}
	for _, s := range schemas {
		for _, c := range s.cols {
			key := strings.ToLower(c.Name)
			if j, ok := pos[key]; ok {
				cols[j].Type = unify(cols[j].Type, c.Type)
				if cols[j].Source != c.Source {
					cols[j].Source = ""
				}
				continue
			}
			pos[key] = len(cols)
			cols = append(cols, c)
		}
	}
	return New(cols...)
}

func unify(a, b value.Kind) value.Kind {
	if a == b {
		return a
	}
	if (a == value.KindInt && b == value.KindFloat) || (a == value.KindFloat && b == value.KindInt) {
		return value.KindFloat
	}
	return value.KindNull
}

// AlignmentOf maps each column of sub into the positions of super: the
// returned slice has one entry per super column, holding the matching
// sub position or -1. Used to pad tuples during outer union.
func AlignmentOf(super, sub *Schema) []int {
	align := make([]int, super.Len())
	for i, c := range super.cols {
		if j, ok := sub.Lookup(c.Name); ok {
			align[i] = j
		} else {
			align[i] = -1
		}
	}
	return align
}
