package qcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hummer/internal/fault"
	"hummer/internal/faultinject"
	"hummer/internal/relation"
)

func TestDoHitMiss(t *testing.T) {
	c := New(8)
	key := PlanKey("SELECT * FROM t")
	calls := 0
	compute := func() (any, error) { calls++; return 42, nil }

	v, hit, err := c.Do(key, compute)
	if err != nil || hit || v.(int) != 42 {
		t.Fatalf("first Do = (%v, %v, %v), want (42, miss, nil)", v, hit, err)
	}
	v, hit, err = c.Do(key, compute)
	if err != nil || !hit || v.(int) != 42 {
		t.Fatalf("second Do = (%v, %v, %v), want (42, hit, nil)", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	ks := st.Kinds[KindPlan]
	if ks.Hits != 1 || ks.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", ks)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

func TestDoSingleflight(t *testing.T) {
	c := New(8)
	key := Key{Kind: KindMatch, Fingerprint: "x"}
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	const waiters = 16
	var wg sync.WaitGroup
	results := make([]any, waiters+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, _, _ := c.Do(key, func() (any, error) {
			close(started)
			<-release
			calls.Add(1)
			return "artifact", nil
		})
		results[waiters] = v
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(key, func() (any, error) {
				calls.Add(1)
				return "recomputed", nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	// Give the waiters a chance to enqueue, then release the compute.
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1 (singleflight)", calls.Load())
	}
	for i, v := range results {
		if v != "artifact" {
			t.Fatalf("caller %d got %v, want shared artifact", i, v)
		}
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(8)
	key := Key{Kind: KindDetect, Fingerprint: "e"}
	calls := 0
	_, _, err := c.Do(key, func() (any, error) { calls++; return nil, fmt.Errorf("boom") })
	if err == nil {
		t.Fatal("want error")
	}
	if c.Len() != 0 {
		t.Fatalf("failed entry stayed resident: len=%d", c.Len())
	}
	v, hit, err := c.Do(key, func() (any, error) { calls++; return 7, nil })
	if err != nil || hit || v.(int) != 7 {
		t.Fatalf("retry = (%v, %v, %v), want fresh 7", v, hit, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
}

// TestDoPanicDoesNotWedgeKey: a compute that panics is contained at
// the leader boundary — the leader's call returns a
// *fault.InternalError (never a process crash), the entry is dropped,
// and singleflight waiters re-elect and recompute exactly like the
// cancelled-leader path — never left wedged, never poisoned.
func TestDoPanicDoesNotWedgeKey(t *testing.T) {
	c := New(8)
	key := Key{Kind: KindPlan, Fingerprint: "p"}

	started := make(chan struct{})
	release := make(chan struct{})
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do(key, func() (any, error) {
			close(started)
			<-release
			panic("parser bug")
		})
		leaderErr <- err
	}()
	<-started

	// Attach a waiter while the compute is in flight.
	type waiterResult struct {
		val any
		err error
	}
	waiter := make(chan waiterResult, 1)
	go func() {
		v, _, err := c.Do(key, func() (any, error) { return "recomputed", nil })
		waiter <- waiterResult{v, err}
	}()
	// Let the waiter reach the in-flight entry, then fire the panic.
	// (Shared is counted when a waiter resolves, not when it attaches;
	// the Waiters gauge is the attach observable.)
	for c.Stats().Waiters == 0 {
		select {
		case r := <-waiter:
			t.Fatalf("waiter returned before the flight resolved: %v", r)
		default:
		}
	}
	close(release)

	// The leader gets the contained panic as a typed internal error.
	err := <-leaderErr
	var ie *fault.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("leader err = %v (%T), want *fault.InternalError", err, err)
	}
	if ie.Site != faultinject.SiteQCacheLeader {
		t.Errorf("Site = %q, want %q", ie.Site, faultinject.SiteQCacheLeader)
	}

	// The waiter re-elects like the cancelled-leader path and computes
	// its own fresh value — it never inherits the panicked flight.
	select {
	case r := <-waiter:
		if r.err != nil || r.val != "recomputed" {
			t.Errorf("re-elected waiter = (%v, %v), want fresh recompute", r.val, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter wedged after compute panic")
	}

	// The panicked entry itself never lingers; the waiter's recompute
	// is the only resident value for the key.
	v, ok := c.Get(key)
	if !ok || v != "recomputed" {
		t.Fatalf("Get = (%v, %v), want the waiter's recompute resident", v, ok)
	}

	// And the key keeps serving.
	v2, hit, err := c.Do(key, func() (any, error) { return 1, nil })
	if err != nil || !hit || v2 != "recomputed" {
		t.Errorf("post-panic Do = (%v, %v, %v), want cached recompute", v2, hit, err)
	}
}

func TestEvictionLRU(t *testing.T) {
	c := New(2)
	mk := func(i int) Key { return Key{Kind: KindPlan, Fingerprint: fmt.Sprint(i)} }
	for i := 0; i < 3; i++ {
		c.Do(mk(i), func() (any, error) { return i, nil })
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	// Key 0 is the least recently used and must be gone.
	if _, ok := c.Get(mk(0)); ok {
		t.Fatal("LRU entry 0 survived eviction")
	}
	if _, ok := c.Get(mk(2)); !ok {
		t.Fatal("most recent entry 2 was evicted")
	}
	if ev := c.Stats().Kinds[KindPlan].Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestPurge(t *testing.T) {
	c := New(8)
	for i := 0; i < 3; i++ {
		key := Key{Kind: KindMatch, Fingerprint: fmt.Sprint(i)}
		c.Do(key, func() (any, error) { return i, nil })
	}
	if n := c.Purge(); n != 3 {
		t.Fatalf("purged %d, want 3", n)
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after purge", c.Len())
	}
}

func TestFingerprintRelation(t *testing.T) {
	build := func(name string, rows ...[]string) *relation.Relation {
		b := relation.NewBuilder(name, "A", "B")
		for _, r := range rows {
			b.AddText(r...)
		}
		return b.Build()
	}
	r1 := build("t", []string{"x", "1"}, []string{"y", "2"})
	r2 := build("other", []string{"x", "1"}, []string{"y", "2"})
	if FingerprintRelation(r1) != FingerprintRelation(r2) {
		t.Fatal("fingerprint must not depend on the relation name")
	}
	r3 := build("t", []string{"x", "1"}, []string{"y", "3"})
	if FingerprintRelation(r1) == FingerprintRelation(r3) {
		t.Fatal("cell change must change the fingerprint")
	}
	r4 := build("t", []string{"y", "2"}, []string{"x", "1"})
	if FingerprintRelation(r1) == FingerprintRelation(r4) {
		t.Fatal("row order must change the fingerprint")
	}
}

func TestKeysDifferByConfig(t *testing.T) {
	type cfg struct{ Threshold float64 }
	k1 := DetectKey("rel:abc", cfg{0.8})
	k2 := DetectKey("rel:abc", cfg{0.9})
	if k1 == k2 {
		t.Fatal("config change must change the detect key")
	}
	m1 := MatchKey("l", "r", cfg{0.8})
	m2 := MatchKey("r", "l", cfg{0.8})
	if m1 == m2 {
		t.Fatal("swapping sides must change the match key")
	}
}
