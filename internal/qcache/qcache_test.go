package qcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hummer/internal/relation"
)

func TestDoHitMiss(t *testing.T) {
	c := New(8)
	key := PlanKey("SELECT * FROM t")
	calls := 0
	compute := func() (any, error) { calls++; return 42, nil }

	v, hit, err := c.Do(key, compute)
	if err != nil || hit || v.(int) != 42 {
		t.Fatalf("first Do = (%v, %v, %v), want (42, miss, nil)", v, hit, err)
	}
	v, hit, err = c.Do(key, compute)
	if err != nil || !hit || v.(int) != 42 {
		t.Fatalf("second Do = (%v, %v, %v), want (42, hit, nil)", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	ks := st.Kinds[KindPlan]
	if ks.Hits != 1 || ks.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", ks)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

func TestDoSingleflight(t *testing.T) {
	c := New(8)
	key := Key{Kind: KindMatch, Fingerprint: "x"}
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	const waiters = 16
	var wg sync.WaitGroup
	results := make([]any, waiters+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, _, _ := c.Do(key, func() (any, error) {
			close(started)
			<-release
			calls.Add(1)
			return "artifact", nil
		})
		results[waiters] = v
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(key, func() (any, error) {
				calls.Add(1)
				return "recomputed", nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	// Give the waiters a chance to enqueue, then release the compute.
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1 (singleflight)", calls.Load())
	}
	for i, v := range results {
		if v != "artifact" {
			t.Fatalf("caller %d got %v, want shared artifact", i, v)
		}
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(8)
	key := Key{Kind: KindDetect, Fingerprint: "e"}
	calls := 0
	_, _, err := c.Do(key, func() (any, error) { calls++; return nil, fmt.Errorf("boom") })
	if err == nil {
		t.Fatal("want error")
	}
	if c.Len() != 0 {
		t.Fatalf("failed entry stayed resident: len=%d", c.Len())
	}
	v, hit, err := c.Do(key, func() (any, error) { calls++; return 7, nil })
	if err != nil || hit || v.(int) != 7 {
		t.Fatalf("retry = (%v, %v, %v), want fresh 7", v, hit, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
}

// TestDoPanicDoesNotWedgeKey: a compute that panics must release any
// singleflight waiters with an error, drop the entry so the key
// recomputes, and re-propagate the panic — never leave the key
// permanently in flight.
func TestDoPanicDoesNotWedgeKey(t *testing.T) {
	c := New(8)
	key := Key{Kind: KindPlan, Fingerprint: "p"}

	started := make(chan struct{})
	release := make(chan struct{})
	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		c.Do(key, func() (any, error) {
			close(started)
			<-release
			panic("parser bug")
		})
	}()
	<-started

	// Attach a waiter while the compute is in flight.
	waiter := make(chan error, 1)
	go func() {
		_, _, err := c.Do(key, func() (any, error) { return "recomputed", nil })
		waiter <- err
	}()
	// Let the waiter reach the in-flight entry, then fire the panic.
	// (Shared is counted when a waiter resolves, not when it attaches;
	// the Waiters gauge is the attach observable.)
	for c.Stats().Waiters == 0 {
		select {
		case err := <-waiter:
			t.Fatalf("waiter returned before the flight resolved: %v", err)
		default:
		}
	}
	close(release)

	select {
	case err := <-waiter:
		if err == nil {
			t.Error("waiter sharing a panicked flight must receive an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter wedged after compute panic")
	}
	if r := <-panicked; r == nil {
		t.Error("panic must propagate to the computing caller")
	}
	if c.Len() != 0 {
		t.Fatalf("panicked entry stayed resident: len=%d", c.Len())
	}

	// The key must recompute cleanly afterwards.
	v, hit, err := c.Do(key, func() (any, error) { return 1, nil })
	if err != nil || hit || v.(int) != 1 {
		t.Errorf("post-panic Do = (%v, %v, %v), want fresh 1", v, hit, err)
	}
}

func TestEvictionLRU(t *testing.T) {
	c := New(2)
	mk := func(i int) Key { return Key{Kind: KindPlan, Fingerprint: fmt.Sprint(i)} }
	for i := 0; i < 3; i++ {
		c.Do(mk(i), func() (any, error) { return i, nil })
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	// Key 0 is the least recently used and must be gone.
	if _, ok := c.Get(mk(0)); ok {
		t.Fatal("LRU entry 0 survived eviction")
	}
	if _, ok := c.Get(mk(2)); !ok {
		t.Fatal("most recent entry 2 was evicted")
	}
	if ev := c.Stats().Kinds[KindPlan].Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestPurge(t *testing.T) {
	c := New(8)
	for i := 0; i < 3; i++ {
		key := Key{Kind: KindMatch, Fingerprint: fmt.Sprint(i)}
		c.Do(key, func() (any, error) { return i, nil })
	}
	if n := c.Purge(); n != 3 {
		t.Fatalf("purged %d, want 3", n)
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after purge", c.Len())
	}
}

func TestFingerprintRelation(t *testing.T) {
	build := func(name string, rows ...[]string) *relation.Relation {
		b := relation.NewBuilder(name, "A", "B")
		for _, r := range rows {
			b.AddText(r...)
		}
		return b.Build()
	}
	r1 := build("t", []string{"x", "1"}, []string{"y", "2"})
	r2 := build("other", []string{"x", "1"}, []string{"y", "2"})
	if FingerprintRelation(r1) != FingerprintRelation(r2) {
		t.Fatal("fingerprint must not depend on the relation name")
	}
	r3 := build("t", []string{"x", "1"}, []string{"y", "3"})
	if FingerprintRelation(r1) == FingerprintRelation(r3) {
		t.Fatal("cell change must change the fingerprint")
	}
	r4 := build("t", []string{"y", "2"}, []string{"x", "1"})
	if FingerprintRelation(r1) == FingerprintRelation(r4) {
		t.Fatal("row order must change the fingerprint")
	}
}

func TestKeysDifferByConfig(t *testing.T) {
	type cfg struct{ Threshold float64 }
	k1 := DetectKey("rel:abc", cfg{0.8})
	k2 := DetectKey("rel:abc", cfg{0.9})
	if k1 == k2 {
		t.Fatal("config change must change the detect key")
	}
	m1 := MatchKey("l", "r", cfg{0.8})
	m2 := MatchKey("r", "l", cfg{0.8})
	if m1 == m2 {
		t.Fatal("swapping sides must change the match key")
	}
}
