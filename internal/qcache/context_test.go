package qcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestDoContextWaiterCancel: a waiter whose context dies stops waiting
// immediately and returns its own error; the in-flight leader is
// undisturbed and completes normally.
func TestDoContextWaiterCancel(t *testing.T) {
	c := New(8)
	key := DetectKey("rel:x", struct{}{})
	computing := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, _, err := c.DoContext(context.Background(), key, func(context.Context) (any, error) {
			close(computing)
			<-release
			return 42, nil
		})
		if err != nil || v != 42 {
			t.Errorf("leader got (%v, %v), want (42, nil)", v, err)
		}
	}()

	<-computing
	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := c.DoContext(ctx, key, func(context.Context) (any, error) {
			t.Error("waiter must not compute")
			return nil, nil
		})
		waiterErr <- err
	}()
	cancel()
	select {
	case err := <-waiterErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return while the leader was still computing")
	}

	close(release)
	wg.Wait()

	// The completed entry must be observable afterwards.
	if v, ok := c.Get(key); !ok || v != 42 {
		t.Fatalf("entry after completion = (%v, %v), want (42, true)", v, ok)
	}
}

// TestDoContextLeaderCancelReelects is the "cancelled leader must not
// poison waiters" contract: when the leader's context is cancelled
// mid-compute, a waiter with a live context re-elects itself, reruns
// the computation and gets the real value — not the leader's
// cancellation error.
func TestDoContextLeaderCancelReelects(t *testing.T) {
	c := New(8)
	key := MatchKey("rel:l", "rel:r", struct{}{})
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderComputing := make(chan struct{})

	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.DoContext(leaderCtx, key, func(ctx context.Context) (any, error) {
			close(leaderComputing)
			<-ctx.Done() // a cooperative compute observing its cancellation
			return nil, ctx.Err()
		})
		leaderErr <- err
	}()

	<-leaderComputing
	// The waiter piggybacks on the in-flight entry, then must re-elect
	// once the leader abandons it.
	waiterDone := make(chan struct{})
	var waiterVal any
	var waiterE error
	go func() {
		defer close(waiterDone)
		waiterVal, _, waiterE = c.DoContext(context.Background(), key, func(context.Context) (any, error) {
			return "recomputed", nil
		})
	}()
	// Give the waiter a moment to attach to the in-flight entry, then
	// cancel the leader. (If the waiter instead arrives after the
	// abandonment it takes leadership directly — the assertion below
	// holds either way.)
	time.Sleep(20 * time.Millisecond)
	cancelLeader()

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader returned %v, want context.Canceled", err)
	}
	select {
	case <-waiterDone:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter did not re-elect after the leader was cancelled")
	}
	if waiterE != nil || waiterVal != "recomputed" {
		t.Fatalf("waiter got (%v, %v), want (recomputed, nil) — poisoned by the cancelled leader", waiterVal, waiterE)
	}
	if v, ok := c.Get(key); !ok || v != "recomputed" {
		t.Fatalf("entry after re-election = (%v, %v), want (recomputed, true)", v, ok)
	}
	// Exactly one stats event per logical lookup, even across the
	// re-election: two calls → counters sum to two (the waiter's
	// transient Shared converts into its final Miss).
	ks := c.Stats().Kinds[key.Kind]
	if total := ks.Hits + ks.Shared + ks.Misses; total != 2 {
		t.Errorf("stats sum = %d (%+v), want 2 — re-election double-counted a lookup", total, ks)
	}
}

// TestFusedKindFullCap: since fused entries went slim (no pipeline
// intermediates — trace queries bypass the tier), the fused kind runs
// on the full per-kind budget like every other kind; the old
// quarter-budget workaround is retired.
func TestFusedKindFullCap(t *testing.T) {
	c := New(4)
	put := func(k Key, v string) {
		if _, _, err := c.DoContext(context.Background(), k, func(context.Context) (any, error) { return v, nil }); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		put(FusedKey(fmt.Sprintf("q%d", i), []string{"s"}, "cfg"), "r")
		put(PlanKey(fmt.Sprintf("q%d", i)), "p")
	}
	st := c.Stats()
	if ev := st.Kinds[KindFused].Evictions; ev != 2 {
		t.Errorf("fused evictions = %d, want 2 (full cap of 4 over 6 inserts)", ev)
	}
	if ev := st.Kinds[KindPlan].Evictions; ev != 2 {
		t.Errorf("plan evictions = %d, want 2 (same budget)", ev)
	}
}

// TestDoContextGenuineErrorPropagates: a real compute failure (the
// leader's context still live) reaches the waiters and is not cached.
func TestDoContextGenuineErrorPropagates(t *testing.T) {
	c := New(8)
	key := PlanKey("SELECT broken")
	boom := fmt.Errorf("boom")
	computing := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.DoContext(context.Background(), key, func(context.Context) (any, error) {
			close(computing)
			<-release
			return nil, boom
		})
		leaderDone <- err
	}()
	<-computing
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.DoContext(context.Background(), key, func(context.Context) (any, error) {
			t.Error("waiter must not recompute while the genuine error is being delivered")
			return nil, nil
		})
		waiterDone <- err
	}()
	// Publish the failure only once the waiter has verifiably attached
	// to the in-flight entry (the Waiters gauge rises at attach), so
	// this cannot flake into the waiter-takes-leadership path on a
	// slow scheduler.
	attachDeadline := time.Now().Add(2 * time.Second)
	for c.Stats().Waiters == 0 {
		if time.Now().After(attachDeadline) {
			t.Fatal("waiter never attached to the in-flight entry")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-leaderDone; !errors.Is(err, boom) {
		t.Fatalf("leader returned %v, want boom", err)
	}
	if err := <-waiterDone; !errors.Is(err, boom) {
		t.Fatalf("waiter returned %v, want the leader's genuine error", err)
	}
	// Not cached: the next call retries (and can succeed).
	v, hit, err := c.DoContext(context.Background(), key, func(context.Context) (any, error) {
		return "ok", nil
	})
	if err != nil || hit || v != "ok" {
		t.Fatalf("retry after genuine error = (%v, %v, %v), want (ok, false, nil)", v, hit, err)
	}
}
