package qcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"hummer/internal/fault"
	"hummer/internal/faultinject"
	"hummer/internal/testutil"
)

// TestDoContextConcurrentPanicsRace hammers a small key space with
// concurrent lookups whose computes deterministically panic part of
// the time, asserting the containment invariants under the race
// detector: every call returns (panicked leaders get an
// *InternalError, re-elected waiters eventually a value), the cache is
// never poisoned (a successful call always observes the computed
// value), and the stats stay monotone-consistent — exactly one event
// per resolved lookup.
func TestDoContextConcurrentPanicsRace(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	c := New(32)
	const (
		goroutines = 16
		iterations = 60
		keys       = 4
	)
	var computes atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				key := Key{Kind: KindMatch, Fingerprint: fmt.Sprint((g + i) % keys)}
				val, _, err := c.DoContext(context.Background(), key, func(context.Context) (any, error) {
					// Every third compute panics, deterministically by
					// global compute ordinal — enough collisions that
					// leaders panic with waiters attached.
					if computes.Add(1)%3 == 0 {
						panic("chaos compute")
					}
					return "v:" + key.Fingerprint, nil
				})
				if err != nil {
					var ie *fault.InternalError
					if !errors.As(err, &ie) {
						t.Errorf("err = %v (%T), want *InternalError or nil", err, err)
					}
					continue
				}
				if val != "v:"+key.Fingerprint {
					t.Errorf("key %s resolved to %v — cache poisoned", key.Fingerprint, val)
				}
				// A successful lookup leaves the value resident.
				if got, ok := c.Get(key); ok && got != "v:"+key.Fingerprint {
					t.Errorf("Get(%s) = %v after success — cache poisoned", key.Fingerprint, got)
				}
			}
		}(g)
	}
	wg.Wait()

	// Monotone-consistency: each of the goroutines*iterations lookups
	// resolved as exactly one of hit/miss/shared.
	st := c.Stats()
	var total uint64
	for _, ks := range st.Kinds {
		total += ks.Hits + ks.Misses + ks.Shared
	}
	if want := uint64(goroutines * iterations); total != want {
		t.Errorf("stats sum = %d, want exactly %d (one event per lookup)", total, want)
	}
	if st.Waiters != 0 {
		t.Errorf("Waiters = %d at rest, want 0", st.Waiters)
	}

	// Post-chaos: every key still computes and caches cleanly.
	for k := 0; k < keys; k++ {
		key := Key{Kind: KindMatch, Fingerprint: fmt.Sprint(k)}
		val, _, err := c.DoContext(context.Background(), key, func(context.Context) (any, error) {
			return "v:" + key.Fingerprint, nil
		})
		if err != nil || val != "v:"+key.Fingerprint {
			t.Errorf("post-chaos key %d = (%v, %v)", k, val, err)
		}
	}
}

// TestDoContextInjectedLeaderFaultsRace drives the qcache.leader.compute
// fault point concurrently: injected panics are contained and injected
// errors propagate like genuine ones, with the cache healthy after.
func TestDoContextInjectedLeaderFaultsRace(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	faultinject.Arm(&faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteQCacheLeader, Kind: faultinject.Panic, Every: 5},
		{Site: faultinject.SiteQCacheLeader, Kind: faultinject.Error, Every: 3},
	}})
	defer faultinject.Disarm()

	c := New(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				key := PlanKey(fmt.Sprint((g + i) % 3))
				val, _, err := c.DoContext(context.Background(), key, func(context.Context) (any, error) {
					return "plan:" + key.Fingerprint, nil
				})
				if err == nil && val != "plan:"+key.Fingerprint {
					t.Errorf("key %s = %v — poisoned by injected fault", key.Fingerprint, val)
				}
			}
		}(g)
	}
	wg.Wait()
	faultinject.Disarm()

	for k := 0; k < 3; k++ {
		key := PlanKey(fmt.Sprint(k))
		val, _, err := c.DoContext(context.Background(), key, func(context.Context) (any, error) {
			return "plan:" + key.Fingerprint, nil
		})
		if err != nil || val != "plan:"+key.Fingerprint {
			t.Errorf("post-injection key %d = (%v, %v)", k, val, err)
		}
	}
}

// FuzzDoContextFaultSchedule fuzzes the leader fault schedule: each
// input byte scripts one lookup's compute behavior (value, error or
// panic) over a small key space. Invariants under any schedule: a nil
// error implies the correct value (never another key's, never a
// panicked leader's), panics surface only as *InternalError, and every
// key still computes cleanly afterwards.
func FuzzDoContextFaultSchedule(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{2, 2, 2, 0})
	f.Add([]byte{1, 0, 2, 0, 1, 2})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 256 {
			t.Skip()
		}
		c := New(4)
		for i, b := range script {
			key := PlanKey(fmt.Sprint(b % 3))
			want := "v:" + key.Fingerprint
			val, _, err := c.DoContext(context.Background(), key, func(context.Context) (any, error) {
				switch (b >> 2) % 3 {
				case 1:
					return nil, fmt.Errorf("scripted error %d", i)
				case 2:
					panic(fmt.Sprintf("scripted panic %d", i))
				default:
					return want, nil
				}
			})
			if err == nil && val != want {
				t.Fatalf("step %d: key %s = %v, want %s", i, key.Fingerprint, val, want)
			}
			if err != nil {
				var ie *fault.InternalError
				if (b>>2)%3 == 2 && !errors.As(err, &ie) {
					t.Fatalf("step %d: panicked compute returned %T, want *InternalError", i, err)
				}
			}
		}
		// No schedule may leave a key wedged or poisoned.
		for k := 0; k < 3; k++ {
			key := PlanKey(fmt.Sprint(k))
			val, _, err := c.DoContext(context.Background(), key, func(context.Context) (any, error) {
				return "v:" + key.Fingerprint, nil
			})
			if err != nil || val != "v:"+key.Fingerprint {
				t.Fatalf("post-script key %d = (%v, %v)", k, val, err)
			}
		}
	})
}
