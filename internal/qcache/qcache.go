// Package qcache implements the versioned artifact cache behind
// hummerd's query serving: the expensive intermediates of the FUSE BY
// pipeline — DUMAS match results, duplicate-detection clusterings and
// parsed query plans — are keyed by content fingerprints so that
// repeated and overlapping queries skip recomputation entirely.
//
// # Keying and versioning
//
// Every artifact is addressed by a Key: a Kind (what phase produced
// it) plus a fingerprint string derived from the *content* of its
// inputs — the fingerprints of the participating relations and of the
// phase configuration. Versioning is therefore structural: when a
// source is replaced or its file re-loaded with different rows, its
// relation fingerprint changes, every key derived from it changes, and
// the stale entries simply stop being addressed (and age out of the
// LRU). No invalidation protocol is needed for correctness; Purge
// exists as an operator convenience.
//
// # Singleflight
//
// Concurrent lookups of the same key are deduplicated: the first
// caller computes, the rest block until the value is ready and share
// it (a thundering herd of identical queries computes each artifact
// once). Failed computations are not cached — the next caller retries.
//
// # Cancellation
//
// DoContext makes the singleflight cancellation-safe. A waiter whose
// context is cancelled stops waiting and returns its context error;
// the in-flight computation is unaffected. A *leader* whose context is
// cancelled mid-compute must not poison the waiters piggybacking on
// it: the abandoned entry is dropped and the waiters re-elect — the
// first waiter with a live context becomes the new leader and
// recomputes. Only genuine compute errors propagate to waiters.
//
// # Fault containment
//
// A leader whose compute panics can never poison the cache: the panic
// is recovered at the leader boundary, the entry is failed, marked
// abandoned (waiters re-elect exactly like the cancelled-leader path)
// and dropped, and the leader's call returns a *fault.InternalError.
// The panic degrades one lookup; the key stays computable and the
// process survives.
//
// Cached values are shared across goroutines and must be treated as
// immutable by all consumers.
package qcache

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"strings"
	"sync"

	"hummer/internal/fault"
	"hummer/internal/faultinject"
	"hummer/internal/relation"
)

// Kind labels what pipeline phase an artifact came from. Stats are
// reported per kind.
type Kind string

// The artifact kinds the pipeline caches.
const (
	// KindPlan is a parsed query plan, keyed by the statement text.
	KindPlan Kind = "plan"
	// KindMatch is a DUMAS schema-matching result, keyed by the two
	// relation fingerprints and the match configuration.
	KindMatch Kind = "match"
	// KindDetect is a duplicate-detection result, keyed by the merged
	// relation's fingerprint and the detection configuration.
	KindDetect Kind = "detect"
	// KindFused is a fused query result in slim form — the final
	// table, its lineage and the precomputed pipeline summary, no
	// intermediates (trace queries bypass this tier) — keyed by the
	// raw statement text, the source fingerprints in query order, and
	// the configuration fingerprint (match + detect knobs and the
	// resolution-registry version). A hit on this tier skips matching,
	// detection, merging and fusion entirely.
	KindFused Kind = "fused"
	// KindCSE is a materialized plain-SQL source subtree (the scans,
	// crosses, joins and WHERE filter below the projection) shared
	// across statements whose plans contain the same subtree — the
	// planner's cross-statement common-subexpression tier. Keyed by
	// the subtree fingerprint: the sources' content fingerprints
	// (child fingerprints), the operator shape (join columns,
	// predicate rendering) and a key-schema version tag. A hit serves
	// the already-materialized intermediate; concurrent statements
	// containing the same subtree share one scan/join/filter pass
	// through the singleflight.
	KindCSE Kind = "cse"
)

// Key addresses one artifact.
type Key struct {
	Kind        Kind
	Fingerprint string
}

// DefaultCapacity is the per-kind entry cap of a zero-configured
// cache: small enough to bound memory on an artifact-heavy workload,
// large enough that a realistic working set of queries stays
// resident. Each artifact kind owns its own budget, so cheap plans
// never evict expensive match/detect results.
const DefaultCapacity = 256

// KindStats counts one kind's cache traffic.
type KindStats struct {
	// Hits are lookups served from a completed entry.
	Hits uint64 `json:"hits"`
	// Misses are lookups that had to compute the artifact.
	Misses uint64 `json:"misses"`
	// Shared are lookups that piggybacked on an in-flight computation
	// (singleflight): they neither hit nor computed.
	Shared uint64 `json:"shared"`
	// Evictions are completed entries dropped to respect the cap.
	Evictions uint64 `json:"evictions"`
}

// Stats is a point-in-time snapshot of the cache.
type Stats struct {
	// Entries is the number of resident artifacts.
	Entries int `json:"entries"`
	// Capacity is the per-kind entry cap. Every kind — including
	// fused results, which are slim since trace became opt-in (final
	// table + lineage + summary, no pipeline intermediates) — runs on
	// the full budget.
	Capacity int `json:"capacity"`
	// Waiters is the number of callers currently blocked on in-flight
	// computations (a gauge, unlike the per-kind counters).
	Waiters int `json:"waiters"`
	// Kinds maps each artifact kind to its traffic counters. Every
	// counter is monotonic: a DoContext call contributes exactly one
	// increment — Hits, Misses or Shared — when it resolves.
	Kinds map[Kind]KindStats `json:"kinds"`
}

// HitRate returns the fraction of lookups served without computing
// (hits + shared over all lookups), 0 when nothing was looked up.
func (s Stats) HitRate() float64 {
	var served, total uint64
	for _, ks := range s.Kinds {
		served += ks.Hits + ks.Shared
		total += ks.Hits + ks.Shared + ks.Misses
	}
	if total == 0 {
		return 0
	}
	return float64(served) / float64(total)
}

// entry is one cache slot. ready is closed when val/err are final;
// until then the entry is "in flight" and exempt from eviction.
type entry struct {
	key   Key
	ready chan struct{}
	val   any
	err   error
	// abandoned marks an entry whose leader's context was cancelled
	// mid-compute: the failure says nothing about the artifact, so
	// waiters with live contexts re-elect instead of inheriting the
	// leader's cancellation error.
	abandoned bool
	// seq is the last-touch tick for LRU eviction.
	seq uint64
}

// Cache is the versioned artifact cache. The zero value is not usable;
// call New.
type Cache struct {
	mu      sync.Mutex
	cap     int
	tick    uint64
	waiters int
	entries map[Key]*entry
	stats   map[Kind]*KindStats
}

// New returns an empty cache holding at most capacity completed
// entries per artifact kind (DefaultCapacity when capacity <= 0).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		cap:     capacity,
		entries: make(map[Key]*entry),
		stats:   make(map[Kind]*KindStats),
	}
}

// Do returns the artifact for key, computing it with compute on a
// miss. It is DoContext with a background context: it never gives up
// waiting and its computations cannot be cancelled.
func (c *Cache) Do(key Key, compute func() (any, error)) (val any, hit bool, err error) {
	return c.DoContext(context.Background(), key, func(context.Context) (any, error) { return compute() })
}

// DoContext returns the artifact for key, computing it with compute on
// a miss. Concurrent calls for the same key run compute exactly once;
// the other callers block and share the outcome. hit reports whether
// this call avoided computing (a completed entry or a shared in-flight
// one). Errors are returned to every waiting caller but are not
// cached: the entry is removed so a later call retries.
//
// Cancellation: a waiter whose ctx is cancelled returns ctx's error
// immediately, leaving the in-flight computation undisturbed. A leader
// whose own ctx is cancelled mid-compute abandons the entry; waiters
// with live contexts then re-elect a new leader and recompute rather
// than inheriting a cancellation that was never theirs.
func (c *Cache) DoContext(ctx context.Context, key Key, compute func(ctx context.Context) (any, error)) (val any, hit bool, err error) {
	// Stats discipline: every counter is monotonic (the server exports
	// them as Prometheus counters), and a call contributes exactly one
	// increment — at resolution, not at attach. A waiter that re-elects
	// after an abandoned leader therefore counts only as the miss (or
	// hit) it finally resolves to; a waiter that gives up on its own
	// ctx still counts as Shared (it piggybacked, computed nothing).
	// The transient "blocked on an in-flight entry" state is the
	// Waiters gauge instead.
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		c.mu.Lock()
		ks := c.kindStatsLocked(key.Kind)
		if e, ok := c.entries[key]; ok {
			c.tick++
			e.seq = c.tick
			select {
			case <-e.ready:
				if e.err != nil {
					// A failed entry awaiting cleanup (the leader drops
					// it right after closing ready): treat it as absent
					// and take leadership instead of replaying a stale
					// failure.
					if cur, live := c.entries[key]; live && cur == e {
						delete(c.entries, key)
					}
					c.mu.Unlock()
					continue
				}
				ks.Hits++
				c.mu.Unlock()
				return e.val, true, nil
			default:
				c.waiters++
				c.mu.Unlock()
				var ctxErr error
				select {
				case <-e.ready:
				case <-ctx.Done():
					ctxErr = ctx.Err()
				}
				c.mu.Lock()
				c.waiters--
				// Only read e.abandoned when ready's close ordered the
				// leader's write before us (ctxErr == nil guarantees we
				// woke via <-e.ready); short-circuit keeps the racy
				// read from ever happening on the cancelled path.
				abandoned := ctxErr == nil && e.abandoned
				if !abandoned {
					ks.Shared++
				}
				c.mu.Unlock()
				if ctxErr != nil {
					return nil, false, ctxErr
				}
				if abandoned {
					continue // leader cancelled: re-elect
				}
				return e.val, true, e.err
			}
		}
		ks.Misses++
		c.tick++
		e := &entry{key: key, ready: make(chan struct{}), seq: c.tick}
		c.entries[key] = e
		c.mu.Unlock()
		return c.lead(ctx, key, e, compute)
	}
}

// lead runs compute as the entry's leader and publishes the outcome.
func (c *Cache) lead(ctx context.Context, key Key, e *entry, compute func(ctx context.Context) (any, error)) (val any, hit bool, err error) {
	// A compute that panics (e.g. a parser bug on hostile input) must
	// not wedge the key: waiters would block on ready forever and the
	// in-flight entry is exempt from eviction and Purge. The panic is
	// contained right here — the entry is failed, marked abandoned
	// (waiters re-elect exactly as after a cancelled leader) and
	// dropped so nothing is ever cached from a panicked compute, and
	// the leader's own call returns a *fault.InternalError instead of
	// crashing the process.
	published := false
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		ie := fault.NewInternal(faultinject.SiteQCacheLeader, r)
		if !published {
			e.err = ie
			e.abandoned = true
			close(e.ready)
		}
		c.dropFailedEntry(key, e)
		val, hit, err = nil, false, ie
	}()
	if injErr := faultinject.Hit(faultinject.SiteQCacheLeader); injErr != nil {
		e.err = injErr
	} else {
		e.val, e.err = compute(ctx)
	}
	if e.err != nil && ctx.Err() != nil &&
		(errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
		// The leader was cancelled, not the computation refuted:
		// waiters must re-elect, not inherit the cancellation. Both
		// conditions matter — a genuine, deterministic error that
		// merely races the leader's cancellation must propagate to
		// waiters instead of making each of them redundantly recompute
		// the same failure.
		e.abandoned = true
	}
	close(e.ready)
	published = true

	c.mu.Lock()
	if e.err != nil {
		c.mu.Unlock()
		c.dropFailedEntry(key, e)
	} else {
		c.evictLocked(key.Kind)
		c.mu.Unlock()
	}
	return e.val, false, e.err
}

// dropFailedEntry removes e so a later call retries — but only e
// itself: a Purge + recompute may have installed a fresh entry under
// the same key.
func (c *Cache) dropFailedEntry(key Key, e *entry) {
	c.mu.Lock()
	if cur, ok := c.entries[key]; ok && cur == e {
		delete(c.entries, key)
	}
	c.mu.Unlock()
}

// Get returns the completed artifact for key without computing.
func (c *Cache) Get(key Key) (any, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		select {
		case <-e.ready:
		default:
			ok = false // in flight: not observable yet
		}
	}
	if ok && e.err != nil {
		ok = false
	}
	if ok {
		c.tick++
		e.seq = c.tick
	}
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	return e.val, true
}

// evictLocked drops least-recently-used completed entries of the
// just-inserted kind until that kind fits its cap. Eviction is
// per-kind so a flood of cheap artifacts (256 distinct statements
// parse in microseconds) can never evict the expensive ones (a DUMAS
// match costs seconds) — each kind owns its own budget. In-flight
// entries are never evicted (their callers hold references).
func (c *Cache) evictLocked(kind Kind) {
	cap := c.cap
	for {
		count := 0
		var victim *entry
		for _, e := range c.entries {
			if e.key.Kind != kind {
				continue
			}
			count++
			select {
			case <-e.ready:
			default:
				continue // in flight
			}
			if victim == nil || e.seq < victim.seq {
				victim = e
			}
		}
		if count <= cap || victim == nil {
			return
		}
		delete(c.entries, victim.key)
		c.kindStatsLocked(victim.key.Kind).Evictions++
	}
}

// Purge drops every completed entry and returns how many were
// dropped. In-flight computations are left to finish and insert
// themselves.
func (c *Cache) Purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, e := range c.entries {
		select {
		case <-e.ready:
			delete(c.entries, k)
			n++
		default:
		}
	}
	return n
}

// Len returns the number of resident entries (including in-flight).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := Stats{
		Entries:  len(c.entries),
		Capacity: c.cap,
		Waiters:  c.waiters,
		Kinds:    make(map[Kind]KindStats, len(c.stats)),
	}
	for k, ks := range c.stats {
		out.Kinds[k] = *ks
	}
	return out
}

func (c *Cache) kindStatsLocked(k Kind) *KindStats {
	ks, ok := c.stats[k]
	if !ok {
		ks = &KindStats{}
		c.stats[k] = ks
	}
	return ks
}

// --- Fingerprints ---------------------------------------------------------

// FingerprintRelation hashes a relation's content: name-independent
// schema shape (column names and types, in order) plus every cell's
// kind and length-prefixed text, in order, through SHA-256. Two
// relations with equal schemas and equal rows in equal order
// fingerprint identically; any cell change, row reorder, or schema
// change produces a different fingerprint. The hash runs over the
// actual cell content — not over composed 64-bit value hashes — and
// is cryptographic, because clients of a serving DB control cell
// values: a forgeable fingerprint would let one relation silently
// adopt another's cached match/detect artifacts. Cost stays linear
// and far below the phases the fingerprint lets callers skip.
func FingerprintRelation(rel *relation.Relation) string {
	h := sha256.New()
	s := rel.Schema()
	var buf [8]byte
	writeStr := func(txt string) {
		putUint64(&buf, uint64(len(txt)))
		h.Write(buf[:])
		h.Write([]byte(txt))
	}
	for j := 0; j < s.Len(); j++ {
		col := s.Col(j)
		writeStr(col.Name)
		h.Write([]byte{byte(col.Type)})
	}
	h.Write([]byte{0xff})
	for i := 0; i < rel.Len(); i++ {
		for _, v := range rel.Row(i) {
			if v.IsNull() {
				h.Write([]byte{0})
				continue
			}
			h.Write([]byte{1, byte(v.Kind())})
			writeStr(v.Text())
		}
	}
	return fmt.Sprintf("rel:%x/%dx%d", h.Sum(nil)[:16], rel.Len(), s.Len())
}

// FingerprintConfig renders any flat configuration struct into a
// deterministic fingerprint component via %#v (field names and values
// in declaration order). The rendering is used verbatim — configs are
// short and operator-controlled, so exactness beats hashing.
func FingerprintConfig(cfg any) string {
	return fmt.Sprintf("cfg:%#v", cfg)
}

// MatchKey builds the cache key of a DUMAS match artifact from the
// two relation fingerprints and the match configuration.
func MatchKey(leftFP, rightFP string, cfg any) Key {
	return Key{Kind: KindMatch, Fingerprint: leftFP + "|" + rightFP + "|" + FingerprintConfig(cfg)}
}

// DetectKey builds the cache key of a duplicate-detection artifact
// from the input relation's fingerprint and the detection
// configuration.
func DetectKey(relFP string, cfg any) Key {
	return Key{Kind: KindDetect, Fingerprint: relFP + "|" + FingerprintConfig(cfg)}
}

// PlanKey builds the cache key of a parsed statement. The statement
// text itself is the fingerprint: it is short, already in hand, and —
// unlike a hash — cannot collide, which matters because hummerd
// accepts arbitrary statements from clients.
func PlanKey(query string) Key {
	return Key{Kind: KindPlan, Fingerprint: query}
}

// FusedKey builds the cache key of a complete fused query result. The
// plan fingerprint is the raw statement text — collision-free for the
// same reason PlanKey's is: hummerd accepts arbitrary statements, and
// any lossy rendering risks two statements sharing an entry. The
// source fingerprints cover the participating relations in query
// order, and the config fingerprint covers every knob that can change
// the output (match + detect configuration and the resolution-
// registry version). Each component is length-prefixed so no
// concatenation of one key's parts can collide with another's.
func FusedKey(planFP string, sourceFPs []string, cfgFP string) Key {
	var b strings.Builder
	writePart := func(p string) {
		fmt.Fprintf(&b, "%d:%s|", len(p), p)
	}
	writePart(planFP)
	for _, fp := range sourceFPs {
		writePart(fp)
	}
	writePart(cfgFP)
	return Key{Kind: KindFused, Fingerprint: b.String()}
}

// CSEKey builds the cache key of a materialized plain-SQL source
// subtree from its rendered shape parts, bottom-up: scan parts carry
// the sources' content fingerprints, join parts their build-side
// fingerprint and column pair, the where part the predicate
// rendering. Each part is length-prefixed, like FusedKey's, so no
// concatenation of one subtree's parts can collide with another's.
func CSEKey(parts ...string) Key {
	var b strings.Builder
	for _, p := range parts {
		fmt.Fprintf(&b, "%d:%s|", len(p), p)
	}
	return Key{Kind: KindCSE, Fingerprint: b.String()}
}

func putUint64(buf *[8]byte, v uint64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
}
