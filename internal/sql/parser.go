package sql

import (
	"fmt"
	"strconv"
	"strings"

	"hummer/internal/expr"
	"hummer/internal/value"
)

// Parse parses one SELECT / FUSE BY statement.
func Parse(input string) (*Stmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF, "") {
		return nil, p.errorf("unexpected trailing input %q", p.cur().Text)
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

// at reports whether the current token has the given kind and,
// when text is non-empty, the given text.
func (p *parser) at(kind TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.advance(), nil
	}
	want := text
	if want == "" {
		want = kind.String()
	}
	return Token{}, p.errorf("expected %s, found %q", want, p.cur().Text)
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: offset %d: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

// aggNames are the plain SQL aggregates the select list recognizes.
var aggNames = map[string]bool{"count": true, "sum": true, "avg": true, "min": true, "max": true}

func (p *parser) parseStmt() (*Stmt, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &Stmt{Limit: -1}
	stmt.Distinct = p.accept(TokKeyword, "DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}

	// FROM or FUSE FROM.
	switch {
	case p.accept(TokKeyword, "FROM"):
	case p.at(TokKeyword, "FUSE") && p.peek().Kind == TokKeyword && p.peek().Text == "FROM":
		p.advance()
		p.advance()
		stmt.FuseFrom = true
	default:
		return nil, p.errorf("expected FROM or FUSE FROM, found %q", p.cur().Text)
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.Tables = append(stmt.Tables, ref)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	for p.accept(TokKeyword, "JOIN") {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "ON"); err != nil {
			return nil, err
		}
		left, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "="); err != nil {
			return nil, err
		}
		right, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: ref, LeftCol: left, RightCol: right})
	}

	if p.accept(TokKeyword, "WHERE") {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		stmt.Where = pred
	}

	// FUSE BY (col, ...).
	if p.at(TokKeyword, "FUSE") {
		p.advance()
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			stmt.FuseBy = append(stmt.FuseBy, col)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
	}

	if p.at(TokKeyword, "GROUP") {
		p.advance()
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, col)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}

	if p.accept(TokKeyword, "HAVING") {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		stmt.Having = pred
	}

	if p.at(TokKeyword, "ORDER") {
		p.advance()
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Col: col}
			if p.accept(TokKeyword, "DESC") {
				key.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, key)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}

	if p.accept(TokKeyword, "LIMIT") {
		t, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT %q", t.Text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(TokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	if p.at(TokKeyword, "RESOLVE") {
		return p.parseResolveItem()
	}
	// Aggregate call?
	if p.cur().Kind == TokIdent && aggNames[strings.ToLower(p.cur().Text)] &&
		p.peek().Kind == TokSymbol && p.peek().Text == "(" {
		agg := strings.ToLower(p.advance().Text)
		p.advance() // (
		var col string
		if p.accept(TokSymbol, "*") {
			col = "*"
		} else {
			c, err := p.parseColRef()
			if err != nil {
				return SelectItem{}, err
			}
			col = c
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return SelectItem{}, err
		}
		item := SelectItem{Col: col, Agg: agg}
		alias, err := p.parseAlias()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
		return item, nil
	}
	e, err := p.parseOperand()
	if err != nil {
		return SelectItem{}, err
	}
	var item SelectItem
	if col, ok := e.(*expr.Col); ok {
		item = SelectItem{Col: col.Name}
	} else {
		item = SelectItem{Expr: e}
	}
	alias, err := p.parseAlias()
	if err != nil {
		return SelectItem{}, err
	}
	item.Alias = alias
	return item, nil
}

func (p *parser) parseResolveItem() (SelectItem, error) {
	p.advance() // RESOLVE
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return SelectItem{}, err
	}
	col, err := p.parseColRef()
	if err != nil {
		return SelectItem{}, err
	}
	spec := &ResolveSpec{}
	if p.accept(TokSymbol, ",") {
		// function name; keywords like MIN/MAX are plain idents here.
		t := p.cur()
		if t.Kind != TokIdent && t.Kind != TokKeyword {
			return SelectItem{}, p.errorf("expected resolution function name, found %q", t.Text)
		}
		p.advance()
		spec.Func = strings.ToLower(t.Text)
		// Optional argument: fn('literal') or fn(ident) or fn(number).
		if p.accept(TokSymbol, "(") {
			arg := p.cur()
			switch arg.Kind {
			case TokString, TokIdent, TokNumber:
				p.advance()
				spec.Arg = arg.Text
			case TokKeyword:
				p.advance()
				spec.Arg = strings.ToLower(arg.Text)
			default:
				return SelectItem{}, p.errorf("expected function argument, found %q", arg.Text)
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return SelectItem{}, err
			}
		}
	}
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Col: col, Resolve: spec}
	alias, err := p.parseAlias()
	if err != nil {
		return SelectItem{}, err
	}
	item.Alias = alias
	return item, nil
}

func (p *parser) parseAlias() (string, error) {
	if p.accept(TokKeyword, "AS") {
		t, err := p.expect(TokIdent, "")
		if err != nil {
			return "", err
		}
		return t.Text, nil
	}
	return "", nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: t.Text}
	if p.accept(TokKeyword, "AS") {
		a, err := p.expect(TokIdent, "")
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a.Text
	} else if p.cur().Kind == TokIdent {
		ref.Alias = p.advance().Text
	}
	return ref, nil
}

// parseColRef parses ident or ident.ident (qualified), returning the
// textual reference.
func (p *parser) parseColRef() (string, error) {
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return "", err
	}
	name := t.Text
	if p.accept(TokSymbol, ".") {
		t2, err := p.expect(TokIdent, "")
		if err != nil {
			return "", err
		}
		name = name + "." + t2.Text
	}
	return name, nil
}

// --- Predicates ----------------------------------------------------------

func (p *parser) parsePredicate() (expr.Expr, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (expr.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = expr.NewOr(left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = expr.NewAnd(left, right)
	}
	return left, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return expr.NewNot(inner), nil
	}
	return p.parseComparison()
}

// parseComparison parses operand [cmp operand | IS [NOT] NULL |
// [NOT] LIKE 'pat' | [NOT] IN (...)] or a parenthesized predicate.
func (p *parser) parseComparison() (expr.Expr, error) {
	// A '(' here could open a nested predicate or an arithmetic
	// grouping; we try the predicate first and fall back.
	if p.at(TokSymbol, "(") {
		save := p.pos
		p.advance()
		pred, err := p.parsePredicate()
		if err == nil {
			if _, err2 := p.expect(TokSymbol, ")"); err2 == nil {
				// Parenthesized predicate only if neither a comparison
				// nor arithmetic follows (otherwise it was a grouping
				// inside an operand).
				if !p.atCmpOp() && !p.atArithOp() {
					return pred, nil
				}
			}
		}
		p.pos = save
	}
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.accept(TokKeyword, "IS") {
		neg := p.accept(TokKeyword, "NOT")
		if _, err := p.expect(TokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return expr.NewIsNull(left, neg), nil
	}
	// [NOT] LIKE / IN
	neg := false
	if p.at(TokKeyword, "NOT") && p.peek().Kind == TokKeyword &&
		(p.peek().Text == "LIKE" || p.peek().Text == "IN") {
		p.advance()
		neg = true
	}
	if p.accept(TokKeyword, "LIKE") {
		t, err := p.expect(TokString, "")
		if err != nil {
			return nil, err
		}
		return expr.NewLike(left, t.Text, neg), nil
	}
	if p.accept(TokKeyword, "IN") {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var list []value.Value
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			list = append(list, v)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return expr.NewIn(left, list, neg), nil
	}
	// Comparison operator.
	if op, ok := p.cmpOp(); ok {
		right, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return expr.NewCmp(op, left, right), nil
	}
	return left, nil
}

func (p *parser) atArithOp() bool {
	if p.cur().Kind != TokSymbol {
		return false
	}
	switch p.cur().Text {
	case "+", "-", "*", "/":
		return true
	}
	return false
}

func (p *parser) atCmpOp() bool {
	if p.cur().Kind != TokSymbol {
		return false
	}
	switch p.cur().Text {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *parser) cmpOp() (expr.CmpOp, bool) {
	if p.cur().Kind != TokSymbol {
		return 0, false
	}
	var op expr.CmpOp
	switch p.cur().Text {
	case "=":
		op = expr.EQ
	case "<>":
		op = expr.NE
	case "<":
		op = expr.LT
	case "<=":
		op = expr.LE
	case ">":
		op = expr.GT
	case ">=":
		op = expr.GE
	default:
		return 0, false
	}
	p.advance()
	return op, true
}

// parseOperand parses additive arithmetic.
func (p *parser) parseOperand() (expr.Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.ArithOp
		switch {
		case p.at(TokSymbol, "+"):
			op = expr.Add
		case p.at(TokSymbol, "-"):
			op = expr.Sub
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = expr.NewArith(op, left, right)
	}
}

func (p *parser) parseTerm() (expr.Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.ArithOp
		switch {
		case p.at(TokSymbol, "*"):
			op = expr.Mul
		case p.at(TokSymbol, "/"):
			op = expr.Div
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = expr.NewArith(op, left, right)
	}
}

func (p *parser) parseFactor() (expr.Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber, t.Kind == TokString,
		t.Kind == TokKeyword && (t.Text == "NULL" || t.Text == "TRUE" || t.Text == "FALSE"):
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return expr.NewLit(v), nil
	case t.Kind == TokSymbol && t.Text == "-":
		p.advance()
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return expr.NewArith(expr.Sub, expr.NewLit(value.NewInt(0)), inner), nil
	case t.Kind == TokSymbol && t.Text == "(":
		p.advance()
		inner, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	case t.Kind == TokIdent:
		name, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		return expr.NewCol(name), nil
	default:
		return nil, p.errorf("expected operand, found %q", t.Text)
	}
}

func (p *parser) parseLiteral() (value.Value, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.advance()
		if i, err := strconv.ParseInt(t.Text, 10, 64); err == nil {
			return value.NewInt(i), nil
		}
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return value.Null, p.errorf("invalid number %q", t.Text)
		}
		return value.NewFloat(f), nil
	case TokString:
		p.advance()
		return value.NewString(t.Text), nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.advance()
			return value.Null, nil
		case "TRUE":
			p.advance()
			return value.NewBool(true), nil
		case "FALSE":
			p.advance()
			return value.NewBool(false), nil
		}
	}
	return value.Null, p.errorf("expected literal, found %q", t.Text)
}
