package sql

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary statements through the lexer and parser:
// any input may be rejected with an error, but none may panic or hang,
// and accepted statements must come back non-nil with a table list.
// Runs as a plain regression test over the seed corpus in CI;
// `go test -fuzz=FuzzParse ./internal/sql` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT * FROM t WHERE a = 1 ORDER BY a DESC LIMIT 3",
		"SELECT Name, RESOLVE(Age, max) FUSE FROM ee, cs FUSE BY (Name)",
		"SELECT Name, RESOLVE(Price, choose, 'shopB') FUSE FROM a, b FUSE BY (Title) ON CONFLICT RESOLVE(Year, vote)",
		"SELECT a AS x FROM t GROUP BY a HAVING count(*) > 1",
		"SELECT a FROM t WHERE NOT (a < 3 AND b >= 'x') OR c <> 1.5",
		"SELECT sum(a + b * 2) FROM t JOIN u ON t.id = u.id",
		"select lower_case from t where s like 'a%'",
		"",
		"SELECT",
		"FUSE FROM",
		"SELECT a FROM t WHERE a = 'unterminated",
		"SELECT (((((a))))) FROM t",
		"SELECT a FROM t WHERE a IN (1, 2, 3)",
		"SELECT \"quoted col\" FROM \"quoted table\"",
		"🙂 SELECT 🙂 FROM 🙂",
		"SELECT a -- comment\nFROM t",
		"SELECT a FROM t;",
		strings.Repeat("(", 100) + "a" + strings.Repeat(")", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse(%q) panicked: %v", input, r)
			}
		}()
		stmt, err := Parse(input)
		if err == nil && stmt == nil {
			t.Fatalf("Parse(%q) returned nil statement without error", input)
		}
		if err == nil && len(stmt.Tables) == 0 {
			t.Fatalf("Parse(%q) accepted a statement with no tables", input)
		}
	})
}
