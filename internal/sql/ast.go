package sql

import (
	"fmt"
	"strings"

	"hummer/internal/expr"
)

// ResolveSpec is a RESOLVE(col, function) clause: the conflict-
// resolution function name plus its optional argument, e.g.
// RESOLVE(Price, choose('shopB')) or RESOLVE(Age, max).
type ResolveSpec struct {
	Func string
	Arg  string
}

// SelectItem is one entry of the SELECT list.
type SelectItem struct {
	// Star marks the * wildcard ("replaced by all attributes present
	// in the sources", paper §2.1).
	Star bool
	// Col is the column reference (empty for Star).
	Col string
	// Expr is a computed scalar expression (e.g. Price * 2); nil for
	// plain column references. Only valid in plain SELECT statements.
	Expr expr.Expr
	// Resolve carries the conflict-resolution function when the item
	// is a RESOLVE(...) clause.
	Resolve *ResolveSpec
	// Agg names a plain SQL aggregate (count/sum/min/max/avg) when
	// the item is agg(col) in a GROUP BY query. Col holds the
	// argument, "*" for count(*).
	Agg string
	// Alias is the output name (AS alias), empty for the default.
	Alias string
}

// OutName returns the output column name of the item.
func (it SelectItem) OutName() string {
	if it.Alias != "" {
		return it.Alias
	}
	if it.Agg != "" {
		return strings.ToLower(it.Agg) + "_" + strings.ToLower(strings.TrimPrefix(it.Col, "*"))
	}
	if it.Expr != nil {
		return it.Expr.String()
	}
	return it.Col
}

// TableRef names one input table (a metadata-repository alias).
type TableRef struct {
	Name  string
	Alias string
}

// OrderKey is one ORDER BY term.
type OrderKey struct {
	Col  string
	Desc bool
}

// JoinClause is an explicit JOIN ... ON a = b between two FROM tables.
type JoinClause struct {
	Table    TableRef
	LeftCol  string
	RightCol string
}

// Stmt is a parsed SELECT or FUSE BY statement.
type Stmt struct {
	// Items is the select list.
	Items []SelectItem
	// Distinct marks SELECT DISTINCT.
	Distinct bool
	// Tables are the FROM / FUSE FROM inputs.
	Tables []TableRef
	// Joins are explicit JOIN clauses following the first table.
	Joins []JoinClause
	// FuseFrom is true for FUSE FROM (outer union instead of cross
	// product, paper §2.1).
	FuseFrom bool
	// Where is the predicate, nil when absent.
	Where expr.Expr
	// FuseBy lists the object-identifier attributes; non-empty only
	// for Fuse By statements.
	FuseBy []string
	// GroupBy lists plain SQL grouping attributes.
	GroupBy []string
	// Having is the post-grouping predicate, nil when absent.
	Having expr.Expr
	// OrderBy lists sort keys.
	OrderBy []OrderKey
	// Limit caps the result; negative means no limit.
	Limit int
}

// IsFusion reports whether the statement uses the Fuse By extension.
func (s *Stmt) IsFusion() bool { return s.FuseFrom || len(s.FuseBy) > 0 }

// Clone deep-copies the statement, including its expression trees.
// Executing a statement mutates it (expr.Bind resolves column
// positions in place), so a parse result shared between executions —
// the plan cache — must hand each execution its own clone.
func (s *Stmt) Clone() *Stmt {
	c := *s
	c.Items = append([]SelectItem(nil), s.Items...)
	for i := range c.Items {
		if c.Items[i].Expr != nil {
			c.Items[i].Expr = c.Items[i].Expr.Clone()
		}
		if c.Items[i].Resolve != nil {
			r := *c.Items[i].Resolve
			c.Items[i].Resolve = &r
		}
	}
	c.Tables = append([]TableRef(nil), s.Tables...)
	c.Joins = append([]JoinClause(nil), s.Joins...)
	c.Where = expr.CloneExpr(s.Where)
	c.FuseBy = append([]string(nil), s.FuseBy...)
	c.GroupBy = append([]string(nil), s.GroupBy...)
	c.Having = expr.CloneExpr(s.Having)
	c.OrderBy = append([]OrderKey(nil), s.OrderBy...)
	return &c
}

// String renders the statement back to SQL (normalized).
func (s *Stmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star:
			b.WriteString("*")
		case it.Resolve != nil:
			fmt.Fprintf(&b, "RESOLVE(%s", it.Col)
			if it.Resolve.Func != "" {
				fmt.Fprintf(&b, ", %s", it.Resolve.Func)
				if it.Resolve.Arg != "" {
					fmt.Fprintf(&b, "('%s')", it.Resolve.Arg)
				}
			}
			b.WriteString(")")
		case it.Agg != "":
			fmt.Fprintf(&b, "%s(%s)", it.Agg, it.Col)
		case it.Expr != nil:
			b.WriteString(it.Expr.String())
		default:
			b.WriteString(it.Col)
		}
		if it.Alias != "" {
			fmt.Fprintf(&b, " AS %s", it.Alias)
		}
	}
	if s.FuseFrom {
		b.WriteString(" FUSE FROM ")
	} else {
		b.WriteString(" FROM ")
	}
	for i, t := range s.Tables {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Name)
		if t.Alias != "" {
			fmt.Fprintf(&b, " AS %s", t.Alias)
		}
	}
	for _, j := range s.Joins {
		fmt.Fprintf(&b, " JOIN %s ON %s = %s", j.Table.Name, j.LeftCol, j.RightCol)
	}
	if s.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", s.Where)
	}
	if len(s.FuseBy) > 0 {
		fmt.Fprintf(&b, " FUSE BY (%s)", strings.Join(s.FuseBy, ", "))
	}
	if len(s.GroupBy) > 0 {
		fmt.Fprintf(&b, " GROUP BY %s", strings.Join(s.GroupBy, ", "))
	}
	if s.Having != nil {
		fmt.Fprintf(&b, " HAVING %s", s.Having)
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, k := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(k.Col)
			if k.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}
