// Package sql implements HumMer's query language: the subset of SQL
// the paper describes (select-project-join with sorting, grouping and
// aggregation) plus the FUSE BY extension of Fig. 1:
//
//	SELECT  colref | RESOLVE(colref [, function[(arg)]]) | *  [, ...]
//	FUSE FROM  tableref [, tableref ...]        -- outer union
//	[WHERE predicate]
//	FUSE BY (colref [, colref ...])
//	[HAVING predicate] [ORDER BY colref [ASC|DESC], ...] [LIMIT n]
//
// Plain FROM gives ordinary SQL semantics (cross product + WHERE).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer output.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokSymbol
)

func (k TokenKind) String() string {
	return [...]string{"EOF", "identifier", "keyword", "number", "string", "symbol"}[k]
}

// Token is one lexical unit.
type Token struct {
	Kind TokenKind
	// Text is the raw token text; keywords are upper-cased.
	Text string
	// Pos is the byte offset in the input, for error messages.
	Pos int
}

// keywords recognized by the lexer (case-insensitive in input).
var keywords = map[string]bool{
	"SELECT": true, "RESOLVE": true, "FUSE": true, "FROM": true,
	"BY": true, "WHERE": true, "GROUP": true, "HAVING": true,
	"ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"AND": true, "OR": true, "NOT": true, "IS": true, "NULL": true,
	"LIKE": true, "IN": true, "AS": true, "ON": true, "JOIN": true,
	"TRUE": true, "FALSE": true, "DISTINCT": true,
}

// Lex tokenizes a query string. It returns an error for unterminated
// strings or illegal characters.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'': // string literal, '' escapes a quote
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string at offset %d", start)
			}
			toks = append(toks, Token{Kind: TokString, Text: b.String(), Pos: start})
		case c >= '0' && c <= '9':
			start := i
			for i < n && (input[i] >= '0' && input[i] <= '9' || input[i] == '.') {
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n {
				r := rune(input[i])
				if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
					i++
				} else {
					break
				}
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		case c == '"': // quoted identifier
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if input[i] == '"' {
					i++
					closed = true
					break
				}
				b.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
			}
			toks = append(toks, Token{Kind: TokIdent, Text: b.String(), Pos: start})
		case strings.ContainsRune("(),*=.", c):
			toks = append(toks, Token{Kind: TokSymbol, Text: string(c), Pos: i})
			i++
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, Token{Kind: TokSymbol, Text: input[i : i+2], Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokSymbol, Text: "<", Pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TokSymbol, Text: ">=", Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokSymbol, Text: ">", Pos: i})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TokSymbol, Text: "<>", Pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected '!' at offset %d", i)
			}
		case c == '+' || c == '-' || c == '/':
			toks = append(toks, Token{Kind: TokSymbol, Text: string(c), Pos: i})
			i++
		default:
			return nil, fmt.Errorf("sql: illegal character %q at offset %d", c, i)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}
