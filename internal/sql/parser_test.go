package sql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, q string) *Stmt {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return stmt
}

func TestParsePaperExample(t *testing.T) {
	// The exact statement from §2.1 of the paper.
	stmt := mustParse(t, `
		SELECT Name, RESOLVE(Age, max)
		FUSE FROM EE_Student, CS_Students
		FUSE BY (Name)`)
	if !stmt.FuseFrom {
		t.Error("FUSE FROM not recognized")
	}
	if len(stmt.Tables) != 2 || stmt.Tables[0].Name != "EE_Student" || stmt.Tables[1].Name != "CS_Students" {
		t.Errorf("tables = %v", stmt.Tables)
	}
	if len(stmt.FuseBy) != 1 || stmt.FuseBy[0] != "Name" {
		t.Errorf("FuseBy = %v", stmt.FuseBy)
	}
	if len(stmt.Items) != 2 {
		t.Fatalf("items = %v", stmt.Items)
	}
	if stmt.Items[0].Col != "Name" || stmt.Items[0].Resolve != nil {
		t.Errorf("item 0 = %+v", stmt.Items[0])
	}
	it := stmt.Items[1]
	if it.Col != "Age" || it.Resolve == nil || it.Resolve.Func != "max" {
		t.Errorf("item 1 = %+v, resolve = %+v", it, it.Resolve)
	}
	if !stmt.IsFusion() {
		t.Error("IsFusion must be true")
	}
}

func TestParseStarDefault(t *testing.T) {
	stmt := mustParse(t, "SELECT * FUSE FROM a, b FUSE BY (id)")
	if len(stmt.Items) != 1 || !stmt.Items[0].Star {
		t.Errorf("items = %v", stmt.Items)
	}
}

func TestParseResolveVariants(t *testing.T) {
	// RESOLVE(col) without function — default resolution.
	stmt := mustParse(t, "SELECT RESOLVE(City) FUSE FROM a FUSE BY (id)")
	if stmt.Items[0].Resolve == nil || stmt.Items[0].Resolve.Func != "" {
		t.Errorf("RESOLVE(col) = %+v", stmt.Items[0].Resolve)
	}
	// RESOLVE(col, fn(arg)) with string argument.
	stmt = mustParse(t, "SELECT RESOLVE(Price, choose('shopB')) FUSE FROM a FUSE BY (id)")
	r := stmt.Items[0].Resolve
	if r.Func != "choose" || r.Arg != "shopB" {
		t.Errorf("resolve = %+v", r)
	}
	// RESOLVE(col, fn(ident)) with column argument (MostRecent).
	stmt = mustParse(t, "SELECT RESOLVE(Price, mostrecent(updated)) FUSE FROM a FUSE BY (id)")
	r = stmt.Items[0].Resolve
	if r.Func != "mostrecent" || r.Arg != "updated" {
		t.Errorf("resolve = %+v", r)
	}
}

func TestParseAliases(t *testing.T) {
	stmt := mustParse(t, "SELECT Name AS who, RESOLVE(Age, max) AS oldest FROM t")
	if stmt.Items[0].Alias != "who" || stmt.Items[1].Alias != "oldest" {
		t.Errorf("aliases = %q, %q", stmt.Items[0].Alias, stmt.Items[1].Alias)
	}
	if stmt.Items[0].OutName() != "who" {
		t.Errorf("OutName = %q", stmt.Items[0].OutName())
	}
}

func TestParseWhereHavingOrderLimit(t *testing.T) {
	stmt := mustParse(t, `
		SELECT Name, RESOLVE(Age)
		FUSE FROM s1, s2
		WHERE Age > 18 AND City LIKE 'Ber%'
		FUSE BY (Name)
		HAVING Age < 99
		ORDER BY Name DESC, Age
		LIMIT 10`)
	if stmt.Where == nil || stmt.Having == nil {
		t.Fatal("where/having missing")
	}
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Errorf("order = %v", stmt.OrderBy)
	}
	if stmt.Limit != 10 {
		t.Errorf("limit = %d", stmt.Limit)
	}
	want := "(Age > 18 AND City LIKE 'Ber%')"
	if got := stmt.Where.String(); got != want {
		t.Errorf("where = %q, want %q", got, want)
	}
}

func TestParsePlainSQL(t *testing.T) {
	stmt := mustParse(t, "SELECT City, count(*) AS n FROM people WHERE Age IS NOT NULL GROUP BY City ORDER BY n DESC")
	if stmt.IsFusion() {
		t.Error("plain SQL must not be fusion")
	}
	if stmt.Items[1].Agg != "count" || stmt.Items[1].Col != "*" {
		t.Errorf("agg item = %+v", stmt.Items[1])
	}
	if len(stmt.GroupBy) != 1 || stmt.GroupBy[0] != "City" {
		t.Errorf("group by = %v", stmt.GroupBy)
	}
}

func TestParseJoin(t *testing.T) {
	stmt := mustParse(t, "SELECT name FROM orders JOIN custs ON cust = name WHERE qty > 1")
	if len(stmt.Joins) != 1 {
		t.Fatalf("joins = %v", stmt.Joins)
	}
	j := stmt.Joins[0]
	if j.Table.Name != "custs" || j.LeftCol != "cust" || j.RightCol != "name" {
		t.Errorf("join = %+v", j)
	}
}

func TestParseDistinct(t *testing.T) {
	stmt := mustParse(t, "SELECT DISTINCT City FROM people")
	if !stmt.Distinct {
		t.Error("DISTINCT not recognized")
	}
}

func TestParsePredicateForms(t *testing.T) {
	queries := []string{
		"SELECT a FROM t WHERE a = 1",
		"SELECT a FROM t WHERE a <> 'x'",
		"SELECT a FROM t WHERE a <= 1.5 OR b >= 2",
		"SELECT a FROM t WHERE NOT (a = 1)",
		"SELECT a FROM t WHERE a IS NULL",
		"SELECT a FROM t WHERE a IS NOT NULL",
		"SELECT a FROM t WHERE a LIKE '%x%'",
		"SELECT a FROM t WHERE a NOT LIKE 'y_'",
		"SELECT a FROM t WHERE a IN (1, 2, 3)",
		"SELECT a FROM t WHERE a NOT IN ('p', 'q')",
		"SELECT a FROM t WHERE a + b * 2 > c - 1",
		"SELECT a FROM t WHERE (a = 1 AND b = 2) OR c = 3",
		"SELECT a FROM t WHERE (a + 1) * 2 = 4",
		"SELECT a FROM t WHERE a = -5",
		"SELECT a FROM t WHERE a = TRUE AND b = FALSE",
		"SELECT a FROM t WHERE a = NULL",
	}
	for _, q := range queries {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v", q, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	queries := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t LIMIT",
		"SELECT RESOLVE FROM t",
		"SELECT RESOLVE( FROM t",
		"SELECT RESOLVE(a FROM t",
		"SELECT a FROM t FUSE BY a",      // missing parens
		"SELECT a FROM t FUSE BY (a",     // unclosed
		"SELECT a FROM t WHERE a LIKE b", // LIKE needs a string
		"SELECT a FROM t trailing junk ,",
		"SELECT a FROM t WHERE a IN ()",
		"SELECT a FROM t JOIN x ON a",
		"SELECT a FROM t WHERE 'unterminated",
	}
	for _, q := range queries {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestParseQuotedIdentifier(t *testing.T) {
	stmt := mustParse(t, `SELECT "Full Name" FROM t`)
	if stmt.Items[0].Col != "Full Name" {
		t.Errorf("quoted ident = %q", stmt.Items[0].Col)
	}
}

func TestParseStringEscapes(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE a = 'it''s'`)
	if !strings.Contains(stmt.Where.String(), "it''s") {
		t.Errorf("where = %s", stmt.Where)
	}
}

func TestStringRoundTrip(t *testing.T) {
	// Parse → String → Parse must be stable.
	queries := []string{
		"SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)",
		"SELECT * FROM t WHERE a > 1 ORDER BY a LIMIT 5",
		"SELECT RESOLVE(Price, choose('shopB')) AS p FUSE FROM a, b FUSE BY (id)",
		"SELECT City, count(*) FROM t GROUP BY City HAVING City <> 'x'",
	}
	for _, q := range queries {
		s1 := mustParse(t, q)
		s2 := mustParse(t, s1.String())
		if s1.String() != s2.String() {
			t.Errorf("round trip diverged:\n  %s\n  %s", s1, s2)
		}
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := Lex("SELECT a, b FROM t WHERE x <= 1.5")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokKeyword, TokIdent, TokSymbol, TokIdent, TokKeyword,
		TokIdent, TokKeyword, TokIdent, TokSymbol, TokNumber, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, in := range []string{"'unterminated", `"unterminated`, "a ; b", "a ! b"} {
		if _, err := Lex(in); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", in)
		}
	}
}

func TestLexerBangEquals(t *testing.T) {
	toks, err := Lex("a != b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Text != "<>" {
		t.Errorf("!= must normalize to <>, got %q", toks[1].Text)
	}
}

// TestFig1GrammarCoverage exercises every production of the paper's
// Fig. 1 syntax diagram (experiment E1).
func TestFig1GrammarCoverage(t *testing.T) {
	productions := map[string]string{
		"bare colref":              "SELECT Name FUSE FROM a FUSE BY (Name)",
		"resolve without function": "SELECT RESOLVE(Age) FUSE FROM a FUSE BY (Name)",
		"resolve with function":    "SELECT RESOLVE(Age, max) FUSE FROM a FUSE BY (Name)",
		"star":                     "SELECT * FUSE FROM a FUSE BY (Name)",
		"mixed select list":        "SELECT Name, RESOLVE(Age, max), * FUSE FROM a FUSE BY (Name)",
		"multiple tables":          "SELECT * FUSE FROM a, b, c FUSE BY (Name)",
		"where clause":             "SELECT * FUSE FROM a, b WHERE Age > 1 FUSE BY (Name)",
		"multi-attribute fuse by":  "SELECT * FUSE FROM a, b FUSE BY (Name, City)",
		"having keeps meaning":     "SELECT * FUSE FROM a FUSE BY (Name) HAVING Age > 1",
		"order by keeps meaning":   "SELECT * FUSE FROM a FUSE BY (Name) ORDER BY Name",
	}
	for label, q := range productions {
		stmt, err := Parse(q)
		if err != nil {
			t.Errorf("%s: %v", label, err)
			continue
		}
		if !stmt.IsFusion() {
			t.Errorf("%s: not recognized as fusion statement", label)
		}
	}
}

func TestParseExpressionSelectItems(t *testing.T) {
	stmt := mustParse(t, "SELECT a + 1 AS next, b * 2, c FROM t")
	if stmt.Items[0].Expr == nil || stmt.Items[0].OutName() != "next" {
		t.Errorf("item 0 = %+v", stmt.Items[0])
	}
	if stmt.Items[1].Expr == nil || stmt.Items[1].OutName() != "(b * 2)" {
		t.Errorf("item 1 OutName = %q", stmt.Items[1].OutName())
	}
	if stmt.Items[2].Expr != nil || stmt.Items[2].Col != "c" {
		t.Errorf("bare column must stay a Col item: %+v", stmt.Items[2])
	}
}

func TestParseExpressionRoundTrip(t *testing.T) {
	s1 := mustParse(t, "SELECT a + 1 AS next FROM t")
	s2 := mustParse(t, s1.String())
	if s1.String() != s2.String() {
		t.Errorf("round trip diverged: %s vs %s", s1, s2)
	}
}
