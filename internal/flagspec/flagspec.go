// Package flagspec holds the source-registration flag parsing shared
// by the hummer CLI and the hummerd server: repeatable alias=path
// specs and the XML path:recordTag form.
package flagspec

import (
	"fmt"
	"strings"
)

// Multi collects repeatable -key=value flags.
type Multi []string

// String implements flag.Value.
func (m *Multi) String() string { return strings.Join(*m, ",") }

// Set implements flag.Value.
func (m *Multi) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// Split splits a spec at the first occurrence of sep, rejecting empty
// halves (the alias=path form).
func Split(spec, sep string) (string, string, error) {
	i := strings.Index(spec, sep)
	if i <= 0 || i == len(spec)-1 {
		return "", "", fmt.Errorf("want key%svalue", sep)
	}
	return spec[:i], spec[i+1:], nil
}

// SplitPathTag splits path:recordTag at the *last* colon: record tags
// cannot contain colons, but paths can (e.g. versioned directories).
func SplitPathTag(spec string) (string, string, error) {
	i := strings.LastIndex(spec, ":")
	if i <= 0 || i == len(spec)-1 {
		return "", "", fmt.Errorf("want path:recordTag")
	}
	return spec[:i], spec[i+1:], nil
}
