package obs

import (
	"sync/atomic"
	"time"
)

// StallBounds are the bucket upper bounds (seconds) for the
// consumer-stall histogram: stream producers block from sub-ms (a
// momentarily busy consumer) to tens of seconds (a stalled client
// about to hit the write deadline).
var StallBounds = []float64{
	0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30,
}

// DurationHist is a fixed-bucket, lock-free duration histogram in
// Prometheus le-convention: bucket i counts observations ≤ bounds[i],
// with one extra +Inf bucket. Observe is safe from any goroutine.
type DurationHist struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	nanos   atomic.Uint64
}

// NewDurationHist builds a histogram over ascending bucket bounds.
func NewDurationHist(bounds []float64) *DurationHist {
	return &DurationHist{
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *DurationHist) Observe(d time.Duration) {
	if h == nil {
		return
	}
	secs := d.Seconds()
	i := 0
	for i < len(h.bounds) && secs > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.nanos.Add(uint64(d.Nanoseconds()))
}

// HistSnapshot is a point-in-time copy of a DurationHist, ready for
// exposition. Buckets are per-bucket (not cumulative) counts aligned
// with Bounds plus a final +Inf bucket.
type HistSnapshot struct {
	Bounds  []float64
	Buckets []uint64
	Count   uint64
	Seconds float64
}

// Snapshot copies the histogram's current state.
func (h *DurationHist) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds:  h.bounds,
		Buckets: make([]uint64, len(h.buckets)),
		Count:   h.count.Load(),
		Seconds: float64(h.nanos.Load()) / float64(time.Second),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}
