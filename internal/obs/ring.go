package obs

import "sync"

// Ring keeps the last N finished traces for GET /v1/trace. A nil
// *Ring is the disabled state: Add and Snapshot are no-ops, so the
// server wires tracing off by simply not constructing one.
type Ring struct {
	mu  sync.Mutex
	buf []*Trace
	pos int // next write slot
	n   int // traces stored (≤ len(buf))
}

// NewRing returns a ring holding up to capacity traces, or nil when
// capacity is not positive (tracing disabled).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		return nil
	}
	return &Ring{buf: make([]*Trace, capacity)}
}

// Add records a finished trace, evicting the oldest when full.
func (r *Ring) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.pos] = t
	r.pos = (r.pos + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Len returns the number of traces currently held.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Snapshot renders up to limit traces, newest first (limit <= 0 means
// all). Views are built outside the ring lock; traces in the ring are
// finished, so their span trees are quiescent.
func (r *Ring) Snapshot(limit int) []*TraceView {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	n := r.n
	if limit > 0 && limit < n {
		n = limit
	}
	traces := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		// pos is the next write slot; pos-1 is the newest entry.
		idx := (r.pos - 1 - i + len(r.buf)*2) % len(r.buf)
		traces = append(traces, r.buf[idx])
	}
	r.mu.Unlock()
	views := make([]*TraceView, len(traces))
	for i, t := range traces {
		views[i] = t.View()
	}
	return views
}
