package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAndView(t *testing.T) {
	tr := NewTrace("req-1", "POST /v1/query")
	ctx := ContextWithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom lost the trace")
	}
	if SpanFrom(ctx) != tr.Root {
		t.Fatal("SpanFrom is not the root span")
	}

	pctx, plan := StartSpan(ctx, "plan")
	plan.SetInt("statements", 1)
	plan.End()
	if SpanFrom(pctx) != plan {
		t.Fatal("StartSpan did not install the child span")
	}

	cctx, pipe := StartSpan(ctx, "pipeline")
	_, match := StartSpan(cctx, "match")
	match.SetStr("cache", "miss")
	time.Sleep(time.Millisecond)
	match.End()
	pipe.End()
	tr.Finish()

	v := tr.View()
	if v.TraceID != "req-1" || v.Root == nil {
		t.Fatalf("view = %+v", v)
	}
	if v.DurationSeconds <= 0 {
		t.Errorf("root duration = %v, want > 0", v.DurationSeconds)
	}
	if len(v.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(v.Root.Children))
	}
	mv := v.Root.Children[1].Children[0]
	if mv.Name != "match" || mv.Attrs["cache"] != "miss" {
		t.Errorf("match span = %+v", mv)
	}
	if mv.DurationSeconds <= 0 {
		t.Errorf("match duration = %v, want > 0", mv.DurationSeconds)
	}
	pv := v.Root.Children[0]
	if got, ok := pv.Attrs["statements"].(int64); !ok || got != 1 {
		t.Errorf("plan attrs = %+v", pv.Attrs)
	}

	// The view must be JSON-serializable (it is the /v1/trace shape).
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"trace_id":"req-1"`)) {
		t.Errorf("serialized view missing trace_id: %s", data)
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := NewTrace("r", "q")
	sp := tr.Root.StartChild("phase")
	sp.End()
	d := sp.Duration()
	time.Sleep(time.Millisecond)
	sp.End() // must not move the end time
	if sp.Duration() != d {
		t.Errorf("second End moved duration: %v -> %v", d, sp.Duration())
	}
}

// TestNoopSpanZeroAllocs pins the disabled-tracing contract: with no
// trace on the context, the full StartSpan/SetInt/SetStr/End cycle
// performs zero allocations. This is the `make check` gate that keeps
// instrumentation free for every non-traced query.
func TestNoopSpanZeroAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, sp := StartSpan(ctx, "pipeline")
		sp.SetInt("rows", 42)
		sp.SetStr("cache", "miss")
		sp.End()
		_, child := StartSpan(c, "match")
		child.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkNoopSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, sp := StartSpan(ctx, "pipeline")
		sp.SetInt("rows", i)
		sp.End()
		_, child := StartSpan(c, "match")
		child.End()
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTrace("bench", "q")
	ctx := ContextWithTrace(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "pipeline")
		sp.SetInt("rows", i)
		sp.End()
	}
}

func TestRingOrderAndEviction(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		tr := NewTrace(fmt.Sprintf("req-%d", i), "q")
		tr.Finish()
		r.Add(tr)
	}
	if r.Len() != 3 {
		t.Fatalf("ring len = %d, want 3", r.Len())
	}
	views := r.Snapshot(0)
	want := []string{"req-4", "req-3", "req-2"} // newest first
	if len(views) != len(want) {
		t.Fatalf("snapshot len = %d, want %d", len(views), len(want))
	}
	for i, v := range views {
		if v.TraceID != want[i] {
			t.Errorf("snapshot[%d] = %s, want %s", i, v.TraceID, want[i])
		}
	}
	if got := r.Snapshot(2); len(got) != 2 || got[0].TraceID != "req-4" {
		t.Errorf("limited snapshot = %+v", got)
	}
}

func TestRingDisabled(t *testing.T) {
	var r *Ring
	if NewRing(0) != nil {
		t.Error("NewRing(0) must return nil (disabled)")
	}
	r.Add(NewTrace("x", "q")) // must not panic
	if r.Len() != 0 || r.Snapshot(0) != nil {
		t.Error("nil ring must be empty")
	}
}

// TestRingConcurrent hammers Add and Snapshot from many goroutines;
// run under -race (the Makefile's race target covers this package's
// importers; `go test -race ./internal/obs` covers it directly).
func TestRingConcurrent(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := NewTrace(fmt.Sprintf("w%d-%d", w, i), "q")
				sp := tr.Root.StartChild("phase")
				sp.SetInt("i", i)
				sp.End()
				tr.Finish()
				r.Add(tr)
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, v := range r.Snapshot(0) {
					if v.TraceID == "" {
						t.Error("empty trace id in snapshot")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if r.Len() != 8 {
		t.Errorf("ring len = %d, want 8", r.Len())
	}
}

func TestRequestIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate request id %s", id)
		}
		seen[id] = true
		if !strings.Contains(id, "-") {
			t.Fatalf("malformed request id %s", id)
		}
	}
}

func TestDurationHist(t *testing.T) {
	h := NewDurationHist([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // bucket 0 (≤1ms)
	h.Observe(5 * time.Millisecond)   // bucket 1 (≤10ms)
	h.Observe(50 * time.Millisecond)  // bucket 2 (≤100ms)
	h.Observe(2 * time.Second)        // +Inf bucket
	s := h.Snapshot()
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	want := []uint64{1, 1, 1, 1}
	for i, b := range s.Buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, b, want[i])
		}
	}
	if s.Seconds < 2.0 || s.Seconds > 2.1 {
		t.Errorf("sum seconds = %v", s.Seconds)
	}
	var nilh *DurationHist
	nilh.Observe(time.Second) // must not panic
	if nilh.Snapshot().Count != 0 {
		t.Error("nil hist must be empty")
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hello", "request_id", "r-1")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v in %s", err, buf.Bytes())
	}
	if rec["msg"] != "hello" || rec["request_id"] != "r-1" {
		t.Errorf("record = %v", rec)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Errorf("level filtering broken: %q", out)
	}

	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Error("bad level must error")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Error("bad format must error")
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" {
		t.Error("empty ctx must have no request id")
	}
	ctx = WithRequestID(ctx, "r-9")
	if RequestID(ctx) != "r-9" {
		t.Error("request id lost")
	}
}
