package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the process logger from the -log-level and
// -log-format flag values. Level is one of debug/info/warn/error;
// format is text or json. Empty strings take the defaults (info,
// text), matching hummerd's flag defaults.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
	return slog.New(h), nil
}
