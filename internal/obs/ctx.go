package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

type traceCtxKey struct{}
type spanCtxKey struct{}
type reqIDCtxKey struct{}

// ContextWithTrace attaches a trace to the context; spans started
// from the returned context nest under the trace's root.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	ctx = context.WithValue(ctx, traceCtxKey{}, t)
	return context.WithValue(ctx, spanCtxKey{}, t.Root)
}

// TraceFrom returns the trace riding the context, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// SpanFrom returns the innermost span riding the context, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's current span and returns a
// context carrying it. With no trace on the context it returns the
// context unchanged and a nil span — zero allocations, so call sites
// need no enabled/disabled branches.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanCtxKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.StartChild(name)
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// WithRequestID attaches the request's correlation ID to the context;
// it is set for every request, whether or not a trace is recorded.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDCtxKey{}, id)
}

// RequestID returns the context's correlation ID, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDCtxKey{}).(string)
	return id
}

// Request IDs are a per-process random prefix plus a sequence number:
// unique across restarts (the prefix), cheap and ordered within a
// process (the counter), and grep-friendly in logs.
var (
	reqPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
	reqSeq atomic.Uint64
)

// NewRequestID mints the next request ID, e.g. "f3a91c07-000042".
func NewRequestID() string {
	return fmt.Sprintf("%s-%06d", reqPrefix, reqSeq.Add(1))
}
