// Package obs is hummerd's zero-dependency observability substrate:
// per-query span traces, request IDs, a trace ring buffer, duration
// histograms and a structured-logger constructor — all stdlib-only.
//
// # Spans ride out-of-band
//
// A trace is attached to a context.Context; every pipeline layer that
// wants to report a phase calls StartSpan and End around the work.
// Spans never touch query results, so the byte-identity contract
// (cold/warm, any worker count, traced/untraced) is untouched by
// construction — tracing changes *when* things are measured, never
// *what* is computed.
//
// # The disabled path is free
//
// When no trace rides the context, StartSpan returns a nil *Span and
// the unchanged context. Every Span method is nil-safe, so the
// instrumented code needs no guards, and the whole path performs zero
// allocations (asserted by TestNoopSpanZeroAllocs and gated in
// `make check`).
//
// # Concurrency
//
// A span's child list and attributes are mutex-protected: the
// streaming producer goroutine appends spans to a trace whose root
// was created by the HTTP handler goroutine. Publication to the Ring
// must happen only after every goroutine that could touch the trace
// has been joined (the server publishes after the handler — and thus
// the stream drain — returns).
package obs

import (
	"sync"
	"time"
)

// Attr is one key/value annotation on a span: a row count, a worker
// count, a cache outcome.
type Attr struct {
	Key string
	Val any // int64 or string
}

// Span is one timed phase in a trace tree. The zero value is not
// used; spans are created by NewTrace and StartChild. A nil *Span is
// the disabled-tracing no-op: every method is nil-safe and free.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time // zero until End
	attrs    []Attr
	children []*Span
}

func newSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild adds and returns a new child span. Safe to call from a
// different goroutine than the one that created s.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stamps the span's end time. Idempotent: the first call wins, so
// `defer sp.End()` can back up an explicit End on the happy path to
// cover early error returns.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetInt attaches an integer attribute (row counts, worker counts).
func (s *Span) SetInt(key string, v int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: int64(v)})
	s.mu.Unlock()
}

// SetStr attaches a string attribute (cache outcomes, source names).
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: v})
	s.mu.Unlock()
}

// Duration is the span's measured wall time; zero while un-ended.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// Trace is one request's span tree. ID doubles as the request ID the
// server hands out in the X-Hummer-Request-Id header.
type Trace struct {
	ID   string
	Name string
	Root *Span
}

// NewTrace starts a trace whose root span begins now.
func NewTrace(id, name string) *Trace {
	return &Trace{ID: id, Name: name, Root: newSpan(name)}
}

// Finish ends the root span. Call exactly once, after every goroutine
// that might add spans has been joined.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.Root.End()
}

// Duration is the root span's wall time.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	return t.Root.Duration()
}

// TraceView is the JSON shape of a finished trace, served by
// GET /v1/trace and dumped by the slow-query log.
type TraceView struct {
	TraceID         string    `json:"trace_id"`
	Name            string    `json:"name"`
	Start           time.Time `json:"start"`
	DurationSeconds float64   `json:"duration_seconds"`
	Root            *SpanView `json:"root"`
}

// SpanView is one rendered span: name, duration, attributes, children.
type SpanView struct {
	Name            string         `json:"name"`
	DurationSeconds float64        `json:"duration_seconds"`
	Attrs           map[string]any `json:"attrs,omitempty"`
	Children        []*SpanView    `json:"children,omitempty"`
}

// View renders the trace into its JSON shape. Safe on a live trace
// (spans lock individually), but durations of un-ended spans read 0.
func (t *Trace) View() *TraceView {
	if t == nil {
		return nil
	}
	return &TraceView{
		TraceID:         t.ID,
		Name:            t.Name,
		Start:           t.Root.start,
		DurationSeconds: t.Duration().Seconds(),
		Root:            t.Root.View(),
	}
}

// View renders the span subtree rooted at s.
func (s *Span) View() *SpanView {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	v := &SpanView{
		Name:            s.name,
		DurationSeconds: s.durationLocked().Seconds(),
	}
	if len(s.attrs) > 0 {
		v.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			v.Attrs[a.Key] = a.Val
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		v.Children = append(v.Children, c.View())
	}
	return v
}

// durationLocked is Duration for callers already holding s.mu.
func (s *Span) durationLocked() time.Duration {
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}
