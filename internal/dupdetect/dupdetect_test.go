package dupdetect

import (
	"fmt"
	"testing"

	"hummer/internal/relation"
	"hummer/internal/value"
)

// dirtyPeople is a merged table with known duplicate structure:
// rows {0,1} are one person (typo), {2,3,4} another (typo + missing
// data), 5 and 6 are singletons.
func dirtyPeople() *relation.Relation {
	return relation.NewBuilder("merged", "sourceID", "Name", "Age", "City", "Email").
		AddText("s1", "Jonathan Smith", "32", "Berlin", "jon@example.com").
		AddText("s2", "Jonathon Smith", "32", "Berlin", "jon@example.com").
		AddText("s1", "Maria Garcia", "27", "Hamburg", "maria@example.org").
		AddText("s2", "Maria Garcia", "27", "", "maria@example.org").
		AddText("s3", "Maria Garcia", "", "Hamburg", "").
		AddText("s1", "Wei Chen", "45", "Munich", "wei@example.net").
		AddText("s2", "Aisha Khan", "19", "Cologne", "aisha@example.com").
		Build()
}

func TestDetectClustersKnownDuplicates(t *testing.T) {
	res, err := Detect(dirtyPeople(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ids := res.ObjectIDs
	if ids[0] != ids[1] {
		t.Errorf("rows 0,1 (typo pair) not clustered: %v", ids)
	}
	if ids[2] != ids[3] || ids[3] != ids[4] {
		t.Errorf("rows 2,3,4 (Maria) not clustered: %v", ids)
	}
	if ids[5] == ids[0] || ids[5] == ids[2] || ids[6] == ids[5] || ids[6] == ids[0] {
		t.Errorf("singletons wrongly merged: %v", ids)
	}
}

func TestObjectIDsNumberedByFirstAppearance(t *testing.T) {
	res, err := Detect(dirtyPeople(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ObjectIDs[0] != 0 {
		t.Errorf("first row must start cluster 0, got %d", res.ObjectIDs[0])
	}
	seen := map[int]bool{}
	maxSeen := -1
	for _, id := range res.ObjectIDs {
		if !seen[id] {
			if id != maxSeen+1 {
				t.Fatalf("cluster ids not dense in first-appearance order: %v", res.ObjectIDs)
			}
			maxSeen = id
			seen[id] = true
		}
	}
}

func TestClustersPartitionRows(t *testing.T) {
	rel := dirtyPeople()
	res, err := Detect(rel, Config{})
	if err != nil {
		t.Fatal(err)
	}
	covered := map[int]bool{}
	for cid, members := range res.Clusters {
		for _, m := range members {
			if covered[m] {
				t.Fatalf("row %d appears in two clusters", m)
			}
			covered[m] = true
			if res.ObjectIDs[m] != cid {
				t.Errorf("row %d: ObjectIDs=%d but lives in cluster %d", m, res.ObjectIDs[m], cid)
			}
		}
	}
	if len(covered) != rel.Len() {
		t.Errorf("clusters cover %d rows, want %d", len(covered), rel.Len())
	}
}

func TestMissingDataHasNoInfluence(t *testing.T) {
	// Two rows agreeing on name, with age missing on one side, must
	// score the same as two rows agreeing on name with no age column
	// conflict — i.e. they should be duplicates.
	rel := relation.NewBuilder("t", "Name", "Age").
		AddText("Friedrich Wilhelm Nietzsche", "55").
		AddText("Friedrich Wilhelm Nietzsche", "").
		Build()
	res, err := Detect(rel, Config{Threshold: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if res.ObjectIDs[0] != res.ObjectIDs[1] {
		t.Error("missing age must not prevent the duplicate")
	}
}

func TestContradictoryDataReducesSimilarity(t *testing.T) {
	// Same name, wildly different ages: the contradiction must lower
	// similarity below the same pair with the age missing.
	withConflict := relation.NewBuilder("t", "Name", "Age").
		AddText("Maria Garcia", "20").
		AddText("Maria Garcia", "80").
		Build()
	withMissing := relation.NewBuilder("t", "Name", "Age").
		AddText("Maria Garcia", "20").
		AddText("Maria Garcia", "").
		Build()
	conflict, err := Detect(withConflict, Config{Threshold: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	missing, err := Detect(withMissing, Config{Threshold: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	simOf := func(r *Result) float64 {
		all := append(append([]ScoredPair{}, r.Duplicates...), r.Borderline...)
		if len(all) == 0 {
			return 0
		}
		return all[0].Sim
	}
	_ = missing
	cs := simOf(conflict)
	// Directly compare via measure on a relaxed threshold run instead:
	relaxedC, _ := Detect(withConflict, Config{Threshold: 0.1})
	relaxedM, _ := Detect(withMissing, Config{Threshold: 0.1})
	if len(relaxedC.Duplicates) == 0 || len(relaxedM.Duplicates) == 0 {
		t.Fatal("expected scored pairs at low threshold")
	}
	if relaxedC.Duplicates[0].Sim >= relaxedM.Duplicates[0].Sim {
		t.Errorf("conflict sim %g must be below missing-data sim %g",
			relaxedC.Duplicates[0].Sim, relaxedM.Duplicates[0].Sim)
	}
	_ = cs
}

func TestNoContradictionPenaltyAblation(t *testing.T) {
	rel := relation.NewBuilder("t", "Name", "Age").
		AddText("Maria Garcia", "20").
		AddText("Maria Garcia", "80").
		Build()
	strict, err := Detect(rel, Config{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	lax, err := Detect(rel, Config{Threshold: 0.1, NoContradictionPenalty: true})
	if err != nil {
		t.Fatal(err)
	}
	if lax.Duplicates[0].Sim <= strict.Duplicates[0].Sim {
		t.Errorf("disabling the penalty must raise similarity (%g vs %g)",
			lax.Duplicates[0].Sim, strict.Duplicates[0].Sim)
	}
}

func TestFilterDoesNotChangeResults(t *testing.T) {
	// The filter is an upper bound: switching it off must yield the
	// identical clustering, only more comparisons.
	rel := dirtyPeople()
	with, err := Detect(rel, Config{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Detect(rel, Config{DisableFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range with.ObjectIDs {
		if with.ObjectIDs[i] != without.ObjectIDs[i] {
			t.Fatalf("filter changed clustering at row %d: %v vs %v",
				i, with.ObjectIDs, without.ObjectIDs)
		}
	}
	if without.Stats.Compared < with.Stats.Compared {
		t.Error("disabling the filter cannot reduce comparisons")
	}
	if with.Stats.FilteredOut == 0 {
		t.Log("note: filter pruned nothing on this input")
	}
	if without.Stats.FilteredOut != 0 {
		t.Error("disabled filter must not filter")
	}
}

func TestStatsAddUp(t *testing.T) {
	res, err := Detect(dirtyPeople(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	n := dirtyPeople().Len()
	wantPairs := n * (n - 1) / 2
	if res.Stats.CandidatePairs != wantPairs {
		t.Errorf("CandidatePairs = %d, want %d", res.Stats.CandidatePairs, wantPairs)
	}
	if res.Stats.FilteredOut+res.Stats.Compared != res.Stats.CandidatePairs {
		t.Errorf("filtered(%d) + compared(%d) != candidates(%d)",
			res.Stats.FilteredOut, res.Stats.Compared, res.Stats.CandidatePairs)
	}
}

func TestSelectAttributesExcludesBookkeepingAndBooleans(t *testing.T) {
	rel := relation.NewBuilder("t", "sourceID", "Name", "active", "objectID").
		AddText("s1", "Alice", "true", "0").
		AddText("s2", "Bob", "false", "1").
		Build()
	attrs := SelectAttributes(rel)
	for _, a := range attrs {
		if a == "sourceID" || a == "objectID" {
			t.Errorf("bookkeeping column %q selected", a)
		}
		if a == "active" {
			t.Error("boolean column selected")
		}
	}
	if len(attrs) != 1 || attrs[0] != "Name" {
		t.Errorf("attrs = %v, want [Name]", attrs)
	}
}

func TestSelectAttributesExcludesAllNullAndConstant(t *testing.T) {
	b := relation.NewBuilder("t", "Name", "empty", "constant")
	for _, n := range []string{"Alice", "Bob", "Carol", "Dave", "Eve",
		"Frank", "Grace", "Heidi", "Ivan", "Judy", "Ken", "Laura"} {
		b.AddText(n, "", "x")
	}
	rel := b.Build()
	attrs := SelectAttributes(rel)
	for _, a := range attrs {
		if a == "empty" {
			t.Error("all-null column selected")
		}
		if a == "constant" {
			t.Error("constant column selected (cannot distinguish)")
		}
	}
}

func TestManualAttributeOverride(t *testing.T) {
	rel := dirtyPeople()
	res, err := Detect(rel, Config{Attributes: []string{"Email"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SelectedAttributes) != 1 || res.SelectedAttributes[0] != "Email" {
		t.Errorf("SelectedAttributes = %v", res.SelectedAttributes)
	}
	// With only Email: rows 0,1 share an email → duplicates; row 4 has
	// NULL email → alone.
	if res.ObjectIDs[0] != res.ObjectIDs[1] {
		t.Error("email-only detection must pair rows 0,1")
	}
	if res.ObjectIDs[4] == res.ObjectIDs[2] {
		t.Error("row 4 (null email) must not join Maria's cluster on email alone")
	}
}

func TestDetectUnknownAttributeErrors(t *testing.T) {
	if _, err := Detect(dirtyPeople(), Config{Attributes: []string{"nope"}}); err == nil {
		t.Error("unknown attribute must error")
	}
}

func TestDetectNoUsableAttributesErrors(t *testing.T) {
	rel := relation.NewBuilder("t", "sourceID").AddText("s1").Build()
	if _, err := Detect(rel, Config{}); err == nil {
		t.Error("relation with only bookkeeping columns must error")
	}
}

func TestAppendObjectID(t *testing.T) {
	rel := dirtyPeople()
	res, err := Detect(rel, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := AppendObjectID(rel, res)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Schema().Has(ObjectIDColumn) {
		t.Fatal("objectID column missing")
	}
	if out.Len() != rel.Len() {
		t.Fatalf("rows = %d, want %d", out.Len(), rel.Len())
	}
	for i := 0; i < out.Len(); i++ {
		got := out.Value(i, ObjectIDColumn)
		if !got.Equal(value.NewInt(int64(res.ObjectIDs[i]))) {
			t.Errorf("row %d objectID = %v, want %d", i, got, res.ObjectIDs[i])
		}
	}
	// Mismatched result must fail.
	short := &Result{ObjectIDs: []int{0}}
	if _, err := AppendObjectID(rel, short); err == nil {
		t.Error("mismatched result length must error")
	}
}

func TestTransitiveClosure(t *testing.T) {
	// A≈B and B≈C but A vs C differ more strongly; transitive closure
	// must still put all three in one cluster.
	rel := relation.NewBuilder("t", "Name").
		AddText("Christina Aguilera Fernandez").
		AddText("Christina Aguilera Fernandes").
		AddText("Christina Aguilera Fernandos").
		Build()
	res, err := Detect(rel, Config{Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if res.ObjectIDs[0] != res.ObjectIDs[1] || res.ObjectIDs[1] != res.ObjectIDs[2] {
		t.Errorf("transitive closure failed: %v", res.ObjectIDs)
	}
}

func TestBorderlineCases(t *testing.T) {
	res, err := Detect(dirtyPeople(), Config{Threshold: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	// At an extreme threshold the exact-match pairs may survive but
	// typo pairs land in the borderline band or below.
	for _, p := range res.Borderline {
		if p.Sim >= 0.999 || p.Sim < 0.999*0.9 {
			t.Errorf("borderline pair %v outside [0.9t, t)", p)
		}
	}
}

func TestUnionFind(t *testing.T) {
	u := newUnionFind(5)
	u.union(0, 1)
	u.union(3, 4)
	u.union(1, 3)
	ids, clusters := u.clusters()
	if ids[0] != ids[1] || ids[1] != ids[3] || ids[3] != ids[4] {
		t.Errorf("ids = %v", ids)
	}
	if ids[2] == ids[0] {
		t.Error("row 2 wrongly merged")
	}
	if len(clusters) != 2 {
		t.Errorf("clusters = %v", clusters)
	}
}

func TestSortedNeighborhoodFindsAdjacentDuplicates(t *testing.T) {
	rel := dirtyPeople()
	full, err := Detect(rel, Config{})
	if err != nil {
		t.Fatal(err)
	}
	snm, err := Detect(rel, Config{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	// On this small table every duplicate's sorting keys are adjacent,
	// so the clustering must agree with the exhaustive run.
	for i := range full.ObjectIDs {
		if full.ObjectIDs[i] != snm.ObjectIDs[i] {
			t.Fatalf("SNM clustering diverged at row %d: %v vs %v",
				i, snm.ObjectIDs, full.ObjectIDs)
		}
	}
	if snm.Stats.CandidatePairs >= full.Stats.CandidatePairs {
		t.Errorf("SNM candidates %d must be below exhaustive %d",
			snm.Stats.CandidatePairs, full.Stats.CandidatePairs)
	}
}

func TestSortedNeighborhoodScalesLinearly(t *testing.T) {
	// Candidate pairs under SNM are ≤ n·window.
	b := relation.NewBuilder("t", "Name")
	for i := 0; i < 200; i++ {
		b.AddText(fmt.Sprintf("person number %04d", i))
	}
	rel := b.Build()
	res, err := Detect(rel, Config{Window: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CandidatePairs > 200*5 {
		t.Errorf("candidates = %d, want ≤ n·window = 1000", res.Stats.CandidatePairs)
	}
}
