package dupdetect

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"hummer/internal/relation"
)

// TestDetectContextCancelMidScoring cancels a detection while its
// O(n²) pair-scoring loop is running: the call must return the
// context error within a test-enforced deadline with every worker
// goroutine joined.
func TestDetectContextCancelMidScoring(t *testing.T) {
	// 2000 rows exhaustive = ~2M candidate pairs: far more work than
	// the 5ms fuse below, so the cancellation always lands mid-flight.
	b := relation.NewBuilder("big", "Name", "City")
	for i := 0; i < 2000; i++ {
		b.AddText(fmt.Sprintf("citizen number %d of the republic", i), fmt.Sprintf("metropolis %d", i%13))
	}
	rel := b.Build()
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(5*time.Millisecond, cancel)
	start := time.Now()
	res, err := DetectContext(ctx, rel, Config{Threshold: 0.8, Parallelism: 4})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want context.Canceled", res, err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled detection took %v to return", elapsed)
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("worker goroutines did not join: %d running, started with %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDetectContextPreCancelled: a cancelled context aborts detection
// before any scoring and returns no partial result.
func TestDetectContextPreCancelled(t *testing.T) {
	b := relation.NewBuilder("t", "Name", "City")
	for i := 0; i < 300; i++ {
		b.AddText(fmt.Sprintf("person %d", i), fmt.Sprintf("city %d", i%7))
	}
	rel := b.Build()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := DetectContext(ctx, rel, Config{Threshold: 0.8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want context.Canceled", res, err)
	}
	if res != nil {
		t.Fatal("cancelled detection returned a partial result")
	}
	// The same relation still detects fine afterwards.
	if _, err := DetectContext(context.Background(), rel, Config{Threshold: 0.8}); err != nil {
		t.Fatalf("detection after cancellation: %v", err)
	}
}

// TestDetectContextCompletesIdentical: an uncancelled DetectContext is
// byte-identical to Detect (the context plumbing must not perturb the
// canonical result).
func TestDetectContextCompletesIdentical(t *testing.T) {
	b := relation.NewBuilder("t", "Name", "Age")
	for i := 0; i < 120; i++ {
		b.AddText(fmt.Sprintf("alice example %d", i/2), fmt.Sprintf("%d", 20+i%40))
	}
	rel := b.Build()
	for _, cfg := range []Config{
		{Threshold: 0.8},
		{Threshold: 0.8, Parallelism: 3},
		{Threshold: 0.8, QGrams: 3},
	} {
		want, err := Detect(rel, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DetectContext(context.Background(), rel, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", want) != fmt.Sprintf("%+v", got) {
			t.Fatalf("cfg %+v: DetectContext differs from Detect", cfg)
		}
	}
}

// TestSkippedBlockStats: oversized blocks are no longer dropped
// silently — the Result's Stats surface how many blocks (and rows)
// the blocking strategies refused to pair.
func TestSkippedBlockStats(t *testing.T) {
	// maxBlockRows+1 rows sharing the prefix "aaa" form one oversized
	// block under prefix blocking; every row also carries a unique
	// tail so the relation is not degenerate.
	b := relation.NewBuilder("t", "Name", "Code")
	n := maxBlockRows + 1
	for i := 0; i < n; i++ {
		b.AddText(fmt.Sprintf("aaa%06d", i), fmt.Sprintf("c%d", i))
	}
	rel := b.Build()
	res, err := Detect(rel, Config{Threshold: 0.8, Blocking: 3, Attributes: []string{"Name"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SkippedBlocks != 1 {
		t.Errorf("SkippedBlocks = %d, want 1", res.Stats.SkippedBlocks)
	}
	if res.Stats.SkippedBlockRows != n {
		t.Errorf("SkippedBlockRows = %d, want %d", res.Stats.SkippedBlockRows, n)
	}
	if res.Stats.CandidatePairs != 0 {
		t.Errorf("CandidatePairs = %d, want 0 (the only block was skipped)", res.Stats.CandidatePairs)
	}

	// A window-based run never skips blocks: the counters stay zero.
	res, err = Detect(rel, Config{Threshold: 0.8, Window: 2, Attributes: []string{"Name"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SkippedBlocks != 0 || res.Stats.SkippedBlockRows != 0 {
		t.Errorf("window run reported skipped blocks: %+v", res.Stats)
	}
}
