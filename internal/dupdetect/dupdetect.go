// Package dupdetect implements HumMer's duplicate-detection phase: the
// DogmatiX algorithm (Weis & Naumann, SIGMOD 2005) mapped from XML to
// the relational world, as §2.3 of the demo paper describes.
//
// Tuples of one (already schema-aligned) relation are compared
// pairwise with a similarity measure that (i) distinguishes matched
// from unmatched attributes, (ii) compares matched attribute values
// with edit and numeric distance, (iii) weighs each data item by its
// identifying power (a soft version of IDF), and (iv) lets
// contradictory data reduce similarity while missing data has no
// influence. A cheap upper bound filters pairs before the expensive
// measure runs. Pairs above a threshold are duplicates; the transitive
// closure over duplicate pairs forms clusters, and an objectID column
// identifying each cluster is appended to the relation.
//
// # Candidate generation
//
// Which pairs are compared is decided by one of three strategies:
//
//   - exhaustive (the default): all n·(n-1)/2 pairs — the paper's
//     quadratic loop, full recall.
//   - sorted neighborhood (Config.Window > 0): rows are sorted by a
//     key concatenated from the selected attributes and only rows
//     within the window are compared — ~n·w comparisons, trading
//     recall on far-sorting duplicates for near-linear cost.
//   - blocking (Config.Blocking > 0): multi-pass prefix blocking, one
//     pass per selected attribute; rows sharing the first Blocking
//     runes of an attribute's normalized value are compared.
//   - q-gram blocking (Config.QGrams > 0): like prefix blocking, but
//     the keys are the padded q-grams of each attribute value's
//     normalized prefix, so a typo inside the prefix still leaves
//     other grams agreeing — recall survives dirty prefixes. Unlike
//     the single sorted key, a pair only needs to agree on a prefix of
//     *some* attribute to become a candidate.
//
// # Parallelism and determinism
//
// Config.Parallelism sets the number of worker goroutines scoring
// candidate pairs (0 means GOMAXPROCS, 1 forces sequential). The
// candidate stream is chunked, scored by workers with private scratch
// buffers, and merged back in chunk order. The Result — clusters,
// duplicate and borderline pair order, statistics — is byte-identical
// across all worker counts: parallelism is purely a wall-clock knob.
package dupdetect

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"strings"

	"hummer/internal/obs"
	"hummer/internal/parshard"
	"hummer/internal/relation"
	"hummer/internal/schema"
	"hummer/internal/strsim"
	"hummer/internal/value"
)

// ObjectIDColumn is the name of the cluster-identifier column the
// detector appends, as in the paper.
const ObjectIDColumn = "objectID"

// SourceIDColumn is the provenance column added by the transformation
// phase; the attribute-selection heuristics always exclude it.
const SourceIDColumn = "sourceID"

// matchCutoff separates "matched but similar" from "matched but
// contradictory" attribute values (criterion iv).
const matchCutoff = 0.75

// Config tunes the detector. The zero Config is usable; Default fills
// in paper-faithful settings.
type Config struct {
	// Threshold is the tuple-similarity duplicate threshold;
	// default 0.8.
	Threshold float64
	// Attributes overrides the heuristic attribute selection ("adjust
	// duplicate definition" in the wizard). Empty means: use the
	// heuristics.
	Attributes []string
	// DisableFilter turns the upper-bound filter off (ablation D4).
	DisableFilter bool
	// NoContradictionPenalty makes contradictory values behave like
	// missing values (ablation D3).
	NoContradictionPenalty bool
	// Window, when positive, switches candidate generation from the
	// exhaustive O(n²) pairing to the sorted-neighborhood method:
	// rows are sorted by a sorting key concatenated from the selected
	// attributes, and only rows within the window are compared. This
	// trades a little recall (duplicates whose keys sort far apart)
	// for near-linear comparison cost — the standard scale-up for
	// duplicate detection. Mutually exclusive with Blocking.
	Window int
	// Blocking, when positive, switches candidate generation to
	// multi-pass prefix blocking: for each selected attribute, rows
	// sharing the first Blocking runes of that attribute's normalized
	// value form a block, and only rows sharing a block are compared.
	// Recall survives a dirty attribute as long as some other selected
	// attribute still agrees on its prefix. Mutually exclusive with
	// Window and QGrams.
	Blocking int
	// QGrams, when positive, switches candidate generation to q-gram
	// blocking with grams of this length — the dumas key scheme
	// ported to detection: for each selected attribute, the padded
	// q-grams of the attribute value's normalized prefix become
	// blocking keys, and rows sharing any key are compared. A typo
	// inside the prefix still leaves the remaining grams agreeing, so
	// recall survives dirty prefixes that defeat plain prefix
	// Blocking. Mutually exclusive with Window and Blocking.
	QGrams int
	// Parallelism is the number of worker goroutines that score
	// candidate pairs: 0 means GOMAXPROCS, 1 forces the sequential
	// path. The Result is byte-identical at every worker count.
	Parallelism int
}

// Default returns the paper-faithful configuration.
func Default() Config { return Config{Threshold: 0.8} }

func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = Default().Threshold
	}
	return c
}

// ScoredPair is one compared tuple pair with its similarity.
type ScoredPair struct {
	A, B int
	Sim  float64
}

// Stats reports the work the detector performed — E6 measures the
// filter's effect through these numbers.
type Stats struct {
	// CandidatePairs is the number of pairs considered (n·(n-1)/2 for
	// the exhaustive strategy, fewer under Window or Blocking).
	CandidatePairs int
	// FilteredOut is how many pairs the upper bound discarded before
	// the expensive measure ran.
	FilteredOut int
	// Compared is how many pairs ran the full similarity measure.
	Compared int
	// SkippedBlocks counts the oversized candidate blocks the key-based
	// strategies (Blocking, QGrams) refused to pair: more than
	// maxBlockRows rows shared one key, so the key carried no
	// discriminating power. Nonzero values mean recall may have been
	// lost to a near-constant attribute — pick a longer prefix, longer
	// grams, or a different attribute selection.
	SkippedBlocks int
	// SkippedBlockRows is the total membership of those skipped blocks
	// (rows counted once per skipped block they appear in).
	SkippedBlockRows int
}

// Result is the detector's output.
type Result struct {
	// ObjectIDs assigns each input row its cluster id, 0-based,
	// numbered in order of each cluster's first row.
	ObjectIDs []int
	// Clusters lists row indices per cluster, each sorted ascending.
	Clusters [][]int
	// Duplicates are the pairs scored at or above the threshold, in
	// candidate order.
	Duplicates []ScoredPair
	// Borderline are pairs in [0.9·threshold, threshold): the demo
	// GUI shows these as "unsure cases" for the user to decide.
	Borderline []ScoredPair
	// SelectedAttributes are the attributes the similarity used.
	SelectedAttributes []string
	// Stats reports comparison counts.
	Stats Stats
}

// Detect finds duplicate clusters in rel. It is DetectContext with a
// background context: it cannot be cancelled.
func Detect(rel *relation.Relation, cfg Config) (*Result, error) {
	return DetectContext(context.Background(), rel, cfg)
}

// DetectContext finds duplicate clusters in rel, honoring ctx: the
// measure precomputation polls it between row shards and the pair
// scoring checks it at chunk boundaries, so a cancelled detection
// returns promptly with ctx's error, all worker goroutines joined and
// no partial result. A detection that completes is byte-identical to
// an uncancellable run.
func DetectContext(ctx context.Context, rel *relation.Relation, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	strategies := 0
	for _, knob := range []int{cfg.Window, cfg.Blocking, cfg.QGrams} {
		if knob > 0 {
			strategies++
		}
	}
	if strategies > 1 {
		return nil, fmt.Errorf("dupdetect: Window, Blocking and QGrams are mutually exclusive candidate strategies")
	}
	attrs := cfg.Attributes
	if len(attrs) == 0 {
		attrs = SelectAttributes(rel)
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("dupdetect: no usable attributes in %s", rel.Schema())
	}
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		j, ok := rel.Schema().Lookup(a)
		if !ok {
			return nil, fmt.Errorf("dupdetect: no attribute %q in %s", a, rel.Schema())
		}
		cols[i] = j
	}

	_, csp := obs.StartSpan(ctx, "detect.corpus")
	defer csp.End()
	csp.SetInt("rows", rel.Len())
	m, err := newMeasure(ctx, rel, cols, cfg)
	if err != nil {
		return nil, err
	}
	csp.End()

	_, ssp := obs.StartSpan(ctx, "detect.score")
	defer ssp.End()
	ssp.SetInt("workers", parshard.Workers(cfg.Parallelism))
	gen, blocks := candidateGen(ctx, m, cfg)
	out, err := scorePairs(ctx, m, cfg, gen)
	if err != nil {
		return nil, err
	}
	// Safe to read now: the generator goroutine that wrote the block
	// counters is joined before scorePairs returns.
	out.stats.SkippedBlocks = blocks.skipped
	out.stats.SkippedBlockRows = blocks.skippedRows
	ssp.SetInt("candidates", out.stats.CandidatePairs)
	ssp.SetInt("compared", out.stats.Compared)
	ssp.End()

	res := &Result{
		SelectedAttributes: attrs,
		Duplicates:         out.dups,
		Borderline:         out.borderline,
		Stats:              out.stats,
	}
	_, usp := obs.StartSpan(ctx, "detect.cluster")
	defer usp.End()
	dsu := newUnionFind(rel.Len())
	for _, p := range out.dups {
		dsu.union(p.A, p.B)
	}
	res.ObjectIDs, res.Clusters = dsu.clusters()
	usp.SetInt("clusters", len(res.Clusters))
	usp.End()
	return res, nil
}

// AppendObjectID returns a copy of rel extended with the objectID
// column from a detection result.
func AppendObjectID(rel *relation.Relation, res *Result) (*relation.Relation, error) {
	if len(res.ObjectIDs) != rel.Len() {
		return nil, fmt.Errorf("dupdetect: result covers %d rows, relation has %d",
			len(res.ObjectIDs), rel.Len())
	}
	s, err := rel.Schema().Append(schema.Column{Name: ObjectIDColumn, Type: value.KindInt})
	if err != nil {
		return nil, err
	}
	out := relation.New(rel.Name(), s)
	for i := 0; i < rel.Len(); i++ {
		row := append(rel.Row(i).Clone(), value.NewInt(int64(res.ObjectIDs[i])))
		if err := out.Append(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// --- Attribute selection heuristics -------------------------------------

// attrScore carries the heuristic sub-scores for one attribute; the
// demo GUI shows these so users can understand and adjust the
// selection.
type attrScore struct {
	Name string
	// Coverage is the non-null fraction (criterion: usable).
	Coverage float64
	// Distinctness is distinct-values / non-null-values (criterion:
	// likely to distinguish duplicates from non-duplicates).
	Distinctness float64
	// Usable reports whether the type works with the similarity
	// measure (strings and numerics do; booleans carry ~1 bit).
	Usable bool
	Score  float64
}

// SelectAttributes applies the paper's heuristics to pick
// "interesting" attributes: related to the object (all columns of the
// relation are), usable by the similarity measure, and likely to
// distinguish duplicates from non-duplicates. Bookkeeping columns
// (sourceID, objectID) are always excluded. Selection is inclusive —
// the similarity measure weighs attributes by identifying power, so
// weak attributes are only excluded when they carry almost no signal
// (constant or near-constant columns, booleans, all-null columns).
func SelectAttributes(rel *relation.Relation) []string {
	var out []string
	for _, sc := range ScoreAttributes(rel) {
		if sc.Usable && sc.Score >= 0.02 {
			out = append(out, sc.Name)
		}
	}
	return out
}

// ScoreAttributes computes the heuristic scores for every attribute.
func ScoreAttributes(rel *relation.Relation) []attrScore {
	s := rel.Schema()
	var scores []attrScore
	for j := 0; j < s.Len(); j++ {
		name := s.Col(j).Name
		if strings.EqualFold(name, SourceIDColumn) || strings.EqualFold(name, ObjectIDColumn) {
			continue
		}
		nonNull := 0
		distinct := map[uint64]bool{}
		usable := true
		for i := 0; i < rel.Len(); i++ {
			v := rel.Row(i)[j]
			if v.IsNull() {
				continue
			}
			nonNull++
			distinct[v.Hash()] = true
			if v.Kind() == value.KindBool {
				usable = false // a bit cannot distinguish entities
			}
		}
		sc := attrScore{Name: name, Usable: usable}
		if rel.Len() > 0 {
			sc.Coverage = float64(nonNull) / float64(rel.Len())
		}
		if nonNull > 0 {
			sc.Distinctness = float64(len(distinct)) / float64(nonNull)
		}
		if nonNull == 0 {
			sc.Usable = false
		}
		// A constant column across a non-trivial table cannot
		// distinguish entities. Tiny tables are exempt: with a
		// handful of rows, agreement on the only attribute there is
		// may be exactly the duplicate evidence.
		if rel.Len() >= 10 && len(distinct) <= 1 {
			sc.Usable = false
		}
		sc.Score = sc.Coverage * sc.Distinctness
		scores = append(scores, sc)
	}
	return scores
}

// --- The similarity measure ----------------------------------------------

// measure holds the precomputed per-cell state for pairwise
// comparison. Everything derivable from a single cell — normalized
// text, its rune form, sorted rune counts, numeric image, identifying
// power — is computed exactly once here, so the per-pair hot path
// performs no text normalization and no allocation.
type measure struct {
	rel  *relation.Relation
	cols []int
	cfg  Config
	// texts[i][k] is the lowercased text of row i, selected attr k —
	// the shared normalized-text cache (value.Text + ToLower run once
	// per cell, not once per pair).
	texts [][]string
	// runes[i][k] is the rune form of texts[i][k], so the edit-
	// distance kernel never re-decodes UTF-8.
	runes [][][]rune
	// counts[i][k] is the sorted rune histogram of texts[i][k],
	// backing the multiset upper bound on edit similarity with a
	// two-pointer merge instead of a map walk.
	counts [][]runeCounts
	// weights[i][k] is the identifying power (soft IDF) of that value.
	weights [][]float64
	// nums[i][k] is the numeric image, flagged by isNum.
	nums  [][]float64
	isNum [][]bool
	null  [][]bool
	// ranges[k] is the numeric value spread (max-min) of attribute k,
	// used to normalize numeric distance: two years 30 apart are very
	// different entities even though their relative difference is
	// small.
	ranges []float64
	// avgRowWeight is the mean total attribute weight of a row — the
	// typical amount of evidence available. Pairs compared on much
	// less (because values are missing) get their similarity scaled
	// down: matching on one weak attribute alone must not clear the
	// threshold.
	avgRowWeight float64
}

// runeCount is one entry of a sorted rune histogram.
type runeCount struct {
	r rune
	n int
}

// runeCounts is a rune histogram sorted by rune, for allocation-free
// multiset intersection.
type runeCounts []runeCount

// evidenceFraction is the fraction of the average row weight a pair
// must actually compare to earn full confidence.
const evidenceFraction = 0.3

// measureShardMinRows is the smallest input the measure precomputation
// bothers to shard: below it, goroutine startup would cost more than
// the normalization work itself.
const measureShardMinRows = 128

// colAgg is one shard's cross-row reduction state, one instance per
// attribute: corpus statistics, distinct-value sets, non-null counts,
// numeric bounds. Every field merges commutatively (count sums, set
// unions, min/max), so folding per-shard aggregates reproduces the
// sequential aggregates exactly regardless of shard count.
type colAgg struct {
	corpora  []*strsim.Corpus
	distinct []map[uint64]bool
	nonNull  []int
	mins     []float64
	maxs     []float64
	haveNum  []bool
}

func newColAgg(cols int) *colAgg {
	a := &colAgg{
		corpora:  make([]*strsim.Corpus, cols),
		distinct: make([]map[uint64]bool, cols),
		nonNull:  make([]int, cols),
		mins:     make([]float64, cols),
		maxs:     make([]float64, cols),
		haveNum:  make([]bool, cols),
	}
	for k := range a.corpora {
		a.corpora[k] = strsim.NewCorpus()
		a.distinct[k] = map[uint64]bool{}
	}
	return a
}

func (a *colAgg) merge(o *colAgg) {
	for k := range a.corpora {
		a.corpora[k].Merge(o.corpora[k])
		for h := range o.distinct[k] {
			a.distinct[k][h] = true
		}
		a.nonNull[k] += o.nonNull[k]
		if o.haveNum[k] {
			if !a.haveNum[k] || o.mins[k] < a.mins[k] {
				a.mins[k] = o.mins[k]
			}
			if !a.haveNum[k] || o.maxs[k] > a.maxs[k] {
				a.maxs[k] = o.maxs[k]
			}
			a.haveNum[k] = true
		}
	}
}

// newMeasure precomputes the per-cell comparison state. ctx is polled
// between rows inside each shard; on cancellation the half-built
// measure is discarded and ctx's error returned.
func newMeasure(ctx context.Context, rel *relation.Relation, cols []int, cfg Config) (*measure, error) {
	n := rel.Len()
	m := &measure{rel: rel, cols: cols, cfg: cfg}
	m.texts = make([][]string, n)
	m.runes = make([][][]rune, n)
	m.counts = make([][]runeCounts, n)
	m.weights = make([][]float64, n)
	m.nums = make([][]float64, n)
	m.isNum = make([][]bool, n)
	m.null = make([][]bool, n)
	m.ranges = make([]float64, len(cols))

	workers := parshard.Workers(cfg.Parallelism)
	if n < measureShardMinRows {
		workers = 1
	}

	// Pass 1, row-sharded: normalize every cell once and derive all
	// per-cell state. Workers write disjoint row slots of the per-cell
	// arrays and accumulate the cross-row statistics — identifying-
	// power corpora ("soft version of IDF", criterion iii), distinct-
	// value sets, numeric bounds — into shard-local aggregates that
	// fold commutatively afterwards, so the measure is byte-identical
	// at every worker count.
	aggs := make([]*colAgg, workers)
	err := parshard.RangesContext(ctx, workers, n, func(shard, lo, hi int) {
		agg := newColAgg(len(cols))
		aggs[shard] = agg
		var sortBuf []rune
		for i := lo; i < hi; i++ {
			if i%parshard.CancelStride == 0 && parshard.Canceled(ctx) {
				return
			}
			m.texts[i] = make([]string, len(cols))
			m.runes[i] = make([][]rune, len(cols))
			m.counts[i] = make([]runeCounts, len(cols))
			m.weights[i] = make([]float64, len(cols))
			m.nums[i] = make([]float64, len(cols))
			m.isNum[i] = make([]bool, len(cols))
			m.null[i] = make([]bool, len(cols))
			for k, j := range cols {
				v := rel.Row(i)[j]
				if v.IsNull() {
					m.null[i][k] = true
					continue
				}
				txt := strings.ToLower(v.Text())
				m.texts[i][k] = txt
				m.runes[i][k] = []rune(txt)
				m.counts[i][k], sortBuf = countRunes(m.runes[i][k], sortBuf)
				agg.corpora[k].AddText(txt)
				agg.distinct[k][v.Hash()] = true
				agg.nonNull[k]++
				if f, ok := v.AsFloat(); ok {
					m.nums[i][k] = f
					m.isNum[i][k] = true
					if !agg.haveNum[k] || f < agg.mins[k] {
						agg.mins[k] = f
					}
					if !agg.haveNum[k] || f > agg.maxs[k] {
						agg.maxs[k] = f
					}
					agg.haveNum[k] = true
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	total := newColAgg(len(cols))
	for _, agg := range aggs {
		if agg != nil {
			total.merge(agg)
		}
	}
	for k := range cols {
		if total.haveNum[k] {
			m.ranges[k] = total.maxs[k] - total.mins[k]
		}
	}

	// Pass 2, row-sharded: weights need the complete corpora and
	// distinctness; both are read-only now and each weight cell is
	// written by exactly one shard.
	distinctness := make([]float64, len(cols))
	for k := range cols {
		if total.nonNull[k] > 0 {
			distinctness[k] = float64(len(total.distinct[k])) / float64(total.nonNull[k])
		}
	}
	err = parshard.RangesContext(ctx, workers, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if i%parshard.CancelStride == 0 && parshard.Canceled(ctx) {
				return
			}
			for k := range cols {
				if !m.null[i][k] {
					m.weights[i][k] = identifyingPower(total.corpora[k], m.texts[i][k]) *
						(0.25 + 0.75*distinctness[k])
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if n > 0 {
		var sum float64
		for i := 0; i < n; i++ {
			for k := range cols {
				sum += m.weights[i][k] // zero for NULL cells
			}
		}
		m.avgRowWeight = sum / float64(n)
	}
	return m, nil
}

// countRunes builds the sorted rune histogram of rs, reusing sortBuf
// as sorting scratch (returned for the next call).
func countRunes(rs []rune, sortBuf []rune) (runeCounts, []rune) {
	if len(rs) == 0 {
		return nil, sortBuf
	}
	sortBuf = append(sortBuf[:0], rs...)
	slices.Sort(sortBuf)
	out := make(runeCounts, 0, len(sortBuf))
	for _, r := range sortBuf {
		if len(out) > 0 && out[len(out)-1].r == r {
			out[len(out)-1].n++
		} else {
			out = append(out, runeCount{r: r, n: 1})
		}
	}
	return out, sortBuf
}

// identifyingPower is the mean soft IDF of the value's tokens — rare
// values identify entities, frequent values do not. text is the cell's
// normalized text (tokenization lowercases anyway, so normalized and
// raw text yield identical tokens).
func identifyingPower(c *strsim.Corpus, text string) float64 {
	tokens := strsim.Tokenize(text)
	if len(tokens) == 0 {
		return 0.5
	}
	var sum float64
	for _, t := range tokens {
		sum += c.SoftIDF(t)
	}
	return sum / float64(len(tokens))
}

// similarity is the full measure over the selected attributes:
//
//	sim(a,b) = Σ_matched w·s / (Σ_matched w + Σ_contradicting w)
//
// where an attribute is "matched" when both values are non-null and
// their value similarity s reaches matchCutoff, "contradicting" when
// both are non-null but dissimilar, and skipped entirely when either
// is NULL (missing data has no influence, criterion iv). The weight w
// is the mean identifying power of the two values. sc provides the
// caller-owned scratch buffers for the edit-distance kernel.
func (m *measure) similarity(a, b int, sc *strsim.Scratch) float64 {
	var num, den, evidence float64
	for k := range m.cols {
		if m.null[a][k] || m.null[b][k] {
			continue
		}
		s := m.valueSim(a, b, k, sc)
		w := (m.weights[a][k] + m.weights[b][k]) / 2
		evidence += w
		if s >= matchCutoff {
			num += w * s
			den += w
		} else if !m.cfg.NoContradictionPenalty {
			den += w
		}
	}
	if den == 0 {
		return 0
	}
	return num / den * m.evidenceFactor(evidence)
}

// evidenceFactor scales a pair's similarity by how much evidence was
// actually compared relative to a typical row: a pair sharing only one
// weak attribute (everything else missing) cannot be confidently
// called a duplicate, while missing data otherwise keeps having no
// influence (criterion iv).
func (m *measure) evidenceFactor(evidence float64) float64 {
	need := evidenceFraction * m.avgRowWeight
	if need <= 0 || evidence >= need {
		return 1
	}
	return evidence / need
}

// valueSim compares two non-null values of one attribute: numeric
// distance when both are numeric, edit similarity otherwise
// (criterion ii). The edit similarity is threshold-bounded at
// matchCutoff: values whose similarity cannot reach the cutoff only
// ever act as contradictions, so the dynamic program abandons early
// and returns a canonical below-cutoff value.
func (m *measure) valueSim(a, b, k int, sc *strsim.Scratch) float64 {
	if m.isNum[a][k] && m.isNum[b][k] {
		return m.numericSim(a, b, k)
	}
	return sc.LevenshteinSimBoundedRunes(m.runes[a][k], m.runes[b][k], matchCutoff)
}

func (m *measure) numericSim(a, b, k int) float64 {
	x, y := m.nums[a][k], m.nums[b][k]
	if x == y {
		return 1
	}
	if m.ranges[k] <= 0 {
		return 0
	}
	d := (x - y) / m.ranges[k]
	if d < 0 {
		d = -d
	}
	if d > 1 {
		return 0
	}
	// The curve is sharpened so that only values within a few percent
	// of the attribute's spread count as matches (measurement noise),
	// while moderately different values — which are common between
	// distinct entities of a dense numeric domain — read as
	// contradictions.
	s := 1 - d
	return s * s * s * s
}

// upperBound computes a cheap true upper bound of similarity(a,b):
// numeric similarity is computed exactly (cheap); edit similarity is
// bounded by the rune-multiset intersection, since every edit
// operation fixes at most one character, so
// Levenshtein(x,y) ≥ max(|x|,|y|) − |multiset(x) ∩ multiset(y)| and
// hence LevenshteinSim(x,y) ≤ common/max. Attributes whose bound falls
// below matchCutoff can at best contradict, which only lowers the
// total, so the bound assumes matched attributes score their bound and
// contradicting attributes do not exist.
func (m *measure) upperBound(a, b int) float64 {
	var num, den, evidence float64
	any := false
	for k := range m.cols {
		if m.null[a][k] || m.null[b][k] {
			continue
		}
		any = true
		evidence += (m.weights[a][k] + m.weights[b][k]) / 2
		var bound float64
		if m.isNum[a][k] && m.isNum[b][k] {
			bound = m.numericSim(a, b, k)
		} else {
			bound = editSimBound(len(m.runes[a][k]), len(m.runes[b][k]),
				m.counts[a][k], m.counts[b][k])
		}
		if bound >= matchCutoff {
			w := (m.weights[a][k] + m.weights[b][k]) / 2
			num += w * bound
			den += w
		}
	}
	if !any || den == 0 {
		return 0
	}
	// Optimistic: contradicting attributes contribute nothing to the
	// denominator, so this ratio is ≥ the real similarity. The
	// evidence factor uses the full compared weight, which is ≥ the
	// true similarity's factor input, keeping the bound sound.
	return num / den * m.evidenceFactor(evidence)
}

// editSimBound returns an upper bound of the edit similarity of two
// strings of rune lengths la and lb in O(la+lb): the rune-multiset
// intersection (a sorted two-pointer merge) over the longer length.
func editSimBound(la, lb int, ca, cb runeCounts) float64 {
	max := la
	if lb > max {
		max = lb
	}
	if max == 0 {
		return 1
	}
	common := 0
	i, j := 0, 0
	for i < len(ca) && j < len(cb) {
		switch {
		case ca[i].r < cb[j].r:
			i++
		case ca[i].r > cb[j].r:
			j++
		default:
			if ca[i].n < cb[j].n {
				common += ca[i].n
			} else {
				common += cb[j].n
			}
			i++
			j++
		}
	}
	return float64(common) / float64(max)
}

// --- Union-find -----------------------------------------------------------

type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// clusters returns per-row cluster ids (numbered by first appearance)
// and the member lists.
func (u *unionFind) clusters() ([]int, [][]int) {
	ids := make([]int, len(u.parent))
	var members [][]int
	rootID := map[int]int{}
	for i := range u.parent {
		r := u.find(i)
		id, ok := rootID[r]
		if !ok {
			id = len(members)
			rootID[r] = id
			members = append(members, nil)
		}
		ids[i] = id
		members[id] = append(members[id], i)
	}
	for _, m := range members {
		sort.Ints(m)
	}
	return ids, members
}
