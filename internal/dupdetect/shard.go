package dupdetect

import (
	"runtime"
	"sort"
	"sync"

	"hummer/internal/strsim"
)

// Sharded pair scoring. The candidate stream is cut into fixed-size
// chunks; workers score chunks concurrently, each with its own
// strsim.Scratch and its own Stats / scored-pair buffers; the
// per-chunk results are merged back in chunk order. Because chunk
// boundaries and the within-chunk order are functions of the canonical
// pair order alone, the merged Result is byte-identical to the
// sequential path at any worker count.

// pairChunkSize is the number of candidate pairs per work unit. Large
// enough to amortize channel traffic, small enough to keep all workers
// busy on mid-sized inputs.
const pairChunkSize = 1024

type pairChunk struct {
	idx   int
	pairs [][2]int
}

// shardResult is one chunk's (or the whole sequential run's) scoring
// output.
type shardResult struct {
	idx        int
	stats      Stats
	dups       []ScoredPair
	borderline []ScoredPair
}

// pairScorer scores candidate pairs with private scratch buffers; one
// per worker.
type pairScorer struct {
	m       *measure
	cfg     Config
	scratch strsim.Scratch
}

func (ps *pairScorer) score(a, b int, out *shardResult) {
	out.stats.CandidatePairs++
	if !ps.cfg.DisableFilter && ps.m.upperBound(a, b) < ps.cfg.Threshold {
		out.stats.FilteredOut++
		return
	}
	out.stats.Compared++
	sim := ps.m.similarity(a, b, &ps.scratch)
	switch {
	case sim >= ps.cfg.Threshold:
		out.dups = append(out.dups, ScoredPair{A: a, B: b, Sim: sim})
	case sim >= ps.cfg.Threshold*0.9:
		out.borderline = append(out.borderline, ScoredPair{A: a, B: b, Sim: sim})
	}
}

// scorePairs runs the candidate stream through cfg.Parallelism worker
// goroutines (0 = GOMAXPROCS) and returns the merged, canonically
// ordered scoring output.
func scorePairs(m *measure, cfg Config, gen pairGen) shardResult {
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Tiny inputs fit in a single chunk; the pool would only add
	// scheduling overhead (the result is identical either way).
	if n := len(m.texts); workers > 1 && n*(n-1)/2 <= pairChunkSize {
		workers = 1
	}
	if workers == 1 {
		ps := &pairScorer{m: m, cfg: cfg}
		var out shardResult
		gen(func(a, b int) bool {
			ps.score(a, b, &out)
			return true
		})
		return out
	}

	jobs := make(chan pairChunk, workers)
	results := make(chan shardResult, workers)
	bufPool := sync.Pool{New: func() any {
		buf := make([][2]int, 0, pairChunkSize)
		return &buf
	}}

	// Generator: stream the canonical pair order into chunks.
	go func() {
		defer close(jobs)
		idx := 0
		buf := bufPool.Get().(*[][2]int)
		gen(func(a, b int) bool {
			*buf = append(*buf, [2]int{a, b})
			if len(*buf) == pairChunkSize {
				jobs <- pairChunk{idx: idx, pairs: *buf}
				idx++
				buf = bufPool.Get().(*[][2]int)
				*buf = (*buf)[:0]
			}
			return true
		})
		if len(*buf) > 0 {
			jobs <- pairChunk{idx: idx, pairs: *buf}
		}
	}()

	// Workers: score chunks with per-worker scratch.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ps := &pairScorer{m: m, cfg: cfg}
			for ch := range jobs {
				out := shardResult{idx: ch.idx}
				for _, p := range ch.pairs {
					ps.score(p[0], p[1], &out)
				}
				buf := ch.pairs[:0]
				bufPool.Put(&buf)
				results <- out
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Merge deterministically: chunk order restores the canonical pair
	// order, so Duplicates/Borderline come out exactly as sequential.
	var chunks []shardResult
	for cr := range results {
		chunks = append(chunks, cr)
	}
	sort.Slice(chunks, func(i, j int) bool { return chunks[i].idx < chunks[j].idx })
	var merged shardResult
	for _, cr := range chunks {
		merged.stats.CandidatePairs += cr.stats.CandidatePairs
		merged.stats.FilteredOut += cr.stats.FilteredOut
		merged.stats.Compared += cr.stats.Compared
		merged.dups = append(merged.dups, cr.dups...)
		merged.borderline = append(merged.borderline, cr.borderline...)
	}
	return merged
}
