package dupdetect

import (
	"context"

	"hummer/internal/parshard"
	"hummer/internal/strsim"
)

// Sharded pair scoring, built on the shared parshard worker pool. The
// candidate stream is cut into fixed-size chunks; workers score chunks
// concurrently, each with its own strsim.Scratch and its own Stats /
// scored-pair buffers; the per-chunk results are folded back in chunk
// order. Because chunk boundaries and the within-chunk order are
// functions of the canonical pair order alone, the merged Result is
// byte-identical to the sequential path at any worker count (the
// parshard determinism contract).

// pairChunkSize is the number of candidate pairs per work unit.
const pairChunkSize = parshard.DefaultChunk

// shardResult is one chunk's (or the whole sequential run's) scoring
// output.
type shardResult struct {
	stats      Stats
	dups       []ScoredPair
	borderline []ScoredPair
}

// pairScorer scores candidate pairs with private scratch buffers; one
// per worker.
type pairScorer struct {
	m       *measure
	cfg     Config
	scratch strsim.Scratch
}

func (ps *pairScorer) score(a, b int, out *shardResult) {
	out.stats.CandidatePairs++
	if !ps.cfg.DisableFilter && ps.m.upperBound(a, b) < ps.cfg.Threshold {
		out.stats.FilteredOut++
		return
	}
	out.stats.Compared++
	sim := ps.m.similarity(a, b, &ps.scratch)
	switch {
	case sim >= ps.cfg.Threshold:
		out.dups = append(out.dups, ScoredPair{A: a, B: b, Sim: sim})
	case sim >= ps.cfg.Threshold*0.9:
		out.borderline = append(out.borderline, ScoredPair{A: a, B: b, Sim: sim})
	}
}

// scorePairs runs the candidate stream through cfg.Parallelism worker
// goroutines (0 = GOMAXPROCS) and returns the merged, canonically
// ordered scoring output. ctx is checked at chunk boundaries: a
// cancelled run returns ctx's error with every goroutine — workers and
// the candidate generator — joined, and no partial result.
func scorePairs(ctx context.Context, m *measure, cfg Config, gen pairGen) (shardResult, error) {
	workers := parshard.Workers(cfg.Parallelism)
	// Tiny inputs fit in a single chunk; the pool would only add
	// scheduling overhead (the result is identical either way).
	if n := len(m.texts); workers > 1 && n*(n-1)/2 <= pairChunkSize {
		workers = 1
	}
	return parshard.RunContext(ctx, workers, pairChunkSize,
		parshard.Gen[[2]int](func(yield func([2]int) bool) {
			gen(func(a, b int) bool { return yield([2]int{a, b}) })
		}),
		func() func([2]int, *shardResult) {
			ps := &pairScorer{m: m, cfg: cfg}
			return func(p [2]int, out *shardResult) { ps.score(p[0], p[1], out) }
		},
		func(into *shardResult, chunk shardResult) {
			into.stats.CandidatePairs += chunk.stats.CandidatePairs
			into.stats.FilteredOut += chunk.stats.FilteredOut
			into.stats.Compared += chunk.stats.Compared
			into.dups = append(into.dups, chunk.dups...)
			into.borderline = append(into.borderline, chunk.borderline...)
		})
}
