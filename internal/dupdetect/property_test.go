package dupdetect

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"hummer/internal/relation"
	"hummer/internal/strsim"
	"hummer/internal/value"
)

// randomDirtyTable builds a random table whose rows are noisy copies
// of a random number of base entities, for property testing.
func randomDirtyTable(rng *rand.Rand) *relation.Relation {
	entities := 2 + rng.Intn(10)
	b := relation.NewBuilder("t", "Name", "Code", "Score")
	letters := "abcdefghijklmnopqrstuvwxyz"
	word := func(n int) string {
		out := make([]byte, n)
		for i := range out {
			out[i] = letters[rng.Intn(len(letters))]
		}
		return string(out)
	}
	for e := 0; e < entities; e++ {
		name := word(4+rng.Intn(8)) + " " + word(4+rng.Intn(8))
		code := fmt.Sprintf("%s-%04d", word(2), rng.Intn(10000))
		score := rng.Float64() * 1000
		copies := 1 + rng.Intn(3)
		for c := 0; c < copies; c++ {
			n, cd, sc := name, code, score
			if rng.Float64() < 0.3 {
				runes := []byte(n)
				runes[rng.Intn(len(runes))] = letters[rng.Intn(len(letters))]
				n = string(runes)
			}
			row := relation.Row{value.NewString(n), value.NewString(cd), value.NewFloat(sc)}
			if rng.Float64() < 0.2 {
				row[rng.Intn(3)] = value.Null
			}
			b.Add(row[0], row[1], row[2])
		}
	}
	return b.Build()
}

// TestPropertyFilterSoundRandom: on random dirty tables, the filtered
// and unfiltered runs must produce identical clusterings — the bound
// is sound by construction, this guards regressions.
func TestPropertyFilterSoundRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		rel := randomDirtyTable(rng)
		for _, th := range []float64{0.6, 0.8, 0.95} {
			on, err1 := Detect(rel, Config{Threshold: th})
			off, err2 := Detect(rel, Config{Threshold: th, DisableFilter: true})
			if err1 != nil || err2 != nil {
				t.Fatalf("trial %d: %v / %v", trial, err1, err2)
			}
			for i := range on.ObjectIDs {
				if on.ObjectIDs[i] != off.ObjectIDs[i] {
					t.Fatalf("trial %d th=%.2f: filter changed clustering at row %d\n%s",
						trial, th, i, rel)
				}
			}
		}
	}
}

// TestPropertyClusterInvariants: cluster ids are dense, first-
// appearance ordered, and partition the rows — for random inputs.
func TestPropertyClusterInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 25; trial++ {
		rel := randomDirtyTable(rng)
		res, err := Detect(rel, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.ObjectIDs) != rel.Len() {
			t.Fatalf("trial %d: %d ids for %d rows", trial, len(res.ObjectIDs), rel.Len())
		}
		maxSeen := -1
		for _, id := range res.ObjectIDs {
			if id > maxSeen+1 {
				t.Fatalf("trial %d: ids not dense: %v", trial, res.ObjectIDs)
			}
			if id == maxSeen+1 {
				maxSeen = id
			}
		}
		total := 0
		for _, members := range res.Clusters {
			total += len(members)
		}
		if total != rel.Len() {
			t.Fatalf("trial %d: clusters cover %d of %d rows", trial, total, rel.Len())
		}
	}
}

// TestPropertyThresholdMonotone: raising the threshold can only break
// clusters apart (the duplicate pair set shrinks), never create new
// merges. Cluster count must be non-decreasing in the threshold.
func TestPropertyThresholdMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		rel := randomDirtyTable(rng)
		prev := -1
		for _, th := range []float64{0.5, 0.7, 0.9, 0.99} {
			res, err := Detect(rel, Config{Threshold: th})
			if err != nil {
				t.Fatal(err)
			}
			n := len(res.Clusters)
			if prev >= 0 && n < prev {
				t.Fatalf("trial %d: clusters dropped from %d to %d as threshold rose to %.2f",
					trial, prev, n, th)
			}
			prev = n
		}
	}
}

// TestPropertySimilaritySymmetric: the pair scores must not depend on
// argument order (checked through the duplicate pair lists of a table
// and its row-reversed twin being consistent).
func TestPropertySimilaritySymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		rel := randomDirtyTable(rng)
		cols := make([]int, rel.Schema().Len())
		for i := range cols {
			cols[i] = i
		}
		m, err := newMeasure(context.Background(), rel, cols, Config{Threshold: 0.8})
		if err != nil {
			t.Fatal(err)
		}
		var sc strsim.Scratch
		for a := 0; a < rel.Len(); a++ {
			for b := a + 1; b < rel.Len(); b++ {
				if s1, s2 := m.similarity(a, b, &sc), m.similarity(b, a, &sc); s1 != s2 {
					t.Fatalf("similarity asymmetric: (%d,%d)=%g vs %g", a, b, s1, s2)
				}
			}
		}
	}
}

// TestPropertyUpperBoundDominates: the filter bound must be ≥ the true
// similarity on every random pair — the soundness invariant itself.
func TestPropertyUpperBoundDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		rel := randomDirtyTable(rng)
		cols := make([]int, rel.Schema().Len())
		for i := range cols {
			cols[i] = i
		}
		m, err := newMeasure(context.Background(), rel, cols, Config{Threshold: 0.8})
		if err != nil {
			t.Fatal(err)
		}
		var sc strsim.Scratch
		for a := 0; a < rel.Len(); a++ {
			for b := a + 1; b < rel.Len(); b++ {
				ub := m.upperBound(a, b)
				sim := m.similarity(a, b, &sc)
				if ub < sim-1e-9 {
					t.Fatalf("bound %g < similarity %g for rows %d,%d:\n%v\n%v",
						ub, sim, a, b, rel.Row(a), rel.Row(b))
				}
			}
		}
	}
}
