package dupdetect

import (
	"context"
	"sort"
	"strings"

	"hummer/internal/parshard"
	"hummer/internal/strsim"
)

// Candidate-pair generation. Every strategy is expressed as a pairGen:
// a deterministic stream of (a, b) row-index pairs, a < b, in the
// strategy's canonical order. The detector consumes the stream either
// inline (sequential) or chunked across a worker pool (parallel); the
// canonical order is what makes the two paths produce byte-identical
// results.
//
// Four strategies exist:
//
//   - exhaustive: every pair, row-major — n·(n-1)/2 candidates. The
//     paper's O(n²) default.
//   - sorted neighborhood (Config.Window): rows sorted by a key
//     concatenated from the selected attributes; only rows within the
//     window are paired — ~n·w candidates.
//   - blocking (Config.Blocking): multi-pass prefix blocking. One pass
//     per selected attribute; rows sharing the first Blocking runes of
//     that attribute's normalized value form a block, and all pairs
//     within a block are candidates. A pair found by several passes is
//     emitted once, on its first discovery. Oversized blocks (more
//     than maxBlockRows rows share a prefix) carry almost no
//     discriminating power and are skipped.
//   - q-gram blocking (Config.QGrams): like blocking, but each padded
//     q-gram of the value's normalized prefix is a key, so a typo
//     inside the prefix still leaves agreeing grams — the dumas
//     candidate scheme ported to detection.

// pairGen enumerates candidate pairs in canonical order. It stops
// early when yield returns false.
type pairGen func(yield func(a, b int) bool)

// maxBlockRows caps a single block's size for the blocking strategy: a
// prefix shared by this many rows does not discriminate entities, and
// pairing inside it would reintroduce the quadratic blowup blocking
// exists to avoid.
const maxBlockRows = 1000

// exhaustivePairs streams every pair in row-major order.
func exhaustivePairs(n int) pairGen {
	return func(yield func(a, b int) bool) {
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if !yield(a, b) {
					return
				}
			}
		}
	}
}

// sortKeys builds the sorted-neighborhood sorting key of every row
// from the measure's normalized-text cache (one ToLower per cell,
// already paid by the measure). ctx is polled every CancelStride rows;
// on cancellation the pass bails with partial keys — safe, because the
// scoring run re-checks ctx on entry and discards everything.
func (m *measure) sortKeys(ctx context.Context) []string {
	n := len(m.texts)
	keys := make([]string, n)
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i%parshard.CancelStride == 0 && parshard.Canceled(ctx) {
			return keys
		}
		b.Reset()
		for k := range m.cols {
			if !m.null[i][k] {
				b.WriteString(m.texts[i][k])
				b.WriteByte(' ')
			}
		}
		keys[i] = b.String()
	}
	return keys
}

// windowPairs streams the sorted-neighborhood pairs: rows ordered by
// key, every pair within `window` positions, in (position, distance)
// order with a < b.
func windowPairs(keys []string, window int) pairGen {
	n := len(keys)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return keys[order[x]] < keys[order[y]] })
	return func(yield func(a, b int) bool) {
		for pos := 0; pos < n; pos++ {
			for d := 1; d <= window && pos+d < n; d++ {
				a, b := order[pos], order[pos+d]
				if a > b {
					a, b = b, a
				}
				if !yield(a, b) {
					return
				}
			}
		}
	}
}

// blockStats counts what the key-based strategies threw away. The
// generator writes it while streaming; Detect folds it into the
// Result's Stats only after the scoring run has joined the generator
// goroutine, so no synchronization is needed.
type blockStats struct {
	// skipped counts oversized blocks (more than maxBlockRows rows
	// sharing one key) that were not paired.
	skipped int
	// skippedRows is the total membership of those blocks.
	skippedRows int
}

// multiPassBlocks is the shared multi-pass block-emission machinery
// behind the key-based blocking strategies. keysOf returns the
// blocking keys of row i under selected attribute k (nil or empty
// keys are skipped; NULL cells are already filtered by the caller's
// keysOf). Passes run in selected-attribute order; within a pass,
// blocks run in sorted key order and pairs in row order. Oversized
// blocks (more than maxBlockRows members) carry almost no
// discriminating power and are skipped — counted in st rather than
// dropped silently. The seen set deduplicates across keys and passes,
// so each pair is yielded exactly once, deterministically.
func multiPassBlocks(m *measure, st *blockStats, keysOf func(i, k int) []string) pairGen {
	n := len(m.texts)
	return func(yield func(a, b int) bool) {
		seen := make(map[uint64]struct{})
		for k := range m.cols {
			blocks := make(map[string][]int)
			for i := 0; i < n; i++ {
				if m.null[i][k] {
					continue
				}
				for _, key := range keysOf(i, k) {
					if key == "" {
						continue
					}
					blocks[key] = append(blocks[key], i)
				}
			}
			keys := make([]string, 0, len(blocks))
			for key := range blocks {
				keys = append(keys, key)
			}
			sort.Strings(keys)
			for _, key := range keys {
				rows := blocks[key]
				if len(rows) > maxBlockRows {
					st.skipped++
					st.skippedRows += len(rows)
					continue
				}
				if len(rows) < 2 {
					continue
				}
				for x := 0; x < len(rows); x++ {
					for y := x + 1; y < len(rows); y++ {
						a, b := rows[x], rows[y]
						id := uint64(a)<<32 | uint64(b)
						if _, dup := seen[id]; dup {
							continue
						}
						seen[id] = struct{}{}
						if !yield(a, b) {
							return
						}
					}
				}
			}
		}
	}
}

// blockingPairs streams the multi-pass prefix-blocking pairs: one key
// per cell, the first prefixLen runes of the normalized value. buf is
// reused across cells — multiPassBlocks consumes the keys before the
// next keysOf call.
func blockingPairs(m *measure, st *blockStats, prefixLen int) pairGen {
	var buf [1]string
	return multiPassBlocks(m, st, func(i, k int) []string {
		key := runePrefix(m.runes[i][k], prefixLen)
		if key == "" {
			return nil
		}
		buf[0] = key
		return buf[:]
	})
}

// runePrefix returns the first p runes of rs as a string (the whole
// value when shorter).
func runePrefix(rs []rune, p int) string {
	if len(rs) <= p {
		return string(rs)
	}
	return string(rs[:p])
}

// qgramPrefixRunes is how much of an attribute value the q-gram
// blocking strategy derives its keys from — the same horizon the
// dumas scheme uses: long enough to cover the identifying head of the
// value, short enough that keys stay discriminating.
const qgramPrefixRunes = 10

// qgramPairs streams the multi-pass q-gram blocking pairs — the dumas
// candidate scheme ported to single-relation detection: every padded
// q-gram of the value's normalized prefix is a blocking key. Unlike
// plain prefix blocking, a typo inside the prefix leaves the value's
// other grams intact, so the pair is still discovered through an
// agreeing gram. Empty (non-null) values yield no keys: their grams
// would be pure padding, herding every empty cell of an attribute
// into one meaningless block.
func qgramPairs(m *measure, st *blockStats, q int) pairGen {
	return multiPassBlocks(m, st, func(i, k int) []string {
		if len(m.runes[i][k]) == 0 {
			return nil
		}
		return dedupSortedStrings(strsim.QGrams(runePrefix(m.runes[i][k], qgramPrefixRunes), q))
	})
}

// dedupSortedStrings returns the sorted distinct strings of s,
// reordering s in place.
func dedupSortedStrings(s []string) []string {
	if len(s) <= 1 {
		return s
	}
	sort.Strings(s)
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// candidateGen selects the strategy for cfg over the measured
// relation and returns the generator plus the block counters it will
// fill while streaming (always zero for the non-blocking strategies).
// Config validation has already rejected conflicting settings. ctx
// bounds the eager sort-key materialization of the Window strategy.
func candidateGen(ctx context.Context, m *measure, cfg Config) (pairGen, *blockStats) {
	st := &blockStats{}
	switch {
	case cfg.Window > 0:
		return windowPairs(m.sortKeys(ctx), cfg.Window), st
	case cfg.Blocking > 0:
		return blockingPairs(m, st, cfg.Blocking), st
	case cfg.QGrams > 0:
		return qgramPairs(m, st, cfg.QGrams), st
	default:
		return exhaustivePairs(len(m.texts)), st
	}
}
