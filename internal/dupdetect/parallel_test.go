package dupdetect

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hummer/internal/relation"
)

// requireIdentical asserts two detection results are deep-equal —
// clusters, duplicate and borderline pair order, stats, everything.
func requireIdentical(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: results differ\nwant: %+v\ngot:  %+v", label, want, got)
	}
}

// TestPropertyParallelDeterministic: for random dirty tables and every
// candidate strategy, Detect with Parallelism ∈ {2, 8} must return a
// Result byte-identical to the sequential path (Parallelism = 1) —
// parallelism is a wall-clock knob, never a semantics knob.
func TestPropertyParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 15; trial++ {
		rel := randomDirtyTable(rng)
		configs := []Config{
			{Threshold: 0.8},
			{Threshold: 0.7, Window: 3},
			{Threshold: 0.8, Blocking: 2},
			{Threshold: 0.8, QGrams: 3},
			{Threshold: 0.8, DisableFilter: true},
		}
		for ci, base := range configs {
			base.Parallelism = 1
			seq, err := Detect(rel, base)
			if err != nil {
				t.Fatalf("trial %d cfg %d: %v", trial, ci, err)
			}
			for _, p := range []int{2, 8} {
				cfg := base
				cfg.Parallelism = p
				par, err := Detect(rel, cfg)
				if err != nil {
					t.Fatalf("trial %d cfg %d p=%d: %v", trial, ci, p, err)
				}
				requireIdentical(t, fmt.Sprintf("trial %d cfg %d p=%d", trial, ci, p), seq, par)
			}
		}
	}
}

// TestParallelDeterministicLargerThanChunk forces the chunked path
// (more candidate pairs than one chunk) so the cross-chunk merge order
// is actually exercised.
func TestParallelDeterministicLargerThanChunk(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	rel := randomDirtyTable(rng)
	for rel.Len()*(rel.Len()-1)/2 <= 3*pairChunkSize {
		bigger := randomDirtyTable(rng)
		for i := 0; i < bigger.Len(); i++ {
			rel.MustAppend(bigger.Row(i))
		}
	}
	seq, err := Detect(rel, Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Stats.CandidatePairs <= 3*pairChunkSize {
		t.Fatalf("workload too small to span chunks: %d pairs", seq.Stats.CandidatePairs)
	}
	for _, p := range []int{2, 4, 8} {
		par, err := Detect(rel, Config{Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, fmt.Sprintf("p=%d", p), seq, par)
	}
}

// TestShardedMeasureDeterministic forces a table large enough to
// engage the row-sharded measure precomputation (n >= 128) and checks
// the full Result — whose similarities depend on the sharded corpus,
// distinctness and numeric-range aggregation — stays byte-identical
// across worker counts.
func TestShardedMeasureDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rel := randomDirtyTable(rng)
	for rel.Len() < 2*measureShardMinRows {
		more := randomDirtyTable(rng)
		for i := 0; i < more.Len(); i++ {
			rel.MustAppend(more.Row(i))
		}
	}
	seq, err := Detect(rel, Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 3, 7} {
		par, err := Detect(rel, Config{Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, fmt.Sprintf("p=%d", p), seq, par)
	}
}

// TestDefaultParallelismMatchesSequential: Parallelism = 0 (GOMAXPROCS
// workers, the pipeline default) must equal the sequential result too.
func TestDefaultParallelismMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 5; trial++ {
		rel := randomDirtyTable(rng)
		seq, err := Detect(rel, Config{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		auto, err := Detect(rel, Config{})
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, fmt.Sprintf("trial %d", trial), seq, auto)
	}
}

// TestBlockingFindsPrefixSharingDuplicates: typo pairs that agree on
// the prefix of at least one selected attribute must still be found
// under blocking.
func TestBlockingFindsPrefixSharingDuplicates(t *testing.T) {
	res, err := Detect(dirtyPeople(), Config{Blocking: 3})
	if err != nil {
		t.Fatal(err)
	}
	ids := res.ObjectIDs
	if ids[0] != ids[1] {
		t.Errorf("rows 0,1 (typo pair, shared prefixes) not clustered: %v", ids)
	}
	if ids[2] != ids[3] || ids[3] != ids[4] {
		t.Errorf("rows 2,3,4 (Maria) not clustered: %v", ids)
	}
	if ids[5] == ids[0] || ids[6] == ids[5] {
		t.Errorf("singletons wrongly merged: %v", ids)
	}
}

// TestBlockingReducesCandidates: blocking must consider strictly fewer
// pairs than exhaustive on a table with diverse prefixes.
func TestBlockingReducesCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rel := randomDirtyTable(rng)
	ex, err := Detect(rel, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bl, err := Detect(rel, Config{Blocking: 4})
	if err != nil {
		t.Fatal(err)
	}
	if bl.Stats.CandidatePairs >= ex.Stats.CandidatePairs {
		t.Errorf("blocking considered %d pairs, exhaustive %d",
			bl.Stats.CandidatePairs, ex.Stats.CandidatePairs)
	}
	if bl.Stats.CandidatePairs == 0 {
		t.Error("blocking produced no candidates at all")
	}
}

// TestBlockingNoDuplicateCandidates: a pair sharing prefixes on several
// attributes must still be counted once (cross-pass dedup).
func TestBlockingNoDuplicateCandidates(t *testing.T) {
	res, err := Detect(dirtyPeople(), Config{Blocking: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := 7
	if res.Stats.CandidatePairs > n*(n-1)/2 {
		t.Errorf("%d candidates exceed the %d distinct pairs", res.Stats.CandidatePairs, n*(n-1)/2)
	}
}

// TestWindowAndBlockingExclusive: setting several strategies is a
// configuration error, not a silent precedence choice.
func TestWindowAndBlockingExclusive(t *testing.T) {
	for _, cfg := range []Config{
		{Window: 3, Blocking: 3},
		{Window: 3, QGrams: 3},
		{Blocking: 3, QGrams: 3},
		{Window: 3, Blocking: 3, QGrams: 3},
	} {
		if _, err := Detect(dirtyPeople(), cfg); err == nil {
			t.Fatalf("%+v accepted; want mutual-exclusion error", cfg)
		}
	}
}

// dirtyPrefixPeople holds a duplicate pair whose every attribute has a
// typo in the very first character — the worst case for prefix
// blocking, which keys on leading runes.
func dirtyPrefixPeople() *relation.Relation {
	return relation.NewBuilder("merged", "sourceID", "Name", "City", "Email").
		AddText("s1", "Katherine Johnson", "Pasadena", "kath@example.com").
		AddText("s2", "Xatherine Johnson", "Qasadena", "xath@example.com").
		AddText("s1", "Dorothy Vaughan", "Hampton", "dot@example.org").
		AddText("s2", "Mary Jackson", "Newport", "mary@example.net").
		AddText("s1", "Annie Easley", "Cleveland", "annie@example.com").
		Build()
}

// TestQGramsRecallSurvivesDirtyPrefixes is the strategy-recall test
// for the ported dumas q-gram key scheme: when every attribute of a
// duplicate pair carries a first-character typo, plain prefix
// blocking generates no candidate for the pair at all, while q-gram
// blocking still discovers it through the agreeing interior grams —
// and clusters it exactly like the exhaustive reference.
func TestQGramsRecallSurvivesDirtyPrefixes(t *testing.T) {
	rel := dirtyPrefixPeople()

	ex, err := Detect(rel, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.ObjectIDs[0] != ex.ObjectIDs[1] {
		t.Fatalf("fixture invalid: exhaustive detection must cluster the typo pair: %v", ex.ObjectIDs)
	}

	pb, err := Detect(rel, Config{Blocking: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pb.ObjectIDs[0] == pb.ObjectIDs[1] {
		t.Fatal("prefix blocking unexpectedly found the dirty-prefix pair; fixture no longer distinguishes the strategies")
	}

	qg, err := Detect(rel, Config{QGrams: 3})
	if err != nil {
		t.Fatal(err)
	}
	if qg.ObjectIDs[0] != qg.ObjectIDs[1] {
		t.Errorf("q-gram blocking missed the dirty-prefix pair: %v", qg.ObjectIDs)
	}
	if !reflect.DeepEqual(qg.ObjectIDs, ex.ObjectIDs) {
		t.Errorf("q-gram clustering differs from exhaustive:\nqgrams:     %v\nexhaustive: %v",
			qg.ObjectIDs, ex.ObjectIDs)
	}
}

// TestQGramsReducesCandidates: q-gram blocking must consider fewer
// pairs than the exhaustive sweep on a diverse table while still
// producing candidates.
func TestQGramsReducesCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rel := randomDirtyTable(rng)
	ex, err := Detect(rel, Config{})
	if err != nil {
		t.Fatal(err)
	}
	qg, err := Detect(rel, Config{QGrams: 4})
	if err != nil {
		t.Fatal(err)
	}
	if qg.Stats.CandidatePairs >= ex.Stats.CandidatePairs {
		t.Errorf("q-grams considered %d pairs, exhaustive %d",
			qg.Stats.CandidatePairs, ex.Stats.CandidatePairs)
	}
	if qg.Stats.CandidatePairs == 0 {
		t.Error("q-grams produced no candidates at all")
	}
	n := rel.Len()
	if qg.Stats.CandidatePairs > n*(n-1)/2 {
		t.Errorf("%d candidates exceed the %d distinct pairs (cross-gram dedup broken)",
			qg.Stats.CandidatePairs, n*(n-1)/2)
	}
}
