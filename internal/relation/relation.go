// Package relation implements in-memory relations (tables): a schema
// plus a list of rows of values. Relations are the unit of exchange
// between HumMer's pipeline phases.
package relation

import (
	"fmt"
	"sort"
	"strings"

	"hummer/internal/schema"
	"hummer/internal/value"
)

// Row is one tuple. Its length always equals the owning relation's
// schema length.
type Row []value.Value

// Clone returns a copy of the row.
func (r Row) Clone() Row { return append(Row(nil), r...) }

// Equal reports whether two rows are value-wise equal.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Hash combines the value hashes of the row.
func (r Row) Hash() uint64 {
	h := uint64(1469598103934665603)
	for _, v := range r {
		h = (h ^ v.Hash()) * 1099511628211
	}
	return h
}

// Relation is an in-memory table. Rows are stored in insertion order.
type Relation struct {
	name   string
	schema *schema.Schema
	rows   []Row
}

// New creates an empty relation with the given name and schema.
func New(name string, s *schema.Schema) *Relation {
	return &Relation{name: name, schema: s}
}

// Name returns the relation's name (usually the source alias).
func (r *Relation) Name() string { return r.name }

// SetName renames the relation.
func (r *Relation) SetName(n string) { r.name = n }

// Schema returns the relation's schema.
func (r *Relation) Schema() *schema.Schema { return r.schema }

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.rows) }

// Row returns the i-th row. The returned slice must not be mutated.
func (r *Relation) Row(i int) Row { return r.rows[i] }

// Rows returns the underlying row slice. Callers must not mutate it.
func (r *Relation) Rows() []Row { return r.rows }

// Append adds a row. It returns an error when the arity does not match
// the schema.
func (r *Relation) Append(row Row) error {
	if len(row) != r.schema.Len() {
		return fmt.Errorf("relation %s: row arity %d does not match schema arity %d",
			r.name, len(row), r.schema.Len())
	}
	r.rows = append(r.rows, row)
	return nil
}

// MustAppend is Append that panics on arity mismatch. Use in tests and
// generators where arity is statically correct.
func (r *Relation) MustAppend(row Row) {
	if err := r.Append(row); err != nil {
		panic(err)
	}
}

// AppendText parses each cell with value.Parse and appends the row.
func (r *Relation) AppendText(cells ...string) error {
	row := make(Row, len(cells))
	for i, c := range cells {
		row[i] = value.Parse(c)
	}
	return r.Append(row)
}

// Value returns the cell at row i, column named col.
func (r *Relation) Value(i int, col string) value.Value {
	return r.rows[i][r.schema.MustLookup(col)]
}

// Clone performs a deep copy of the relation (rows are copied; values
// are immutable so cells are shared).
func (r *Relation) Clone() *Relation {
	c := New(r.name, r.schema)
	c.rows = make([]Row, len(r.rows))
	for i, row := range r.rows {
		c.rows[i] = row.Clone()
	}
	return c
}

// WithSchema returns a shallow relation view with a replacement schema
// of identical arity (used after renaming columns).
func (r *Relation) WithSchema(s *schema.Schema) (*Relation, error) {
	if s.Len() != r.schema.Len() {
		return nil, fmt.Errorf("relation %s: schema arity %d != %d", r.name, s.Len(), r.schema.Len())
	}
	return &Relation{name: r.name, schema: s, rows: r.rows}, nil
}

// Sort orders rows by the named columns ascending, using value.Compare.
// The sort is stable.
func (r *Relation) Sort(cols ...string) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = r.schema.MustLookup(c)
	}
	sort.SliceStable(r.rows, func(a, b int) bool {
		for _, j := range idx {
			if c := r.rows[a][j].Compare(r.rows[b][j]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// String renders the relation as an aligned text table, handy for demos
// and golden tests.
func (r *Relation) String() string {
	names := r.schema.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, len(r.rows))
	for i, row := range r.rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			s := v.String()
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%d rows]\n", r.name, len(r.rows))
	writeRow := func(vals []string) {
		for j, s := range vals {
			if j > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[j], s)
		}
		b.WriteByte('\n')
	}
	writeRow(names)
	for j, w := range widths {
		if j > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

// Builder offers fluent construction of relations for tests, examples
// and generators.
type Builder struct {
	rel *Relation
	err error
}

// NewBuilder starts a builder for a relation with untyped columns.
func NewBuilder(name string, cols ...string) *Builder {
	return &Builder{rel: New(name, schema.FromNames(cols...))}
}

// Typed starts a builder over an explicit schema.
func Typed(name string, s *schema.Schema) *Builder {
	return &Builder{rel: New(name, s)}
}

// Add appends a row of already-typed values.
func (b *Builder) Add(vals ...value.Value) *Builder {
	if b.err == nil {
		b.err = b.rel.Append(Row(vals))
	}
	return b
}

// AddText appends a row parsed from raw strings.
func (b *Builder) AddText(cells ...string) *Builder {
	if b.err == nil {
		b.err = b.rel.AppendText(cells...)
	}
	return b
}

// Build returns the relation, panicking if any append failed; builders
// are used in code where arity is static.
func (b *Builder) Build() *Relation {
	if b.err != nil {
		panic(b.err)
	}
	return b.rel
}
