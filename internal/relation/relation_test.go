package relation

import (
	"strings"
	"testing"
	"testing/quick"

	"hummer/internal/schema"
	"hummer/internal/value"
)

func sample() *Relation {
	return NewBuilder("people", "Name", "Age").
		AddText("Alice", "30").
		AddText("Bob", "25").
		AddText("Carol", "").
		Build()
}

func TestBuilderAndAccessors(t *testing.T) {
	r := sample()
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if got := r.Value(0, "Name"); !got.Equal(value.NewString("Alice")) {
		t.Errorf("Value(0,Name) = %v", got)
	}
	if got := r.Value(1, "age"); !got.Equal(value.NewInt(25)) {
		t.Errorf("Value(1,age) = %v (lookup must be case-insensitive)", got)
	}
	if !r.Value(2, "Age").IsNull() {
		t.Error("empty cell must parse to NULL")
	}
}

func TestAppendArityMismatch(t *testing.T) {
	r := New("t", schema.FromNames("a", "b"))
	if err := r.Append(Row{value.NewInt(1)}); err == nil {
		t.Error("arity mismatch must error")
	}
	if err := r.AppendText("1", "2", "3"); err == nil {
		t.Error("text arity mismatch must error")
	}
	if err := r.AppendText("1", "2"); err != nil {
		t.Errorf("valid append failed: %v", err)
	}
}

func TestMustAppendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("t", schema.FromNames("a")).MustAppend(Row{})
}

func TestRowEqualAndHash(t *testing.T) {
	a := Row{value.NewInt(1), value.NewString("x")}
	b := Row{value.NewFloat(1.0), value.NewString("x")}
	c := Row{value.NewInt(2), value.NewString("x")}
	if !a.Equal(b) {
		t.Error("rows with cross-numeric equal cells must be equal")
	}
	if a.Hash() != b.Hash() {
		t.Error("equal rows must hash identically")
	}
	if a.Equal(c) {
		t.Error("different rows must not be equal")
	}
	if a.Equal(Row{value.NewInt(1)}) {
		t.Error("different arity rows must not be equal")
	}
}

func TestRowHashQuick(t *testing.T) {
	err := quick.Check(func(a int64, s string) bool {
		r1 := Row{value.NewInt(a), value.NewString(s)}
		r2 := Row{value.NewInt(a), value.NewString(s)}
		return r1.Hash() == r2.Hash()
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := sample()
	c := r.Clone()
	c.Rows()[0][0] = value.NewString("Mallory")
	if r.Value(0, "Name").Text() == "Mallory" {
		t.Error("Clone must not share row storage")
	}
}

func TestWithSchema(t *testing.T) {
	r := sample()
	s2 := schema.FromNames("FullName", "Years")
	v, err := r.WithSchema(s2)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Value(0, "FullName"); got.Text() != "Alice" {
		t.Errorf("renamed view Value = %v", got)
	}
	if _, err := r.WithSchema(schema.FromNames("only")); err == nil {
		t.Error("arity mismatch must error")
	}
}

func TestSort(t *testing.T) {
	r := sample()
	r.Sort("Age")
	// NULL sorts first, then 25, then 30.
	if !r.Value(0, "Age").IsNull() {
		t.Errorf("row 0 age = %v, want NULL first", r.Value(0, "Age"))
	}
	if got := r.Value(1, "Name").Text(); got != "Bob" {
		t.Errorf("row 1 = %q, want Bob", got)
	}
	if got := r.Value(2, "Name").Text(); got != "Alice" {
		t.Errorf("row 2 = %q, want Alice", got)
	}
}

func TestSortMultiColumnStable(t *testing.T) {
	r := NewBuilder("t", "g", "v").
		AddText("b", "1").
		AddText("a", "2").
		AddText("a", "1").
		AddText("b", "0").
		Build()
	r.Sort("g", "v")
	want := [][2]string{{"a", "1"}, {"a", "2"}, {"b", "0"}, {"b", "1"}}
	for i, w := range want {
		if r.Value(i, "g").Text() != w[0] || r.Value(i, "v").Text() != w[1] {
			t.Errorf("row %d = (%s,%s), want (%s,%s)", i,
				r.Value(i, "g").Text(), r.Value(i, "v").Text(), w[0], w[1])
		}
	}
}

func TestStringRendering(t *testing.T) {
	s := sample().String()
	if !strings.Contains(s, "people [3 rows]") {
		t.Errorf("missing header in:\n%s", s)
	}
	if !strings.Contains(s, "Alice") || !strings.Contains(s, "NULL") {
		t.Errorf("missing cells in:\n%s", s)
	}
}

func TestBuilderPanicsOnBadArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from Build after bad Add")
		}
	}()
	NewBuilder("t", "a", "b").AddText("only-one").Build()
}

func TestTypedBuilder(t *testing.T) {
	s := schema.New(
		schema.Column{Name: "id", Type: value.KindInt},
		schema.Column{Name: "name", Type: value.KindString},
	)
	r := Typed("t", s).Add(value.NewInt(1), value.NewString("x")).Build()
	if r.Len() != 1 || r.Schema() != s {
		t.Error("typed builder failed")
	}
}
