// Package fault is hummerd's fault-containment substrate: the typed
// error a recovered panic becomes, the recovery helpers every
// goroutine boundary uses, and the process-wide count of panics
// contained.
//
// # The containment contract
//
// A long-lived query service must treat a panic the way it treats any
// other per-query failure: one bad query degrades one query, never the
// process. Every goroutine the query pipeline starts — parshard
// workers and generators, the streaming-Rows producer, qcache
// singleflight leaders, HTTP handlers — recovers at its boundary and
// converts the panic into an *InternalError carrying the recovered
// value and the stack captured at the recovery point. The query fails
// with that error; the process, the DB and every concurrent query are
// untouched, and the next identical query must produce the
// byte-identical result of an unfaulted run.
//
// Containment composes: a panic contained deep in a worker pool
// surfaces as an InternalError return, and if an upper layer re-panics
// it (parshard.Run has no error return), the next boundary re-recovers
// the *same* InternalError without double-wrapping or double-counting.
package fault

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// InternalError is a recovered panic in typed form: proof that fault
// containment fired, carrying everything a postmortem needs. It is the
// error a query fails with when any of its goroutines panicked; hummerd
// maps it to HTTP 500 (or an "error" NDJSON trailer mid-stream).
type InternalError struct {
	// Site names the goroutine boundary that recovered the panic,
	// e.g. "parshard.worker" or "qcache.leader.compute".
	Site string
	// Recovered is the value the panic carried.
	Recovered any
	// Stack is the goroutine stack captured at the recovery point —
	// the panic site is near its top.
	Stack []byte
}

// Error renders the site and the panic value; the stack is kept for
// logs, not the message (error strings reach API clients).
func (e *InternalError) Error() string {
	return fmt.Sprintf("internal error: panic at %s: %v", e.Site, e.Recovered)
}

// Unwrap exposes the panic value when it was itself an error, so
// errors.Is/As see through the containment (e.g. an injected fault).
func (e *InternalError) Unwrap() error {
	if err, ok := e.Recovered.(error); ok {
		return err
	}
	return nil
}

// recovered counts panics converted to InternalErrors process-wide —
// the hummer_panics_recovered_total metric. Process-global on purpose:
// containment fires in layers that know nothing about servers or DBs,
// and a monotone counter needs no scoping to be useful.
var recovered atomic.Uint64

// Recovered returns the number of panics contained so far.
func Recovered() uint64 { return recovered.Load() }

// NewInternal converts a recovered panic value into an *InternalError,
// counting it. A value that already is an *InternalError (a contained
// panic re-thrown across a boundary without an error return) passes
// through unchanged — one fault, one error, one count.
func NewInternal(site string, r any) *InternalError {
	if ie, ok := r.(*InternalError); ok {
		return ie
	}
	recovered.Add(1)
	return &InternalError{Site: site, Recovered: r, Stack: debug.Stack()}
}

// Capture is the deferred recovery helper for functions with an error
// return:
//
//	func work() (err error) {
//	    defer fault.Capture("mypkg.work", &err)
//	    ...
//	}
//
// A panic is converted to an *InternalError stored in *errp (replacing
// any error already there — the panic is the more urgent truth); a
// normal return leaves *errp alone.
func Capture(site string, errp *error) {
	if r := recover(); r != nil {
		*errp = NewInternal(site, r)
	}
}
