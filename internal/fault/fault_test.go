package fault

import (
	"errors"
	"strings"
	"testing"
)

func TestCaptureConvertsPanic(t *testing.T) {
	before := Recovered()
	err := func() (err error) {
		defer Capture("test.site", &err)
		panic("boom")
	}()
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InternalError", err, err)
	}
	if ie.Site != "test.site" {
		t.Errorf("Site = %q, want test.site", ie.Site)
	}
	if ie.Recovered != "boom" {
		t.Errorf("Recovered = %v, want boom", ie.Recovered)
	}
	if !strings.Contains(string(ie.Stack), "fault_test.go") {
		t.Errorf("stack does not mention the panic site:\n%s", ie.Stack)
	}
	if got := Recovered() - before; got != 1 {
		t.Errorf("Recovered advanced by %d, want 1", got)
	}
	if msg := ie.Error(); !strings.Contains(msg, "test.site") || !strings.Contains(msg, "boom") {
		t.Errorf("Error() = %q, want site and value", msg)
	}
}

func TestCaptureLeavesNormalReturnAlone(t *testing.T) {
	sentinel := errors.New("ordinary failure")
	err := func() (err error) {
		defer Capture("test.site", &err)
		return sentinel
	}()
	if err != sentinel {
		t.Fatalf("err = %v, want the sentinel untouched", err)
	}
}

// TestReThrownInternalErrorNotDoubleWrapped: a contained panic
// re-thrown across a boundary without an error return (parshard.Run)
// must pass through the next recovery unchanged and uncounted.
func TestReThrownInternalErrorNotDoubleWrapped(t *testing.T) {
	inner := func() (err error) {
		defer Capture("inner.site", &err)
		panic("deep boom")
	}()
	before := Recovered()
	outer := func() (err error) {
		defer Capture("outer.site", &err)
		panic(inner) // re-throw the contained error, as Run does
	}()
	if got := Recovered() - before; got != 0 {
		t.Errorf("re-containment counted %d new panics, want 0", got)
	}
	var ie *InternalError
	if !errors.As(outer, &ie) {
		t.Fatalf("outer = %v (%T), want *InternalError", outer, outer)
	}
	if ie.Site != "inner.site" {
		t.Errorf("Site = %q, want the original inner.site", ie.Site)
	}
	if ie != inner {
		t.Errorf("outer error is a new wrapper, want the identical inner error")
	}
}

// TestUnwrapExposesErrorPanics: errors.Is sees through containment
// when the panic value was itself an error.
func TestUnwrapExposesErrorPanics(t *testing.T) {
	sentinel := errors.New("panicked error")
	err := func() (err error) {
		defer Capture("test.site", &err)
		panic(sentinel)
	}()
	if !errors.Is(err, sentinel) {
		t.Errorf("errors.Is(%v, sentinel) = false, want true", err)
	}

	err = func() (err error) {
		defer Capture("test.site", &err)
		panic(42) // non-error panic value: Unwrap returns nil
	}()
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatal("want *InternalError")
	}
	if ie.Unwrap() != nil {
		t.Errorf("Unwrap() = %v for a non-error panic value, want nil", ie.Unwrap())
	}
}
