// Package faultinject is hummerd's deterministic fault-injection
// harness: named fault points compiled into the query pipeline that
// are free when disarmed (one atomic load) and, when armed, inject
// panics, errors and delays on a deterministic, seed-driven schedule.
//
// # Fault points
//
// A fault point is a named call site:
//
//	if err := faultinject.Hit(faultinject.SiteQCacheLeader); err != nil {
//	    return err
//	}
//
// Disarmed (the default, and the only production state), Hit returns
// nil after a single atomic load. Armed, each hit increments the
// site's counter and consults the schedule: the decision for hit n of
// site s is a pure function of (plan, s, n), so a run with a fixed
// plan makes the same injection decisions at the same per-site hit
// counts every time — concurrency may interleave *which* goroutine
// draws hit n, but never what hit n does.
//
// # Schedules
//
// A Plan combines explicit per-site Rules (first match wins: fire
// Kind on every Every-th hit after After, at most Times times) with a
// seeded background Rate applied to sites no rule matches: hit n of
// site s fires iff hash(Seed, s, n) falls under Rate, choosing the
// kind from the same hash. Panics carry a *PanicValue; errors are
// *InjectedError (a genuine error, deliberately distinct from context
// cancellation so cache singleflight and error classification treat it
// like any real failure); delays sleep and return nil.
//
// # Arming
//
// Tests arm via Arm/Disarm. Operators arm a whole process via the
// HUMMER_FAULTS environment variable (parsed by ArmFromEnv, called by
// hummerd at startup), e.g.:
//
//	HUMMER_FAULTS="seed=42,rate=0.01;qcache.leader.compute:panic:every=3;server.query:error:every=5:times=2"
//
// Specs are ';'-separated. A spec without a site prefix sets the
// global seeded schedule ("seed=N", "rate=F", "delay=D",
// "kinds=panic+error+delay"); a "site:kind[:every=N][:after=N]
// [:times=N][:delay=D]" spec adds a Rule (site may end in '*' for a
// prefix match).
package faultinject

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The registered fault points. Every name here is a live Hit call in
// the pipeline; the chaos suite asserts each of them fires.
const (
	// SiteParshardWorker fires inside worker-pool chunk processing
	// (both the parallel workers and the single-worker inline path).
	SiteParshardWorker = "parshard.worker"
	// SiteParshardGenerator fires in the canonical-order generator
	// goroutine feeding the worker pool.
	SiteParshardGenerator = "parshard.generator"
	// SiteParshardRange fires per contiguous shard of RangesContext.
	SiteParshardRange = "parshard.range"
	// SiteQCacheLeader fires inside a singleflight leader's compute,
	// with waiters attached — the cache-poisoning hazard zone.
	SiteQCacheLeader = "qcache.leader.compute"
	// SiteCoreMatch and SiteCoreDetect fire at the pipeline's schema-
	// matching and duplicate-detection phase boundaries.
	SiteCoreMatch  = "core.match"
	SiteCoreDetect = "core.detect"
	// SiteEngineMaterialize fires at the engine's row-stride poll while
	// draining an operator tree.
	SiteEngineMaterialize = "engine.materialize"
	// SitePlanQuery fires at the top of every statement execution.
	SitePlanQuery = "plan.query"
	// SitePlanStream fires in the streaming-Rows producer goroutine.
	SitePlanStream = "plan.stream.produce"
	// SiteServerQuery, SiteServerStream and SiteServerBatch fire inside
	// the corresponding HTTP handlers, after admission.
	SiteServerQuery  = "server.query"
	SiteServerStream = "server.stream"
	SiteServerBatch  = "server.batch"
)

// Sites lists every registered fault point, sorted — the chaos suite's
// coverage checklist.
func Sites() []string {
	s := []string{
		SiteParshardWorker, SiteParshardGenerator, SiteParshardRange,
		SiteQCacheLeader, SiteCoreMatch, SiteCoreDetect,
		SiteEngineMaterialize, SitePlanQuery, SitePlanStream,
		SiteServerQuery, SiteServerStream, SiteServerBatch,
	}
	sort.Strings(s)
	return s
}

// Kind is what an armed fault point does when its schedule fires.
type Kind uint8

const (
	// Error makes Hit return an *InjectedError.
	Error Kind = iota
	// Panic makes Hit panic with a *PanicValue.
	Panic
	// Delay makes Hit sleep for the scheduled duration, then return
	// nil — the latency-chaos kind.
	Delay
)

func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// defaultDelay is the sleep of a Delay fault with no explicit
// duration: long enough to reorder goroutines, short enough that a
// chaos run stays fast.
const defaultDelay = time.Millisecond

// InjectedError is the error an Error-kind fault returns. It is a
// plain, genuine error on purpose: cache singleflight must propagate
// it to waiters (not re-elect, as it would for a cancellation) and the
// server must classify it like any compute failure.
type InjectedError struct {
	// Site is the fault point that fired; Hit is its per-site hit
	// counter value at the time.
	Site string
	Hit  uint64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected error at %s (hit %d)", e.Site, e.Hit)
}

// PanicValue is the value a Panic-kind fault panics with, so recovery
// layers and tests can tell an injected panic from a genuine bug.
type PanicValue struct {
	Site string
	Hit  uint64
}

func (p *PanicValue) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s (hit %d)", p.Site, p.Hit)
}

// Rule schedules one kind of fault at one site (or site prefix).
type Rule struct {
	// Site is the fault point the rule matches: an exact name, or a
	// prefix ending in '*' ("parshard.*").
	Site string
	// Kind is what happens when the rule fires.
	Kind Kind
	// Every fires the rule on hits After+1, After+1+Every, … of the
	// site. 0 behaves like 1 (every hit after After).
	Every uint64
	// After skips the site's first After hits.
	After uint64
	// Times caps how often the rule fires (0 = unlimited).
	Times uint64
	// Delay is the sleep duration for Kind == Delay (defaultDelay when
	// zero).
	Delay time.Duration
}

// Plan is a complete injection schedule: explicit rules first, then a
// seeded background rate for every other site.
type Plan struct {
	// Seed drives the background schedule's hash. Two runs with equal
	// plans make identical decisions at identical per-site hit counts.
	Seed uint64
	// Rate is the background firing probability per hit (0 disables
	// the background schedule; rules still apply).
	Rate float64
	// Kinds is the kind set the background schedule draws from
	// (default: Error, Panic, Delay).
	Kinds []Kind
	// Delay is the background schedule's sleep duration (defaultDelay
	// when zero).
	Delay time.Duration
	// Rules are consulted in order; the first site match wins.
	Rules []Rule
}

// state is one armed plan plus its per-site counters.
type state struct {
	plan      Plan
	mu        sync.Mutex
	hits      map[string]uint64
	fired     map[string]uint64
	ruleFired []uint64
}

var current atomic.Pointer[state]

// Armed reports whether fault injection is active.
func Armed() bool { return current.Load() != nil }

// Arm installs the plan, resetting all counters. The plan is copied;
// later mutations of p are invisible.
func Arm(p *Plan) {
	st := &state{
		plan:      *p,
		hits:      make(map[string]uint64),
		fired:     make(map[string]uint64),
		ruleFired: make([]uint64, len(p.Rules)),
	}
	st.plan.Rules = append([]Rule(nil), p.Rules...)
	st.plan.Kinds = append([]Kind(nil), p.Kinds...)
	current.Store(st)
}

// Disarm deactivates fault injection; every Hit is a no-op again.
func Disarm() { current.Store(nil) }

// Hits snapshots the per-site hit counters (nil when disarmed).
func Hits() map[string]uint64 { return snapshot(func(st *state) map[string]uint64 { return st.hits }) }

// Fired snapshots the per-site fire counters (nil when disarmed) —
// how many injections each site actually performed.
func Fired() map[string]uint64 {
	return snapshot(func(st *state) map[string]uint64 { return st.fired })
}

func snapshot(pick func(*state) map[string]uint64) map[string]uint64 {
	st := current.Load()
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]uint64, len(pick(st)))
	for k, v := range pick(st) {
		out[k] = v
	}
	return out
}

// Hit marks the named fault point. Disarmed it returns nil after one
// atomic load. Armed it advances the site's hit counter and, when the
// schedule fires, panics (Panic), sleeps (Delay) or returns an
// *InjectedError (Error).
func Hit(site string) error {
	st := current.Load()
	if st == nil {
		return nil
	}
	return st.hit(site)
}

func (st *state) hit(site string) error {
	st.mu.Lock()
	st.hits[site]++
	n := st.hits[site]
	kind, delay, fire := st.decideLocked(site, n)
	if fire {
		st.fired[site]++
	}
	st.mu.Unlock()
	if !fire {
		return nil
	}
	switch kind {
	case Panic:
		panic(&PanicValue{Site: site, Hit: n})
	case Delay:
		time.Sleep(delay)
		return nil
	default:
		return &InjectedError{Site: site, Hit: n}
	}
}

// decideLocked is the pure scheduling function: what does hit n of
// site do under the armed plan?
func (st *state) decideLocked(site string, n uint64) (Kind, time.Duration, bool) {
	for i := range st.plan.Rules {
		r := &st.plan.Rules[i]
		if !matchSite(r.Site, site) {
			continue
		}
		if n <= r.After {
			return 0, 0, false
		}
		every := r.Every
		if every == 0 {
			every = 1
		}
		if (n-r.After-1)%every != 0 {
			return 0, 0, false
		}
		if r.Times > 0 && st.ruleFired[i] >= r.Times {
			return 0, 0, false
		}
		st.ruleFired[i]++
		d := r.Delay
		if d <= 0 {
			d = defaultDelay
		}
		return r.Kind, d, true
	}
	if st.plan.Rate <= 0 {
		return 0, 0, false
	}
	h := mix(st.plan.Seed, site, n)
	if float64(h%1_000_000) >= st.plan.Rate*1e6 {
		return 0, 0, false
	}
	kinds := st.plan.Kinds
	if len(kinds) == 0 {
		kinds = []Kind{Error, Panic, Delay}
	}
	kind := kinds[(h/1_000_000)%uint64(len(kinds))]
	d := st.plan.Delay
	if d <= 0 {
		d = defaultDelay
	}
	return kind, d, true
}

// matchSite reports whether pattern (exact, or prefix ending in '*')
// matches site.
func matchSite(pattern, site string) bool {
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(site, pattern[:len(pattern)-1])
	}
	return pattern == site
}

// mix hashes (seed, site, n) into the decision space.
func mix(seed uint64, site string, n uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(seed)
	h.Write([]byte(site))
	put(n)
	return h.Sum64()
}

// EnvVar is the environment variable ArmFromEnv reads.
const EnvVar = "HUMMER_FAULTS"

// ArmFromEnv parses spec (typically os.Getenv(EnvVar)) and arms the
// resulting plan. An empty spec leaves injection disarmed and returns
// (false, nil); a malformed spec returns an error without arming.
func ArmFromEnv(spec string) (bool, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return false, nil
	}
	p, err := ParsePlan(spec)
	if err != nil {
		return false, err
	}
	Arm(p)
	return true, nil
}

// ParsePlan parses the HUMMER_FAULTS syntax documented in the package
// comment.
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, ":") {
			if err := parseGlobals(p, part); err != nil {
				return nil, err
			}
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		p.Rules = append(p.Rules, r)
	}
	return p, nil
}

func parseGlobals(p *Plan, part string) error {
	for _, kv := range strings.Split(part, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("faultinject: global setting %q is not key=value", kv)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return fmt.Errorf("faultinject: seed %q: %v", val, err)
			}
			p.Seed = n
		case "rate":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return fmt.Errorf("faultinject: rate %q: want a probability in [0, 1]", val)
			}
			p.Rate = f
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil {
				return fmt.Errorf("faultinject: delay %q: %v", val, err)
			}
			p.Delay = d
		case "kinds":
			for _, name := range strings.Split(val, "+") {
				k, err := parseKind(name)
				if err != nil {
					return err
				}
				p.Kinds = append(p.Kinds, k)
			}
		default:
			return fmt.Errorf("faultinject: unknown global setting %q", key)
		}
	}
	return nil
}

func parseRule(part string) (Rule, error) {
	fields := strings.Split(part, ":")
	if len(fields) < 2 {
		return Rule{}, fmt.Errorf("faultinject: rule %q: want site:kind[:opt=val...]", part)
	}
	kind, err := parseKind(fields[1])
	if err != nil {
		return Rule{}, err
	}
	r := Rule{Site: fields[0], Kind: kind}
	for _, opt := range fields[2:] {
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return Rule{}, fmt.Errorf("faultinject: rule option %q is not key=value", opt)
		}
		switch key {
		case "every", "after", "times":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Rule{}, fmt.Errorf("faultinject: rule option %s=%q: %v", key, val, err)
			}
			switch key {
			case "every":
				r.Every = n
			case "after":
				r.After = n
			case "times":
				r.Times = n
			}
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil {
				return Rule{}, fmt.Errorf("faultinject: rule delay %q: %v", val, err)
			}
			r.Delay = d
		default:
			return Rule{}, fmt.Errorf("faultinject: unknown rule option %q", key)
		}
	}
	return r, nil
}

func parseKind(name string) (Kind, error) {
	switch strings.TrimSpace(name) {
	case "error":
		return Error, nil
	case "panic":
		return Panic, nil
	case "delay":
		return Delay, nil
	default:
		return 0, fmt.Errorf("faultinject: unknown fault kind %q (want panic, error or delay)", name)
	}
}
