package faultinject

import (
	"errors"
	"testing"
	"time"
)

// arm installs a plan and disarms at cleanup so tests never leak an
// armed schedule into the rest of the suite.
func arm(t *testing.T, p *Plan) {
	t.Helper()
	Arm(p)
	t.Cleanup(Disarm)
}

func TestDisarmedHitIsNil(t *testing.T) {
	Disarm()
	if err := Hit(SiteQCacheLeader); err != nil {
		t.Fatalf("disarmed Hit = %v, want nil", err)
	}
	if Armed() {
		t.Fatal("Armed() = true after Disarm")
	}
	if Hits() != nil || Fired() != nil {
		t.Fatal("disarmed snapshots should be nil")
	}
}

func TestRuleEveryAfterTimes(t *testing.T) {
	arm(t, &Plan{Rules: []Rule{
		{Site: "s", Kind: Error, Every: 3, After: 2, Times: 2},
	}})
	// Hits 1,2 skipped (after=2); fires at 3, 6; then capped by times=2.
	var fired []int
	for i := 1; i <= 12; i++ {
		if err := Hit("s"); err != nil {
			fired = append(fired, i)
			var ie *InjectedError
			if !errors.As(err, &ie) {
				t.Fatalf("hit %d: err = %T, want *InjectedError", i, err)
			}
			if ie.Site != "s" || ie.Hit != uint64(i) {
				t.Errorf("hit %d: got site=%q hit=%d", i, ie.Site, ie.Hit)
			}
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 6 {
		t.Fatalf("fired at %v, want [3 6]", fired)
	}
	if got := Fired()["s"]; got != 2 {
		t.Errorf("Fired[s] = %d, want 2", got)
	}
	if got := Hits()["s"]; got != 12 {
		t.Errorf("Hits[s] = %d, want 12", got)
	}
}

func TestRulePanicKind(t *testing.T) {
	arm(t, &Plan{Rules: []Rule{{Site: "p", Kind: Panic}}})
	defer func() {
		r := recover()
		pv, ok := r.(*PanicValue)
		if !ok {
			t.Fatalf("recovered %v (%T), want *PanicValue", r, r)
		}
		if pv.Site != "p" || pv.Hit != 1 {
			t.Errorf("PanicValue = %+v, want site p hit 1", pv)
		}
	}()
	Hit("p")
	t.Fatal("Hit did not panic")
}

func TestRuleDelayKind(t *testing.T) {
	arm(t, &Plan{Rules: []Rule{{Site: "d", Kind: Delay, Delay: 20 * time.Millisecond}}})
	start := time.Now()
	if err := Hit("d"); err != nil {
		t.Fatalf("delay Hit = %v, want nil", err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("delay hit returned after %v, want >= 20ms", elapsed)
	}
}

func TestPrefixMatch(t *testing.T) {
	arm(t, &Plan{Rules: []Rule{{Site: "parshard.*", Kind: Error}}})
	if err := Hit(SiteParshardWorker); err == nil {
		t.Error("parshard.worker should match parshard.*")
	}
	if err := Hit(SiteQCacheLeader); err != nil {
		t.Errorf("qcache site matched parshard.* rule: %v", err)
	}
}

func TestFirstMatchWins(t *testing.T) {
	arm(t, &Plan{Rules: []Rule{
		{Site: "s", Kind: Delay, Delay: time.Microsecond},
		{Site: "s", Kind: Error},
	}})
	// The delay rule shadows the error rule entirely.
	for i := 0; i < 5; i++ {
		if err := Hit("s"); err != nil {
			t.Fatalf("hit %d: %v — second rule fired despite first match", i, err)
		}
	}
}

// TestSeededScheduleDeterministic: two runs with the same plan make
// identical decisions at identical hit counts.
func TestSeededScheduleDeterministic(t *testing.T) {
	run := func() []int {
		arm(t, &Plan{Seed: 42, Rate: 0.3, Kinds: []Kind{Error}})
		var fired []int
		for i := 1; i <= 200; i++ {
			if err := Hit("det.site"); err != nil {
				fired = append(fired, i)
			}
		}
		Disarm()
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("rate 0.3 over 200 hits fired nothing; schedule broken")
	}
	if len(a) != len(b) {
		t.Fatalf("runs fired %d vs %d times", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at index %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestSeedChangesSchedule: a different seed yields a different
// schedule (overwhelmingly likely over 200 draws).
func TestSeedChangesSchedule(t *testing.T) {
	collect := func(seed uint64) map[int]bool {
		arm(t, &Plan{Seed: seed, Rate: 0.3, Kinds: []Kind{Error}})
		fired := make(map[int]bool)
		for i := 1; i <= 200; i++ {
			if err := Hit("seed.site"); err != nil {
				fired[i] = true
			}
		}
		Disarm()
		return fired
	}
	a, b := collect(1), collect(2)
	same := true
	for i := range a {
		if !b[i] {
			same = false
		}
	}
	if same && len(a) == len(b) {
		t.Error("seeds 1 and 2 produced identical schedules")
	}
}

func TestArmResetsCounters(t *testing.T) {
	arm(t, &Plan{Rules: []Rule{{Site: "s", Kind: Error, Every: 2}}})
	Hit("s") // fires (hit 1)
	Arm(&Plan{Rules: []Rule{{Site: "s", Kind: Error, Every: 2}}})
	if got := Hits()["s"]; got != 0 {
		t.Errorf("Hits[s] = %d after re-arm, want 0", got)
	}
	if err := Hit("s"); err == nil {
		t.Error("hit 1 after re-arm should fire again")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=42,rate=0.25,delay=5ms,kinds=panic+error; qcache.leader.compute:panic:every=3:after=1:times=2 ; parshard.*:delay:delay=2ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.Rate != 0.25 || p.Delay != 5*time.Millisecond {
		t.Errorf("globals = seed=%d rate=%v delay=%v", p.Seed, p.Rate, p.Delay)
	}
	if len(p.Kinds) != 2 || p.Kinds[0] != Panic || p.Kinds[1] != Error {
		t.Errorf("Kinds = %v", p.Kinds)
	}
	if len(p.Rules) != 2 {
		t.Fatalf("Rules = %+v, want 2", p.Rules)
	}
	r := p.Rules[0]
	if r.Site != SiteQCacheLeader || r.Kind != Panic || r.Every != 3 || r.After != 1 || r.Times != 2 {
		t.Errorf("rule 0 = %+v", r)
	}
	r = p.Rules[1]
	if r.Site != "parshard.*" || r.Kind != Delay || r.Delay != 2*time.Millisecond {
		t.Errorf("rule 1 = %+v", r)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"rate=2",              // out of range
		"seed=abc",            // not a number
		"bogus=1",             // unknown global
		"site:teleport",       // unknown kind
		"site:panic:every=x",  // bad option value
		"site:panic:bogus=1",  // unknown option
		"site:panic:every",    // option without value
		"kinds=panic+explode", // unknown kind in global
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) succeeded, want error", spec)
		}
	}
}

func TestArmFromEnv(t *testing.T) {
	t.Cleanup(Disarm)
	armed, err := ArmFromEnv("")
	if armed || err != nil {
		t.Fatalf("empty spec: armed=%v err=%v, want false, nil", armed, err)
	}
	armed, err = ArmFromEnv("rate=bogus")
	if armed || err == nil {
		t.Fatalf("malformed spec: armed=%v err=%v, want false, error", armed, err)
	}
	if Armed() {
		t.Fatal("malformed spec armed injection")
	}
	armed, err = ArmFromEnv("seed=7,rate=0.5")
	if !armed || err != nil {
		t.Fatalf("valid spec: armed=%v err=%v, want true, nil", armed, err)
	}
	if !Armed() {
		t.Fatal("valid spec did not arm")
	}
}

func TestSitesSortedAndComplete(t *testing.T) {
	sites := Sites()
	if len(sites) != 12 {
		t.Fatalf("Sites() has %d entries, want 12: %v", len(sites), sites)
	}
	for i := 1; i < len(sites); i++ {
		if sites[i-1] >= sites[i] {
			t.Fatalf("Sites() not sorted at %d: %v", i, sites)
		}
	}
}
