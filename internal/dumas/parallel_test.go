package dumas

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"hummer/internal/relation"
)

// randomPair builds two random relations sharing noisy copies of some
// entities, for property-testing the matcher.
func randomPair(rng *rand.Rand) (*relation.Relation, *relation.Relation) {
	letters := "abcdefghijklmnopqrstuvwxyz"
	word := func(n int) string {
		out := make([]byte, n)
		for i := range out {
			out[i] = letters[rng.Intn(len(letters))]
		}
		return string(out)
	}
	entities := 4 + rng.Intn(12)
	type ent struct{ name, city, code string }
	ents := make([]ent, entities)
	for e := range ents {
		ents[e] = ent{
			name: word(4+rng.Intn(6)) + " " + word(4+rng.Intn(6)),
			city: word(5 + rng.Intn(4)),
			code: fmt.Sprintf("%s-%03d", word(2), rng.Intn(1000)),
		}
	}
	typo := func(s string) string {
		if rng.Float64() < 0.3 && len(s) > 1 {
			b := []byte(s)
			b[rng.Intn(len(b))] = letters[rng.Intn(len(letters))]
			return string(b)
		}
		return s
	}
	lb := relation.NewBuilder("l", "Name", "City", "Code")
	rb := relation.NewBuilder("r", "Person", "Town", "Id")
	for e, en := range ents {
		if e%3 != 0 {
			lb.AddText(en.name, en.city, en.code)
		}
		if e%4 != 1 {
			rb.AddText(typo(en.name), typo(en.city), en.code)
		}
	}
	return lb.Build(), rb.Build()
}

// requireIdentical asserts two match results are deep-equal —
// correspondences, duplicates, matrix, stats, everything, down to the
// float bits.
func requireIdentical(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: results differ\nwant: %+v\ngot:  %+v", label, want, got)
	}
}

// TestPropertyParallelDeterministic: for random relation pairs and
// every candidate strategy, Match with Parallelism ∈ {2, 3, 7,
// GOMAXPROCS} must return a Result byte-identical to the sequential
// path (Parallelism = 1) — parallelism is a wall-clock knob, never a
// semantics knob.
func TestPropertyParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	counts := []int{2, 3, 7, runtime.GOMAXPROCS(0)}
	for trial := 0; trial < 10; trial++ {
		left, right := randomPair(rng)
		configs := []Config{
			{},
			{Window: 4},
			{QGrams: 3},
			{MaxDuplicates: 3, MinTupleSim: 0.05},
		}
		for ci, base := range configs {
			base.Parallelism = 1
			seq, err := Match(left, right, base)
			if err != nil {
				t.Fatalf("trial %d cfg %d: %v", trial, ci, err)
			}
			for _, p := range counts {
				cfg := base
				cfg.Parallelism = p
				par, err := Match(left, right, cfg)
				if err != nil {
					t.Fatalf("trial %d cfg %d p=%d: %v", trial, ci, p, err)
				}
				requireIdentical(t, fmt.Sprintf("trial %d cfg %d p=%d", trial, ci, p), seq, par)
			}
		}
	}
}

// TestParallelDeterministicLargeInput forces an input big enough to
// engage every sharded phase — precomputation (≥ precomputeMinRows
// rows), chunked pair scoring (> pairChunk candidates) — and checks
// byte-identity across worker counts. A shared organization column
// gives every cross pair a common token, so the token index proposes
// all nl·nr candidates.
func TestParallelDeterministicLargeInput(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lb := relation.NewBuilder("l", "Name", "City", "Org")
	rb := relation.NewBuilder("r", "Person", "Town", "Employer")
	letters := "abcdefghijklmnopqrstuvwxyz"
	word := func(n int) string {
		out := make([]byte, n)
		for i := range out {
			out[i] = letters[rng.Intn(len(letters))]
		}
		return string(out)
	}
	for i := 0; i < 70; i++ {
		name := word(5) + " " + word(6)
		lb.AddText(name, word(6), "acme corporation")
		rb.AddText(name, word(6), "acme corporation")
	}
	left, right := lb.Build(), rb.Build()
	if left.Len()+right.Len() < precomputeMinRows {
		t.Fatalf("workload too small to engage sharded precompute: %d+%d rows",
			left.Len(), right.Len())
	}
	seq, err := Match(left, right, Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Stats.CandidatePairs <= pairChunk {
		t.Fatalf("workload too small to span chunks: %d candidates", seq.Stats.CandidatePairs)
	}
	for _, p := range []int{2, 4, 8} {
		par, err := Match(left, right, Config{Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, fmt.Sprintf("p=%d", p), seq, par)
	}
}

// TestDefaultParallelismMatchesSequential: Parallelism = 0 (GOMAXPROCS
// workers, the pipeline default) must equal the sequential result too.
func TestDefaultParallelismMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 5; trial++ {
		left, right := randomPair(rng)
		seq, err := Match(left, right, Config{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		auto, err := Match(left, right, Config{})
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, fmt.Sprintf("trial %d", trial), seq, auto)
	}
}

// TestWindowAndQGramsExclusive: setting both strategies is a
// configuration error, not a silent precedence choice.
func TestWindowAndQGramsExclusive(t *testing.T) {
	left, right := randomPair(rand.New(rand.NewSource(1)))
	if _, err := Match(left, right, Config{Window: 3, QGrams: 3}); err == nil {
		t.Fatal("Window+QGrams accepted; want error")
	}
}

// dupSet projects the discovered duplicates to comparable (L,R) keys.
func dupSet(dups []TuplePair) map[[2]int]bool {
	out := map[[2]int]bool{}
	for _, d := range dups {
		out[[2]int{d.LeftRow, d.RightRow}] = true
	}
	return out
}

// TestCandidateStrategyRecall: on seeded data with shared entities,
// sorted neighborhood (with a generous window) and q-gram blocking
// must discover exactly the duplicates the full-recall token index
// finds — the pruning strategies only drop hopeless pairs here.
func TestCandidateStrategyRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	left, right := randomPair(rng)
	full, err := Match(left, right, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Duplicates) == 0 {
		t.Fatal("seeded data produced no duplicates at all")
	}
	want := dupSet(full.Duplicates)
	for _, tc := range []struct {
		label string
		cfg   Config
	}{
		{"window", Config{Window: left.Len() + right.Len()}},
		{"qgrams", Config{QGrams: 3}},
	} {
		res, err := Match(left, right, tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		got := dupSet(res.Duplicates)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: top duplicates differ from exhaustive\nwant %v\ngot  %v",
				tc.label, want, got)
		}
	}
}

// TestQGramsPrunesCandidates: with discriminating sort-key prefixes,
// q-gram blocking must consider strictly fewer pairs than the token
// index on data whose tuples share common trailing vocabulary (the
// token index pairs everything through the shared department tokens;
// blocking only pairs tuples whose leading value shares a gram).
func TestQGramsPrunesCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	letters := "abcdefghijklmnopqrstuvwxyz"
	word := func(n int) string {
		out := make([]byte, n)
		for i := range out {
			out[i] = letters[rng.Intn(len(letters))]
		}
		return string(out)
	}
	lb := relation.NewBuilder("l", "Name", "Dept")
	rb := relation.NewBuilder("r", "Person", "Unit")
	for i := 0; i < 40; i++ {
		name := word(10)
		lb.AddText(name, "shared department label")
		rb.AddText(name, "shared department label")
	}
	left, right := lb.Build(), rb.Build()
	full, err := Match(left, right, Config{})
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := Match(left, right, Config{QGrams: 4})
	if err != nil {
		t.Fatal(err)
	}
	if blocked.Stats.CandidatePairs >= full.Stats.CandidatePairs {
		t.Errorf("q-gram blocking considered %d pairs, token index %d",
			blocked.Stats.CandidatePairs, full.Stats.CandidatePairs)
	}
	if blocked.Stats.CandidatePairs == 0 {
		t.Error("q-gram blocking produced no candidates at all")
	}
}
