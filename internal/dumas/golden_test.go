package dumas

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hummer/internal/datagen"
)

// Run `go test ./internal/dumas -run TestGolden -update` after an
// intentional matching change to regenerate the golden file; the diff
// then documents exactly how the correspondences moved.
var update = flag.Bool("update", false, "rewrite the golden files")

// goldenCase is the serialized end-to-end output for one configuration:
// correspondences and discovered duplicates, scores rounded so the
// file survives harmless float drift while still catching real
// matching regressions.
type goldenCase struct {
	Label           string   `json:"label"`
	Correspondences []string `json:"correspondences"`
	Duplicates      []string `json:"duplicates"`
	CandidatePairs  int      `json:"candidate_pairs"`
}

func goldenSnapshot(t *testing.T, label string, res *Result) goldenCase {
	t.Helper()
	g := goldenCase{Label: label, CandidatePairs: res.Stats.CandidatePairs}
	for _, c := range res.Correspondences {
		g.Correspondences = append(g.Correspondences,
			fmt.Sprintf("%s=%s@%.4f", c.LeftCol, c.RightCol, c.Score))
	}
	for _, d := range res.Duplicates {
		g.Duplicates = append(g.Duplicates,
			fmt.Sprintf("L%d~R%d@%.4f", d.LeftRow, d.RightRow, d.Sim))
	}
	return g
}

// TestGoldenMatch pins the full DUMAS pipeline — datagen workload,
// duplicate discovery, field-matrix averaging, assignment, pruning —
// against checked-in expectations, so schema-matching regressions show
// up as a reviewable testdata diff instead of a silent quality drop.
func TestGoldenMatch(t *testing.T) {
	const seed = 2005
	ents := datagen.Persons.Generate(seed, 60)
	renames := map[string]string{
		"Name": "FullName", "Age": "Years", "City": "Town",
		"Email": "Mail", "Phone": "Telephone",
	}
	left := datagen.ObserveShuffled(datagen.Persons, ents, datagen.SourceSpec{
		Alias: "s1", Coverage: 0.8, TypoRate: 0.1, NullRate: 0.05, Seed: seed + 1,
	})
	right := datagen.ObserveShuffled(datagen.Persons, ents, datagen.SourceSpec{
		Alias: "s2", Renames: renames, Coverage: 0.8, TypoRate: 0.1, NullRate: 0.05, Seed: seed + 2,
	})

	var got []goldenCase
	for _, tc := range []struct {
		label string
		cfg   Config
	}{
		{"default", Config{}},
		{"window8", Config{Window: 8}},
		{"qgrams3", Config{QGrams: 3}},
		{"k3", Config{MaxDuplicates: 3}},
	} {
		res, err := Match(left.Rel, right.Rel, tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		got = append(got, goldenSnapshot(t, tc.label, res))
	}

	path := filepath.Join("testdata", "match_golden.json")
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file %s: %v", path, err)
	}
	if !reflect.DeepEqual(want, got) {
		gotJSON, _ := json.MarshalIndent(got, "", "  ")
		t.Errorf("end-to-end match output drifted from %s.\n"+
			"If the change is intentional, re-run with -update and review the diff.\ngot:\n%s",
			path, gotJSON)
	}
}
