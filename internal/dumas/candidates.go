package dumas

import (
	"sort"
	"strings"

	"hummer/internal/strsim"
)

// Cross-relation candidate-pair generation for the duplicate-discovery
// step. Every strategy is a pairGen: a deterministic stream of
// (leftRow, rightRow) pairs in the strategy's canonical order. The
// scorer consumes the stream either inline (sequential) or chunked
// across the parshard worker pool; the canonical order is what makes
// the two paths produce byte-identical results.
//
// Three strategies exist:
//
//   - token index (the default): an inverted token index over the
//     right tuples; each left tuple is paired with every right tuple
//     sharing at least one token. Pairs sharing no token have TFIDF
//     cosine 0 and can never reach MinTupleSim > 0, so this is
//     exhaustive in recall while skipping the hopeless pairs — the
//     "efficient" part of DUMAS.
//   - sorted neighborhood (Config.Window): left and right tuples are
//     merged into one list ordered by their whole-tuple sort key
//     (lowercased tupleText); only cross-relation entries within the
//     window are paired — ~(n+m)·w candidates.
//   - q-gram prefix blocking (Config.QGrams): blocking keys are the
//     padded q-grams of the first qgramPrefixRunes runes of the sort
//     key. Tuples sharing any key are candidates, so a typo inside the
//     prefix still leaves the other grams agreeing — recall survives
//     dirty prefixes that defeat plain prefix blocking.

// pairGen enumerates candidate (left, right) pairs in canonical order.
// It stops early when yield returns false.
type pairGen func(yield func(li, ri int) bool)

// qgramPrefixRunes is how much of the sort key the q-gram blocking
// strategy derives its keys from: long enough to cover the leading
// attribute, short enough that blocks stay discriminating.
const qgramPrefixRunes = 10

// maxQGramBlock caps a posting list's size for the q-gram strategy: a
// gram shared by this many tuples does not discriminate entities, and
// pairing through it would reintroduce the quadratic blowup blocking
// exists to avoid.
const maxQGramBlock = 1000

// tokenIndexPairs streams, for each left row in ascending order, the
// ascending right rows sharing at least one token with it.
func tokenIndexPairs(leftTokens, rightTokens [][]string) pairGen {
	index := map[string][]int{}
	for ri, toks := range rightTokens {
		for _, t := range dedupSorted(toks) {
			index[t] = append(index[t], ri)
		}
	}
	return probeIndexPairs(leftTokens, len(rightTokens), index, 0, func(toks []string) []string {
		return dedupSorted(toks)
	})
}

// qgramPairs streams, for each left row in ascending order, the
// ascending right rows sharing at least one q-gram of the sort-key
// prefix. Oversized posting lists are skipped on both sides.
func qgramPairs(leftKeys, rightKeys []string, q int) pairGen {
	grams := func(key string) []string {
		return dedupSorted(strsim.QGrams(runePrefix(key, qgramPrefixRunes), q))
	}
	index := map[string][]int{}
	for ri, key := range rightKeys {
		for _, g := range grams(key) {
			index[g] = append(index[g], ri)
		}
	}
	keyed := make([][]string, len(leftKeys))
	for li, key := range leftKeys {
		keyed[li] = grams(key)
	}
	return probeIndexPairs(keyed, len(rightKeys), index, maxQGramBlock, func(ks []string) []string {
		return ks
	})
}

// probeIndexPairs is the shared inverted-index probe: for each left
// row ascending, collect the distinct right rows from the posting
// lists of its keys (lists longer than maxPosting are skipped when
// maxPosting > 0), sort them ascending and yield. A stamp array makes
// the per-row dedup allocation-free.
func probeIndexPairs(leftKeyed [][]string, nRight int, index map[string][]int, maxPosting int, keysOf func([]string) []string) pairGen {
	return func(yield func(li, ri int) bool) {
		stamp := make([]int, nRight)
		for i := range stamp {
			stamp[i] = -1
		}
		var cands []int
		for li, raw := range leftKeyed {
			cands = cands[:0]
			for _, k := range keysOf(raw) {
				list := index[k]
				if maxPosting > 0 && len(list) > maxPosting {
					continue
				}
				for _, ri := range list {
					if stamp[ri] != li {
						stamp[ri] = li
						cands = append(cands, ri)
					}
				}
			}
			sort.Ints(cands)
			for _, ri := range cands {
				if !yield(li, ri) {
					return
				}
			}
		}
	}
}

// snEntry is one tuple in the combined sorted-neighborhood order.
type snEntry struct {
	key  string
	side uint8 // 0 = left, 1 = right
	row  int
}

// windowPairs streams the cross-relation sorted-neighborhood pairs:
// left and right tuples merged and ordered by sort key, every
// cross-side pair within `window` positions, in (position, distance)
// order.
func windowPairs(leftKeys, rightKeys []string, window int) pairGen {
	entries := make([]snEntry, 0, len(leftKeys)+len(rightKeys))
	for i, k := range leftKeys {
		entries = append(entries, snEntry{key: k, side: 0, row: i})
	}
	for i, k := range rightKeys {
		entries = append(entries, snEntry{key: k, side: 1, row: i})
	}
	sort.Slice(entries, func(x, y int) bool {
		if entries[x].key != entries[y].key {
			return entries[x].key < entries[y].key
		}
		if entries[x].side != entries[y].side {
			return entries[x].side < entries[y].side
		}
		return entries[x].row < entries[y].row
	})
	return func(yield func(li, ri int) bool) {
		for pos := range entries {
			for d := 1; d <= window && pos+d < len(entries); d++ {
				a, b := entries[pos], entries[pos+d]
				if a.side == b.side {
					continue
				}
				if a.side == 1 {
					a, b = b, a
				}
				if !yield(a.row, b.row) {
					return
				}
			}
		}
	}
}

// dedupSorted returns the sorted distinct strings of s (s is not
// modified).
func dedupSorted(s []string) []string {
	if len(s) <= 1 {
		return s
	}
	out := append([]string(nil), s...)
	sort.Strings(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[i-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// runePrefix returns the first p runes of s (the whole string when
// shorter).
func runePrefix(s string, p int) string {
	n := 0
	for i := range s {
		if n == p {
			return s[:i]
		}
		n++
	}
	return s
}

// sortKey renders a tuple's sorted-neighborhood / blocking key: the
// lowercased whole-tuple text.
func sortKey(text string) string { return strings.ToLower(text) }

// candidateGen selects the strategy for cfg. Config validation has
// already rejected conflicting settings; keys are only materialized
// when a key-based strategy needs them.
func candidateGen(cfg Config, leftTokens, rightTokens [][]string, leftKeys, rightKeys func() []string) pairGen {
	switch {
	case cfg.Window > 0:
		return windowPairs(leftKeys(), rightKeys(), cfg.Window)
	case cfg.QGrams > 0:
		return qgramPairs(leftKeys(), rightKeys(), cfg.QGrams)
	default:
		return tokenIndexPairs(leftTokens, rightTokens)
	}
}
