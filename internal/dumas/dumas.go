// Package dumas implements the DUMAS duplicate-based schema matching
// algorithm (Bilke & Naumann, ICDE 2005) as used by HumMer's first
// pipeline phase.
//
// The algorithm exploits the presence of duplicates across unaligned
// tables: it first finds a few likely duplicate tuple pairs by treating
// each tuple as a single string and ranking cross-table pairs with
// TFIDF cosine similarity; it then compares each duplicate pair
// field-wise with SoftTFIDF, averages the resulting per-pair similarity
// matrices, computes a maximum-weight bipartite matching over the
// averaged matrix, and prunes correspondences below a threshold,
// yielding 1:1 attribute correspondences.
package dumas

import (
	"fmt"
	"sort"
	"strings"

	"hummer/internal/assign"
	"hummer/internal/relation"
	"hummer/internal/strsim"
	"hummer/internal/value"
)

// Config tunes the matcher. The zero Config is usable: Default fills
// in the paper-faithful settings.
type Config struct {
	// MaxDuplicates is the number k of most-similar tuple pairs used
	// as presumed duplicates for field-wise comparison. DUMAS needs
	// only a handful; default 10.
	MaxDuplicates int
	// MinTupleSim is the minimum whole-tuple TFIDF similarity for a
	// pair to be considered a duplicate at all; default 0.25.
	MinTupleSim float64
	// Threshold prunes attribute correspondences whose averaged
	// field similarity falls below it; default 0.35.
	Threshold float64
}

// Default returns the paper-faithful configuration.
func Default() Config {
	return Config{MaxDuplicates: 10, MinTupleSim: 0.25, Threshold: 0.35}
}

func (c Config) withDefaults() Config {
	d := Default()
	if c.MaxDuplicates <= 0 {
		c.MaxDuplicates = d.MaxDuplicates
	}
	if c.MinTupleSim <= 0 {
		c.MinTupleSim = d.MinTupleSim
	}
	if c.Threshold <= 0 {
		c.Threshold = d.Threshold
	}
	return c
}

// TuplePair is one presumed duplicate found during the discovery step.
type TuplePair struct {
	LeftRow, RightRow int
	Sim               float64
}

// Correspondence is one matched attribute pair between two relations.
type Correspondence struct {
	LeftCol, RightCol string
	LeftIdx, RightIdx int
	Score             float64
}

// Result carries the output of matching two relations.
type Result struct {
	// Correspondences are the pruned 1:1 attribute matches, ordered
	// by descending score.
	Correspondences []Correspondence
	// Duplicates are the tuple pairs the matching was derived from.
	Duplicates []TuplePair
	// Matrix is the averaged field-similarity matrix
	// (left attrs × right attrs), exposed for the demo's
	// "adjust matching" wizard step and for diagnostics.
	Matrix [][]float64
}

// Match derives attribute correspondences between two unaligned
// relations. It returns an error when either relation is empty —
// instance-based matching has nothing to work with then.
func Match(left, right *relation.Relation, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if left.Len() == 0 || right.Len() == 0 {
		return nil, fmt.Errorf("dumas: relation %q or %q is empty; instance-based matching needs rows",
			left.Name(), right.Name())
	}
	dups := FindDuplicates(left, right, cfg.MaxDuplicates, cfg.MinTupleSim)
	if len(dups) == 0 {
		return &Result{}, nil
	}
	matrix := averagedFieldMatrix(left, right, dups)
	pairs := assign.MaxWeight(matrix)
	var corrs []Correspondence
	for _, p := range pairs {
		if p.Weight < cfg.Threshold {
			continue
		}
		corrs = append(corrs, Correspondence{
			LeftCol:  left.Schema().Col(p.Row).Name,
			RightCol: right.Schema().Col(p.Col).Name,
			LeftIdx:  p.Row,
			RightIdx: p.Col,
			Score:    p.Weight,
		})
	}
	sort.Slice(corrs, func(i, j int) bool { return corrs[i].Score > corrs[j].Score })
	return &Result{Correspondences: corrs, Duplicates: dups, Matrix: matrix}, nil
}

// tupleText renders a whole tuple as one string, DUMAS's
// "tuple as a single document" view.
func tupleText(row relation.Row) string {
	parts := make([]string, 0, len(row))
	for _, v := range row {
		if !v.IsNull() {
			parts = append(parts, v.Text())
		}
	}
	return strings.Join(parts, " ")
}

// FindDuplicates performs the duplicate-discovery step: rank cross-
// table tuple pairs by whole-tuple TFIDF similarity and return the top
// maxDups pairs above minSim. Candidate pairs are generated through an
// inverted token index so that only pairs sharing at least one token
// are scored (the "efficient" part of DUMAS).
//
// Each left and right tuple participates in at most one returned pair:
// a real-world entity should contribute one aligned observation, and
// reusing a tuple would bias the averaged field matrix toward it.
func FindDuplicates(left, right *relation.Relation, maxDups int, minSim float64) []TuplePair {
	corpus := strsim.NewCorpus()
	leftTokens := make([][]string, left.Len())
	rightTokens := make([][]string, right.Len())
	for i := 0; i < left.Len(); i++ {
		leftTokens[i] = strsim.Tokenize(tupleText(left.Row(i)))
		corpus.AddDoc(leftTokens[i])
	}
	for i := 0; i < right.Len(); i++ {
		rightTokens[i] = strsim.Tokenize(tupleText(right.Row(i)))
		corpus.AddDoc(rightTokens[i])
	}
	leftVecs := make([]strsim.Vector, left.Len())
	for i, toks := range leftTokens {
		leftVecs[i] = corpus.TFIDFVector(toks)
	}
	rightVecs := make([]strsim.Vector, right.Len())
	for i, toks := range rightTokens {
		rightVecs[i] = corpus.TFIDFVector(toks)
	}

	// Inverted index over right tuples: token → tuple ids.
	index := map[string][]int{}
	for i, toks := range rightTokens {
		seen := map[string]bool{}
		for _, t := range toks {
			if !seen[t] {
				seen[t] = true
				index[t] = append(index[t], i)
			}
		}
	}

	var pairs []TuplePair
	for li, toks := range leftTokens {
		cands := map[int]bool{}
		for _, t := range toks {
			for _, ri := range index[t] {
				cands[ri] = true
			}
		}
		for ri := range cands {
			sim := strsim.Cosine(leftVecs[li], rightVecs[ri])
			if sim >= minSim {
				pairs = append(pairs, TuplePair{LeftRow: li, RightRow: ri, Sim: sim})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Sim != pairs[j].Sim {
			return pairs[i].Sim > pairs[j].Sim
		}
		if pairs[i].LeftRow != pairs[j].LeftRow {
			return pairs[i].LeftRow < pairs[j].LeftRow
		}
		return pairs[i].RightRow < pairs[j].RightRow
	})
	usedL := map[int]bool{}
	usedR := map[int]bool{}
	var top []TuplePair
	for _, p := range pairs {
		if len(top) >= maxDups {
			break
		}
		if usedL[p.LeftRow] || usedR[p.RightRow] {
			continue
		}
		usedL[p.LeftRow] = true
		usedR[p.RightRow] = true
		top = append(top, p)
	}
	return top
}

// averagedFieldMatrix compares each duplicate pair field-wise with
// SoftTFIDF and averages the matrices, as in DUMAS. The corpus for
// SoftTFIDF's IDF weights is built per attribute pair from the two
// columns' values.
func averagedFieldMatrix(left, right *relation.Relation, dups []TuplePair) [][]float64 {
	nl, nr := left.Schema().Len(), right.Schema().Len()

	// Column corpora: token statistics per column, so that IDF
	// reflects how identifying a token is within its attribute.
	colCorpus := strsim.NewCorpus()
	for i := 0; i < left.Len(); i++ {
		for _, v := range left.Row(i) {
			if !v.IsNull() {
				colCorpus.AddText(v.Text())
			}
		}
	}
	for i := 0; i < right.Len(); i++ {
		for _, v := range right.Row(i) {
			if !v.IsNull() {
				colCorpus.AddText(v.Text())
			}
		}
	}

	sum := make([][]float64, nl)
	cnt := make([][]int, nl)
	for i := range sum {
		sum[i] = make([]float64, nr)
		cnt[i] = make([]int, nr)
	}
	for _, d := range dups {
		lrow, rrow := left.Row(d.LeftRow), right.Row(d.RightRow)
		for i := 0; i < nl; i++ {
			for j := 0; j < nr; j++ {
				lv, rv := lrow[i], rrow[j]
				// NULL on either side gives no evidence for or
				// against the correspondence; skip the cell.
				if lv.IsNull() || rv.IsNull() {
					continue
				}
				sum[i][j] += fieldSim(colCorpus, lv, rv)
				cnt[i][j]++
			}
		}
	}
	avg := make([][]float64, nl)
	for i := range avg {
		avg[i] = make([]float64, nr)
		for j := range avg[i] {
			if cnt[i][j] > 0 {
				avg[i][j] = sum[i][j] / float64(cnt[i][j])
			}
		}
	}
	return avg
}

// fieldSim compares two non-null field values: numerics by relative
// distance, everything else by SoftTFIDF over the value texts.
func fieldSim(c *strsim.Corpus, a, b value.Value) float64 {
	if af, ok := a.AsFloat(); ok {
		if bf, ok := b.AsFloat(); ok {
			return strsim.NumericSim(af, bf)
		}
	}
	return c.SoftTFIDF(a.Text(), b.Text())
}

// NaiveMatch is the D1 ablation baseline: match columns directly by
// the cosine similarity of their whole-column token distributions,
// without discovering duplicates first. It is cheaper but confuses
// columns that share vocabulary (e.g. two different name columns).
func NaiveMatch(left, right *relation.Relation, threshold float64) *Result {
	nl, nr := left.Schema().Len(), right.Schema().Len()
	corpus := strsim.NewCorpus()
	colText := func(rel *relation.Relation, col int) []string {
		var tokens []string
		for i := 0; i < rel.Len(); i++ {
			v := rel.Row(i)[col]
			if !v.IsNull() {
				tokens = append(tokens, strsim.Tokenize(v.Text())...)
			}
		}
		return tokens
	}
	leftCols := make([][]string, nl)
	for i := range leftCols {
		leftCols[i] = colText(left, i)
		corpus.AddDoc(leftCols[i])
	}
	rightCols := make([][]string, nr)
	for j := range rightCols {
		rightCols[j] = colText(right, j)
		corpus.AddDoc(rightCols[j])
	}
	matrix := make([][]float64, nl)
	for i := range matrix {
		matrix[i] = make([]float64, nr)
		vi := corpus.TFIDFVector(leftCols[i])
		for j := range matrix[i] {
			matrix[i][j] = strsim.Cosine(vi, corpus.TFIDFVector(rightCols[j]))
		}
	}
	pairs := assign.MaxWeight(matrix)
	var corrs []Correspondence
	for _, p := range pairs {
		if p.Weight < threshold {
			continue
		}
		corrs = append(corrs, Correspondence{
			LeftCol:  left.Schema().Col(p.Row).Name,
			RightCol: right.Schema().Col(p.Col).Name,
			LeftIdx:  p.Row,
			RightIdx: p.Col,
			Score:    p.Weight,
		})
	}
	sort.Slice(corrs, func(i, j int) bool { return corrs[i].Score > corrs[j].Score })
	return &Result{Correspondences: corrs, Matrix: matrix}
}
