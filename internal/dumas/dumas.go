// Package dumas implements the DUMAS duplicate-based schema matching
// algorithm (Bilke & Naumann, ICDE 2005) as used by HumMer's first
// pipeline phase.
//
// The algorithm exploits the presence of duplicates across unaligned
// tables: it first finds a few likely duplicate tuple pairs by treating
// each tuple as a single string and ranking cross-table pairs with
// TFIDF cosine similarity; it then compares each duplicate pair
// field-wise with SoftTFIDF, averages the resulting per-pair similarity
// matrices, computes a maximum-weight bipartite matching over the
// averaged matrix, and prunes correspondences below a threshold,
// yielding 1:1 attribute correspondences.
//
// # Candidate generation
//
// Which cross-relation tuple pairs are scored during duplicate
// discovery is decided by one of three strategies (see candidates.go):
// the inverted token index (the default — exhaustive recall, since
// pairs sharing no token score 0), sorted neighborhood over the
// whole-tuple sort keys (Config.Window > 0), and q-gram prefix
// blocking (Config.QGrams > 0).
//
// # Parallelism and determinism
//
// Config.Parallelism sets the number of worker goroutines (0 means
// GOMAXPROCS, 1 forces sequential). Three phases shard across the
// parshard worker pool: the per-tuple precomputation (tokenizing,
// corpus statistics, TFIDF term vectors), the candidate-pair scoring,
// and the per-cell averaging of the field-similarity matrix. All
// similarity math runs over sorted term vectors with deterministic
// float accumulation, so the Result — correspondences, duplicates,
// matrix, statistics — is byte-identical at every worker count:
// parallelism is purely a wall-clock knob.
package dumas

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"hummer/internal/assign"
	"hummer/internal/obs"
	"hummer/internal/parshard"
	"hummer/internal/relation"
	"hummer/internal/strsim"
	"hummer/internal/value"
)

// Config tunes the matcher. The zero Config is usable: Default fills
// in the paper-faithful settings.
type Config struct {
	// MaxDuplicates is the number k of most-similar tuple pairs used
	// as presumed duplicates for field-wise comparison. DUMAS needs
	// only a handful; default 10.
	MaxDuplicates int
	// MinTupleSim is the minimum whole-tuple TFIDF similarity for a
	// pair to be considered a duplicate at all; default 0.25.
	MinTupleSim float64
	// Threshold prunes attribute correspondences whose averaged
	// field similarity falls below it; default 0.35.
	Threshold float64
	// Window, when positive, switches duplicate discovery from the
	// full-recall token index to the sorted-neighborhood method: left
	// and right tuples are merged into one order by their whole-tuple
	// sort key and only cross-relation tuples within the window are
	// scored. Near-linear cost, trading recall on far-sorting
	// duplicates. Mutually exclusive with QGrams.
	Window int
	// QGrams, when positive, switches duplicate discovery to q-gram
	// prefix blocking with grams of this length: tuples sharing any
	// q-gram of their sort-key prefix are scored. Robust to typos
	// inside the prefix, unlike plain prefix blocking. Mutually
	// exclusive with Window.
	QGrams int
	// Parallelism is the number of worker goroutines sharding the
	// precomputation, pair scoring and field-matrix averaging: 0 means
	// GOMAXPROCS, 1 forces the sequential path. The Result is
	// byte-identical at every worker count.
	Parallelism int
}

// Default returns the paper-faithful configuration.
func Default() Config {
	return Config{MaxDuplicates: 10, MinTupleSim: 0.25, Threshold: 0.35}
}

func (c Config) withDefaults() Config {
	d := Default()
	if c.MaxDuplicates <= 0 {
		c.MaxDuplicates = d.MaxDuplicates
	}
	if c.MinTupleSim <= 0 {
		c.MinTupleSim = d.MinTupleSim
	}
	if c.Threshold <= 0 {
		c.Threshold = d.Threshold
	}
	return c
}

// validate rejects meaningless strategy combinations.
func (c Config) validate() error {
	if c.Window > 0 && c.QGrams > 0 {
		return fmt.Errorf("dumas: Window and QGrams are mutually exclusive candidate strategies")
	}
	return nil
}

// TuplePair is one presumed duplicate found during the discovery step.
type TuplePair struct {
	LeftRow, RightRow int
	Sim               float64
}

// Correspondence is one matched attribute pair between two relations.
type Correspondence struct {
	LeftCol, RightCol string
	LeftIdx, RightIdx int
	Score             float64
}

// Stats reports the work the discovery step performed.
type Stats struct {
	// CandidatePairs is the number of cross-relation tuple pairs the
	// candidate strategy proposed for scoring.
	CandidatePairs int
	// Scored is how many of them reached MinTupleSim.
	Scored int
}

// Result carries the output of matching two relations.
type Result struct {
	// Correspondences are the pruned 1:1 attribute matches, ordered
	// by descending score.
	Correspondences []Correspondence
	// Duplicates are the tuple pairs the matching was derived from.
	Duplicates []TuplePair
	// Matrix is the averaged field-similarity matrix
	// (left attrs × right attrs), exposed for the demo's
	// "adjust matching" wizard step and for diagnostics.
	Matrix [][]float64
	// Stats reports candidate counts from duplicate discovery.
	Stats Stats
}

// Match derives attribute correspondences between two unaligned
// relations. It returns an error when either relation is empty —
// instance-based matching has nothing to work with then — or when the
// configuration selects conflicting candidate strategies. It is
// MatchContext with a background context: it cannot be cancelled.
func Match(left, right *relation.Relation, cfg Config) (*Result, error) {
	return MatchContext(context.Background(), left, right, cfg)
}

// MatchContext derives attribute correspondences between two unaligned
// relations, honoring ctx: the per-tuple precomputation polls it
// between row shards, the pair scoring checks it at chunk boundaries
// and the field-matrix averaging polls it between cells, so a
// cancelled match returns promptly with ctx's error, all worker
// goroutines joined and no partial result. A match that completes is
// byte-identical to an uncancellable run.
func MatchContext(ctx context.Context, left, right *relation.Relation, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if left.Len() == 0 || right.Len() == 0 {
		return nil, fmt.Errorf("dumas: relation %q or %q is empty; instance-based matching needs rows",
			left.Name(), right.Name())
	}
	dups, stats, err := findDuplicates(ctx, left, right, cfg)
	if err != nil {
		return nil, err
	}
	if len(dups) == 0 {
		return &Result{Stats: stats}, nil
	}
	_, msp := obs.StartSpan(ctx, "match.matrix")
	defer msp.End()
	msp.SetInt("pairs", len(dups))
	matrix, err := averagedFieldMatrix(ctx, left, right, dups, parshard.Workers(cfg.Parallelism))
	if err != nil {
		return nil, err
	}
	msp.End()
	pairs := assign.MaxWeight(matrix)
	var corrs []Correspondence
	for _, p := range pairs {
		if p.Weight < cfg.Threshold {
			continue
		}
		corrs = append(corrs, Correspondence{
			LeftCol:  left.Schema().Col(p.Row).Name,
			RightCol: right.Schema().Col(p.Col).Name,
			LeftIdx:  p.Row,
			RightIdx: p.Col,
			Score:    p.Weight,
		})
	}
	sort.Slice(corrs, func(i, j int) bool {
		if corrs[i].Score != corrs[j].Score {
			return corrs[i].Score > corrs[j].Score
		}
		return corrs[i].LeftIdx < corrs[j].LeftIdx
	})
	return &Result{Correspondences: corrs, Duplicates: dups, Matrix: matrix, Stats: stats}, nil
}

// tupleText renders a whole tuple as one string, DUMAS's
// "tuple as a single document" view.
func tupleText(row relation.Row) string {
	parts := make([]string, 0, len(row))
	for _, v := range row {
		if !v.IsNull() {
			parts = append(parts, v.Text())
		}
	}
	return strings.Join(parts, " ")
}

// FindDuplicates performs the duplicate-discovery step with the
// default (token index) candidate strategy: rank cross-table tuple
// pairs by whole-tuple TFIDF similarity and return the top maxDups
// pairs above minSim.
//
// Each left and right tuple participates in at most one returned pair:
// a real-world entity should contribute one aligned observation, and
// reusing a tuple would bias the averaged field matrix toward it.
// It runs on a background context: it cannot be cancelled (MatchContext
// is the cancellable entry point into duplicate search).
func FindDuplicates(left, right *relation.Relation, maxDups int, minSim float64) []TuplePair {
	dups, _, _ := findDuplicates(context.Background(), left, right, Config{MaxDuplicates: maxDups, MinTupleSim: minSim})
	return dups
}

// precomputeMinRows is the smallest input the per-tuple precomputation
// bothers to shard; below it goroutine startup dominates.
const precomputeMinRows = 128

// pairChunk is the number of candidate pairs per scoring work unit.
const pairChunk = parshard.DefaultChunk

// scoreShard is one chunk's (or the whole sequential run's) scoring
// output.
type scoreShard struct {
	stats Stats
	pairs []TuplePair
}

// findDuplicates is the full discovery step: sharded per-tuple
// precomputation, candidate generation in canonical order, sharded
// pair scoring, and the deterministic ranked 1:1 top-k selection.
// cfg must have passed validation; MaxDuplicates and MinTupleSim are
// honored exactly as given (the exported FindDuplicates deliberately
// passes raw values to keep its historical parameter semantics, e.g.
// minSim = 0 keeping every candidate). ctx is polled between row
// shards and at scoring chunk boundaries; on cancellation the partial
// state is discarded and ctx's error returned.
func findDuplicates(ctx context.Context, left, right *relation.Relation, cfg Config) ([]TuplePair, Stats, error) {
	nl, nr := left.Len(), right.Len()
	workers := parshard.Workers(cfg.Parallelism)
	preWorkers := workers
	if nl+nr < precomputeMinRows {
		preWorkers = 1
	}

	// Precompute, row-sharded: render and tokenize every tuple once
	// and build the shared corpus from per-shard corpora folded in
	// shard order (the counts merge commutatively, so the corpus is
	// byte-identical to a sequential build). The rendered texts are
	// kept so the key-based candidate strategies don't re-render them.
	_, csp := obs.StartSpan(ctx, "match.corpus")
	defer csp.End()
	csp.SetInt("rows", nl+nr)
	csp.SetInt("workers", preWorkers)
	leftTexts := make([]string, nl)
	rightTexts := make([]string, nr)
	leftTokens := make([][]string, nl)
	rightTokens := make([][]string, nr)
	tokenizeSide := func(rel *relation.Relation, texts []string, tokens [][]string) ([]*strsim.Corpus, error) {
		shards := make([]*strsim.Corpus, preWorkers)
		err := parshard.RangesContext(ctx, preWorkers, rel.Len(), func(s, lo, hi int) {
			c := strsim.NewCorpus()
			shards[s] = c
			for i := lo; i < hi; i++ {
				if i%parshard.CancelStride == 0 && parshard.Canceled(ctx) {
					return
				}
				texts[i] = tupleText(rel.Row(i))
				tokens[i] = strsim.Tokenize(texts[i])
				c.AddDoc(tokens[i])
			}
		})
		return shards, err
	}
	leftShards, err := tokenizeSide(left, leftTexts, leftTokens)
	if err != nil {
		return nil, Stats{}, err
	}
	rightShards, err := tokenizeSide(right, rightTexts, rightTokens)
	if err != nil {
		return nil, Stats{}, err
	}
	corpus := strsim.NewCorpus()
	for _, c := range append(leftShards, rightShards...) {
		if c != nil {
			corpus.Merge(c)
		}
	}

	// TFIDF term vectors per tuple, row-sharded over the now read-only
	// corpus. Sorted term vectors make every later dot product
	// allocation-free and deterministic in float accumulation order.
	leftVecs := make([]strsim.TermVec, nl)
	rightVecs := make([]strsim.TermVec, nr)
	vecSide := func(n int, tokens [][]string, vecs []strsim.TermVec) error {
		return parshard.RangesContext(ctx, preWorkers, n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if i%parshard.CancelStride == 0 && parshard.Canceled(ctx) {
					return
				}
				vecs[i] = corpus.TermVec(tokens[i])
			}
		})
	}
	if err := vecSide(nl, leftTokens, leftVecs); err != nil {
		return nil, Stats{}, err
	}
	if err := vecSide(nr, rightTokens, rightVecs); err != nil {
		return nil, Stats{}, err
	}
	csp.End()

	// Sort keys are only materialized when a key-based candidate
	// strategy asks for them, from the already-rendered tuple texts.
	// The cancellation error is deliberately dropped: the scoring run
	// below re-checks ctx on entry, so a cancel here still aborts
	// promptly — the poll only keeps this pass from running to
	// completion first.
	keysOf := func(texts []string) func() []string {
		return func() []string {
			keys := make([]string, len(texts))
			_ = parshard.RangesContext(ctx, preWorkers, len(texts), func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					if i%parshard.CancelStride == 0 && parshard.Canceled(ctx) {
						return
					}
					keys[i] = sortKey(texts[i])
				}
			})
			return keys
		}
	}
	gen := candidateGen(cfg, leftTokens, rightTokens, keysOf(leftTexts), keysOf(rightTexts))

	// Score the candidate stream across the worker pool. Tiny inputs
	// fit in a single chunk; the pool would only add overhead.
	scoreWorkers := workers
	if nl*nr <= pairChunk {
		scoreWorkers = 1
	}
	_, ssp := obs.StartSpan(ctx, "match.score")
	defer ssp.End()
	ssp.SetInt("workers", scoreWorkers)
	minSim := cfg.MinTupleSim
	out, err := parshard.RunContext(ctx, scoreWorkers, pairChunk,
		parshard.Gen[[2]int](func(yield func([2]int) bool) {
			gen(func(li, ri int) bool { return yield([2]int{li, ri}) })
		}),
		func() func([2]int, *scoreShard) {
			return func(p [2]int, out *scoreShard) {
				out.stats.CandidatePairs++
				sim := strsim.DotTermVecs(leftVecs[p[0]], rightVecs[p[1]])
				if sim >= minSim {
					out.stats.Scored++
					out.pairs = append(out.pairs, TuplePair{LeftRow: p[0], RightRow: p[1], Sim: sim})
				}
			}
		},
		func(into *scoreShard, chunk scoreShard) {
			into.stats.CandidatePairs += chunk.stats.CandidatePairs
			into.stats.Scored += chunk.stats.Scored
			into.pairs = append(into.pairs, chunk.pairs...)
		})
	if err != nil {
		return nil, Stats{}, err
	}
	ssp.SetInt("candidates", out.stats.CandidatePairs)
	ssp.SetInt("scored", out.stats.Scored)
	ssp.End()

	// Rank by similarity (ties broken by row ids: a total order, so
	// the selection is deterministic) and pick the top pairs 1:1.
	pairs := out.pairs
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Sim != pairs[j].Sim {
			return pairs[i].Sim > pairs[j].Sim
		}
		if pairs[i].LeftRow != pairs[j].LeftRow {
			return pairs[i].LeftRow < pairs[j].LeftRow
		}
		return pairs[i].RightRow < pairs[j].RightRow
	})
	usedL := make(map[int]bool, cfg.MaxDuplicates)
	usedR := make(map[int]bool, cfg.MaxDuplicates)
	var top []TuplePair
	for _, p := range pairs {
		if len(top) >= cfg.MaxDuplicates {
			break
		}
		if usedL[p.LeftRow] || usedR[p.RightRow] {
			continue
		}
		usedL[p.LeftRow] = true
		usedR[p.RightRow] = true
		top = append(top, p)
	}
	return top, out.stats, nil
}

// averagedFieldMatrix compares each duplicate pair field-wise with
// SoftTFIDF and averages the matrices, as in DUMAS. The corpus for
// SoftTFIDF's IDF weights is built (row-sharded) from the two
// relations' cell values; the nl×nr cells of the averaged matrix are
// then computed across the worker pool, each worker owning a
// strsim.Scratch for the inner Jaro-Winkler comparisons. Each cell
// accumulates its duplicate-pair sum in pair order, so the matrix is
// byte-identical at every worker count.
func averagedFieldMatrix(ctx context.Context, left, right *relation.Relation, dups []TuplePair, workers int) ([][]float64, error) {
	nl, nr := left.Schema().Len(), right.Schema().Len()

	// Column corpora: token statistics over all cell values, so that
	// IDF reflects how identifying a token is within the data.
	preWorkers := workers
	if left.Len()+right.Len() < precomputeMinRows {
		preWorkers = 1
	}
	corpusOf := func(rel *relation.Relation) ([]*strsim.Corpus, error) {
		shards := make([]*strsim.Corpus, preWorkers)
		err := parshard.RangesContext(ctx, preWorkers, rel.Len(), func(s, lo, hi int) {
			c := strsim.NewCorpus()
			shards[s] = c
			for i := lo; i < hi; i++ {
				if i%parshard.CancelStride == 0 && parshard.Canceled(ctx) {
					return
				}
				for _, v := range rel.Row(i) {
					if !v.IsNull() {
						c.AddText(v.Text())
					}
				}
			}
		})
		return shards, err
	}
	leftShards, err := corpusOf(left)
	if err != nil {
		return nil, err
	}
	rightShards, err := corpusOf(right)
	if err != nil {
		return nil, err
	}
	colCorpus := strsim.NewCorpus()
	for _, c := range append(leftShards, rightShards...) {
		if c != nil {
			colCorpus.Merge(c)
		}
	}

	// Term vectors of every cell participating in a duplicate pair
	// (at most MaxDuplicates rows per side — cheap, and it keeps the
	// expensive SoftTFIDF inner loop allocation-free).
	ltv := make([][]strsim.TermVec, len(dups))
	rtv := make([][]strsim.TermVec, len(dups))
	for d, dp := range dups {
		ltv[d] = make([]strsim.TermVec, nl)
		rtv[d] = make([]strsim.TermVec, nr)
		for i, v := range left.Row(dp.LeftRow) {
			if !v.IsNull() {
				ltv[d][i] = colCorpus.TermVec(strsim.Tokenize(v.Text()))
			}
		}
		for j, v := range right.Row(dp.RightRow) {
			if !v.IsNull() {
				rtv[d][j] = colCorpus.TermVec(strsim.Tokenize(v.Text()))
			}
		}
	}

	avg := make([][]float64, nl)
	for i := range avg {
		avg[i] = make([]float64, nr)
	}
	// One matrix cell per work item: cells are independent, and the
	// per-cell sum runs over dups in pair order regardless of which
	// worker owns the cell.
	err = parshard.RangesContext(ctx, workers, nl*nr, func(_, lo, hi int) {
		var sc strsim.Scratch
		for cell := lo; cell < hi; cell++ {
			if cell%parshard.CancelStride == 0 && parshard.Canceled(ctx) {
				return
			}
			i, j := cell/nr, cell%nr
			var sum float64
			cnt := 0
			for d, dp := range dups {
				lv, rv := left.Row(dp.LeftRow)[i], right.Row(dp.RightRow)[j]
				// NULL on either side gives no evidence for or
				// against the correspondence; skip the cell.
				if lv.IsNull() || rv.IsNull() {
					continue
				}
				sum += fieldSim(colCorpus, &sc, lv, rv, ltv[d][i], rtv[d][j])
				cnt++
			}
			if cnt > 0 {
				avg[i][j] = sum / float64(cnt)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return avg, nil
}

// fieldSim compares two non-null field values: numerics by relative
// distance, everything else by SoftTFIDF over the values' prebuilt
// term vectors.
func fieldSim(c *strsim.Corpus, sc *strsim.Scratch, a, b value.Value, va, vb strsim.TermVec) float64 {
	if af, ok := a.AsFloat(); ok {
		if bf, ok := b.AsFloat(); ok {
			return strsim.NumericSim(af, bf)
		}
	}
	return c.SoftTFIDFTermVecs(sc, va, vb)
}

// NaiveMatch is the D1 ablation baseline: match columns directly by
// the cosine similarity of their whole-column token distributions,
// without discovering duplicates first. It is cheaper but confuses
// columns that share vocabulary (e.g. two different name columns).
func NaiveMatch(left, right *relation.Relation, threshold float64) *Result {
	nl, nr := left.Schema().Len(), right.Schema().Len()
	corpus := strsim.NewCorpus()
	colText := func(rel *relation.Relation, col int) []string {
		var tokens []string
		for i := 0; i < rel.Len(); i++ {
			v := rel.Row(i)[col]
			if !v.IsNull() {
				tokens = append(tokens, strsim.Tokenize(v.Text())...)
			}
		}
		return tokens
	}
	leftCols := make([][]string, nl)
	for i := range leftCols {
		leftCols[i] = colText(left, i)
		corpus.AddDoc(leftCols[i])
	}
	rightCols := make([][]string, nr)
	for j := range rightCols {
		rightCols[j] = colText(right, j)
		corpus.AddDoc(rightCols[j])
	}
	rightVecs := make([]strsim.TermVec, nr)
	for j := range rightVecs {
		rightVecs[j] = corpus.TermVec(rightCols[j])
	}
	matrix := make([][]float64, nl)
	for i := range matrix {
		matrix[i] = make([]float64, nr)
		vi := corpus.TermVec(leftCols[i])
		for j := range matrix[i] {
			matrix[i][j] = strsim.DotTermVecs(vi, rightVecs[j])
		}
	}
	pairs := assign.MaxWeight(matrix)
	var corrs []Correspondence
	for _, p := range pairs {
		if p.Weight < threshold {
			continue
		}
		corrs = append(corrs, Correspondence{
			LeftCol:  left.Schema().Col(p.Row).Name,
			RightCol: right.Schema().Col(p.Col).Name,
			LeftIdx:  p.Row,
			RightIdx: p.Col,
			Score:    p.Weight,
		})
	}
	sort.Slice(corrs, func(i, j int) bool {
		if corrs[i].Score != corrs[j].Score {
			return corrs[i].Score > corrs[j].Score
		}
		return corrs[i].LeftIdx < corrs[j].LeftIdx
	})
	return &Result{Correspondences: corrs, Matrix: matrix}
}
