package dumas

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"hummer/internal/relation"
)

// TestMatchContextPreCancelled: a cancelled context aborts matching
// before any scoring and returns no partial result.
func TestMatchContextPreCancelled(t *testing.T) {
	left := relation.NewBuilder("l", "Name", "City")
	right := relation.NewBuilder("r", "FullName", "Town")
	for i := 0; i < 200; i++ {
		left.AddText(fmt.Sprintf("person %d", i), fmt.Sprintf("city %d", i%5))
		right.AddText(fmt.Sprintf("person %d", i), fmt.Sprintf("city %d", i%5))
	}
	l, r := left.Build(), right.Build()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := MatchContext(ctx, l, r, Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want context.Canceled", res, err)
	}
	if res != nil {
		t.Fatal("cancelled match returned a partial result")
	}
	if _, err := MatchContext(context.Background(), l, r, Config{}); err != nil {
		t.Fatalf("match after cancellation: %v", err)
	}
}

// TestMatchContextCompletesIdentical: an uncancelled MatchContext is
// byte-identical to Match at several worker counts.
func TestMatchContextCompletesIdentical(t *testing.T) {
	left := relation.NewBuilder("l", "Name", "Age")
	right := relation.NewBuilder("r", "FullName", "Years")
	for i := 0; i < 60; i++ {
		left.AddText(fmt.Sprintf("sam sample %d", i), fmt.Sprintf("%d", 20+i%30))
		right.AddText(fmt.Sprintf("sam sample %d", i), fmt.Sprintf("%d", 20+i%30))
	}
	l, r := left.Build(), right.Build()
	for _, par := range []int{1, 3} {
		cfg := Config{Parallelism: par}
		want, err := Match(l, r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MatchContext(context.Background(), l, r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", want) != fmt.Sprintf("%+v", got) {
			t.Fatalf("parallelism %d: MatchContext differs from Match", par)
		}
	}
}
