package dumas

import (
	"testing"

	"hummer/internal/relation"
)

// students builds two student tables with different schemas, attribute
// orders and labels, sharing some real-world entities — the paper's
// EE/CS student example.
func students() (*relation.Relation, *relation.Relation) {
	ee := relation.NewBuilder("EE_Student", "Name", "Age", "City").
		AddText("Jonathan Smith", "22", "Berlin").
		AddText("Maria Garcia", "24", "Hamburg").
		AddText("Wei Chen", "21", "Munich").
		AddText("Aisha Khan", "23", "Cologne").
		AddText("Peter Schulz", "25", "Dresden").
		Build()
	cs := relation.NewBuilder("CS_Students", "FullName", "Semester", "Years", "Town").
		AddText("Jonathan Smith", "4", "22", "Berlin").
		AddText("Wei Chen", "2", "21", "Munich").
		AddText("Aisha Khan", "6", "23", "Cologne").
		AddText("Lena Fischer", "1", "20", "Stuttgart").
		Build()
	return ee, cs
}

func corrMap(r *Result) map[string]string {
	m := map[string]string{}
	for _, c := range r.Correspondences {
		m[c.LeftCol] = c.RightCol
	}
	return m
}

func TestMatchStudents(t *testing.T) {
	ee, cs := students()
	res, err := Match(ee, cs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Duplicates) == 0 {
		t.Fatal("no duplicates discovered")
	}
	m := corrMap(res)
	if m["Name"] != "FullName" {
		t.Errorf("Name matched %q, want FullName (got %v)", m["Name"], m)
	}
	if m["Age"] != "Years" {
		t.Errorf("Age matched %q, want Years", m["Age"])
	}
	if m["City"] != "Town" {
		t.Errorf("City matched %q, want Town", m["City"])
	}
}

func TestMatchIsOneToOne(t *testing.T) {
	ee, cs := students()
	res, err := Match(ee, cs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	seenL, seenR := map[string]bool{}, map[string]bool{}
	for _, c := range res.Correspondences {
		if seenL[c.LeftCol] || seenR[c.RightCol] {
			t.Fatalf("correspondences are not 1:1: %v", res.Correspondences)
		}
		seenL[c.LeftCol] = true
		seenR[c.RightCol] = true
	}
}

func TestMatchEmptyRelationErrors(t *testing.T) {
	ee, _ := students()
	empty := relation.NewBuilder("empty", "a", "b").Build()
	if _, err := Match(ee, empty, Config{}); err == nil {
		t.Error("matching against empty relation must fail")
	}
	if _, err := Match(empty, ee, Config{}); err == nil {
		t.Error("matching from empty relation must fail")
	}
}

func TestMatchNoDuplicatesGivesNoCorrespondences(t *testing.T) {
	a := relation.NewBuilder("a", "x", "y").
		AddText("alpha", "beta").
		Build()
	b := relation.NewBuilder("b", "p", "q").
		AddText("gamma", "delta").
		Build()
	res, err := Match(a, b, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Correspondences) != 0 {
		t.Errorf("disjoint relations produced correspondences: %v", res.Correspondences)
	}
}

func TestFindDuplicatesRanksTrueDuplicateFirst(t *testing.T) {
	ee, cs := students()
	dups := FindDuplicates(ee, cs, 3, 0.1)
	if len(dups) == 0 {
		t.Fatal("no duplicates")
	}
	// The top pair must be a genuine shared student.
	top := dups[0]
	l := ee.Value(top.LeftRow, "Name").Text()
	r := cs.Value(top.RightRow, "FullName").Text()
	if l != r {
		t.Errorf("top duplicate pair is %q vs %q — not a true duplicate", l, r)
	}
}

func TestFindDuplicatesOneToOne(t *testing.T) {
	ee, cs := students()
	dups := FindDuplicates(ee, cs, 10, 0.0)
	seenL, seenR := map[int]bool{}, map[int]bool{}
	for _, d := range dups {
		if seenL[d.LeftRow] || seenR[d.RightRow] {
			t.Fatal("a tuple participates in two duplicate pairs")
		}
		seenL[d.LeftRow] = true
		seenR[d.RightRow] = true
	}
}

func TestFindDuplicatesRespectsLimits(t *testing.T) {
	ee, cs := students()
	if got := FindDuplicates(ee, cs, 2, 0.0); len(got) > 2 {
		t.Errorf("maxDups=2 returned %d pairs", len(got))
	}
	if got := FindDuplicates(ee, cs, 10, 0.999); len(got) != 0 {
		t.Errorf("minSim≈1 returned %d pairs, want 0", len(got))
	}
}

func TestMatrixShapeAndBounds(t *testing.T) {
	ee, cs := students()
	res, err := Match(ee, cs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matrix) != ee.Schema().Len() {
		t.Fatalf("matrix rows = %d, want %d", len(res.Matrix), ee.Schema().Len())
	}
	for _, row := range res.Matrix {
		if len(row) != cs.Schema().Len() {
			t.Fatalf("matrix cols = %d, want %d", len(row), cs.Schema().Len())
		}
		for _, v := range row {
			if v < 0 || v > 1.0000001 {
				t.Errorf("matrix cell %g out of [0,1]", v)
			}
		}
	}
}

func TestThresholdPrunes(t *testing.T) {
	ee, cs := students()
	loose, err := Match(ee, cs, Config{Threshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Match(ee, cs, Config{Threshold: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Correspondences) > len(loose.Correspondences) {
		t.Error("higher threshold cannot produce more correspondences")
	}
	for _, c := range strict.Correspondences {
		if c.Score < 0.99 {
			t.Errorf("correspondence %v survived threshold 0.99", c)
		}
	}
}

func TestMatchWithTyposInDuplicates(t *testing.T) {
	// Duplicates with typos: SoftTFIDF should still align the fields.
	a := relation.NewBuilder("a", "Name", "City").
		AddText("Jonathan Smith", "Berlin").
		AddText("Maria Garcia", "Hamburg").
		AddText("Peter Schulz", "Dresden").
		Build()
	b := relation.NewBuilder("b", "Ort", "Person").
		AddText("Berlin", "Jonathon Smith"). // typo in first name
		AddText("Hamburg", "Maria Garcia").
		AddText("Stuttgart", "Lena Fischer").
		Build()
	res, err := Match(a, b, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := corrMap(res)
	if m["Name"] != "Person" || m["City"] != "Ort" {
		t.Errorf("typo'd duplicates gave %v", m)
	}
}

func TestNaiveMatchWorksOnDistinctVocabulary(t *testing.T) {
	ee, cs := students()
	res := NaiveMatch(ee, cs, 0.1)
	m := corrMap(res)
	if m["Name"] != "FullName" {
		t.Errorf("naive: Name matched %q", m["Name"])
	}
	if m["City"] != "Town" {
		t.Errorf("naive: City matched %q", m["City"])
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	d := Default()
	if c != d {
		t.Errorf("withDefaults() = %+v, want %+v", c, d)
	}
	custom := Config{MaxDuplicates: 3, MinTupleSim: 0.5, Threshold: 0.7}.withDefaults()
	if custom.MaxDuplicates != 3 || custom.MinTupleSim != 0.5 || custom.Threshold != 0.7 {
		t.Error("withDefaults must not override explicit settings")
	}
}

func TestMatchNumericColumns(t *testing.T) {
	// Numeric columns align by numeric distance even when the string
	// forms differ slightly.
	a := relation.NewBuilder("a", "Product", "Price").
		AddText("Beethoven Symphony 9", "12.99").
		AddText("Mozart Requiem KV626", "9.50").
		AddText("Bach Goldberg Variations", "14.00").
		Build()
	b := relation.NewBuilder("b", "Cost", "Title").
		AddText("12.99", "Beethoven Symphony 9").
		AddText("9.50", "Mozart Requiem KV626").
		AddText("7.77", "Verdi Aida Highlights").
		Build()
	res, err := Match(a, b, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := corrMap(res)
	if m["Product"] != "Title" {
		t.Errorf("Product matched %q, want Title", m["Product"])
	}
	if m["Price"] != "Cost" {
		t.Errorf("Price matched %q, want Cost", m["Price"])
	}
}
