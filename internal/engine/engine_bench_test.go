package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"hummer/internal/expr"
	"hummer/internal/relation"
	"hummer/internal/value"
)

func randomRelation(n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	b := relation.NewBuilder("t", "id", "group", "val")
	for i := 0; i < n; i++ {
		b.Add(
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("g%d", rng.Intn(20))),
			value.NewFloat(rng.Float64()*100),
		)
	}
	return b.Build()
}

func mustMaterialize(b *testing.B, op Operator) {
	b.Helper()
	if _, err := Materialize("out", op); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFilter(b *testing.B) {
	rel := randomRelation(10000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pred := expr.NewCmp(expr.GT, expr.NewCol("val"), expr.NewLit(value.NewFloat(50)))
		mustMaterialize(b, NewFilter(NewScan(rel), pred))
	}
}

func BenchmarkHashJoin(b *testing.B) {
	left := randomRelation(5000, 2)
	right := randomRelation(5000, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j, err := NewHashJoin(NewScan(left), NewScan(right), "id", "id")
		if err != nil {
			b.Fatal(err)
		}
		mustMaterialize(b, j)
	}
}

func BenchmarkOuterUnion(b *testing.B) {
	a := randomRelation(5000, 4)
	// A second relation with partially different schema forces padding.
	rng := rand.New(rand.NewSource(5))
	cb := relation.NewBuilder("u", "id", "extra")
	for i := 0; i < 5000; i++ {
		cb.Add(value.NewInt(int64(i)), value.NewFloat(rng.Float64()))
	}
	c := cb.Build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, err := NewOuterUnion(NewScan(a), NewScan(c))
		if err != nil {
			b.Fatal(err)
		}
		mustMaterialize(b, u)
	}
}

func BenchmarkGroupAggregate(b *testing.B) {
	rel := randomRelation(10000, 6)
	cnt, _ := LookupAgg("count")
	sum, _ := LookupAgg("sum")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := NewGroup(NewScan(rel), []string{"group"}, []AggSpec{
			{Factory: cnt, Col: "*", As: "n"},
			{Factory: sum, Col: "val", As: "total"},
		})
		if err != nil {
			b.Fatal(err)
		}
		mustMaterialize(b, g)
	}
}

func BenchmarkSort(b *testing.B) {
	rel := randomRelation(10000, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mustMaterialize(b, NewSort(NewScan(rel), []SortKey{{Col: "val", Desc: true}}))
	}
}

func BenchmarkDistinct(b *testing.B) {
	rel := randomRelation(10000, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mustMaterialize(b, NewDistinct(NewProjectCols(NewScan(rel), "group")))
	}
}
