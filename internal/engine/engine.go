// Package engine is HumMer's relational algebra substrate, replacing
// the XXL cursor library the original Java system used. Operators are
// pull-based (Volcano-style) iterators over rows; Materialize drains an
// operator tree into a relation.
//
// The operator set covers what HumMer's pipeline needs: scan, filter,
// project, rename, cross and hash equi-join, union, full outer union
// (the FUSE FROM combinator), distinct, sort, limit, and grouped
// aggregation.
package engine

import (
	"context"
	"fmt"

	"hummer/internal/expr"
	"hummer/internal/faultinject"
	"hummer/internal/obs"
	"hummer/internal/parshard"
	"hummer/internal/relation"
	"hummer/internal/schema"
	"hummer/internal/value"
)

// Operator is a pull-based row iterator. Open prepares the operator
// (binding expressions, building hash tables); Next returns rows until
// exhaustion. Operators are single-use: re-Open after exhaustion is not
// supported.
type Operator interface {
	// Schema describes the rows this operator produces. Valid after
	// construction (before Open).
	Schema() *schema.Schema
	// Open prepares the operator and its inputs.
	Open() error
	// Next returns the next row, or ok=false at end of input.
	Next() (relation.Row, bool)
}

// Materialize drains op into a named relation. It is
// MaterializeContext with a background context: it cannot be
// cancelled.
func Materialize(name string, op Operator) (*relation.Relation, error) {
	return MaterializeContext(context.Background(), name, op)
}

// materializeStride is how many rows MaterializeContext drains between
// context polls: frequent enough that a cancelled plain-SQL statement
// aborts mid-scan (not only at entry), rare enough that the poll is
// invisible next to the per-row work.
const materializeStride = 256

// MaterializeContext drains op into a named relation, checking ctx
// every few hundred rows so a cancelled or timed-out statement stops
// scanning promptly with ctx's error and no partial result. Blocking
// operators (sort, hash build, cross materialization) do their work
// inside Open/Next, so the poll also covers rows they buffer.
func MaterializeContext(ctx context.Context, name string, op Operator) (*relation.Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := op.Open(); err != nil {
		return nil, err
	}
	out := relation.New(name, op.Schema())
	for n := 0; ; n++ {
		if n%materializeStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := faultinject.Hit(faultinject.SiteEngineMaterialize); err != nil {
				return nil, err
			}
		}
		row, ok := op.Next()
		if !ok {
			break
		}
		if err := out.Append(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// --- Scan ---------------------------------------------------------------

// Scan iterates an in-memory relation.
type Scan struct {
	rel *relation.Relation
	pos int
}

// NewScan returns a scan over rel.
func NewScan(rel *relation.Relation) *Scan { return &Scan{rel: rel} }

// Schema returns the relation schema.
func (s *Scan) Schema() *schema.Schema { return s.rel.Schema() }

// Open resets the cursor.
func (s *Scan) Open() error { s.pos = 0; return nil }

// Next yields rows in storage order.
func (s *Scan) Next() (relation.Row, bool) {
	if s.pos >= s.rel.Len() {
		return nil, false
	}
	row := s.rel.Row(s.pos)
	s.pos++
	return row, true
}

// --- Filter -------------------------------------------------------------

// Filter passes rows whose predicate evaluates to TRUE (UNKNOWN and
// FALSE rows are dropped, per SQL WHERE).
type Filter struct {
	in   Operator
	pred expr.Expr
}

// NewFilter wraps in with predicate pred.
func NewFilter(in Operator, pred expr.Expr) *Filter {
	return &Filter{in: in, pred: pred}
}

// Schema passes through the input schema.
func (f *Filter) Schema() *schema.Schema { return f.in.Schema() }

// Open binds the predicate and opens the input.
func (f *Filter) Open() error {
	if err := f.pred.Bind(f.in.Schema()); err != nil {
		return err
	}
	return f.in.Open()
}

// Next yields the next qualifying row.
func (f *Filter) Next() (relation.Row, bool) {
	for {
		row, ok := f.in.Next()
		if !ok {
			return nil, false
		}
		if expr.Truthy(f.pred.Eval(row)) {
			return row, true
		}
	}
}

// --- Project ------------------------------------------------------------

// ProjectItem is one output column: an expression and its output name.
type ProjectItem struct {
	Expr expr.Expr
	As   string
}

// Project computes a list of expressions per input row.
type Project struct {
	in    Operator
	items []ProjectItem
	out   *schema.Schema
}

// NewProject builds a projection. Output column types are inferred only
// for bare column references; computed columns are dynamic.
func NewProject(in Operator, items []ProjectItem) *Project {
	cols := make([]schema.Column, len(items))
	for i, it := range items {
		cols[i] = schema.Column{Name: it.As}
		if c, ok := it.Expr.(*expr.Col); ok {
			if j, found := in.Schema().Lookup(c.Name); found {
				cols[i].Type = in.Schema().Col(j).Type
				cols[i].Source = in.Schema().Col(j).Source
			}
		}
	}
	return &Project{in: in, items: items, out: schema.New(cols...)}
}

// NewProjectCols projects bare columns by name.
func NewProjectCols(in Operator, names ...string) *Project {
	items := make([]ProjectItem, len(names))
	for i, n := range names {
		items[i] = ProjectItem{Expr: expr.NewCol(n), As: n}
	}
	return NewProject(in, items)
}

// Schema returns the projected schema.
func (p *Project) Schema() *schema.Schema { return p.out }

// Open binds all expressions and opens the input.
func (p *Project) Open() error {
	for _, it := range p.items {
		if err := it.Expr.Bind(p.in.Schema()); err != nil {
			return err
		}
	}
	return p.in.Open()
}

// Next computes the projected row.
func (p *Project) Next() (relation.Row, bool) {
	row, ok := p.in.Next()
	if !ok {
		return nil, false
	}
	out := make(relation.Row, len(p.items))
	for i, it := range p.items {
		out[i] = it.Expr.Eval(row)
	}
	return out, true
}

// --- Rename -------------------------------------------------------------

// Rename relabels columns without touching rows.
type Rename struct {
	in  Operator
	out *schema.Schema
}

// NewRename applies the old→new name mapping to in's schema. Unmapped
// columns keep their names.
func NewRename(in Operator, mapping map[string]string) (*Rename, error) {
	s := in.Schema()
	for old, new := range mapping {
		var err error
		s, err = s.Rename(old, new)
		if err != nil {
			return nil, err
		}
	}
	return &Rename{in: in, out: s}, nil
}

// Schema returns the renamed schema.
func (r *Rename) Schema() *schema.Schema { return r.out }

// Open opens the input.
func (r *Rename) Open() error { return r.in.Open() }

// Next passes rows through unchanged.
func (r *Rename) Next() (relation.Row, bool) { return r.in.Next() }

// --- Cross join -----------------------------------------------------------

// Cross produces the cartesian product of two inputs. The right input
// is materialized on Open.
type Cross struct {
	left, right Operator
	out         *schema.Schema
	rightRows   []relation.Row
	cur         relation.Row
	ri          int
}

// NewCross builds a cross join; columns of both sides are concatenated
// (right-side duplicates are suffixed with the right operator's index
// by the caller if needed — the planner qualifies names first).
func NewCross(left, right Operator) (*Cross, error) {
	return &Cross{left: left, right: right, out: concatSchema(left, right)}, nil
}

// concatSchema concatenates two operators' schemas, uniquifying
// duplicate column names with "_r" suffixes (the joined right side
// yields Name, Name_r, Name_r_r, ...).
func concatSchema(left, right Operator) *schema.Schema {
	cols := append(left.Schema().Columns(), right.Schema().Columns()...)
	seen := map[string]bool{}
	for i := range cols {
		key := cols[i].Name
		for seen[key] {
			key += "_r"
		}
		seen[key] = true
		cols[i].Name = key
	}
	return schema.New(cols...)
}

// Schema returns the concatenated schema.
func (c *Cross) Schema() *schema.Schema { return c.out }

// Open opens both inputs and materializes the right side.
func (c *Cross) Open() error {
	if err := c.left.Open(); err != nil {
		return err
	}
	if err := c.right.Open(); err != nil {
		return err
	}
	for {
		row, ok := c.right.Next()
		if !ok {
			break
		}
		c.rightRows = append(c.rightRows, row)
	}
	c.ri = len(c.rightRows) // force first left fetch
	return nil
}

// Next yields the next combined row.
func (c *Cross) Next() (relation.Row, bool) {
	for {
		if c.ri < len(c.rightRows) {
			out := make(relation.Row, 0, c.out.Len())
			out = append(out, c.cur...)
			out = append(out, c.rightRows[c.ri]...)
			c.ri++
			return out, true
		}
		row, ok := c.left.Next()
		if !ok {
			return nil, false
		}
		c.cur = row
		c.ri = 0
	}
}

// --- Hash equi-join -------------------------------------------------------

// HashJoin joins two inputs on equality of one column pair. Open
// drains the right (build) input and constructs the hash table
// presized to the build row count; the left (probe) side is pulled on
// demand and never materialized as a whole. With parallelism above 1
// the probe pulls bounded contiguous batches and shards them through
// parshard, folding shard outputs in shard order — exactly the order
// the sequential probe produces — so the output is byte-identical at
// every worker count and memory stays bounded by one batch.
type HashJoin struct {
	left, right       Operator
	leftCol, rightCol string
	out               *schema.Schema
	table             map[uint64][]relation.Row
	leftIdx, rightIdx int

	workers int             // probe workers; <= 1 streams row-at-a-time
	ctx     context.Context // span destination only; nil is fine

	// Sequential probe state.
	ri      int
	cur     relation.Row
	matches []relation.Row

	// Batched parallel probe state.
	buf   []relation.Row // joined rows pending emission, canonical order
	bi    int
	batch []relation.Row // reusable probe-side input batch
	done  bool
}

// probeChunk is the per-worker probe batch granularity: one parallel
// probe round pulls up to workers*probeChunk left rows. Large enough
// to amortize the shard dispatch, small enough that the pending
// output buffer stays a rounding error next to the build table.
const probeChunk = 1024

// NewHashJoin builds an inner equi-join on leftCol = rightCol.
func NewHashJoin(left, right Operator, leftCol, rightCol string) (*HashJoin, error) {
	if _, ok := left.Schema().Lookup(leftCol); !ok {
		return nil, fmt.Errorf("engine: hash join: no left column %q", leftCol)
	}
	if _, ok := right.Schema().Lookup(rightCol); !ok {
		return nil, fmt.Errorf("engine: hash join: no right column %q", rightCol)
	}
	return &HashJoin{
		left: left, right: right,
		leftCol: leftCol, rightCol: rightCol,
		out: concatSchema(left, right),
	}, nil
}

// SetParallelism sets the probe-side worker count: n <= 0 means
// GOMAXPROCS, 1 forces the sequential row-at-a-time probe. The output
// is byte-identical at every setting (the parshard canonical-order
// contract); only wall-clock and batching granularity change.
func (j *HashJoin) SetParallelism(n int) { j.workers = parshard.Workers(n) }

// SetSpanContext supplies the context whose trace receives the
// join.build / join.probe spans. Spans are its only use — operators do
// not poll ctx themselves; their callers cancel at materialize/stream
// strides, exactly as for every other operator.
func (j *HashJoin) SetSpanContext(ctx context.Context) { j.ctx = ctx }

// spanCtx returns the span context installed by SetSpanContext, or a
// background context when the join runs without tracing: the spans it
// feeds are observability-only, and cancellation of the join itself is
// the enclosing materialize/stream stride's job.
func (j *HashJoin) spanCtx() context.Context {
	if j.ctx != nil {
		return j.ctx
	}
	return context.Background()
}

// Schema returns the concatenated schema.
func (j *HashJoin) Schema() *schema.Schema { return j.out }

// Open builds the hash table over the right input, presized to the
// build side's row count so a large build never rehashes.
func (j *HashJoin) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		return err
	}
	j.leftIdx = j.left.Schema().MustLookup(j.leftCol)
	j.rightIdx = j.right.Schema().MustLookup(j.rightCol)
	_, sp := obs.StartSpan(j.spanCtx(), "join.build")
	var rows []relation.Row
	for {
		row, ok := j.right.Next()
		if !ok {
			break
		}
		rows = append(rows, row)
	}
	j.table = make(map[uint64][]relation.Row, len(rows))
	for _, row := range rows {
		key := row[j.rightIdx]
		if key.IsNull() {
			continue // NULL never joins
		}
		h := key.Hash()
		j.table[h] = append(j.table[h], row)
	}
	sp.SetInt("rows", len(rows))
	sp.SetInt("workers", j.workers)
	sp.End()
	return nil
}

// Next yields the next matched pair.
func (j *HashJoin) Next() (relation.Row, bool) {
	if j.workers > 1 {
		return j.nextParallel()
	}
	for {
		if j.ri < len(j.matches) {
			m := j.matches[j.ri]
			j.ri++
			out := make(relation.Row, 0, j.out.Len())
			out = append(out, j.cur...)
			out = append(out, m...)
			return out, true
		}
		row, ok := j.left.Next()
		if !ok {
			return nil, false
		}
		key := row[j.leftIdx]
		if key.IsNull() {
			continue
		}
		j.matches = j.matches[:0]
		for _, cand := range j.table[key.Hash()] {
			if cand[j.rightIdx].Equal(key) {
				j.matches = append(j.matches, cand)
			}
		}
		j.cur = row
		j.ri = 0
	}
}

func (j *HashJoin) nextParallel() (relation.Row, bool) {
	for j.bi >= len(j.buf) {
		if j.done {
			return nil, false
		}
		j.fillBatch()
	}
	out := j.buf[j.bi]
	j.buf[j.bi] = nil // release the row while the buffer slice is reused
	j.bi++
	return out, true
}

// fillBatch pulls up to workers*probeChunk probe rows (the only
// single-threaded pull on the left operator) and joins them across
// contiguous shards. Each shard appends matches to its own output
// slice; the fold walks shards in shard order, which is the probe
// order, so the emitted sequence is identical to the sequential
// probe's. A fault contained inside a shard re-panics out of Ranges
// as a typed *fault.InternalError and is converted at the next
// recovery boundary (materialize caller, stream producer, cache
// leader or HTTP handler), the same containment path every parallel
// phase uses.
func (j *HashJoin) fillBatch() {
	j.batch = j.batch[:0]
	limit := j.workers * probeChunk
	for len(j.batch) < limit {
		row, ok := j.left.Next()
		if !ok {
			j.done = true
			break
		}
		j.batch = append(j.batch, row)
	}
	j.buf = j.buf[:0]
	j.bi = 0
	if len(j.batch) == 0 {
		return
	}
	_, sp := obs.StartSpan(j.spanCtx(), "join.probe")
	outs := make([][]relation.Row, j.workers)
	parshard.Ranges(j.workers, len(j.batch), func(shard, lo, hi int) {
		var local []relation.Row
		for _, row := range j.batch[lo:hi] {
			key := row[j.leftIdx]
			if key.IsNull() {
				continue
			}
			for _, cand := range j.table[key.Hash()] {
				if cand[j.rightIdx].Equal(key) {
					out := make(relation.Row, 0, j.out.Len())
					out = append(out, row...)
					out = append(out, cand...)
					local = append(local, out)
				}
			}
		}
		outs[shard] = local
	})
	for _, o := range outs {
		j.buf = append(j.buf, o...)
	}
	sp.SetInt("rows", len(j.batch))
	sp.SetInt("matches", len(j.buf))
	sp.SetInt("workers", j.workers)
	sp.End()
}

// --- Union (same-schema) ----------------------------------------------------

// Union concatenates inputs with compatible (equal-arity) schemas,
// keeping duplicates (UNION ALL semantics).
type Union struct {
	ins []Operator
	cur int
}

// NewUnion concatenates the inputs. All inputs must share the first
// input's arity.
func NewUnion(ins ...Operator) (*Union, error) {
	if len(ins) == 0 {
		return nil, fmt.Errorf("engine: union of zero inputs")
	}
	arity := ins[0].Schema().Len()
	for _, in := range ins[1:] {
		if in.Schema().Len() != arity {
			return nil, fmt.Errorf("engine: union arity mismatch: %d vs %d", in.Schema().Len(), arity)
		}
	}
	return &Union{ins: ins}, nil
}

// Schema returns the first input's schema.
func (u *Union) Schema() *schema.Schema { return u.ins[0].Schema() }

// Open opens all inputs.
func (u *Union) Open() error {
	for _, in := range u.ins {
		if err := in.Open(); err != nil {
			return err
		}
	}
	return nil
}

// Next drains inputs in order.
func (u *Union) Next() (relation.Row, bool) {
	for u.cur < len(u.ins) {
		if row, ok := u.ins[u.cur].Next(); ok {
			return row, true
		}
		u.cur++
	}
	return nil, false
}

// --- Outer union -------------------------------------------------------------

// OuterUnion implements the full outer union used by FUSE FROM: the
// output schema is the union of all input schemas (schema.OuterUnion);
// each input row is padded with NULLs for columns it lacks.
type OuterUnion struct {
	ins    []Operator
	out    *schema.Schema
	aligns [][]int
	cur    int
}

// NewOuterUnion builds the outer union of the inputs.
func NewOuterUnion(ins ...Operator) (*OuterUnion, error) {
	if len(ins) == 0 {
		return nil, fmt.Errorf("engine: outer union of zero inputs")
	}
	schemas := make([]*schema.Schema, len(ins))
	for i, in := range ins {
		schemas[i] = in.Schema()
	}
	out := schema.OuterUnion(schemas...)
	aligns := make([][]int, len(ins))
	for i, s := range schemas {
		aligns[i] = schema.AlignmentOf(out, s)
	}
	return &OuterUnion{ins: ins, out: out, aligns: aligns}, nil
}

// Schema returns the unified schema.
func (u *OuterUnion) Schema() *schema.Schema { return u.out }

// Open opens all inputs.
func (u *OuterUnion) Open() error {
	for _, in := range u.ins {
		if err := in.Open(); err != nil {
			return err
		}
	}
	return nil
}

// Next yields the next padded row.
func (u *OuterUnion) Next() (relation.Row, bool) {
	for u.cur < len(u.ins) {
		row, ok := u.ins[u.cur].Next()
		if !ok {
			u.cur++
			continue
		}
		align := u.aligns[u.cur]
		out := make(relation.Row, u.out.Len())
		for i, j := range align {
			if j >= 0 {
				out[i] = row[j]
			} else {
				out[i] = value.Null
			}
		}
		return out, true
	}
	return nil, false
}

// --- Distinct ------------------------------------------------------------------

// Distinct removes duplicate rows (hash-based, first occurrence wins).
type Distinct struct {
	in   Operator
	seen map[uint64][]relation.Row
}

// NewDistinct wraps in with duplicate elimination.
func NewDistinct(in Operator) *Distinct { return &Distinct{in: in} }

// Schema passes through.
func (d *Distinct) Schema() *schema.Schema { return d.in.Schema() }

// Open opens the input.
func (d *Distinct) Open() error {
	d.seen = make(map[uint64][]relation.Row)
	return d.in.Open()
}

// Next yields the next previously unseen row.
func (d *Distinct) Next() (relation.Row, bool) {
	for {
		row, ok := d.in.Next()
		if !ok {
			return nil, false
		}
		h := row.Hash()
		dup := false
		for _, prev := range d.seen[h] {
			if prev.Equal(row) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		d.seen[h] = append(d.seen[h], row)
		return row, true
	}
}

// --- Sort -------------------------------------------------------------------------

// SortKey is one ORDER BY term.
type SortKey struct {
	Col  string
	Desc bool
}

// Sort materializes the input and emits rows ordered by the keys.
type Sort struct {
	in   Operator
	keys []SortKey
	rows []relation.Row
	pos  int
}

// NewSort orders in by keys.
func NewSort(in Operator, keys []SortKey) *Sort { return &Sort{in: in, keys: keys} }

// Schema passes through.
func (s *Sort) Schema() *schema.Schema { return s.in.Schema() }

// Open materializes and sorts.
func (s *Sort) Open() error {
	if err := s.in.Open(); err != nil {
		return err
	}
	idx := make([]int, len(s.keys))
	for i, k := range s.keys {
		j, ok := s.in.Schema().Lookup(k.Col)
		if !ok {
			return fmt.Errorf("engine: sort: no column %q", k.Col)
		}
		idx[i] = j
	}
	for {
		row, ok := s.in.Next()
		if !ok {
			break
		}
		s.rows = append(s.rows, row)
	}
	stableSort(s.rows, func(a, b relation.Row) int {
		for i, j := range idx {
			c := a[j].Compare(b[j])
			if s.keys[i].Desc {
				c = -c
			}
			if c != 0 {
				return c
			}
		}
		return 0
	})
	return nil
}

// Next yields sorted rows.
func (s *Sort) Next() (relation.Row, bool) {
	if s.pos >= len(s.rows) {
		return nil, false
	}
	row := s.rows[s.pos]
	s.pos++
	return row, true
}

// stableSort is an insertion-free merge sort keeping equal rows in
// input order.
func stableSort(rows []relation.Row, cmp func(a, b relation.Row) int) {
	if len(rows) < 2 {
		return
	}
	buf := make([]relation.Row, len(rows))
	var ms func(lo, hi int)
	ms = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		mid := (lo + hi) / 2
		ms(lo, mid)
		ms(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if cmp(rows[i], rows[j]) <= 0 {
				buf[k] = rows[i]
				i++
			} else {
				buf[k] = rows[j]
				j++
			}
			k++
		}
		for i < mid {
			buf[k] = rows[i]
			i++
			k++
		}
		for j < hi {
			buf[k] = rows[j]
			j++
			k++
		}
		copy(rows[lo:hi], buf[lo:hi])
	}
	ms(0, len(rows))
}

// --- Limit ---------------------------------------------------------------------------

// Limit passes at most n rows.
type Limit struct {
	in   Operator
	n    int
	seen int
}

// NewLimit caps output at n rows.
func NewLimit(in Operator, n int) *Limit { return &Limit{in: in, n: n} }

// Schema passes through.
func (l *Limit) Schema() *schema.Schema { return l.in.Schema() }

// Open opens the input.
func (l *Limit) Open() error { l.seen = 0; return l.in.Open() }

// Next yields up to n rows.
func (l *Limit) Next() (relation.Row, bool) {
	if l.seen >= l.n {
		return nil, false
	}
	row, ok := l.in.Next()
	if !ok {
		return nil, false
	}
	l.seen++
	return row, true
}
