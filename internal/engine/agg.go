package engine

import (
	"fmt"
	"strings"

	"hummer/internal/relation"
	"hummer/internal/schema"
	"hummer/internal/value"
)

// AggFunc is an incremental aggregate: Add consumes one input value,
// Result produces the aggregate. Implementations are single-use.
type AggFunc interface {
	Add(v value.Value)
	Result() value.Value
}

// AggFactory creates a fresh AggFunc per group.
type AggFactory func() AggFunc

// builtinAggs maps SQL aggregate names to factories. NULLs are ignored
// by all aggregates except count(*), per SQL.
var builtinAggs = map[string]AggFactory{
	"count": func() AggFunc { return &countAgg{} },
	"sum":   func() AggFunc { return &sumAgg{} },
	"avg":   func() AggFunc { return &avgAgg{} },
	"min":   func() AggFunc { return &minAgg{} },
	"max":   func() AggFunc { return &maxAgg{} },
}

// LookupAgg returns the factory for a SQL aggregate name.
func LookupAgg(name string) (AggFactory, bool) {
	f, ok := builtinAggs[strings.ToLower(name)]
	return f, ok
}

type countAgg struct{ n int64 }

func (a *countAgg) Add(v value.Value) {
	if !v.IsNull() {
		a.n++
	}
}
func (a *countAgg) Result() value.Value { return value.NewInt(a.n) }

type sumAgg struct {
	sum     float64
	intSum  int64
	allInt  bool
	started bool
}

func (a *sumAgg) Add(v value.Value) {
	f, ok := v.AsFloat()
	if !ok {
		return
	}
	if !a.started {
		a.started = true
		a.allInt = true
	}
	if v.Kind() == value.KindInt {
		a.intSum += v.Int()
	} else {
		a.allInt = false
	}
	a.sum += f
}

func (a *sumAgg) Result() value.Value {
	if !a.started {
		return value.Null
	}
	if a.allInt {
		return value.NewInt(a.intSum)
	}
	return value.NewFloat(a.sum)
}

type avgAgg struct {
	sum float64
	n   int64
}

func (a *avgAgg) Add(v value.Value) {
	if f, ok := v.AsFloat(); ok {
		a.sum += f
		a.n++
	}
}

func (a *avgAgg) Result() value.Value {
	if a.n == 0 {
		return value.Null
	}
	return value.NewFloat(a.sum / float64(a.n))
}

type minAgg struct {
	best value.Value
}

func (a *minAgg) Add(v value.Value) {
	if v.IsNull() {
		return
	}
	if a.best.IsNull() || v.Compare(a.best) < 0 {
		a.best = v
	}
}
func (a *minAgg) Result() value.Value { return a.best }

type maxAgg struct {
	best value.Value
}

func (a *maxAgg) Add(v value.Value) {
	if v.IsNull() {
		return
	}
	if a.best.IsNull() || v.Compare(a.best) > 0 {
		a.best = v
	}
}
func (a *maxAgg) Result() value.Value { return a.best }

// AggSpec is one aggregated output column: apply Factory to input
// column Col, emitting output column As. Col == "*" with a count
// factory implements count(*).
type AggSpec struct {
	Factory AggFactory
	Col     string
	As      string
}

// Group implements hash grouping with aggregation. Output columns are
// the group-by keys followed by the aggregates. Groups are emitted in
// first-appearance order (deterministic, unlike map iteration).
type Group struct {
	in     Operator
	keys   []string
	specs  []AggSpec
	out    *schema.Schema
	groups []*groupState
	pos    int
}

type groupState struct {
	key  relation.Row
	aggs []AggFunc
}

// NewGroup builds a grouping operator over keys with the given
// aggregate specs. An empty key list aggregates the whole input into a
// single row.
func NewGroup(in Operator, keys []string, specs []AggSpec) (*Group, error) {
	s := in.Schema()
	cols := make([]schema.Column, 0, len(keys)+len(specs))
	for _, k := range keys {
		i, ok := s.Lookup(k)
		if !ok {
			return nil, fmt.Errorf("engine: group: no column %q", k)
		}
		cols = append(cols, s.Col(i))
	}
	for _, sp := range specs {
		if sp.Col != "*" {
			if _, ok := s.Lookup(sp.Col); !ok {
				return nil, fmt.Errorf("engine: group: no aggregate input column %q", sp.Col)
			}
		}
		cols = append(cols, schema.Column{Name: sp.As})
	}
	return &Group{in: in, keys: keys, specs: specs, out: schema.New(cols...)}, nil
}

// Schema returns keys ++ aggregates.
func (g *Group) Schema() *schema.Schema { return g.out }

// Open consumes the whole input, building group states.
func (g *Group) Open() error {
	if err := g.in.Open(); err != nil {
		return err
	}
	s := g.in.Schema()
	keyIdx := make([]int, len(g.keys))
	for i, k := range g.keys {
		keyIdx[i] = s.MustLookup(k)
	}
	colIdx := make([]int, len(g.specs))
	for i, sp := range g.specs {
		if sp.Col == "*" {
			colIdx[i] = -1
		} else {
			colIdx[i] = s.MustLookup(sp.Col)
		}
	}
	index := map[uint64][]*groupState{}
	single := len(g.keys) == 0
	for {
		row, ok := g.in.Next()
		if !ok {
			break
		}
		key := make(relation.Row, len(keyIdx))
		for i, j := range keyIdx {
			key[i] = row[j]
		}
		var st *groupState
		h := key.Hash()
		for _, cand := range index[h] {
			if cand.key.Equal(key) {
				st = cand
				break
			}
		}
		if st == nil {
			st = &groupState{key: key, aggs: make([]AggFunc, len(g.specs))}
			for i, sp := range g.specs {
				st.aggs[i] = sp.Factory()
			}
			index[h] = append(index[h], st)
			g.groups = append(g.groups, st)
		}
		for i, j := range colIdx {
			if j < 0 {
				st.aggs[i].Add(value.NewInt(1)) // count(*): every row counts
			} else {
				st.aggs[i].Add(row[j])
			}
		}
	}
	// With no keys and no input, SQL still emits one row of "empty"
	// aggregates (count=0, sum=NULL ...).
	if single && len(g.groups) == 0 {
		st := &groupState{key: relation.Row{}, aggs: make([]AggFunc, len(g.specs))}
		for i, sp := range g.specs {
			st.aggs[i] = sp.Factory()
		}
		g.groups = append(g.groups, st)
	}
	return nil
}

// Next emits one row per group.
func (g *Group) Next() (relation.Row, bool) {
	if g.pos >= len(g.groups) {
		return nil, false
	}
	st := g.groups[g.pos]
	g.pos++
	out := make(relation.Row, 0, g.out.Len())
	out = append(out, st.key...)
	for _, a := range st.aggs {
		out = append(out, a.Result())
	}
	return out, true
}
