package engine

import (
	"testing"

	"hummer/internal/expr"
	"hummer/internal/relation"
	"hummer/internal/value"
)

func people() *relation.Relation {
	return relation.NewBuilder("people", "Name", "Age", "City").
		AddText("Alice", "30", "Berlin").
		AddText("Bob", "25", "Tokyo").
		AddText("Carol", "35", "Berlin").
		AddText("Dave", "", "Oslo").
		Build()
}

func drain(t *testing.T, op Operator) *relation.Relation {
	t.Helper()
	rel, err := Materialize("out", op)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	return rel
}

func TestScan(t *testing.T) {
	out := drain(t, NewScan(people()))
	if out.Len() != 4 {
		t.Fatalf("scan yielded %d rows, want 4", out.Len())
	}
	if out.Value(0, "Name").Text() != "Alice" {
		t.Error("scan order broken")
	}
}

func TestFilter(t *testing.T) {
	pred := expr.NewCmp(expr.GT, expr.NewCol("Age"), expr.NewLit(value.NewInt(26)))
	out := drain(t, NewFilter(NewScan(people()), pred))
	if out.Len() != 2 {
		t.Fatalf("filter yielded %d rows, want 2 (NULL age drops)", out.Len())
	}
	for i := 0; i < out.Len(); i++ {
		if out.Value(i, "Age").Int() <= 26 {
			t.Errorf("row %d fails predicate", i)
		}
	}
}

func TestFilterBindError(t *testing.T) {
	pred := expr.NewCol("missing")
	_, err := Materialize("x", NewFilter(NewScan(people()), pred))
	if err == nil {
		t.Fatal("expected bind error")
	}
}

func TestProject(t *testing.T) {
	op := NewProject(NewScan(people()), []ProjectItem{
		{Expr: expr.NewCol("Name"), As: "who"},
		{Expr: expr.NewArith(expr.Add, expr.NewCol("Age"), expr.NewLit(value.NewInt(1))), As: "next_age"},
	})
	out := drain(t, op)
	if got := out.Schema().Names(); got[0] != "who" || got[1] != "next_age" {
		t.Fatalf("schema = %v", got)
	}
	if got := out.Value(0, "next_age"); !got.Equal(value.NewInt(31)) {
		t.Errorf("computed column = %v", got)
	}
	if !out.Value(3, "next_age").IsNull() {
		t.Error("NULL + 1 must be NULL")
	}
}

func TestProjectCols(t *testing.T) {
	out := drain(t, NewProjectCols(NewScan(people()), "City", "Name"))
	if got := out.Schema().Names(); got[0] != "City" || got[1] != "Name" {
		t.Fatalf("schema = %v", got)
	}
}

func TestRename(t *testing.T) {
	op, err := NewRename(NewScan(people()), map[string]string{"Name": "FullName"})
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, op)
	if !out.Schema().Has("FullName") || out.Schema().Has("Name") {
		t.Error("rename did not apply")
	}
	if _, err := NewRename(NewScan(people()), map[string]string{"nope": "x"}); err == nil {
		t.Error("renaming missing column must fail")
	}
}

func TestCross(t *testing.T) {
	a := relation.NewBuilder("a", "x").AddText("1").AddText("2").Build()
	b := relation.NewBuilder("b", "y").AddText("p").AddText("q").AddText("r").Build()
	op, err := NewCross(NewScan(a), NewScan(b))
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, op)
	if out.Len() != 6 {
		t.Fatalf("cross yielded %d rows, want 6", out.Len())
	}
}

func TestCrossRenamesDuplicateColumns(t *testing.T) {
	a := relation.NewBuilder("a", "x").AddText("1").Build()
	b := relation.NewBuilder("b", "x").AddText("2").Build()
	op, err := NewCross(NewScan(a), NewScan(b))
	if err != nil {
		t.Fatal(err)
	}
	names := op.Schema().Names()
	if names[0] != "x" || names[1] != "x_r" {
		t.Errorf("schema = %v", names)
	}
}

func TestHashJoin(t *testing.T) {
	orders := relation.NewBuilder("orders", "oid", "cust").
		AddText("1", "alice").
		AddText("2", "bob").
		AddText("3", "alice").
		AddText("4", "").
		Build()
	custs := relation.NewBuilder("custs", "name", "city").
		AddText("alice", "Berlin").
		AddText("bob", "Tokyo").
		AddText("carol", "Oslo").
		Build()
	op, err := NewHashJoin(NewScan(orders), NewScan(custs), "cust", "name")
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, op)
	if out.Len() != 3 {
		t.Fatalf("join yielded %d rows, want 3 (NULL never joins)", out.Len())
	}
	for i := 0; i < out.Len(); i++ {
		if out.Value(i, "cust").Text() != out.Value(i, "name").Text() {
			t.Errorf("row %d join key mismatch", i)
		}
	}
}

func TestHashJoinMissingColumns(t *testing.T) {
	a := relation.NewBuilder("a", "x").Build()
	b := relation.NewBuilder("b", "y").Build()
	if _, err := NewHashJoin(NewScan(a), NewScan(b), "zz", "y"); err == nil {
		t.Error("missing left column must fail")
	}
	if _, err := NewHashJoin(NewScan(a), NewScan(b), "x", "zz"); err == nil {
		t.Error("missing right column must fail")
	}
}

func TestUnion(t *testing.T) {
	a := relation.NewBuilder("a", "x").AddText("1").Build()
	b := relation.NewBuilder("b", "x").AddText("2").AddText("3").Build()
	op, err := NewUnion(NewScan(a), NewScan(b))
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, op)
	if out.Len() != 3 {
		t.Fatalf("union yielded %d, want 3", out.Len())
	}
	if _, err := NewUnion(); err == nil {
		t.Error("empty union must fail")
	}
	c := relation.NewBuilder("c", "x", "y").Build()
	if _, err := NewUnion(NewScan(a), NewScan(c)); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestOuterUnion(t *testing.T) {
	ee := relation.NewBuilder("EE", "Name", "Age").
		AddText("Alice", "21").Build()
	cs := relation.NewBuilder("CS", "Name", "Semester", "Age").
		AddText("Bob", "3", "24").Build()
	op, err := NewOuterUnion(NewScan(ee), NewScan(cs))
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, op)
	names := out.Schema().Names()
	want := []string{"Name", "Age", "Semester"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("schema = %v, want %v", names, want)
		}
	}
	if out.Len() != 2 {
		t.Fatalf("rows = %d, want 2", out.Len())
	}
	if !out.Value(0, "Semester").IsNull() {
		t.Error("EE row must have NULL Semester")
	}
	if got := out.Value(1, "Semester"); !got.Equal(value.NewInt(3)) {
		t.Errorf("CS row semester = %v", got)
	}
}

func TestDistinct(t *testing.T) {
	r := relation.NewBuilder("r", "x", "y").
		AddText("1", "a").
		AddText("1", "a").
		AddText("1", "b").
		AddText("2", "a").
		AddText("1", "a").
		Build()
	out := drain(t, NewDistinct(NewScan(r)))
	if out.Len() != 3 {
		t.Fatalf("distinct yielded %d rows, want 3", out.Len())
	}
}

func TestSort(t *testing.T) {
	op := NewSort(NewScan(people()), []SortKey{{Col: "Age", Desc: true}})
	out := drain(t, op)
	// Desc: 35, 30, 25, NULL(last under desc because NULL sorts smallest)
	if got := out.Value(0, "Name").Text(); got != "Carol" {
		t.Errorf("first = %q, want Carol", got)
	}
	if !out.Value(3, "Age").IsNull() {
		t.Error("NULL must sort last under DESC")
	}
}

func TestSortMultiKeyStable(t *testing.T) {
	r := relation.NewBuilder("r", "g", "v").
		AddText("b", "2").
		AddText("a", "1").
		AddText("b", "1").
		AddText("a", "2").
		Build()
	op := NewSort(NewScan(r), []SortKey{{Col: "g"}, {Col: "v", Desc: true}})
	out := drain(t, op)
	want := [][2]string{{"a", "2"}, {"a", "1"}, {"b", "2"}, {"b", "1"}}
	for i, w := range want {
		if out.Value(i, "g").Text() != w[0] || out.Value(i, "v").Text() != w[1] {
			t.Errorf("row %d = (%s,%s), want %v", i, out.Value(i, "g").Text(), out.Value(i, "v").Text(), w)
		}
	}
}

func TestSortMissingColumn(t *testing.T) {
	op := NewSort(NewScan(people()), []SortKey{{Col: "nope"}})
	if _, err := Materialize("x", op); err == nil {
		t.Error("sorting on missing column must fail at Open")
	}
}

func TestLimit(t *testing.T) {
	out := drain(t, NewLimit(NewScan(people()), 2))
	if out.Len() != 2 {
		t.Fatalf("limit yielded %d rows", out.Len())
	}
	out = drain(t, NewLimit(NewScan(people()), 0))
	if out.Len() != 0 {
		t.Fatalf("limit 0 yielded %d rows", out.Len())
	}
	out = drain(t, NewLimit(NewScan(people()), 100))
	if out.Len() != 4 {
		t.Fatalf("limit beyond input yielded %d rows", out.Len())
	}
}

func TestGroupAggregates(t *testing.T) {
	mk := func(name string) AggFactory {
		f, ok := LookupAgg(name)
		if !ok {
			t.Fatalf("no aggregate %q", name)
		}
		return f
	}
	op, err := NewGroup(NewScan(people()), []string{"City"}, []AggSpec{
		{Factory: mk("count"), Col: "*", As: "n"},
		{Factory: mk("sum"), Col: "Age", As: "total"},
		{Factory: mk("min"), Col: "Age", As: "youngest"},
		{Factory: mk("max"), Col: "Age", As: "oldest"},
		{Factory: mk("avg"), Col: "Age", As: "mean"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, op)
	if out.Len() != 3 {
		t.Fatalf("groups = %d, want 3", out.Len())
	}
	// Groups appear in first-appearance order: Berlin, Tokyo, Oslo.
	if out.Value(0, "City").Text() != "Berlin" {
		t.Fatalf("first group = %v", out.Value(0, "City"))
	}
	if got := out.Value(0, "n"); !got.Equal(value.NewInt(2)) {
		t.Errorf("Berlin count = %v", got)
	}
	if got := out.Value(0, "total"); !got.Equal(value.NewInt(65)) {
		t.Errorf("Berlin sum = %v", got)
	}
	if got := out.Value(0, "mean"); !got.Equal(value.NewFloat(32.5)) {
		t.Errorf("Berlin avg = %v", got)
	}
	// Oslo: Dave has NULL age — aggregates over no values.
	if got := out.Value(2, "n"); !got.Equal(value.NewInt(1)) {
		t.Errorf("Oslo count(*) = %v, want 1", got)
	}
	if !out.Value(2, "total").IsNull() {
		t.Error("sum of only NULLs must be NULL")
	}
	if !out.Value(2, "youngest").IsNull() || !out.Value(2, "oldest").IsNull() {
		t.Error("min/max of only NULLs must be NULL")
	}
}

func TestGroupNoKeysEmptyInput(t *testing.T) {
	empty := relation.NewBuilder("e", "v").Build()
	cnt, _ := LookupAgg("count")
	op, err := NewGroup(NewScan(empty), nil, []AggSpec{{Factory: cnt, Col: "*", As: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, op)
	if out.Len() != 1 {
		t.Fatalf("global aggregate over empty input must emit 1 row, got %d", out.Len())
	}
	if got := out.Value(0, "n"); !got.Equal(value.NewInt(0)) {
		t.Errorf("count = %v, want 0", got)
	}
}

func TestGroupMissingColumns(t *testing.T) {
	cnt, _ := LookupAgg("count")
	if _, err := NewGroup(NewScan(people()), []string{"nope"}, nil); err == nil {
		t.Error("missing key column must fail")
	}
	if _, err := NewGroup(NewScan(people()), nil, []AggSpec{{Factory: cnt, Col: "nope", As: "n"}}); err == nil {
		t.Error("missing aggregate column must fail")
	}
}

func TestSumMixedIntFloat(t *testing.T) {
	r := relation.NewBuilder("r", "v").AddText("1").AddText("2.5").Build()
	sum, _ := LookupAgg("sum")
	op, err := NewGroup(NewScan(r), nil, []AggSpec{{Factory: sum, Col: "v", As: "s"}})
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, op)
	if got := out.Value(0, "s"); !got.Equal(value.NewFloat(3.5)) {
		t.Errorf("sum = %v, want 3.5", got)
	}
}

func TestComposition(t *testing.T) {
	// SELECT City, count(*) FROM people WHERE Age IS NOT NULL GROUP BY City ORDER BY City
	cnt, _ := LookupAgg("count")
	filtered := NewFilter(NewScan(people()), expr.NewIsNull(expr.NewCol("Age"), true))
	grouped, err := NewGroup(filtered, []string{"City"}, []AggSpec{{Factory: cnt, Col: "*", As: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, NewSort(grouped, []SortKey{{Col: "City"}}))
	if out.Len() != 2 {
		t.Fatalf("rows = %d, want 2 (Oslo dropped)", out.Len())
	}
	if out.Value(0, "City").Text() != "Berlin" || !out.Value(0, "n").Equal(value.NewInt(2)) {
		t.Errorf("row 0 = %v/%v", out.Value(0, "City"), out.Value(0, "n"))
	}
}
