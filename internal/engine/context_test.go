package engine

import (
	"context"
	"errors"
	"testing"

	"hummer/internal/relation"
	"hummer/internal/schema"
	"hummer/internal/value"
)

// cancellingOp yields rows forever, cancelling the test's context
// after a fixed number of Next calls — the deterministic stand-in for
// "the client hung up while the scan was running".
type cancellingOp struct {
	sch    *schema.Schema
	n      int
	after  int
	cancel context.CancelFunc
}

func (o *cancellingOp) Schema() *schema.Schema { return o.sch }
func (o *cancellingOp) Open() error            { return nil }
func (o *cancellingOp) Next() (relation.Row, bool) {
	o.n++
	if o.n == o.after {
		o.cancel()
	}
	return relation.Row{value.NewInt(int64(o.n))}, true
}

// TestMaterializeContextCancelsMidScan: a context cancelled while the
// operator tree is being drained stops the scan at the next row
// stride with ctx's error — plain-SQL statements no longer run to
// completion after their caller is gone.
func TestMaterializeContextCancelsMidScan(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	op := &cancellingOp{
		sch:    schema.New(schema.Column{Name: "n", Type: value.KindInt}),
		after:  materializeStride + 1,
		cancel: cancel,
	}
	rel, err := MaterializeContext(ctx, "out", op)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("MaterializeContext returned (%v, %v), want context.Canceled", rel, err)
	}
	if op.n >= 10*materializeStride {
		t.Fatalf("scan ran %d rows past the cancellation", op.n)
	}
}

// TestMaterializeContextPreCancelled: a dead context never opens the
// operator.
func TestMaterializeContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MaterializeContext(ctx, "out", NewScan(people())); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestMaterializeContextComplete: an unconstrained context changes
// nothing — the drain is identical to Materialize.
func TestMaterializeContextComplete(t *testing.T) {
	rel, err := MaterializeContext(context.Background(), "out", NewScan(people()))
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, NewScan(people()))
	if rel.String() != want.String() {
		t.Fatalf("ctx drain differs:\n%s\nvs\n%s", rel, want)
	}
}
