package engine

import (
	"math"
	"os"
	"testing"
	"time"

	"hummer/internal/relation"
	"hummer/internal/value"
)

// joinInputs builds a probe/build pair exercising every key shape the
// presized build table must handle: duplicate keys on both sides,
// NULL keys on both sides, cross-numeric keys (int 3 joins float
// 3.0), NaN keys, and keys that collide only after .Equal
// verification.
func joinInputs() (left, right *relation.Relation) {
	left = relation.NewBuilder("l", "k", "lv").
		Add(value.NewInt(1), value.NewString("a")).
		Add(value.NewInt(2), value.NewString("b")).
		Add(value.NewInt(2), value.NewString("c")).
		Add(value.Null, value.NewString("null-probe")).
		Add(value.NewFloat(3), value.NewString("d")).
		Add(value.NewFloat(math.NaN()), value.NewString("nan-probe")).
		Add(value.NewString("x"), value.NewString("e")).
		Add(value.NewInt(99), value.NewString("f")).
		Build()
	right = relation.NewBuilder("r", "k", "rv").
		Add(value.NewInt(2), value.NewString("R1")).
		Add(value.NewInt(2), value.NewString("R2")).
		Add(value.NewInt(3), value.NewString("R3")).
		Add(value.Null, value.NewString("null-build")).
		Add(value.NewFloat(math.NaN()), value.NewString("nan-build")).
		Add(value.NewString("x"), value.NewString("R4")).
		Add(value.NewInt(1), value.NewString("R5")).
		Build()
	return left, right
}

func joinAt(t *testing.T, workers int, left, right *relation.Relation) *relation.Relation {
	t.Helper()
	j, err := NewHashJoin(NewScan(left), NewScan(right), "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	j.SetParallelism(workers)
	return drain(t, j)
}

// TestHashJoinParallelByteIdentity is the determinism acceptance test
// for the batched parallel probe: at every worker count the join
// yields byte-identical output in the canonical order — left scan
// order crossed with right insertion order.
func TestHashJoinParallelByteIdentity(t *testing.T) {
	left, right := joinInputs()
	want := joinAt(t, 1, left, right)
	// The sequential baseline pins the canonical semantics first.
	// 1→R5, 2×{b,c}→{R1,R2} (4 rows), 3.0→R3, "x"→R4; NULL and NaN
	// keys drop on both sides.
	if want.Len() != 7 {
		t.Fatalf("sequential join rows = %d, want 7:\n%s", want.Len(), want)
	}
	if got := want.Value(0, "lv").Text() + want.Value(0, "rv").Text(); got != "aR5" {
		t.Fatalf("first joined row = %q, want left order preserved (aR5)", got)
	}
	for _, workers := range []int{2, 3, 7, 16} {
		got := joinAt(t, workers, left, right)
		if got.String() != want.String() {
			t.Errorf("workers=%d output differs:\n%s\nvs sequential:\n%s", workers, got, want)
		}
	}
}

// TestHashJoinParallelManyRows crosses a batch boundary (the batched
// probe pulls workers*probeChunk rows per round) to prove canonical
// order holds across fills, not only inside one.
func TestHashJoinParallelManyRows(t *testing.T) {
	n := 3*probeChunk + 17
	lb := relation.NewBuilder("l", "k", "i")
	for i := 0; i < n; i++ {
		lb.Add(value.NewInt(int64(i%257)), value.NewInt(int64(i)))
	}
	left := lb.Build()
	rb := relation.NewBuilder("r", "k", "j")
	for i := 0; i < 257; i++ {
		rb.Add(value.NewInt(int64(i)), value.NewInt(int64(i*10)))
	}
	right := rb.Build()
	want := joinAt(t, 1, left, right)
	if want.Len() != n {
		t.Fatalf("rows = %d, want %d", want.Len(), n)
	}
	got := joinAt(t, 3, left, right)
	if got.String() != want.String() {
		t.Error("parallel output differs across batch boundaries")
	}
}

// TestHashJoinNullKeys pins the NULL contract of the presized build
// table: NULL keys are skipped on both sides — a NULL never joins,
// not even another NULL.
func TestHashJoinNullKeys(t *testing.T) {
	left := relation.NewBuilder("l", "k").Add(value.Null).Add(value.NewInt(1)).Build()
	right := relation.NewBuilder("r", "k").Add(value.Null).Add(value.NewInt(2)).Build()
	for _, workers := range []int{1, 4} {
		if got := joinAt(t, workers, left, right); got.Len() != 0 {
			t.Errorf("workers=%d: NULL keys joined: %d rows", workers, got.Len())
		}
	}
}

// TestHashJoinNaNKeys pins the NaN contract: a NaN key is not NULL,
// so it enters the presized build table, but value equality follows
// IEEE semantics (NaN != NaN) — so NaN keys hash-collide with each
// other and are then rejected by the .Equal verification, on the
// sequential and the parallel probe alike.
func TestHashJoinNaNKeys(t *testing.T) {
	nan := value.NewFloat(math.NaN())
	left := relation.NewBuilder("l", "k").Add(nan).Add(value.NewFloat(1)).Build()
	right := relation.NewBuilder("r", "k").Add(nan).Add(value.NewFloat(1)).Build()
	for _, workers := range []int{1, 4} {
		got := joinAt(t, workers, left, right)
		if got.Len() != 1 {
			t.Fatalf("workers=%d: rows = %d, want 1 (only 1.0 = 1.0; NaN must not join NaN)", workers, got.Len())
		}
		if math.IsNaN(got.Row(0)[0].Float()) {
			t.Errorf("workers=%d: NaN key joined", workers)
		}
	}
}

// TestHashJoinCrossNumericKeys pins that the presized table keeps the
// cross-numeric equality of the value model: int 3 and float 3.0 hash
// identically (via the float64 image) and are Equal, so they join.
func TestHashJoinCrossNumericKeys(t *testing.T) {
	left := relation.NewBuilder("l", "k").Add(value.NewInt(3)).Build()
	right := relation.NewBuilder("r", "k").Add(value.NewFloat(3)).Build()
	for _, workers := range []int{1, 4} {
		if got := joinAt(t, workers, left, right); got.Len() != 1 {
			t.Errorf("workers=%d: int 3 did not join float 3.0 (%d rows)", workers, got.Len())
		}
	}
}

// TestParallelJoinRegression is the bench-join perf gate (armed by
// HUMMER_BENCH_JOIN=1, see the Makefile target): the batched parallel
// probe must not regress more than 10% against the sequential
// streaming probe on the same workload. Min-of-N timing keeps the
// comparison stable; a small absolute slack absorbs scheduler noise
// on loaded CI boxes.
func TestParallelJoinRegression(t *testing.T) {
	if os.Getenv("HUMMER_BENCH_JOIN") == "" {
		t.Skip("perf gate: set HUMMER_BENCH_JOIN=1 (make bench-join) to run")
	}
	const nLeft, nRight = 60000, 15000
	lb := relation.NewBuilder("l", "k", "i")
	for i := 0; i < nLeft; i++ {
		lb.Add(value.NewInt(int64(i%nRight)), value.NewInt(int64(i)))
	}
	left := lb.Build()
	rb := relation.NewBuilder("r", "k", "j")
	for i := 0; i < nRight; i++ {
		rb.Add(value.NewInt(int64(i)), value.NewInt(int64(i*7)))
	}
	right := rb.Build()

	runOnce := func(workers int) (time.Duration, int) {
		j, err := NewHashJoin(NewScan(left), NewScan(right), "k", "k")
		if err != nil {
			t.Fatal(err)
		}
		j.SetParallelism(workers)
		start := time.Now()
		out, err := Materialize("out", j)
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start), out.Len()
	}
	best := func(workers int) time.Duration {
		min := time.Duration(math.MaxInt64)
		for i := 0; i < 5; i++ {
			d, n := runOnce(workers)
			if n != nLeft {
				t.Fatalf("workers=%d produced %d rows, want %d", workers, n, nLeft)
			}
			if d < min {
				min = d
			}
		}
		return min
	}
	seq := best(1)
	par := best(4)
	limit := seq + seq/10 + 20*time.Millisecond
	t.Logf("sequential %v, parallel(4) %v, limit %v", seq, par, limit)
	if par > limit {
		t.Fatalf("parallel join regressed: %v > %v (sequential %v + 10%% + slack)", par, limit, seq)
	}
}
