package engine

import (
	"math/rand"
	"testing"

	"hummer/internal/expr"
	"hummer/internal/relation"
	"hummer/internal/schema"
	"hummer/internal/value"
)

func randomTable(rng *rand.Rand, n int) *relation.Relation {
	b := relation.NewBuilder("t", "a", "b", "c")
	for i := 0; i < n; i++ {
		row := make(relation.Row, 3)
		for j := range row {
			switch rng.Intn(4) {
			case 0:
				row[j] = value.Null
			case 1:
				row[j] = value.NewInt(int64(rng.Intn(10)))
			case 2:
				row[j] = value.NewFloat(rng.Float64() * 10)
			default:
				row[j] = value.NewString(string(rune('a' + rng.Intn(5))))
			}
		}
		b.Add(row...)
	}
	return b.Build()
}

func materializeOrDie(t *testing.T, op Operator) *relation.Relation {
	t.Helper()
	rel, err := Materialize("out", op)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// rowMultiset renders a relation as a hash-count multiset for
// order-insensitive comparison.
func rowMultiset(rel *relation.Relation) map[uint64]int {
	m := map[uint64]int{}
	for i := 0; i < rel.Len(); i++ {
		m[rel.Row(i).Hash()]++
	}
	return m
}

func sameMultiset(a, b map[uint64]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestPropertyFilterCommutes: σp(σq(R)) = σq(σp(R)).
func TestPropertyFilterCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		rel := randomTable(rng, 50)
		// Draw each predicate once per trial: both filter orders must
		// see the same predicates, or the property being tested is
		// vacuously broken by differing random literals.
		p := expr.NewCmp(expr.GT, expr.NewCol("a"), expr.NewLit(value.NewInt(int64(rng.Intn(10)))))
		q := expr.NewIsNull(expr.NewCol("b"), true)
		pq := materializeOrDie(t, NewFilter(NewFilter(NewScan(rel), p), q))
		qp := materializeOrDie(t, NewFilter(NewFilter(NewScan(rel), q), p))
		if !sameMultiset(rowMultiset(pq), rowMultiset(qp)) {
			t.Fatalf("trial %d: filters do not commute", trial)
		}
	}
}

// TestPropertyOuterUnionPreservesRows: |R ⊎ S| = |R| + |S| and every
// input tuple's values survive in the padded output.
func TestPropertyOuterUnionPreservesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		a := randomTable(rng, rng.Intn(40))
		// Second input with overlapping-but-different schema.
		b := relation.New("u", mustSchema("b", "c", "d"))
		for i := 0; i < rng.Intn(40); i++ {
			b.MustAppend(relation.Row{
				value.NewInt(int64(rng.Intn(5))),
				value.NewString("x"),
				value.NewFloat(rng.Float64()),
			})
		}
		u, err := NewOuterUnion(NewScan(a), NewScan(b))
		if err != nil {
			t.Fatal(err)
		}
		out := materializeOrDie(t, u)
		if out.Len() != a.Len()+b.Len() {
			t.Fatalf("trial %d: %d+%d inputs gave %d outputs", trial, a.Len(), b.Len(), out.Len())
		}
	}
}

// TestPropertySortPreservesMultiset: sorting permutes, never drops.
func TestPropertySortPreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		rel := randomTable(rng, 60)
		sorted := materializeOrDie(t, NewSort(NewScan(rel), []SortKey{{Col: "a"}, {Col: "c", Desc: true}}))
		if !sameMultiset(rowMultiset(rel), rowMultiset(sorted)) {
			t.Fatalf("trial %d: sort changed the row multiset", trial)
		}
		// And the result is actually ordered on the first key.
		for i := 1; i < sorted.Len(); i++ {
			if sorted.Value(i-1, "a").Compare(sorted.Value(i, "a")) > 0 {
				t.Fatalf("trial %d: rows %d,%d out of order", trial, i-1, i)
			}
		}
	}
}

// TestPropertyDistinctIdempotent: δ(δ(R)) = δ(R).
func TestPropertyDistinctIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 30; trial++ {
		rel := randomTable(rng, 50)
		once := materializeOrDie(t, NewDistinct(NewScan(rel)))
		twice := materializeOrDie(t, NewDistinct(NewScan(once)))
		if once.Len() != twice.Len() {
			t.Fatalf("trial %d: distinct not idempotent: %d vs %d", trial, once.Len(), twice.Len())
		}
	}
}

// TestPropertyLimitBounds: |limit(R, k)| = min(k, |R|).
func TestPropertyLimitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(40)
		rel := randomTable(rng, n)
		k := rng.Intn(50)
		out := materializeOrDie(t, NewLimit(NewScan(rel), k))
		want := k
		if n < k {
			want = n
		}
		if out.Len() != want {
			t.Fatalf("trial %d: limit(%d) over %d rows gave %d", trial, k, n, out.Len())
		}
	}
}

// TestPropertyGroupPartition: the group counts sum to the input size.
func TestPropertyGroupPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	cnt, _ := LookupAgg("count")
	for trial := 0; trial < 30; trial++ {
		rel := randomTable(rng, 60)
		g, err := NewGroup(NewScan(rel), []string{"a"}, []AggSpec{{Factory: cnt, Col: "*", As: "n"}})
		if err != nil {
			t.Fatal(err)
		}
		out := materializeOrDie(t, g)
		var total int64
		for i := 0; i < out.Len(); i++ {
			total += out.Value(i, "n").Int()
		}
		if total != int64(rel.Len()) {
			t.Fatalf("trial %d: group counts sum to %d, want %d", trial, total, rel.Len())
		}
	}
}

func mustSchema(names ...string) *schema.Schema {
	return schema.FromNames(names...)
}
