package thalia

import (
	"strings"
	"testing"

	"hummer/internal/dumas"
	"hummer/internal/eval"
)

func TestClassesComplete(t *testing.T) {
	cls := Classes()
	if len(cls) != 12 {
		t.Fatalf("classes = %d, want 12 (THALIA defines twelve)", len(cls))
	}
	for i, c := range cls {
		if c.ID != i+1 {
			t.Errorf("class %d has ID %d", i, c.ID)
		}
		if c.Name == "" || c.Description == "" {
			t.Errorf("class %d lacks name/description", c.ID)
		}
	}
}

func TestCanonicalDeterministicAndShaped(t *testing.T) {
	a := Canonical(5, 20)
	b := Canonical(5, 20)
	if a.Len() != 20 {
		t.Fatalf("rows = %d", a.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if !a.Row(i).Equal(b.Row(i)) {
			t.Fatal("same seed must give identical catalogs")
		}
	}
	if got := a.Schema().Names(); len(got) != len(CanonicalAttributes) {
		t.Errorf("schema = %v", got)
	}
	// Codes look like DEPT###.
	code := a.Value(0, "Code").Text()
	if len(code) < 5 {
		t.Errorf("code = %q", code)
	}
}

func TestGenerateAllVariants(t *testing.T) {
	for _, c := range Classes() {
		v, err := Generate(c.ID, 7, 30)
		if err != nil {
			t.Fatalf("class %d: %v", c.ID, err)
		}
		if v.Rel.Len() != 30 {
			t.Errorf("class %d: rows = %d", c.ID, v.Rel.Len())
		}
		if v.Class.ID != c.ID {
			t.Errorf("class %d: got class %d", c.ID, v.Class.ID)
		}
		// Truth columns must exist in the variant schema.
		for canonAttr, varAttr := range v.Truth {
			if !v.Rel.Schema().Has(varAttr) {
				t.Errorf("class %d: truth %s→%s references missing column", c.ID, canonAttr, varAttr)
			}
		}
	}
}

func TestGenerateInvalidClass(t *testing.T) {
	if _, err := Generate(0, 1, 5); err == nil {
		t.Error("class 0 must error")
	}
	if _, err := Generate(13, 1, 5); err == nil {
		t.Error("class 13 must error")
	}
}

func TestSynonymsVariantRenamesEverything(t *testing.T) {
	v, err := Generate(1, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range CanonicalAttributes {
		if v.Rel.Schema().Has(a) {
			t.Errorf("synonym variant still has canonical name %q", a)
		}
	}
	if len(v.Truth) != len(CanonicalAttributes) {
		t.Errorf("synonyms truth covers %d attrs", len(v.Truth))
	}
}

func TestSimpleMappingDoublesCredits(t *testing.T) {
	canon := Canonical(3, 10)
	v, err := Generate(2, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		want := canon.Value(i, "Credits").Int() * 2
		if got := v.Rel.Value(i, "ECTS").Int(); got != want {
			t.Errorf("row %d ECTS = %d, want %d", i, got, want)
		}
	}
}

func TestComplexMappingCombinesCodeAndTitle(t *testing.T) {
	canon := Canonical(3, 5)
	v, err := Generate(4, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	got := v.Rel.Value(0, "Course").Text()
	if !strings.Contains(got, canon.Value(0, "Code").Text()) ||
		!strings.Contains(got, canon.Value(0, "Title").Text()) {
		t.Errorf("Course = %q", got)
	}
	if _, ok := v.Truth["Code"]; ok {
		t.Error("complex mapping must not claim a 1:1 truth for Code")
	}
}

func TestLanguageVariantTranslatesTitles(t *testing.T) {
	canon := Canonical(3, 20)
	v, err := Generate(5, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := 0; i < 20; i++ {
		if v.Rel.Value(i, "Titel").Text() != canon.Value(i, "Title").Text() {
			diff++
		}
	}
	if diff == 0 {
		t.Error("no title was translated")
	}
}

func TestStructureVariantSplitsTime(t *testing.T) {
	canon := Canonical(3, 5)
	v, err := Generate(9, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	day := v.Rel.Value(0, "Day").Text()
	hour := v.Rel.Value(0, "Hour").Text()
	if canon.Value(0, "Time").Text() != day+" "+hour {
		t.Errorf("time %q != %q + %q", canon.Value(0, "Time").Text(), day, hour)
	}
}

func TestCompositionVariantSplitsNames(t *testing.T) {
	canon := Canonical(3, 5)
	v, err := Generate(12, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	full := canon.Value(0, "Instructor").Text()
	first := v.Rel.Value(0, "FirstName").Text()
	last := v.Rel.Value(0, "LastName").Text()
	if full != first+" "+last {
		t.Errorf("name %q != %q + %q", full, first, last)
	}
}

func TestOpaqueNamesKeepValues(t *testing.T) {
	canon := Canonical(3, 5)
	v, err := Generate(11, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Rel.Value(0, "col1"); !got.Equal(canon.Value(0, "Code")) {
		t.Errorf("col1 = %v, want Code value", got)
	}
}

// TestDUMASBridgesSynonyms is the E10 smoke test: the synonym class
// must be bridged perfectly by instance-based matching, since every
// value is identical.
func TestDUMASBridgesSynonyms(t *testing.T) {
	canon := Canonical(11, 40)
	v, err := Generate(1, 11, 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dumas.Match(canon, v.Rel, dumas.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := eval.Matching(res.Correspondences, v.Truth)
	if m.Recall < 0.85 {
		t.Errorf("synonym recall = %.2f, want ≥ 0.85 (got %v)", m.Recall, res.Correspondences)
	}
	if m.Precision < 0.85 {
		t.Errorf("synonym precision = %.2f", m.Precision)
	}
}

// TestDUMASOpaqueNames: instance-based matching must be immune to
// meaningless attribute names (THALIA class 11) — exactly the DUMAS
// advantage over label-based matchers.
func TestDUMASBridgesOpaqueNames(t *testing.T) {
	canon := Canonical(13, 40)
	v, err := Generate(11, 13, 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dumas.Match(canon, v.Rel, dumas.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := eval.Matching(res.Correspondences, v.Truth)
	if m.Recall < 0.85 || m.Precision < 0.85 {
		t.Errorf("opaque-name P/R = %.2f/%.2f, want ≥ 0.85", m.Precision, m.Recall)
	}
}
