// Package thalia reproduces the THALIA benchmark (Hammer, Stonebraker,
// Topsakal — ICDE 2005) in synthetic relational form: university
// course catalogs exhibiting the benchmark's twelve classes of
// syntactic and semantic heterogeneity. The demo paper planned to show
// THALIA examples; experiment E10 measures which classes HumMer's
// instance-based matching bridges automatically.
//
// Each variant pairs a heterogeneous catalog with the ground-truth
// attribute correspondences a perfect matcher would find (canonical
// attribute → variant attribute). Classes whose heterogeneity is not
// expressible as a 1:1 attribute correspondence (complex mappings,
// virtual columns) have partial truth maps — detecting *that* is part
// of the experiment.
package thalia

import (
	"fmt"
	"math/rand"
	"strings"

	"hummer/internal/relation"
	"hummer/internal/schema"
	"hummer/internal/value"
)

// Class describes one THALIA heterogeneity class.
type Class struct {
	// ID is the benchmark query number, 1-12.
	ID int
	// Name is the benchmark's label for the class.
	Name string
	// Description explains the heterogeneity.
	Description string
}

// Classes lists the twelve THALIA heterogeneity classes.
func Classes() []Class {
	return []Class{
		{1, "Synonyms", "attributes carry synonymous names (Instructor vs Lecturer)"},
		{2, "Simple mapping", "values differ by an arithmetic transformation (credits doubled, ECTS)"},
		{3, "Union types", "values drawn from differently formatted domains (room codes)"},
		{4, "Complex mapping", "one attribute combines several canonical ones (Code+Title)"},
		{5, "Language expression", "values expressed in a different language"},
		{6, "Nulls", "values frequently missing"},
		{7, "Virtual columns", "an attribute only present implicitly inside another"},
		{8, "Semantic incompatibility", "same attribute name, different meaning (credits vs hours/week)"},
		{9, "Same attribute, different structure", "one attribute split over several columns (time→day+hour)"},
		{10, "Handling sets", "set-valued data flattened differently (instructor lists)"},
		{11, "Opaque names", "attribute names carry no semantics (col1, col2, ...)"},
		{12, "Attribute composition", "composite attribute split (name→first+last)"},
	}
}

// CanonicalAttributes are the canonical catalog's columns.
var CanonicalAttributes = []string{
	"Code", "Title", "Instructor", "Credits", "Room", "Time", "Department",
}

var (
	subjects = []string{
		"Databases", "Algorithms", "Networks", "Compilers", "Graphics",
		"Logic", "Statistics", "Cryptography", "Robotics", "Optimization",
	}
	subjectsDE = map[string]string{
		"Databases": "Datenbanken", "Algorithms": "Algorithmen",
		"Networks": "Netzwerke", "Compilers": "Uebersetzerbau",
		"Graphics": "Computergrafik", "Logic": "Logik",
		"Statistics": "Statistik", "Cryptography": "Kryptographie",
		"Robotics": "Robotik", "Optimization": "Optimierung",
	}
	levels = []string{
		"Introduction to", "Advanced", "Seminar on", "Topics in", "Applied",
	}
	levelsDE = map[string]string{
		"Introduction to": "Einfuehrung in", "Advanced": "Fortgeschrittene",
		"Seminar on": "Seminar ueber", "Topics in": "Themen der", "Applied": "Angewandte",
	}
	profFirst = []string{"Alan", "Grace", "Edsger", "Barbara", "Donald", "Ada", "John", "Frances"}
	profLast  = []string{"Turing", "Hopper", "Dijkstra", "Liskov", "Knuth", "Lovelace", "McCarthy", "Allen"}
	depts     = []string{"CS", "EE", "MATH", "INFO"}
	days      = []string{"Mon", "Tue", "Wed", "Thu", "Fri"}
)

// Canonical generates the clean reference catalog with n courses.
func Canonical(seed int64, n int) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	rel := relation.New("canonical", schema.FromNames(CanonicalAttributes...))
	for i := 0; i < n; i++ {
		dept := depts[rng.Intn(len(depts))]
		level := levels[rng.Intn(len(levels))]
		subject := subjects[rng.Intn(len(subjects))]
		first := profFirst[rng.Intn(len(profFirst))]
		last := profLast[rng.Intn(len(profLast))]
		rel.MustAppend(relation.Row{
			value.NewString(fmt.Sprintf("%s%03d", dept, 100+i)),
			value.NewString(level + " " + subject),
			value.NewString(first + " " + last),
			value.NewInt(int64(2 + rng.Intn(5))), // 2..6 credits
			value.NewString(fmt.Sprintf("%s-%d", string(rune('A'+rng.Intn(4))), 100+rng.Intn(300))),
			value.NewString(fmt.Sprintf("%s %02d:00", days[rng.Intn(len(days))], 8+rng.Intn(10))),
			value.NewString(dept),
		})
	}
	return rel
}

// Variant holds one heterogeneous catalog plus its ground truth.
type Variant struct {
	Class Class
	// Rel is the heterogeneous catalog describing the same courses.
	Rel *relation.Relation
	// Truth maps canonical attributes to the variant attribute that
	// carries the same information 1:1; attributes with no 1:1 image
	// are absent.
	Truth map[string]string
}

// Generate builds the variant for the given class over the same seed
// and size as the canonical catalog (row i of the variant describes
// the same course as row i of Canonical(seed, n)).
func Generate(classID int, seed int64, n int) (*Variant, error) {
	canon := Canonical(seed, n)
	cls := Classes()
	if classID < 1 || classID > len(cls) {
		return nil, fmt.Errorf("thalia: no class %d", classID)
	}
	v := &Variant{Class: cls[classID-1]}
	rng := rand.New(rand.NewSource(seed + int64(classID)*31))
	switch classID {
	case 1:
		v.Rel, v.Truth = synonyms(canon)
	case 2:
		v.Rel, v.Truth = simpleMapping(canon)
	case 3:
		v.Rel, v.Truth = unionTypes(canon)
	case 4:
		v.Rel, v.Truth = complexMapping(canon)
	case 5:
		v.Rel, v.Truth = language(canon)
	case 6:
		v.Rel, v.Truth = nulls(canon, rng)
	case 7:
		v.Rel, v.Truth = virtualColumns(canon)
	case 8:
		v.Rel, v.Truth = semanticIncompat(canon, rng)
	case 9:
		v.Rel, v.Truth = structure(canon)
	case 10:
		v.Rel, v.Truth = sets(canon, rng)
	case 11:
		v.Rel, v.Truth = opaqueNames(canon)
	case 12:
		v.Rel, v.Truth = composition(canon)
	}
	v.Rel.SetName(fmt.Sprintf("thalia_%02d", classID))
	return v, nil
}

// rebuild constructs a relation from column names and per-row cell
// functions over the canonical relation.
func rebuild(canon *relation.Relation, cols []string, cell func(i int, col string) value.Value) *relation.Relation {
	rel := relation.New("variant", schema.FromNames(cols...))
	for i := 0; i < canon.Len(); i++ {
		row := make(relation.Row, len(cols))
		for j, c := range cols {
			row[j] = cell(i, c)
		}
		rel.MustAppend(row)
	}
	return rel
}

func synonyms(canon *relation.Relation) (*relation.Relation, map[string]string) {
	ren := map[string]string{
		"Code": "CourseNo", "Title": "CourseName", "Instructor": "Lecturer",
		"Credits": "Units", "Room": "Venue", "Time": "Schedule", "Department": "Faculty",
	}
	cols := make([]string, len(CanonicalAttributes))
	for i, a := range CanonicalAttributes {
		cols[i] = ren[a]
	}
	rel := rebuild(canon, cols, func(i int, col string) value.Value {
		for canonName, varName := range ren {
			if varName == col {
				return canon.Value(i, canonName)
			}
		}
		return value.Null
	})
	return rel, ren
}

func simpleMapping(canon *relation.Relation) (*relation.Relation, map[string]string) {
	// ECTS points = 2 × credit hours; everything else unchanged.
	cols := []string{"Code", "Title", "Instructor", "ECTS", "Room", "Time", "Department"}
	rel := rebuild(canon, cols, func(i int, col string) value.Value {
		if col == "ECTS" {
			return value.NewInt(canon.Value(i, "Credits").Int() * 2)
		}
		return canon.Value(i, col)
	})
	truth := identityTruth("Code", "Title", "Instructor", "Room", "Time", "Department")
	truth["Credits"] = "ECTS"
	return rel, truth
}

func unionTypes(canon *relation.Relation) (*relation.Relation, map[string]string) {
	// Rooms written "Building A Room 123" instead of "A-123".
	cols := append([]string(nil), CanonicalAttributes...)
	rel := rebuild(canon, cols, func(i int, col string) value.Value {
		if col == "Room" {
			parts := strings.SplitN(canon.Value(i, "Room").Text(), "-", 2)
			return value.NewString("Building " + parts[0] + " Room " + parts[1])
		}
		return canon.Value(i, col)
	})
	return rel, identityTruth(CanonicalAttributes...)
}

func complexMapping(canon *relation.Relation) (*relation.Relation, map[string]string) {
	// Code and Title fused into one "Course" attribute.
	cols := []string{"Course", "Instructor", "Credits", "Room", "Time", "Department"}
	rel := rebuild(canon, cols, func(i int, col string) value.Value {
		if col == "Course" {
			return value.NewString(canon.Value(i, "Code").Text() + ": " + canon.Value(i, "Title").Text())
		}
		return canon.Value(i, col)
	})
	// Neither Code nor Title has a 1:1 image; the rest map by identity.
	return rel, identityTruth("Instructor", "Credits", "Room", "Time", "Department")
}

func language(canon *relation.Relation) (*relation.Relation, map[string]string) {
	cols := []string{"Kennung", "Titel", "Dozent", "Punkte", "Raum", "Zeit", "Fakultaet"}
	ren := map[string]string{
		"Code": "Kennung", "Title": "Titel", "Instructor": "Dozent",
		"Credits": "Punkte", "Room": "Raum", "Time": "Zeit", "Department": "Fakultaet",
	}
	rel := rebuild(canon, cols, func(i int, col string) value.Value {
		for canonName, varName := range ren {
			if varName != col {
				continue
			}
			v := canon.Value(i, canonName)
			if canonName == "Title" {
				return value.NewString(translate(v.Text()))
			}
			return v
		}
		return value.Null
	})
	return rel, ren
}

func translate(title string) string {
	out := title
	for en, de := range levelsDE {
		out = strings.ReplaceAll(out, en, de)
	}
	for en, de := range subjectsDE {
		out = strings.ReplaceAll(out, en, de)
	}
	return out
}

func nulls(canon *relation.Relation, rng *rand.Rand) (*relation.Relation, map[string]string) {
	cols := append([]string(nil), CanonicalAttributes...)
	rel := rebuild(canon, cols, func(i int, col string) value.Value {
		// Room and Instructor missing for 40% of courses.
		if (col == "Room" || col == "Instructor") && rng.Float64() < 0.4 {
			return value.Null
		}
		return canon.Value(i, col)
	})
	return rel, identityTruth(CanonicalAttributes...)
}

func virtualColumns(canon *relation.Relation) (*relation.Relation, map[string]string) {
	// Department dropped: it only lives inside the course code prefix.
	cols := []string{"Code", "Title", "Instructor", "Credits", "Room", "Time"}
	rel := rebuild(canon, cols, func(i int, col string) value.Value {
		return canon.Value(i, col)
	})
	return rel, identityTruth("Code", "Title", "Instructor", "Credits", "Room", "Time")
}

func semanticIncompat(canon *relation.Relation, rng *rand.Rand) (*relation.Relation, map[string]string) {
	// "Credits" here means weekly contact hours — same name, different
	// semantics and value distribution.
	cols := append([]string(nil), CanonicalAttributes...)
	rel := rebuild(canon, cols, func(i int, col string) value.Value {
		if col == "Credits" {
			return value.NewInt(int64(10 + rng.Intn(30))) // not the canonical 2..6
		}
		return canon.Value(i, col)
	})
	// The honest truth map excludes Credits: matching them would be a
	// semantic error even though the names agree.
	return rel, identityTruth("Code", "Title", "Instructor", "Room", "Time", "Department")
}

func structure(canon *relation.Relation) (*relation.Relation, map[string]string) {
	// Time split into Day and Hour.
	cols := []string{"Code", "Title", "Instructor", "Credits", "Room", "Day", "Hour", "Department"}
	rel := rebuild(canon, cols, func(i int, col string) value.Value {
		t := canon.Value(i, "Time").Text()
		parts := strings.SplitN(t, " ", 2)
		switch col {
		case "Day":
			return value.NewString(parts[0])
		case "Hour":
			return value.NewString(parts[1])
		default:
			return canon.Value(i, col)
		}
	})
	return rel, identityTruth("Code", "Title", "Instructor", "Credits", "Room", "Department")
}

func sets(canon *relation.Relation, rng *rand.Rand) (*relation.Relation, map[string]string) {
	// Instructor becomes a flattened set: "A. Turing; G. Hopper".
	cols := append([]string(nil), CanonicalAttributes...)
	rel := rebuild(canon, cols, func(i int, col string) value.Value {
		if col == "Instructor" {
			primary := canon.Value(i, "Instructor").Text()
			if rng.Float64() < 0.5 {
				extra := profFirst[rng.Intn(len(profFirst))] + " " + profLast[rng.Intn(len(profLast))]
				return value.NewString(primary + "; " + extra)
			}
			return value.NewString(primary)
		}
		return canon.Value(i, col)
	})
	return rel, identityTruth(CanonicalAttributes...)
}

func opaqueNames(canon *relation.Relation) (*relation.Relation, map[string]string) {
	cols := make([]string, len(CanonicalAttributes))
	truth := map[string]string{}
	for i, a := range CanonicalAttributes {
		cols[i] = fmt.Sprintf("col%d", i+1)
		truth[a] = cols[i]
	}
	rel := rebuild(canon, cols, func(i int, col string) value.Value {
		var idx int
		fmt.Sscanf(col, "col%d", &idx)
		return canon.Value(i, CanonicalAttributes[idx-1])
	})
	return rel, truth
}

func composition(canon *relation.Relation) (*relation.Relation, map[string]string) {
	// Instructor split into FirstName / LastName.
	cols := []string{"Code", "Title", "FirstName", "LastName", "Credits", "Room", "Time", "Department"}
	rel := rebuild(canon, cols, func(i int, col string) value.Value {
		name := canon.Value(i, "Instructor").Text()
		parts := strings.SplitN(name, " ", 2)
		switch col {
		case "FirstName":
			return value.NewString(parts[0])
		case "LastName":
			if len(parts) > 1 {
				return value.NewString(parts[1])
			}
			return value.Null
		default:
			return canon.Value(i, col)
		}
	})
	return rel, identityTruth("Code", "Title", "Credits", "Room", "Time", "Department")
}

func identityTruth(attrs ...string) map[string]string {
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a] = a
	}
	return m
}
